#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts written by bench/bench_report.hpp.

Usage: validate_bench_json.py FILE [FILE...]

Checks each artifact against the version-1 schema: required top-level
fields, a non-empty benchmarks array, and sane per-benchmark numbers.
Exits non-zero with a message on the first violation. Stdlib only, so it
runs anywhere CI has a python3.
"""
import json
import sys

SCHEMA_VERSION = 1

# Serve-mode benchmarks must report iteration-latency percentiles so the
# artifact carries the tail, not just the mean.
PERCENTILE_KEYS = ("p50_ns", "p95_ns", "p99_ns")

# Kernel-throughput benchmarks must report the amplitudes-touched-per-
# second rate (and the qubit count it was measured at), so CI diffs carry
# the bandwidth figure the cache blocking exists to raise.
KERNEL_KEYS = ("qubits", "amps_per_sec")

# Dispatch benchmarks must report bytecode instructions retired per
# second, so CI diffs carry the dispatch-throughput figure the threaded
# loop and superinstructions exist to raise.
DISPATCH_KEYS = ("instr_per_sec",)


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable as JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(path, f"schema_version must be {SCHEMA_VERSION}, "
                   f"got {doc.get('schema_version')!r}")
    if doc.get("tool") != "qirkit-bench":
        fail(path, f"tool must be 'qirkit-bench', got {doc.get('tool')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "bench must be a non-empty string")

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(path, "benchmarks must be a non-empty array")
    for i, b in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        if not isinstance(b, dict):
            fail(path, f"{where} is not an object")
        if not isinstance(b.get("name"), str) or not b["name"]:
            fail(path, f"{where}.name must be a non-empty string")
        if not isinstance(b.get("iterations"), int) or b["iterations"] <= 0:
            fail(path, f"{where}.iterations must be a positive integer")
        for key in ("real_time_ns", "cpu_time_ns"):
            if not isinstance(b.get(key), (int, float)) or b[key] < 0:
                fail(path, f"{where}.{key} must be a non-negative number")
        if not isinstance(b.get("counters"), dict):
            fail(path, f"{where}.counters must be an object")
        if b["name"].startswith("BM_Serve"):
            counters = b["counters"]
            for key in PERCENTILE_KEYS:
                if not isinstance(counters.get(key), (int, float)) \
                        or counters[key] < 0:
                    fail(path, f"{where}.counters.{key} must be a "
                               f"non-negative number for serve benchmarks")
            if counters["p50_ns"] > counters["p95_ns"] \
                    or counters["p95_ns"] > counters["p99_ns"]:
                fail(path, f"{where}.counters percentiles must be "
                           f"non-decreasing (p50 <= p95 <= p99)")
        if b["name"].startswith("BM_Kernel/"):
            counters = b["counters"]
            for key in KERNEL_KEYS:
                if not isinstance(counters.get(key), (int, float)) \
                        or counters[key] <= 0:
                    fail(path, f"{where}.counters.{key} must be a "
                               f"positive number for kernel benchmarks")
        if b["name"].startswith("BM_Dispatch/"):
            counters = b["counters"]
            for key in DISPATCH_KEYS:
                if not isinstance(counters.get(key), (int, float)) \
                        or counters[key] <= 0:
                    fail(path, f"{where}.counters.{key} must be a "
                               f"positive number for dispatch benchmarks")

    telemetry = doc.get("telemetry")
    if telemetry is not None:
        if not isinstance(telemetry, dict):
            fail(path, "telemetry must be an object when present")
        if telemetry.get("schema_version") != SCHEMA_VERSION:
            fail(path, "telemetry.schema_version mismatch")

    print(f"{path}: OK ({len(benchmarks)} benchmarks)")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
