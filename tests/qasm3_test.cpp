#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "qasm/qasm3.hpp"
#include "qir/compile.hpp"
#include "qir/importer.hpp"
#include "qir/profiles.hpp"
#include "runtime/runtime.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::qasm {
namespace {

std::unique_ptr<ir::Module> compile(ir::Context& ctx, const char* source) {
  auto module = compileQasm3(ctx, source);
  ir::verifyModuleOrThrow(*module);
  return module;
}

TEST(Qasm3, BellProgramLowersToQIR) {
  ir::Context ctx;
  const auto m = compile(ctx, R"(
OPENQASM 3;
include "stdgates.inc";
qubit[2] q;
bit[2] c;
h q[0];
cx q[0], q[1];
c[0] = measure q[0];
c[1] = measure q[1];
)");
  EXPECT_EQ(m->entryPoint()->getAttribute("required_num_qubits"), "2");
  const circuit::Circuit c = qir::importFromModule(*m);
  EXPECT_EQ(c, circuit::Circuit([] {
              circuit::Circuit b(2, 2);
              b.h(0);
              b.cx(0, 1);
              b.measure(0, 0);
              b.measure(1, 1);
              return b;
            }()));
}

TEST(Qasm3, ForLoopLowersToIRLoopAndUnrolls) {
  // The §II.B story: the QASM3 FOR loop becomes an IR loop; the classical
  // pipeline unrolls it without any quantum-specific loop handling.
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[8] q;
for int i in [0:7] {
  h q[i];
}
)");
  // Before optimization: a real loop (4+ blocks).
  EXPECT_GE(m->entryPoint()->blocks().size(), 4U);
  qir::transformDirect(*m);
  ir::verifyModuleOrThrow(*m);
  const circuit::Circuit c = qir::importFromModule(*m);
  EXPECT_EQ(c.gateCount(), 8U);
  EXPECT_EQ(c.numQubits(), 8U);
}

TEST(Qasm3, LoopVariableInAngleExpressions) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[1] q;
for int i in [0:3] {
  rz(pi * i / 4) q[0];
}
)");
  qir::transformDirect(*m);
  const circuit::Circuit c = qir::importFromModule(*m);
  ASSERT_EQ(c.size(), 4U);
  EXPECT_NEAR(c.op(0).params[0], 0.0, 1e-12);
  EXPECT_NEAR(c.op(3).params[0], 3 * std::numbers::pi / 4, 1e-12);
}

TEST(Qasm3, NestedLoops) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[4] q;
for int i in [0:1] {
  for int j in [2:3] {
    cx q[i], q[j];
  }
}
)");
  qir::transformDirect(*m);
  const circuit::Circuit c = qir::importFromModule(*m);
  EXPECT_EQ(c.countKind(circuit::OpKind::CX), 4U);
}

TEST(Qasm3, IfOnMeasurementBecomesAdaptiveProfile) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[1] q;
bit[1] c;
x q[0];
c[0] = measure q[0];
if (c[0] == 1) {
  x q[0];
}
c[0] = measure q[0];
)");
  qir::transformDirect(*m);
  EXPECT_EQ(qir::detectProfile(*m), qir::Profile::Adaptive);
  // Execute: X, measure 1, conditioned X -> final measurement must be 0.
  const runtime::RunResult result = runtime::runQIRModule(*m, 5);
  EXPECT_EQ(result.stats.measurements, 2U);
  interp::Interpreter interp(*m);
  runtime::QuantumRuntime rt(5);
  rt.bind(interp);
  interp.runEntryPoint();
  EXPECT_FALSE(rt.resultValue(0)); // last write to result 0 is the final mz
}

TEST(Qasm3, BareBitCondition) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[1] q;
bit[1] c;
c[0] = measure q[0];
if (c[0]) x q[0];
)");
  qir::transformDirect(*m);
  const circuit::Circuit c = qir::importFromModule(*m);
  ASSERT_EQ(c.size(), 2U);
  ASSERT_TRUE(c.op(1).condition.has_value());
  EXPECT_EQ(c.op(1).condition->value, 1U);
}

TEST(Qasm3, UGateLowersToRotations) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[1] q;
U(pi/2, 0, pi) q[0];
)");
  const circuit::Circuit c = qir::importFromModule(*m);
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c.op(0).kind, circuit::OpKind::RZ);
  EXPECT_EQ(c.op(1).kind, circuit::OpKind::RY);
}

TEST(Qasm3, ResetAndMultipleRegisters) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[2] a;
qubit[2] b;
bit[2] c;
h a[0];
cx a[0], b[1];
reset a[1];
c[0] = measure b[1];
)");
  const circuit::Circuit c = qir::importFromModule(*m);
  EXPECT_EQ(c.numQubits(), 4U); // a -> 0..1, b -> 2..3
  EXPECT_EQ(c.op(1).qubits[1], 3U);
  EXPECT_EQ(c.countKind(circuit::OpKind::Reset), 1U);
}

TEST(Qasm3, Errors) {
  ir::Context ctx;
  EXPECT_THROW((void)compileQasm3(ctx, "qubit[1] q;"), ParseError); // no header
  EXPECT_THROW((void)compileQasm3(ctx, "OPENQASM 3; h q[0];"), ParseError);
  EXPECT_THROW((void)compileQasm3(ctx, "OPENQASM 3; qubit[1] q; frob q[0];"),
               ParseError);
  EXPECT_THROW((void)compileQasm3(ctx,
                                  "OPENQASM 3; qubit[1] q; bit[1] c; h c[0];"),
               ParseError); // classical register as qubit
  EXPECT_THROW((void)compileQasm3(ctx, "OPENQASM 3; include \"other.inc\";"),
               ParseError);
}

TEST(Qasm3, EndToEndGHZThroughLoop) {
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[5] q;
bit[5] c;
h q[0];
for int i in [0:3] {
  cx q[i], q[i+1];
}
for int i in [0:4] {
  c[i] = measure q[i];
}
)");
  qir::transformDirect(*m);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    interp::Interpreter interp(*m);
    runtime::QuantumRuntime rt(seed);
    rt.bind(interp);
    interp.runEntryPoint();
    const bool first = rt.resultValue(0);
    for (unsigned bit = 1; bit < 5; ++bit) {
      EXPECT_EQ(rt.resultValue(bit), first) << "seed " << seed;
    }
  }
}


TEST(Qasm3, WhileLoopRepeatUntilSuccess) {
  // Repeat-until-success: keep re-preparing until the measurement is 0.
  // Unbounded — inexpressible in the flat circuit IR (the importer rejects
  // it), but executable through the runtime.
  ir::Context ctx;
  auto m = compile(ctx, R"(
OPENQASM 3;
qubit[1] q;
bit[1] c;
h q[0];
c[0] = measure q[0];
while (c[0] == 1) {
  reset q[0];
  h q[0];
  c[0] = measure q[0];
}
)");
  EXPECT_THROW((void)qir::importFromModule(*m), ParseError);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    interp::Interpreter interp(*m);
    runtime::QuantumRuntime rt(seed);
    rt.bind(interp);
    interp.runEntryPoint();
    EXPECT_FALSE(rt.resultValue(0)) << "seed " << seed; // loop exits on 0
    EXPECT_GE(rt.stats().measurements, 1U);
  }
}

} // namespace
} // namespace qirkit::qasm
