#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace qirkit::qasm {
namespace {

using circuit::Circuit;
using circuit::Condition;
using circuit::OpKind;

/// Fig. 1 (top left): the paper's OpenQASM 2.0 Bell program, verbatim.
TEST(QasmParser, PaperFig1BellProgram) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q -> c;
)");
  EXPECT_EQ(c.numQubits(), 2U);
  EXPECT_EQ(c.numBits(), 2U);
  ASSERT_EQ(c.size(), 4U);
  EXPECT_EQ(c.op(0).kind, OpKind::H);
  EXPECT_EQ(c.op(1).kind, OpKind::CX);
  EXPECT_EQ(c.op(2).kind, OpKind::Measure);
  EXPECT_EQ(c.op(3).kind, OpKind::Measure);
  EXPECT_EQ(c, circuit::bellPair(true));
}

TEST(QasmParser, GateBroadcastOverRegister) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q;
)");
  EXPECT_EQ(c.countKind(OpKind::H), 3U);
}

TEST(QasmParser, TwoQubitBroadcast) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
qreg a[3];
qreg b[3];
CX a, b;
)");
  EXPECT_EQ(c.countKind(OpKind::CX), 3U);
  EXPECT_EQ(c.op(0).qubits[0], 0U);
  EXPECT_EQ(c.op(0).qubits[1], 3U); // registers flattened in order
}

TEST(QasmParser, AngleExpressions) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(pi/2) q[0];
rx(-pi) q[0];
ry(2*pi/4 + 0.5) q[0];
rz(cos(0)) q[0];
)");
  EXPECT_NEAR(c.op(0).params[0], std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(c.op(1).params[0], -std::numbers::pi, 1e-12);
  EXPECT_NEAR(c.op(2).params[0], std::numbers::pi / 2 + 0.5, 1e-12);
  EXPECT_NEAR(c.op(3).params[0], 1.0, 1e-12);
}

TEST(QasmParser, UserGateDefinitionsAreInlined) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate bell a, b {
  h a;
  cx a, b;
}
qreg q[4];
bell q[0], q[1];
bell q[2], q[3];
)");
  EXPECT_EQ(c.countKind(OpKind::H), 2U);
  EXPECT_EQ(c.countKind(OpKind::CX), 2U);
  EXPECT_EQ(c.op(2).qubits[0], 2U);
}

TEST(QasmParser, ParameterizedUserGates) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate wiggle(theta) a {
  rz(theta/2) a;
  rz(theta/2) a;
}
qreg q[1];
wiggle(1.0) q[0];
)");
  ASSERT_EQ(c.size(), 2U);
  EXPECT_NEAR(c.op(0).params[0], 0.5, 1e-12);
}

TEST(QasmParser, NestedUserGates) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
gate inner a { U(0, 0, 0) a; }
gate outer a { inner a; inner a; }
qreg q[1];
outer q[0];
)");
  EXPECT_EQ(c.countKind(OpKind::U3), 2U);
}

TEST(QasmParser, U1U2MapToRotations) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
u1(0.5) q[0];
u2(0.1, 0.2) q[0];
u3(0.1, 0.2, 0.3) q[0];
id q[0];
)");
  EXPECT_EQ(c.op(0).kind, OpKind::RZ);
  EXPECT_EQ(c.op(1).kind, OpKind::U3);
  EXPECT_NEAR(c.op(1).params[0], std::numbers::pi / 2, 1e-12);
  EXPECT_EQ(c.size(), 3U); // id is dropped
}

TEST(QasmParser, ConditionsMapToWholeRegisters) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[2];
measure q[0] -> c[0];
if (c == 2) x q[0];
)");
  ASSERT_EQ(c.size(), 2U);
  ASSERT_TRUE(c.op(1).condition.has_value());
  EXPECT_EQ(c.op(1).condition->firstBit, 0U);
  EXPECT_EQ(c.op(1).condition->numBits, 2U);
  EXPECT_EQ(c.op(1).condition->value, 2U);
}

TEST(QasmParser, ResetAndBarrier) {
  const Circuit c = parse(R"(
OPENQASM 2.0;
qreg q[2];
reset q;
barrier q[0], q[1];
barrier;
)");
  EXPECT_EQ(c.countKind(OpKind::Reset), 2U);
  EXPECT_EQ(c.countKind(OpKind::Barrier), 2U);
}

TEST(QasmParser, Errors) {
  EXPECT_THROW((void)parse("qreg q[1];"), ParseError);        // missing header
  EXPECT_THROW((void)parse("OPENQASM 2.0; h q[0];"), ParseError); // no qreg
  EXPECT_THROW((void)parse("OPENQASM 2.0; qreg q[1]; frobnicate q[0];"),
               SemanticError);
  EXPECT_THROW((void)parse("OPENQASM 2.0; qreg q[1]; h q[5];"), ParseError);
  EXPECT_THROW((void)parse("OPENQASM 2.0; include \"other.inc\";"), ParseError);
  EXPECT_THROW((void)parse("OPENQASM 2.0; qreg q[1]; qreg q[1];"), ParseError);
}

TEST(QasmPrinter, EmitsFig1Shape) {
  const std::string text = print(circuit::bellPair(true));
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("include \"qelib1.inc\";"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(text.find("measure q[0] -> c[0];"), std::string::npos);
}

TEST(QasmPrinter, PartitionsBitsForConditions) {
  const Circuit c = circuit::repetitionCodeCycle(0.5, 0);
  const std::string text = print(c);
  // Syndrome bits (0..1) and data bits (2..4) become separate registers.
  EXPECT_NE(text.find("creg c0[2];"), std::string::npos);
  EXPECT_NE(text.find("creg c1[3];"), std::string::npos);
  EXPECT_NE(text.find("if (c0 == 1)"), std::string::npos);
}

TEST(QasmPrinter, RejectsMisalignedConditions) {
  Circuit c(1, 3);
  c.measure(0, 0);
  c.add({circuit::OpKind::X, {0}, {}, 0, Condition{0, 2, 1}});
  c.add({circuit::OpKind::X, {0}, {}, 0, Condition{1, 2, 1}}); // overlaps
  EXPECT_THROW((void)print(c), SemanticError);
}

/// Round trip property over generator workloads: parse(print(c)) == c,
/// modulo U3-lowering-free circuits.
class QasmRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QasmRoundTrip, ParsePrintRoundTrip) {
  Circuit original;
  switch (GetParam()) {
  case 0: original = circuit::bellPair(true); break;
  case 1: original = circuit::ghz(5, true); break;
  case 2: original = circuit::qft(4, true); break;
  case 3: original = circuit::randomCircuit(4, 6, 9, true); break;
  case 4: original = circuit::repetitionCodeCycle(0.7, 1); break;
  default: original = circuit::hardwareEfficientAnsatz(3, 2, 5); break;
  }
  const Circuit reparsed = parse(print(original));
  EXPECT_EQ(reparsed, original);
}

INSTANTIATE_TEST_SUITE_P(Workloads, QasmRoundTrip, ::testing::Range(0, 6));

TEST(QasmEndToEnd, ParsedBellMeasuresCorrelated) {
  const Circuit c = parse(print(circuit::bellPair(true)));
  for (const auto& [bits, count] : circuit::sampleCounts(c, 100, 5)) {
    EXPECT_TRUE(bits == "00" || bits == "11") << bits;
  }
}

} // namespace
} // namespace qirkit::qasm
