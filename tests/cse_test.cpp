#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

std::unique_ptr<Module> parse(Context& ctx, std::string_view text) {
  auto m = parseModule(ctx, text);
  verifyModuleOrThrow(*m);
  return m;
}

std::size_t run(Module& m) {
  PassManager pm;
  pm.add(createCSEPass());
  pm.setVerifyEach(true);
  pm.run(m);
  std::size_t count = 0;
  for (const auto& fn : m.functions()) {
    count += fn->instructionCount();
  }
  return count;
}

TEST(CSE, EliminatesDuplicateExpressionsInABlock) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i64 %a, i64 %b) {
  %x = add i64 %a, %b
  %y = add i64 %a, %b
  %z = add i64 %x, %y
  ret i64 %z
}
)");
  EXPECT_EQ(run(*m), 3U); // one add removed
  const Instruction* z = m->getFunction("f")->entry()->instructions()[1].get();
  EXPECT_EQ(z->operand(0), z->operand(1));
}

TEST(CSE, HandlesCommutativity) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i64 %a, i64 %b) {
  %x = add i64 %a, %b
  %y = add i64 %b, %a
  %z = mul i64 %x, %y
  ret i64 %z
}
)");
  EXPECT_EQ(run(*m), 3U);
}

TEST(CSE, DoesNotMergeNonCommutativeSwappedOperands) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i64 %a, i64 %b) {
  %x = sub i64 %a, %b
  %y = sub i64 %b, %a
  %z = mul i64 %x, %y
  ret i64 %z
}
)");
  EXPECT_EQ(run(*m), 4U); // nothing removed
}

TEST(CSE, RespectsPredicatesAndTypes) {
  Context ctx;
  auto m = parse(ctx, R"(
define i1 @f(i64 %a, i64 %b) {
  %x = icmp slt i64 %a, %b
  %y = icmp sgt i64 %a, %b
  %z = and i1 %x, %y
  ret i1 %z
}
)");
  EXPECT_EQ(run(*m), 4U); // different predicates: keep both
}

TEST(CSE, WorksAcrossDominatingBlocks) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i64 %a, i1 %c) {
entry:
  %x = mul i64 %a, %a
  br i1 %c, label %then, label %exit
then:
  %y = mul i64 %a, %a
  br label %exit
exit:
  %p = phi i64 [ %y, %then ], [ 0, %entry ]
  %r = add i64 %p, %x
  ret i64 %r
}
)");
  run(*m);
  // %y replaced by %x; the phi now references %x.
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->blocks()[1]->size(), 1U); // only the branch left
}

TEST(CSE, DoesNotMergeAcrossSiblingBranches) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i64 %a, i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  %x = mul i64 %a, %a
  ret i64 %x
right:
  %y = mul i64 %a, %a
  ret i64 %y
}
)");
  EXPECT_EQ(run(*m), 5U); // neither block dominates the other: keep both
}

TEST(CSE, LeavesCallsAndLoadsAlone) {
  Context ctx;
  auto m = parse(ctx, R"(
declare i64 @opaque()
define i64 @f(ptr %p) {
  %a = call i64 @opaque()
  %b = call i64 @opaque()
  %l1 = load i64, ptr %p, align 8
  %l2 = load i64, ptr %p, align 8
  %s = add i64 %a, %b
  %t = add i64 %l1, %l2
  %r = add i64 %s, %t
  ret i64 %r
}
)");
  EXPECT_EQ(run(*m), 8U); // nothing removed
}

TEST(CSE, CollapsesRepeatedAddressComputations) {
  // The Ex. 2 pattern after mem2reg: repeated element-pointer arithmetic
  // expressed as ptrtoint/add/inttoptr chains.
  Context ctx;
  auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @f(ptr %base) {
  %a1 = ptrtoint ptr %base to i64
  %o1 = add i64 %a1, 8
  %p1 = inttoptr i64 %o1 to ptr
  call void @__quantum__qis__h__body(ptr %p1)
  %a2 = ptrtoint ptr %base to i64
  %o2 = add i64 %a2, 8
  %p2 = inttoptr i64 %o2 to ptr
  call void @__quantum__qis__h__body(ptr %p2)
  ret void
}
)");
  EXPECT_EQ(run(*m), 6U); // 3 duplicate computations removed
}

} // namespace
} // namespace qirkit::passes
