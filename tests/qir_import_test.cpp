#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "qir/compile.hpp"
#include "qir/exporter.hpp"
#include "qir/importer.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::qir {
namespace {

using circuit::Circuit;
using circuit::Condition;
using circuit::OpKind;

/// The paper's Ex. 3: parsing Ex. 2's program "would need to track the
/// assignment of variables (i.e., %9, %0, %1, ...) to their values to
/// infer the respective qubit" — line patterns, no AST.
TEST(PatternParser, HandlesEx2DynamicProgram) {
  const char* text = R"(
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare ptr @__quantum__rt__array_create_1d(i32, i64)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() {
  %q = alloca ptr, align 8
  %0 = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  store ptr %0, ptr %q, align 8
  %c = alloca ptr, align 8
  %1 = call ptr @__quantum__rt__array_create_1d(i32 1, i64 2)
  store ptr %1, ptr %c, align 8
  %2 = load ptr, ptr %q, align 8
  %3 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %2, i64 0)
  call void @__quantum__qis__h__body(ptr %3)
  %4 = load ptr, ptr %q, align 8
  %5 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %4, i64 0)
  %6 = load ptr, ptr %q, align 8
  %7 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %6, i64 1)
  call void @__quantum__qis__cnot__body(ptr %5, ptr %7)
  %8 = load ptr, ptr %q, align 8
  %9 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %8, i64 0)
  %10 = load ptr, ptr %c, align 8
  %11 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %10, i64 0)
  call void @__quantum__qis__mz__body(ptr %9, ptr %11)
  ret void
}
)";
  const Circuit c = importBaseProfileText(text);
  EXPECT_EQ(c.numQubits(), 2U);
  ASSERT_EQ(c.size(), 3U);
  EXPECT_EQ(c.op(0).kind, OpKind::H);
  EXPECT_EQ(c.op(0).qubits[0], 0U);
  EXPECT_EQ(c.op(1).kind, OpKind::CX);
  EXPECT_EQ(c.op(1).qubits[0], 0U);
  EXPECT_EQ(c.op(1).qubits[1], 1U);
  EXPECT_EQ(c.op(2).kind, OpKind::Measure);
}

TEST(PatternParser, HandlesEx6StaticProgram) {
  const char* text = R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() {
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr writeonly null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr writeonly inttoptr (i64 1 to ptr))
  ret void
}
)";
  const Circuit c = importBaseProfileText(text);
  EXPECT_EQ(c, circuit::bellPair(true));
}

TEST(PatternParser, HandlesRotationsAndLabels) {
  const char* text = R"(
@lbl = internal constant [3 x i8] c"r0\00"
declare void @__quantum__qis__rz__body(double, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)
define void @main() {
entry:
  call void @__quantum__qis__rz__body(double 1.5, ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr @lbl)
  ret void
}
)";
  const Circuit c = importBaseProfileText(text);
  ASSERT_EQ(c.size(), 2U);
  EXPECT_EQ(c.op(0).kind, OpKind::RZ);
  EXPECT_NEAR(c.op(0).params[0], 1.5, 1e-12);
}

TEST(PatternParser, RejectsControlFlowAsThePaperPredicts) {
  // §III.A: with a custom parser "one is limited to the capabilities of
  // that existing IR" — our pattern route covers the base profile only.
  const char* text = R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() {
entry:
  br label %next
next:
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
)";
  try {
    (void)importBaseProfileText(text);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("control flow"), std::string::npos);
  }
}

TEST(PatternParser, RejectsClassicalComputation) {
  const char* text = R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() {
  %x = add i64 1, 2
  ret void
}
)";
  EXPECT_THROW((void)importBaseProfileText(text), ParseError);
}

TEST(PatternParser, RejectsReadResult) {
  const char* text = R"(
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() {
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  ret void
}
)";
  EXPECT_THROW((void)importBaseProfileText(text), ParseError);
}

// --- AST route ---------------------------------------------------------

TEST(AstImporter, ImportsStaticProgram) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
define void @main() #0 {
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  ret void
}
attributes #0 = { "entry_point" }
)");
  const Circuit c = importFromModule(*m);
  EXPECT_EQ(c.numQubits(), 2U);
  EXPECT_EQ(c.gateCount(), 2U);
}

TEST(AstImporter, ImportsMeasurementConditionedDiamond) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)");
  const Circuit c = importFromModule(*m);
  ASSERT_EQ(c.size(), 2U);
  ASSERT_TRUE(c.op(1).condition.has_value());
  EXPECT_EQ(*c.op(1).condition, (Condition{0, 1, 1}));
}

TEST(AstImporter, ImportsNegatedCondition) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  %n = xor i1 %r, true
  br i1 %n, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)");
  const Circuit c = importFromModule(*m);
  ASSERT_EQ(c.size(), 2U);
  EXPECT_EQ(*c.op(1).condition, (Condition{0, 1, 0}));
}

TEST(AstImporter, RejectsGeneralControlFlow) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
define void @main(i1 %c) #0 {
entry:
  br i1 %c, label %a, label %b
a:
  ret void
b:
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_THROW((void)importFromModule(*m), ParseError);
}

TEST(AstImporter, RejectsUnfoldedClassicalCode) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main(i64 %x) #0 {
  %y = add i64 %x, 1
  %p = inttoptr i64 %y to ptr
  call void @__quantum__qis__h__body(ptr %p)
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_THROW((void)importFromModule(*m), ParseError);
}

// --- export -> import round trips ---------------------------------------

class RoundTrip : public ::testing::TestWithParam<std::tuple<int, Addressing>> {};

TEST_P(RoundTrip, ExportThenImportIsIdentityOnTheCircuit) {
  const auto [workload, addressing] = GetParam();
  Circuit original;
  switch (workload) {
  case 0: original = circuit::bellPair(true); break;
  case 1: original = circuit::ghz(4, true); break;
  case 2: original = circuit::qft(3, true); break;
  default: original = circuit::randomCircuit(4, 5, 11, true); break;
  }
  ir::Context ctx;
  ExportOptions options;
  options.addressing = addressing;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, original, options);

  // Route (a2): AST import.
  EXPECT_EQ(importFromModule(*m), original);

  // Route (a1): pattern import from the printed text.
  EXPECT_EQ(importBaseProfileText(ir::printModule(*m)), original);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RoundTrip,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(Addressing::Static, Addressing::Dynamic)));

TEST(RoundTripAdaptive, ConditionedCircuitSurvivesAstRoundTrip) {
  const Circuit original = circuit::repetitionCodeCycle(0.9, 1);
  ir::Context ctx;
  ExportOptions options;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, original, options);
  const Circuit back = importFromModule(*m);
  EXPECT_EQ(back, original);
}

// --- compile pipelines ------------------------------------------------------

TEST(Compile, TransformDirectUnrollsAndFolds) {
  ir::Context ctx;
  auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  %i = alloca i64, align 8
  store i64 0, ptr %i, align 8
  br label %header
header:
  %v = load i64, ptr %i, align 8
  %c = icmp slt i64 %v, 4
  br i1 %c, label %body, label %exit
body:
  %p = inttoptr i64 %v to ptr
  call void @__quantum__qis__h__body(ptr %p)
  %n = add i64 %v, 1
  store i64 %n, ptr %i, align 8
  br label %header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)");
  transformDirect(*m);
  const Circuit c = importFromModule(*m);
  EXPECT_EQ(c.gateCount(), 4U);
  EXPECT_EQ(c.numQubits(), 4U);
}

TEST(Compile, CompileToTargetMapsAndEmitsStaticQIR) {
  ir::Context ctx;
  // A dynamic-addressing program with a long-range CX.
  Circuit source(4, 4);
  source.h(0);
  source.cx(0, 3);
  source.measureAll();
  ExportOptions exportOptions;
  exportOptions.addressing = Addressing::Dynamic;
  auto m = exportCircuit(ctx, source, exportOptions);

  CompileOptions options;
  options.target = circuit::Target::line(4);
  const CompileResult result = compileToTarget(ctx, *m, options);
  EXPECT_GT(result.swapsInserted, 0U);
  EXPECT_TRUE(circuit::respectsCoupling(result.circuit, *options.target));
  EXPECT_EQ(result.profile, Profile::Base);
  // The compiled module uses static addresses only.
  const ir::Function* main = result.module->entryPoint();
  for (const auto& inst : main->entry()->instructions()) {
    if (inst->op() == ir::Opcode::Call &&
        inst->callee()->name() == "__quantum__rt__qubit_allocate_array") {
      FAIL() << "dynamic allocation survived compilation";
    }
  }
}

} // namespace
} // namespace qirkit::qir
