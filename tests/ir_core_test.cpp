#include "ir/builder.hpp"
#include "ir/constant.hpp"
#include "ir/context.hpp"
#include "ir/module.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::ir {
namespace {

class IRCoreTest : public ::testing::Test {
protected:
  Context ctx;
  Module module{ctx, "test"};
};

TEST_F(IRCoreTest, TypesAreInterned) {
  EXPECT_EQ(ctx.i64(), ctx.intTy(64));
  EXPECT_EQ(ctx.i1(), ctx.intTy(1));
  EXPECT_NE(ctx.i1(), ctx.i64());
  EXPECT_EQ(ctx.arrayTy(ctx.i8(), 3), ctx.arrayTy(ctx.i8(), 3));
  EXPECT_NE(ctx.arrayTy(ctx.i8(), 3), ctx.arrayTy(ctx.i8(), 4));
  EXPECT_EQ(ctx.functionTy(ctx.voidTy(), {ctx.ptrTy()}),
            ctx.functionTy(ctx.voidTy(), {ctx.ptrTy()}));
}

TEST_F(IRCoreTest, TypePrinting) {
  EXPECT_EQ(ctx.i64()->str(), "i64");
  EXPECT_EQ(ctx.ptrTy()->str(), "ptr");
  EXPECT_EQ(ctx.voidTy()->str(), "void");
  EXPECT_EQ(ctx.doubleTy()->str(), "double");
  EXPECT_EQ(ctx.arrayTy(ctx.i8(), 3)->str(), "[3 x i8]");
  EXPECT_EQ(ctx.functionTy(ctx.ptrTy(), {ctx.i32(), ctx.i64()})->str(),
            "ptr (i32, i64)");
}

TEST_F(IRCoreTest, StoreSizes) {
  EXPECT_EQ(ctx.i1()->storeSize(), 1U);
  EXPECT_EQ(ctx.i32()->storeSize(), 4U);
  EXPECT_EQ(ctx.i64()->storeSize(), 8U);
  EXPECT_EQ(ctx.ptrTy()->storeSize(), 8U);
  EXPECT_EQ(ctx.doubleTy()->storeSize(), 8U);
  EXPECT_EQ(ctx.arrayTy(ctx.i8(), 5)->storeSize(), 5U);
}

TEST_F(IRCoreTest, ConstantsAreUniqued) {
  EXPECT_EQ(ctx.getI64(7), ctx.getI64(7));
  EXPECT_NE(ctx.getI64(7), ctx.getI64(8));
  EXPECT_NE(ctx.getI64(7), ctx.getInt(32, 7));
  EXPECT_EQ(ctx.getDouble(1.5), ctx.getDouble(1.5));
  EXPECT_EQ(ctx.getNullPtr(), ctx.getNullPtr());
  EXPECT_EQ(ctx.getIntToPtr(3), ctx.getIntToPtr(3));
}

TEST_F(IRCoreTest, IntegerConstantsAreCanonicalizedToWidth) {
  // 255 as i8 is -1.
  EXPECT_EQ(ctx.getInt(8, 255), ctx.getInt(8, -1));
  EXPECT_EQ(ctx.getInt(8, 255)->value(), -1);
  EXPECT_EQ(ctx.getInt(8, 255)->zextValue(), 255U);
  EXPECT_EQ(ctx.getI1(true)->value(), -1); // i1 1 sign-extends to -1
  EXPECT_EQ(ctx.getI1(true)->zextValue(), 1U);
}

TEST_F(IRCoreTest, StaticPointerAddressDetection) {
  std::uint64_t address = 123;
  EXPECT_TRUE(getStaticPointerAddress(ctx.getNullPtr(), address));
  EXPECT_EQ(address, 0U);
  EXPECT_TRUE(getStaticPointerAddress(ctx.getIntToPtr(5), address));
  EXPECT_EQ(address, 5U);
  EXPECT_FALSE(getStaticPointerAddress(ctx.getI64(5), address));
}

TEST_F(IRCoreTest, UseListsTrackOperands) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = fn->createBlock("entry");
  IRBuilder b(bb);
  Instruction* x = b.createAdd(ctx.getI64(1), ctx.getI64(2), "x");
  Instruction* y = b.createAdd(x, x, "y");
  EXPECT_EQ(x->numUses(), 2U);
  EXPECT_EQ(y->numUses(), 0U);
  EXPECT_EQ(y->operand(0), x);
}

TEST_F(IRCoreTest, ReplaceAllUsesWithRewritesEveryUse) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = fn->createBlock("entry");
  IRBuilder b(bb);
  Instruction* x = b.createAdd(ctx.getI64(1), ctx.getI64(2), "x");
  Instruction* y = b.createAdd(x, x, "y");
  Instruction* z = b.createMul(x, y, "z");
  x->replaceAllUsesWith(ctx.getI64(3));
  EXPECT_FALSE(x->hasUses());
  EXPECT_EQ(y->operand(0), ctx.getI64(3));
  EXPECT_EQ(y->operand(1), ctx.getI64(3));
  EXPECT_EQ(z->operand(0), ctx.getI64(3));
  EXPECT_EQ(z->operand(1), y);
}

TEST_F(IRCoreTest, EraseInstructionDropsOperandsFromUseLists) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = fn->createBlock("entry");
  IRBuilder b(bb);
  Instruction* x = b.createAdd(ctx.getI64(1), ctx.getI64(2), "x");
  Instruction* y = b.createAdd(x, ctx.getI64(1), "y");
  EXPECT_EQ(x->numUses(), 1U);
  y->eraseFromParent();
  EXPECT_EQ(x->numUses(), 0U);
  EXPECT_EQ(bb->size(), 1U);
}

TEST_F(IRCoreTest, BlocksAsOperandsGivePredecessors) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* entry = fn->createBlock("entry");
  BasicBlock* a = fn->createBlock("a");
  BasicBlock* b2 = fn->createBlock("b");
  IRBuilder b(entry);
  b.createCondBr(ctx.getI1(true), a, b2);
  b.setInsertPoint(a);
  b.createBr(b2);
  b.setInsertPoint(b2);
  b.createRetVoid();

  const auto preds = b2->predecessors();
  EXPECT_EQ(preds.size(), 2U);
  EXPECT_TRUE(b2->hasPredecessor(entry));
  EXPECT_TRUE(b2->hasPredecessor(a));
  EXPECT_FALSE(entry->hasPredecessor(a));
  EXPECT_EQ(entry->successors().size(), 2U);
}

TEST_F(IRCoreTest, PhiIncomingManagement) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* a = fn->createBlock("a");
  BasicBlock* b2 = fn->createBlock("b");
  BasicBlock* join = fn->createBlock("join");
  IRBuilder b(join);
  Instruction* phi = b.createPhi(ctx.i64(), "p");
  phi->addIncoming(ctx.getI64(1), a);
  phi->addIncoming(ctx.getI64(2), b2);
  EXPECT_EQ(phi->numIncoming(), 2U);
  EXPECT_EQ(phi->incomingValueFor(a), ctx.getI64(1));
  EXPECT_EQ(phi->incomingValueFor(b2), ctx.getI64(2));
  phi->removeIncoming(a);
  EXPECT_EQ(phi->numIncoming(), 1U);
  EXPECT_EQ(phi->incomingValueFor(a), nullptr);
}

TEST_F(IRCoreTest, SwitchAccessors) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* entry = fn->createBlock("entry");
  BasicBlock* d = fn->createBlock("default");
  BasicBlock* c1 = fn->createBlock("case1");
  IRBuilder b(entry);
  Instruction* sw = b.createSwitch(ctx.getI64(1), d);
  sw->addOperand(ctx.getI64(1));
  sw->addOperand(c1);
  EXPECT_EQ(sw->numSwitchCases(), 1U);
  EXPECT_EQ(sw->numSuccessors(), 2U);
  EXPECT_EQ(sw->successor(0), d);
  EXPECT_EQ(sw->successor(1), c1);
  EXPECT_EQ(sw->switchCaseValue(0)->value(), 1);
}

TEST_F(IRCoreTest, FunctionAttributesAndEntryPoint) {
  Function* fn = module.createFunction("main", ctx.functionTy(ctx.voidTy(), {}));
  EXPECT_EQ(module.entryPoint(), nullptr);
  fn->setAttribute("entry_point");
  fn->setAttribute("required_num_qubits", "4");
  EXPECT_EQ(module.entryPoint(), fn);
  EXPECT_TRUE(fn->hasAttribute("entry_point"));
  EXPECT_EQ(fn->getAttribute("required_num_qubits"), "4");
  EXPECT_EQ(fn->getAttribute("missing"), "");
}

TEST_F(IRCoreTest, GetOrInsertFunctionChecksType) {
  const Type* t1 = ctx.functionTy(ctx.voidTy(), {ctx.ptrTy()});
  Function* f1 = module.getOrInsertFunction("g", t1);
  EXPECT_EQ(module.getOrInsertFunction("g", t1), f1);
  EXPECT_THROW((void)module.getOrInsertFunction("g", ctx.functionTy(ctx.i64(), {})),
               qirkit::SemanticError);
}

TEST_F(IRCoreTest, DuplicateFunctionNameThrows) {
  (void)module.createFunction("dup", ctx.functionTy(ctx.voidTy(), {}));
  EXPECT_THROW((void)module.createFunction("dup", ctx.functionTy(ctx.voidTy(), {})),
               qirkit::SemanticError);
}

TEST_F(IRCoreTest, GlobalStrings) {
  GlobalVariable* g = module.createGlobalString("lbl", std::string("r0\0", 3));
  EXPECT_EQ(module.getGlobal("lbl"), g);
  EXPECT_EQ(g->initializer().size(), 3U);
  EXPECT_TRUE(g->valueType()->isArray());
  EXPECT_EQ(g->valueType()->arrayCount(), 3U);
  EXPECT_TRUE(g->type()->isPointer());
}

TEST_F(IRCoreTest, InstructionCloneSharesOperands) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = fn->createBlock("entry");
  IRBuilder b(bb);
  Instruction* x = b.createICmp(ICmpPred::SLT, ctx.getI64(1), ctx.getI64(2), "c");
  auto clone = x->clone();
  EXPECT_EQ(clone->op(), Opcode::ICmp);
  EXPECT_EQ(clone->icmpPred(), ICmpPred::SLT);
  EXPECT_EQ(clone->operand(0), ctx.getI64(1));
  EXPECT_EQ(ctx.getI64(1)->numUses(), 2U); // original + clone
}

TEST_F(IRCoreTest, InstructionCountsAndBlockManagement) {
  Function* fn = module.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* entry = fn->createBlock("entry");
  BasicBlock* next = fn->createBlockAfter(entry, "next");
  EXPECT_EQ(fn->blocks()[1].get(), next);
  IRBuilder b(entry);
  b.createBr(next);
  b.setInsertPoint(next);
  b.createRetVoid();
  EXPECT_EQ(fn->instructionCount(), 2U);
  EXPECT_EQ(module.instructionCount(), 2U);
}

} // namespace
} // namespace qirkit::ir
