/// Telemetry layer tests: probe gating (disabled probes record nothing
/// and change no program output), counter/gauge/histogram semantics, the
/// compile-cache counters agreeing with CompileCache's own observable
/// Stats across repeated runShots batches, pass records, the versioned
/// --stats JSON report, and the Chrome trace-event writer.
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "passes/pass.hpp"
#include "qir/compile.hpp"
#include "qir/exporter.hpp"
#include "sim/statevector.hpp"
#include "support/error.hpp"
#include "support/telemetry/request_trace.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"
#include "vm/cache.hpp"
#include "vm/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace qirkit {
namespace {

/// Every test runs with a clean, enabled registry and a clean global
/// compile cache, and leaves telemetry disabled (the process default).
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    vm::CompileCache::global().clear();
    vm::CompileCache::global().setCapacity(vm::CompileCache::kDefaultCapacity);
    telemetry::setEnabled(true);
    telemetry::resetAll();
  }
  void TearDown() override {
    telemetry::resetAll();
    telemetry::setEnabled(false);
    vm::CompileCache::global().clear();
    vm::CompileCache::global().setCapacity(vm::CompileCache::kDefaultCapacity);
  }
};

TEST_F(TelemetryTest, DisabledProbesRecordNothing) {
  telemetry::setEnabled(false);
  static telemetry::Counter counter{"test.disabled.counter"};
  static telemetry::MaxGauge gauge{"test.disabled.gauge"};
  static telemetry::LatencyHistogram hist{"test.disabled.hist"};
  counter.add(7);
  gauge.updateMax(42);
  hist.record(1000);
  { telemetry::ScopedTimer t(counter); }
  EXPECT_EQ(counter.value(), 0U);
  EXPECT_EQ(gauge.value(), 0U);
  EXPECT_EQ(hist.count(), 0U);
}

TEST_F(TelemetryTest, CounterGaugeHistogramSemantics) {
  static telemetry::Counter counter{"test.counter"};
  static telemetry::MaxGauge gauge{"test.gauge"};
  static telemetry::LatencyHistogram hist{"test.hist"};
  counter.reset();
  gauge.reset();
  hist.reset();

  counter.add();
  counter.add(9);
  EXPECT_EQ(counter.value(), 10U);
  EXPECT_EQ(telemetry::counterValue("test.counter"), 10U);

  gauge.updateMax(5);
  gauge.updateMax(3); // lower value must not overwrite the high-watermark
  EXPECT_EQ(gauge.value(), 5U);

  hist.record(3);    // bucket [2,4)
  hist.record(1000); // bucket [512, 1024)... -> [2^9, 2^10)
  hist.record(1500);
  EXPECT_EQ(hist.count(), 3U);
  EXPECT_EQ(hist.sum(), 2503U);
  EXPECT_EQ(hist.min(), 3U);
  EXPECT_EQ(hist.max(), 1500U);
  EXPECT_EQ(hist.bucketCount(1), 1U);
  // Quantiles are bucket upper bounds, clamped to the observed max.
  EXPECT_GE(hist.quantileNs(0.99), 1500U);
  ASSERT_NE(telemetry::findHistogram("test.hist"), nullptr);
  EXPECT_EQ(telemetry::findHistogram("test.hist")->count(), 3U);
}

TEST_F(TelemetryTest, CacheCountersMatchObservableCacheStats) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions opts;
  opts.shots = 5;
  opts.engine = vm::Engine::Vm;

  const auto before = vm::CompileCache::global().stats();
  const auto first = vm::runShots(*m, opts);
  const auto second = vm::runShots(*m, opts);
  const auto after = vm::CompileCache::global().stats();

  // The batches themselves observed one miss then one hit.
  EXPECT_EQ(first.cacheMisses, 1U);
  EXPECT_EQ(second.cacheHits, 1U);
  // Telemetry counters agree with the cache's own Stats delta.
  EXPECT_EQ(telemetry::counterValue("vm.cache.misses"), after.misses - before.misses);
  EXPECT_EQ(telemetry::counterValue("vm.cache.hits"), after.hits - before.hits);
  EXPECT_EQ(telemetry::counterValue("vm.cache.misses"), 1U);
  EXPECT_EQ(telemetry::counterValue("vm.cache.hits"), 1U);
  EXPECT_EQ(telemetry::counterValue("vm.cache.evictions"), 0U);
  // Compilation happened exactly once across both batches.
  EXPECT_EQ(telemetry::counterValue("vm.compile.calls"), 1U);
}

TEST_F(TelemetryTest, EvictionCountersMatchAtCapacityOne) {
  vm::CompileCache::global().setCapacity(1);
  ir::Context ctx;
  const auto bell = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const auto ghz = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  vm::ShotOptions opts;
  opts.shots = 2;
  opts.engine = vm::Engine::Vm;

  (void)vm::runShots(*bell, opts); // miss, insert
  (void)vm::runShots(*ghz, opts);  // miss, evicts bell
  (void)vm::runShots(*bell, opts); // miss again (was evicted), evicts ghz

  const auto stats = vm::CompileCache::global().stats();
  EXPECT_EQ(vm::CompileCache::global().size(), 1U);
  EXPECT_EQ(stats.evictions, 2U);
  EXPECT_EQ(telemetry::counterValue("vm.cache.evictions"), stats.evictions);
  EXPECT_EQ(telemetry::counterValue("vm.cache.misses"), stats.misses);
  EXPECT_EQ(telemetry::counterValue("vm.cache.hits"), stats.hits);
}

TEST_F(TelemetryTest, DisabledTelemetryChangesNoProgramOutput) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  vm::ShotOptions opts;
  opts.shots = 50;
  opts.seed = 11;
  // Pin per-shot resim: the per-shot latency histogram asserted below is
  // only fed by that path (the sampling fast path runs one simulation).
  opts.execMode = vm::ExecMode::Resim;

  const auto withTelemetry = vm::runShots(*m, opts);
  telemetry::setEnabled(false);
  vm::CompileCache::global().clear();
  const auto without = vm::runShots(*m, opts);

  EXPECT_EQ(withTelemetry.histogram, without.histogram);
  EXPECT_EQ(withTelemetry.completedShots, without.completedShots);
  // And nothing was recorded while disabled: the shot counters still show
  // only the first (enabled) batch.
  EXPECT_EQ(telemetry::counterValue("shots.completed"), 50U);
  const auto* hist = telemetry::findHistogram("shots.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 50U);
}

TEST_F(TelemetryTest, ShotHistogramAndFailureCounters) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions opts;
  opts.shots = 20;
  opts.execMode = vm::ExecMode::Resim; // per-shot latency needs resim
  (void)vm::runShots(*m, opts);

  const auto* hist = telemetry::findHistogram("shots.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 20U);
  EXPECT_GT(hist->sum(), 0U);
  EXPECT_LE(hist->min(), hist->max());

  telemetry::recordShotFailure(ErrorCode::TrapOutOfBounds);
  telemetry::recordShotFailure(ErrorCode::TrapOutOfBounds);
  EXPECT_EQ(telemetry::shotFailureCount(ErrorCode::TrapOutOfBounds), 2U);
  EXPECT_EQ(telemetry::shotFailureCount(ErrorCode::Trap), 0U);
}

TEST_F(TelemetryTest, KernelCountersSurfaceInStatsJson) {
  // The statevector's swept kernels feed sim.kernel.*: a multi-chunk
  // fused sweep bumps blocked_sweeps (single-chunk states degenerate to
  // per-gate passes and don't count), and an admitted f32 batch bumps
  // f32_batches once. Both must come out of the --stats JSON report.
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  vm::ShotOptions opts;
  opts.shots = 4;
  opts.engine = vm::Engine::Vm;
  opts.precision = sim::Precision::F32;
  (void)vm::runShots(*m, opts);

  sim::StateVector sv(13); // one chunk is 2^12 amplitudes -> two chunks
  sim::SweepGate gate;
  gate.kind = sim::SweepGate::Kind::Unitary1;
  gate.q0 = 0;
  gate.m2 = sim::gateH();
  sv.applyFusedSweep({&gate, 1});

  EXPECT_GT(telemetry::counterValue("sim.kernel.blocked_sweeps"), 0U);
  EXPECT_EQ(telemetry::counterValue("sim.kernel.f32_batches"), 1U);
  const std::string json = telemetry::statsJson("test");
  EXPECT_NE(json.find("\"blocked_sweeps\""), std::string::npos);
  EXPECT_NE(json.find("\"f32_batches\":1"), std::string::npos);
}

TEST_F(TelemetryTest, PassRecordsAccumulateAcrossSweeps) {
  ir::Context ctx;
  auto module = ir::parseModule(ctx, R"(
define i64 @main() #0 {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  ret i64 %b
}
attributes #0 = { "entry_point" }
)");
  qir::transformDirect(*module);

  const auto records = telemetry::passRecords();
  ASSERT_FALSE(records.empty());
  bool sawSccp = false;
  for (const auto& rec : records) {
    EXPECT_GE(rec.invocations, 1U);
    if (rec.name == "sccp") {
      sawSccp = true;
      EXPECT_GE(rec.changes, 1U);
      EXPECT_LT(rec.irDelta, 0); // folding away the arithmetic shrinks the IR
    }
  }
  EXPECT_TRUE(sawSccp);
}

TEST_F(TelemetryTest, StatsJsonIsVersionedAndNested) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions opts;
  opts.shots = 3;
  (void)vm::runShots(*m, opts);

  const std::string json = telemetry::statsJson("test");
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"qirkit\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"test\""), std::string::npos);
  // Dotted names render as nesting: vm.cache.misses -> "vm":{"cache":{...}}.
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"passes\":["), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos); // single line for tail -1

  const std::string text = telemetry::statsText();
  EXPECT_NE(text.find("qirkit telemetry"), std::string::npos);
  EXPECT_NE(text.find("vm.cache.misses"), std::string::npos);
}

TEST_F(TelemetryTest, QuantileEdgeCases) {
  // Empty histogram: every quantile answers 0, not a bucket bound.
  telemetry::LatencyHistogram empty("test.quantile.empty",
                                    telemetry::Unregistered{});
  EXPECT_EQ(empty.quantileNs(0.5), 0U);
  EXPECT_EQ(empty.quantileNs(0.99), 0U);

  // Single sample: every quantile clamps to the one observed value,
  // not the bucket's upper bound (128 for a 100ns sample).
  telemetry::LatencyHistogram single("test.quantile.single",
                                     telemetry::Unregistered{});
  single.recordUnchecked(100);
  EXPECT_EQ(single.quantileNs(0.5), 100U);
  EXPECT_EQ(single.quantileNs(0.95), 100U);
  EXPECT_EQ(single.quantileNs(0.99), 100U);

  // Saturated top bucket: samples beyond the last bucket's range land in
  // bucket kBuckets-1; the quantile answers that bucket's bound rather
  // than overflowing or scanning past the array.
  telemetry::LatencyHistogram top("test.quantile.top",
                                  telemetry::Unregistered{});
  top.recordUnchecked(~std::uint64_t{0});
  top.recordUnchecked(~std::uint64_t{0});
  const std::uint64_t q = top.quantileNs(0.99);
  EXPECT_EQ(q, std::uint64_t{1}
                   << std::min<std::size_t>(telemetry::LatencyHistogram::kBuckets,
                                            63));
  EXPECT_EQ(top.count(), 2U);
}

TEST_F(TelemetryTest, StatsJsonCarriesP95) {
  static telemetry::LatencyHistogram hist{"test.p95.hist"};
  hist.record(1000);
  const std::string json = telemetry::statsJson("test");
  EXPECT_NE(json.find("\"p95_ns\":"), std::string::npos);
}

TEST_F(TelemetryTest, LabeledCounterBoundsCardinalityByEvictingLru) {
  static telemetry::LabeledCounter family{"test.labeled.counter", 2, "tenant"};
  family.reset();
  family.add("a");
  family.add("b");
  family.add("a", 4); // refreshes a: b is now least-recently-updated
  family.add("c");    // third label: evicts b
  EXPECT_EQ(family.value("a"), 5U);
  EXPECT_EQ(family.value("c"), 1U);
  EXPECT_EQ(family.value("b"), 0U); // evicted
  EXPECT_EQ(family.evictions(), 1U);
  EXPECT_EQ(family.values().size(), 2U);

  // A re-added evicted label starts from zero (history is gone).
  family.add("b");
  EXPECT_EQ(family.value("b"), 1U);
  EXPECT_EQ(family.evictions(), 2U);
}

TEST_F(TelemetryTest, LabeledCounterGatesOnEnabledFlag) {
  static telemetry::LabeledCounter family{"test.labeled.gated", 4, "tenant"};
  family.reset();
  telemetry::setEnabled(false);
  family.add("t");
  EXPECT_EQ(family.value("t"), 0U);
  EXPECT_TRUE(family.values().empty());
  telemetry::setEnabled(true);
  family.add("t");
  EXPECT_EQ(family.value("t"), 1U);
}

TEST_F(TelemetryTest, LabeledHistogramPerLabelQuantilesAndEviction) {
  static telemetry::LabeledHistogram family{"test.labeled.hist", 2, "tenant"};
  family.reset();
  family.record("a", 100);
  family.record("a", 200);
  family.record("b", 50);
  bool sawA = false;
  family.forEach([&](const std::string& label,
                     const telemetry::LatencyHistogram& h) {
    if (label == "a") {
      sawA = true;
      EXPECT_EQ(h.count(), 2U);
      EXPECT_EQ(h.quantileNs(0.99), 200U);
    }
  });
  EXPECT_TRUE(sawA);
  family.record("c", 10); // evicts a (least recently updated)
  EXPECT_EQ(family.evictions(), 1U);
  const std::vector<std::string> labels = family.labels();
  EXPECT_EQ(labels.size(), 2U);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), "a"), 0);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), "b"), 1);

  // Labeled families render as one leaf in the stats report, label
  // values never split by the dotted-name nesting.
  const std::string json = telemetry::statsJson("test");
  EXPECT_NE(json.find("\"labels\""), std::string::npos);
  EXPECT_NE(json.find("\"evicted\":1"), std::string::npos);
}

TEST_F(TelemetryTest, RequestTraceRecordsStagesRelativeToOrigin) {
  telemetry::RequestTrace trace("acme", "req-1");
  trace.addStage("admission", 5000, 50);
  trace.addStage("queue", 6000, 400);
  trace.addStage("execute", 7000, 900, "sample");
  const std::vector<telemetry::RequestStage> stages = trace.stages();
  ASSERT_EQ(stages.size(), 3U);
  EXPECT_EQ(stages[0].name, "admission");
  EXPECT_EQ(stages[2].note, "sample");

  const std::string json = trace.stagesJson();
  // start_ns is relative to the first recorded stage.
  EXPECT_NE(json.find("{\"stage\":\"admission\",\"start_ns\":0,\"dur_ns\":50}"),
            std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"queue\",\"start_ns\":1000"),
            std::string::npos);
  EXPECT_NE(json.find("\"note\":\"sample\""), std::string::npos);
}

TEST_F(TelemetryTest, RequestTraceEmitsTaggedChromeSpans) {
  const std::string path = ::testing::TempDir() + "/qirkit_reqtrace_test.json";
  std::remove(path.c_str());
  telemetry::trace::begin(path);
  telemetry::RequestTrace trace("acme", "req-9");
  trace.addStage("queue", 1000, 200);
  trace.addStage("execute", 2000, 700, "resim");
  trace.emitChromeSpans();
  ASSERT_TRUE(telemetry::trace::flush());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  // Spans are named request.<stage>[:note] and tagged with args carrying
  // the request id and tenant.
  EXPECT_NE(content.find("\"request.queue\""), std::string::npos);
  EXPECT_NE(content.find("\"request.execute:resim\""), std::string::npos);
  EXPECT_NE(content.find("\"request_id\":\"req-9\""), std::string::npos);
  EXPECT_NE(content.find("\"tenant\":\"acme\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, DisabledRequestTraceSpansStoreNothing) {
  ASSERT_FALSE(telemetry::trace::enabled());
  telemetry::RequestTrace trace("t", "r");
  trace.addStage("queue", 1, 2);
  trace.emitChromeSpans(); // one relaxed load, no buffering
  EXPECT_EQ(telemetry::trace::droppedEvents(), 0U);
}

TEST_F(TelemetryTest, JsonEscape) {
  EXPECT_EQ(telemetry::jsonEscape("plain"), "plain");
  EXPECT_EQ(telemetry::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(telemetry::jsonEscape("x\ny"), "x\\ny");
}

TEST_F(TelemetryTest, TraceWriterEmitsChromeEvents) {
  const std::string path = ::testing::TempDir() + "/qirkit_trace_test.json";
  std::remove(path.c_str());
  telemetry::trace::begin(path);
  ASSERT_TRUE(telemetry::trace::enabled());
  {
    telemetry::trace::Span outer("outer.region");
    telemetry::trace::Span inner("inner.region");
  }
  ASSERT_TRUE(telemetry::trace::flush());
  EXPECT_FALSE(telemetry::trace::enabled());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"outer.region\""), std::string::npos);
  EXPECT_NE(content.find("\"inner.region\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, DisabledTraceSpansStoreNothing) {
  ASSERT_FALSE(telemetry::trace::enabled());
  { telemetry::trace::Span span("never.recorded"); }
  EXPECT_EQ(telemetry::trace::droppedEvents(), 0U);
}

TEST_F(TelemetryTest, ResetAllZeroesEverything) {
  static telemetry::Counter counter{"test.reset.counter"};
  counter.add(3);
  telemetry::recordShotFailure(ErrorCode::Trap);
  telemetry::recordPassRun("some-pass", 10, true, 5, 4);
  telemetry::resetAll();
  EXPECT_EQ(counter.value(), 0U);
  EXPECT_EQ(telemetry::shotFailureCount(ErrorCode::Trap), 0U);
  EXPECT_TRUE(telemetry::passRecords().empty());
}

TEST_F(TelemetryTest, SnapshotCapturesRegisteredProbes) {
  static telemetry::Counter counter{"test.snap.counter"};
  static telemetry::MaxGauge gauge{"test.snap.gauge"};
  static telemetry::LatencyHistogram hist{"test.snap.hist"};
  counter.add(7);
  gauge.updateMax(41);
  hist.record(1000);
  hist.record(500);

  const telemetry::Snapshot snap = telemetry::snapshot();
  EXPECT_EQ(snap.value("test.snap.counter"), 7U);
  EXPECT_EQ(snap.value("test.snap.gauge"), 41U);
  EXPECT_EQ(snap.value("test.never.registered"), 0U);
  bool foundHist = false;
  for (const telemetry::Snapshot::Hist& h : snap.histograms) {
    if (h.name == "test.snap.hist") {
      foundHist = true;
      EXPECT_EQ(h.count, 2U);
      EXPECT_EQ(h.sumNs, 1500U);
    }
  }
  EXPECT_TRUE(foundHist);
}

TEST_F(TelemetryTest, DiffIsolatesOneRequestsActivity) {
  static telemetry::Counter counter{"test.diff.counter"};
  static telemetry::MaxGauge gauge{"test.diff.gauge"};
  static telemetry::LatencyHistogram hist{"test.diff.hist"};
  counter.add(10);
  gauge.updateMax(5);
  hist.record(100);

  const telemetry::Snapshot before = telemetry::snapshot();
  counter.add(3);
  gauge.updateMax(9);
  hist.record(250);
  const telemetry::Snapshot delta =
      telemetry::diff(before, telemetry::snapshot());

  // Monotonic scalars subtract; gauges report the current high-water mark.
  EXPECT_EQ(delta.value("test.diff.counter"), 3U);
  EXPECT_EQ(delta.value("test.diff.gauge"), 9U);
  for (const telemetry::Snapshot::Hist& h : delta.histograms) {
    if (h.name == "test.diff.hist") {
      EXPECT_EQ(h.count, 1U);
      EXPECT_EQ(h.sumNs, 250U);
    }
  }
}

TEST_F(TelemetryTest, DiffClampsBackwardCounters) {
  static telemetry::Counter counter{"test.diff.clamp"};
  counter.add(50);
  const telemetry::Snapshot before = telemetry::snapshot();
  // A reset between snapshots makes the counter go backwards; the delta
  // must report the post-reset value, never an underflowed wraparound.
  counter.reset();
  counter.add(2);
  const telemetry::Snapshot delta =
      telemetry::diff(before, telemetry::snapshot());
  EXPECT_EQ(delta.value("test.diff.clamp"), 2U);
}

TEST_F(TelemetryTest, SnapshotJsonOmitsZeroProbes) {
  static telemetry::Counter hot{"test.json.hot"};
  static telemetry::Counter cold{"test.json.cold"};
  static telemetry::LatencyHistogram hist{"test.json.hist"};
  hot.add(4);
  hist.record(2000);
  (void)cold;

  const std::string json = telemetry::snapshotJson(telemetry::snapshot());
  EXPECT_NE(json.find("\"test.json.hot\":4"), std::string::npos);
  EXPECT_EQ(json.find("test.json.cold"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist.sum_ns\":2000"), std::string::npos);
}

} // namespace
} // namespace qirkit
