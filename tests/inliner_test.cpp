#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"

#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

std::unique_ptr<Module> parse(Context& ctx, std::string_view text) {
  auto m = parseModule(ctx, text);
  verifyModuleOrThrow(*m);
  return m;
}

std::size_t countCalls(const Function& fn, std::string_view callee) {
  std::size_t count = 0;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::Call && inst->callee()->name() == callee) {
        ++count;
      }
    }
  }
  return count;
}

void runInliner(Module& m) {
  PassManager pm;
  pm.add(createInlinerPass());
  pm.setVerifyEach(true);
  pm.run(m);
}

TEST(Inliner, InlinesSmallVoidFunction) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @helper() {
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
define void @main() {
  call void @helper()
  call void @helper()
  ret void
}
)");
  runInliner(*m);
  const Function* main = m->getFunction("main");
  EXPECT_EQ(countCalls(*main, "helper"), 0U);
  EXPECT_EQ(countCalls(*main, "__quantum__qis__h__body"), 2U);
}

TEST(Inliner, InlinesReturnValue) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @twice(i64 %x) {
  %r = mul i64 %x, 2
  ret i64 %r
}
define i64 @main() {
  %a = call i64 @twice(i64 21)
  ret i64 %a
}
)");
  runInliner(*m);
  const Function* main = m->getFunction("main");
  EXPECT_EQ(countCalls(*main, "twice"), 0U);
  // After folding it becomes a constant 42.
  PassManager pm;
  addStandardPipeline(pm);
  pm.runToFixpoint(*m);
  const auto* c =
      dynamic_cast<const ConstantInt*>(main->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 42);
}

TEST(Inliner, InlinesMultiReturnWithPhi) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @pick(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i64 10
b:
  ret i64 20
}
define i64 @main(i1 %c) {
  %v = call i64 @pick(i1 %c)
  %w = add i64 %v, 1
  ret i64 %w
}
)");
  runInliner(*m);
  verifyModuleOrThrow(*m);
  const Function* main = m->getFunction("main");
  EXPECT_EQ(countCalls(*main, "pick"), 0U);
  EXPECT_GE(main->blocks().size(), 4U);
}

TEST(Inliner, RespectsNoinline) {
  Context ctx;
  auto m = parse(ctx, R"(
define void @helper() noinline {
  ret void
}
define void @main() {
  call void @helper()
  ret void
}
)");
  runInliner(*m);
  EXPECT_EQ(countCalls(*m->getFunction("main"), "helper"), 1U);
}

TEST(Inliner, RespectsSizeThreshold) {
  Context ctx;
  std::string big = "define void @big() {\n";
  for (int i = 0; i < 200; ++i) {
    big += "  %x" + std::to_string(i) + " = add i64 " + std::to_string(i) + ", 1\n";
  }
  big += "  ret void\n}\ndefine void @main() {\n  call void @big()\n  ret void\n}\n";
  auto m = parse(ctx, big);
  PassManager pm;
  pm.add(createInlinerPass(/*sizeThreshold=*/64));
  pm.run(*m);
  EXPECT_EQ(countCalls(*m->getFunction("main"), "big"), 1U);
  // alwaysinline overrides the threshold.
  m->getFunction("big")->setAttribute("alwaysinline");
  pm.run(*m);
  EXPECT_EQ(countCalls(*m->getFunction("main"), "big"), 0U);
}

TEST(Inliner, SkipsSelfRecursion) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @fact(i64 %n) {
entry:
  %base = icmp sle i64 %n, 1
  br i1 %base, label %one, label %rec
one:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %sub = call i64 @fact(i64 %n1)
  %r = mul i64 %n, %sub
  ret i64 %r
}
)");
  runInliner(*m);
  verifyModuleOrThrow(*m);
  EXPECT_EQ(countCalls(*m->getFunction("fact"), "fact"), 1U);
}

TEST(Inliner, TransitiveInliningFlattensCallChains) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @leaf() {
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
define void @mid() {
  call void @leaf()
  call void @leaf()
  ret void
}
define void @main() {
  call void @mid()
  ret void
}
)");
  runInliner(*m);
  EXPECT_EQ(countCalls(*m->getFunction("main"), "__quantum__qis__h__body"), 2U);
}

TEST(Inliner, SuccessorPhisAreRetargeted) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @val() {
  ret i64 5
}
define i64 @main(i1 %c) {
entry:
  br i1 %c, label %callside, label %other
callside:
  %v = call i64 @val()
  br label %join
other:
  br label %join
join:
  %p = phi i64 [ %v, %callside ], [ 0, %other ]
  ret i64 %p
}
)");
  runInliner(*m);
  verifyModuleOrThrow(*m); // would fail if the phi still named %callside
}


TEST(StripDeadFunctions, RemovesUncalledHelpersAfterInlining) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @helper() {
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
define void @main() #0 {
  call void @helper()
  ret void
}
attributes #0 = { "entry_point" }
)");
  PassManager pm;
  addFullPipeline(pm);
  pm.setVerifyEach(true);
  pm.runToFixpoint(*m);
  EXPECT_EQ(m->getFunction("helper"), nullptr); // inlined, then stripped
  ASSERT_NE(m->getFunction("main"), nullptr);
  EXPECT_NE(m->getFunction("__quantum__qis__h__body"), nullptr); // declarations stay
}

TEST(StripDeadFunctions, LibraryModulesAreUntouched) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @api(i64 %x) {
  %r = add i64 %x, 1
  ret i64 %r
}
)");
  PassManager pm;
  pm.add(createStripDeadFunctionsPass());
  EXPECT_FALSE(pm.run(*m)); // no entry point: every definition is a root
  EXPECT_NE(m->getFunction("api"), nullptr);
}

TEST(StripDeadFunctions, KeepsTransitivelyCalledHelpers) {
  Context ctx;
  auto m = parse(ctx, R"(
define void @used() noinline {
  ret void
}
define void @main() #0 {
  call void @used()
  ret void
}
attributes #0 = { "entry_point" }
)");
  PassManager pm;
  pm.add(createStripDeadFunctionsPass());
  EXPECT_FALSE(pm.run(*m));
  EXPECT_NE(m->getFunction("used"), nullptr);
}

} // namespace
} // namespace qirkit::passes
