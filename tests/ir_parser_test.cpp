#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::ir {
namespace {

std::unique_ptr<Module> parseOk(Context& ctx, std::string_view text) {
  auto module = parseModule(ctx, text);
  verifyModuleOrThrow(*module);
  return module;
}

TEST(IRParser, EmptyModule) {
  Context ctx;
  const auto m = parseModule(ctx, "; just a comment\n");
  EXPECT_TRUE(m->functions().empty());
}

TEST(IRParser, SkipsSourceFilenameAndTarget) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
source_filename = "foo.ll"
target datalayout = "e-m:e"
target triple = "x86_64-unknown-linux-gnu"
define void @main() {
  ret void
}
)");
  EXPECT_NE(m->getFunction("main"), nullptr);
}

TEST(IRParser, ParsesDeclaration) {
  Context ctx;
  const auto m = parseOk(ctx, "declare ptr @f(i64, double)\n");
  const Function* f = m->getFunction("f");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->isDeclaration());
  EXPECT_TRUE(f->returnType()->isPointer());
  ASSERT_EQ(f->functionType()->paramTypes().size(), 2U);
  EXPECT_TRUE(f->functionType()->paramTypes()[0]->isInteger(64));
  EXPECT_TRUE(f->functionType()->paramTypes()[1]->isDouble());
}

TEST(IRParser, ParsesArithmeticAndControlFlow) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %acc.next = add i64 %acc, %i
  %i.next = add nsw i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
)");
  const Function* f = m->getFunction("sum");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->blocks().size(), 4U);
  EXPECT_EQ(f->entry()->name(), "entry");
  // Blocks in source order.
  EXPECT_EQ(f->blocks()[1]->name(), "header");
  EXPECT_EQ(f->blocks()[3]->name(), "exit");
}

TEST(IRParser, ForwardReferencesAreResolved) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
define i64 @f() {
entry:
  br label %second
second:
  %x = phi i64 [ %later, %third ], [ 1, %entry ]
  br label %third
third:
  %later = add i64 %x, 1
  %done = icmp sgt i64 %later, 10
  br i1 %done, label %exit, label %second
exit:
  ret i64 %later
}
)");
  EXPECT_EQ(m->getFunction("f")->blocks().size(), 4U);
}

TEST(IRParser, UndefinedValueIsAnError) {
  Context ctx;
  EXPECT_THROW((void)parseModule(ctx, R"(
define void @f() {
  %x = add i64 %missing, 1
  ret void
}
)"),
               qirkit::ParseError);
}

TEST(IRParser, UndefinedLabelIsAnError) {
  Context ctx;
  EXPECT_THROW((void)parseModule(ctx, R"(
define void @f() {
  br label %nowhere
}
)"),
               qirkit::ParseError);
}

TEST(IRParser, CallToUndeclaredFunctionIsAnError) {
  Context ctx;
  EXPECT_THROW((void)parseModule(ctx, R"(
define void @f() {
  call void @ghost()
  ret void
}
)"),
               qirkit::ParseError);
}

TEST(IRParser, GetElementPtrIsRejectedWithClearMessage) {
  Context ctx;
  try {
    (void)parseModule(ctx, R"(
define void @f() {
  %p = getelementptr i8, ptr null, i64 1
  ret void
}
)");
    FAIL() << "expected ParseError";
  } catch (const qirkit::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("getelementptr"), std::string::npos);
  }
}

// --- The paper's own snippets ----------------------------------------------

/// Ex. 2 / Fig. 1 (right): the Bell program with dynamically allocated
/// qubits, in modern opaque-pointer syntax.
TEST(IRParser, PaperEx2BellProgram) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare ptr @__quantum__rt__array_create_1d(i32, i64)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() {
  %q = alloca ptr, align 8
  %0 = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  store ptr %0, ptr %q, align 8
  %c = alloca ptr, align 8
  %1 = call ptr @__quantum__rt__array_create_1d(i32 1, i64 2)
  store ptr %1, ptr %c, align 8
  %2 = load ptr, ptr %q, align 8
  %3 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %2, i64 0)
  call void @__quantum__qis__h__body(ptr %3)
  %4 = load ptr, ptr %q, align 8
  %5 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %4, i64 0)
  %6 = load ptr, ptr %q, align 8
  %7 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %6, i64 1)
  call void @__quantum__qis__cnot__body(ptr %5, ptr %7)
  %8 = load ptr, ptr %q, align 8
  %9 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %8, i64 0)
  %10 = load ptr, ptr %c, align 8
  %11 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %10, i64 0)
  call void @__quantum__qis__mz__body(ptr %9, ptr %11)
  ret void
}
)");
  EXPECT_EQ(m->getFunction("main")->instructionCount(), 20U);
}

/// Ex. 6: static qubit addressing — "the lines for allocating the qubits
/// disappear".
TEST(IRParser, PaperEx6StaticAddressing) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() {
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr writeonly null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr writeonly inttoptr (i64 1 to ptr))
  ret void
}
)");
  const Function* main = m->getFunction("main");
  // Second call's second operand is the inttoptr constant for qubit 1.
  const Instruction* cnot = main->entry()->instructions()[1].get();
  std::uint64_t address = 0;
  ASSERT_TRUE(getStaticPointerAddress(cnot->operand(1), address));
  EXPECT_EQ(address, 1U);
}

/// Ex. 4: the FOR loop applying H to qubits 0..9.
TEST(IRParser, PaperEx4ForLoop) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
declare void @__quantum__qis__h__body(ptr)

define void @main() {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header
for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, 10
  br i1 %cond, label %body, label %exit
body:
  %2 = load i32, ptr %i, align 4
  %q64 = sext i32 %2 to i64
  %q = inttoptr i64 %q64 to ptr
  call void @__quantum__qis__h__body(ptr %q)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header
exit:
  ret void
}
)");
  EXPECT_EQ(m->getFunction("main")->blocks().size(), 4U);
}

TEST(IRParser, LegacyTypedPointersAndOpaqueAliases) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
%Qubit = type opaque
%Result = type opaque
declare void @__quantum__qis__h__body(%Qubit*)
declare void @__quantum__qis__mz__body(%Qubit*, %Result*)
define void @main() {
  call void @__quantum__qis__h__body(%Qubit* null)
  ret void
}
)");
  const Function* h = m->getFunction("__quantum__qis__h__body");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->functionType()->paramTypes()[0]->isPointer());
}

TEST(IRParser, AttributeGroupsAttachToFunctions) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
define void @main() #0 {
  ret void
}
attributes #0 = { "entry_point" "qir_profiles"="base_profile" "required_num_qubits"="2" }
)");
  const Function* main = m->getFunction("main");
  EXPECT_TRUE(main->hasAttribute("entry_point"));
  EXPECT_EQ(main->getAttribute("qir_profiles"), "base_profile");
  EXPECT_EQ(main->getAttribute("required_num_qubits"), "2");
  EXPECT_EQ(m->entryPoint(), main);
}

TEST(IRParser, GlobalStringConstants) {
  Context ctx;
  const auto m = parseOk(ctx, "@lbl = internal constant [3 x i8] c\"r0\\00\"\n");
  const GlobalVariable* g = m->getGlobal("lbl");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->initializer(), std::string("r0\0", 3));
}

TEST(IRParser, GlobalSizeMismatchIsAnError) {
  Context ctx;
  EXPECT_THROW((void)parseModule(ctx, "@lbl = constant [5 x i8] c\"r0\\00\"\n"),
               qirkit::ParseError);
}

TEST(IRParser, SelectSwitchAndCasts) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
define i64 @f(i64 %x) {
entry:
  %c = icmp eq i64 %x, 0
  %s = select i1 %c, i64 10, i64 20
  %t = trunc i64 %s to i32
  %z = zext i32 %t to i64
  switch i64 %z, label %other [
    i64 10, label %ten
    i64 20, label %twenty
  ]
ten:
  ret i64 1
twenty:
  ret i64 2
other:
  ret i64 %z
}
)");
  EXPECT_EQ(m->getFunction("f")->blocks().size(), 4U);
}

TEST(IRParser, FloatLiteralsDecimalAndHex) {
  Context ctx;
  const auto m = parseOk(ctx, R"(
define double @f() {
  %a = fadd double 1.5, 2.5e-1
  %b = fadd double %a, 0x3FF0000000000000
  ret double %b
}
)");
  const auto& insts = m->getFunction("f")->entry()->instructions();
  const auto* one = dynamic_cast<const ConstantFP*>(insts[1]->operand(1));
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->value(), 1.0);
}

// --- round-trip property: print(parse(print(m))) == print(m) ---------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsAFixpoint) {
  Context ctx;
  const auto first = parseModule(ctx, GetParam());
  verifyModuleOrThrow(*first);
  const std::string printed = printModule(*first);
  Context ctx2;
  const auto second = parseModule(ctx2, printed);
  verifyModuleOrThrow(*second);
  EXPECT_EQ(printModule(*second), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, RoundTripTest,
    ::testing::Values(
        "define void @main() {\n  ret void\n}\n",
        R"(define i64 @loop(i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %inc, %b ]
  %c = icmp ult i64 %i, %n
  br i1 %c, label %b, label %e
b:
  %inc = add i64 %i, 1
  br label %h
e:
  ret i64 %i
}
)",
        R"(declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__h__body(ptr inttoptr (i64 7 to ptr))
  ret void
}
attributes #0 = { "entry_point" }
)",
        R"(define double @angles(double %x) {
  %a = fmul double %x, 3.141592653589793
  %b = fdiv double %a, 2.0
  %c = fcmp olt double %b, 1.0
  %d = select i1 %c, double %a, double %b
  ret double %d
}
)",
        R"(define i64 @mem() {
  %slot = alloca i64, align 8
  store i64 42, ptr %slot, align 8
  %v = load i64, ptr %slot, align 8
  ret i64 %v
}
)"));

} // namespace
} // namespace qirkit::ir
