/// Tests for the `qirkit serve` subsystem: the JSON micro-parser, the
/// wire-protocol request validation, the admission queue's quotas /
/// fairness / deterministic per-tenant seed streams, and a live in-process
/// server exercised over a real Unix-domain socket — concurrent tenants,
/// cross-request compile-cache hits in the metrics document, structured
/// error responses for malformed and oversized frames that leave the
/// connection usable, and the resource-limit taxonomy for quota rejects.
#include "service/client.hpp"
#include "service/flight_recorder.hpp"
#include "service/json.hpp"
#include "service/prometheus.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace qirkit::service {
namespace {

constexpr const char* kBellQasm =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[2];\n"
    "creg c[2];\n"
    "h q[0];\n"
    "cx q[0], q[1];\n"
    "measure q -> c;\n";

// ---------------------------------------------------------------- json --

TEST(ServiceJsonTest, ParsesNestedDocument) {
  const json::Value v = json::parse(
      R"({"a":1,"b":"x\n\"y\"","c":[true,false,null],"d":{"e":-2.5}})");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("a")->asU64("a"), 1U);
  EXPECT_EQ(v.find("b")->string, "x\n\"y\"");
  ASSERT_EQ(v.find("c")->array.size(), 3U);
  EXPECT_TRUE(v.find("c")->array[0].boolean);
  EXPECT_TRUE(v.find("c")->array[2].isNull());
  EXPECT_DOUBLE_EQ(v.find("d")->find("e")->number, -2.5);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServiceJsonTest, RejectsMalformedInputWithByteOffset) {
  for (const char* bad : {"{", "{\"a\":}", "[1,]", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "{'a':1}"}) {
    try {
      (void)json::parse(bad);
      FAIL() << "accepted malformed input: " << bad;
    } catch (const qirkit::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse) << bad;
      EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos) << bad;
    }
  }
}

TEST(ServiceJsonTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += "[";
  }
  EXPECT_THROW((void)json::parse(deep), qirkit::Error);
}

TEST(ServiceJsonTest, AsU64RejectsNonIntegers) {
  const json::Value v = json::parse(R"({"neg":-1,"frac":1.5,"str":"9"})");
  EXPECT_THROW((void)v.find("neg")->asU64("neg"), qirkit::Error);
  EXPECT_THROW((void)v.find("frac")->asU64("frac"), qirkit::Error);
  EXPECT_THROW((void)v.find("str")->asU64("str"), qirkit::Error);
}

// ------------------------------------------------------------ protocol --

TEST(ServiceProtocolTest, ParsesFullSubmitRequest) {
  const Request req = parseRequest(
      R"({"type":"submit","tenant":"alice","program":"text","shots":64,)"
      R"("seed":7,"engine":"interp","exec_mode":"resim","fusion":false,)"
      R"("priority":-3})");
  ASSERT_EQ(req.type, RequestType::Submit);
  EXPECT_EQ(req.submit.tenant, "alice");
  EXPECT_EQ(req.submit.program, "text");
  EXPECT_EQ(req.submit.shots, 64U);
  ASSERT_TRUE(req.submit.seed.has_value());
  EXPECT_EQ(*req.submit.seed, 7U);
  EXPECT_EQ(req.submit.engine, vm::Engine::Interp);
  EXPECT_EQ(req.submit.execMode, vm::ExecMode::Resim);
  EXPECT_FALSE(req.submit.fusion);
  EXPECT_EQ(req.submit.priority, -3);
}

TEST(ServiceProtocolTest, SubmitRequestJsonRoundTrips) {
  SubmitRequest original;
  original.tenant = "t\"quoted\"";
  original.program = "line1\nline2";
  original.shots = 9;
  original.seed = 123;
  original.engine = vm::Engine::Interp;
  original.execMode = vm::ExecMode::Sample;
  original.fusion = false;
  original.priority = 4;
  const Request parsed = parseRequest(submitRequestJson(original));
  EXPECT_EQ(parsed.submit.tenant, original.tenant);
  EXPECT_EQ(parsed.submit.program, original.program);
  EXPECT_EQ(parsed.submit.shots, original.shots);
  EXPECT_EQ(parsed.submit.seed, original.seed);
  EXPECT_EQ(parsed.submit.engine, original.engine);
  EXPECT_EQ(parsed.submit.execMode, original.execMode);
  EXPECT_EQ(parsed.submit.fusion, original.fusion);
  EXPECT_EQ(parsed.submit.priority, original.priority);
}

TEST(ServiceProtocolTest, RejectsStructurallyInvalidRequests) {
  const auto expectUsage = [](const char* line) {
    try {
      (void)parseRequest(line);
      FAIL() << "accepted: " << line;
    } catch (const qirkit::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::Usage) << line;
    }
  };
  expectUsage(R"({"type":"warp"})");
  expectUsage(R"({"shots":5})"); // missing type
  expectUsage(R"({"type":"submit","program":"x"})"); // missing tenant
  expectUsage(R"({"type":"submit","tenant":"a"})"); // no program
  expectUsage(
      R"({"type":"submit","tenant":"a","program":"x","program_ref":"y"})");
  expectUsage(R"({"type":"submit","tenant":"a","program":"x","shots":-1})");
  expectUsage(
      R"({"type":"submit","tenant":"a","program":"x","engine":"gpu"})");
  expectUsage(
      R"({"type":"submit","tenant":"a","program":"x","fusion":"yes"})");
  expectUsage(
      R"({"type":"submit","tenant":"a","program":"x","priority":1.5})");
  EXPECT_THROW((void)parseRequest("not json"), qirkit::Error);
}

TEST(ServiceProtocolTest, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::Parse, ErrorCode::Usage, ErrorCode::ResourceLimit,
        ErrorCode::TrapInvalidQubit, ErrorCode::Deadline,
        ErrorCode::Internal}) {
    EXPECT_EQ(errorCodeFromName(errorCodeName(code)), code);
  }
  EXPECT_EQ(errorCodeFromName("never-heard-of-it"), ErrorCode::Internal);
}

TEST(ServiceProtocolTest, DeadlineAndRequestIdRoundTrip) {
  SubmitRequest original;
  original.tenant = "alice";
  original.program = "x";
  original.deadlineMs = 1500;
  original.requestId = "req-42";
  const Request parsed = parseRequest(submitRequestJson(original));
  EXPECT_EQ(parsed.submit.deadlineMs, 1500U);
  EXPECT_EQ(parsed.submit.requestId, "req-42");

  // Absent fields default to "no deadline" / "not cancellable".
  const Request bare = parseRequest(
      R"({"type":"submit","tenant":"a","program":"x"})");
  EXPECT_EQ(bare.submit.deadlineMs, 0U);
  EXPECT_TRUE(bare.submit.requestId.empty());
}

TEST(ServiceProtocolTest, CancelVerbParsesAndValidates) {
  CancelRequest original;
  original.tenant = "alice";
  original.requestId = "req-42";
  const Request parsed = parseRequest(cancelRequestJson(original));
  ASSERT_EQ(parsed.type, RequestType::Cancel);
  EXPECT_EQ(parsed.cancel.tenant, "alice");
  EXPECT_EQ(parsed.cancel.requestId, "req-42");

  // Both fields are mandatory: a cancel that names no job is a usage
  // error, not a no-op.
  for (const char* bad :
       {R"({"type":"cancel"})", R"({"type":"cancel","tenant":"a"})",
        R"({"type":"cancel","request_id":"r"})"}) {
    try {
      (void)parseRequest(bad);
      FAIL() << "accepted: " << bad;
    } catch (const qirkit::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::Usage) << bad;
    }
  }
}

TEST(ServiceProtocolTest, ErrorResponseSplicesExtraMembers) {
  const json::Value v = json::parse(errorResponseJson(
      ErrorCode::ResourceLimit, "too busy", "\"retry_after_ms\":125"));
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->string, "resource-limit");
  EXPECT_EQ(v.find("retry_after_ms")->asU64("retry_after_ms"), 125U);
}

TEST(ServiceProtocolTest, MetricsFormatRoundTrips) {
  EXPECT_FALSE(parseRequest(R"({"type":"metrics"})").metrics.prometheus);
  EXPECT_FALSE(
      parseRequest(R"({"type":"metrics","format":"json"})").metrics.prometheus);
  EXPECT_TRUE(parseRequest(R"({"type":"metrics","format":"prometheus"})")
                  .metrics.prometheus);
  EXPECT_THROW((void)parseRequest(R"({"type":"metrics","format":"xml"})"),
               qirkit::Error);

  MetricsRequest req;
  req.prometheus = true;
  EXPECT_TRUE(parseRequest(metricsRequestJson(req)).metrics.prometheus);
  req.prometheus = false;
  EXPECT_FALSE(parseRequest(metricsRequestJson(req)).metrics.prometheus);
}

TEST(ServiceProtocolTest, EventsVerbRoundTrips) {
  const Request bare = parseRequest(R"({"type":"events"})");
  ASSERT_EQ(bare.type, RequestType::Events);
  EXPECT_TRUE(bare.events.tenant.empty());
  EXPECT_EQ(bare.events.limit, 0U);

  EventsRequest req;
  req.tenant = "acme";
  req.limit = 7;
  const Request parsed = parseRequest(eventsRequestJson(req));
  ASSERT_EQ(parsed.type, RequestType::Events);
  EXPECT_EQ(parsed.events.tenant, "acme");
  EXPECT_EQ(parsed.events.limit, 7U);
}

TEST(ServiceProtocolTest, SubmitResponseCarriesStages) {
  SubmitResponse response;
  response.programId = "abc";
  response.jobId = 4;
  response.shots = 2;
  response.stagesJson =
      R"([{"stage":"queue","start_ns":0,"dur_ns":10}])";
  const json::Value v = json::parse(submitResponseJson(response));
  const json::Value* stages = v.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array.size(), 1U);
  EXPECT_EQ(stages->array[0].find("stage")->string, "queue");
}

// ----------------------------------------------------- flight recorder --

TEST(FlightRecorderTest, RingWrapsAndQueriesNewestFirstBounded) {
  FlightRecorder recorder(/*capacity=*/3, /*slowThresholdNs=*/0);
  for (int i = 1; i <= 5; ++i) {
    FlightRecord rec;
    rec.jobId = static_cast<std::uint64_t>(i);
    rec.tenant = i % 2 == 0 ? "even" : "odd";
    rec.outcome = "ok";
    recorder.record(std::move(rec));
  }
  EXPECT_EQ(recorder.recorded(), 5U);

  // Only the newest `capacity` records survive, oldest first.
  const std::vector<FlightRecord> all = recorder.query();
  ASSERT_EQ(all.size(), 3U);
  EXPECT_EQ(all.front().jobId, 3U);
  EXPECT_EQ(all.back().jobId, 5U);
  EXPECT_EQ(all.back().seq, 5U);

  // Tenant filter plus newest-limit truncation.
  const std::vector<FlightRecord> odd = recorder.query("odd", 1);
  ASSERT_EQ(odd.size(), 1U);
  EXPECT_EQ(odd.front().jobId, 5U);
}

TEST(FlightRecorderTest, KeepsStageTraceOnlyForSlowOrErroredRequests) {
  FlightRecorder recorder(/*capacity=*/8, /*slowThresholdNs=*/1000);
  const auto submit = [&](std::uint64_t totalNs, const char* outcome) {
    FlightRecord rec;
    rec.totalNs = totalNs;
    rec.outcome = outcome;
    rec.stagesJson = R"([{"stage":"queue","start_ns":0,"dur_ns":1}])";
    recorder.record(std::move(rec));
  };
  submit(10, "ok");      // fast + healthy: trace dropped
  submit(5000, "ok");    // slow: trace kept, marked slow
  submit(10, "error");   // errored: trace kept even though fast
  const std::vector<FlightRecord> records = recorder.query();
  ASSERT_EQ(records.size(), 3U);
  EXPECT_TRUE(records[0].stagesJson.empty());
  EXPECT_FALSE(records[0].slow);
  EXPECT_FALSE(records[1].stagesJson.empty());
  EXPECT_TRUE(records[1].slow);
  EXPECT_FALSE(records[2].stagesJson.empty());
  EXPECT_FALSE(records[2].slow);

  // The events JSON view carries the kept traces and omits the dropped.
  const std::string json = recorder.eventsJson();
  const json::Value v = json::parse(json);
  ASSERT_EQ(v.array.size(), 3U);
  EXPECT_EQ(v.array[0].find("stages"), nullptr);
  ASSERT_NE(v.array[1].find("stages"), nullptr);
  EXPECT_TRUE(v.array[1].find("slow")->boolean);
}

TEST(PrometheusTest, SanitizesMetricNames) {
  EXPECT_EQ(prometheusName("serve.job.latency_ns"),
            "qirkit_serve_job_latency_ns");
  EXPECT_EQ(prometheusName("a-b.c"), "qirkit_a_b_c");
}

// --------------------------------------------------------------- queue --

Job makeJob(const std::string& tenant, std::int64_t priority = 0,
            std::uint64_t shots = 10) {
  Job job;
  job.request.tenant = tenant;
  job.request.priority = priority;
  job.request.shots = shots;
  return job;
}

TEST(AdmissionQueueTest, EnforcesEveryQuota) {
  QueueLimits limits;
  limits.capacity = 3;
  limits.tenantMaxPending = 2;
  limits.maxShotsPerJob = 100;
  AdmissionQueue queue(limits);

  EXPECT_THROW(queue.push(makeJob("a", 0, 101)), qirkit::Error); // shot cap
  queue.push(makeJob("a"));
  queue.push(makeJob("a"));
  EXPECT_THROW(queue.push(makeJob("a")), qirkit::Error); // tenant pending
  queue.push(makeJob("b"));
  EXPECT_THROW(queue.push(makeJob("c")), qirkit::Error); // global capacity
  EXPECT_EQ(queue.stats().rejected, 3U);
  EXPECT_EQ(queue.stats().admitted, 3U);

  // Finishing a job frees the tenant slot (capacity frees on pop).
  ASSERT_TRUE(queue.pop().has_value());
  queue.onJobFinished("a");
  queue.push(makeJob("a"));

  queue.close();
  EXPECT_THROW(queue.push(makeJob("a")), qirkit::Error); // closed
}

TEST(AdmissionQueueTest, RoundRobinAcrossTenantsPriorityWithin) {
  AdmissionQueue queue(QueueLimits{});
  queue.push(makeJob("alice", 0)); // id 1
  queue.push(makeJob("alice", 5)); // id 2, jumps the tenant queue
  queue.push(makeJob("alice", 0)); // id 3
  queue.push(makeJob("bob", 0));   // id 4

  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) {
    auto job = queue.pop();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->id);
  }
  // Fair interleave between tenants; alice's high-priority job first
  // among hers: alice(2), bob(4), alice(1), alice(3).
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 4, 1, 3}));

  queue.close();
  EXPECT_FALSE(queue.pop().has_value()); // closed and drained
}

TEST(AdmissionQueueTest, TenantSeedStreamsAreDeterministicAndDistinct) {
  AdmissionQueue first{QueueLimits{}};
  AdmissionQueue second{QueueLimits{}};
  std::vector<std::uint64_t> seedsA;
  std::vector<std::uint64_t> seedsB;
  for (int i = 0; i < 3; ++i) {
    first.push(makeJob("alice"));
    first.push(makeJob("bob"));
  }
  for (int i = 0; i < 6; ++i) {
    auto job = first.pop();
    ASSERT_TRUE(job.has_value());
    (job->request.tenant == "alice" ? seedsA : seedsB).push_back(job->seed);
  }
  // A fresh daemon replays the identical per-tenant stream...
  for (int i = 0; i < 3; ++i) {
    second.push(makeJob("alice"));
  }
  for (int i = 0; i < 3; ++i) {
    auto job = second.pop();
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->seed, seedsA[static_cast<std::size_t>(i)]);
  }
  // ...streams advance (no repeated seeds) and tenants are decorrelated.
  EXPECT_NE(seedsA[0], seedsA[1]);
  EXPECT_NE(seedsA[0], seedsB[0]);

  // An explicit seed bypasses the stream entirely.
  Job pinned = makeJob("alice");
  pinned.request.seed = 42;
  second.push(std::move(pinned));
  auto job = second.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->seed, 42U);
}

TEST(AdmissionQueueTest, TokenBucketRateLimitsWithRetryHint) {
  QueueLimits limits;
  limits.ratePerSec = 200; // one token every 5ms
  limits.rateBurst = 2;
  AdmissionQueue queue(limits);

  queue.push(makeJob("alice"));
  queue.push(makeJob("alice"));
  try {
    queue.push(makeJob("alice"));
    FAIL() << "third admission must exhaust the burst";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.code(), ErrorCode::ResourceLimit);
    EXPECT_GE(e.retryAfterMs(), 1U);
    EXPECT_LE(e.retryAfterMs(), 5U); // deficit of at most one token
  }
  EXPECT_EQ(queue.stats().rateLimited, 1U);
  EXPECT_EQ(queue.stats().rejected, 1U); // rate-limited is a subset

  // The bucket refills continuously: after a token's worth of wall time
  // the same tenant is admitted again — a sliding window, not an epoch.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.push(makeJob("alice"));

  // Other tenants have their own bucket and are unaffected.
  queue.push(makeJob("bob"));
  queue.close();
}

// -------------------------------------------------------------- server --

/// A live daemon on a unique temp socket, torn down with the fixture.
class ServeTest : public ::testing::Test {
protected:
  void SetUp() override {
    socketPath_ = "/tmp/qirkit_serve_test_" + std::to_string(::getpid()) +
                  "_" + std::to_string(counter_++) + ".sock";
    ServerOptions options;
    options.socketPath = socketPath_;
    options.runners = 2;
    options.poolThreads = 2;
    options.queue.maxShotsPerJob = 1000;
    server_ = std::make_unique<Server>(options);
    server_->start();
  }
  void TearDown() override {
    server_->stop();
    server_.reset();
  }

  std::string submitLine(const std::string& tenant, std::uint64_t shots,
                         std::uint64_t seed) const {
    SubmitRequest req;
    req.tenant = tenant;
    req.program = kBellQasm;
    req.shots = shots;
    req.seed = seed;
    return submitRequestJson(req);
  }

  /// Tear the fixture daemon down and bring one up with tweaked options
  /// (same socket). Used by the overload/cancellation tests, which need
  /// a single runner or bespoke budgets.
  void restart(const std::function<void(ServerOptions&)>& tweak) {
    server_->stop();
    ServerOptions options;
    options.socketPath = socketPath_;
    options.runners = 1;
    options.poolThreads = 2;
    // These tests use multi-million-shot jobs as "slow work"; keep the
    // per-job shot ceiling out of their way.
    options.queue.maxShotsPerJob = 100'000'000;
    tweak(options);
    server_ = std::make_unique<Server>(options);
    server_->start();
  }

  /// A submit that keeps the single runner busy for seconds unless
  /// cancelled: per-shot resimulation pins the cost to shots x circuit.
  std::string slowSubmitLine(const std::string& tenant,
                             const std::string& requestId,
                             std::uint64_t shots,
                             std::uint64_t deadlineMs = 0) const {
    SubmitRequest req;
    req.tenant = tenant;
    req.program = kBellQasm;
    req.shots = shots;
    req.seed = 1;
    req.execMode = vm::ExecMode::Resim;
    req.requestId = requestId;
    req.deadlineMs = deadlineMs;
    return submitRequestJson(req);
  }

  static std::string cancelLine(const std::string& tenant,
                                const std::string& requestId) {
    CancelRequest req;
    req.tenant = tenant;
    req.requestId = requestId;
    return cancelRequestJson(req);
  }

  static int counter_;
  std::string socketPath_;
  std::unique_ptr<Server> server_;
};

int ServeTest::counter_ = 0;

TEST_F(ServeTest, PingAndShutdownVerbs) {
  Client client(socketPath_);
  const json::Value pong = json::parse(client.call(R"({"type":"ping"})"));
  EXPECT_TRUE(pong.find("ok")->boolean);
  EXPECT_EQ(pong.find("type")->string, "pong");
}

TEST_F(ServeTest, ConcurrentTenantsShareTheCompileCache) {
  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::string> histograms(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client(socketPath_);
        for (int i = 0; i < 3; ++i) {
          const json::Value v = json::parse(
              client.call(submitLine("tenant" + std::to_string(c % 2),
                                     /*shots=*/40, /*seed=*/9)));
          if (!v.find("ok")->boolean) {
            ++failures;
            return;
          }
          std::string bits;
          for (const auto& [key, count] : v.find("histogram")->object) {
            bits += key + "=" + std::to_string(
                                    static_cast<std::uint64_t>(count.number)) +
                    ";";
          }
          histograms[static_cast<std::size_t>(c)] = bits;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  ASSERT_EQ(failures.load(), 0);
  // Same program + same seed must mean the same histogram for everyone,
  // whichever runner/pool thread served it.
  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(histograms[static_cast<std::size_t>(c)], histograms[0]);
  }
  EXPECT_FALSE(histograms[0].empty());

  // The metrics document must show cross-request cache reuse: 12 submits
  // of one program = 1 miss, the rest hits/coalesced.
  Client metricsClient(socketPath_);
  const json::Value metrics =
      json::parse(metricsClient.call(R"({"type":"metrics"})"));
  const json::Value* cache = metrics.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("misses")->asU64("misses"), 1U);
  EXPECT_GE(cache->find("hits")->asU64("hits") +
                cache->find("coalesced")->asU64("coalesced"),
            11U);
  EXPECT_EQ(metrics.find("queue")->find("admitted")->asU64("admitted"), 12U);
  EXPECT_EQ(metrics.find("jobs")->find("completed")->asU64("completed"), 12U);
}

TEST_F(ServeTest, MalformedFrameKeepsConnectionAlive) {
  Client client(socketPath_);
  client.sendRaw("this is not json\n");
  const json::Value error = json::parse(client.readLine());
  EXPECT_FALSE(error.find("ok")->boolean);
  EXPECT_EQ(error.find("error")->find("code")->string, "parse");

  // Same connection, next frame: fully functional.
  const json::Value pong = json::parse(client.call(R"({"type":"ping"})"));
  EXPECT_TRUE(pong.find("ok")->boolean);

  const json::Value metrics =
      json::parse(client.call(R"({"type":"metrics"})"));
  EXPECT_GE(metrics.find("protocol")
                ->find("rejected_frames")
                ->asU64("rejected_frames"),
            1U);
}

TEST_F(ServeTest, OversizedFrameIsRejectedAndSkipped) {
  // Rebuild the server with a tiny frame limit.
  server_->stop();
  ServerOptions options;
  options.socketPath = socketPath_;
  options.maxFrameBytes = 64;
  server_ = std::make_unique<Server>(options);
  server_->start();

  Client client(socketPath_);
  client.sendRaw(std::string(500, 'x') + "\n");
  const json::Value error = json::parse(client.readLine());
  EXPECT_FALSE(error.find("ok")->boolean);
  EXPECT_EQ(error.find("error")->find("code")->string, "usage");
  // The oversized frame was discarded, not interpreted; the connection
  // still answers the next (small) request.
  const json::Value pong = json::parse(client.call(R"({"type":"ping"})"));
  EXPECT_TRUE(pong.find("ok")->boolean);
}

TEST_F(ServeTest, KernelTelemetrySurfacesInMetricsAndPrometheus) {
  Client client(socketPath_);
  SubmitRequest req;
  req.tenant = "alice";
  req.program = kBellQasm;
  req.shots = 10;
  req.seed = 3;
  req.precision = sim::Precision::F32;
  const json::Value result = json::parse(client.call(submitRequestJson(req)));
  ASSERT_TRUE(result.find("ok")->boolean);

  // The metrics verb's telemetry section omits zero probes, so presence
  // of f32_batches proves the f32 submit above actually moved it.
  const std::string metrics = client.call(R"({"type":"metrics"})");
  EXPECT_NE(metrics.find("sim.kernel.f32_batches"), std::string::npos);

  // The Prometheus exposition renders every registered scalar under the
  // sanitized qirkit_ prefix — including the SIMD lane count, which stays
  // zero on scalar builds but must still be scrapeable.
  const std::string prom =
      client.call(R"({"type":"metrics","format":"prometheus"})");
  EXPECT_NE(prom.find("qirkit_sim_kernel_blocked_sweeps"), std::string::npos);
  EXPECT_NE(prom.find("qirkit_sim_kernel_simd_lanes"), std::string::npos);
  EXPECT_NE(prom.find("qirkit_sim_kernel_f32_batches"), std::string::npos);
}

TEST_F(ServeTest, QuotaViolationsMapToResourceLimit) {
  Client client(socketPath_);
  SubmitRequest req;
  req.tenant = "greedy";
  req.program = kBellQasm;
  req.shots = 5000; // over the fixture's 1000-shot ceiling
  const json::Value error = json::parse(client.call(submitRequestJson(req)));
  EXPECT_FALSE(error.find("ok")->boolean);
  EXPECT_EQ(error.find("error")->find("code")->string, "resource-limit");
}

TEST_F(ServeTest, ProgramRefResubmissionSkipsReparsing) {
  Client client(socketPath_);
  const json::Value first =
      json::parse(client.call(submitLine("alice", 30, 5)));
  ASSERT_TRUE(first.find("ok")->boolean);
  const std::string programId = first.find("program_id")->string;
  ASSERT_FALSE(programId.empty());

  SubmitRequest byRef;
  byRef.tenant = "alice";
  byRef.programRef = programId;
  byRef.shots = 30;
  byRef.seed = 5;
  const json::Value second =
      json::parse(client.call(submitRequestJson(byRef)));
  ASSERT_TRUE(second.find("ok")->boolean);
  EXPECT_EQ(second.find("program_id")->string, programId);

  // Identical program + seed: identical histogram through either route.
  std::string h1;
  std::string h2;
  for (const auto& [k, v] : first.find("histogram")->object) {
    h1 += k + ":" + std::to_string(static_cast<std::uint64_t>(v.number)) + ",";
  }
  for (const auto& [k, v] : second.find("histogram")->object) {
    h2 += k + ":" + std::to_string(static_cast<std::uint64_t>(v.number)) + ",";
  }
  EXPECT_EQ(h1, h2);

  // An unknown ref is a usage error, and says so.
  SubmitRequest bogus;
  bogus.tenant = "alice";
  bogus.programRef = "doesnotexist12345";
  const json::Value error = json::parse(client.call(submitRequestJson(bogus)));
  EXPECT_FALSE(error.find("ok")->boolean);
  EXPECT_EQ(error.find("error")->find("code")->string, "usage");
}

TEST_F(ServeTest, DeadlineJobReturnsPartialResultsAndDaemonSurvives) {
  restart([](ServerOptions&) {}); // single runner, default (large) quotas

  Client client(socketPath_);
  // Far more shots than 10ms of per-shot resimulation can complete.
  const json::Value v = json::parse(
      client.call(slowSubmitLine("alice", "", 2'000'000, /*deadlineMs=*/10)));
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->string, "deadline");
  const std::uint64_t completed =
      v.find("completed_shots")->asU64("completed_shots");
  const std::uint64_t unstarted =
      v.find("unstarted_shots")->asU64("unstarted_shots");
  EXPECT_EQ(completed + unstarted, 2'000'000U);
  EXPECT_GT(unstarted, 0U);
  // Partial results: the histogram covers exactly the completed shots.
  std::uint64_t histogramTotal = 0;
  ASSERT_NE(v.find("histogram"), nullptr);
  for (const auto& [bits, count] : v.find("histogram")->object) {
    histogramTotal += static_cast<std::uint64_t>(count.number);
  }
  EXPECT_EQ(histogramTotal, completed);

  // The daemon shrugged the deadline off: next request runs to completion.
  const json::Value ok = json::parse(client.call(submitLine("alice", 20, 3)));
  EXPECT_TRUE(ok.find("ok")->boolean);
}

TEST_F(ServeTest, CancelVerbStopsARunningJob) {
  restart([](ServerOptions&) {});

  std::string response;
  std::thread submitter([&] {
    Client client(socketPath_);
    response = client.call(slowSubmitLine("alice", "long-job", 3'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  Client controller(socketPath_);
  const json::Value cancelled =
      json::parse(controller.call(cancelLine("alice", "long-job")));
  EXPECT_TRUE(cancelled.find("ok")->boolean);
  EXPECT_TRUE(cancelled.find("found")->boolean);
  submitter.join();

  // Whether the cancel landed while the job was queued or mid-batch, the
  // submitter sees the deadline taxonomy entry, never a hang or a crash.
  const json::Value v = json::parse(response);
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->string, "deadline");

  // A cancel for a job that no longer exists reports found=false.
  const json::Value missing =
      json::parse(controller.call(cancelLine("alice", "long-job")));
  EXPECT_TRUE(missing.find("ok")->boolean);
  EXPECT_FALSE(missing.find("found")->boolean);

  // Tenants cannot cancel each other's jobs: wrong tenant, same id.
  std::string response2;
  std::thread submitter2([&] {
    Client client(socketPath_);
    response2 = client.call(slowSubmitLine("alice", "scoped", 3'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const json::Value foreign =
      json::parse(controller.call(cancelLine("mallory", "scoped")));
  EXPECT_FALSE(foreign.find("found")->boolean);
  const json::Value owned =
      json::parse(controller.call(cancelLine("alice", "scoped")));
  EXPECT_TRUE(owned.find("found")->boolean);
  submitter2.join();
  EXPECT_FALSE(json::parse(response2).find("ok")->boolean);
}

TEST_F(ServeTest, CancelWhilePendingNeverExecutesTheJob) {
  restart([](ServerOptions&) {});

  std::string longResponse;
  std::thread longJob([&] {
    Client client(socketPath_);
    longResponse = client.call(slowSubmitLine("alice", "hog", 3'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // The runner is busy with the hog, so this job sits in the queue.
  std::string pendingResponse;
  std::thread pendingJob([&] {
    Client client(socketPath_);
    pendingResponse = client.call(slowSubmitLine("bob", "queued", 500));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  Client controller(socketPath_);
  const json::Value cancelled =
      json::parse(controller.call(cancelLine("bob", "queued")));
  EXPECT_TRUE(cancelled.find("found")->boolean);

  // Unblock the runner so the cancelled pending job is popped.
  (void)controller.call(cancelLine("alice", "hog"));
  pendingJob.join();
  longJob.join();

  const json::Value v = json::parse(pendingResponse);
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->string, "deadline");
  // Cancelled while pending: zero shots ever ran.
  EXPECT_EQ(v.find("completed_shots")->asU64("completed_shots"), 0U);
  EXPECT_EQ(v.find("unstarted_shots")->asU64("unstarted_shots"), 500U);
}

TEST_F(ServeTest, QueueTtlExpiresJobsAndReleasesTenantQuota) {
  restart([](ServerOptions& options) { options.queue.tenantMaxPending = 2; });

  std::string hogResponse;
  std::thread hog([&] {
    Client client(socketPath_);
    hogResponse = client.call(slowSubmitLine("alice", "hog", 3'000'000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  // Queued behind the hog with a deadline shorter than the hog's runtime:
  // this job's TTL expires while it is still pending.
  std::string ttlResponse;
  std::thread ttlJob([&] {
    Client client(socketPath_);
    ttlResponse = client.call(
        slowSubmitLine("alice", "ttl", 500, /*deadlineMs=*/150));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Tenant quota is now exhausted (hog running + ttl queued): a third job
  // rejects with resource-limit and a retry hint.
  Client controller(socketPath_);
  const json::Value third = json::parse(
      controller.call(slowSubmitLine("alice", "", 10)));
  EXPECT_FALSE(third.find("ok")->boolean);
  EXPECT_EQ(third.find("error")->find("code")->string, "resource-limit");
  ASSERT_NE(third.find("retry_after_ms"), nullptr);
  EXPECT_GE(third.find("retry_after_ms")->asU64("retry_after_ms"), 1U);

  // Wait past the TTL, cancel the hog; the runner pops the expired job
  // and delivers error[deadline] without ever executing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  (void)controller.call(cancelLine("alice", "hog"));
  ttlJob.join();
  hog.join();

  const json::Value v = json::parse(ttlResponse);
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->string, "deadline");
  EXPECT_EQ(v.find("completed_shots")->asU64("completed_shots"), 0U);
  EXPECT_EQ(v.find("unstarted_shots")->asU64("unstarted_shots"), 500U);

  // Both slots released: the tenant can admit again.
  const json::Value after = json::parse(controller.call(submitLine("alice", 10, 1)));
  EXPECT_TRUE(after.find("ok")->boolean);
}

TEST_F(ServeTest, MemoryAdmissionGuardRejectsOversizedPrograms) {
  restart([](ServerOptions& options) {
    options.memoryBudgetBytes = 1U << 20U; // 1 MiB: a 16-qubit state, max
  });

  // 17 qubits predict a 2 MiB statevector: rejected upfront, before any
  // allocation, with no retry hint (it can never fit).
  std::string wide = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                     "qreg q[17];\ncreg c[17];\nh q[0];\nmeasure q -> c;\n";
  SubmitRequest req;
  req.tenant = "alice";
  req.program = wide;
  req.shots = 5;
  Client client(socketPath_);
  const json::Value v = json::parse(client.call(submitRequestJson(req)));
  EXPECT_FALSE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("error")->find("code")->string, "resource-limit");
  EXPECT_NE(v.find("error")->find("message")->string.find("memory budget"),
            std::string::npos);
  EXPECT_EQ(v.find("retry_after_ms"), nullptr);

  // In-budget work is unaffected.
  const json::Value ok = json::parse(client.call(submitLine("alice", 10, 1)));
  EXPECT_TRUE(ok.find("ok")->boolean);

  // The metrics document accounts for the rejection and the budget.
  const json::Value metrics =
      json::parse(client.call(R"({"type":"metrics"})"));
  const json::Value* memory = metrics.find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_EQ(memory->find("budget_bytes")->asU64("budget_bytes"), 1U << 20U);
  EXPECT_GE(memory->find("rejected")->asU64("rejected"), 1U);
}

namespace {

/// Occurrences of \p needle in \p haystack (for exposition-body asserts).
std::size_t countOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

/// The value of an unlabeled scalar series in an exposition body, e.g.
/// "qirkit_serve_tenant_completed_evicted 3" -> 3. Fails the test when
/// the series is absent.
std::uint64_t expositionScalar(const std::string& body,
                               const std::string& series) {
  const std::string prefix = series + " ";
  std::size_t at = body.rfind("\n" + prefix);
  if (at != std::string::npos) {
    ++at; // step past the newline
  } else if (body.rfind(prefix, 0) == 0) {
    at = 0;
  } else {
    ADD_FAILURE() << "series '" << series << "' not in exposition body";
    return 0;
  }
  return std::stoull(body.substr(at + prefix.size()));
}

} // namespace

TEST_F(ServeTest, SubmitResponseReportsStageTimings) {
  Client client(socketPath_);
  const json::Value v = json::parse(client.call(submitLine("alice", 20, 3)));
  ASSERT_TRUE(v.find("ok")->boolean);

  // Every response carries the request's span tree: admission through
  // execute, each with a start offset and duration.
  const json::Value* stages = v.find("stages");
  ASSERT_NE(stages, nullptr);
  std::vector<std::string> names;
  names.reserve(stages->array.size());
  for (const json::Value& stage : stages->array) {
    names.push_back(stage.find("stage")->string);
    EXPECT_NE(stage.find("dur_ns"), nullptr);
    EXPECT_NE(stage.find("start_ns"), nullptr);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "admission"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "queue"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "compile"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "execute"), names.end());

  // The telemetry delta splits queue wait from execute time.
  const json::Value* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("serve.queue.wait_ns.count"), nullptr);
  EXPECT_GE(metrics->find("serve.queue.wait_ns.count")->asU64("count"), 1U);
  ASSERT_NE(metrics->find("serve.exec.run_ns.count"), nullptr);
}

TEST_F(ServeTest, MetricsDocumentCarriesLatencyPercentiles) {
  Client client(socketPath_);
  ASSERT_TRUE(json::parse(client.call(submitLine("alice", 20, 3)))
                  .find("ok")
                  ->boolean);
  const json::Value metrics =
      json::parse(client.call(R"({"type":"metrics"})"));
  const json::Value* latency = metrics.find("latency");
  ASSERT_NE(latency, nullptr);
  for (const char* which : {"job", "queue_wait", "exec"}) {
    const json::Value* h = latency->find(which);
    ASSERT_NE(h, nullptr) << which;
    EXPECT_GE(h->find("count")->asU64("count"), 1U) << which;
    EXPECT_GE(h->find("p99_ns")->asU64("p99_ns"),
              h->find("p50_ns")->asU64("p50_ns"))
        << which;
  }
  const json::Value* flight = metrics.find("flight");
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->find("capacity")->asU64("capacity"), 256U);
  EXPECT_GE(flight->find("recorded")->asU64("recorded"), 1U);
}

TEST_F(ServeTest, DeadlineCutRequestIsDiagnosableFromTheFlightRecorder) {
  restart([](ServerOptions& options) {
    options.slowThresholdMs = 1; // everything below counts as slow
  });

  Client client(socketPath_);
  const json::Value error = json::parse(client.call(
      slowSubmitLine("dl-tenant", "req-dl", /*shots=*/2'000'000,
                     /*deadlineMs=*/50)));
  ASSERT_FALSE(error.find("ok")->boolean);
  ASSERT_EQ(error.find("error")->find("code")->string, "deadline");
  // The error response itself carries the span tree.
  ASSERT_NE(error.find("stages"), nullptr);

  // The flight recorder archived the request with per-stage timings.
  const json::Value events = json::parse(
      client.call(R"({"type":"events","tenant":"dl-tenant"})"));
  ASSERT_TRUE(events.find("ok")->boolean);
  EXPECT_EQ(events.find("type")->string, "events");
  EXPECT_GE(events.find("recorded")->asU64("recorded"), 1U);
  EXPECT_EQ(events.find("slow_threshold_ms")->asU64("slow_threshold_ms"), 1U);
  const json::Value* list = events.find("events");
  ASSERT_NE(list, nullptr);
  ASSERT_FALSE(list->array.empty());
  const json::Value& rec = list->array.back();
  EXPECT_EQ(rec.find("tenant")->string, "dl-tenant");
  EXPECT_EQ(rec.find("request_id")->string, "req-dl");
  EXPECT_EQ(rec.find("outcome")->string, "error");
  EXPECT_EQ(rec.find("error")->string, "deadline");
  EXPECT_EQ(rec.find("cause")->string, "deadline");
  EXPECT_TRUE(rec.find("slow")->boolean);
  EXPECT_GE(rec.find("total_ns")->asU64("total_ns"), 1'000'000U);

  // Slow + errored: the full stage trace was captured automatically.
  const json::Value* stages = rec.find("stages");
  ASSERT_NE(stages, nullptr);
  bool sawExecute = false;
  for (const json::Value& stage : stages->array) {
    sawExecute = sawExecute || stage.find("stage")->string == "execute";
  }
  EXPECT_TRUE(sawExecute);

  // A tenant filter for someone else returns an empty list.
  const json::Value other = json::parse(
      client.call(R"({"type":"events","tenant":"nobody"})"));
  EXPECT_TRUE(other.find("events")->array.empty());
}

TEST_F(ServeTest, PrometheusExpositionExposesPerTenantSeries) {
  Client client(socketPath_);
  ASSERT_TRUE(json::parse(client.call(submitLine("prom-tenant", 20, 3)))
                  .find("ok")
                  ->boolean);

  const json::Value v = json::parse(
      client.call(R"({"type":"metrics","format":"prometheus"})"));
  ASSERT_TRUE(v.find("ok")->boolean);
  EXPECT_EQ(v.find("format")->string, "prometheus");
  const json::Value* body = v.find("body");
  ASSERT_NE(body, nullptr);
  const std::string& text = body->string;

  EXPECT_NE(text.find("# TYPE qirkit_serve_tenant_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("qirkit_serve_tenant_completed{tenant=\"prom-tenant\"} "),
            std::string::npos);
  // Per-tenant histograms expose cumulative buckets plus sum/count.
  EXPECT_NE(
      text.find("qirkit_serve_tenant_queue_wait_ns_bucket{tenant=\"prom-tenant\",le=\""),
      std::string::npos);
  EXPECT_NE(
      text.find("qirkit_serve_tenant_exec_ns_count{tenant=\"prom-tenant\"} "),
      std::string::npos);
  // Unlabeled histograms render too, with the +Inf closing bucket.
  EXPECT_NE(text.find("qirkit_serve_job_latency_ns_bucket{le=\"+Inf\"} "),
            std::string::npos);
}

TEST_F(ServeTest, TenantLabelCardinalityIsBoundedByEviction) {
  Client client(socketPath_);
  // One more tenant than the cardinality bound: at least one label must
  // have been evicted, however many labels earlier tests contributed.
  for (int i = 0; i <= 32; ++i) {
    ASSERT_TRUE(json::parse(client.call(submitLine(
                                "evict-tenant-" + std::to_string(i), 5, 1)))
                    .find("ok")
                    ->boolean)
        << i;
  }
  const json::Value v = json::parse(
      client.call(R"({"type":"metrics","format":"prometheus"})"));
  const std::string& text = v.find("body")->string;
  EXPECT_GE(expositionScalar(text, "qirkit_serve_tenant_completed_evicted"),
            1U);
  // The live label set stays within the bound.
  EXPECT_LE(countOccurrences(text, "qirkit_serve_tenant_completed{"), 32U);
}

TEST_F(ServeTest, BrokenProgramsReturnClassifiedErrors) {
  Client client(socketPath_);
  SubmitRequest req;
  req.tenant = "alice";
  req.program = "this is not a program";
  const json::Value error = json::parse(client.call(submitRequestJson(req)));
  EXPECT_FALSE(error.find("ok")->boolean);
  EXPECT_EQ(error.find("error")->find("code")->string, "parse");

  // The daemon survives a parse failure and still executes real work.
  const json::Value good = json::parse(client.call(submitLine("alice", 10, 1)));
  EXPECT_TRUE(good.find("ok")->boolean);
}

} // namespace
} // namespace qirkit::service
