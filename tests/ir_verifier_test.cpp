#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::ir {
namespace {

class VerifierTest : public ::testing::Test {
protected:
  Context ctx;
  Module module{ctx, "v"};

  Function* makeFn(const char* name = "f") {
    return module.createFunction(name, ctx.functionTy(ctx.voidTy(), {}));
  }
};

TEST_F(VerifierTest, CleanModulePasses) {
  Function* f = makeFn();
  IRBuilder b(f->createBlock("entry"));
  b.createRetVoid();
  EXPECT_TRUE(verifyModule(module).empty());
}

TEST_F(VerifierTest, UnterminatedBlockIsReported) {
  Function* f = makeFn();
  IRBuilder b(f->createBlock("entry"));
  b.createAdd(ctx.getI64(1), ctx.getI64(2));
  const auto errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("not terminated"), std::string::npos);
}

TEST_F(VerifierTest, EmptyDefinitionIsReported) {
  Function* f = makeFn();
  f->createBlock("entry");
  EXPECT_FALSE(verifyModule(module).empty());
}

TEST_F(VerifierTest, RetTypeMismatchIsReported) {
  Function* f = module.createFunction("g", ctx.functionTy(ctx.i64(), {}));
  IRBuilder b(f->createBlock("entry"));
  b.createRetVoid();
  const auto errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("ret"), std::string::npos);
}

TEST_F(VerifierTest, PhiMustMatchPredecessors) {
  Function* f = makeFn();
  BasicBlock* entry = f->createBlock("entry");
  BasicBlock* next = f->createBlock("next");
  IRBuilder b(entry);
  b.createBr(next);
  b.setInsertPoint(next);
  Instruction* phi = b.createPhi(ctx.i64(), "p");
  // No incoming values though `next` has one predecessor.
  b.createRetVoid();
  (void)phi;
  const auto errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("phi"), std::string::npos);
}

TEST_F(VerifierTest, UseBeforeDefAcrossBlocksIsReported) {
  // %x defined in a block that does not dominate its use.
  Context ctx2;
  auto module2 = parseModule(ctx2, R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 1, 2
  br label %join
b:
  br label %join
join:
  %y = add i64 %x, 1
  ret void
}
)");
  const auto errors = verifyModule(*module2);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("dominate"), std::string::npos);
}

TEST_F(VerifierTest, DominanceAcceptsStraightLineUse) {
  Context ctx2;
  auto module2 = parseModule(ctx2, R"(
define i64 @f() {
entry:
  %x = add i64 1, 2
  br label %next
next:
  %y = add i64 %x, 3
  ret i64 %y
}
)");
  EXPECT_TRUE(verifyModule(*module2).empty());
}

TEST_F(VerifierTest, CallArityMismatchIsReportedByParserOrVerifier) {
  Function* callee =
      module.createFunction("callee", ctx.functionTy(ctx.voidTy(), {ctx.i64()}));
  Function* f = makeFn();
  BasicBlock* entry = f->createBlock("entry");
  // Bypass the builder's assert by constructing a call with no args through
  // the parser instead.
  (void)callee;
  IRBuilder b(entry);
  b.createRetVoid();
  Context ctx2;
  EXPECT_THROW((void)parseModule(ctx2, R"(
declare void @callee(i64)
define void @f() {
  call void @callee()
  ret void
}
)"),
               qirkit::ParseError);
}

TEST_F(VerifierTest, BinaryTypeMismatchIsReported) {
  Function* f = makeFn();
  BasicBlock* entry = f->createBlock("entry");
  IRBuilder b(entry);
  // Build a malformed instruction via clone-and-mutate: add of i64 with an
  // i32 second operand.
  Instruction* good = b.createAdd(ctx.getI64(1), ctx.getI64(2));
  good->setOperand(1, ctx.getInt(32, 2));
  b.createRetVoid();
  const auto errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("type mismatch"), std::string::npos);
}

TEST_F(VerifierTest, EntryBlockWithPredecessorsIsReported) {
  Function* f = makeFn();
  BasicBlock* entry = f->createBlock("entry");
  IRBuilder b(entry);
  b.createBr(entry);
  const auto errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("entry block"), std::string::npos);
}

TEST_F(VerifierTest, VerifyOrThrowListsEverything) {
  Function* f = makeFn();
  f->createBlock("entry");
  EXPECT_THROW(verifyModuleOrThrow(module), qirkit::SemanticError);
}

} // namespace
} // namespace qirkit::ir
