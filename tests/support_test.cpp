#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/source_location.hpp"
#include "support/string_utils.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace qirkit {
namespace {

TEST(StringUtils, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtils, SplitLinesHandlesCRLFAndMissingTrailingNewline) {
  const auto lines = splitLines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(StringUtils, ParseIntAcceptsNegativesRejectsJunk) {
  EXPECT_EQ(parseInt("-42"), -42);
  EXPECT_EQ(parseInt("0"), 0);
  EXPECT_FALSE(parseInt("12x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("1e3").has_value());
}

TEST(StringUtils, ParseDoubleRoundTripsFormatDouble) {
  for (const double v : {0.0, 1.5, -2.25, 3.141592653589793, 1e-12, 6.02e23}) {
    const auto parsed = parseDouble(formatDouble(v));
    ASSERT_TRUE(parsed.has_value()) << formatDouble(v);
    EXPECT_EQ(*parsed, v);
  }
}

TEST(StringUtils, FormatDoubleAlwaysLooksFloatingPoint) {
  EXPECT_NE(formatDouble(2.0).find_first_of(".eE"), std::string::npos);
}

TEST(StringUtils, QuoteStringEscapesNonPrintable) {
  EXPECT_EQ(quoteString("ab"), "\"ab\"");
  EXPECT_EQ(quoteString(std::string("a\0b", 3)), "\"a\\00b\"");
  EXPECT_EQ(quoteString("say \"hi\""), "\"say \\22hi\\22\"");
}

TEST(SourceLoc, FormatsLineAndColumn) {
  EXPECT_EQ((SourceLoc{3, 7}).str(), "3:7");
  EXPECT_EQ(SourceLoc{}.str(), "<unknown>");
}

TEST(ParseErrorTest, CarriesLocation) {
  const ParseError err({5, 2}, "bad token");
  EXPECT_EQ(err.loc().line, 5U);
  EXPECT_NE(std::string(err.what()).find("5:2"), std::string::npos);
}

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64Test, UniformIsInUnitInterval) {
  SplitMix64 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(SplitMix64Test, BelowStaysBelowBound) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17U);
  }
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversTheWholeRange) {
  ThreadPool pool(3);
  std::vector<int> hits(100000, 0);
  parallelForChunked(
      pool, hits.size(),
      [&hits](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          ++hits[i];
        }
      },
      128);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::size_t total = 0;
  parallelForChunked(
      pool, 10, [&total](std::size_t begin, std::size_t end) { total += end - begin; },
      1024);
  EXPECT_EQ(total, 10U);
}

} // namespace
} // namespace qirkit
