/// Fault-tolerance test suite: the structured error taxonomy, the
/// malformed-input corpus (every frontend must reject garbage with a
/// classified, located diagnostic — never crash), deterministic fault
/// injection, per-shot fault isolation in the batched executor, transient
/// retry, graceful VM -> interpreter degradation, and trap parity between
/// the two engines under injected faults.
#include "circuit/generators.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "qasm/parser.hpp"
#include "qasm/qasm3.hpp"
#include "qir/exporter.hpp"
#include "qir/importer.hpp"
#include "runtime/runtime.hpp"
#include "sim/statevector.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "vm/executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit {
namespace {

// A plan that is armed (probes are counted) but can never fire: `at` is
// beyond any probe count a test reaches. Used to measure probes-per-shot.
fault::Plan countingPlan(fault::Site site) {
  fault::Plan plan;
  plan.site = site;
  plan.at = std::numeric_limits<std::uint64_t>::max();
  return plan;
}

/// RuntimeCall probes one shot of \p module makes on the interpreter
/// engine (identical on the VM engine — that is the parity the probes
/// are keyed on).
///
/// Every test built on this probe arithmetic pins ExecMode::Resim: the
/// per-shot probe numbering it measures only holds on the per-shot resim
/// path, not under the single-simulation sampling fast path that the
/// default auto mode would pick for these terminal circuits.
std::uint64_t runtimeCallsPerShot(const ir::Module& module) {
  const fault::ScopedPlan counting(countingPlan(fault::Site::RuntimeCall));
  vm::ShotOptions opts;
  opts.shots = 1;
  opts.engine = vm::Engine::Interp;
  opts.execMode = vm::ExecMode::Resim;
  (void)vm::runShots(module, opts);
  return fault::FaultInjector::instance().probeCount(fault::Site::RuntimeCall);
}

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, CodesHaveStableNames) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Parse), "parse");
  EXPECT_STREQ(errorCodeName(ErrorCode::Trap), "trap");
  EXPECT_STREQ(errorCodeName(ErrorCode::TrapOutOfBounds), "trap-out-of-bounds");
  EXPECT_STREQ(errorCodeName(ErrorCode::InjectedFault), "injected-fault");
  EXPECT_STREQ(errorCodeName(ErrorCode::CompileFail), "compile-fail");
  EXPECT_STREQ(errorCodeName(ErrorCode::Deadline), "deadline");
  EXPECT_STREQ(errorCodeName(ErrorCode::Usage), "usage");
  EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(ErrorTaxonomy, FormattedIncludesCodeAndLocation) {
  const Error located(ErrorCode::Parse, "bad token", {7, 3});
  EXPECT_EQ(located.formatted(), "error[parse]: bad token at 7:3");
  const Error unlocated(ErrorCode::Trap, "division by zero");
  EXPECT_EQ(unlocated.formatted(), "error[trap]: division by zero");
}

TEST(ErrorTaxonomy, ClassifyExceptionRecoversCodeAndTransience) {
  try {
    throw interp::TrapError("boom", ErrorCode::TrapArithmetic, true);
  } catch (const std::exception& e) {
    const ClassifiedError c = classifyException(e);
    EXPECT_EQ(c.code, ErrorCode::TrapArithmetic);
    EXPECT_TRUE(c.transient);
    EXPECT_EQ(c.message, "boom");
  }
  try {
    throw std::runtime_error("anonymous failure");
  } catch (const std::exception& e) {
    const ClassifiedError c = classifyException(e);
    EXPECT_EQ(c.code, ErrorCode::Internal);
    EXPECT_FALSE(c.transient);
  }
}

TEST(ErrorTaxonomy, LegacyWrappersAreStructuredErrors) {
  const ParseError parse({2, 5}, "oops");
  EXPECT_EQ(parse.code(), ErrorCode::Parse);
  EXPECT_EQ(parse.loc().line, 2U);
  EXPECT_STREQ(parse.what(), "2:5: oops"); // historical what() format
  const interp::TrapError trap("out of qubits");
  EXPECT_EQ(trap.code(), ErrorCode::Trap);
  EXPECT_FALSE(trap.transient());
}

// ---------------------------------------------------------------------------
// Malformed-input corpus: classified errors, never crashes.
// ---------------------------------------------------------------------------

TEST(MalformedInput, IrParserRejectsGarbageWithParseErrors) {
  const std::vector<std::string> corpus = {
      "",                                       // empty module is fine...
      "define",                                 // truncated
      "define i64 @f(",                         // unterminated signature
      "define i64 @f() {",                      // unterminated body
      "define i64 @f() {\nentry:\n  ret i64\n", // truncated operand + body
      "@@@",                                    // lexer garbage
      "define i64 @f() {\n  %x = frobnicate i64 1\n  ret i64 %x\n}\n",
      "define i64 @f() {\n  ret i64 9999999999999999999999999\n}\n",
  };
  for (const std::string& text : corpus) {
    ir::Context ctx;
    try {
      (void)ir::parseModule(ctx, text);
      // Some corpus entries (the empty module) legitimately parse.
    } catch (const std::exception& e) {
      const ClassifiedError c = classifyException(e);
      EXPECT_EQ(c.code, ErrorCode::Parse) << text;
    }
  }
}

TEST(MalformedInput, UndefinedReferencesCarrySourceLocations) {
  {
    ir::Context ctx;
    try {
      (void)ir::parseModule(ctx, "define void @f() {\nentry:\n"
                                 "  br label %missing\n}\n");
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("undefined label"), std::string::npos);
      EXPECT_EQ(e.loc().line, 3U); // points at the '%missing' reference
    }
  }
  {
    ir::Context ctx;
    try {
      (void)ir::parseModule(ctx, "define i64 @f() {\nentry:\n"
                                 "  %x = add i64 %ghost, 1\n  ret i64 %x\n}\n");
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("undefined value"), std::string::npos);
      EXPECT_EQ(e.loc().line, 3U); // points at the '%ghost' use
    }
  }
  {
    ir::Context ctx;
    try {
      (void)ir::parseModule(ctx, "define void @f() #9 {\nentry:\n  ret void\n}\n");
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("attribute group"), std::string::npos);
      EXPECT_EQ(e.loc().line, 1U); // points at the '#9' reference
    }
  }
}

TEST(MalformedInput, QirImporterRejectsGarbageWithLocatedParseErrors) {
  const std::vector<std::string> corpus = {
      "this is not QIR at all",
      "define void @main() {\n  call void @unknown_thing()\n  ret void\n}",
      "define void @main() {\n  br i1 true, label %a, label %b\n}",
      "define void @main() {\n  call void @__quantum__qis__h__body(ptr",
  };
  for (const std::string& text : corpus) {
    try {
      (void)qir::importBaseProfileText(text);
      // A text the pattern parser tolerates (e.g. it skips unknown
      // prologue lines) is acceptable; a crash or unclassified throw is
      // not.
    } catch (const ParseError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse) << text;
    }
  }
  // Failures inside a function body report the offending line.
  try {
    (void)qir::importBaseProfileText(
        "define void @main() #0 {\n"
        "entry:\n"
        "  call void @__quantum__rt__unknown_fn(ptr null)\n"
        "  ret void\n"
        "}\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GT(e.loc().line, 0U);
  }
}

TEST(MalformedInput, QasmFrontendsRejectGarbageWithParseErrors) {
  const std::vector<std::string> corpus = {
      "OPENQASM 2.0",               // missing ';'
      "OPENQASM 2.0;\nqreg q[;",    // truncated decl
      "OPENQASM 2.0;\nfrob q[2];",  // unknown statement
      "\x01\x02\x03",               // binary junk
  };
  for (const std::string& text : corpus) {
    try {
      (void)qasm::parse(text);
      FAIL() << "expected a parse failure for: " << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse) << text;
    }
  }
  const std::vector<std::string> corpus3 = {
      "OPENQASM 3;\nqubit[2 q;",
      "OPENQASM 3;\nfor int i in [1:] { }",
      "OPENQASM 3;\nif (creg[0] == { h q[0]; }",
  };
  for (const std::string& text : corpus3) {
    ir::Context ctx;
    try {
      (void)qasm::compileQasm3(ctx, text);
      FAIL() << "expected a parse failure for: " << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse) << text;
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection.
// ---------------------------------------------------------------------------

TEST(FaultInjection, AtModeFiresExactlyOnceAtTheNamedProbe) {
  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 3;
  const fault::ScopedPlan scoped(plan);
  fault::FaultInjector& injector = fault::FaultInjector::instance();
  injector.onProbe(fault::Site::RuntimeCall);
  injector.onProbe(fault::Site::RuntimeCall);
  EXPECT_EQ(injector.firedCount(), 0U);
  try {
    injector.onProbe(fault::Site::RuntimeCall);
    FAIL() << "probe #3 must fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::InjectedFault);
    EXPECT_TRUE(e.transient());
  }
  injector.onProbe(fault::Site::RuntimeCall); // #4: past `at`, silent again
  EXPECT_EQ(injector.firedCount(), 1U);
  // Probes at other sites are counted but never fire.
  injector.onProbe(fault::Site::VmDispatch);
  EXPECT_EQ(injector.probeCount(fault::Site::VmDispatch), 1U);
  EXPECT_EQ(injector.firedCount(), 1U);
}

TEST(FaultInjection, EveryModeIsSeededAndReproducible) {
  const auto firesOf = [](std::uint64_t seed) {
    fault::Plan plan;
    plan.site = fault::Site::RuntimeCall;
    plan.every = 4;
    plan.seed = seed;
    const fault::ScopedPlan scoped(plan);
    std::vector<std::uint64_t> fires;
    for (std::uint64_t i = 1; i <= 64; ++i) {
      try {
        fault::FaultInjector::instance().onProbe(fault::Site::RuntimeCall);
      } catch (const Error&) {
        fires.push_back(i);
      }
    }
    return fires;
  };
  const auto a = firesOf(11);
  EXPECT_EQ(a, firesOf(11)); // identical plan => identical fire pattern
  EXPECT_NE(a, firesOf(12)); // seeded, not a fixed stride
  EXPECT_FALSE(a.empty());
}

TEST(FaultInjection, DisabledInjectorCountsNothing) {
  fault::FaultInjector::instance().disable();
  fault::probe(fault::Site::RuntimeCall);
  EXPECT_EQ(fault::FaultInjector::instance().probeCount(fault::Site::RuntimeCall),
            0U);
}

// ---------------------------------------------------------------------------
// Per-shot fault isolation.
// ---------------------------------------------------------------------------

TEST(ShotIsolation, OneInjectedTrapFailsOneShotAndCompletesTheRest) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const std::uint64_t callsPerShot = runtimeCallsPerShot(*m);
  ASSERT_GT(callsPerShot, 0U);

  // Fire inside shot 42's external-call sequence (shots are 0-based and
  // sequential without a pool, so probe numbering is exact).
  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 42 * callsPerShot + 1;
  const fault::ScopedPlan scoped(plan);

  vm::ShotOptions opts;
  opts.shots = 100;
  opts.seed = 5;
  opts.engine = vm::Engine::Interp;
  opts.execMode = vm::ExecMode::Resim;
  opts.maxFailedShots = 1;
  const vm::ShotBatchResult batch = vm::runShots(*m, opts);

  EXPECT_EQ(batch.completedShots, 99U);
  EXPECT_EQ(batch.failedShots, 1U);
  std::uint64_t histogramTotal = 0;
  for (const auto& [bits, count] : batch.histogram) {
    histogramTotal += count;
  }
  EXPECT_EQ(histogramTotal, 99U);
  ASSERT_EQ(batch.failureCounts.count(ErrorCode::InjectedFault), 1U);
  EXPECT_EQ(batch.failureCounts.at(ErrorCode::InjectedFault), 1U);
  ASSERT_EQ(batch.failures.size(), 1U);
  EXPECT_EQ(batch.failures[0].shot, 42U);
  EXPECT_EQ(batch.failures[0].code, ErrorCode::InjectedFault);
  EXPECT_TRUE(batch.failures[0].transient);
}

TEST(ShotIsolation, DefaultThresholdPreservesAnyTrapAborts) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const std::uint64_t callsPerShot = runtimeCallsPerShot(*m);

  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 3 * callsPerShot + 1;
  const fault::ScopedPlan scoped(plan);

  vm::ShotOptions opts;
  opts.shots = 10;
  opts.engine = vm::Engine::Interp; // maxFailedShots stays 0
  opts.execMode = vm::ExecMode::Resim;
  try {
    (void)vm::runShots(*m, opts);
    FAIL() << "expected the batch to abort";
  } catch (const interp::TrapError& e) {
    EXPECT_EQ(e.code(), ErrorCode::InjectedFault);
    EXPECT_NE(std::string(e.what()).find("shot 3"), std::string::npos);
  }
}

TEST(ShotIsolation, TransientFaultIsRetriedWithDerivedSeed) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const std::uint64_t callsPerShot = runtimeCallsPerShot(*m);

  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 7 * callsPerShot + 1; // fires once, during shot 7's first try
  const fault::ScopedPlan scoped(plan);

  vm::ShotOptions opts;
  opts.shots = 20;
  opts.engine = vm::Engine::Interp;
  opts.execMode = vm::ExecMode::Resim;
  opts.retries = 2;
  const vm::ShotBatchResult batch = vm::runShots(*m, opts);

  EXPECT_EQ(batch.completedShots, 20U);
  EXPECT_EQ(batch.failedShots, 0U);
  EXPECT_EQ(batch.retryAttempts, 1U); // the retry succeeded immediately
  EXPECT_TRUE(batch.failures.empty());
}

TEST(ShotIsolation, PermanentFaultIsNeverRetried) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const std::uint64_t callsPerShot = runtimeCallsPerShot(*m);

  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 2 * callsPerShot + 1;
  plan.transient = false;
  const fault::ScopedPlan scoped(plan);

  vm::ShotOptions opts;
  opts.shots = 10;
  opts.engine = vm::Engine::Interp;
  opts.execMode = vm::ExecMode::Resim;
  opts.retries = 5;
  opts.maxFailedShots = 1;
  const vm::ShotBatchResult batch = vm::runShots(*m, opts);

  EXPECT_EQ(batch.failedShots, 1U);
  EXPECT_EQ(batch.retryAttempts, 0U);
  ASSERT_EQ(batch.failures.size(), 1U);
  EXPECT_FALSE(batch.failures[0].transient);
}

TEST(ShotIsolation, RetrySeedsAreDeterministicAndDecorrelated) {
  const std::uint64_t a = vm::deriveRetrySeed(5, 42, 1);
  EXPECT_EQ(a, vm::deriveRetrySeed(5, 42, 1));
  EXPECT_NE(a, vm::deriveRetrySeed(5, 42, 2));
  EXPECT_NE(a, vm::deriveRetrySeed(5, 43, 1));
  EXPECT_NE(a, vm::deriveRetrySeed(6, 42, 1));
  EXPECT_NE(a, 5U + 42U); // not a first-attempt shot seed
}

// ---------------------------------------------------------------------------
// Graceful VM -> interpreter degradation.
// ---------------------------------------------------------------------------

TEST(Degradation, CompileFailureDegradesBatchToInterpreterIdentically) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});

  vm::ShotOptions opts;
  opts.shots = 64;
  opts.seed = 9;
  opts.useCompileCache = false; // force a real compile so the probe fires

  opts.engine = vm::Engine::Interp;
  const vm::ShotBatchResult reference = vm::runShots(*m, opts);

  fault::Plan plan;
  plan.site = fault::Site::BytecodeCompile;
  plan.at = 1;
  const fault::ScopedPlan scoped(plan);
  opts.engine = vm::Engine::Vm;
  const vm::ShotBatchResult degraded = vm::runShots(*m, opts);

  EXPECT_TRUE(degraded.degradedToInterp);
  EXPECT_EQ(degraded.engineUsed, vm::Engine::Interp);
  EXPECT_NE(degraded.degradeReason.find("injected-fault"), std::string::npos);
  EXPECT_EQ(degraded.completedShots, 64U);
  EXPECT_EQ(degraded.failedShots, 0U);
  // The acceptance bar: the degraded batch answers exactly what the
  // reference engine answers (shot seeds are engine-independent).
  EXPECT_EQ(degraded.histogram, reference.histogram);
}

TEST(Degradation, CompileFailureWithFallbackDisabledPropagates) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});

  fault::Plan plan;
  plan.site = fault::Site::BytecodeCompile;
  plan.at = 1;
  const fault::ScopedPlan scoped(plan);

  vm::ShotOptions opts;
  opts.shots = 4;
  opts.engine = vm::Engine::Vm;
  opts.useCompileCache = false;
  opts.interpFallback = false;
  try {
    (void)vm::runShots(*m, opts);
    FAIL() << "expected the compile failure to propagate";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::InjectedFault);
  }
}

TEST(Degradation, VmDispatchFaultIsRescuedPerShotByTheInterpreter) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});

  vm::ShotOptions opts;
  opts.shots = 32;
  opts.seed = 13;
  opts.useCompileCache = false;
  opts.execMode = vm::ExecMode::Resim;

  opts.engine = vm::Engine::Interp;
  const vm::ShotBatchResult reference = vm::runShots(*m, opts);

  // Measure VM dispatch probes per shot, then aim at a mid-batch shot.
  std::uint64_t dispatchPerShot = 0;
  {
    const fault::ScopedPlan counting(countingPlan(fault::Site::VmDispatch));
    vm::ShotOptions one = opts;
    one.engine = vm::Engine::Vm;
    one.shots = 1;
    (void)vm::runShots(*m, one);
    dispatchPerShot =
        fault::FaultInjector::instance().probeCount(fault::Site::VmDispatch);
  }
  ASSERT_GT(dispatchPerShot, 0U);

  fault::Plan plan;
  plan.site = fault::Site::VmDispatch;
  plan.at = 10 * dispatchPerShot + 1; // fires during shot 10 on the VM only
  const fault::ScopedPlan scoped(plan);
  opts.engine = vm::Engine::Vm;
  const vm::ShotBatchResult rescued = vm::runShots(*m, opts);

  // The interpreter rerun has no VM dispatch loop, so the shot completes
  // there: no failures, one rescue, and the reference histogram.
  EXPECT_EQ(rescued.failedShots, 0U);
  EXPECT_EQ(rescued.completedShots, 32U);
  EXPECT_EQ(rescued.interpFallbackShots, 1U);
  EXPECT_EQ(rescued.histogram, reference.histogram);
  EXPECT_FALSE(rescued.degradedToInterp); // per-shot rescue, not batch-wide
}

// ---------------------------------------------------------------------------
// Deadlines and cooperative cancellation.
// ---------------------------------------------------------------------------

TEST(Cancellation, TokenStatesAndCheckpointTaxonomy) {
  CancelToken token;
  // Unarmed: the fast path answers false with one relaxed load.
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.expired());
  token.checkpoint("nowhere"); // must not throw

  // A future deadline arms the token without expiring it.
  token.setTimeoutNs(60'000'000'000ULL); // one minute out
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.expired());

  // Explicit cancel dominates any deadline.
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_TRUE(token.cancelled());
  try {
    token.checkpoint("unit test");
    FAIL() << "checkpoint of a cancelled token must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Deadline);
    EXPECT_NE(std::string(e.what()).find("unit test"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }

  // An already-lapsed deadline (without cancel) reports expiry, and the
  // checkpoint message names the deadline, not a cancellation.
  CancelToken lapsed;
  lapsed.setTimeoutNs(0);
  EXPECT_TRUE(lapsed.expired());
  EXPECT_FALSE(lapsed.cancelled());
  try {
    lapsed.checkpoint("shot loop");
    FAIL() << "checkpoint past the deadline must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Deadline);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
}

TEST(Cancellation, PreExpiredBatchReturnsEverythingUnstarted) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});

  CancelToken token;
  token.cancel();
  vm::ShotOptions opts;
  opts.shots = 100;
  opts.cancel = &token;
  const vm::ShotBatchResult batch = vm::runShots(*m, opts);

  // No exception: partial-results semantics, with zero partial results.
  EXPECT_TRUE(batch.deadlineExceeded);
  EXPECT_EQ(batch.completedShots, 0U);
  EXPECT_EQ(batch.failedShots, 0U);
  EXPECT_EQ(batch.unstartedShots, 100U);
  EXPECT_TRUE(batch.histogram.empty());
}

TEST(Cancellation, DeadlineMidBatchKeepsCompletedShots) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});

  CancelToken token;
  token.setTimeoutNs(20'000'000); // 20ms: a fraction of the full batch
  vm::ShotOptions opts;
  opts.shots = 5'000'000; // minutes of per-shot resimulation if uncut
  opts.seed = 7;
  opts.execMode = vm::ExecMode::Resim;
  opts.cancel = &token;
  const vm::ShotBatchResult batch = vm::runShots(*m, opts);

  EXPECT_TRUE(batch.deadlineExceeded);
  EXPECT_GT(batch.completedShots, 0U);
  EXPECT_GT(batch.unstartedShots, 0U);
  // The aborted in-flight shot counts as unstarted, never failed: the
  // batch invariant covers every shot exactly once.
  EXPECT_EQ(batch.failedShots, 0U);
  EXPECT_EQ(batch.completedShots + batch.unstartedShots, opts.shots);
  std::uint64_t histogramTotal = 0;
  for (const auto& [bits, count] : batch.histogram) {
    histogramTotal += count;
  }
  EXPECT_EQ(histogramTotal, batch.completedShots);
}

TEST(Cancellation, DeadlineIsNeverRetriedOrRescued) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});

  CancelToken token;
  token.setTimeoutNs(15'000'000);
  vm::ShotOptions opts;
  opts.shots = 5'000'000;
  opts.execMode = vm::ExecMode::Resim;
  opts.engine = vm::Engine::Vm;
  opts.retries = 5;          // transient-fault machinery must not engage
  opts.interpFallback = true; // nor the interpreter rescue
  opts.cancel = &token;
  const vm::ShotBatchResult batch = vm::runShots(*m, opts);

  EXPECT_TRUE(batch.deadlineExceeded);
  // A deadline is not a fault: no retry burn, no engine switch, no
  // degradation — the batch just stops.
  EXPECT_EQ(batch.retryAttempts, 0U);
  EXPECT_EQ(batch.interpFallbackShots, 0U);
  EXPECT_FALSE(batch.degradedToInterp);
  EXPECT_EQ(batch.failedShots, 0U);
}

TEST(ResourceGuards, PredictedStateBytesMatchAndClamp) {
  // The service's memory-admission guard and the simulator must agree on
  // footprint arithmetic: 2^n amplitudes x sizeof(complex<double>).
  EXPECT_EQ(sim::StateVector::predictedBytes(0), sizeof(sim::Complex));
  EXPECT_EQ(sim::StateVector::predictedBytes(10),
            (1ULL << 10U) * sizeof(sim::Complex));
  // Widths past the simulator's hard cap clamp instead of overflowing the
  // shift, so a hostile 300-qubit request still predicts a finite (and
  // budget-busting) number.
  EXPECT_EQ(sim::StateVector::predictedBytes(300),
            sim::StateVector::predictedBytes(sim::StateVector::kMaxQubits));
}

// ---------------------------------------------------------------------------
// Trap parity: both engines fault at the same point under injection.
// ---------------------------------------------------------------------------

TEST(TrapParity, EnginesFailTheSameShotUnderRuntimeCallInjection) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  const std::uint64_t callsPerShot = runtimeCallsPerShot(*m);
  ASSERT_GT(callsPerShot, 0U);

  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 5 * callsPerShot + 2; // second external call of shot 5

  const auto runWith = [&](vm::Engine engine) {
    const fault::ScopedPlan scoped(plan); // re-arming resets probe counts
    vm::ShotOptions opts;
    opts.shots = 12;
    opts.seed = 3;
    opts.engine = engine;
    opts.execMode = vm::ExecMode::Resim;
    opts.useCompileCache = false;
    opts.interpFallback = false; // surface the raw VM fault
    opts.maxFailedShots = 12;
    return vm::runShots(*m, opts);
  };

  const vm::ShotBatchResult interp = runWith(vm::Engine::Interp);
  const vm::ShotBatchResult vmRes = runWith(vm::Engine::Vm);

  // Both engines issue the identical external-call sequence, so the
  // injected fault lands in the identical shot with the identical code.
  ASSERT_EQ(interp.failures.size(), 1U);
  ASSERT_EQ(vmRes.failures.size(), 1U);
  EXPECT_EQ(interp.failures[0].shot, 5U);
  EXPECT_EQ(vmRes.failures[0].shot, 5U);
  EXPECT_EQ(interp.failures[0].code, vmRes.failures[0].code);
  EXPECT_EQ(interp.failedShots, vmRes.failedShots);
  EXPECT_EQ(interp.histogram, vmRes.histogram); // surviving shots agree too
}

} // namespace
} // namespace qirkit
