/// Differential testing of the classical pipeline: generate random
/// classical IR programs (memory-slot based, with branches and a bounded
/// loop), run them through the interpreter before and after the full
/// optimization pipeline, and require identical observable results.
/// This is the strongest evidence that the "for free" optimizations
/// (§II.C) are semantics-preserving on arbitrary classical code.
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <string>

namespace qirkit {
namespace {

/// Generates a random classical function
///   define i64 @f(i64 %arg0, i64 %arg1)
/// over four memory slots. Structure: entry (slot init), a chain of body
/// blocks each ending in a data-dependent conditional branch to one of two
/// later blocks, one bounded counted loop, and a final block combining the
/// slots into the return value.
class ProgramGenerator {
public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    const unsigned bodyBlocks = 2 + static_cast<unsigned>(rng_.below(4));
    std::string s = "define i64 @f(i64 %arg0, i64 %arg1) {\nentry:\n";
    for (unsigned slot = 0; slot < kSlots; ++slot) {
      s += "  %s" + std::to_string(slot) + " = alloca i64, align 8\n";
      s += "  store i64 " + pickSeedValue() + ", ptr %s" + std::to_string(slot) +
           ", align 8\n";
    }
    s += "  br label %b0\n";
    for (unsigned block = 0; block < bodyBlocks; ++block) {
      s += emitBodyBlock(block, bodyBlocks);
    }
    s += emitLoop(bodyBlocks);
    s += emitFinal();
    s += "}\n";
    return s;
  }

private:
  static constexpr unsigned kSlots = 4;

  std::string pickSeedValue() {
    switch (rng_.below(3)) {
    case 0: return std::to_string(static_cast<std::int64_t>(rng_.below(100)) - 50);
    case 1: return "%arg0";
    default: return "%arg1";
    }
  }

  std::string slot() { return "%s" + std::to_string(rng_.below(kSlots)); }

  std::string freshValue() { return "%v" + std::to_string(nextValue_++); }

  const char* pickOp() {
    // Division-free by default; sdiv/srem guarded below.
    static const char* const ops[] = {"add", "sub", "mul", "and", "or",
                                      "xor", "shl", "ashr", "lshr"};
    return ops[rng_.below(std::size(ops))];
  }

  /// Emit: load two slots, combine, store into a slot. Shifts get a
  /// masked amount to avoid poison.
  std::string emitComputation() {
    const std::string a = freshValue();
    const std::string b = freshValue();
    const std::string srcA = slot();
    const std::string srcB = slot();
    std::string s;
    s += "  " + a + " = load i64, ptr " + srcA + ", align 8\n";
    s += "  " + b + " = load i64, ptr " + srcB + ", align 8\n";
    const std::string op = pickOp();
    const std::string r = freshValue();
    if (op == "shl" || op == "ashr" || op == "lshr") {
      const std::string amount = freshValue();
      s += "  " + amount + " = and i64 " + b + ", 7\n";
      s += "  " + r + " = " + op + " i64 " + a + ", " + amount + "\n";
    } else {
      s += "  " + r + " = " + op + " i64 " + a + ", " + b + "\n";
    }
    s += "  store i64 " + r + ", ptr " + slot() + ", align 8\n";
    return s;
  }

  std::string emitBodyBlock(unsigned index, unsigned bodyBlocks) {
    std::string s = "b" + std::to_string(index) + ":\n";
    const unsigned computations = 1 + static_cast<unsigned>(rng_.below(4));
    for (unsigned i = 0; i < computations; ++i) {
      s += emitComputation();
    }
    // Branch: either fall through, or a data-dependent choice between the
    // next block and a later block (or the loop preheader).
    const std::string next = "b" + std::to_string(index + 1);
    const std::string later =
        index + 2 < bodyBlocks
            ? "b" + std::to_string(index + 2 + rng_.below(bodyBlocks - index - 2 + 1))
            : next;
    const std::string target =
        later == "b" + std::to_string(bodyBlocks) ? next : later; // clamp
    if (rng_.below(3) == 0 || next == target) {
      s += "  br label %" + next + "\n";
    } else {
      const std::string v = freshValue();
      const std::string c = freshValue();
      s += "  " + v + " = load i64, ptr " + slot() + ", align 8\n";
      s += "  " + c + " = icmp " + (rng_.below(2) == 0 ? "slt" : "sge") + " i64 " +
           v + ", " + std::to_string(static_cast<std::int64_t>(rng_.below(20)) - 10) +
           "\n";
      s += "  br i1 " + c + ", label %" + next + ", label %" + target + "\n";
    }
    return s;
  }

  std::string emitLoop(unsigned bodyBlocks) {
    const std::string pre = "b" + std::to_string(bodyBlocks);
    const unsigned trips = 1 + static_cast<unsigned>(rng_.below(8));
    std::string s = pre + ":\n";
    s += "  %lc = alloca i64, align 8\n";
    s += "  store i64 0, ptr %lc, align 8\n";
    s += "  br label %loop.header\n";
    s += "loop.header:\n";
    s += "  %li = load i64, ptr %lc, align 8\n";
    s += "  %lcond = icmp slt i64 %li, " + std::to_string(trips) + "\n";
    s += "  br i1 %lcond, label %loop.body, label %final\n";
    s += "loop.body:\n";
    s += emitComputation();
    s += "  %li2 = load i64, ptr %lc, align 8\n";
    s += "  %lnext = add i64 %li2, 1\n";
    s += "  store i64 %lnext, ptr %lc, align 8\n";
    s += "  br label %loop.header\n";
    return s;
  }

  std::string emitFinal() {
    std::string s = "final:\n";
    std::string acc;
    for (unsigned slotIndex = 0; slotIndex < kSlots; ++slotIndex) {
      const std::string v = freshValue();
      s += "  " + v + " = load i64, ptr %s" + std::to_string(slotIndex) +
           ", align 8\n";
      if (acc.empty()) {
        acc = v;
      } else {
        const std::string sum = freshValue();
        s += "  " + sum + " = xor i64 " + acc + ", " + v + "\n";
        acc = sum;
      }
    }
    s += "  ret i64 " + acc + "\n";
    return s;
  }

  SplitMix64 rng_;
  unsigned nextValue_ = 0;
};

std::int64_t runProgram(const ir::Module& m, std::int64_t a, std::int64_t b) {
  interp::Interpreter interp(m);
  interp.setStepLimit(1 << 22);
  return interp
      .run(*m.getFunction("f"),
           {{interp::RtValue::makeInt(a), interp::RtValue::makeInt(b)}})
      .i;
}

class DifferentialPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialPipeline, OptimizationPreservesObservableBehaviour) {
  const std::uint64_t seed = GetParam();
  const std::string program = ProgramGenerator(seed).generate();

  ir::Context ctxA;
  const auto reference = ir::parseModule(ctxA, program);
  ir::verifyModuleOrThrow(*reference);

  ir::Context ctxB;
  auto optimized = ir::parseModule(ctxB, program);
  passes::PassManager pm;
  passes::addFullPipeline(pm);
  pm.setVerifyEach(true);
  pm.runToFixpoint(*optimized);

  const std::int64_t inputs[][2] = {{0, 0},   {1, -1},  {42, 7},
                                    {-100, 3}, {1 << 20, -(1 << 19)}};
  for (const auto& [a, b] : inputs) {
    EXPECT_EQ(runProgram(*reference, a, b), runProgram(*optimized, a, b))
        << "seed " << seed << " inputs (" << a << ", " << b << ")\nprogram:\n"
        << program;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialPipeline,
                         ::testing::Range<std::uint64_t>(1, 41));

/// The printed form of a generated program must also round-trip.
class DifferentialRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialRoundTrip, GeneratedProgramsPrintAndReparse) {
  const std::string program = ProgramGenerator(GetParam()).generate();
  ir::Context ctxA;
  const auto first = ir::parseModule(ctxA, program);
  const std::string printed = ir::printModule(*first);
  ir::Context ctxB;
  const auto second = ir::parseModule(ctxB, printed);
  ir::verifyModuleOrThrow(*second);
  EXPECT_EQ(ir::printModule(*second), printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace qirkit
