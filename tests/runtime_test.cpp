#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "qir/exporter.hpp"
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

namespace qirkit::runtime {
namespace {

using circuit::Circuit;

std::unique_ptr<ir::Module> parseQIR(ir::Context& ctx, const char* text) {
  return ir::parseModule(ctx, text);
}

TEST(Runtime, BellProgramProducesCorrelatedOutput) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    interp::Interpreter interp(*m);
    QuantumRuntime rt(seed);
    rt.bind(interp);
    interp.runEntryPoint();
    const std::string bits = rt.outputBitString();
    EXPECT_TRUE(bits == "00" || bits == "11") << bits;
  }
}

TEST(Runtime, DynamicAndStaticAddressingAgree) {
  // §IV.A: both addressing styles must execute identically.
  const Circuit c = circuit::ghz(4, true);
  ir::Context ctx;
  qir::ExportOptions dynamicOptions;
  dynamicOptions.addressing = qir::Addressing::Dynamic;
  const auto dynamicModule = qir::exportCircuit(ctx, c, dynamicOptions);
  const auto staticModule = qir::exportCircuit(ctx, c, {});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    interp::Interpreter i1(*dynamicModule);
    QuantumRuntime r1(seed);
    r1.bind(i1);
    i1.runEntryPoint();
    interp::Interpreter i2(*staticModule);
    QuantumRuntime r2(seed);
    r2.bind(i2);
    i2.runEntryPoint();
    EXPECT_EQ(r1.outputBitString(), r2.outputBitString()) << "seed " << seed;
  }
}

TEST(Runtime, OnTheFlyStaticAllocation) {
  // §IV.A: "allocate qubits on the fly when it encounters a new qubit
  // address that is not yet part of the simulated quantum state."
  ir::Context ctx;
  const auto m = parseQIR(ctx, R"(
declare void @__quantum__qis__x__body(ptr)
define void @main() #0 {
  call void @__quantum__qis__x__body(ptr null)
  call void @__quantum__qis__x__body(ptr inttoptr (i64 5 to ptr))
  call void @__quantum__qis__x__body(ptr inttoptr (i64 5 to ptr))
  ret void
}
attributes #0 = { "entry_point" }
)");
  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  interp.runEntryPoint();
  // Two distinct static addresses -> two simulator qubits, not six.
  EXPECT_EQ(rt.stats().staticQubitsAllocated, 2U);
  EXPECT_EQ(rt.state().numQubits(), 2U);
  EXPECT_NEAR(rt.state().probabilityOfOne(0), 1.0, 1e-12); // X once
  EXPECT_NEAR(rt.state().probabilityOfOne(1), 0.0, 1e-12); // X twice
}

TEST(Runtime, SpecStyleHandleLoadAlsoWorks) {
  // The QIR spec loads the %Qubit* handle out of the array element before
  // passing it; the paper's Ex. 2 passes the element pointer directly.
  // Both must execute.
  ir::Context ctx;
  const auto m = parseQIR(ctx, R"(
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__x__body(ptr)
define void @main() #0 {
  %a = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  %e = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %a, i64 1)
  %h = load ptr, ptr %e, align 8
  call void @__quantum__qis__x__body(ptr %h)
  call void @__quantum__qis__x__body(ptr %e)
  ret void
}
attributes #0 = { "entry_point" }
)");
  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  interp.runEntryPoint();
  // Both calls hit qubit 1: X twice = identity.
  EXPECT_NEAR(rt.state().probabilityOfOne(1), 0.0, 1e-12);
  EXPECT_EQ(rt.stats().gatesApplied, 2U);
}

TEST(Runtime, AdaptiveFeedbackExecutes) {
  // measure |1>, conditionally flip back: X; mz; if(r) X -> final |0>.
  ir::Context ctx;
  const auto m = parseQIR(ctx, R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__x__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)");
  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  interp.runEntryPoint();
  EXPECT_NEAR(rt.state().probabilityOfOne(0), 0.0, 1e-12);
  EXPECT_EQ(rt.stats().measurements, 1U);
}

TEST(Runtime, QubitReleaseInvalidatesHandle) {
  ir::Context ctx;
  const auto m = parseQIR(ctx, R"(
declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__rt__qubit_release(ptr)
declare void @__quantum__qis__x__body(ptr)
define void @main() #0 {
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}
attributes #0 = { "entry_point" }
)");
  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  EXPECT_THROW(interp.runEntryPoint(), interp::TrapError);
}

TEST(Runtime, ResultConstantsAndEquality) {
  ir::Context ctx;
  const auto m = parseQIR(ctx, R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare ptr @__quantum__rt__result_get_one()
declare i1 @__quantum__rt__result_equal(ptr, ptr)
define i1 @main() #0 {
  call void @__quantum__qis__x__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %one = call ptr @__quantum__rt__result_get_one()
  %eq = call i1 @__quantum__rt__result_equal(ptr null, ptr %one)
  ret i1 %eq
}
attributes #0 = { "entry_point" }
)");
  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  EXPECT_EQ(interp.runEntryPoint().i, 1);
}

TEST(Runtime, RunQIRModuleConvenience) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  const RunResult result = runQIRModule(*m, 7);
  EXPECT_EQ(result.stats.measurements, 3U);
  EXPECT_EQ(result.output.size(), 3U);
  EXPECT_GT(result.interpStats.instructionsExecuted, 0U);
}

TEST(Runtime, RecordedOutputLabelsComeFromGlobals) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  interp.runEntryPoint();
  ASSERT_EQ(rt.recordedOutput().size(), 2U);
  EXPECT_EQ(rt.recordedOutput()[0].first, "r0");
  EXPECT_EQ(rt.recordedOutput()[1].first, "r1");
}

TEST(RecordingRuntimeTest, TraceReconstructsCircuit) {
  // §III.C orthogonality: swapping the runtime turns execution into
  // circuit reconstruction.
  const Circuit original = circuit::qft(3, true);
  ir::Context ctx;
  qir::ExportOptions options;
  options.addressing = qir::Addressing::Dynamic;
  options.recordOutput = false;
  const auto m = qir::exportCircuit(ctx, original, options);
  interp::Interpreter interp(*m);
  RecordingRuntime rt;
  rt.bind(interp);
  interp.runEntryPoint();
  EXPECT_EQ(rt.recorded(), original);
}

TEST(RecordingRuntimeTest, TraceExecutesClassicalLoops) {
  // A QIR FOR-loop (Ex. 4) traced through the recording runtime yields the
  // unrolled gate sequence without any compiler pass.
  ir::Context ctx;
  const auto m = parseQIR(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 10
  br i1 %c, label %body, label %exit
body:
  %p = inttoptr i64 %i to ptr
  call void @__quantum__qis__h__body(ptr %p)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)");
  interp::Interpreter interp(*m);
  RecordingRuntime rt;
  rt.bind(interp);
  interp.runEntryPoint();
  EXPECT_EQ(rt.recorded().gateCount(), 10U);
  EXPECT_EQ(rt.recorded().numQubits(), 10U);
}


TEST(Runtime, AttributeBasedPreallocationMatchesOnTheFly) {
  // §IV.A offers two strategies for static addresses: infer the count
  // "via an attribute in the QIR file" or allocate on the fly. Both must
  // execute identically.
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  ASSERT_EQ(m->entryPoint()->getAttribute("required_num_qubits"), "4");

  interp::Interpreter onTheFlyInterp(*m);
  QuantumRuntime onTheFly(7);
  onTheFly.bind(onTheFlyInterp);
  onTheFlyInterp.runEntryPoint();

  interp::Interpreter preallocInterp(*m);
  QuantumRuntime prealloc(7);
  EXPECT_EQ(prealloc.preallocateFromAttributes(*m), 4U);
  prealloc.bind(preallocInterp);
  EXPECT_EQ(prealloc.state().numQubits(), 4U); // reserved before execution
  preallocInterp.runEntryPoint();

  EXPECT_EQ(onTheFly.outputBitString(), prealloc.outputBitString());
  // The pre-allocating runtime reports no on-the-fly allocations.
  EXPECT_EQ(prealloc.stats().staticQubitsAllocated, 0U);
  EXPECT_EQ(onTheFly.stats().staticQubitsAllocated, 4U);
}

TEST(Runtime, PreallocationWithoutAttributeIsANoOp) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() {
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
)");
  QuantumRuntime rt(1);
  EXPECT_EQ(rt.preallocateFromAttributes(*m), 0U);
  EXPECT_EQ(rt.state().numQubits(), 0U);
}


TEST(CliffordRuntimeTest, HundredQubitGHZThroughQIR) {
  // Ex. 5's "integrating classical simulation techniques": the same QIR
  // program, a polynomially scaling backend — 100 qubits, far beyond the
  // dense simulator's cap.
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(100, true), {});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    interp::Interpreter interp(*m);
    CliffordRuntime rt(100, seed);
    rt.bind(interp);
    interp.runEntryPoint();
    const bool first = rt.resultValue(0);
    for (unsigned bit = 1; bit < 100; ++bit) {
      ASSERT_EQ(rt.resultValue(bit), first) << "bit " << bit;
    }
    EXPECT_EQ(rt.stats().gatesApplied, 100U);
  }
}

TEST(CliffordRuntimeTest, MatchesStatevectorRuntimeOnCliffordPrograms) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(5, true), {});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    interp::Interpreter denseInterp(*m);
    QuantumRuntime dense(seed);
    dense.bind(denseInterp);
    denseInterp.runEntryPoint();
    interp::Interpreter cliffordInterp(*m);
    CliffordRuntime clifford(5, seed);
    clifford.bind(cliffordInterp);
    cliffordInterp.runEntryPoint();
    // Both are GHZ: all-equal bits; the first bit is an independent coin
    // per backend, so compare correlation structure, not the coin.
    const bool denseFirst = dense.resultValue(0);
    const bool clifFirst = clifford.resultValue(0);
    for (unsigned bit = 1; bit < 5; ++bit) {
      EXPECT_EQ(dense.resultValue(bit), denseFirst);
      EXPECT_EQ(clifford.resultValue(bit), clifFirst);
    }
  }
}

TEST(CliffordRuntimeTest, RejectsNonCliffordInstructions) {
  ir::Context ctx;
  circuit::Circuit c(1, 0);
  c.t(0);
  qir::ExportOptions options;
  options.recordOutput = false;
  const auto m = qir::exportCircuit(ctx, c, options);
  interp::Interpreter interp(*m);
  CliffordRuntime rt(1);
  rt.bind(interp);
  EXPECT_THROW(interp.runEntryPoint(), interp::TrapError);
}

TEST(CliffordRuntimeTest, DynamicAllocationWithinBudget) {
  ir::Context ctx;
  qir::ExportOptions options;
  options.addressing = qir::Addressing::Dynamic;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(6, true), options);
  interp::Interpreter interp(*m);
  CliffordRuntime rt(6, 3);
  rt.bind(interp);
  interp.runEntryPoint();
  EXPECT_EQ(rt.stats().dynamicQubitsAllocated, 6U);
  // A second allocation beyond the budget traps.
  interp::Interpreter interp2(*m);
  CliffordRuntime small(3, 3);
  small.bind(interp2);
  EXPECT_THROW(interp2.runEntryPoint(), interp::TrapError);
}

/// Property: interpreted QIR execution and direct circuit simulation have
/// identical measurement statistics for deterministic circuits, and
/// identical statevectors generally.
class ExecutionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutionEquivalence, InterpretedQIRMatchesDirectSimulation) {
  const std::uint64_t seed = GetParam();
  const Circuit c = circuit::randomCircuit(4, 4, seed, /*measured=*/false);
  ir::Context ctx;
  qir::ExportOptions options;
  options.recordOutput = false;
  const auto m = qir::exportCircuit(ctx, c, options);

  interp::Interpreter interp(*m);
  QuantumRuntime rt(1);
  rt.bind(interp);
  interp.runEntryPoint();

  const auto direct = circuit::execute(c, 1);
  EXPECT_NEAR(rt.state().fidelity(direct.state), 1.0, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutionEquivalence,
                         ::testing::Range<std::uint64_t>(1, 11));

} // namespace
} // namespace qirkit::runtime
