#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::interp {
namespace {

using namespace qirkit::ir;

std::unique_ptr<Module> parse(Context& ctx, std::string_view text) {
  auto m = parseModule(ctx, text);
  verifyModuleOrThrow(*m);
  return m;
}

std::int64_t runI64(const Module& m, const char* fn,
                    std::vector<RtValue> args = {}) {
  Interpreter interp(m);
  return interp.run(*m.getFunction(fn), args).i;
}

TEST(Interp, StraightLineArithmetic) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f() {
  %a = add i64 20, 22
  %b = mul i64 %a, 2
  %c = sub i64 %b, 42
  ret i64 %c
}
)");
  EXPECT_EQ(runI64(*m, "f"), 42);
}

TEST(Interp, ArgumentsAndComparisons) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @max(i64 %a, i64 %b) {
  %c = icmp sgt i64 %a, %b
  %m = select i1 %c, i64 %a, i64 %b
  ret i64 %m
}
)");
  EXPECT_EQ(runI64(*m, "max", {RtValue::makeInt(3), RtValue::makeInt(9)}), 9);
  EXPECT_EQ(runI64(*m, "max", {RtValue::makeInt(-3), RtValue::makeInt(-9)}), -3);
}

TEST(Interp, LoopWithPhis) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
)");
  EXPECT_EQ(runI64(*m, "sum", {RtValue::makeInt(10)}), 45);
  EXPECT_EQ(runI64(*m, "sum", {RtValue::makeInt(0)}), 0);
}

TEST(Interp, SimultaneousPhiSwap) {
  // Classic phi-swap: both phis must read their incoming values before
  // either is written.
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @fib(i64 %n) {
entry:
  br label %header
header:
  %a = phi i64 [ 0, %entry ], [ %b, %body ]
  %b = phi i64 [ 1, %entry ], [ %sum, %body ]
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %sum = add i64 %a, %b
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %a
}
)");
  EXPECT_EQ(runI64(*m, "fib", {RtValue::makeInt(10)}), 55);
}

TEST(Interp, RecursionAndInternalCalls) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @fact(i64 %n) {
entry:
  %base = icmp sle i64 %n, 1
  br i1 %base, label %one, label %rec
one:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %sub = call i64 @fact(i64 %n1)
  %r = mul i64 %n, %sub
  ret i64 %r
}
)");
  EXPECT_EQ(runI64(*m, "fact", {RtValue::makeInt(10)}), 3628800);
}

TEST(Interp, MemoryOperations) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f() {
  %slot = alloca i64, align 8
  store i64 41, ptr %slot, align 8
  %v = load i64, ptr %slot, align 8
  %w = add i64 %v, 1
  store i64 %w, ptr %slot, align 8
  %r = load i64, ptr %slot, align 8
  ret i64 %r
}
)");
  EXPECT_EQ(runI64(*m, "f"), 42);
}

TEST(Interp, NarrowIntMemoryRoundTrip) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f() {
  %slot = alloca i8, align 1
  store i8 200, ptr %slot, align 1
  %v = load i8, ptr %slot, align 1
  %w = sext i8 %v to i64
  ret i64 %w
}
)");
  EXPECT_EQ(runI64(*m, "f"), -56); // 200 as signed i8
}

TEST(Interp, DoubleArithmetic) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f() {
  %x = fmul double 1.5, 4.0
  %c = fcmp ogt double %x, 5.0
  %r = select i1 %c, i64 1, i64 0
  ret i64 %r
}
)");
  EXPECT_EQ(runI64(*m, "f"), 1);
}

TEST(Interp, SwitchDispatch) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f(i64 %x) {
entry:
  switch i64 %x, label %other [
    i64 1, label %one
    i64 2, label %two
  ]
one:
  ret i64 100
two:
  ret i64 200
other:
  ret i64 -1
}
)");
  EXPECT_EQ(runI64(*m, "f", {RtValue::makeInt(1)}), 100);
  EXPECT_EQ(runI64(*m, "f", {RtValue::makeInt(2)}), 200);
  EXPECT_EQ(runI64(*m, "f", {RtValue::makeInt(3)}), -1);
}

TEST(Interp, ExternalFunctionDispatch) {
  Context ctx;
  const auto m = parse(ctx, R"(
declare i64 @host_add(i64, i64)
define i64 @f() {
  %r = call i64 @host_add(i64 40, i64 2)
  ret i64 %r
}
)");
  Interpreter interp(*m);
  interp.bindExternal("host_add", [](std::span<const RtValue> args, ExternContext&) {
    return RtValue::makeInt(args[0].i + args[1].i);
  });
  EXPECT_EQ(interp.run(*m->getFunction("f")).i, 42);
  EXPECT_EQ(interp.stats().externalCalls, 1U);
}

TEST(Interp, MissingExternalIsTheErrorThePaperDescribes) {
  // §III.C: lli "cannot handle the quantum instructions and will raise an
  // error" without a runtime.
  Context ctx;
  const auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() {
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
)");
  Interpreter interp(*m);
  try {
    interp.runEntryPoint();
    FAIL() << "expected TrapError";
  } catch (const TrapError& e) {
    EXPECT_NE(std::string(e.what()).find("__quantum__qis__h__body"),
              std::string::npos);
  }
}

TEST(Interp, DivisionByZeroTraps) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f(i64 %x) {
  %r = sdiv i64 10, %x
  ret i64 %r
}
)");
  Interpreter interp(*m);
  EXPECT_THROW((void)interp.run(*m->getFunction("f"), {{RtValue::makeInt(0)}}),
               TrapError);
}

TEST(Interp, StepLimitTerminatesInfiniteLoop) {
  Context ctx;
  const auto m = parse(ctx, R"(
define void @spin() {
entry:
  br label %loop
loop:
  br label %loop
}
)");
  Interpreter interp(*m);
  interp.setStepLimit(10000);
  EXPECT_THROW((void)interp.run(*m->getFunction("spin")), TrapError);
}

TEST(Interp, OutOfBoundsMemoryTraps) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f() {
  %p = inttoptr i64 12345 to ptr
  %v = load i64, ptr %p, align 8
  ret i64 %v
}
)");
  Interpreter interp(*m);
  EXPECT_THROW((void)interp.run(*m->getFunction("f")), TrapError);
}

TEST(Interp, GlobalStringsAreReadable) {
  Context ctx;
  const auto m = parse(ctx, R"(
@msg = internal constant [6 x i8] c"hello\00"
declare void @sink(ptr)
define void @f() {
  call void @sink(ptr @msg)
  ret void
}
)");
  Interpreter interp(*m);
  std::string captured;
  interp.bindExternal("sink", [&captured](std::span<const RtValue> args,
                                          ExternContext& ctx2) {
    captured = ctx2.readCString(args[0].p);
    return RtValue::makeVoid();
  });
  (void)interp.run(*m->getFunction("f"));
  EXPECT_EQ(captured, "hello");
}

TEST(Interp, StatsCountInstructions) {
  Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f() {
  %a = add i64 1, 2
  %b = add i64 %a, 3
  ret i64 %b
}
)");
  Interpreter interp(*m);
  (void)interp.run(*m->getFunction("f"));
  EXPECT_EQ(interp.stats().instructionsExecuted, 3U);
  EXPECT_EQ(interp.stats().internalCalls, 1U);
}

} // namespace
} // namespace qirkit::interp
