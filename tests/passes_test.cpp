#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/folding.hpp"
#include "passes/pass.hpp"

#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

std::unique_ptr<Module> parse(Context& ctx, std::string_view text) {
  auto m = parseModule(ctx, text);
  verifyModuleOrThrow(*m);
  return m;
}

void runPass(std::unique_ptr<FunctionPass> pass, Module& m, bool expectChange = true) {
  PassManager pm;
  pm.add(std::move(pass));
  pm.setVerifyEach(true);
  EXPECT_EQ(pm.run(m), expectChange);
}

// --- folding ------------------------------------------------------------

TEST(Folding, IntArithmeticRespectsWidth) {
  std::int64_t r = 0;
  ASSERT_TRUE(evalIntBinOp(Opcode::Add, 8, 127, 1, r));
  EXPECT_EQ(r, -128); // i8 wraparound
  ASSERT_TRUE(evalIntBinOp(Opcode::Mul, 64, 1'000'000'007, 1'000'000'007, r));
  ASSERT_TRUE(evalIntBinOp(Opcode::LShr, 8, -1, 4, r));
  EXPECT_EQ(r, 0x0F);
  ASSERT_TRUE(evalIntBinOp(Opcode::AShr, 8, -16, 2, r));
  EXPECT_EQ(r, -4);
}

TEST(Folding, DivisionByZeroRefusesToFold) {
  std::int64_t r = 0;
  EXPECT_FALSE(evalIntBinOp(Opcode::SDiv, 32, 5, 0, r));
  EXPECT_FALSE(evalIntBinOp(Opcode::URem, 32, 5, 0, r));
  EXPECT_FALSE(evalIntBinOp(Opcode::Shl, 32, 1, 40, r)); // oversized shift
}

TEST(Folding, SDivOverflowRefusesToFold) {
  std::int64_t r = 0;
  EXPECT_FALSE(evalIntBinOp(Opcode::SDiv, 8, -128, -1, r));
}

TEST(Folding, ICmpSignedVsUnsigned) {
  EXPECT_TRUE(evalICmp(ICmpPred::SLT, 8, -1, 0));
  EXPECT_FALSE(evalICmp(ICmpPred::ULT, 8, -1, 0)); // 255 < 0 unsigned: no
  EXPECT_TRUE(evalICmp(ICmpPred::UGE, 8, -1, 200));
  EXPECT_TRUE(evalICmp(ICmpPred::EQ, 32, 7, 7));
}

TEST(Folding, InstructionFoldingAlgebraicIdentities) {
  Context ctx;
  Module m(ctx, "t");
  Function* f = m.createFunction("f", ctx.functionTy(ctx.i64(), {ctx.i64()}));
  IRBuilder b(f->createBlock("entry"));
  Value* x = f->arg(0);
  x->setName("x");

  EXPECT_EQ(foldInstruction(ctx, *b.createAdd(x, ctx.getI64(0))), x);
  EXPECT_EQ(foldInstruction(ctx, *b.createMul(x, ctx.getI64(1))), x);
  EXPECT_EQ(foldInstruction(ctx, *b.createMul(x, ctx.getI64(0))), ctx.getI64(0));
  EXPECT_EQ(foldInstruction(ctx, *b.createSub(x, x)), ctx.getI64(0));
  EXPECT_EQ(foldInstruction(ctx, *b.createBinOp(Opcode::Xor, x, x)), ctx.getI64(0));
  EXPECT_EQ(foldInstruction(ctx, *b.createBinOp(Opcode::Or, x, x)), x);
  EXPECT_EQ(foldInstruction(ctx, *b.createAdd(x, x)), nullptr); // not foldable
}

TEST(Folding, PointerComparisonsOfStaticAddresses) {
  Context ctx;
  Module m(ctx, "t");
  Function* f = m.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  IRBuilder b(f->createBlock("entry"));
  Instruction* cmp =
      b.createICmp(ICmpPred::EQ, ctx.getNullPtr(), ctx.getIntToPtr(0));
  EXPECT_EQ(foldInstruction(ctx, *cmp), ctx.getI1(true));
  Instruction* cmp2 =
      b.createICmp(ICmpPred::NE, ctx.getIntToPtr(1), ctx.getIntToPtr(2));
  EXPECT_EQ(foldInstruction(ctx, *cmp2), ctx.getI1(true));
}

// --- constant folding pass ----------------------------------------------

TEST(ConstantFoldPass, FoldsChainsToConstants) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = sub i64 %b, 5
  ret i64 %c
}
)");
  runPass(createConstantFoldPass(), *m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->instructionCount(), 1U); // only ret left
  const Instruction* ret = f->entry()->back();
  const auto* c = dynamic_cast<const ConstantInt*>(ret->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 15);
}

TEST(ConstantFoldPass, FoldsCastsAndSelect) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
  %t = trunc i64 300 to i8
  %z = sext i8 %t to i64
  %c = icmp slt i64 %z, 0
  %s = select i1 %c, i64 1, i64 2
  ret i64 %s
}
)");
  runPass(createConstantFoldPass(), *m);
  const Instruction* ret = m->getFunction("f")->entry()->back();
  const auto* c = dynamic_cast<const ConstantInt*>(ret->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2); // 300 -> i8 44 -> 44 >= 0
}

// --- DCE ---------------------------------------------------------------

TEST(DCEPass, RemovesDeadChains) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @f() {
  %dead1 = add i64 1, 2
  %dead2 = mul i64 %dead1, 3
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
)");
  runPass(createDCEPass(), *m);
  EXPECT_EQ(m->getFunction("f")->instructionCount(), 2U); // call + ret
}

TEST(DCEPass, KeepsSideEffectsAndUsedValues) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
  %used = add i64 1, 2
  %slot = alloca i64, align 8
  store i64 %used, ptr %slot, align 8
  %v = load i64, ptr %slot, align 8
  ret i64 %v
}
)");
  runPass(createDCEPass(), *m, /*expectChange=*/false);
  EXPECT_EQ(m->getFunction("f")->instructionCount(), 5U);
}

// --- SimplifyCFG ----------------------------------------------------------

TEST(SimplifyCFG, FoldsConstantBranchAndRemovesDeadBlock) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  br i1 true, label %a, label %b
a:
  ret i64 1
b:
  ret i64 2
}
)");
  runPass(createSimplifyCFGPass(), *m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->blocks().size(), 1U); // entry+a merged, b deleted
  const auto* c =
      dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 1);
}

TEST(SimplifyCFG, FixesPhisWhenEdgeRemoved) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  br i1 false, label %a, label %join
a:
  br label %join
join:
  %p = phi i64 [ 1, %a ], [ 2, %entry ]
  ret i64 %p
}
)");
  runPass(createSimplifyCFGPass(), *m);
  const Function* f = m->getFunction("f");
  const auto* c =
      dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2);
}

TEST(SimplifyCFG, FoldsConstantSwitch) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  switch i64 20, label %other [
    i64 10, label %ten
    i64 20, label %twenty
  ]
ten:
  ret i64 1
twenty:
  ret i64 2
other:
  ret i64 3
}
)");
  runPass(createSimplifyCFGPass(), *m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->blocks().size(), 1U);
  const auto* c =
      dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 2);
}

TEST(SimplifyCFG, MergesStraightLineChains) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  br label %a
a:
  %x = add i64 1, 2
  br label %b
b:
  ret i64 %x
}
)");
  runPass(createSimplifyCFGPass(), *m);
  EXPECT_EQ(m->getFunction("f")->blocks().size(), 1U);
}

// --- mem2reg ----------------------------------------------------------------

TEST(Mem2Reg, PromotesSimpleSlot) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
  %slot = alloca i64, align 8
  store i64 42, ptr %slot, align 8
  %v = load i64, ptr %slot, align 8
  ret i64 %v
}
)");
  runPass(createMem2RegPass(), *m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->instructionCount(), 1U);
  const auto* c =
      dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 42);
}

TEST(Mem2Reg, InsertsPhiAtJoin) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i1 %c) {
entry:
  %slot = alloca i64, align 8
  store i64 1, ptr %slot, align 8
  br i1 %c, label %then, label %join
then:
  store i64 2, ptr %slot, align 8
  br label %join
join:
  %v = load i64, ptr %slot, align 8
  ret i64 %v
}
)");
  runPass(createMem2RegPass(), *m);
  const Function* f = m->getFunction("f");
  // No memory ops left; a phi appears in join.
  for (const auto& block : f->blocks()) {
    for (const auto& inst : block->instructions()) {
      EXPECT_NE(inst->op(), Opcode::Alloca);
      EXPECT_NE(inst->op(), Opcode::Load);
      EXPECT_NE(inst->op(), Opcode::Store);
    }
  }
  EXPECT_FALSE(f->blocks()[2]->phis().empty());
}

TEST(Mem2Reg, DoesNotPromoteEscapingSlot) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @use(ptr)
define i64 @f() {
  %slot = alloca i64, align 8
  store i64 42, ptr %slot, align 8
  call void @use(ptr %slot)
  %v = load i64, ptr %slot, align 8
  ret i64 %v
}
)");
  runPass(createMem2RegPass(), *m, /*expectChange=*/false);
  EXPECT_EQ(m->getFunction("f")->instructionCount(), 5U);
}

TEST(Mem2Reg, PromotesLoopCounter) {
  Context ctx;
  auto m = parse(ctx, R"(
define i32 @f() {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %header
header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, 10
  br i1 %cond, label %body, label %exit
body:
  %2 = load i32, ptr %i, align 4
  %3 = add i32 %2, 1
  store i32 %3, ptr %i, align 4
  br label %header
exit:
  %r = load i32, ptr %i, align 4
  ret i32 %r
}
)");
  runPass(createMem2RegPass(), *m);
  const Function* f = m->getFunction("f");
  // The loop counter becomes a phi in the header.
  EXPECT_FALSE(f->blocks()[1]->phis().empty());
  for (const auto& block : f->blocks()) {
    for (const auto& inst : block->instructions()) {
      EXPECT_NE(inst->op(), Opcode::Load);
    }
  }
}

// --- SCCP ---------------------------------------------------------------

TEST(SCCP, PropagatesThroughBranches) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  %x = add i64 1, 1
  %c = icmp eq i64 %x, 2
  br i1 %c, label %then, label %else
then:
  br label %join
else:
  br label %join
join:
  %p = phi i64 [ 10, %then ], [ 20, %else ]
  ret i64 %p
}
)");
  PassManager pm;
  pm.add(createSCCPPass());
  pm.add(createSimplifyCFGPass());
  pm.setVerifyEach(true);
  pm.runToFixpoint(*m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->blocks().size(), 1U);
  const auto* c =
      dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 10);
}

TEST(SCCP, LeavesOverdefinedAlone) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f(i64 %n) {
entry:
  %x = add i64 %n, 1
  ret i64 %x
}
)");
  runPass(createSCCPPass(), *m, /*expectChange=*/false);
  EXPECT_EQ(m->getFunction("f")->instructionCount(), 2U);
}

TEST(SCCP, SolvesLoopInvariantExit) {
  // SCCP proves the loop executes with a constant bound and the exit value
  // is the phi meet; the loop itself stays (SCCP does not delete cycles).
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  br label %header
header:
  %flag = phi i64 [ 7, %entry ], [ %flag, %body ]
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 3
  br i1 %c, label %body, label %exit
body:
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %flag
}
)");
  runPass(createSCCPPass(), *m);
  const Instruction* ret = m->getFunction("f")->blocks().back()->back();
  const auto* c = dynamic_cast<const ConstantInt*>(ret->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 7);
}

// --- whole pipeline ------------------------------------------------------

TEST(Pipeline, StandardPipelineReducesLoadStoreBranchProgram) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  %a = alloca i64, align 8
  store i64 5, ptr %a, align 8
  %v = load i64, ptr %a, align 8
  %c = icmp sgt i64 %v, 3
  br i1 %c, label %big, label %small
big:
  ret i64 100
small:
  ret i64 0
}
)");
  PassManager pm;
  addStandardPipeline(pm);
  pm.setVerifyEach(true);
  pm.runToFixpoint(*m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->blocks().size(), 1U);
  EXPECT_EQ(f->instructionCount(), 1U);
  const auto* c =
      dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 100);
}

TEST(Pipeline, StatisticsAreRecorded) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
  %x = add i64 1, 2
  ret i64 %x
}
)");
  PassManager pm;
  addStandardPipeline(pm);
  pm.run(*m);
  EXPECT_FALSE(pm.statistics().empty());
  EXPECT_NE(pm.statisticsReport().find("constant-fold"), std::string::npos);
}

} // namespace
} // namespace qirkit::passes
