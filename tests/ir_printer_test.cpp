#include "ir/builder.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::ir {
namespace {

/// Reparse what we printed and require a fixpoint.
void expectRoundTrip(const Module& m) {
  const std::string printed = printModule(m);
  Context ctx2;
  const auto reparsed = parseModule(ctx2, printed, m.name());
  verifyModuleOrThrow(*reparsed);
  EXPECT_EQ(printModule(*reparsed), printed);
}

TEST(Printer, QuotedNamesSurviveRoundTrip) {
  Context ctx;
  Module m(ctx, "q");
  Function* f = m.createFunction("weird name!", ctx.functionTy(ctx.i64(), {}));
  IRBuilder b(f->createBlock("entry block"));
  Instruction* v = b.createAdd(ctx.getI64(1), ctx.getI64(2), "my value");
  b.createRet(v);
  const std::string printed = printModule(m);
  EXPECT_NE(printed.find("@\"weird name!\""), std::string::npos);
  EXPECT_NE(printed.find("%\"my value\""), std::string::npos);
  expectRoundTrip(m);
}

TEST(Printer, DuplicateNamesFromCloningAreUniquified) {
  Context ctx;
  Module m(ctx, "dup");
  Function* f = m.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = f->createBlock("entry");
  IRBuilder b(bb);
  Instruction* first = b.createAdd(ctx.getI64(1), ctx.getI64(2), "x");
  bb->append(first->clone()); // clone keeps the name "x"
  b.setInsertPoint(bb);
  b.createRetVoid();
  const std::string printed = printModule(m);
  EXPECT_NE(printed.find("%x ="), std::string::npos);
  EXPECT_NE(printed.find("%x.1 ="), std::string::npos);
  expectRoundTrip(m);
}

TEST(Printer, UnnamedValuesSkipTakenNumbers) {
  Context ctx;
  Module m(ctx, "nums");
  Function* f = m.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = f->createBlock("entry");
  IRBuilder b(bb);
  // A value explicitly named "0" must not collide with the first unnamed
  // value's number.
  b.createAdd(ctx.getI64(1), ctx.getI64(2), "0");
  b.createAdd(ctx.getI64(3), ctx.getI64(4)); // unnamed
  b.createRetVoid();
  expectRoundTrip(m);
}

TEST(Printer, NegativeSwitchCaseValues) {
  Context ctx;
  const auto m = parseModule(ctx, R"(
define i64 @f(i64 %x) {
entry:
  switch i64 %x, label %d [
    i64 -1, label %neg
    i64 -9223372036854775808, label %min
  ]
neg:
  ret i64 1
min:
  ret i64 2
d:
  ret i64 0
}
)");
  expectRoundTrip(*m);
}

TEST(Printer, ExtremeIntegerConstants) {
  Context ctx;
  const auto m = parseModule(ctx, R"(
define i64 @f() {
  %a = add i64 9223372036854775807, 0
  %b = add i64 -9223372036854775808, 0
  %c = add i64 %a, %b
  ret i64 %c
}
)");
  expectRoundTrip(*m);
}

TEST(Printer, SpecialDoubleValues) {
  Context ctx;
  Module m(ctx, "doubles");
  Function* f = m.createFunction("f", ctx.functionTy(ctx.doubleTy(), {}));
  IRBuilder b(f->createBlock("entry"));
  Instruction* v = b.createBinOp(Opcode::FAdd, ctx.getDouble(1e-300),
                                 ctx.getDouble(123456789.123456789));
  b.createRet(v);
  expectRoundTrip(m);
}

TEST(Printer, AttributeValuesWithSpecialCharacters) {
  Context ctx;
  Module m(ctx, "attrs");
  Function* f = m.createFunction("main", ctx.functionTy(ctx.voidTy(), {}));
  f->setAttribute("entry_point");
  f->setAttribute("output_labeling_schema", "schema \"v1\"");
  IRBuilder b(f->createBlock("entry"));
  b.createRetVoid();
  const std::string printed = printModule(m);
  Context ctx2;
  const auto reparsed = parseModule(ctx2, printed, "attrs");
  EXPECT_EQ(reparsed->getFunction("main")->getAttribute("output_labeling_schema"),
            "schema \"v1\"");
}

TEST(Printer, EmptyFunctionParameterNamesAreNumbered) {
  Context ctx;
  Module m(ctx, "args");
  Function* f =
      m.createFunction("f", ctx.functionTy(ctx.i64(), {ctx.i64(), ctx.i64()}));
  IRBuilder b(f->createBlock());
  Instruction* sum = b.createAdd(f->arg(0), f->arg(1));
  b.createRet(sum);
  const std::string printed = printModule(m);
  EXPECT_NE(printed.find("i64 %0, i64 %1"), std::string::npos);
  expectRoundTrip(m);
}

TEST(Printer, UseListStressAfterManyRAUWs) {
  // Thousands of uses of one constant; replace repeatedly. Exercises the
  // O(1) use-list bookkeeping.
  Context ctx;
  Module m(ctx, "stress");
  Function* f = m.createFunction("f", ctx.functionTy(ctx.voidTy(), {}));
  BasicBlock* bb = f->createBlock("entry");
  IRBuilder b(bb);
  std::vector<Instruction*> adds;
  for (int i = 0; i < 2000; ++i) {
    adds.push_back(b.createAdd(ctx.getI64(7), ctx.getI64(7)));
  }
  b.createRetVoid();
  EXPECT_EQ(ctx.getI64(7)->numUses(), 4000U);
  // Replace every add with a different constant: drops all uses of 7.
  for (Instruction* add : adds) {
    add->replaceAllUsesWith(ctx.getI64(0)); // no uses anyway
    add->setOperand(0, ctx.getI64(1));
    add->setOperand(1, ctx.getI64(2));
  }
  EXPECT_EQ(ctx.getI64(7)->numUses(), 0U);
  EXPECT_EQ(ctx.getI64(1)->numUses(), 2000U);
  // Bulk-erase everything but the terminator.
  bb->eraseIf([](Instruction* inst) { return !inst->isTerminator(); });
  EXPECT_EQ(ctx.getI64(1)->numUses(), 0U);
  EXPECT_TRUE(verifyModule(m).empty());
}

} // namespace
} // namespace qirkit::ir
