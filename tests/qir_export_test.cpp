#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "qir/exporter.hpp"
#include "qir/names.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::qir {
namespace {

using circuit::Circuit;
using namespace qirkit::ir;

std::size_t countCalls(const Function& fn, std::string_view callee) {
  std::size_t count = 0;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::Call && inst->callee()->name() == callee) {
        ++count;
      }
    }
  }
  return count;
}

TEST(QirNames, Classification) {
  EXPECT_TRUE(isQisFunction(kQisH));
  EXPECT_TRUE(isRtFunction(kRtQubitAllocate));
  EXPECT_FALSE(isQisFunction(kRtQubitAllocate));
  EXPECT_TRUE(isQuantumFunction(kQisMz));
  EXPECT_FALSE(isQuantumFunction("printf"));
}

TEST(QirNames, SignaturesAreWellFormed) {
  Context ctx;
  const Type* h = qirFunctionType(ctx, kQisH);
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->returnType()->isVoid());
  EXPECT_EQ(h->paramTypes().size(), 1U);
  const Type* rz = qirFunctionType(ctx, kQisRZ);
  EXPECT_TRUE(rz->paramTypes()[0]->isDouble());
  EXPECT_EQ(qirFunctionType(ctx, "not_a_qir_function"), nullptr);
}

TEST(QirNames, OpKindMappingRoundTrips) {
  using circuit::OpKind;
  for (const OpKind kind : {OpKind::H, OpKind::X, OpKind::RZ, OpKind::CX,
                            OpKind::CCX, OpKind::Sdg, OpKind::Reset}) {
    const auto name = qisNameFor(kind);
    ASSERT_TRUE(name.has_value());
    EXPECT_EQ(opKindForQis(*name), kind);
  }
  EXPECT_FALSE(qisNameFor(circuit::OpKind::Measure).has_value());
  EXPECT_EQ(opKindForQis(kQisMz), circuit::OpKind::Measure);
}

TEST(Exporter, StaticAddressingMatchesEx6Shape) {
  Context ctx;
  ExportOptions options;
  options.addressing = Addressing::Static;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, circuit::bellPair(true), options);
  verifyModuleOrThrow(*m);
  const Function* main = m->entryPoint();
  ASSERT_NE(main, nullptr);
  // No allocation lines (Ex. 6: "the lines for allocating the qubits
  // disappear").
  EXPECT_EQ(countCalls(*main, kRtQubitAllocateArray), 0U);
  EXPECT_EQ(countCalls(*main, kRtArrayCreate1d), 0U);
  // Qubit 0 is `ptr null`.
  const Instruction* h = main->entry()->front();
  EXPECT_EQ(h->callee()->name(), kQisH);
  EXPECT_EQ(h->operand(0)->kind(), Value::Kind::ConstantPointerNull);
}

TEST(Exporter, DynamicAddressingMatchesEx2Shape) {
  Context ctx;
  ExportOptions options;
  options.addressing = Addressing::Dynamic;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, circuit::bellPair(true), options);
  verifyModuleOrThrow(*m);
  const Function* main = m->entryPoint();
  EXPECT_EQ(countCalls(*main, kRtQubitAllocateArray), 1U);
  EXPECT_EQ(countCalls(*main, kRtArrayCreate1d), 1U);
  // Every gate operand goes through array_get_element_ptr_1d.
  EXPECT_GE(countCalls(*main, kRtArrayGetElementPtr1d), 4U);
  // Allocas for the %q / %c stack slots of Fig. 1.
  std::size_t allocas = 0;
  for (const auto& inst : main->entry()->instructions()) {
    allocas += inst->op() == Opcode::Alloca ? 1 : 0;
  }
  EXPECT_EQ(allocas, 2U);
}

TEST(Exporter, EntryPointAttributes) {
  Context ctx;
  const auto m = exportCircuit(ctx, circuit::ghz(3, true), {});
  const Function* main = m->entryPoint();
  EXPECT_EQ(main->getAttribute("required_num_qubits"), "3");
  EXPECT_EQ(main->getAttribute("required_num_results"), "3");
  EXPECT_EQ(main->getAttribute("qir_profiles"), "base_profile");
}

TEST(Exporter, ConditionedOpsBecomeReadResultDiamonds) {
  Context ctx;
  Circuit c(1, 1);
  c.measure(0, 0);
  c.add({circuit::OpKind::X, {0}, {}, 0, circuit::Condition{0, 1, 1}});
  ExportOptions options;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, c, options);
  verifyModuleOrThrow(*m);
  const Function* main = m->entryPoint();
  EXPECT_EQ(main->getAttribute("qir_profiles"), "adaptive_profile");
  EXPECT_EQ(main->blocks().size(), 3U); // entry, then, continue
  EXPECT_EQ(countCalls(*main, kQisReadResult), 1U);
}

TEST(Exporter, MultiBitConditionBuildsConjunction) {
  Context ctx;
  Circuit c(1, 2);
  c.measure(0, 0);
  c.measure(0, 1);
  c.add({circuit::OpKind::X, {0}, {}, 0, circuit::Condition{0, 2, 0b01}});
  ExportOptions options;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, c, options);
  verifyModuleOrThrow(*m);
  EXPECT_EQ(countCalls(*m->entryPoint(), kQisReadResult), 2U);
}

TEST(Exporter, U3LowersToRotationTriple) {
  Context ctx;
  Circuit c(1, 0);
  c.u3(0.1, 0.2, 0.3, 0);
  ExportOptions options;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, c, options);
  const Function* main = m->entryPoint();
  EXPECT_EQ(countCalls(*main, kQisRZ), 2U);
  EXPECT_EQ(countCalls(*main, kQisRY), 1U);
}

TEST(Exporter, RecordOutputEmitsLabelsInOrder) {
  Context ctx;
  const auto m = exportCircuit(ctx, circuit::bellPair(true), {});
  const Function* main = m->entryPoint();
  EXPECT_EQ(countCalls(*main, kRtResultRecordOutput), 2U);
  EXPECT_EQ(countCalls(*main, kRtArrayRecordOutput), 1U);
  EXPECT_NE(m->getGlobal("lbl.r0"), nullptr);
  EXPECT_NE(m->getGlobal("lbl.r1"), nullptr);
}

TEST(Exporter, OutputReparsesWithTheFullParser) {
  Context ctx;
  for (const Addressing addressing : {Addressing::Static, Addressing::Dynamic}) {
    ExportOptions options;
    options.addressing = addressing;
    const auto m = exportCircuit(ctx, circuit::qft(3, true), options);
    const std::string text = printModule(*m);
    Context ctx2;
    const auto reparsed = parseModule(ctx2, text, m->name());
    verifyModuleOrThrow(*reparsed);
    EXPECT_EQ(printModule(*reparsed), text);
  }
}

TEST(Exporter, BarrierHasNoQIRRepresentation) {
  Context ctx;
  Circuit c(1, 0);
  c.h(0);
  c.barrier();
  c.h(0);
  ExportOptions options;
  options.recordOutput = false;
  const auto m = exportCircuit(ctx, c, options);
  EXPECT_EQ(countCalls(*m->entryPoint(), kQisH), 2U);
  EXPECT_EQ(m->entryPoint()->instructionCount(), 3U); // 2 calls + ret
}

} // namespace
} // namespace qirkit::qir
