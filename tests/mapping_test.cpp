#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "circuit/mapping.hpp"
#include "circuit/optimizer.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::circuit {
namespace {

TEST(Target, TopologyConstructors) {
  const Target line = Target::line(4);
  EXPECT_EQ(line.coupling.size(), 3U);
  EXPECT_TRUE(line.connected(1, 2));
  EXPECT_TRUE(line.connected(2, 1)); // undirected
  EXPECT_FALSE(line.connected(0, 2));

  const Target ring = Target::ring(4);
  EXPECT_TRUE(ring.connected(3, 0));

  const Target grid = Target::grid(2, 3);
  EXPECT_EQ(grid.numQubits, 6U);
  EXPECT_TRUE(grid.connected(0, 3)); // vertical
  EXPECT_TRUE(grid.connected(0, 1)); // horizontal
  EXPECT_FALSE(grid.connected(0, 4));

  const Target full = Target::fullyConnected(5);
  EXPECT_EQ(full.coupling.size(), 10U);
}

TEST(Target, BFSDistances) {
  const Target line = Target::line(5);
  const auto dist = line.distances();
  EXPECT_EQ(dist[0][4], 4U);
  EXPECT_EQ(dist[2][2], 0U);
  EXPECT_EQ(dist[1][3], 2U);
}

TEST(Mapping, RejectsOversizedPrograms) {
  // §IV.A: "the compiler must ensure that the program does not exceed this
  // number."
  const Circuit c = ghz(5, true);
  EXPECT_THROW((void)mapCircuit(c, Target::line(4)), SemanticError);
}

TEST(Mapping, ConnectedGatesNeedNoSwaps) {
  const Circuit c = ghz(4, true); // nearest-neighbor ladder
  const MappingResult result = mapCircuit(c, Target::line(4));
  EXPECT_EQ(result.swapsInserted, 0U);
  EXPECT_TRUE(respectsCoupling(result.mapped, Target::line(4)));
}

TEST(Mapping, DistantGateGetsRouted) {
  Circuit c(4, 0);
  c.cx(0, 3); // distance 3 on a line
  const MappingResult result = mapCircuit(c, Target::line(4));
  EXPECT_EQ(result.swapsInserted, 2U);
  EXPECT_TRUE(respectsCoupling(result.mapped, Target::line(4)));
}

TEST(Mapping, FullConnectivityNeverNeedsSwaps) {
  const Circuit c = randomCircuit(5, 8, 3, true);
  const MappingResult result = mapCircuit(c, Target::fullyConnected(5));
  EXPECT_EQ(result.swapsInserted, 0U);
}

TEST(Mapping, LayoutIsTracked) {
  Circuit c(3, 0);
  c.cx(0, 2);
  const MappingResult result = mapCircuit(c, Target::line(3));
  EXPECT_EQ(result.initialLayout.size(), 3U);
  EXPECT_EQ(result.finalLayout.size(), 3U);
  EXPECT_EQ(result.swapsInserted, 1U);
}

TEST(Mapping, RejectsWideGates) {
  Circuit c(3, 0);
  c.ccx(0, 1, 2);
  EXPECT_THROW((void)mapCircuit(c, Target::line(3)), SemanticError);
  // After decomposition it maps fine.
  const Circuit lowered = decomposeToCXBasis(c);
  const MappingResult result = mapCircuit(lowered, Target::line(3));
  EXPECT_TRUE(respectsCoupling(result.mapped, Target::line(3)));
}

/// Property: mapping preserves measured semantics on deterministic
/// circuits. GHZ measured outcomes through any topology stay {00..0, 11..1}.
class MappingSemantics : public ::testing::TestWithParam<unsigned> {};

TEST_P(MappingSemantics, GHZStaysCorrelatedThroughMapping) {
  const unsigned n = GetParam();
  const Circuit c = ghz(n, true);
  for (const Target& target : {Target::line(n), Target::ring(n)}) {
    const MappingResult result = mapCircuit(c, target);
    EXPECT_TRUE(respectsCoupling(result.mapped, target));
    const auto counts = sampleCounts(result.mapped, 50, 17);
    for (const auto& [bits, count] : counts) {
      EXPECT_TRUE(bits == std::string(n, '0') || bits == std::string(n, '1'))
          << target.name << ": " << bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MappingSemantics, ::testing::Values(3U, 4U, 6U));

/// Property: on random circuits (no measurement), mapping + undoing the
/// final layout reproduces the original state.
class MappingFidelity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MappingFidelity, MappedStateMatchesAfterLayoutInversion) {
  const std::uint64_t seed = GetParam();
  Circuit c = randomCircuit(5, 4, seed, /*measured=*/false);
  const Target target = Target::line(5);
  MappingResult result = mapCircuit(c, target);
  // Undo the final permutation with swaps (virtual, for verification only).
  Circuit& mapped = result.mapped;
  std::vector<unsigned> layout = result.finalLayout;
  for (unsigned program = 0; program < layout.size(); ++program) {
    while (layout[program] != program) {
      const unsigned other = layout[program];
      // Find which program qubit sits at `program`.
      unsigned occupant = 0;
      for (unsigned p = 0; p < layout.size(); ++p) {
        if (layout[p] == program) {
          occupant = p;
          break;
        }
      }
      mapped.swap(program, other);
      std::swap(layout[program], layout[occupant]);
    }
  }
  const auto expected = execute(c, 1);
  const auto actual = execute(mapped, 1);
  EXPECT_NEAR(expected.state.fidelity(actual.state), 1.0, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingFidelity, ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace qirkit::circuit
