#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "circuit/optimizer.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace qirkit::circuit {
namespace {

TEST(CancelInverses, AdjacentSelfInversePairs) {
  Circuit c(2, 0);
  c.h(0);
  c.h(0);
  c.x(1);
  c.x(1);
  c.cx(0, 1);
  c.cx(0, 1);
  EXPECT_EQ(cancelInversePairs(c), 6U);
  EXPECT_TRUE(c.empty());
}

TEST(CancelInverses, SAndSdgCancel) {
  Circuit c(1, 0);
  c.s(0);
  c.sdg(0);
  c.t(0);
  c.tdg(0);
  EXPECT_EQ(cancelInversePairs(c), 4U);
  EXPECT_TRUE(c.empty());
}

TEST(CancelInverses, InterveningGateOnSameQubitBlocks) {
  Circuit c(1, 0);
  c.h(0);
  c.t(0);
  c.h(0);
  EXPECT_EQ(cancelInversePairs(c), 0U);
  EXPECT_EQ(c.size(), 3U);
}

TEST(CancelInverses, IndependentQubitInBetweenDoesNotBlock) {
  Circuit c(2, 0);
  c.h(0);
  c.x(1); // touches a different qubit
  c.h(0);
  EXPECT_EQ(cancelInversePairs(c), 2U);
  EXPECT_EQ(c.size(), 1U);
}

TEST(CancelInverses, CXOrientationMatters) {
  Circuit c(2, 0);
  c.cx(0, 1);
  c.cx(1, 0); // not the inverse
  EXPECT_EQ(cancelInversePairs(c), 0U);
}

TEST(CancelInverses, CZIsSymmetric) {
  Circuit c(2, 0);
  c.cz(0, 1);
  c.cz(1, 0);
  EXPECT_EQ(cancelInversePairs(c), 2U);
}

TEST(CancelInverses, MeasurementIsAFence) {
  Circuit c(1, 1);
  c.h(0);
  c.measure(0, 0);
  c.h(0);
  EXPECT_EQ(cancelInversePairs(c), 0U);
}

TEST(CancelInverses, ConditionedOpsAreFences) {
  Circuit c(1, 1);
  c.x(0);
  c.add({OpKind::X, {0}, {}, 0, Condition{0, 1, 1}});
  c.x(0);
  EXPECT_EQ(cancelInversePairs(c), 0U);
}

TEST(CancelInverses, BarrierIsAFence) {
  Circuit c(1, 0);
  c.h(0);
  c.barrier();
  c.h(0);
  EXPECT_EQ(cancelInversePairs(c), 0U);
}

TEST(MergeRotations, SameAxisAccumulates) {
  Circuit c(1, 0);
  c.rz(0.25, 0);
  c.rz(0.5, 0);
  c.rz(0.25, 0);
  EXPECT_EQ(mergeRotations(c), 2U);
  ASSERT_EQ(c.size(), 1U);
  EXPECT_NEAR(c.op(0).params[0], 1.0, 1e-12);
}

TEST(MergeRotations, DifferentAxesDoNotMerge) {
  Circuit c(1, 0);
  c.rz(0.5, 0);
  c.rx(0.5, 0);
  EXPECT_EQ(mergeRotations(c), 0U);
}

TEST(RemoveIdentity, ZeroAndTwoPiRotationsVanish) {
  Circuit c(1, 0);
  c.rz(0.0, 0);
  c.rx(2 * std::numbers::pi, 0);
  c.ry(0.7, 0);
  EXPECT_EQ(removeIdentityRotations(c), 2U);
  ASSERT_EQ(c.size(), 1U);
  EXPECT_EQ(c.op(0).kind, OpKind::RY);
}

TEST(OptimizeCircuit, RotationsThatSumToZeroDisappearCompletely) {
  Circuit c(1, 0);
  c.rz(1.5, 0);
  c.rz(-1.5, 0);
  const OptimizeStats stats = optimizeCircuit(c);
  EXPECT_TRUE(c.empty());
  EXPECT_GE(stats.total(), 2U);
}

TEST(OptimizeCircuit, CascadingCancellation) {
  // X H H X collapses completely, but needs two sweeps.
  Circuit c(1, 0);
  c.x(0);
  c.h(0);
  c.h(0);
  c.x(0);
  optimizeCircuit(c);
  EXPECT_TRUE(c.empty());
}

TEST(OptimizeCircuit, PreservesSemanticsOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Circuit original = randomCircuit(4, 6, seed, /*measured=*/false);
    // Sprinkle in removable pairs.
    original.h(0);
    original.h(0);
    original.rz(0.4, 1);
    original.rz(-0.4, 1);
    Circuit optimized = original;
    optimizeCircuit(optimized);
    EXPECT_LE(optimized.size(), original.size());
    const auto a = execute(original, 1);
    const auto b = execute(optimized, 1);
    EXPECT_NEAR(a.state.fidelity(b.state), 1.0, 1e-9) << "seed " << seed;
  }
}

TEST(Decompose, SwapBecomesThreeCX) {
  Circuit c(2, 0);
  c.swap(0, 1);
  const Circuit lowered = decomposeToCXBasis(c);
  EXPECT_EQ(lowered.countKind(OpKind::CX), 3U);
  EXPECT_EQ(lowered.countKind(OpKind::Swap), 0U);
}

TEST(Decompose, CCXLoweringIsSemanticallyExact) {
  for (unsigned input = 0; input < 8; ++input) {
    Circuit c(3, 0);
    for (unsigned bit = 0; bit < 3; ++bit) {
      if ((input >> bit) & 1) {
        c.x(bit);
      }
    }
    Circuit withToffoli = c;
    withToffoli.ccx(0, 1, 2);
    Circuit lowered = c;
    Circuit toffoliOnly(3, 0);
    toffoliOnly.ccx(0, 1, 2);
    const Circuit decomposed = decomposeToCXBasis(toffoliOnly);
    for (const Operation& op : decomposed.ops()) {
      lowered.add(op);
    }
    const auto expected = execute(withToffoli, 1);
    const auto actual = execute(lowered, 1);
    EXPECT_NEAR(expected.state.fidelity(actual.state), 1.0, 1e-9)
        << "input " << input;
  }
}

TEST(Decompose, ConditionsArePropagated) {
  Circuit c(3, 1);
  c.add({OpKind::CCX, {0, 1, 2}, {}, 0, Condition{0, 1, 1}});
  const Circuit lowered = decomposeToCXBasis(c);
  for (const Operation& op : lowered.ops()) {
    ASSERT_TRUE(op.condition.has_value());
    EXPECT_EQ(*op.condition, (Condition{0, 1, 1}));
  }
}


TEST(DeferMeasurements, MovesInterleavedMeasurementsToTheEnd) {
  // Measure q0 early, then keep working on q1: deferral restores the
  // base-profile shape (all measurements last).
  Circuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.h(1);
  c.t(1);
  c.measure(1, 1);
  // Not feedback (nothing touches q0 again), but the measurement is
  // interleaved, which the base profile cannot express.
  EXPECT_FALSE(c.hasClassicalFeedback());
  EXPECT_EQ(deferMeasurements(c), 2U);
  EXPECT_EQ(c.op(c.size() - 1).kind, OpKind::Measure);
  EXPECT_EQ(c.op(c.size() - 2).kind, OpKind::Measure);
  // Gate order among non-measurements is preserved.
  EXPECT_EQ(c.op(0).kind, OpKind::H);
  EXPECT_EQ(c.op(1).kind, OpKind::H);
  EXPECT_EQ(c.op(2).kind, OpKind::T);
}

TEST(DeferMeasurements, SameQubitUseBlocksDeferral) {
  Circuit c(1, 2);
  c.measure(0, 0);
  c.x(0); // real mid-circuit measurement: cannot move past this
  c.measure(0, 1);
  EXPECT_EQ(deferMeasurements(c), 0U);
}

TEST(DeferMeasurements, ConditionReadBlocksDeferral) {
  Circuit c(2, 2);
  c.measure(0, 0);
  c.add({OpKind::X, {1}, {}, 0, Condition{0, 1, 1}}); // reads bit 0
  c.measure(1, 1);
  EXPECT_EQ(deferMeasurements(c), 0U);
}

TEST(DeferMeasurements, PreservesSemantics) {
  Circuit c(3, 3);
  c.h(0);
  c.measure(0, 0);
  c.h(1);
  c.cx(1, 2);
  c.measure(1, 1);
  c.measure(2, 2);
  Circuit deferred = c;
  (void)deferMeasurements(deferred);
  const auto a = sampleCounts(c, 500, 3);
  const auto b = sampleCounts(deferred, 500, 3);
  // Same distribution support: bit1 == bit2 always, bit0 uniform-ish.
  for (const auto& [bits, count] : b) {
    EXPECT_EQ(bits[0], bits[1]) << bits; // leftmost chars are bits 2,1
  }
  (void)a;
}

} // namespace
} // namespace qirkit::circuit
