/// Differential testing of the bytecode VM against the tree-walking
/// interpreter — the reference semantics. Random classical programs
/// (raw and optimized, i.e. phi-heavy after mem2reg) must return
/// identical values; quantum programs must produce identical recorded
/// output, runtime statistics, and engine statistics; the instruction
/// budget must reject a runaway program at the identical step with the
/// identical diagnostic. Plus compile-cache and batched-executor
/// behaviour.
#include "circuit/generators.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/pass.hpp"
#include "qir/exporter.hpp"
#include "runtime/runtime.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "vm/cache.hpp"
#include "vm/compiler.hpp"
#include "vm/executor.hpp"
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

namespace qirkit {
namespace {

using interp::RtValue;

/// Random classical function generator (same shape as differential_test:
/// four memory slots, data-dependent branches, a bounded loop). After
/// mem2reg the loop and branch joins become phi nodes, exercising the
/// VM's edge-move lowering.
class ProgramGenerator {
public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    const unsigned bodyBlocks = 2 + static_cast<unsigned>(rng_.below(4));
    std::string s = "define i64 @f(i64 %arg0, i64 %arg1) {\nentry:\n";
    for (unsigned slot = 0; slot < kSlots; ++slot) {
      s += "  %s" + std::to_string(slot) + " = alloca i64, align 8\n";
      s += "  store i64 " + pickSeedValue() + ", ptr %s" + std::to_string(slot) +
           ", align 8\n";
    }
    s += "  br label %b0\n";
    for (unsigned block = 0; block < bodyBlocks; ++block) {
      s += emitBodyBlock(block, bodyBlocks);
    }
    s += emitLoop(bodyBlocks);
    s += emitFinal();
    s += "}\n";
    return s;
  }

private:
  static constexpr unsigned kSlots = 4;

  std::string pickSeedValue() {
    switch (rng_.below(3)) {
    case 0: return std::to_string(static_cast<std::int64_t>(rng_.below(100)) - 50);
    case 1: return "%arg0";
    default: return "%arg1";
    }
  }

  std::string slot() { return "%s" + std::to_string(rng_.below(kSlots)); }

  std::string freshValue() { return "%v" + std::to_string(nextValue_++); }

  const char* pickOp() {
    static const char* const ops[] = {"add", "sub", "mul", "and", "or",
                                      "xor", "shl", "ashr", "lshr"};
    return ops[rng_.below(std::size(ops))];
  }

  std::string emitComputation() {
    const std::string a = freshValue();
    const std::string b = freshValue();
    std::string s;
    s += "  " + a + " = load i64, ptr " + slot() + ", align 8\n";
    s += "  " + b + " = load i64, ptr " + slot() + ", align 8\n";
    const std::string op = pickOp();
    const std::string r = freshValue();
    if (op == "shl" || op == "ashr" || op == "lshr") {
      const std::string amount = freshValue();
      s += "  " + amount + " = and i64 " + b + ", 7\n";
      s += "  " + r + " = " + op + " i64 " + a + ", " + amount + "\n";
    } else {
      s += "  " + r + " = " + op + " i64 " + a + ", " + b + "\n";
    }
    s += "  store i64 " + r + ", ptr " + slot() + ", align 8\n";
    return s;
  }

  std::string emitBodyBlock(unsigned index, unsigned bodyBlocks) {
    std::string s = "b" + std::to_string(index) + ":\n";
    const unsigned computations = 1 + static_cast<unsigned>(rng_.below(4));
    for (unsigned i = 0; i < computations; ++i) {
      s += emitComputation();
    }
    const std::string next = "b" + std::to_string(index + 1);
    const std::string later =
        index + 2 < bodyBlocks
            ? "b" + std::to_string(index + 2 + rng_.below(bodyBlocks - index - 2 + 1))
            : next;
    const std::string target =
        later == "b" + std::to_string(bodyBlocks) ? next : later;
    if (rng_.below(3) == 0 || next == target) {
      s += "  br label %" + next + "\n";
    } else {
      const std::string v = freshValue();
      const std::string c = freshValue();
      s += "  " + v + " = load i64, ptr " + slot() + ", align 8\n";
      s += "  " + c + " = icmp " + (rng_.below(2) == 0 ? "slt" : "sge") + " i64 " +
           v + ", " + std::to_string(static_cast<std::int64_t>(rng_.below(20)) - 10) +
           "\n";
      s += "  br i1 " + c + ", label %" + next + ", label %" + target + "\n";
    }
    return s;
  }

  std::string emitLoop(unsigned bodyBlocks) {
    const std::string pre = "b" + std::to_string(bodyBlocks);
    const unsigned trips = 1 + static_cast<unsigned>(rng_.below(8));
    std::string s = pre + ":\n";
    s += "  %lc = alloca i64, align 8\n";
    s += "  store i64 0, ptr %lc, align 8\n";
    s += "  br label %loop.header\n";
    s += "loop.header:\n";
    s += "  %li = load i64, ptr %lc, align 8\n";
    s += "  %lcond = icmp slt i64 %li, " + std::to_string(trips) + "\n";
    s += "  br i1 %lcond, label %loop.body, label %final\n";
    s += "loop.body:\n";
    s += emitComputation();
    s += "  %li2 = load i64, ptr %lc, align 8\n";
    s += "  %lnext = add i64 %li2, 1\n";
    s += "  store i64 %lnext, ptr %lc, align 8\n";
    s += "  br label %loop.header\n";
    return s;
  }

  std::string emitFinal() {
    std::string s = "final:\n";
    std::string acc;
    for (unsigned slotIndex = 0; slotIndex < kSlots; ++slotIndex) {
      const std::string v = freshValue();
      s += "  " + v + " = load i64, ptr %s" + std::to_string(slotIndex) +
           ", align 8\n";
      if (acc.empty()) {
        acc = v;
      } else {
        const std::string sum = freshValue();
        s += "  " + sum + " = xor i64 " + acc + ", " + v + "\n";
        acc = sum;
      }
    }
    s += "  ret i64 " + acc + "\n";
    return s;
  }

  SplitMix64 rng_;
  unsigned nextValue_ = 0;
};

std::int64_t runInterp(const ir::Module& m, std::int64_t a, std::int64_t b) {
  interp::Interpreter interp(m);
  interp.setStepLimit(1 << 22);
  return interp
      .run(*m.getFunction("f"),
           {{RtValue::makeInt(a), RtValue::makeInt(b)}})
      .i;
}

std::int64_t runVm(const ir::Module& m, std::int64_t a, std::int64_t b) {
  vm::Vm machine(vm::compileModule(m));
  machine.setStepLimit(1 << 22);
  return machine.run("f", {{RtValue::makeInt(a), RtValue::makeInt(b)}}).i;
}

// ---------------------------------------------------------------------------
// Classical differential: raw and optimized (phi-heavy) random programs.
// ---------------------------------------------------------------------------

class VmClassicalDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmClassicalDifferential, MatchesInterpreterOnRandomPrograms) {
  const std::uint64_t seed = GetParam();
  const std::string program = ProgramGenerator(seed).generate();

  ir::Context ctxRaw;
  const auto raw = ir::parseModule(ctxRaw, program);
  ir::verifyModuleOrThrow(*raw);

  // The optimized form replaces the memory slots with SSA registers and
  // phi nodes — the interesting case for bytecode edge moves.
  ir::Context ctxOpt;
  auto optimized = ir::parseModule(ctxOpt, program);
  passes::PassManager pm;
  passes::addFullPipeline(pm);
  pm.runToFixpoint(*optimized);

  const std::int64_t inputs[][2] = {{0, 0},    {1, -1},  {42, 7},
                                    {-100, 3}, {1 << 20, -(1 << 19)}};
  for (const auto& [a, b] : inputs) {
    const std::int64_t reference = runInterp(*raw, a, b);
    EXPECT_EQ(runVm(*raw, a, b), reference)
        << "raw, seed " << seed << " inputs (" << a << ", " << b << ")";
    EXPECT_EQ(runVm(*optimized, a, b), reference)
        << "optimized, seed " << seed << " inputs (" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmClassicalDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Quantum differential: identical recorded results, runtime stats, and
// engine stats on exported circuits.
// ---------------------------------------------------------------------------

struct QuantumRun {
  std::vector<std::pair<std::string, bool>> output;
  runtime::RuntimeStats runtimeStats;
  interp::InterpStats engineStats;
};

QuantumRun runQuantumInterp(const ir::Module& m, std::uint64_t seed) {
  interp::Interpreter interp(m);
  runtime::QuantumRuntime rt(seed);
  rt.bind(interp);
  interp.runEntryPoint();
  return {rt.recordedOutput(), rt.stats(), interp.stats()};
}

QuantumRun runQuantumVm(const ir::Module& m, std::uint64_t seed) {
  vm::Vm machine(vm::compileModule(m));
  runtime::QuantumRuntime rt(seed);
  rt.bind(machine);
  machine.runEntryPoint();
  return {rt.recordedOutput(), rt.stats(), machine.stats()};
}

void expectSameQuantumRun(const ir::Module& m, std::uint64_t seed) {
  const QuantumRun a = runQuantumInterp(m, seed);
  const QuantumRun b = runQuantumVm(m, seed);
  EXPECT_EQ(a.output, b.output) << "seed " << seed;
  EXPECT_EQ(a.runtimeStats.gatesApplied, b.runtimeStats.gatesApplied);
  EXPECT_EQ(a.runtimeStats.measurements, b.runtimeStats.measurements);
  EXPECT_EQ(a.runtimeStats.dynamicQubitsAllocated,
            b.runtimeStats.dynamicQubitsAllocated);
  EXPECT_EQ(a.runtimeStats.staticQubitsAllocated,
            b.runtimeStats.staticQubitsAllocated);
  EXPECT_EQ(a.engineStats.instructionsExecuted, b.engineStats.instructionsExecuted);
  EXPECT_EQ(a.engineStats.internalCalls, b.engineStats.internalCalls);
  EXPECT_EQ(a.engineStats.externalCalls, b.engineStats.externalCalls);
  EXPECT_EQ(a.engineStats.blocksEntered, b.engineStats.blocksEntered);
}

TEST(VmQuantumDifferential, ExportedCircuitsMatchInterpreter) {
  ir::Context ctx;
  const auto bell = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const auto ghz = qir::exportCircuit(ctx, circuit::ghz(5, true), {});
  const auto qft = qir::exportCircuit(ctx, circuit::qft(4, true), {});
  qir::ExportOptions dynamicOptions;
  dynamicOptions.addressing = qir::Addressing::Dynamic;
  const auto dynamicGhz =
      qir::exportCircuit(ctx, circuit::ghz(4, true), dynamicOptions);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    expectSameQuantumRun(*bell, seed);
    expectSameQuantumRun(*ghz, seed);
    expectSameQuantumRun(*qft, seed);
    expectSameQuantumRun(*dynamicGhz, seed);
  }
}

TEST(VmQuantumDifferential, RandomCircuitsMatchInterpreter) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ir::Context ctx;
    const auto m = qir::exportCircuit(
        ctx, circuit::randomCircuit(4, 6, seed, true), {});
    expectSameQuantumRun(*m, seed);
    expectSameQuantumRun(*m, seed + 100);
  }
}

// ---------------------------------------------------------------------------
// Step budget parity: both engines reject a runaway program at the same
// step with the same diagnostic.
// ---------------------------------------------------------------------------

TEST(VmStepBudget, RejectsAtSameStepWithSameMessage) {
  const std::string program = ProgramGenerator(7).generate();
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, program);
  const std::array<RtValue, 2> argStorage{RtValue::makeInt(13),
                                          RtValue::makeInt(-5)};
  const std::span<const RtValue> args{argStorage};

  interp::Interpreter probe(*m);
  probe.run(*m->getFunction("f"), args);
  const std::uint64_t steps = probe.stats().instructionsExecuted;
  ASSERT_GT(steps, 10U);

  for (const std::uint64_t limit : {steps, steps - 1, steps / 2}) {
    interp::Interpreter interp(*m);
    interp.setStepLimit(limit);
    vm::Vm machine(vm::compileModule(*m));
    machine.setStepLimit(limit);

    std::string interpError;
    std::string vmError;
    try {
      interp.run(*m->getFunction("f"), args);
    } catch (const interp::TrapError& e) {
      interpError = e.what();
    }
    try {
      machine.run("f", args);
    } catch (const interp::TrapError& e) {
      vmError = e.what();
    }
    EXPECT_EQ(interpError, vmError) << "limit " << limit;
    if (limit < steps) {
      EXPECT_EQ(vmError,
                "step limit exceeded (" + std::to_string(limit) + ")");
      // The engines agree on *when* the trap fires, not just that it does.
      EXPECT_EQ(interp.stats().instructionsExecuted,
                machine.stats().instructionsExecuted);
    } else {
      EXPECT_TRUE(vmError.empty());
    }
  }
}

TEST(VmStepBudget, ArithmeticTrapMessagesMatch) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %q = sdiv i64 %a, %b
  ret i64 %q
}
)");
  const std::array<RtValue, 2> argStorage{RtValue::makeInt(4),
                                          RtValue::makeInt(0)};
  const std::span<const RtValue> args{argStorage};
  std::string interpError;
  std::string vmError;
  try {
    interp::Interpreter interp(*m);
    interp.run(*m->getFunction("f"), args);
  } catch (const interp::TrapError& e) {
    interpError = e.what();
  }
  try {
    vm::Vm machine(vm::compileModule(*m));
    machine.run("f", args);
  } catch (const interp::TrapError& e) {
    vmError = e.what();
  }
  EXPECT_FALSE(interpError.empty());
  EXPECT_EQ(interpError, vmError);
}

// ---------------------------------------------------------------------------
// Compile cache.
// ---------------------------------------------------------------------------

TEST(VmCompileCache, SecondLookupHitsAndSharesTheModule) {
  vm::CompileCache cache;
  const std::string program = ProgramGenerator(3).generate();
  ir::Context ctxA;
  const auto first = cache.getOrCompile(*ir::parseModule(ctxA, program));
  // A different Context parsing the same text is the cross-invocation
  // case: content addressing must hit.
  ir::Context ctxB;
  const auto second = cache.getOrCompile(*ir::parseModule(ctxB, program));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().hits, 1U);
  EXPECT_EQ(cache.stats().misses, 1U);
  EXPECT_EQ(cache.size(), 1U);

  const std::string other = ProgramGenerator(4).generate();
  ir::Context ctxC;
  const auto third = cache.getOrCompile(*ir::parseModule(ctxC, other));
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(cache.stats().misses, 2U);
}

// ---------------------------------------------------------------------------
// Batched shot executor.
// ---------------------------------------------------------------------------

TEST(VmShotExecutor, VmAndInterpreterHistogramsAreIdentical) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  vm::ShotOptions options;
  options.shots = 64;
  options.seed = 9;
  options.engine = vm::Engine::Interp;
  const vm::ShotBatchResult interpBatch = vm::runShots(*m, options);
  options.engine = vm::Engine::Vm;
  const vm::ShotBatchResult vmBatch = vm::runShots(*m, options);

  EXPECT_EQ(interpBatch.histogram, vmBatch.histogram);
  std::uint64_t total = 0;
  for (const auto& [bits, count] : vmBatch.histogram) {
    EXPECT_EQ(bits.size(), 4U);
    EXPECT_TRUE(bits == "0000" || bits == "1111") << bits;
    total += count;
  }
  EXPECT_EQ(total, 64U);
  EXPECT_EQ(interpBatch.lastShotStats.gatesApplied,
            vmBatch.lastShotStats.gatesApplied);
  EXPECT_EQ(interpBatch.lastShotStats.measurements,
            vmBatch.lastShotStats.measurements);
  EXPECT_EQ(interpBatch.lastShotEngineStats.instructionsExecuted,
            vmBatch.lastShotEngineStats.instructionsExecuted);
}

TEST(VmShotExecutor, ParallelAndSequentialHistogramsAreIdentical) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  vm::ShotOptions options;
  options.shots = 100;
  options.seed = 21;
  const vm::ShotBatchResult sequential = vm::runShots(*m, options);
  options.pool = &ThreadPool::global();
  const vm::ShotBatchResult parallel = vm::runShots(*m, options);
  EXPECT_EQ(sequential.histogram, parallel.histogram);
}

TEST(VmShotExecutor, CacheEliminatesRecompilationAcrossBatches) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions options;
  options.shots = 4;
  options.seed = 77;
  const vm::ShotBatchResult first = vm::runShots(*m, options);
  const vm::ShotBatchResult second = vm::runShots(*m, options);
  // First batch may hit if an earlier test compiled the same program;
  // the second batch must hit.
  EXPECT_EQ(first.cacheHits + first.cacheMisses, 1U);
  EXPECT_EQ(second.cacheHits, 1U);
  EXPECT_EQ(second.cacheMisses, 0U);
  EXPECT_EQ(first.histogram, second.histogram);
}

// ---------------------------------------------------------------------------
// Bytecode introspection.
// ---------------------------------------------------------------------------

TEST(VmBytecode, DisassemblyListsCompiledFunctions) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  const auto compiled = vm::compileModule(*m);
  EXPECT_GE(compiled->entryIndex, 0);
  EXPECT_GT(compiled->instructionCount(), 0U);
  EXPECT_FALSE(compiled->externNames.empty());
  const std::string listing = compiled->disassemble();
  EXPECT_NE(listing.find("call.ext"), std::string::npos);
  EXPECT_NE(listing.find("[step]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dispatch differential: the token-threaded loop with superinstructions
// must be bit-compatible with the reference switch loop — same values,
// same histograms, same step accounting, same traps, same fault-drill
// and deadline behaviour. When the build lacks the threaded loop these
// tests still pass (Threaded modules fall back to the switch loop), so
// the QIRKIT_THREADED_DISPATCH=OFF CI leg runs the identical suite.
// ---------------------------------------------------------------------------

/// The two engine configurations under comparison. Reference = switch
/// loop on plain opcodes; fast = threaded loop on superinstruction-mined
/// code (the executor's Threaded pairing).
vm::CompileOptions referenceConfig() {
  return {.fuseGates = true,
          .dispatch = vm::DispatchMode::Switch,
          .superinstructions = false};
}

vm::CompileOptions threadedConfig() {
  return {.fuseGates = true,
          .dispatch = vm::DispatchMode::Threaded,
          .superinstructions = true};
}

TEST(VmDispatchDifferential, ClassicalProgramsBitCompatible) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string program = ProgramGenerator(seed).generate();
    ir::Context ctx;
    const auto m = ir::parseModule(ctx, program);
    const std::int64_t inputs[][2] = {{0, 0}, {42, 7}, {-100, 3}};
    for (const auto& [a, b] : inputs) {
      vm::Vm reference(vm::compileModule(*m, referenceConfig()));
      reference.setStepLimit(1 << 22);
      vm::Vm threaded(vm::compileModule(*m, threadedConfig()));
      threaded.setStepLimit(1 << 22);
      const std::array<RtValue, 2> argStorage{RtValue::makeInt(a),
                                              RtValue::makeInt(b)};
      const std::span<const RtValue> args{argStorage};
      EXPECT_EQ(reference.run("f", args).i, threaded.run("f", args).i)
          << "seed " << seed << " inputs (" << a << ", " << b << ")";
      EXPECT_EQ(reference.stats().instructionsExecuted,
                threaded.stats().instructionsExecuted);
      EXPECT_EQ(reference.stats().blocksEntered, threaded.stats().blocksEntered);
      EXPECT_EQ(reference.stats().internalCalls, threaded.stats().internalCalls);
    }
  }
}

QuantumRun runQuantumVmWith(const ir::Module& m, std::uint64_t seed,
                            const vm::CompileOptions& options) {
  vm::Vm machine(vm::compileModule(m, options));
  runtime::QuantumRuntime rt(seed);
  rt.bind(machine);
  machine.runEntryPoint();
  return {rt.recordedOutput(), rt.stats(), machine.stats()};
}

TEST(VmDispatchDifferential, QuantumProgramsBitCompatible) {
  ir::Context ctx;
  const auto ghz = qir::exportCircuit(ctx, circuit::ghz(5, true), {});
  const auto qft = qir::exportCircuit(ctx, circuit::qft(4, true), {});
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const ir::Module* m : {ghz.get(), qft.get()}) {
      const QuantumRun a = runQuantumVmWith(*m, seed, referenceConfig());
      const QuantumRun b = runQuantumVmWith(*m, seed, threadedConfig());
      EXPECT_EQ(a.output, b.output) << "seed " << seed;
      EXPECT_EQ(a.runtimeStats.gatesApplied, b.runtimeStats.gatesApplied);
      EXPECT_EQ(a.runtimeStats.measurements, b.runtimeStats.measurements);
      EXPECT_EQ(a.engineStats.instructionsExecuted,
                b.engineStats.instructionsExecuted);
      EXPECT_EQ(a.engineStats.externalCalls, b.engineStats.externalCalls);
      EXPECT_EQ(a.engineStats.blocksEntered, b.engineStats.blocksEntered);
    }
  }
}

TEST(VmDispatchDifferential, StepBudgetParityIncludingProbeStrides) {
  const std::string program = ProgramGenerator(11).generate();
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, program);
  const std::array<RtValue, 2> argStorage{RtValue::makeInt(13),
                                          RtValue::makeInt(-5)};
  const std::span<const RtValue> args{argStorage};

  vm::Vm probe(vm::compileModule(*m, referenceConfig()));
  probe.setStepLimit(1 << 22);
  probe.run("f", args);
  const std::uint64_t steps = probe.stats().instructionsExecuted;
  ASSERT_GT(steps, 10U);

  // Limits straddling superinstruction pairs and the credit-refresh
  // boundaries: the trap must fire on the identical instruction with the
  // identical message, and the stats must agree on how many retired.
  for (const std::uint64_t limit :
       {steps, steps - 1, steps - 2, steps / 2, steps / 2 + 1, std::uint64_t{1}}) {
    vm::Vm reference(vm::compileModule(*m, referenceConfig()));
    reference.setStepLimit(limit);
    vm::Vm threaded(vm::compileModule(*m, threadedConfig()));
    threaded.setStepLimit(limit);
    std::string referenceError;
    std::string threadedError;
    try {
      reference.run("f", args);
    } catch (const interp::TrapError& e) {
      referenceError = e.what();
    }
    try {
      threaded.run("f", args);
    } catch (const interp::TrapError& e) {
      threadedError = e.what();
    }
    EXPECT_EQ(referenceError, threadedError) << "limit " << limit;
    EXPECT_EQ(reference.stats().instructionsExecuted,
              threaded.stats().instructionsExecuted)
        << "limit " << limit;
    if (limit < steps) {
      EXPECT_EQ(threadedError,
                "step limit exceeded (" + std::to_string(limit) + ")");
    }
  }
}

TEST(VmDispatchDifferential, CancelledRunsTrapOnBothLoops) {
  // An already-expired deadline must stop both loops at a cancellation
  // checkpoint. The threaded loop hoists the probe to stride boundaries;
  // expiry is still observed (just never later than a stride's worth of
  // steps after the switch loop would have seen it).
  // Checkpoints are strided (every kCancelStrideSteps steps), so the
  // program must spin long enough inside ONE call to cross a stride.
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
define i64 @f(i64 %n) {
entry:
  br label %head
head:
  %i = phi i64 [ 0, %entry ], [ %next, %head ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %head, label %exit
exit:
  ret i64 %next
}
)");
  const std::array<RtValue, 1> argStorage{RtValue::makeInt(1 << 20)};
  const std::span<const RtValue> args{argStorage};
  for (const vm::CompileOptions& config : {referenceConfig(), threadedConfig()}) {
    vm::Vm machine(vm::compileModule(*m, config));
    machine.setStepLimit(1ULL << 40);
    CancelToken token;
    token.cancel();
    machine.setCancelToken(&token);
    bool cancelled = false;
    try {
      machine.run("f", args);
    } catch (const Error& e) {
      cancelled = e.code() == ErrorCode::Deadline;
    }
    EXPECT_TRUE(cancelled) << "dispatch "
                           << vm::dispatchModeName(config.dispatch);
    // Strided polling means the trap lands within one stride of the start.
    EXPECT_LE(machine.stats().instructionsExecuted, 8U * 1024U);
  }
}

TEST(VmDispatchDifferential, FaultDrillsAgreeAcrossDispatchModes) {
  // With injection armed, Threaded modules take the switch loop (its
  // preamble carries the per-step probes), so a drill must fire on the
  // same probe and classify the same way regardless of --dispatch.
  const std::string program = ProgramGenerator(9).generate();
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, program);
  const std::array<RtValue, 2> argStorage{RtValue::makeInt(3),
                                          RtValue::makeInt(8)};
  const std::span<const RtValue> args{argStorage};
  std::array<std::string, 2> errors;
  std::array<std::uint64_t, 2> probes{};
  std::size_t slot = 0;
  for (const vm::CompileOptions& config : {referenceConfig(), threadedConfig()}) {
    fault::Plan plan;
    plan.site = fault::Site::VmDispatch;
    plan.at = 40;
    const fault::ScopedPlan scoped(plan);
    vm::Vm machine(vm::compileModule(*m, config));
    machine.setStepLimit(1 << 22);
    try {
      machine.run("f", args);
    } catch (const Error& e) {
      errors[slot] = e.what();
    }
    probes[slot] = fault::FaultInjector::instance().probeCount(
        fault::Site::VmDispatch);
    ++slot;
  }
  EXPECT_FALSE(errors[0].empty());
  EXPECT_EQ(errors[0], errors[1]);
  EXPECT_EQ(probes[0], probes[1]);
}

TEST(VmDispatchDifferential, ExecutorHistogramsIdenticalAcrossDispatch) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  vm::ShotOptions options;
  options.shots = 64;
  options.seed = 33;
  options.dispatch = vm::DispatchMode::Switch;
  const vm::ShotBatchResult reference = vm::runShots(*m, options);
  options.dispatch = vm::DispatchMode::Threaded;
  const vm::ShotBatchResult threaded = vm::runShots(*m, options);
  EXPECT_EQ(reference.histogram, threaded.histogram);
  EXPECT_EQ(reference.lastShotEngineStats.instructionsExecuted,
            threaded.lastShotEngineStats.instructionsExecuted);
}

TEST(VmDispatchDifferential, DeadlineYieldsPartialResultsOnBothModes) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  for (const vm::DispatchMode mode :
       {vm::DispatchMode::Switch, vm::DispatchMode::Threaded}) {
    CancelToken token;
    token.cancel(); // expired before the batch starts
    vm::ShotOptions options;
    options.shots = 50;
    options.seed = 3;
    options.dispatch = mode;
    options.cancel = &token;
    const vm::ShotBatchResult result = vm::runShots(*m, options);
    EXPECT_TRUE(result.deadlineExceeded)
        << "dispatch " << vm::dispatchModeName(mode);
    EXPECT_LT(result.completedShots, 50U);
  }
}

TEST(VmCompileCache, DispatchFlipNeverReusesAStaleModule) {
  vm::CompileCache cache;
  const std::string program = ProgramGenerator(6).generate();
  ir::Context ctx;
  const auto parsed = ir::parseModule(ctx, program);
  const auto reference = cache.getOrCompile(*parsed, referenceConfig());
  const auto threaded = cache.getOrCompile(*parsed, threadedConfig());
  // Different dispatch/superinstruction options must occupy distinct
  // entries — the compiled code shapes differ.
  EXPECT_NE(reference.get(), threaded.get());
  EXPECT_EQ(reference->dispatch, vm::DispatchMode::Switch);
  EXPECT_EQ(threaded->dispatch, vm::DispatchMode::Threaded);
  EXPECT_EQ(cache.stats().misses, 2U);
  // Repeating each lookup hits its own entry.
  EXPECT_EQ(cache.getOrCompile(*parsed, referenceConfig()).get(),
            reference.get());
  EXPECT_EQ(cache.getOrCompile(*parsed, threadedConfig()).get(),
            threaded.get());
  EXPECT_EQ(cache.stats().hits, 2U);
}

TEST(VmDispatch, BuildDefaultIsTheBestAvailableLoop) {
  const vm::DispatchMode mode = vm::defaultDispatchMode();
  if (vm::threadedDispatchAvailable()) {
    EXPECT_EQ(mode, vm::DispatchMode::Threaded);
  } else {
    EXPECT_EQ(mode, vm::DispatchMode::Switch);
  }
  EXPECT_STREQ(vm::dispatchModeName(vm::DispatchMode::Switch), "switch");
  EXPECT_STREQ(vm::dispatchModeName(vm::DispatchMode::Threaded), "threaded");
}

} // namespace
} // namespace qirkit
