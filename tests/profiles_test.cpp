#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "qir/exporter.hpp"
#include "qir/profiles.hpp"

#include <gtest/gtest.h>

namespace qirkit::qir {
namespace {

Profile detect(const char* text) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, text);
  return detectProfile(*m);
}

TEST(Profiles, Names) {
  EXPECT_STREQ(profileName(Profile::Base), "base_profile");
  EXPECT_STREQ(profileName(Profile::Adaptive), "adaptive_profile");
  EXPECT_STREQ(profileName(Profile::Full), "full");
}

TEST(Profiles, Ex6StaticProgramIsBaseProfile) {
  EXPECT_EQ(detect(R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
define void @main() #0 {
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)"),
            Profile::Base);
}

TEST(Profiles, DynamicAllocationIsNotBaseOrAdaptive) {
  // The base and adaptive profiles forbid dynamic qubit management.
  EXPECT_EQ(detect(R"(
declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
attributes #0 = { "entry_point" }
)"),
            Profile::Full);
}

TEST(Profiles, MeasurementFeedbackIsAdaptive) {
  EXPECT_EQ(detect(R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)"),
            Profile::Adaptive);
}

TEST(Profiles, GateAfterMeasurementViolatesBase) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
define void @main() #0 {
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)");
  const ProfileReport report = validateProfile(*m, Profile::Base);
  EXPECT_FALSE(report.conforms);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("after measurement"), std::string::npos);
}

TEST(Profiles, NonConstantGateArgumentViolatesBase) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main(ptr %q) #0 {
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
attributes #0 = { "entry_point" }
)");
  const ProfileReport report = validateProfile(*m, Profile::Base);
  EXPECT_FALSE(report.conforms);
}

TEST(Profiles, MemoryOpsViolateAdaptive) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
define void @main() #0 {
  %s = alloca i64, align 8
  store i64 1, ptr %s, align 8
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_FALSE(validateProfile(*m, Profile::Adaptive).conforms);
  EXPECT_TRUE(validateProfile(*m, Profile::Full).conforms);
}

TEST(Profiles, IntegerComputationAllowedInAdaptiveNotBase) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  %a = call i1 @__quantum__qis__read_result__body(ptr null)
  %b = call i1 @__quantum__qis__read_result__body(ptr inttoptr (i64 1 to ptr))
  %both = and i1 %a, %b
  br i1 %both, label %x, label %y
x:
  ret void
y:
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_FALSE(validateProfile(*m, Profile::Base).conforms);
  EXPECT_TRUE(validateProfile(*m, Profile::Adaptive).conforms);
}

TEST(Profiles, ExporterOutputMatchesDetectedProfile) {
  ir::Context ctx;
  // Base: no feedback.
  const auto base = exportCircuit(ctx, circuit::ghz(3, true), {});
  EXPECT_EQ(detectProfile(*base), Profile::Base);
  // Adaptive: repetition-code conditionals.
  const auto adaptive =
      exportCircuit(ctx, circuit::repetitionCodeCycle(0.5, 0), {});
  EXPECT_EQ(detectProfile(*adaptive), Profile::Adaptive);
  // Dynamic addressing: full QIR.
  ExportOptions dyn;
  dyn.addressing = Addressing::Dynamic;
  const auto full = exportCircuit(ctx, circuit::ghz(3, true), dyn);
  EXPECT_EQ(detectProfile(*full), Profile::Full);
}

TEST(Profiles, MissingEntryPointIsReported) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, "declare void @f()\n");
  const ProfileReport report = validateProfile(*m, Profile::Base);
  EXPECT_FALSE(report.conforms);
  EXPECT_NE(report.violations[0].find("entry"), std::string::npos);
}

} // namespace
} // namespace qirkit::qir
