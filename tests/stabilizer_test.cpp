#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "sim/stabilizer.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

namespace qirkit::sim {
namespace {

TEST(Stabilizer, GroundStateMeasuresZeroDeterministically) {
  StabilizerSimulator sv(4);
  SplitMix64 rng(1);
  for (unsigned q = 0; q < 4; ++q) {
    EXPECT_TRUE(sv.isDeterministic(q));
    EXPECT_FALSE(sv.measure(q, rng));
  }
}

TEST(Stabilizer, XFlipsDeterministically) {
  StabilizerSimulator sv(2);
  SplitMix64 rng(1);
  sv.x(0);
  EXPECT_TRUE(sv.isDeterministic(0));
  EXPECT_TRUE(sv.measure(0, rng));
  EXPECT_FALSE(sv.measure(1, rng));
}

TEST(Stabilizer, HadamardGivesRandomOutcomeThenCollapses) {
  SplitMix64 rng(7);
  unsigned ones = 0;
  for (int trial = 0; trial < 400; ++trial) {
    StabilizerSimulator sv(1);
    sv.h(0);
    EXPECT_FALSE(sv.isDeterministic(0));
    const bool first = sv.measure(0, rng);
    ones += first ? 1 : 0;
    // After collapse the outcome repeats deterministically.
    EXPECT_TRUE(sv.isDeterministic(0));
    EXPECT_EQ(sv.measure(0, rng), first);
  }
  EXPECT_NEAR(ones / 400.0, 0.5, 0.08);
}

TEST(Stabilizer, HTwiceIsIdentity) {
  StabilizerSimulator sv(1);
  SplitMix64 rng(1);
  sv.h(0);
  sv.h(0);
  EXPECT_TRUE(sv.isDeterministic(0));
  EXPECT_FALSE(sv.measure(0, rng));
}

TEST(Stabilizer, SFourTimesIsIdentity) {
  StabilizerSimulator sv(1);
  SplitMix64 rng(1);
  sv.h(0); // superposition so phases matter
  sv.s(0);
  sv.s(0);
  sv.s(0);
  sv.s(0);
  sv.h(0); // back to |0> iff phases cancelled
  EXPECT_TRUE(sv.isDeterministic(0));
  EXPECT_FALSE(sv.measure(0, rng));
}

TEST(Stabilizer, SdgUndoesS) {
  StabilizerSimulator sv(1);
  SplitMix64 rng(1);
  sv.h(0);
  sv.s(0);
  sv.sdg(0);
  sv.h(0);
  EXPECT_FALSE(sv.measure(0, rng));
}

TEST(Stabilizer, HSHS_PhaseIdentity) {
  // HZH = X: prepare |1> via X = H Z H.
  StabilizerSimulator sv(1);
  SplitMix64 rng(1);
  sv.h(0);
  sv.z(0);
  sv.h(0);
  EXPECT_TRUE(sv.measure(0, rng));
}

TEST(Stabilizer, BellPairCorrelations) {
  SplitMix64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    StabilizerSimulator sv(2);
    sv.h(0);
    sv.cx(0, 1);
    const bool a = sv.measure(0, rng);
    const bool b = sv.measure(1, rng);
    EXPECT_EQ(a, b);
  }
}

TEST(Stabilizer, SampleShotsBellCorrelationsWithoutCollapsingSource) {
  StabilizerSimulator sv(2);
  sv.h(0);
  sv.cx(0, 1);
  SplitMix64 rng(3);
  const std::vector<unsigned> qubits = {0, 1};
  const auto outcomes = sv.sampleShots(qubits, 2000, rng);
  ASSERT_EQ(outcomes.size(), 2000U);
  std::uint64_t ones = 0;
  for (const std::uint64_t bits : outcomes) {
    EXPECT_TRUE(bits == 0b00 || bits == 0b11) << bits; // perfectly correlated
    ones += bits == 0b11 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ones) / 2000, 0.5, 0.05);
  // The source tableau is untouched: qubit 0 is still nondeterministic.
  EXPECT_FALSE(sv.isDeterministic(0));
  // And reproducible: same seed, same outcome stream.
  SplitMix64 rng2(3);
  EXPECT_EQ(outcomes, sv.sampleShots(qubits, 2000, rng2));
}

TEST(Stabilizer, CZIsSymmetricPhaseGate) {
  // CZ between |+>|1> flips the first qubit's phase: H CZ(q1=|1>) H = Z-effect.
  StabilizerSimulator sv(2);
  SplitMix64 rng(1);
  sv.x(1);
  sv.h(0);
  sv.cz(0, 1);
  sv.h(0);
  EXPECT_TRUE(sv.isDeterministic(0));
  EXPECT_TRUE(sv.measure(0, rng)); // equals |1>: HZH|0> = X|0>
}

TEST(Stabilizer, SwapMovesState) {
  StabilizerSimulator sv(3);
  SplitMix64 rng(1);
  sv.x(0);
  sv.swap(0, 2);
  EXPECT_FALSE(sv.measure(0, rng));
  EXPECT_TRUE(sv.measure(2, rng));
}

TEST(Stabilizer, ResetForcesGround) {
  SplitMix64 rng(5);
  StabilizerSimulator sv(1);
  sv.h(0);
  sv.reset(0, rng);
  EXPECT_TRUE(sv.isDeterministic(0));
  EXPECT_FALSE(sv.measure(0, rng));
}

TEST(Stabilizer, HundredQubitGHZ) {
  // Far beyond the statevector simulator's 30-qubit cap.
  SplitMix64 rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    StabilizerSimulator sv(100);
    sv.h(0);
    for (unsigned q = 0; q + 1 < 100; ++q) {
      sv.cx(q, q + 1);
    }
    const bool first = sv.measure(0, rng);
    for (unsigned q = 1; q < 100; ++q) {
      EXPECT_EQ(sv.measure(q, rng), first) << "qubit " << q;
    }
  }
}

// --- cross-validation against the dense simulator ---------------------------

circuit::Circuit randomClifford(unsigned n, unsigned depth, std::uint64_t seed) {
  SplitMix64 rng(seed);
  circuit::Circuit c(n, n);
  for (unsigned layer = 0; layer < depth; ++layer) {
    for (unsigned q = 0; q < n; ++q) {
      switch (rng.below(5)) {
      case 0: c.h(q); break;
      case 1: c.s(q); break;
      case 2: c.x(q); break;
      case 3: c.z(q); break;
      default: c.sdg(q); break;
      }
    }
    for (unsigned pair = 0; pair + 1 < n; pair += 2) {
      if (rng.below(2) != 0) {
        c.cx(pair, pair + 1);
      } else {
        c.cz(pair, pair + 1);
      }
    }
  }
  c.measureAll();
  return c;
}

class CliffordCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CliffordCrossValidation, MarginalsMatchStatevector) {
  const std::uint64_t seed = GetParam();
  const circuit::Circuit c = randomClifford(4, 3, seed);
  ASSERT_TRUE(circuit::isCliffordCircuit(c));

  constexpr unsigned kShots = 600;
  std::vector<unsigned> denseOnes(4, 0);
  std::vector<unsigned> tableauOnes(4, 0);
  for (unsigned shot = 0; shot < kShots; ++shot) {
    const auto dense = circuit::execute(c, seed * 1000 + shot).bits;
    const auto tableau = circuit::executeClifford(c, seed * 2000 + shot);
    for (unsigned bit = 0; bit < 4; ++bit) {
      denseOnes[bit] += dense[bit] ? 1 : 0;
      tableauOnes[bit] += tableau[bit] ? 1 : 0;
    }
  }
  for (unsigned bit = 0; bit < 4; ++bit) {
    EXPECT_NEAR(denseOnes[bit] / double(kShots), tableauOnes[bit] / double(kShots),
                0.09)
        << "seed " << seed << " bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliffordCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(CliffordExecutor, RejectsNonClifford) {
  circuit::Circuit c(1, 0);
  c.t(0);
  EXPECT_FALSE(circuit::isCliffordCircuit(c));
  EXPECT_THROW((void)circuit::executeClifford(c), qirkit::SemanticError);
}

TEST(CliffordExecutor, HonorsConditions) {
  circuit::Circuit c(1, 2);
  c.x(0);
  c.measure(0, 0);
  c.add({circuit::OpKind::X, {0}, {}, 0, circuit::Condition{0, 1, 1}});
  c.measure(0, 1);
  const auto bits = circuit::executeClifford(c, 1);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[1]);
}

} // namespace
} // namespace qirkit::sim
