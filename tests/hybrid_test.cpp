#include "hybrid/hybrid.hpp"
#include "ir/parser.hpp"

#include <gtest/gtest.h>

namespace qirkit::hybrid {
namespace {

std::unique_ptr<ir::Module> parse(ir::Context& ctx, const char* text) {
  return ir::parseModule(ctx, text);
}

/// A feedback program: measure, compute on the result, conditionally gate.
const char* kFeedbackProgram = R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r0 = call i1 @__quantum__qis__read_result__body(ptr null)
  %r1 = call i1 @__quantum__qis__read_result__body(ptr inttoptr (i64 1 to ptr))
  %both = and i1 %r0, %r1
  br i1 %both, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)";

/// Result post-processing with no downstream quantum ops: host work.
const char* kHostProcessingProgram = R"(
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define i64 @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  %z = zext i1 %r to i64
  %stat = mul i64 %z, 1000
  br i1 %r, label %a, label %b
a:
  ret i64 %stat
b:
  ret i64 0
}
attributes #0 = { "entry_point" }
)";

TEST(Partition, ClassifiesQuantumFeedbackAndHost) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  const PartitionReport report = partitionHybrid(*m);
  EXPECT_EQ(report.count(Placement::Quantum), 2U); // mz + conditioned x
  // read_result x2, and, br are on the feedback path.
  EXPECT_GE(report.count(Placement::ClassicalFeedback), 4U);
  EXPECT_GT(report.count(Placement::ClassicalHost), 0U); // rets, br label
}

TEST(Partition, PureQuantumProgramHasNoFeedback) {
  ir::Context ctx;
  const auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)");
  const PartitionReport report = partitionHybrid(*m);
  EXPECT_EQ(report.count(Placement::Quantum), 1U);
  EXPECT_EQ(report.count(Placement::ClassicalFeedback), 0U);
}

TEST(Feasibility, FastFeedbackFitsTheBudget) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  const FeasibilityReport report =
      checkFeasibility(*m, LatencyModel::superconductingFPGA(), /*budget=*/1000.0);
  EXPECT_TRUE(report.feasible);
  ASSERT_EQ(report.paths.size(), 1U);
  // 2x read_result (20ns) + and (4ns) + branch (10ns) = 54ns.
  EXPECT_NEAR(report.paths[0].classicalLatencyNs, 54.0, 1e-9);
  EXPECT_EQ(report.worstPathNs, report.paths[0].classicalLatencyNs);
}

TEST(Feasibility, TightBudgetRejects) {
  // §IV.B: "there will always be programs that describe an infeasible
  // execution and must be rejected."
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  const FeasibilityReport report =
      checkFeasibility(*m, LatencyModel::superconductingFPGA(), /*budget=*/50.0);
  EXPECT_FALSE(report.feasible);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_NE(report.reasons[0].find("coherence budget"), std::string::npos);
}

TEST(Feasibility, HostProcessingHasNoDeadline) {
  // The branch depends on results but gates nothing quantum: no feedback
  // path, trivially feasible even with budget 0.
  ir::Context ctx;
  const auto m = parse(ctx, kHostProcessingProgram);
  const FeasibilityReport report =
      checkFeasibility(*m, LatencyModel::superconductingFPGA(), 0.0);
  EXPECT_TRUE(report.feasible);
  EXPECT_TRUE(report.paths.empty());
}

TEST(Feasibility, FloatingPointOnFPGAIsUnsupported) {
  // §IV.B: special-purpose co-processors "are incapable of executing
  // arbitrary classical code."
  ir::Context ctx;
  const auto m = parse(ctx, R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  %z = uitofp i1 %r to double
  %big = fcmp ogt double %z, 0.5
  br i1 %big, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)");
  const FeasibilityReport fpga =
      checkFeasibility(*m, LatencyModel::superconductingFPGA(), 1e9);
  EXPECT_FALSE(fpga.feasible);
  ASSERT_FALSE(fpga.reasons.empty());
  EXPECT_NE(fpga.reasons[0].find("cannot execute"), std::string::npos);

  // The relaxed ion-trap CPU model supports it.
  const FeasibilityReport cpu =
      checkFeasibility(*m, LatencyModel::ionTrapCPU(), 1e9);
  EXPECT_TRUE(cpu.feasible);
}

TEST(Feasibility, LatencyScalesWithClassicalWork) {
  // Chain of N adds between read_result and the branch.
  const auto makeProgram = [](int n) {
    std::string s = R"(
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  %v0 = zext i1 %r to i64
)";
    for (int i = 1; i <= n; ++i) {
      s += "  %v" + std::to_string(i) + " = add i64 %v" + std::to_string(i - 1) +
           ", 1\n";
    }
    s += "  %c = icmp sgt i64 %v" + std::to_string(n) + R"(, 3
  br i1 %c, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)";
    return s;
  };
  ir::Context ctx;
  const auto small = ir::parseModule(ctx, makeProgram(2));
  const auto large = ir::parseModule(ctx, makeProgram(50));
  const LatencyModel model = LatencyModel::superconductingFPGA();
  const double smallNs = checkFeasibility(*small, model, 1e9).worstPathNs;
  const double largeNs = checkFeasibility(*large, model, 1e9).worstPathNs;
  EXPECT_GT(largeNs, smallNs);
  EXPECT_NEAR(largeNs - smallNs, 48 * model.intOpNs, 1e-9);
}

TEST(LatencyModelTest, InstructionCosts) {
  ir::Context ctx;
  const auto m = parse(ctx, R"(
define i64 @f(i64 %a, i64 %b) {
  %add = add i64 %a, %b
  %mul = mul i64 %a, %b
  %div = sdiv i64 %a, 2
  ret i64 %div
}
)");
  const LatencyModel model = LatencyModel::superconductingFPGA();
  const auto& insts = m->getFunction("f")->entry()->instructions();
  EXPECT_EQ(model.instructionCost(*insts[0]), model.intOpNs);
  EXPECT_EQ(model.instructionCost(*insts[1]), model.mulNs);
  EXPECT_EQ(model.instructionCost(*insts[2]), model.divNs);
  EXPECT_EQ(model.instructionCost(*insts[3]), 0.0);
}

TEST(PlacementNames, AreHumanReadable) {
  EXPECT_STREQ(placementName(Placement::Quantum), "quantum");
  EXPECT_STREQ(placementName(Placement::ClassicalFeedback), "classical-feedback");
  EXPECT_STREQ(placementName(Placement::ClassicalHost), "classical-host");
}

} // namespace
} // namespace qirkit::hybrid
