#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "circuit/reuse.hpp"

#include <gtest/gtest.h>

namespace qirkit::circuit {
namespace {

TEST(Reuse, SequentialSingleQubitExperimentsShareOneQubit) {
  // Three independent prepare-measure experiments, one after another.
  Circuit c(3, 3);
  for (unsigned q = 0; q < 3; ++q) {
    c.h(q);
    c.measure(q, q);
  }
  const ReuseResult result = reuseQubits(c);
  EXPECT_EQ(result.qubitsBefore, 3U);
  EXPECT_EQ(result.qubitsAfter, 1U);
  EXPECT_EQ(result.resetsInserted, 2U);
  EXPECT_EQ(result.circuit.countKind(OpKind::Measure), 3U);
}

TEST(Reuse, OverlappingLiveRangesKeepDistinctQubits) {
  const Circuit c = ghz(4, true); // all ranges overlap via the CX ladder
  const ReuseResult result = reuseQubits(c);
  EXPECT_EQ(result.qubitsAfter, 4U);
  EXPECT_EQ(result.resetsInserted, 0U);
  EXPECT_EQ(result.circuit, c);
}

TEST(Reuse, PartialOverlapReusesWherePossible) {
  // q0,q1 entangled and measured; then q2 used alone -> q2 can reuse.
  Circuit c(3, 3);
  c.h(0);
  c.cx(0, 1);
  c.measure(0, 0);
  c.measure(1, 1);
  c.h(2);
  c.measure(2, 2);
  const ReuseResult result = reuseQubits(c);
  EXPECT_EQ(result.qubitsAfter, 2U);
  EXPECT_EQ(result.resetsInserted, 1U);
}

TEST(Reuse, AssignmentIsConsistent) {
  Circuit c(2, 2);
  c.x(0);
  c.measure(0, 0);
  c.x(1);
  c.measure(1, 1);
  const ReuseResult result = reuseQubits(c);
  EXPECT_EQ(result.qubitsAfter, 1U);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  // Both measurements must still observe |1>.
  const ExecutionResult run = execute(result.circuit, 1);
  EXPECT_TRUE(run.bits[0]);
  EXPECT_TRUE(run.bits[1]);
}

TEST(Reuse, MeasurementStatisticsArePreserved) {
  // Distribution equivalence on a circuit with reuse opportunity:
  // Bell pair measured, then an independent H-measure experiment.
  Circuit c(3, 3);
  c.h(0);
  c.cx(0, 1);
  c.measure(0, 0);
  c.measure(1, 1);
  c.h(2);
  c.measure(2, 2);
  const ReuseResult result = reuseQubits(c);
  ASSERT_LT(result.qubitsAfter, 3U);

  const auto before = sampleCounts(c, 4000, 11);
  const auto after = sampleCounts(result.circuit, 4000, 12);
  // Bell bits correlated, third bit ~uniform in both.
  for (const auto& [bits, count] : before) {
    EXPECT_EQ(bits[2], bits[1]); // bit0 == bit1 (string is reversed)
  }
  for (const auto& [bits, count] : after) {
    EXPECT_EQ(bits[2], bits[1]);
  }
  const auto freq = [](const std::map<std::string, std::uint64_t>& counts,
                       std::size_t stringIndex) {
    std::uint64_t ones = 0;
    std::uint64_t total = 0;
    for (const auto& [bits, count] : counts) {
      total += count;
      if (bits[stringIndex] == '1') {
        ones += count;
      }
    }
    return static_cast<double>(ones) / static_cast<double>(total);
  };
  EXPECT_NEAR(freq(before, 0), freq(after, 0), 0.05); // bit 2 is leftmost? no:
  // bitsToString puts bit numBits-1 leftmost; index 0 is bit 2 (the H qubit).
}

TEST(Reuse, ConditionedOperationsSurvive) {
  const Circuit c = repetitionCodeCycle(1.0, 0);
  const ReuseResult result = reuseQubits(c);
  EXPECT_EQ(result.circuit.countKind(OpKind::Measure), c.countKind(OpKind::Measure));
  EXPECT_TRUE(result.circuit.hasConditions());
  // Syndrome ancillas die after their measurement but the conditioned
  // corrections keep the data qubits alive; ancillas free too late to be
  // reused by anything (no later first-uses), so count stays 5.
  EXPECT_EQ(result.qubitsAfter, 5U);
}

TEST(Reuse, EmptyAndTrivialCircuits) {
  const Circuit empty(0, 0);
  EXPECT_EQ(reuseQubits(empty).qubitsAfter, 0U);
  Circuit untouched(4, 0); // qubits declared but never used
  untouched.h(1);
  const ReuseResult result = reuseQubits(untouched);
  EXPECT_EQ(result.qubitsAfter, 1U);
}

} // namespace
} // namespace qirkit::circuit
