/// Execution-mode test suite: the terminal-measurement shot analysis
/// (vm/shot_analysis.hpp) and the sampling fast path it gates in the
/// batched executor. Covers the classification verdicts, determinism of
/// each mode per (mode, seed) across engines and thread pools,
/// statistical sample-vs-resim agreement, the auto-mode routing
/// decision, the usage error for forcing sample on a feedback program,
/// and graceful degradation to per-shot resim when sampling faults.
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "qir/exporter.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "vm/executor.hpp"
#include "vm/shot_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

namespace qirkit {
namespace {

std::unique_ptr<ir::Module> parse(ir::Context& ctx, const std::string& text) {
  return ir::parseModule(ctx, text);
}

/// Measure-then-feedback: a branch condition depends on a measurement.
constexpr const char* kFeedbackProgram = R"(
@lbl.r1 = internal constant [3 x i8] c"r1\00"
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %flip, label %done
flip:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  br label %done
done:
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  call void @__quantum__rt__result_record_output(ptr inttoptr (i64 1 to ptr), ptr @lbl.r1)
  ret void
}
attributes #0 = { "entry_point" }
)";

std::uint64_t histogramTotal(const std::map<std::string, std::uint64_t>& h) {
  std::uint64_t total = 0;
  for (const auto& [bits, count] : h) {
    total += count;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Static classification.
// ---------------------------------------------------------------------------

TEST(ShotAnalysis, BellAndGhzAreTerminal) {
  ir::Context ctx;
  const auto bell = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  EXPECT_EQ(vm::analyzeShotProfile(*bell).profile, vm::ShotProfile::Terminal);
  const auto ghz = qir::exportCircuit(ctx, circuit::ghz(5, true), {});
  EXPECT_EQ(vm::analyzeShotProfile(*ghz).profile, vm::ShotProfile::Terminal);
}

TEST(ShotAnalysis, BranchOnMeasurementIsFeedbackDependent) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  const vm::ShotAnalysis a = vm::analyzeShotProfile(*m);
  EXPECT_EQ(a.profile, vm::ShotProfile::FeedbackDependent);
  EXPECT_NE(a.reason.find("branch"), std::string::npos) << a.reason;
}

TEST(ShotAnalysis, GateOnMeasuredQubitIsFeedbackDependent) {
  ir::Context ctx;
  const auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)");
  const vm::ShotAnalysis a = vm::analyzeShotProfile(*m);
  EXPECT_EQ(a.profile, vm::ShotProfile::FeedbackDependent);
  EXPECT_NE(a.reason.find("after"), std::string::npos) << a.reason;
}

TEST(ShotAnalysis, GateOnOtherQubitAfterMeasurementIsTerminal) {
  // Deferring q0's measurement past an X on q1 commutes: per-qubit
  // ordering, not a global measurement barrier.
  ir::Context ctx;
  const auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_EQ(vm::analyzeShotProfile(*m).profile, vm::ShotProfile::Terminal);
}

TEST(ShotAnalysis, ResetOfFreshQubitIsTerminalButAfterGateIsNot) {
  ir::Context ctx;
  const auto fresh = parse(ctx, R"(
declare void @__quantum__qis__reset__body(ptr)
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__reset__body(ptr null)
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_EQ(vm::analyzeShotProfile(*fresh).profile, vm::ShotProfile::Terminal);

  const auto dirty = parse(ctx, R"(
declare void @__quantum__qis__reset__body(ptr)
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__reset__body(ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)");
  const vm::ShotAnalysis a = vm::analyzeShotProfile(*dirty);
  EXPECT_EQ(a.profile, vm::ShotProfile::FeedbackDependent);
  EXPECT_NE(a.reason.find("reset"), std::string::npos) << a.reason;
}

TEST(ShotAnalysis, UnknownExternalIsFeedbackDependent) {
  // An opaque external could observe or perturb anything; stay safe.
  ir::Context ctx;
  const auto m = parse(ctx, R"(
declare void @mystery_callback()
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @mystery_callback()
  ret void
}
attributes #0 = { "entry_point" }
)");
  EXPECT_EQ(vm::analyzeShotProfile(*m).profile,
            vm::ShotProfile::FeedbackDependent);
}

// ---------------------------------------------------------------------------
// Executor routing and output equivalence.
// ---------------------------------------------------------------------------

TEST(ExecMode, AutoSamplesTerminalPrograms) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions opts;
  opts.shots = 500;
  opts.seed = 5;
  const vm::ShotBatchResult result = vm::runShots(*m, opts);
  EXPECT_TRUE(result.sampled);
  EXPECT_FALSE(result.sampleFallback);
  EXPECT_EQ(result.completedShots, 500U);
  EXPECT_EQ(result.failedShots, 0U);
  EXPECT_EQ(histogramTotal(result.histogram), 500U);
  for (const auto& [bits, count] : result.histogram) {
    EXPECT_TRUE(bits == "00" || bits == "11") << bits; // Bell correlations
  }
  // The representative stats survive the sampling path.
  EXPECT_EQ(result.lastShotStats.gatesApplied, 2U);
  EXPECT_EQ(result.lastShotStats.measurements, 2U);
}

TEST(ExecMode, AutoKeepsFeedbackProgramsOnResim) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  vm::ShotOptions opts;
  opts.shots = 100;
  opts.seed = 5;
  const vm::ShotBatchResult result = vm::runShots(*m, opts);
  EXPECT_FALSE(result.sampled);
  EXPECT_FALSE(result.sampleFallback);
  EXPECT_EQ(result.completedShots, 100U);
  EXPECT_EQ(histogramTotal(result.histogram), 100U);
}

TEST(ExecMode, ForcingSampleOnFeedbackProgramIsUsageError) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  vm::ShotOptions opts;
  opts.shots = 10;
  opts.execMode = vm::ExecMode::Sample;
  try {
    (void)vm::runShots(*m, opts);
    FAIL() << "expected a usage error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Usage);
    EXPECT_NE(std::string(e.what()).find("measurement-terminal"),
              std::string::npos);
  }
}

TEST(ExecMode, ForcedResimNeverSamples) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions opts;
  opts.shots = 50;
  opts.execMode = vm::ExecMode::Resim;
  const vm::ShotBatchResult result = vm::runShots(*m, opts);
  EXPECT_FALSE(result.sampled);
  EXPECT_EQ(result.completedShots, 50U);
}

// ---------------------------------------------------------------------------
// The f32 state (ShotOptions::precision).
// ---------------------------------------------------------------------------

TEST(Precision, F32SamplingMatchesF64OnTerminalProgram) {
  // Same seed -> identical uniform draws walking two CDFs that differ
  // only by f32 rounding (~1e-7), so the histograms agree up to draws
  // that land within rounding distance of an outcome boundary.
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  vm::ShotOptions opts;
  opts.shots = 2000;
  opts.seed = 11;
  const vm::ShotBatchResult f64 = vm::runShots(*m, opts);
  opts.precision = sim::Precision::F32;
  const vm::ShotBatchResult f32 = vm::runShots(*m, opts);
  ASSERT_TRUE(f64.sampled);
  ASSERT_TRUE(f32.sampled);
  EXPECT_EQ(histogramTotal(f32.histogram), 2000U);
  for (const auto& [bits, count] : f32.histogram) {
    EXPECT_TRUE(bits == "0000" || bits == "1111") << bits;
  }
  for (const char* bits : {"0000", "1111"}) {
    const auto a = f64.histogram.find(bits);
    const auto b = f32.histogram.find(bits);
    const double ca = a == f64.histogram.end() ? 0.0 : double(a->second);
    const double cb = b == f32.histogram.end() ? 0.0 : double(b->second);
    EXPECT_NEAR(ca, cb, 5.0) << bits;
  }
}

TEST(Precision, F32FusionResimMatchesF64) {
  // The fused VM kernels under per-shot resim at reduced width: the same
  // seeded measurement draws land on probabilities that differ from f64
  // only by rounding, so per-outcome counts track within a few shots.
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  vm::ShotOptions opts;
  opts.shots = 300;
  opts.seed = 17;
  opts.execMode = vm::ExecMode::Resim;
  const vm::ShotBatchResult f64 = vm::runShots(*m, opts);
  opts.precision = sim::Precision::F32;
  const vm::ShotBatchResult f32 = vm::runShots(*m, opts);
  ASSERT_FALSE(f64.sampled);
  ASSERT_FALSE(f32.sampled);
  EXPECT_EQ(histogramTotal(f32.histogram), 300U);
  for (const char* bits : {"000", "111"}) {
    const auto a = f64.histogram.find(bits);
    const auto b = f32.histogram.find(bits);
    const double ca = a == f64.histogram.end() ? 0.0 : double(a->second);
    const double cb = b == f32.histogram.end() ? 0.0 : double(b->second);
    EXPECT_NEAR(ca, cb, 3.0) << bits;
  }
}

TEST(Precision, F32OnFeedbackProgramIsUsageError) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  vm::ShotOptions opts;
  opts.shots = 10;
  opts.precision = sim::Precision::F32;
  try {
    (void)vm::runShots(*m, opts);
    FAIL() << "expected a usage error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Usage);
    EXPECT_NE(std::string(e.what()).find("--force-f32"), std::string::npos)
        << e.what();
  }
}

TEST(Precision, ForceF32AdmitsFeedbackPrograms) {
  ir::Context ctx;
  const auto m = parse(ctx, kFeedbackProgram);
  vm::ShotOptions opts;
  opts.shots = 50;
  opts.seed = 9;
  opts.precision = sim::Precision::F32;
  opts.forceF32 = true;
  const vm::ShotBatchResult result = vm::runShots(*m, opts);
  EXPECT_FALSE(result.sampled);
  EXPECT_EQ(result.completedShots, 50U);
  EXPECT_EQ(histogramTotal(result.histogram), 50U);
}

TEST(ExecMode, SampledHistogramIsDeterministicAcrossEnginesAndPools) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(4, true), {});
  const auto runWith = [&](vm::Engine engine, ThreadPool* pool) {
    vm::ShotOptions opts;
    opts.shots = 1000;
    opts.seed = 21;
    opts.engine = engine;
    opts.pool = pool;
    const vm::ShotBatchResult result = vm::runShots(*m, opts);
    EXPECT_TRUE(result.sampled);
    return result.histogram;
  };
  const auto reference = runWith(vm::Engine::Vm, nullptr);
  EXPECT_EQ(histogramTotal(reference), 1000U);
  EXPECT_EQ(reference, runWith(vm::Engine::Vm, nullptr)); // repeatable
  EXPECT_EQ(reference, runWith(vm::Engine::Interp, nullptr));
  ThreadPool pool(4);
  EXPECT_EQ(reference, runWith(vm::Engine::Vm, &pool));
  EXPECT_EQ(reference, runWith(vm::Engine::Interp, &pool));
}

TEST(ExecMode, SampleAgreesWithResimStatistically) {
  // Both modes draw from the identical Born distribution; on a GHZ state
  // each mode splits shots between the two legal outcomes. A 5-sigma
  // band on n=4000, p=1/2 keeps this deterministic-seed test robust.
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::ghz(3, true), {});
  vm::ShotOptions opts;
  opts.shots = 4000;
  opts.seed = 33;

  opts.execMode = vm::ExecMode::Sample;
  const vm::ShotBatchResult sampled = vm::runShots(*m, opts);
  opts.execMode = vm::ExecMode::Resim;
  const vm::ShotBatchResult resim = vm::runShots(*m, opts);

  ASSERT_TRUE(sampled.sampled);
  ASSERT_FALSE(resim.sampled);
  for (const auto* result : {&sampled, &resim}) {
    EXPECT_EQ(histogramTotal(result->histogram), 4000U);
    for (const auto& [bits, count] : result->histogram) {
      EXPECT_TRUE(bits == "000" || bits == "111") << bits;
    }
  }
  const double sigma = std::sqrt(4000.0 * 0.5 * 0.5);
  const auto countOf = [](const vm::ShotBatchResult& r, const char* bits) {
    const auto it = r.histogram.find(bits);
    return it == r.histogram.end() ? 0.0 : static_cast<double>(it->second);
  };
  EXPECT_NEAR(countOf(sampled, "000"), countOf(resim, "000"), 5 * sigma);
  EXPECT_NEAR(countOf(sampled, "111"), countOf(resim, "111"), 5 * sigma);
}

TEST(ExecMode, SamplingFaultDegradesToResimAndCompletesEveryShot) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});

  fault::Plan plan;
  plan.site = fault::Site::RuntimeCall;
  plan.at = 1; // fires inside the single sampling simulation
  const fault::ScopedPlan scoped(plan);

  vm::ShotOptions opts;
  opts.shots = 40;
  opts.seed = 9;
  const vm::ShotBatchResult result = vm::runShots(*m, opts);
  EXPECT_FALSE(result.sampled);
  EXPECT_TRUE(result.sampleFallback);
  EXPECT_NE(result.sampleFallbackReason.find("injected-fault"),
            std::string::npos)
      << result.sampleFallbackReason;
  EXPECT_EQ(result.completedShots, 40U);
  EXPECT_EQ(result.failedShots, 0U);
  EXPECT_EQ(histogramTotal(result.histogram), 40U);
}

TEST(ExecMode, ResimIsDeterministicPerSeed) {
  ir::Context ctx;
  const auto m = qir::exportCircuit(ctx, circuit::bellPair(true), {});
  vm::ShotOptions opts;
  opts.shots = 200;
  opts.seed = 17;
  opts.execMode = vm::ExecMode::Resim;
  const auto a = vm::runShots(*m, opts);
  const auto b = vm::runShots(*m, opts);
  EXPECT_EQ(a.histogram, b.histogram);
  opts.seed = 18;
  // A different seed legitimately reshuffles outcomes (not asserted
  // unequal — Bell has only two outcomes — but the run must succeed).
  EXPECT_EQ(histogramTotal(vm::runShots(*m, opts).histogram), 200U);
}

} // namespace
} // namespace qirkit
