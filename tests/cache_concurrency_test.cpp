/// Multi-threaded hammer tests for the compile cache's single-flight
/// concurrency contract: N concurrent requests for one key cost exactly
/// one compilation (the rest join the in-flight future or hit the
/// resident entry), LRU eviction stays consistent under contention while
/// handed-out modules remain valid, and a failed compile propagates its
/// exception to every joiner without leaving a poisoned entry behind.
/// These tests are part of the ASan/UBSan CI matrix — they exist to fail
/// loudly under the sanitizers if the locking discipline regresses.
#include "ir/context.hpp"
#include "ir/module.hpp"
#include "ir/parser.hpp"
#include "support/error.hpp"
#include "vm/cache.hpp"
#include "vm/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace qirkit {
namespace {

/// A family of distinct-by-content classical modules: the returned
/// constant makes each program its own cache key.
std::string programText(unsigned variant) {
  return "define i64 @main() {\n"
         "entry:\n"
         "  %a = add i64 " +
         std::to_string(variant) +
         ", 1\n"
         "  %b = mul i64 %a, 3\n"
         "  ret i64 %b\n"
         "}\n";
}

/// This module parses and verifies but cannot be lowered to bytecode
/// (the compiler rejects allocas past 4 GiB), so getOrCompile throws.
constexpr const char* kUncompilableText =
    "define i64 @main() {\n"
    "entry:\n"
    "  %p = alloca [1000000000 x i64]\n"
    "  ret i64 0\n"
    "}\n";

/// Spawn \p threads workers, release them simultaneously, join them all.
void runConcurrently(unsigned threads, const std::function<void()>& body) {
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      body();
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
}

TEST(CacheConcurrencyTest, SingleKeyCompilesExactlyOnce) {
  constexpr unsigned kThreads = 16;
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, programText(0));

  vm::CompileCache cache;
  std::mutex resultsMutex;
  std::vector<std::shared_ptr<const vm::BytecodeModule>> results;
  runConcurrently(kThreads, [&] {
    auto compiled = cache.getOrCompile(*module);
    const std::lock_guard lock(resultsMutex);
    results.push_back(std::move(compiled));
  });

  // One miss does the work; every other request either joined the
  // in-flight compile (coalesced) or arrived after insertion (hit).
  const vm::CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_EQ(stats.hits + stats.coalesced, kThreads - 1U);
  ASSERT_EQ(results.size(), kThreads);
  for (const auto& compiled : results) {
    ASSERT_NE(compiled, nullptr);
    EXPECT_EQ(compiled, results.front()) << "joiners must share one module";
  }
  EXPECT_EQ(cache.size(), 1U);
}

TEST(CacheConcurrencyTest, DistinctKeysNeverCoalesceIntoEachOther) {
  constexpr unsigned kPrograms = 8;
  constexpr unsigned kThreadsPerProgram = 4;
  ir::Context ctx;
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (unsigned p = 0; p < kPrograms; ++p) {
    modules.push_back(ir::parseModule(ctx, programText(p)));
  }

  vm::CompileCache cache;
  std::atomic<unsigned> next{0};
  runConcurrently(kPrograms * kThreadsPerProgram, [&] {
    const unsigned slot = next.fetch_add(1) % kPrograms;
    ASSERT_NE(cache.getOrCompile(*modules[slot]), nullptr);
  });

  const vm::CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, kPrograms);
  EXPECT_EQ(stats.hits + stats.coalesced,
            kPrograms * (kThreadsPerProgram - 1U));
  EXPECT_EQ(cache.size(), kPrograms);
}

TEST(CacheConcurrencyTest, EvictionUnderContentionKeepsHandedOutModules) {
  constexpr unsigned kPrograms = 12;
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIterations = 200;
  constexpr std::size_t kCapacity = 4;
  ir::Context ctx;
  std::vector<std::unique_ptr<ir::Module>> modules;
  for (unsigned p = 0; p < kPrograms; ++p) {
    modules.push_back(ir::parseModule(ctx, programText(100 + p)));
  }

  vm::CompileCache cache;
  cache.setCapacity(kCapacity);
  std::atomic<unsigned> ticket{0};
  runConcurrently(kThreads, [&] {
    // Deterministic per-thread stride so every thread cycles through all
    // programs from a different phase, maximizing eviction churn.
    const unsigned phase = ticket.fetch_add(1);
    std::vector<std::shared_ptr<const vm::BytecodeModule>> held;
    for (unsigned i = 0; i < kIterations; ++i) {
      const unsigned slot = (phase * 5 + i * 7) % kPrograms;
      auto compiled = cache.getOrCompile(*modules[slot]);
      ASSERT_NE(compiled, nullptr);
      // Evicted-but-held modules must stay readable: dereference a field.
      held.push_back(std::move(compiled));
      ASSERT_FALSE(held.back()->functions.empty());
      if (held.size() > 8) {
        held.erase(held.begin());
      }
    }
  });

  const vm::CompileCache::Stats stats = cache.stats();
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_GE(stats.misses, kPrograms); // every program missed at least once
  EXPECT_GT(stats.evictions, 0U);
  EXPECT_EQ(stats.hits + stats.coalesced + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(CacheConcurrencyTest, FailedCompileThrowsEverywhereAndLeavesNoEntry) {
  constexpr unsigned kThreads = 8;
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, kUncompilableText);

  vm::CompileCache cache;
  std::atomic<unsigned> threw{0};
  runConcurrently(kThreads, [&] {
    try {
      (void)cache.getOrCompile(*module);
    } catch (const qirkit::Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::CompileFail);
      threw.fetch_add(1);
    }
  });

  // Owner and every joiner observe the failure...
  EXPECT_EQ(threw.load(), kThreads);
  // ...and nothing poisoned stays resident: the next request retries the
  // compile from scratch instead of replaying a cached exception forever.
  EXPECT_EQ(cache.size(), 0U);
  const std::uint64_t missesBefore = cache.stats().misses;
  EXPECT_THROW((void)cache.getOrCompile(*module), qirkit::Error);
  EXPECT_GT(cache.stats().misses + 1, missesBefore); // still counting work
}

TEST(CacheConcurrencyTest, SharedCacheInjectedIntoConcurrentBatches) {
  // The service-shaped usage: many batches, one injected cache, one shared
  // pool. Every batch after the first must reuse the single compilation.
  constexpr unsigned kBatches = 6;
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, programText(7));

  vm::CompileCache cache;
  ThreadPool pool(4);
  runConcurrently(kBatches, [&] {
    vm::ShotOptions options;
    options.shots = 20;
    options.seed = 11;
    options.pool = &pool;
    options.cache = &cache;
    const vm::ShotBatchResult result = vm::runShots(*module, options);
    EXPECT_EQ(result.completedShots, 20U);
  });

  const vm::CompileCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1U);
  EXPECT_GE(stats.hits + stats.coalesced, kBatches - 1U);
}

} // namespace
} // namespace qirkit
