/// Tests for the gate-fusion engine: GateMatrix4 composition helpers and
/// the fused statevector kernels (apply2 / applyDiagonal / the subspace
/// applySwap), the compile-time fusion pass (rules, barriers, window
/// limits), VM dispatch parity (stats, step budget, recording replay),
/// cache keying by compile options, and the fused-vs-unfused differential
/// on random circuits (identical histograms, fidelity >= 1 - 1e-10).
#include "circuit/generators.hpp"
#include "interp/interpreter.hpp"
#include "ir/parser.hpp"
#include "qir/exporter.hpp"
#include "runtime/runtime.hpp"
#include "support/rng.hpp"
#include "vm/cache.hpp"
#include "vm/compiler.hpp"
#include "vm/executor.hpp"
#include "vm/fusion.hpp"
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <string>

namespace qirkit {
namespace {

using interp::RtValue;
using sim::Complex;
using sim::GateMatrix2;
using sim::GateMatrix4;
using sim::StateVector;

// ---------------------------------------------------------------------------
// Matrix composition helpers and fused kernels
// ---------------------------------------------------------------------------

/// A 3-qubit state with population in every basis state.
StateVector scrambledState() {
  StateVector sv(3);
  sv.apply1(sim::gateH(), 0);
  sv.apply1(sim::gateRY(0.3), 1);
  sv.apply1(sim::gateRX(1.1), 2);
  sv.applyControlled1(sim::gateX(), 0, 1);
  sv.apply1(sim::gateT(), 2);
  sv.applyControlled1(sim::gateX(), 1, 2);
  return sv;
}

void expectSameState(const StateVector& a, const StateVector& b, double tol) {
  ASSERT_EQ(a.numQubits(), b.numQubits());
  for (std::uint64_t i = 0; i < a.dimension(); ++i) {
    EXPECT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, tol)
        << "basis state " << i;
  }
}

TEST(FusionMatrix, Embed2MatchesApply1) {
  for (const unsigned slot : {0U, 1U}) {
    StateVector direct = scrambledState();
    StateVector fused = scrambledState();
    const unsigned q0 = 0;
    const unsigned q1 = 2;
    direct.apply1(sim::gateRY(0.7), slot == 0 ? q0 : q1);
    fused.apply2(sim::embed2(sim::gateRY(0.7), slot), q0, q1);
    expectSameState(direct, fused, 1e-12);
  }
}

TEST(FusionMatrix, Controlled4MatchesApplyControlled1) {
  for (const bool flip : {false, true}) {
    StateVector direct = scrambledState();
    StateVector fused = scrambledState();
    const unsigned control = flip ? 2 : 1;
    const unsigned target = flip ? 1 : 2;
    direct.applyControlled1(sim::gateX(), control, target);
    // Window (q0=1, q1=2): slot of qubit 1 is 0, slot of qubit 2 is 1.
    fused.apply2(sim::controlled4(sim::gateX(), flip ? 1 : 0, flip ? 0 : 1), 1, 2);
    expectSameState(direct, fused, 1e-12);
  }
}

TEST(FusionMatrix, Swap4MatchesApplySwap) {
  StateVector direct = scrambledState();
  StateVector fused = scrambledState();
  direct.applySwap(0, 2);
  fused.apply2(sim::swap4(), 0, 2);
  expectSameState(direct, fused, 1e-12);
}

TEST(FusionMatrix, MatmulComposesRightToLeft) {
  // matmul(a, b) applies b first — the composition order the pass uses.
  const GateMatrix4 a = sim::controlled4(sim::gateX(), 0, 1);
  const GateMatrix4 b = sim::embed2(sim::gateH(), 0);
  StateVector sequential = scrambledState();
  sequential.apply2(b, 0, 1);
  sequential.apply2(a, 0, 1);
  StateVector composed = scrambledState();
  composed.apply2(sim::matmul(a, b), 0, 1);
  expectSameState(sequential, composed, 1e-12);
}

TEST(FusionMatrix, DistanceUpToPhaseSeesThroughGlobalPhase) {
  const GateMatrix4 a = sim::embed2(sim::gateT(), 1);
  GateMatrix4 b = a;
  const Complex phase = std::polar(1.0, 1.234);
  for (auto& row : b.m) {
    for (auto& entry : row) {
      entry *= phase;
    }
  }
  EXPECT_LT(sim::distanceUpToPhase(a, b), 1e-12);
  EXPECT_GT(sim::distanceUpToPhase(a, sim::swap4()), 0.1);
}

TEST(FusionKernel, ApplyDiagonalMatchesGateSequence) {
  StateVector direct = scrambledState();
  direct.apply1(sim::gateZ(), 0);
  direct.apply1(sim::gateS(), 1);
  direct.apply1(sim::gateRZ(0.4), 2);
  direct.applyControlled1(sim::gateZ(), 0, 2);

  // Compose the same run into one phase table: bit j of the index is
  // qubits[j].
  const unsigned qubits[] = {0, 1, 2};
  std::vector<Complex> diag(8, 1.0);
  const auto fold1 = [&diag](const GateMatrix2& g, unsigned bit) {
    for (std::size_t i = 0; i < diag.size(); ++i) {
      diag[i] *= ((i >> bit) & 1) != 0 ? g.m11 : g.m00;
    }
  };
  fold1(sim::gateZ(), 0);
  fold1(sim::gateS(), 1);
  fold1(sim::gateRZ(0.4), 2);
  for (std::size_t i = 0; i < diag.size(); ++i) {
    if ((i & 1) != 0 && ((i >> 2) & 1) != 0) {
      diag[i] = -diag[i]; // CZ(0, 2)
    }
  }
  StateVector fused = scrambledState();
  fused.applyDiagonal(diag, qubits);
  expectSameState(direct, fused, 1e-12);
}

TEST(FusionKernel, SampleCountsMatchesSampleShots) {
  const StateVector sv = scrambledState();
  SplitMix64 rngA(42);
  SplitMix64 rngB(42);
  EXPECT_EQ(sv.sampleCounts(500, rngA), sv.sampleShots(500, rngB));
}

// ---------------------------------------------------------------------------
// The fusion pass: rules and barriers, observed through the disassembly
// ---------------------------------------------------------------------------

std::size_t countSubstr(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::shared_ptr<const vm::BytecodeModule> compileText(const std::string& text,
                                                      bool fusion = true) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  return vm::compileModule(*module, vm::CompileOptions{.fuseGates = fusion});
}

const std::string kGateDecls = R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__z__body(ptr)
declare void @__quantum__qis__s__body(ptr)
declare void @__quantum__qis__t__body(ptr)
declare void @__quantum__qis__rx__body(double, ptr)
declare void @__quantum__qis__rz__body(double, ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__cz__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare void @__quantum__qis__reset__body(ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
)";

std::string entryPoint(const std::string& body) {
  return kGateDecls + "define void @main() #0 {\nentry:\n" + body +
         "  ret void\n}\nattributes #0 = { \"entry_point\" }\n";
}

TEST(FusionPass, SingleQubitChainFusesToOneBlock) {
  const auto compiled = compileText(entryPoint(R"(
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__rx__body(double 0.5, ptr null)
  call void @__quantum__qis__h__body(ptr null)
)"));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused1"), 1U) << listing;
  EXPECT_EQ(countSubstr(listing, "call.ext"), 0U) << listing;
  ASSERT_EQ(compiled->functions.size(), 1U);
  ASSERT_EQ(compiled->functions[0].fusedBlocks.size(), 1U);
  const interp::FusedBlock& block = compiled->functions[0].fusedBlocks[0];
  EXPECT_EQ(block.kind, interp::FusedBlock::Kind::Unitary1);
  EXPECT_EQ(block.sourceGates, 3U);
  EXPECT_EQ(block.replay.size(), 3U);
  // H RX(0.5) H == RZ(0.5) up to global phase.
  ASSERT_EQ(block.matrix.size(), 4U);
  const GateMatrix2 got{block.matrix[0], block.matrix[1], block.matrix[2],
                        block.matrix[3]};
  EXPECT_LT(sim::distanceUpToPhase(got, sim::gateRZ(0.5)), 1e-12);
}

TEST(FusionPass, TwoQubitWindowFusesMixedGates) {
  const auto compiled = compileText(entryPoint(R"(
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__h__body(ptr inttoptr (i64 1 to ptr))
)"));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused2"), 1U) << listing;
  EXPECT_EQ(countSubstr(listing, "call.ext"), 0U) << listing;
  const interp::FusedBlock& block = compiled->functions[0].fusedBlocks[0];
  EXPECT_EQ(block.kind, interp::FusedBlock::Kind::Unitary2);
  EXPECT_EQ(block.qubits, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(block.sourceGates, 3U);
}

TEST(FusionPass, DiagonalRunFusesAcrossManyQubits) {
  // Five diagonal gates over three qubits: too wide for a 4x4 window but
  // one diagonal block.
  const auto compiled = compileText(entryPoint(R"(
  call void @__quantum__qis__z__body(ptr null)
  call void @__quantum__qis__s__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__cz__body(ptr null, ptr inttoptr (i64 2 to ptr))
  call void @__quantum__qis__t__body(ptr inttoptr (i64 2 to ptr))
  call void @__quantum__qis__rz__body(double 0.25, ptr null)
)"));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused.diag"), 1U) << listing;
  EXPECT_EQ(countSubstr(listing, "call.ext"), 0U) << listing;
  const interp::FusedBlock& block = compiled->functions[0].fusedBlocks[0];
  EXPECT_EQ(block.kind, interp::FusedBlock::Kind::Diagonal);
  EXPECT_EQ(block.sourceGates, 5U);
  ASSERT_EQ(block.qubits.size(), 3U);
  EXPECT_EQ(block.matrix.size(), 8U);
}

TEST(FusionPass, MeasurementIsABarrier) {
  const auto compiled = compileText(entryPoint(R"(
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr null)
)"));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused1"), 2U) << listing;
  EXPECT_EQ(countSubstr(listing, "@__quantum__qis__mz__body"), 1U) << listing;
}

TEST(FusionPass, ResetIsABarrier) {
  const auto compiled = compileText(entryPoint(R"(
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr null)
  call void @__quantum__qis__reset__body(ptr null)
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr null)
)"));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused1"), 2U) << listing;
}

TEST(FusionPass, WindowOverlapBreaksRuns) {
  // CX ladder: (0,1), (1,2), (2,3). No two adjacent gates share a
  // two-qubit window with the next, and nothing is diagonal, so nothing
  // fuses.
  const auto compiled = compileText(entryPoint(R"(
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__cnot__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 2 to ptr))
  call void @__quantum__qis__cnot__body(ptr inttoptr (i64 2 to ptr), ptr inttoptr (i64 3 to ptr))
)"));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused"), 0U) << listing;
  EXPECT_EQ(countSubstr(listing, "call.ext"), 3U) << listing;
}

TEST(FusionPass, ClassicallyControlledGatesStaySeparate) {
  // The branch terminators (and the read_result call feeding them) are
  // barriers; gates in different blocks never fuse together.
  const auto compiled = compileText(kGateDecls + R"(
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %flip, label %done
flip:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__z__body(ptr inttoptr (i64 1 to ptr))
  br label %done
done:
  ret void
}
attributes #0 = { "entry_point" }
)");
  const std::string listing = compiled->disassemble();
  // Only the X;Z pair inside %flip forms a run (single-qubit chain).
  EXPECT_EQ(countSubstr(listing, "fused1"), 1U) << listing;
  const interp::FusedBlock& block = compiled->functions[0].fusedBlocks[0];
  EXPECT_EQ(block.sourceGates, 2U);
}

TEST(FusionPass, DynamicQubitHandlesPreventFusion) {
  // Dynamic addressing: qubit operands come from qubit_allocate calls,
  // not the constant pool, so the pass must leave everything alone.
  ir::Context ctx;
  qir::ExportOptions options;
  options.addressing = qir::Addressing::Dynamic;
  const auto module = qir::exportCircuit(ctx, circuit::ghz(4, false), options);
  const auto compiled = vm::compileModule(*module);
  EXPECT_EQ(countSubstr(compiled->disassemble(), "fused"), 0U);
}

TEST(FusionPass, GhzLadderFusesOnlyTheFrontWindow) {
  // ghz(4): H q0; CX(0,1); CX(1,2); CX(2,3) — the H+first CX share a
  // window, the ladder tail does not.
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::ghz(4, false), {});
  const auto compiled = vm::compileModule(*module);
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused2"), 1U) << listing;
  EXPECT_EQ(countSubstr(listing, "fused1"), 0U) << listing;
}

TEST(FusionPass, StatsCountFoldedGatesAndBlocks) {
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::qft(5, false), {});
  const auto reference = vm::compileModule(*module, {.fuseGates = false});
  vm::CompiledFunction fn = reference->functions[0];
  const vm::FusionStats stats = vm::fuseGates(fn, reference->externNames);
  EXPECT_GT(stats.blocks, 0U);
  EXPECT_GT(stats.fusedOps, stats.blocks);
  EXPECT_EQ(stats.sweepsSaved(), stats.fusedOps - stats.blocks);
  std::uint64_t folded = 0;
  for (const interp::FusedBlock& block : fn.fusedBlocks) {
    folded += block.sourceGates;
  }
  EXPECT_EQ(folded, stats.fusedOps);
  // Offset preservation: replacement never changes the code size.
  EXPECT_EQ(fn.code.size(), reference->functions[0].code.size());
}

// ---------------------------------------------------------------------------
// Sweep planning (second fusion stage): adjacent fused blocks collapse to
// one Op::FusedSweep applied chunk-at-a-time.
// ---------------------------------------------------------------------------

/// Diagonal run over q0..q2, then a single-qubit chain on q3: two fused
/// blocks with only Nops between them — exactly one plannable sweep.
const char* const kSweepBody = R"(
  call void @__quantum__qis__z__body(ptr null)
  call void @__quantum__qis__s__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__cz__body(ptr null, ptr inttoptr (i64 2 to ptr))
  call void @__quantum__qis__h__body(ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__rx__body(double 0.5, ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__h__body(ptr inttoptr (i64 3 to ptr))
)";

TEST(SweepPlan, AdjacentFusedBlocksFormOneSweep) {
  const auto compiled = compileText(entryPoint(kSweepBody));
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused.sweep"), 1U) << listing;
  // The member blocks' own instructions became Nops under the sweep.
  EXPECT_EQ(countSubstr(listing, "fused.diag"), 0U) << listing;
  EXPECT_EQ(countSubstr(listing, "fused1"), 0U) << listing;
  ASSERT_EQ(compiled->functions[0].fusedSweeps.size(), 1U);
  const vm::FusedSweepRun& run = compiled->functions[0].fusedSweeps[0];
  EXPECT_EQ(run.firstBlock, 0U);
  EXPECT_EQ(run.blockCount, 2U);
  EXPECT_EQ(run.totalGates, 6U);
  ASSERT_EQ(compiled->functions[0].fusedBlocks.size(), 2U);
}

TEST(SweepPlan, JumpTargetBetweenBlocksIsABarrier) {
  // Control may enter %next directly, so the two runs must stay separate
  // fused instructions — a sweep spanning the label would skip its second
  // member on that entry path.
  const auto compiled = compileText(kGateDecls + R"(
define void @main() #0 {
entry:
  call void @__quantum__qis__z__body(ptr null)
  call void @__quantum__qis__s__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__cz__body(ptr null, ptr inttoptr (i64 2 to ptr))
  br label %next
next:
  call void @__quantum__qis__h__body(ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__rx__body(double 0.5, ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__h__body(ptr inttoptr (i64 3 to ptr))
  ret void
}
attributes #0 = { "entry_point" }
)");
  const std::string listing = compiled->disassemble();
  EXPECT_EQ(countSubstr(listing, "fused.sweep"), 0U) << listing;
  EXPECT_EQ(countSubstr(listing, "fused.diag"), 1U) << listing;
  EXPECT_EQ(countSubstr(listing, "fused1"), 1U) << listing;
}

// ---------------------------------------------------------------------------
// VM dispatch parity: stats, step budget, replay for hosts without kernels
// ---------------------------------------------------------------------------

struct QuantumRun {
  std::vector<std::pair<std::string, bool>> output;
  runtime::RuntimeStats runtimeStats;
  interp::InterpStats engineStats;
};

QuantumRun runVm(const ir::Module& m, std::uint64_t seed, bool fusion) {
  vm::Vm machine(vm::compileModule(m, vm::CompileOptions{.fuseGates = fusion}));
  runtime::QuantumRuntime rt(seed);
  rt.bind(machine);
  machine.runEntryPoint();
  return {rt.recordedOutput(), rt.stats(), machine.stats()};
}

TEST(FusionVm, StatsMatchUnfusedExecution) {
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::qft(4, true), {});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const QuantumRun fused = runVm(*module, seed, true);
    const QuantumRun unfused = runVm(*module, seed, false);
    EXPECT_EQ(fused.output, unfused.output) << "seed " << seed;
    EXPECT_EQ(fused.runtimeStats.gatesApplied, unfused.runtimeStats.gatesApplied);
    EXPECT_EQ(fused.runtimeStats.measurements, unfused.runtimeStats.measurements);
    EXPECT_EQ(fused.runtimeStats.staticQubitsAllocated,
              unfused.runtimeStats.staticQubitsAllocated);
    EXPECT_EQ(fused.engineStats.instructionsExecuted,
              unfused.engineStats.instructionsExecuted);
    EXPECT_EQ(fused.engineStats.externalCalls, unfused.engineStats.externalCalls);
    EXPECT_EQ(fused.engineStats.blocksEntered, unfused.engineStats.blocksEntered);
  }
}

TEST(FusionVm, StepLimitTrapsMidBlockWithIdenticalAccounting) {
  const std::string program = entryPoint(R"(
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr null)
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr null)
)");
  for (const std::uint64_t limit : {1ULL, 2ULL, 3ULL}) {
    auto runWith = [&](bool fusion) {
      ir::Context ctx;
      vm::Vm machine(
          vm::compileModule(*ir::parseModule(ctx, program),
                            vm::CompileOptions{.fuseGates = fusion}));
      runtime::QuantumRuntime rt(1);
      rt.bind(machine);
      machine.setStepLimit(limit);
      std::string message;
      try {
        machine.runEntryPoint();
      } catch (const interp::TrapError& e) {
        message = e.what();
      }
      return std::make_tuple(message, machine.stats().instructionsExecuted,
                             machine.stats().externalCalls);
    };
    EXPECT_EQ(runWith(true), runWith(false)) << "limit " << limit;
  }
}

TEST(FusionVm, RecordingRuntimeSeesEveryGateViaReplay) {
  // The recording runtime has no fused kernels; the VM must replay the
  // folded calls so the reconstructed circuit is identical.
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::qft(4, false), {});
  vm::Vm fusedVm(vm::compileModule(*module));
  EXPECT_FALSE(fusedVm.module().functions[0].fusedBlocks.empty());
  runtime::RecordingRuntime fusedRecorder;
  fusedRecorder.bind(fusedVm);
  fusedVm.runEntryPoint();

  interp::Interpreter interp(*module);
  runtime::RecordingRuntime reference;
  reference.bind(interp);
  interp.runEntryPoint();

  EXPECT_EQ(fusedRecorder.recorded(), reference.recorded());
}

TEST(FusionVm, RebindingARecorderDisablesTheKernelPath) {
  // A QuantumRuntime bound first must not leave a stale fused host behind
  // when a recorder takes over the same VM.
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::ghz(3, false), {});
  vm::Vm machine(vm::compileModule(*module));
  runtime::QuantumRuntime rt(1);
  rt.bind(machine);
  machine.runEntryPoint();
  runtime::RecordingRuntime recorder;
  recorder.bind(machine);
  machine.runEntryPoint();
  EXPECT_EQ(recorder.recorded().ops().size(), circuit::ghz(3, false).ops().size());
}

/// kSweepBody plus a measurement whose outcome steers a branch: if the
/// swept state drifted from the unfused one, seed-matched outcomes (and
/// with them gatesApplied) would diverge.
const char* const kSweepThenMeasureBody = R"(
  call void @__quantum__qis__z__body(ptr null)
  call void @__quantum__qis__s__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__cz__body(ptr null, ptr inttoptr (i64 2 to ptr))
  call void @__quantum__qis__h__body(ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__rx__body(double 0.5, ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__h__body(ptr inttoptr (i64 3 to ptr))
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 3 to ptr), ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %flip, label %done
flip:
  call void @__quantum__qis__x__body(ptr null)
  br label %done
done:
  ret void
}
attributes #0 = { "entry_point" }
)";

std::string sweepThenMeasureProgram() {
  return kGateDecls + "define void @main() #0 {\nentry:\n" + kSweepThenMeasureBody;
}

TEST(SweepVm, SweptExecutionMatchesUnfusedStatsAndOutcomes) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, sweepThenMeasureProgram());
  ASSERT_FALSE(vm::compileModule(*module)->functions[0].fusedSweeps.empty());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const QuantumRun fused = runVm(*module, seed, true);
    const QuantumRun unfused = runVm(*module, seed, false);
    EXPECT_EQ(fused.runtimeStats.gatesApplied, unfused.runtimeStats.gatesApplied)
        << "seed " << seed;
    EXPECT_EQ(fused.runtimeStats.measurements, unfused.runtimeStats.measurements);
    EXPECT_EQ(fused.engineStats.instructionsExecuted,
              unfused.engineStats.instructionsExecuted);
    EXPECT_EQ(fused.engineStats.externalCalls, unfused.engineStats.externalCalls);
    EXPECT_EQ(fused.engineStats.blocksEntered, unfused.engineStats.blocksEntered);
  }
}

TEST(SweepVm, StepLimitTrapsMidSweepWithIdenticalAccounting) {
  // Limits 1..5 land inside the sweep's 6 gates; the VM must fall back to
  // interruptible per-block execution with the same partial credit the
  // unfused program would report.
  const std::string program = entryPoint(kSweepBody);
  for (const std::uint64_t limit : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    auto runWith = [&](bool fusion) {
      ir::Context ctx;
      vm::Vm machine(
          vm::compileModule(*ir::parseModule(ctx, program),
                            vm::CompileOptions{.fuseGates = fusion}));
      runtime::QuantumRuntime rt(1);
      rt.bind(machine);
      machine.setStepLimit(limit);
      std::string message;
      try {
        machine.runEntryPoint();
      } catch (const interp::TrapError& e) {
        message = e.what();
      }
      return std::make_tuple(message, machine.stats().instructionsExecuted,
                             machine.stats().externalCalls);
    };
    EXPECT_EQ(runWith(true), runWith(false)) << "limit " << limit;
  }
}

TEST(SweepVm, RecordingRuntimeSeesEveryGateThroughASweep) {
  // The recorder has no fused host, so the FusedSweep opcode must replay
  // each member block's folded source gates in order.
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, entryPoint(kSweepBody));
  vm::Vm machine(vm::compileModule(*module));
  ASSERT_FALSE(machine.module().functions[0].fusedSweeps.empty());
  runtime::RecordingRuntime recorder;
  recorder.bind(machine);
  machine.runEntryPoint();

  interp::Interpreter interp(*module);
  runtime::RecordingRuntime reference;
  reference.bind(interp);
  interp.runEntryPoint();
  EXPECT_EQ(recorder.recorded(), reference.recorded());
}

// ---------------------------------------------------------------------------
// Compile cache keying
// ---------------------------------------------------------------------------

TEST(FusionCache, FusionOptionIsPartOfTheKey) {
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::qft(4, false), {});
  vm::CompileCache cache;
  const auto fused = cache.getOrCompile(*module);
  const auto unfused = cache.getOrCompile(*module, {.fuseGates = false});
  EXPECT_EQ(cache.stats().misses, 2U);
  EXPECT_EQ(cache.stats().hits, 0U);
  EXPECT_FALSE(fused->functions[0].fusedBlocks.empty());
  EXPECT_TRUE(unfused->functions[0].fusedBlocks.empty());
  // Each configuration hits its own entry afterwards.
  cache.getOrCompile(*module);
  cache.getOrCompile(*module, {.fuseGates = false});
  EXPECT_EQ(cache.stats().hits, 2U);
}

// ---------------------------------------------------------------------------
// Differential: fused vs unfused on random circuits
// ---------------------------------------------------------------------------

TEST(FusionDifferential, RandomCircuitStatesStayFaithful) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ir::Context ctx;
    const auto module = qir::exportCircuit(
        ctx, circuit::randomCircuit(5, 8, seed, false), {});

    vm::Vm fusedVm(vm::compileModule(*module));
    runtime::QuantumRuntime fusedRt(seed);
    fusedRt.bind(fusedVm);
    fusedVm.runEntryPoint();

    vm::Vm plainVm(vm::compileModule(*module, {.fuseGates = false}));
    runtime::QuantumRuntime plainRt(seed);
    plainRt.bind(plainVm);
    plainVm.runEntryPoint();

    EXPECT_GE(fusedRt.state().fidelity(plainRt.state()), 1.0 - 1e-10)
        << "seed " << seed;
  }
}

TEST(FusionDifferential, ResimHistogramsAreIdenticalPerSeed) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ir::Context ctx;
    const auto module = qir::exportCircuit(
        ctx, circuit::randomCircuit(4, 6, seed, true), {});
    vm::ShotOptions opts;
    opts.shots = 50;
    opts.seed = seed * 977;
    opts.execMode = vm::ExecMode::Resim;
    opts.useCompileCache = false;
    opts.interpFallback = false;
    opts.fusion = true;
    const vm::ShotBatchResult fused = vm::runShots(*module, opts);
    opts.fusion = false;
    const vm::ShotBatchResult unfused = vm::runShots(*module, opts);
    EXPECT_EQ(fused.histogram, unfused.histogram) << "seed " << seed;
    EXPECT_EQ(fused.failures.size(), 0U);
  }
}

TEST(FusionDifferential, SamplingPathMatchesToo) {
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::qft(4, true), {});
  vm::ShotOptions opts;
  opts.shots = 200;
  opts.seed = 13;
  opts.execMode = vm::ExecMode::Sample;
  opts.useCompileCache = false;
  opts.interpFallback = false;
  const vm::ShotBatchResult fused = vm::runShots(*module, opts);
  opts.fusion = false;
  const vm::ShotBatchResult unfused = vm::runShots(*module, opts);
  EXPECT_EQ(fused.histogram, unfused.histogram);
}

// ---------------------------------------------------------------------------
// Nop compaction: the padding the fusion stages leave behind must never
// reach the dispatch loop (it used to inflate the vm.dispatch.* per-class
// counters on every shot), and jump targets must survive the remapping.
// ---------------------------------------------------------------------------

TEST(FusionCompaction, RemovesAllNopPaddingAndShrinksTheCode) {
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, circuit::qft(5, true), {});
  const auto reference = vm::compileModule(*module, {.fuseGates = false});
  vm::CompiledFunction fn = reference->functions[0];
  const vm::FusionStats stats = vm::fuseGates(fn, reference->externNames);
  ASSERT_GT(stats.sweepsSaved(), 0U);
  vm::planFusedSweeps(fn);
  std::size_t nops = 0;
  for (const vm::Inst& in : fn.code) {
    nops += in.op == vm::Op::Nop ? 1 : 0;
  }
  ASSERT_GT(nops, 0U);
  const std::size_t before = fn.code.size();
  EXPECT_EQ(vm::compactCode(fn), nops);
  EXPECT_EQ(fn.code.size(), before - nops);
  for (const vm::Inst& in : fn.code) {
    EXPECT_NE(in.op, vm::Op::Nop);
  }
  // Idempotent on clean code.
  EXPECT_EQ(vm::compactCode(fn), 0U);
}

TEST(FusionCompaction, CompiledModulesCarryNoNopsAndBranchesStillWork) {
  // Branch-heavy feedback program with a fusible chain inside one arm:
  // compaction must remap the branch targets across the removed padding.
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__z__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %flip, label %done
flip:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__z__body(ptr inttoptr (i64 1 to ptr))
  br label %done
done:
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  ret void
}
attributes #0 = { "entry_point" }
)");
  const auto compiled = vm::compileModule(*m);
  EXPECT_EQ(countSubstr(compiled->disassemble(), "nop"), 0U)
      << compiled->disassemble();
  const auto unfused = vm::compileModule(*m, {.fuseGates = false});
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    vm::Vm fusedVm(compiled);
    runtime::QuantumRuntime fusedRt(seed);
    fusedRt.bind(fusedVm);
    fusedVm.runEntryPoint();
    vm::Vm plainVm(unfused);
    runtime::QuantumRuntime plainRt(seed);
    plainRt.bind(plainVm);
    plainVm.runEntryPoint();
    EXPECT_EQ(fusedRt.recordedOutput(), plainRt.recordedOutput())
        << "seed " << seed;
    EXPECT_EQ(fusedVm.stats().instructionsExecuted,
              plainVm.stats().instructionsExecuted);
  }
}

// ---------------------------------------------------------------------------
// Superinstruction mining (fuseSuperinstructions): hot pairs collapse,
// interiors that are jump targets are refused, semantics are preserved.
// ---------------------------------------------------------------------------

const char* const kSumLoop = R"(
define i64 @f(i64 %n) {
entry:
  %acc = alloca i64, align 8
  %tmp = alloca i64, align 8
  store i64 0, ptr %acc, align 8
  br label %head
head:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %cur = load i64, ptr %acc, align 8
  %sum = add i64 %cur, %i
  store i64 %sum, ptr %acc, align 8
  %tw = mul i64 %i, 3
  store i64 %tw, ptr %tmp, align 8
  %next = add i64 %i, 1
  br label %head
exit:
  %r = load i64, ptr %acc, align 8
  ret i64 %r
}
)";

TEST(FusionSuperinstr, MinesHotPairsIntoFusedOpcodes) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, kSumLoop);
  const auto mined = vm::compileModule(
      *m, {.dispatch = vm::DispatchMode::Threaded, .superinstructions = true});
  const std::string listing = mined->disassemble();
  EXPECT_GE(countSubstr(listing, "cmp.br"), 1U) << listing;
  EXPECT_GE(countSubstr(listing, "load.bin"), 1U) << listing;
  EXPECT_GE(countSubstr(listing, "bin.store"), 1U) << listing;
  const auto plain = vm::compileModule(*m, {.superinstructions = false});
  // Same span length: superinstructions keep their pair's footprint (head
  // + ext slots), so offsets need no fixups.
  EXPECT_EQ(mined->instructionCount(), plain->instructionCount());
}

TEST(FusionSuperinstr, PairsPreserveValuesAndStepAccounting) {
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, kSumLoop);
  const auto mined = vm::compileModule(
      *m, {.dispatch = vm::DispatchMode::Threaded, .superinstructions = true});
  const auto plain = vm::compileModule(*m, {.superinstructions = false});
  for (const std::int64_t n : {0, 1, 7, 100}) {
    vm::Vm fast(mined);
    vm::Vm reference(plain);
    const std::array<RtValue, 1> arg{RtValue::makeInt(n)};
    EXPECT_EQ(fast.run("f", {arg}).i, reference.run("f", {arg}).i) << n;
    EXPECT_EQ(fast.stats().instructionsExecuted,
              reference.stats().instructionsExecuted)
        << n;
    EXPECT_EQ(fast.stats().blocksEntered, reference.stats().blocksEntered) << n;
  }
}

TEST(FusionSuperinstr, MinesMultiArgExternCallsIntoPushCall) {
  // mz takes two arguments: its PushArg pair collapses into one PushCall
  // that falls through to the untouched call.ext.
  ir::Context ctx;
  const auto m = ir::parseModule(ctx, R"(
declare void @__quantum__qis__mz__body(ptr, ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)");
  const auto mined = vm::compileModule(
      *m, {.dispatch = vm::DispatchMode::Threaded, .superinstructions = true});
  const std::string listing = mined->disassemble();
  EXPECT_GE(countSubstr(listing, "push.call"), 1U) << listing;
  EXPECT_GE(countSubstr(listing, "call.ext"), 1U) << listing;
}

TEST(FusionSuperinstr, RefusesPairsWhoseInteriorIsAJumpTarget) {
  // Hand-built bytecode: a jump lands exactly on the JmpIf, so fusing
  // ICmp+JmpIf would make control enter an Ext slot. The miner must
  // leave the pair alone.
  vm::CompiledFunction fn;
  fn.numRegs = 3;
  vm::Inst icmp;
  icmp.op = vm::Op::ICmp;
  icmp.a = 0;
  icmp.b = 1;
  icmp.c = 2;
  icmp.d = 64;
  vm::Inst jmpif;
  jmpif.op = vm::Op::JmpIf;
  jmpif.a = 0;
  jmpif.b = 3;
  jmpif.c = 3;
  vm::Inst jmp;
  jmp.op = vm::Op::Jmp;
  jmp.a = 1; // targets the JmpIf: pair interior
  vm::Inst ret;
  ret.op = vm::Op::RetVoid;
  fn.code = {icmp, jmpif, jmp, ret};
  EXPECT_EQ(vm::fuseSuperinstructions(fn).total(), 0U);
  EXPECT_EQ(fn.code[0].op, vm::Op::ICmp);
  EXPECT_EQ(fn.code[1].op, vm::Op::JmpIf);

  // Positive control: without the interior jump the pair fuses.
  fn.code = {icmp, jmpif, ret, ret};
  EXPECT_EQ(vm::fuseSuperinstructions(fn).total(), 1U);
  EXPECT_EQ(fn.code[0].op, vm::Op::CmpBr);
  EXPECT_EQ(fn.code[1].op, vm::Op::Ext);
}

} // namespace
} // namespace qirkit
