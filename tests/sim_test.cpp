#include "sim/statevector.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace qirkit::sim {
namespace {

constexpr double kEps = 1e-12;

TEST(Gates, AreUnitary) {
  const GateMatrix2 gates[] = {gateH(),      gateX(),      gateY(),
                               gateZ(),      gateS(),      gateT(),
                               gateRX(0.7),  gateRY(1.3),  gateRZ(2.1),
                               gateU3(0.3, 0.9, 1.7)};
  for (const GateMatrix2& g : gates) {
    const GateMatrix2 product = matmul(adjoint(g), g);
    EXPECT_NEAR(std::abs(product.m00 - Complex{1.0}), 0, kEps);
    EXPECT_NEAR(std::abs(product.m11 - Complex{1.0}), 0, kEps);
    EXPECT_NEAR(std::abs(product.m01), 0, kEps);
    EXPECT_NEAR(std::abs(product.m10), 0, kEps);
  }
}

TEST(Gates, AdjointPairsCancel) {
  EXPECT_NEAR(distanceUpToPhase(matmul(gateS(), gateSdg()), {1, 0, 0, 1}), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateT(), gateTdg()), {1, 0, 0, 1}), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateH(), gateH()), {1, 0, 0, 1}), 0, kEps);
}

TEST(Gates, DecompositionsMatch) {
  // S = T^2, Z = S^2, X = H Z H.
  EXPECT_NEAR(distanceUpToPhase(matmul(gateT(), gateT()), gateS()), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateS(), gateS()), gateZ()), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateH(), matmul(gateZ(), gateH())), gateX()),
              0, kEps);
  // RZ(pi) ~ Z up to phase; U3(theta,0,0) = RY(theta).
  EXPECT_NEAR(distanceUpToPhase(gateRZ(std::numbers::pi), gateZ()), 0, 1e-9);
  EXPECT_NEAR(distanceUpToPhase(gateU3(0.8, 0, 0), gateRY(0.8)), 0, 1e-9);
}

TEST(StateVectorTest, StartsInGroundState) {
  const StateVector sv(3);
  EXPECT_EQ(sv.numQubits(), 3U);
  EXPECT_EQ(sv.dimension(), 8U);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - Complex{1.0}), 0, kEps);
  EXPECT_NEAR(sv.normSquared(), 1.0, kEps);
}

TEST(StateVectorTest, HadamardCreatesEqualSuperposition) {
  StateVector sv(1);
  sv.apply1(gateH(), 0);
  EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, kEps);
  EXPECT_NEAR(sv.normSquared(), 1.0, kEps);
}

TEST(StateVectorTest, BellStateCorrelations) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.5, kEps);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.5, kEps);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01)), 0.0, kEps);
  SplitMix64 rng(3);
  const bool first = sv.measure(0, rng);
  const bool second = sv.measure(1, rng);
  EXPECT_EQ(first, second);
}

TEST(StateVectorTest, XOnArbitraryQubitFlipsThatBit) {
  for (unsigned q = 0; q < 4; ++q) {
    StateVector sv(4);
    sv.apply1(gateX(), q);
    EXPECT_NEAR(std::norm(sv.amplitude(std::uint64_t{1} << q)), 1.0, kEps);
  }
}

TEST(StateVectorTest, CnotOnlyFiresWhenControlSet) {
  StateVector sv(2);
  sv.applyControlled1(gateX(), 0, 1); // control |0>: no-op
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, kEps);
  sv.apply1(gateX(), 0);
  sv.applyControlled1(gateX(), 0, 1); // control |1>: flips target
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 1.0, kEps);
}

TEST(StateVectorTest, ToffoliTruthTable) {
  for (unsigned input = 0; input < 8; ++input) {
    StateVector sv(3);
    for (unsigned bit = 0; bit < 3; ++bit) {
      if ((input >> bit) & 1) {
        sv.apply1(gateX(), bit);
      }
    }
    sv.applyCCX(0, 1, 2);
    const unsigned expected =
        (input & 0b011) == 0b011 ? (input ^ 0b100) : input;
    EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, kEps) << "input " << input;
  }
}

TEST(StateVectorTest, SwapExchangesAmplitudes) {
  StateVector sv(2);
  sv.apply1(gateX(), 0); // |01>
  sv.applySwap(0, 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b10)), 1.0, kEps);
}

TEST(StateVectorTest, MeasurementStatisticsMatchBornRule) {
  // RY(theta)|0> has P(1) = sin^2(theta/2).
  const double theta = 1.234;
  StateVector sv(1);
  sv.apply1(gateRY(theta), 0);
  const double expected = std::sin(theta / 2) * std::sin(theta / 2);
  EXPECT_NEAR(sv.probabilityOfOne(0), expected, kEps);

  SplitMix64 rng(11);
  unsigned ones = 0;
  const unsigned shots = 20000;
  for (unsigned s = 0; s < shots; ++s) {
    StateVector copy(1);
    copy.apply1(gateRY(theta), 0);
    if (copy.measure(0, rng)) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / shots, expected, 0.02);
}

TEST(StateVectorTest, MeasurementCollapsesAndRenormalizes) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  SplitMix64 rng(5);
  const bool outcome = sv.measure(0, rng);
  EXPECT_NEAR(sv.normSquared(), 1.0, kEps);
  EXPECT_NEAR(sv.probabilityOfOne(1), outcome ? 1.0 : 0.0, kEps);
}

TEST(StateVectorTest, ResetForcesGround) {
  StateVector sv(1);
  sv.apply1(gateH(), 0);
  SplitMix64 rng(5);
  sv.resetQubit(0, rng);
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, kEps);
}

TEST(StateVectorTest, AddQubitGrowsRegisterInGroundState) {
  StateVector sv(1);
  sv.apply1(gateX(), 0);
  const unsigned q = sv.addQubit();
  EXPECT_EQ(q, 1U);
  EXPECT_EQ(sv.numQubits(), 2U);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01)), 1.0, kEps);
  EXPECT_NEAR(sv.probabilityOfOne(1), 0.0, kEps);
}

TEST(StateVectorTest, RemoveQubitCompactsState) {
  StateVector sv(3);
  sv.apply1(gateX(), 2); // |100>
  SplitMix64 rng(5);
  sv.removeQubit(1, rng); // remove middle (|0>) qubit
  EXPECT_EQ(sv.numQubits(), 2U);
  EXPECT_NEAR(std::norm(sv.amplitude(0b10)), 1.0, kEps);
}

TEST(StateVectorTest, SampleMatchesAmplitudes) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  SplitMix64 rng(123);
  const auto counts = sv.sampleCounts(10000, rng);
  EXPECT_EQ(counts.count(0b01), 0U);
  EXPECT_EQ(counts.count(0b10), 0U);
  EXPECT_NEAR(static_cast<double>(counts.at(0b00)) / 10000, 0.5, 0.03);
}

TEST(StateVectorTest, SampleShotsMatchesBornRuleAndPreservesState) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1); // Bell: only |00> and |11>
  SplitMix64 rng(123);
  const auto counts = sv.sampleShots(10000, rng);
  std::uint64_t total = 0;
  for (const auto& [basis, count] : counts) {
    EXPECT_TRUE(basis == 0b00 || basis == 0b11) << basis;
    total += count;
  }
  EXPECT_EQ(total, 10000U);
  EXPECT_NEAR(static_cast<double>(counts.at(0b00)) / 10000, 0.5, 0.03);
  // Sampling is non-destructive: the state is untouched (no collapse).
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.5, kEps);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.5, kEps);
}

TEST(StateVectorTest, SampleShotsIsDeterministicAndPoolIndependent) {
  ThreadPool pool(4);
  StateVector seq(10);
  StateVector par(10, &pool);
  for (unsigned q = 0; q < 10; ++q) {
    seq.apply1(gateH(), q);
    par.apply1(gateH(), q);
  }
  SplitMix64 rngA(7);
  SplitMix64 rngB(7);
  const auto a = seq.sampleShots(5000, rngA);
  const auto b = par.sampleShots(5000, rngB);
  // Same seed => identical histogram, regardless of the worker pool: the
  // uniform draws are pre-drawn sequentially and the binary searches are
  // pure. This is what keeps batched sampling engine- and jobs-stable.
  EXPECT_EQ(a, b);
}

TEST(StateVectorTest, FidelityOfIdenticalStatesIsOne) {
  StateVector a(3);
  StateVector b(3);
  for (unsigned q = 0; q < 3; ++q) {
    a.apply1(gateH(), q);
    b.apply1(gateH(), q);
  }
  EXPECT_NEAR(a.fidelity(b), 1.0, kEps);
  b.apply1(gateZ(), 0);
  EXPECT_LT(a.fidelity(b), 1.0);
}

TEST(StateVectorTest, ParallelKernelsMatchSequential) {
  ThreadPool pool(4);
  StateVector seq(16);
  StateVector par(16, &pool);
  SplitMix64 gateRng(77);
  for (int step = 0; step < 50; ++step) {
    const auto target = static_cast<unsigned>(gateRng.below(16));
    auto control = static_cast<unsigned>(gateRng.below(16));
    if (control == target) {
      control = (control + 1) % 16;
    }
    switch (gateRng.below(3)) {
    case 0:
      seq.apply1(gateH(), target);
      par.apply1(gateH(), target);
      break;
    case 1:
      seq.apply1(gateRZ(0.3), target);
      par.apply1(gateRZ(0.3), target);
      break;
    default:
      seq.applyControlled1(gateX(), control, target);
      par.applyControlled1(gateX(), control, target);
      break;
    }
  }
  EXPECT_NEAR(seq.fidelity(par), 1.0, 1e-9);
}

TEST(StateVectorTest, QubitLimitIsEnforced) {
  EXPECT_THROW(StateVector sv(31), qirkit::SemanticError);
}

TEST(StateVectorTest, GateCountIsTracked) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  sv.applySwap(0, 1);
  EXPECT_EQ(sv.gateCount(), 3U);
}

/// Property sweep: on every basis state, H^2 = I, X^2 = I, CX^2 = I.
class SelfInverseProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SelfInverseProperty, DoubleApplicationIsIdentity) {
  const unsigned basis = GetParam();
  StateVector sv(3);
  for (unsigned bit = 0; bit < 3; ++bit) {
    if ((basis >> bit) & 1) {
      sv.apply1(gateX(), bit);
    }
  }
  StateVector reference = sv;
  sv.apply1(gateH(), 0);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 1, 2);
  sv.applyControlled1(gateX(), 1, 2);
  sv.applyCCX(0, 1, 2);
  sv.applyCCX(0, 1, 2);
  EXPECT_NEAR(sv.fidelity(reference), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllBasisStates, SelfInverseProperty,
                         ::testing::Range(0U, 8U));

} // namespace
} // namespace qirkit::sim
