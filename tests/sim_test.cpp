#include "sim/statevector.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

namespace qirkit::sim {
namespace {

constexpr double kEps = 1e-12;

TEST(Gates, AreUnitary) {
  const GateMatrix2 gates[] = {gateH(),      gateX(),      gateY(),
                               gateZ(),      gateS(),      gateT(),
                               gateRX(0.7),  gateRY(1.3),  gateRZ(2.1),
                               gateU3(0.3, 0.9, 1.7)};
  for (const GateMatrix2& g : gates) {
    const GateMatrix2 product = matmul(adjoint(g), g);
    EXPECT_NEAR(std::abs(product.m00 - Complex{1.0}), 0, kEps);
    EXPECT_NEAR(std::abs(product.m11 - Complex{1.0}), 0, kEps);
    EXPECT_NEAR(std::abs(product.m01), 0, kEps);
    EXPECT_NEAR(std::abs(product.m10), 0, kEps);
  }
}

TEST(Gates, AdjointPairsCancel) {
  EXPECT_NEAR(distanceUpToPhase(matmul(gateS(), gateSdg()), {1, 0, 0, 1}), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateT(), gateTdg()), {1, 0, 0, 1}), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateH(), gateH()), {1, 0, 0, 1}), 0, kEps);
}

TEST(Gates, DecompositionsMatch) {
  // S = T^2, Z = S^2, X = H Z H.
  EXPECT_NEAR(distanceUpToPhase(matmul(gateT(), gateT()), gateS()), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateS(), gateS()), gateZ()), 0, kEps);
  EXPECT_NEAR(distanceUpToPhase(matmul(gateH(), matmul(gateZ(), gateH())), gateX()),
              0, kEps);
  // RZ(pi) ~ Z up to phase; U3(theta,0,0) = RY(theta).
  EXPECT_NEAR(distanceUpToPhase(gateRZ(std::numbers::pi), gateZ()), 0, 1e-9);
  EXPECT_NEAR(distanceUpToPhase(gateU3(0.8, 0, 0), gateRY(0.8)), 0, 1e-9);
}

TEST(StateVectorTest, StartsInGroundState) {
  const StateVector sv(3);
  EXPECT_EQ(sv.numQubits(), 3U);
  EXPECT_EQ(sv.dimension(), 8U);
  EXPECT_NEAR(std::abs(sv.amplitude(0) - Complex{1.0}), 0, kEps);
  EXPECT_NEAR(sv.normSquared(), 1.0, kEps);
}

TEST(StateVectorTest, HadamardCreatesEqualSuperposition) {
  StateVector sv(1);
  sv.apply1(gateH(), 0);
  EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, kEps);
  EXPECT_NEAR(sv.normSquared(), 1.0, kEps);
}

TEST(StateVectorTest, BellStateCorrelations) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.5, kEps);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.5, kEps);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01)), 0.0, kEps);
  SplitMix64 rng(3);
  const bool first = sv.measure(0, rng);
  const bool second = sv.measure(1, rng);
  EXPECT_EQ(first, second);
}

TEST(StateVectorTest, XOnArbitraryQubitFlipsThatBit) {
  for (unsigned q = 0; q < 4; ++q) {
    StateVector sv(4);
    sv.apply1(gateX(), q);
    EXPECT_NEAR(std::norm(sv.amplitude(std::uint64_t{1} << q)), 1.0, kEps);
  }
}

TEST(StateVectorTest, CnotOnlyFiresWhenControlSet) {
  StateVector sv(2);
  sv.applyControlled1(gateX(), 0, 1); // control |0>: no-op
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, kEps);
  sv.apply1(gateX(), 0);
  sv.applyControlled1(gateX(), 0, 1); // control |1>: flips target
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 1.0, kEps);
}

TEST(StateVectorTest, ToffoliTruthTable) {
  for (unsigned input = 0; input < 8; ++input) {
    StateVector sv(3);
    for (unsigned bit = 0; bit < 3; ++bit) {
      if ((input >> bit) & 1) {
        sv.apply1(gateX(), bit);
      }
    }
    sv.applyCCX(0, 1, 2);
    const unsigned expected =
        (input & 0b011) == 0b011 ? (input ^ 0b100) : input;
    EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, kEps) << "input " << input;
  }
}

TEST(StateVectorTest, SwapExchangesAmplitudes) {
  StateVector sv(2);
  sv.apply1(gateX(), 0); // |01>
  sv.applySwap(0, 1);
  EXPECT_NEAR(std::norm(sv.amplitude(0b10)), 1.0, kEps);
}

TEST(StateVectorTest, MeasurementStatisticsMatchBornRule) {
  // RY(theta)|0> has P(1) = sin^2(theta/2).
  const double theta = 1.234;
  StateVector sv(1);
  sv.apply1(gateRY(theta), 0);
  const double expected = std::sin(theta / 2) * std::sin(theta / 2);
  EXPECT_NEAR(sv.probabilityOfOne(0), expected, kEps);

  SplitMix64 rng(11);
  unsigned ones = 0;
  const unsigned shots = 20000;
  for (unsigned s = 0; s < shots; ++s) {
    StateVector copy(1);
    copy.apply1(gateRY(theta), 0);
    if (copy.measure(0, rng)) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / shots, expected, 0.02);
}

TEST(StateVectorTest, MeasurementCollapsesAndRenormalizes) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  SplitMix64 rng(5);
  const bool outcome = sv.measure(0, rng);
  EXPECT_NEAR(sv.normSquared(), 1.0, kEps);
  EXPECT_NEAR(sv.probabilityOfOne(1), outcome ? 1.0 : 0.0, kEps);
}

TEST(StateVectorTest, ResetForcesGround) {
  StateVector sv(1);
  sv.apply1(gateH(), 0);
  SplitMix64 rng(5);
  sv.resetQubit(0, rng);
  EXPECT_NEAR(std::norm(sv.amplitude(0)), 1.0, kEps);
}

TEST(StateVectorTest, AddQubitGrowsRegisterInGroundState) {
  StateVector sv(1);
  sv.apply1(gateX(), 0);
  const unsigned q = sv.addQubit();
  EXPECT_EQ(q, 1U);
  EXPECT_EQ(sv.numQubits(), 2U);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01)), 1.0, kEps);
  EXPECT_NEAR(sv.probabilityOfOne(1), 0.0, kEps);
}

TEST(StateVectorTest, RemoveQubitCompactsState) {
  StateVector sv(3);
  sv.apply1(gateX(), 2); // |100>
  SplitMix64 rng(5);
  sv.removeQubit(1, rng); // remove middle (|0>) qubit
  EXPECT_EQ(sv.numQubits(), 2U);
  EXPECT_NEAR(std::norm(sv.amplitude(0b10)), 1.0, kEps);
}

TEST(StateVectorTest, SampleMatchesAmplitudes) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  SplitMix64 rng(123);
  const auto counts = sv.sampleCounts(10000, rng);
  EXPECT_EQ(counts.count(0b01), 0U);
  EXPECT_EQ(counts.count(0b10), 0U);
  EXPECT_NEAR(static_cast<double>(counts.at(0b00)) / 10000, 0.5, 0.03);
}

TEST(StateVectorTest, SampleShotsMatchesBornRuleAndPreservesState) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1); // Bell: only |00> and |11>
  SplitMix64 rng(123);
  const auto counts = sv.sampleShots(10000, rng);
  std::uint64_t total = 0;
  for (const auto& [basis, count] : counts) {
    EXPECT_TRUE(basis == 0b00 || basis == 0b11) << basis;
    total += count;
  }
  EXPECT_EQ(total, 10000U);
  EXPECT_NEAR(static_cast<double>(counts.at(0b00)) / 10000, 0.5, 0.03);
  // Sampling is non-destructive: the state is untouched (no collapse).
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.5, kEps);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.5, kEps);
}

TEST(StateVectorTest, SampleShotsIsDeterministicAndPoolIndependent) {
  ThreadPool pool(4);
  StateVector seq(10);
  StateVector par(10, &pool);
  for (unsigned q = 0; q < 10; ++q) {
    seq.apply1(gateH(), q);
    par.apply1(gateH(), q);
  }
  SplitMix64 rngA(7);
  SplitMix64 rngB(7);
  const auto a = seq.sampleShots(5000, rngA);
  const auto b = par.sampleShots(5000, rngB);
  // Same seed => identical histogram, regardless of the worker pool: the
  // uniform draws are pre-drawn sequentially and the binary searches are
  // pure. This is what keeps batched sampling engine- and jobs-stable.
  EXPECT_EQ(a, b);
}

TEST(StateVectorTest, FidelityOfIdenticalStatesIsOne) {
  StateVector a(3);
  StateVector b(3);
  for (unsigned q = 0; q < 3; ++q) {
    a.apply1(gateH(), q);
    b.apply1(gateH(), q);
  }
  EXPECT_NEAR(a.fidelity(b), 1.0, kEps);
  b.apply1(gateZ(), 0);
  EXPECT_LT(a.fidelity(b), 1.0);
}

TEST(StateVectorTest, ParallelKernelsMatchSequential) {
  ThreadPool pool(4);
  StateVector seq(16);
  StateVector par(16, &pool);
  SplitMix64 gateRng(77);
  for (int step = 0; step < 50; ++step) {
    const auto target = static_cast<unsigned>(gateRng.below(16));
    auto control = static_cast<unsigned>(gateRng.below(16));
    if (control == target) {
      control = (control + 1) % 16;
    }
    switch (gateRng.below(3)) {
    case 0:
      seq.apply1(gateH(), target);
      par.apply1(gateH(), target);
      break;
    case 1:
      seq.apply1(gateRZ(0.3), target);
      par.apply1(gateRZ(0.3), target);
      break;
    default:
      seq.applyControlled1(gateX(), control, target);
      par.applyControlled1(gateX(), control, target);
      break;
    }
  }
  EXPECT_NEAR(seq.fidelity(par), 1.0, 1e-9);
}

TEST(StateVectorTest, QubitLimitIsEnforced) {
  EXPECT_THROW(StateVector sv(31), qirkit::SemanticError);
}

TEST(StateVectorTest, GateCountIsTracked) {
  StateVector sv(2);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 0, 1);
  sv.applySwap(0, 1);
  EXPECT_EQ(sv.gateCount(), 3U);
}

/// Property sweep: on every basis state, H^2 = I, X^2 = I, CX^2 = I.
class SelfInverseProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SelfInverseProperty, DoubleApplicationIsIdentity) {
  const unsigned basis = GetParam();
  StateVector sv(3);
  for (unsigned bit = 0; bit < 3; ++bit) {
    if ((basis >> bit) & 1) {
      sv.apply1(gateX(), bit);
    }
  }
  StateVector reference = sv;
  sv.apply1(gateH(), 0);
  sv.apply1(gateH(), 0);
  sv.applyControlled1(gateX(), 1, 2);
  sv.applyControlled1(gateX(), 1, 2);
  sv.applyCCX(0, 1, 2);
  sv.applyCCX(0, 1, 2);
  EXPECT_NEAR(sv.fidelity(reference), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllBasisStates, SelfInverseProperty,
                         ::testing::Range(0U, 8U));

// ---------------------------------------------------------------------------
// Kernel differential suite: every blocked/vectorized kernel vs a naive
// scalar reference on randomized gates, targets, and controls. The
// reference is deliberately textbook — strided std::complex loops, no run
// decomposition, no blocking — so any indexing or vectorization bug in
// the production kernels shows up as an amplitude mismatch.
// ---------------------------------------------------------------------------

/// Naive reference statevector. Bit conventions mirror StateVector's:
/// basis state b has qubit q in state (b>>q)&1; multi-qubit local indices
/// use bit j = j-th qubit argument.
struct NaiveState {
  unsigned n;
  std::vector<std::complex<double>> amps;

  explicit NaiveState(unsigned numQubits)
      : n(numQubits), amps(std::size_t{1} << numQubits) {
    amps[0] = 1.0;
  }

  void apply1(const GateMatrix2& g, unsigned q) {
    const std::uint64_t bit = 1ULL << q;
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      if ((i & bit) == 0) {
        const std::complex<double> a0 = amps[i];
        const std::complex<double> a1 = amps[i | bit];
        amps[i] = g.m00 * a0 + g.m01 * a1;
        amps[i | bit] = g.m10 * a0 + g.m11 * a1;
      }
    }
  }

  void apply2(const GateMatrix4& g, unsigned q0, unsigned q1) {
    const std::uint64_t b0 = 1ULL << q0;
    const std::uint64_t b1 = 1ULL << q1;
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      if ((i & b0) == 0 && (i & b1) == 0) {
        const std::uint64_t idx[4] = {i, i | b0, i | b1, i | b0 | b1};
        std::complex<double> in[4];
        for (int k = 0; k < 4; ++k) {
          in[k] = amps[idx[k]];
        }
        for (int r = 0; r < 4; ++r) {
          std::complex<double> acc = 0.0;
          for (int c = 0; c < 4; ++c) {
            acc += g.m[r][c] * in[c];
          }
          amps[idx[r]] = acc;
        }
      }
    }
  }

  void applyControlled1(const GateMatrix2& g, unsigned control, unsigned target) {
    const std::uint64_t cbit = 1ULL << control;
    const std::uint64_t tbit = 1ULL << target;
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      if ((i & cbit) != 0 && (i & tbit) == 0) {
        const std::complex<double> a0 = amps[i];
        const std::complex<double> a1 = amps[i | tbit];
        amps[i] = g.m00 * a0 + g.m01 * a1;
        amps[i | tbit] = g.m10 * a0 + g.m11 * a1;
      }
    }
  }

  void applyDiagonal(std::span<const Complex> diag,
                     std::span<const unsigned> qubits) {
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      std::size_t idx = 0;
      for (std::size_t j = 0; j < qubits.size(); ++j) {
        idx |= ((i >> qubits[j]) & 1U) << j;
      }
      amps[i] *= diag[idx];
    }
  }

  void applySwap(unsigned a, unsigned b) {
    const std::uint64_t abit = 1ULL << a;
    const std::uint64_t bbit = 1ULL << b;
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      if ((i & abit) != 0 && (i & bbit) == 0) {
        std::swap(amps[i], amps[(i & ~abit) | bbit]);
      }
    }
  }

  void applyCCX(unsigned c1, unsigned c2, unsigned t) {
    const std::uint64_t c1bit = 1ULL << c1;
    const std::uint64_t c2bit = 1ULL << c2;
    const std::uint64_t tbit = 1ULL << t;
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      if ((i & c1bit) != 0 && (i & c2bit) != 0 && (i & tbit) == 0) {
        std::swap(amps[i], amps[i | tbit]);
      }
    }
  }
};

GateMatrix2 randomUnitary2(SplitMix64& rng) {
  const double a = rng.uniform() * 2 * std::numbers::pi;
  const double b = rng.uniform() * 2 * std::numbers::pi;
  const double c = rng.uniform() * 2 * std::numbers::pi;
  return matmul(gateRZ(a), matmul(gateRX(b), gateRZ(c)));
}

GateMatrix4 randomUnitary4(SplitMix64& rng) {
  // Entangling: two independent local unitaries around a CZ-like
  // controlled phase, so the 4x4 has no product structure.
  const GateMatrix4 local = matmul(embed2(randomUnitary2(rng), 1),
                                   embed2(randomUnitary2(rng), 0));
  const GateMatrix4 phase =
      controlled4(gateRZ(rng.uniform() * 2 * std::numbers::pi), 0, 1);
  return matmul(embed2(randomUnitary2(rng), 0), matmul(phase, local));
}

std::vector<Complex> randomPhases(SplitMix64& rng, std::size_t k) {
  std::vector<Complex> diag(std::size_t{1} << k);
  for (Complex& d : diag) {
    const double theta = rng.uniform() * 2 * std::numbers::pi;
    d = Complex(std::cos(theta), std::sin(theta));
  }
  return diag;
}

void expectAmplitudesNear(const StateVector& sv, const NaiveState& ref,
                          double tol, unsigned n, int step) {
  for (std::uint64_t i = 0; i < ref.amps.size(); ++i) {
    const Complex got = sv.amplitude(i);
    ASSERT_NEAR(got.real(), ref.amps[i].real(), tol)
        << "qubits=" << n << " step=" << step << " amp=" << i;
    ASSERT_NEAR(got.imag(), ref.amps[i].imag(), tol)
        << "qubits=" << n << " step=" << step << " amp=" << i;
  }
}

/// Randomized differential run: \p steps random gates per register width,
/// compared amplitude-by-amplitude after every gate (so the first
/// divergence is attributed to the kernel that caused it).
void runKernelDifferential(Precision precision, double tol) {
  SplitMix64 rng(2024);
  for (unsigned n = 2; n <= 12; n += 2) {
    StateVector sv(n, nullptr, precision);
    NaiveState ref(n);
    for (int step = 0; step < 30; ++step) {
      const auto q0 = static_cast<unsigned>(rng.below(n));
      auto q1 = static_cast<unsigned>(rng.below(n));
      if (q1 == q0) {
        q1 = (q1 + 1) % n;
      }
      switch (rng.below(n >= 3 ? 6 : 5)) {
      case 0: {
        const GateMatrix2 g = randomUnitary2(rng);
        sv.apply1(g, q0);
        ref.apply1(g, q0);
        break;
      }
      case 1: {
        const GateMatrix4 g = randomUnitary4(rng);
        sv.apply2(g, q0, q1);
        ref.apply2(g, q0, q1);
        break;
      }
      case 2: {
        const GateMatrix2 g = randomUnitary2(rng);
        sv.applyControlled1(g, q0, q1);
        ref.applyControlled1(g, q0, q1);
        break;
      }
      case 3: {
        const auto k = static_cast<std::size_t>(1 + rng.below(std::min(n, 6U)));
        std::vector<unsigned> qubits;
        for (unsigned q = 0; q < n; ++q) {
          qubits.push_back(q);
        }
        for (std::size_t j = qubits.size() - 1; j > 0; --j) {
          std::swap(qubits[j], qubits[rng.below(j + 1)]);
        }
        qubits.resize(k);
        const std::vector<Complex> diag = randomPhases(rng, k);
        sv.applyDiagonal(diag, qubits);
        ref.applyDiagonal(diag, qubits);
        break;
      }
      case 4:
        sv.applySwap(q0, q1);
        ref.applySwap(q0, q1);
        break;
      default: {
        auto q2 = static_cast<unsigned>(rng.below(n));
        while (q2 == q0 || q2 == q1) {
          q2 = (q2 + 1) % n;
        }
        sv.applyCCX(q0, q1, q2);
        ref.applyCCX(q0, q1, q2);
        break;
      }
      }
      expectAmplitudesNear(sv, ref, tol, n, step);
    }
  }
}

TEST(KernelDifferential, BlockedKernelsMatchNaiveReferenceF64) {
  runKernelDifferential(Precision::F64, 1e-12);
}

TEST(KernelDifferential, BlockedKernelsMatchNaiveReferenceF32) {
  runKernelDifferential(Precision::F32, 1e-5);
}

/// applyFusedSweep vs the same gates applied one full pass each — on a
/// register wide enough (14 > kSweepChunkBits = 12) that the sweep path
/// genuinely runs multi-chunk, including a high-qubit gate that forces
/// chunk widening.
void runSweepDifferential(Precision precision, double tol) {
  SplitMix64 rng(4242);
  const unsigned n = 14;
  StateVector swept(n, nullptr, precision);
  StateVector perGate(n, nullptr, precision);
  for (unsigned q = 0; q < n; ++q) {
    swept.apply1(gateH(), q);
    perGate.apply1(gateH(), q);
  }
  // Storage that must outlive the applyFusedSweep call.
  std::vector<std::vector<Complex>> diagStore;
  std::vector<std::vector<unsigned>> diagQubitStore;
  diagStore.reserve(8);
  diagQubitStore.reserve(8);
  std::vector<SweepGate> gates;
  for (int i = 0; i < 8; ++i) {
    SweepGate gate;
    switch (rng.below(3)) {
    case 0: {
      gate.kind = SweepGate::Kind::Unitary1;
      // One gate on the top qubit forces chunkBits up to n (widening).
      gate.q0 = i == 5 ? n - 1 : static_cast<unsigned>(rng.below(n));
      gate.m2 = randomUnitary2(rng);
      break;
    }
    case 1: {
      gate.kind = SweepGate::Kind::Unitary2;
      gate.q0 = static_cast<unsigned>(rng.below(n));
      gate.q1 = static_cast<unsigned>(rng.below(n));
      if (gate.q1 == gate.q0) {
        gate.q1 = (gate.q1 + 1) % n;
      }
      gate.m4 = randomUnitary4(rng);
      break;
    }
    default: {
      const std::size_t k = 1 + rng.below(4);
      std::vector<unsigned> qubits;
      for (std::size_t j = 0; j < k; ++j) {
        unsigned q = static_cast<unsigned>(rng.below(n));
        while (std::find(qubits.begin(), qubits.end(), q) != qubits.end()) {
          q = (q + 1) % n;
        }
        qubits.push_back(q);
      }
      diagStore.push_back(randomPhases(rng, k));
      diagQubitStore.push_back(std::move(qubits));
      gate.kind = SweepGate::Kind::Diagonal;
      gate.diag = diagStore.back();
      gate.diagQubits = diagQubitStore.back();
      break;
    }
    }
    gates.push_back(gate);
  }
  swept.applyFusedSweep(gates);
  for (const SweepGate& gate : gates) {
    switch (gate.kind) {
    case SweepGate::Kind::Unitary1:
      perGate.apply1(gate.m2, gate.q0);
      break;
    case SweepGate::Kind::Unitary2:
      perGate.apply2(gate.m4, gate.q0, gate.q1);
      break;
    case SweepGate::Kind::Diagonal:
      perGate.applyDiagonal(gate.diag, gate.diagQubits);
      break;
    }
  }
  for (std::uint64_t i = 0; i < swept.dimension(); ++i) {
    const Complex a = swept.amplitude(i);
    const Complex b = perGate.amplitude(i);
    ASSERT_NEAR(a.real(), b.real(), tol) << "amp=" << i;
    ASSERT_NEAR(a.imag(), b.imag(), tol) << "amp=" << i;
  }
}

TEST(KernelDifferential, FusedSweepMatchesPerGatePassesF64) {
  runSweepDifferential(Precision::F64, 1e-12);
}

TEST(KernelDifferential, FusedSweepMatchesPerGatePassesF32) {
  runSweepDifferential(Precision::F32, 1e-5);
}

TEST(KernelDifferential, F32SamplingMatchesF64Distribution) {
  // The two widths simulate the same rotation-dense circuit; the sampled
  // histograms must agree statistically (identical RNG draws walk the
  // same CDF, so only rounding-induced boundary crossings can differ).
  const unsigned n = 8;
  StateVector f64(n, nullptr, Precision::F64);
  StateVector f32(n, nullptr, Precision::F32);
  SplitMix64 gateRng(99);
  for (int step = 0; step < 20; ++step) {
    const GateMatrix2 g = randomUnitary2(gateRng);
    const auto q = static_cast<unsigned>(gateRng.below(n));
    f64.apply1(g, q);
    f32.apply1(g, q);
    const auto c = static_cast<unsigned>(gateRng.below(n));
    if (c != q) {
      f64.applyControlled1(gateX(), c, q);
      f32.applyControlled1(gateX(), c, q);
    }
  }
  constexpr std::uint64_t kShots = 20000;
  SplitMix64 rngA(7);
  SplitMix64 rngB(7);
  const auto histA = f64.sampleShots(kShots, rngA);
  const auto histB = f32.sampleShots(kShots, rngB);
  // Total-variation distance between the two empirical histograms; with
  // identical draws it measures pure rounding effects, far below noise.
  std::uint64_t diff = 0;
  for (const auto& [basis, count] : histA) {
    const auto it = histB.find(basis);
    const std::uint64_t other = it == histB.end() ? 0 : it->second;
    diff += count > other ? count - other : other - count;
  }
  for (const auto& [basis, count] : histB) {
    if (histA.find(basis) == histA.end()) {
      diff += count;
    }
  }
  EXPECT_LT(static_cast<double>(diff) / (2.0 * kShots), 0.01);
}

} // namespace
} // namespace qirkit::sim
