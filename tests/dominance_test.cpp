#include "ir/dominance.hpp"
#include "ir/parser.hpp"

#include <algorithm>
#include <gtest/gtest.h>

namespace qirkit::ir {
namespace {

const char* kDiamond = R"(
define void @f(i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  ret void
}
)";

TEST(DomTree, DiamondIdoms) {
  Context ctx;
  const auto m = parseModule(ctx, kDiamond);
  const Function* f = m->getFunction("f");
  const DomTree dom(*f);
  const BasicBlock* entry = f->blocks()[0].get();
  const BasicBlock* left = f->blocks()[1].get();
  const BasicBlock* right = f->blocks()[2].get();
  const BasicBlock* join = f->blocks()[3].get();

  EXPECT_EQ(dom.idom(entry), nullptr);
  EXPECT_EQ(dom.idom(left), entry);
  EXPECT_EQ(dom.idom(right), entry);
  EXPECT_EQ(dom.idom(join), entry); // not left or right

  EXPECT_TRUE(dom.dominates(entry, join));
  EXPECT_FALSE(dom.dominates(left, join));
  EXPECT_TRUE(dom.dominates(join, join));
}

TEST(DomTree, DiamondFrontiers) {
  Context ctx;
  const auto m = parseModule(ctx, kDiamond);
  const Function* f = m->getFunction("f");
  const DomTree dom(*f);
  const BasicBlock* left = f->blocks()[1].get();
  const BasicBlock* right = f->blocks()[2].get();
  const BasicBlock* join = f->blocks()[3].get();

  ASSERT_EQ(dom.frontier(left).size(), 1U);
  EXPECT_EQ(dom.frontier(left)[0], join);
  ASSERT_EQ(dom.frontier(right).size(), 1U);
  EXPECT_EQ(dom.frontier(right)[0], join);
  EXPECT_TRUE(dom.frontier(join).empty());
}

TEST(DomTree, LoopFrontierContainsHeader) {
  Context ctx;
  const auto m = parseModule(ctx, R"(
define void @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)");
  const Function* f = m->getFunction("f");
  const DomTree dom(*f);
  const BasicBlock* header = f->blocks()[1].get();
  const BasicBlock* body = f->blocks()[2].get();
  // The body's dominance frontier is the loop header (back edge).
  const auto& frontier = dom.frontier(body);
  ASSERT_EQ(frontier.size(), 1U);
  EXPECT_EQ(frontier[0], header);
  // header's frontier contains header itself.
  const auto& hf = dom.frontier(header);
  EXPECT_NE(std::find(hf.begin(), hf.end(), header), hf.end());
}

TEST(DomTree, UnreachableBlocksAreDetected) {
  Context ctx;
  const auto m = parseModule(ctx, R"(
define void @f() {
entry:
  ret void
island:
  br label %island2
island2:
  br label %island
}
)");
  const Function* f = m->getFunction("f");
  const DomTree dom(*f);
  EXPECT_EQ(dom.unreachableBlocks().size(), 2U);
  EXPECT_TRUE(dom.isReachable(f->entry()));
  EXPECT_FALSE(dom.isReachable(f->blocks()[1].get()));
}

TEST(DomTree, ReversePostOrderStartsAtEntry) {
  Context ctx;
  const auto m = parseModule(ctx, kDiamond);
  const Function* f = m->getFunction("f");
  const DomTree dom(*f);
  ASSERT_EQ(dom.reversePostOrder().size(), 4U);
  EXPECT_EQ(dom.reversePostOrder().front(), f->entry());
  EXPECT_EQ(dom.reversePostOrder().back(), f->blocks()[3].get());
}

TEST(DomTree, DominatesUseWithinBlockUsesOrder) {
  Context ctx;
  const auto m = parseModule(ctx, R"(
define void @f() {
entry:
  %a = add i64 1, 2
  %b = add i64 %a, 3
  ret void
}
)");
  const Function* f = m->getFunction("f");
  const DomTree dom(*f);
  const Instruction* a = f->entry()->instructions()[0].get();
  const Instruction* b = f->entry()->instructions()[1].get();
  EXPECT_TRUE(dom.dominatesUse(a, b));
  EXPECT_FALSE(dom.dominatesUse(b, a));
}

} // namespace
} // namespace qirkit::ir
