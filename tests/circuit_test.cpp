#include "circuit/circuit.hpp"
#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "support/source_location.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace qirkit::circuit {
namespace {

TEST(CircuitTest, BuildersValidateIndices) {
  Circuit c(2, 1);
  c.h(0);
  c.cx(0, 1);
  c.measure(1, 0);
  EXPECT_EQ(c.size(), 3U);
  EXPECT_THROW(c.h(2), SemanticError);
  EXPECT_THROW(c.measure(0, 1), SemanticError);
  EXPECT_THROW(c.cx(0, 0), SemanticError); // duplicate operand
}

TEST(CircuitTest, ArityAndParamValidation) {
  Circuit c(3, 0);
  EXPECT_THROW(c.add({OpKind::CX, {0}, {}, 0, {}}), SemanticError);
  EXPECT_THROW(c.add({OpKind::RZ, {0}, {}, 0, {}}), SemanticError);
  EXPECT_THROW(c.add({OpKind::H, {0}, {0.5}, 0, {}}), SemanticError);
  c.add({OpKind::RZ, {0}, {0.5}, 0, {}});
  EXPECT_EQ(c.size(), 1U);
}

TEST(CircuitTest, ConditionValidation) {
  Circuit c(1, 2);
  c.add({OpKind::X, {0}, {}, 0, Condition{0, 2, 3}});
  EXPECT_THROW(c.add({OpKind::X, {0}, {}, 0, Condition{1, 2, 0}}), SemanticError);
}

TEST(CircuitTest, CountsAndDepth) {
  Circuit c = ghz(4, true);
  EXPECT_EQ(c.numQubits(), 4U);
  EXPECT_EQ(c.gateCount(), 4U);          // H + 3 CX
  EXPECT_EQ(c.twoQubitGateCount(), 3U);  // the CX ladder
  EXPECT_EQ(c.countKind(OpKind::Measure), 4U);
  EXPECT_EQ(c.depth(), 5U); // H, CX, CX, CX chained on overlapping qubits + mz
}

TEST(CircuitTest, DepthOfParallelGatesIsOne) {
  Circuit c(4, 0);
  for (unsigned q = 0; q < 4; ++q) {
    c.h(q);
  }
  EXPECT_EQ(c.depth(), 1U);
}

TEST(CircuitTest, BarrierSynchronizesDepth) {
  Circuit c(2, 0);
  c.h(0);
  c.barrier();
  c.h(1); // would be depth 1 without the barrier
  EXPECT_EQ(c.depth(), 2U);
}

TEST(CircuitTest, FeedbackDetection) {
  EXPECT_FALSE(ghz(3, true).hasClassicalFeedback());
  EXPECT_TRUE(repetitionCodeCycle(0.3, 0).hasClassicalFeedback());
  EXPECT_TRUE(repetitionCodeCycle(0.3, 0).hasConditions());

  // Mid-circuit measurement without conditions is also feedback.
  Circuit c(1, 1);
  c.measure(0, 0);
  c.x(0);
  EXPECT_TRUE(c.hasClassicalFeedback());
  EXPECT_FALSE(c.hasConditions());
}

TEST(CircuitTest, EqualityAndSummary) {
  EXPECT_EQ(ghz(3, true), ghz(3, true));
  EXPECT_NE(ghz(3, true), ghz(4, true));
  EXPECT_NE(std::string::npos, ghz(3, true).summary().find("3q"));
}

TEST(ExecutorTest, GHZIsPerfectlyCorrelated) {
  const auto counts = sampleCounts(ghz(3, true), 200, 7);
  std::uint64_t total = 0;
  for (const auto& [bits, count] : counts) {
    EXPECT_TRUE(bits == "000" || bits == "111") << bits;
    total += count;
  }
  EXPECT_EQ(total, 200U);
}

TEST(ExecutorTest, ConditionedGateFires) {
  // X; measure -> 1; conditioned X brings it back to |0>.
  Circuit c(1, 2);
  c.x(0);
  c.measure(0, 0);
  c.add({OpKind::X, {0}, {}, 0, Condition{0, 1, 1}});
  c.measure(0, 1);
  const ExecutionResult result = execute(c, 3);
  EXPECT_TRUE(result.bits[0]);
  EXPECT_FALSE(result.bits[1]);
}

TEST(ExecutorTest, ConditionedGateHeldBack) {
  Circuit c(1, 2);
  c.measure(0, 0); // always 0
  c.add({OpKind::X, {0}, {}, 0, Condition{0, 1, 1}});
  c.measure(0, 1);
  const ExecutionResult result = execute(c, 3);
  EXPECT_FALSE(result.bits[0]);
  EXPECT_FALSE(result.bits[1]);
}

TEST(ExecutorTest, MultiBitConditionComparesWholeValue) {
  // bits = 10 (binary, bit1 set): condition value 2 over 2 bits fires.
  Circuit c(2, 3);
  c.x(1);
  c.measure(0, 0);
  c.measure(1, 1);
  c.add({OpKind::X, {0}, {}, 0, Condition{0, 2, 2}});
  c.measure(0, 2);
  const ExecutionResult result = execute(c, 3);
  EXPECT_TRUE(result.bits[2]);
}

TEST(ExecutorTest, RepetitionCodeCorrectsSingleBitFlips) {
  // With theta = pi the logical qubit is |1>; any single X error must be
  // corrected, so the data readout is always 111.
  for (unsigned errorQubit = 0; errorQubit < 4; ++errorQubit) {
    const Circuit c = repetitionCodeCycle(std::numbers::pi, errorQubit);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const ExecutionResult result = execute(c, seed);
      EXPECT_TRUE(result.bits[2] && result.bits[3] && result.bits[4])
          << "error on qubit " << errorQubit << ", seed " << seed;
    }
  }
}

TEST(ExecutorTest, QFTOfGroundStateIsUniform) {
  const Circuit c = qft(3, false);
  const ExecutionResult result = execute(c, 1);
  for (std::uint64_t basis = 0; basis < 8; ++basis) {
    EXPECT_NEAR(std::norm(result.state.amplitude(basis)), 1.0 / 8, 1e-9);
  }
}

TEST(ExecutorTest, BitsToStringPutsHighBitLeft) {
  EXPECT_EQ(bitsToString({true, false, false}), "001");
  EXPECT_EQ(bitsToString({false, false, true}), "100");
  EXPECT_EQ(bitsToString({}), "");
}

TEST(Generators, RandomCircuitIsDeterministicPerSeed) {
  EXPECT_EQ(randomCircuit(4, 5, 42, true), randomCircuit(4, 5, 42, true));
  EXPECT_NE(randomCircuit(4, 5, 42, true), randomCircuit(4, 5, 43, true));
}

TEST(Generators, AnsatzShape) {
  const Circuit c = hardwareEfficientAnsatz(4, 3, 1);
  EXPECT_EQ(c.countKind(OpKind::RY), 12U);
  EXPECT_EQ(c.countKind(OpKind::RZ), 12U);
  EXPECT_EQ(c.countKind(OpKind::CX), 9U);
}

} // namespace
} // namespace qirkit::circuit
