/// Tests for full loop unrolling — the paper's Ex. 4: after unrolling,
/// "an optimization pass does not have to handle the FOR-loop, but sees
/// only the ten individual Hadamard gates that are applied to the qubits."
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "passes/loop_info.hpp"
#include "passes/pass.hpp"
#include "qir/importer.hpp"

#include "support/source_location.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

std::unique_ptr<Module> parse(Context& ctx, std::string_view text) {
  auto m = parseModule(ctx, text);
  verifyModuleOrThrow(*m);
  return m;
}

/// Count calls to a given callee across the function.
std::size_t countCalls(const Function& fn, std::string_view callee) {
  std::size_t count = 0;
  for (const auto& block : fn.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->op() == Opcode::Call && inst->callee()->name() == callee) {
        ++count;
      }
    }
  }
  return count;
}

void runFullPipeline(Module& m) {
  PassManager pm;
  addFullPipeline(pm);
  pm.setVerifyEach(true);
  pm.runToFixpoint(m);
}

TEST(LoopInfo, FindsNaturalLoop) {
  Context ctx;
  auto m = parse(ctx, R"(
define void @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)");
  const auto loops = findNaturalLoops(*m->getFunction("f"));
  ASSERT_EQ(loops.size(), 1U);
  EXPECT_EQ(loops[0].header->name(), "header");
  EXPECT_EQ(loops[0].blocks.size(), 2U);
  ASSERT_EQ(loops[0].latches.size(), 1U);
  EXPECT_EQ(loops[0].latches[0]->name(), "body");
  ASSERT_NE(loops[0].preheader(), nullptr);
  EXPECT_EQ(loops[0].preheader()->name(), "entry");
  EXPECT_EQ(loops[0].exitEdges().size(), 1U);
}

TEST(LoopInfo, NestedLoopsOrderedInnermostFirst) {
  Context ctx;
  auto m = parse(ctx, R"(
define void @f(i64 %n) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i.next, %outer.latch ]
  %ci = icmp slt i64 %i, %n
  br i1 %ci, label %inner, label %exit
inner:
  %j = phi i64 [ 0, %outer ], [ %j.next, %inner ]
  %j.next = add i64 %j, 1
  %cj = icmp slt i64 %j.next, %n
  br i1 %cj, label %inner, label %outer.latch
outer.latch:
  %i.next = add i64 %i, 1
  br label %outer
exit:
  ret void
}
)");
  const auto loops = findNaturalLoops(*m->getFunction("f"));
  ASSERT_EQ(loops.size(), 2U);
  EXPECT_EQ(loops[0].header->name(), "inner");
  EXPECT_EQ(loops[1].header->name(), "outer");
  EXPECT_FALSE(loops[0].containsLoop(loops));
  EXPECT_TRUE(loops[1].containsLoop(loops));
}

/// The exact shape of the paper's Ex. 4 after a front end emitted it
/// (alloca + load/store), run through the full pipeline.
TEST(LoopUnroll, PaperEx4SeesTenHadamards) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @__quantum__qis__h__body(ptr)

define void @main() #0 {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header
for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, 10
  br i1 %cond, label %body, label %exit
body:
  %2 = load i32, ptr %i, align 4
  %q64 = sext i32 %2 to i64
  %q = inttoptr i64 %q64 to ptr
  call void @__quantum__qis__h__body(ptr %q)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)");
  runFullPipeline(*m);
  const Function* main = m->getFunction("main");
  // The optimization pass "sees only the ten individual Hadamard gates".
  EXPECT_EQ(countCalls(*main, "__quantum__qis__h__body"), 10U);
  EXPECT_EQ(main->blocks().size(), 1U);
  // Every argument is now a distinct static qubit address 0..9.
  std::set<std::uint64_t> addresses;
  for (const auto& inst : main->entry()->instructions()) {
    if (inst->op() == Opcode::Call &&
        inst->callee()->name() == "__quantum__qis__h__body") {
      std::uint64_t address = 99;
      ASSERT_TRUE(getStaticPointerAddress(inst->operand(0), address));
      addresses.insert(address);
    }
  }
  EXPECT_EQ(addresses.size(), 10U);
  EXPECT_EQ(*addresses.begin(), 0U);
  EXPECT_EQ(*addresses.rbegin(), 9U);

  // And the unrolled module imports as a 10-qubit circuit.
  const circuit::Circuit c = qir::importFromModule(*m);
  EXPECT_EQ(c.numQubits(), 10U);
  EXPECT_EQ(c.gateCount(), 10U);
}

TEST(LoopUnroll, TripCountVariants) {
  // sgt-descending, ne-based, and sle bounds all unroll correctly.
  const char* const programs[] = {
      // descending: i = 8; while (i > 0) { work; i -= 2 } -> 4 iterations
      R"(
declare void @work(i64)
define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 8, %entry ], [ %next, %body ]
  %c = icmp sgt i64 %i, 0
  br i1 %c, label %body, label %exit
body:
  call void @work(i64 %i)
  %next = sub i64 %i, 2
  br label %header
exit:
  ret void
}
)",
      // ne bound: 0,1,2 -> 3 iterations
      R"(
declare void @work(i64)
define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp ne i64 %i, 3
  br i1 %c, label %body, label %exit
body:
  call void @work(i64 %i)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)",
      // sle bound: 0..5 -> 6 iterations
      R"(
declare void @work(i64)
define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp sle i64 %i, 5
  br i1 %c, label %body, label %exit
body:
  call void @work(i64 %i)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)"};
  const std::size_t expected[] = {4, 3, 6};
  for (int t = 0; t < 3; ++t) {
    Context ctx;
    auto m = parse(ctx, programs[t]);
    PassManager pm;
    pm.add(createLoopUnrollPass());
    pm.add(createSCCPPass());
    pm.add(createConstantFoldPass());
    pm.add(createSimplifyCFGPass());
    pm.add(createDCEPass());
    pm.setVerifyEach(true);
    pm.runToFixpoint(*m);
    EXPECT_EQ(countCalls(*m->getFunction("f"), "work"), expected[t]) << "case " << t;
  }
}

TEST(LoopUnroll, ZeroTripLoopDisappears) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @work(i64)
define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 5, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 3
  br i1 %c, label %body, label %exit
body:
  call void @work(i64 %i)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)");
  runFullPipeline(*m);
  EXPECT_EQ(countCalls(*m->getFunction("f"), "work"), 0U);
  EXPECT_EQ(m->getFunction("f")->blocks().size(), 1U);
}

TEST(LoopUnroll, ExitValueFlowsThroughExitPhi) {
  Context ctx;
  auto m = parse(ctx, R"(
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %c = icmp slt i64 %i, 5
  br i1 %c, label %body, label %exit
body:
  %acc.next = add i64 %acc, %i
  %next = add i64 %i, 1
  br label %header
exit:
  %result = phi i64 [ %acc, %header ]
  ret i64 %result
}
)");
  runFullPipeline(*m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(f->blocks().size(), 1U);
  const auto* c = dynamic_cast<const ConstantInt*>(f->entry()->back()->operand(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0 + 1 + 2 + 3 + 4);
}

TEST(LoopUnroll, DynamicBoundIsLeftAlone) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @work(i64)
define void @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  call void @work(i64 %i)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)");
  PassManager pm;
  pm.add(createLoopUnrollPass());
  pm.setVerifyEach(true);
  EXPECT_FALSE(pm.run(*m));
  EXPECT_EQ(m->getFunction("f")->blocks().size(), 4U);
}

TEST(LoopUnroll, TripCountCapIsRespected) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @work(i64)
define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, 1000000
  br i1 %c, label %body, label %exit
body:
  call void @work(i64 %i)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)");
  PassManager pm;
  pm.add(createLoopUnrollPass(/*maxTripCount=*/100));
  EXPECT_FALSE(pm.run(*m)); // 1M trips > cap: refuse
}

TEST(LoopUnroll, MultiBlockBodyWithInternalBranch) {
  Context ctx;
  auto m = parse(ctx, R"(
declare void @even(i64)
declare void @odd(i64)
define void @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i64 %i, 6
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %iseven = icmp eq i64 %bit, 0
  br i1 %iseven, label %ev, label %od
ev:
  call void @even(i64 %i)
  br label %latch
od:
  call void @odd(i64 %i)
  br label %latch
latch:
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
)");
  runFullPipeline(*m);
  const Function* f = m->getFunction("f");
  EXPECT_EQ(countCalls(*f, "even"), 3U);
  EXPECT_EQ(countCalls(*f, "odd"), 3U);
}

} // namespace
} // namespace qirkit::passes
