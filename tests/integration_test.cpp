/// Cross-module integration and property tests: the full adoption routes
/// of the paper chained end to end.
#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "circuit/mapping.hpp"
#include "circuit/optimizer.hpp"
#include "hybrid/hybrid.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "qir/compile.hpp"
#include "qir/exporter.hpp"
#include "qir/importer.hpp"
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

namespace qirkit {
namespace {

using circuit::Circuit;

/// QASM -> circuit -> QIR -> text -> parse -> interpret, compared against
/// direct simulation of the original.
TEST(Integration, QasmToQirToExecution) {
  const char* qasmText = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
measure q -> c;
)";
  const Circuit fromQasm = qasm::parse(qasmText);
  ir::Context ctx;
  const auto module = qir::exportCircuit(ctx, fromQasm, {});
  const std::string qirText = ir::printModule(*module);

  ir::Context ctx2;
  const auto reparsed = ir::parseModule(ctx2, qirText);
  ir::verifyModuleOrThrow(*reparsed);

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    interp::Interpreter interp(*reparsed);
    runtime::QuantumRuntime rt(seed);
    rt.bind(interp);
    interp.runEntryPoint();
    const std::string bits = rt.outputBitString();
    EXPECT_TRUE(bits == "000" || bits == "111") << bits;
  }
}

/// Property: for any generated workload, the full static-compile pipeline
/// preserves the statevector (measurement-free versions).
class PipelinePreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinePreservation, CompilePreservesState) {
  const std::uint64_t seed = GetParam();
  const Circuit original = circuit::randomCircuit(4, 3, seed, /*measured=*/false);

  ir::Context ctx;
  qir::ExportOptions exportOptions;
  exportOptions.addressing = qir::Addressing::Dynamic;
  exportOptions.recordOutput = false;
  auto module = qir::exportCircuit(ctx, original, exportOptions);

  qir::CompileOptions options;
  options.target = circuit::Target::line(4);
  const qir::CompileResult result = qir::compileToTarget(ctx, *module, options);

  // Execute the compiled QIR and undo the layout permutation implied by
  // mapping via fidelity on the measured distribution instead: use the
  // mapped circuit directly against the permuted original.
  const auto compiledState = circuit::execute(result.circuit, 1).state;

  // Rebuild the original under the same mapping to compare fairly.
  const Circuit lowered = circuit::decomposeToCXBasis(original);
  circuit::MappingResult mapping =
      circuit::mapCircuit(lowered, *options.target);
  const auto referenceState = circuit::execute(mapping.mapped, 1).state;

  // Both followed the same deterministic mapper, so states must agree up
  // to the circuit-level optimizations (global phase only).
  EXPECT_NEAR(compiledState.fidelity(referenceState), 1.0, 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePreservation,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Property: circuit -> QIR -> circuit is the identity for both addressing
/// modes and both import routes, across all generators.
class FullRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, qir::Addressing>> {};

TEST_P(FullRoundTrip, CircuitSurvivesEveryRoute) {
  const auto [workload, addressing] = GetParam();
  Circuit original;
  switch (workload) {
  case 0: original = circuit::ghz(5, true); break;
  case 1: original = circuit::qft(4, false); break;
  case 2: original = circuit::hardwareEfficientAnsatz(4, 2, 3); break;
  default: original = circuit::randomCircuit(5, 4, 23, true); break;
  }
  ir::Context ctx;
  qir::ExportOptions options;
  options.addressing = addressing;
  options.recordOutput = false;
  const auto module = qir::exportCircuit(ctx, original, options);
  EXPECT_EQ(qir::importFromModule(*module), original);

  const std::string text = ir::printModule(*module);
  EXPECT_EQ(qir::importBaseProfileText(text), original);

  // And through a reparse of the printed text.
  ir::Context ctx2;
  const auto reparsed = ir::parseModule(ctx2, text);
  EXPECT_EQ(qir::importFromModule(*reparsed), original);
}

INSTANTIATE_TEST_SUITE_P(Matrix, FullRoundTrip,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(
                                                qir::Addressing::Static,
                                                qir::Addressing::Dynamic)));

/// The error-correction workload (§IV.B motivation) through the whole
/// stack: circuit -> adaptive QIR -> feasibility check -> execution.
TEST(Integration, ErrorCorrectionFeedbackEndToEnd) {
  const Circuit cycle = circuit::repetitionCodeCycle(std::numbers::pi, 2);
  ir::Context ctx;
  qir::ExportOptions options;
  options.recordOutput = false;
  const auto module = qir::exportCircuit(ctx, cycle, options);
  EXPECT_EQ(qir::detectProfile(*module), qir::Profile::Adaptive);

  // Feasible on the FPGA model with a realistic budget.
  const auto feasible = hybrid::checkFeasibility(
      *module, hybrid::LatencyModel::superconductingFPGA(), 10000.0);
  EXPECT_TRUE(feasible.feasible);
  EXPECT_GT(feasible.paths.size(), 0U);

  // Execute: the corrected data block must read 111 for every seed.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    interp::Interpreter interp(*module);
    runtime::QuantumRuntime rt(seed);
    rt.bind(interp);
    interp.runEntryPoint();
    // Bits 2..4 are the data readout (result ids 2..4).
    EXPECT_TRUE(rt.resultValue(2));
    EXPECT_TRUE(rt.resultValue(3));
    EXPECT_TRUE(rt.resultValue(4));
  }
}

/// Optimization benefit claim (§II.C): the classical pipeline reduces the
/// interpreted instruction count of a loop-structured QIR program.
TEST(Integration, ClassicalPipelineReducesInterpretedWork) {
  const char* program = R"(
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  %i = alloca i64, align 8
  store i64 0, ptr %i, align 8
  br label %header
header:
  %v = load i64, ptr %i, align 8
  %c = icmp slt i64 %v, 16
  br i1 %c, label %body, label %exit
body:
  %p = inttoptr i64 %v to ptr
  call void @__quantum__qis__h__body(ptr %p)
  %n = add i64 %v, 1
  store i64 %n, ptr %i, align 8
  br label %header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
  ir::Context ctxA;
  const auto unoptimized = ir::parseModule(ctxA, program);
  ir::Context ctxB;
  auto optimized = ir::parseModule(ctxB, program);
  qir::transformDirect(*optimized);

  const runtime::RunResult before = runtime::runQIRModule(*unoptimized, 1);
  const runtime::RunResult after = runtime::runQIRModule(*optimized, 1);
  EXPECT_EQ(before.stats.gatesApplied, 16U);
  EXPECT_EQ(after.stats.gatesApplied, 16U);
  EXPECT_LT(after.interpStats.instructionsExecuted,
            before.interpStats.instructionsExecuted / 2);
}

/// Transpile round trip (§III.B route b2) vs. direct transformation (b1):
/// both must produce semantically equal programs; the round trip loses the
/// classical loop structure even when it is not unrollable — which is the
/// trade-off the paper describes. Here we verify the unrollable case ends
/// up identical.
TEST(Integration, DirectAndTranspiledRoutesAgree) {
  const Circuit source = circuit::ghz(4, true);
  ir::Context ctx;
  qir::ExportOptions dyn;
  dyn.addressing = qir::Addressing::Dynamic;
  dyn.recordOutput = false;

  // Route b1: direct passes on the AST, then import.
  auto directModule = qir::exportCircuit(ctx, source, dyn);
  qir::transformDirect(*directModule);
  const Circuit direct = qir::importFromModule(*directModule);

  // Route b2: transpile through the circuit IR.
  auto transpileModule = qir::exportCircuit(ctx, source, dyn);
  qir::CompileOptions options;
  options.optimizeCircuit = false;
  const qir::CompileResult transpiled =
      qir::compileToTarget(ctx, *transpileModule, options);

  EXPECT_EQ(direct, transpiled.circuit);
}

} // namespace
} // namespace qirkit
