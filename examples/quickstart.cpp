/// \file quickstart.cpp
/// Fig. 1 end-to-end: the quantum "Hello World" (Bell state) expressed in
/// OpenQASM 2.0 and in QIR (dynamic and static qubit addressing), parsed
/// back through both §III.A import routes, and executed on the simulator
/// through the QIR runtime (§III.C).
#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "qir/exporter.hpp"
#include "qir/importer.hpp"
#include "qir/profiles.hpp"
#include "runtime/runtime.hpp"

#include <iostream>

int main() {
  using namespace qirkit;

  // 1. Build the Bell-state circuit with the circuit API.
  const circuit::Circuit bell = circuit::bellPair(/*measured=*/true);
  std::cout << "=== circuit ===\n" << bell.summary() << "\n\n";

  // 2. Fig. 1 (top left): OpenQASM 2.0.
  const std::string qasmText = qasm::print(bell);
  std::cout << "=== OpenQASM 2.0 ===\n" << qasmText << "\n";

  // 3. Fig. 1 (right): QIR with dynamically allocated qubits (Ex. 2).
  ir::Context ctx;
  qir::ExportOptions dynamicOptions;
  dynamicOptions.addressing = qir::Addressing::Dynamic;
  const auto dynamicModule = qir::exportCircuit(ctx, bell, dynamicOptions);
  std::cout << "=== QIR (dynamic addressing, Ex. 2) ===\n"
            << ir::printModule(*dynamicModule) << "\n";

  // 4. Ex. 6: the same circuit with static qubit addresses.
  qir::ExportOptions staticOptions;
  staticOptions.addressing = qir::Addressing::Static;
  const auto staticModule = qir::exportCircuit(ctx, bell, staticOptions);
  std::cout << "=== QIR (static addressing, Ex. 6) ===\n"
            << ir::printModule(*staticModule) << "\n";
  std::cout << "detected profile: "
            << qir::profileName(qir::detectProfile(*staticModule)) << "\n\n";

  // 5. Round trips. (a) OpenQASM back to a circuit; (b) QIR text through
  //    the Ex. 3 pattern parser; (c) QIR text through the full IR parser.
  const circuit::Circuit fromQasm = qasm::parse(qasmText);
  const std::string qirText = ir::printModule(*dynamicModule);
  const circuit::Circuit fromPattern = qir::importBaseProfileText(qirText);
  const auto reparsed = ir::parseModule(ctx, qirText);
  ir::verifyModuleOrThrow(*reparsed);
  const circuit::Circuit fromAst = qir::importFromModule(*reparsed);
  std::cout << "round trips: qasm " << (fromQasm == bell ? "ok" : "MISMATCH")
            << ", qir-pattern " << (fromPattern == bell ? "ok" : "MISMATCH")
            << ", qir-ast " << (fromAst == bell ? "ok" : "MISMATCH") << "\n\n";

  // 6. Execute the QIR program through the interpreter + runtime (Ex. 5)
  //    and compare with direct circuit simulation.
  std::cout << "=== execution (1000 shots, interpreted QIR) ===\n";
  std::map<std::string, unsigned> histogram;
  for (unsigned shot = 0; shot < 1000; ++shot) {
    interp::Interpreter interp(*dynamicModule);
    runtime::QuantumRuntime rt(/*seed=*/1000 + shot);
    rt.bind(interp);
    interp.runEntryPoint();
    ++histogram[rt.outputBitString()];
  }
  for (const auto& [bits, count] : histogram) {
    std::cout << "  " << bits << ": " << count << "\n";
  }

  std::cout << "\n=== execution (1000 shots, direct circuit simulation) ===\n";
  for (const auto& [bits, count] : circuit::sampleCounts(bell, 1000, 2000)) {
    std::cout << "  " << bits << ": " << count << "\n";
  }
  return 0;
}
