/// \file compile_to_target.cpp
/// §IV.A end to end: take a dynamically-addressed QIR program with a
/// classical FOR loop, run the full compilation pipeline — classical
/// passes (unroll/fold), transpile into the circuit IR, map the program's
/// qubits onto a 2x3-grid hardware target ("register allocation for
/// qubits"), lower to static addresses — and validate the result against
/// the base profile.
#include "circuit/mapping.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "qir/compile.hpp"
#include "qir/profiles.hpp"
#include "runtime/runtime.hpp"
#include "support/source_location.hpp"

#include <iostream>

namespace {

/// The input: dynamic qubit allocation + a loop applying H to 6 qubits +
/// a long-range entangling chain that will need SWAP routing on the grid.
const char* kInput = R"(
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare ptr @__quantum__rt__array_create_1d(i32, i64)

define void @main() #0 {
entry:
  %q = alloca ptr, align 8
  %0 = call ptr @__quantum__rt__qubit_allocate_array(i64 6)
  store ptr %0, ptr %q, align 8
  %c = alloca ptr, align 8
  %1 = call ptr @__quantum__rt__array_create_1d(i32 1, i64 6)
  store ptr %1, ptr %c, align 8
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %cond = icmp slt i64 %i, 6
  br i1 %cond, label %body, label %entangle
body:
  %2 = load ptr, ptr %q, align 8
  %3 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %2, i64 %i)
  call void @__quantum__qis__h__body(ptr %3)
  %next = add i64 %i, 1
  br label %header
entangle:
  %4 = load ptr, ptr %q, align 8
  %5 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %4, i64 0)
  %6 = load ptr, ptr %q, align 8
  %7 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %6, i64 5)
  call void @__quantum__qis__cnot__body(ptr %5, ptr %7)
  %8 = load ptr, ptr %q, align 8
  %9 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %8, i64 0)
  %10 = load ptr, ptr %c, align 8
  %11 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %10, i64 0)
  call void @__quantum__qis__mz__body(ptr %9, ptr %11)
  ret void
}
attributes #0 = { "entry_point" }
)";

} // namespace

int main() {
  using namespace qirkit;

  ir::Context ctx;
  auto module = ir::parseModule(ctx, kInput);
  std::cout << "input: " << module->instructionCount() << " instructions, "
            << module->entryPoint()->blocks().size() << " blocks, profile "
            << qir::profileName(qir::detectProfile(*module)) << "\n";

  qir::CompileOptions options;
  options.target = circuit::Target::grid(2, 3);
  const qir::CompileResult result = qir::compileToTarget(ctx, *module, options);

  std::cout << "compiled: " << result.circuit.summary() << "\n";
  std::cout << "pipeline sweeps: " << result.passSweeps
            << ", circuit ops removed by optimization: "
            << result.circuitStats.total() << ", SWAPs inserted by mapping: "
            << result.swapsInserted << "\n";
  std::cout << "output profile: " << qir::profileName(result.profile) << "\n";
  std::cout << "respects " << options.target->name << " coupling: "
            << (circuit::respectsCoupling(result.circuit, *options.target) ? "yes"
                                                                           : "NO")
            << "\n\n";

  // The base-profile validator must accept the compiled module.
  const qir::ProfileReport report =
      qir::validateProfile(*result.module, qir::Profile::Base);
  std::cout << "base-profile validation: " << (report.conforms ? "pass" : "FAIL")
            << "\n";
  for (const std::string& violation : report.violations) {
    std::cout << "  violation: " << violation << "\n";
  }

  std::cout << "\n=== compiled QIR ===\n" << ir::printModule(*result.module);

  // Prove it still runs.
  const runtime::RunResult run = runtime::runQIRModule(*result.module, 7);
  std::cout << "\nexecuted: " << run.stats.gatesApplied << " gates, "
            << run.stats.measurements << " measurement(s)\n";
  return 0;
}
