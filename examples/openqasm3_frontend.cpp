/// \file openqasm3_frontend.cpp
/// The paper's §II.B contrast, live: OpenQASM 3 "integrates classical
/// logic and control flow into the IR", which means every OpenQASM 3 tool
/// must reimplement loop unrolling, constant propagation, etc. QIR's
/// answer is to lower those constructs onto LLVM-style IR and let the
/// existing classical passes do the work.
///
/// This example compiles an OpenQASM 3 program with nested FOR loops and a
/// measurement conditional into QIR, shows the classical control flow in
/// the emitted IR, runs the stock classical pipeline (no quantum-specific
/// loop handling anywhere), and ends with flat base/adaptive-profile QIR —
/// which then executes on the runtime.
#include "ir/printer.hpp"
#include "qasm/qasm3.hpp"
#include "qir/compile.hpp"
#include "qir/importer.hpp"
#include "qir/profiles.hpp"
#include "runtime/runtime.hpp"

#include <iostream>

namespace {

const char* kProgram = R"(OPENQASM 3;
include "stdgates.inc";

qubit[4] q;
bit[4] c;

// Layered state preparation: classical FOR loops with the loop variable
// used in both the qubit index and the rotation angle.
for int layer in [0:2] {
  for int i in [0:3] {
    ry(pi * (layer + 1) / 8) q[i];
  }
  for int i in [0:2] {
    cx q[i], q[i+1];
  }
}

// Mid-circuit measurement with feedback (adaptive profile).
c[0] = measure q[0];
if (c[0] == 1) {
  x q[0];
}

for int i in [0:3] {
  c[i] = measure q[i];
}
)";

} // namespace

int main() {
  using namespace qirkit;

  std::cout << "=== OpenQASM 3 input ===\n" << kProgram << "\n";

  ir::Context ctx;
  auto module = qasm::compileQasm3(ctx, kProgram);
  std::cout << "=== after lowering to QIR ===\n";
  std::cout << "blocks: " << module->entryPoint()->blocks().size()
            << " (the FOR loops are real IR loops), instructions: "
            << module->instructionCount() << ", profile: "
            << qir::profileName(qir::detectProfile(*module)) << "\n\n";

  const std::size_t sweeps = qir::transformDirect(*module);
  std::cout << "=== after the stock classical pipeline (" << sweeps
            << " sweeps) ===\n";
  std::cout << "blocks: " << module->entryPoint()->blocks().size()
            << ", instructions: " << module->instructionCount()
            << ", profile: " << qir::profileName(qir::detectProfile(*module))
            << "\n";
  const circuit::Circuit c = qir::importFromModule(*module);
  std::cout << "circuit view: " << c.summary() << "\n\n";

  std::cout << "=== 500 shots through the runtime ===\n";
  std::map<std::string, unsigned> histogram;
  for (unsigned shot = 0; shot < 500; ++shot) {
    interp::Interpreter interp(*module);
    runtime::QuantumRuntime rt(100 + shot);
    rt.bind(interp);
    interp.runEntryPoint();
    ++histogram[rt.outputBitString()];
  }
  unsigned shown = 0;
  for (const auto& [bits, count] : histogram) {
    std::cout << "  " << bits << ": " << count << "\n";
    if (++shown >= 8) {
      std::cout << "  ... (" << histogram.size() - shown << " more)\n";
      break;
    }
  }
  return 0;
}
