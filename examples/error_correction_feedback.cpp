/// \file error_correction_feedback.cpp
/// §IV.B motivation: "in the realm of error correction, where conditional
/// gate applications based on intermediate measurements must be performed
/// on the quantum computer to ensure low latency."
///
/// A 3-qubit bit-flip repetition code cycle: encode, inject an error,
/// extract the syndrome, and apply classically conditioned corrections.
/// The program is exported to adaptive-profile QIR, checked against two
/// co-processor latency models and a coherence budget (§IV.B's rejection
/// obligation), and then executed through the runtime.
#include "circuit/generators.hpp"
#include "hybrid/hybrid.hpp"
#include "ir/printer.hpp"
#include "qir/exporter.hpp"
#include "qir/profiles.hpp"
#include "runtime/runtime.hpp"

#include <iostream>
#include <numbers>

int main() {
  using namespace qirkit;

  std::cout << "=== 3-qubit repetition code with syndrome feedback ===\n";
  for (unsigned errorQubit = 0; errorQubit <= 3; ++errorQubit) {
    // Logical |1>; error on data qubit `errorQubit` (3 = no error).
    const circuit::Circuit cycle =
        circuit::repetitionCodeCycle(std::numbers::pi, errorQubit);

    ir::Context ctx;
    qir::ExportOptions options;
    options.recordOutput = false;
    const auto module = qir::exportCircuit(ctx, cycle, options);
    const qir::Profile profile = qir::detectProfile(*module);

    // §IV.B: is the feedback executable within the coherence budget?
    const auto feasibility = hybrid::checkFeasibility(
        *module, hybrid::LatencyModel::superconductingFPGA(),
        /*coherenceBudgetNs=*/5000.0);

    interp::Interpreter interp(*module);
    runtime::QuantumRuntime rt(42 + errorQubit);
    rt.bind(interp);
    interp.runEntryPoint();

    std::string syndrome;
    syndrome += rt.resultValue(1) ? '1' : '0';
    syndrome += rt.resultValue(0) ? '1' : '0';
    std::string data;
    data += rt.resultValue(4) ? '1' : '0';
    data += rt.resultValue(3) ? '1' : '0';
    data += rt.resultValue(2) ? '1' : '0';
    std::cout << "error on "
              << (errorQubit < 3 ? "q" + std::to_string(errorQubit)
                                 : std::string("none"))
              << ": profile=" << qir::profileName(profile) << ", feedback paths="
              << feasibility.paths.size() << ", worst=" << feasibility.worstPathNs
              << " ns, feasible=" << (feasibility.feasible ? "yes" : "NO")
              << ", syndrome=" << syndrome << ", corrected data=" << data
              << (data == "111" ? " (ok)" : " (CORRECTION FAILED)") << "\n";
  }

  // The rejection case: the same program against an unrealistically tight
  // coherence budget must be rejected, as §IV.B demands.
  {
    ir::Context ctx;
    qir::ExportOptions options;
    options.recordOutput = false;
    const auto module = qir::exportCircuit(
        ctx, circuit::repetitionCodeCycle(std::numbers::pi, 0), options);
    const auto tight = hybrid::checkFeasibility(
        *module, hybrid::LatencyModel::superconductingFPGA(),
        /*coherenceBudgetNs=*/10.0);
    std::cout << "\nwith a 10 ns coherence budget: feasible="
              << (tight.feasible ? "yes (BUG)" : "no — program rejected") << "\n";
    if (!tight.reasons.empty()) {
      std::cout << "reason: " << tight.reasons.front() << "\n";
    }
  }

  // Show the adaptive-profile QIR for the error-free cycle.
  {
    ir::Context ctx;
    qir::ExportOptions options;
    options.recordOutput = false;
    const auto module = qir::exportCircuit(
        ctx, circuit::repetitionCodeCycle(std::numbers::pi, 3), options);
    std::cout << "\n=== adaptive-profile QIR (beginning) ===\n";
    const std::string printed = ir::printModule(*module);
    std::cout << printed.substr(0, 1600) << "...\n";
  }
  return 0;
}
