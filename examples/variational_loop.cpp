/// \file variational_loop.cpp
/// §II.B motivation: "For near-term applications, this allows to describe
/// variational quantum algorithms, where the quantum circuit is part of a
/// larger classical optimization loop."
///
/// A VQE-style program: the classical parameter loop is expressed *in the
/// IR* (a real FOR loop over iterations whose rotation angle depends on
/// the induction variable). The program is executed twice — raw, and after
/// the classical pipeline (§II.C's "free" optimizations) — demonstrating
/// identical quantum behaviour with a fraction of the interpreted
/// classical work.
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "qir/compile.hpp"
#include "runtime/runtime.hpp"

#include <iostream>
#include <string>

namespace {

/// Build the hybrid program: `for (i = 0; i < iterations; ++i) { RY(0.1*i)
/// on each qubit; CX ladder; }` followed by measurement of qubit 0.
std::string buildProgram(unsigned iterations, unsigned qubits) {
  std::string s = R"(
declare void @__quantum__qis__ry__body(double, ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() #0 {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %cond = icmp slt i64 %i, )" + std::to_string(iterations) + R"(
  br i1 %cond, label %kernel, label %exit
kernel:
  %fi = sitofp i64 %i to double
  %theta = fmul double %fi, 0.1
)";
  for (unsigned q = 0; q < qubits; ++q) {
    s += "  call void @__quantum__qis__ry__body(double %theta, ptr inttoptr (i64 " +
         std::to_string(q) + " to ptr))\n";
  }
  for (unsigned q = 0; q + 1 < qubits; ++q) {
    s += "  call void @__quantum__qis__cnot__body(ptr inttoptr (i64 " +
         std::to_string(q) + " to ptr), ptr inttoptr (i64 " + std::to_string(q + 1) +
         " to ptr))\n";
  }
  s += R"(  br label %latch
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}
attributes #0 = { "entry_point" }
)";
  return s;
}

} // namespace

int main() {
  using namespace qirkit;
  constexpr unsigned kIterations = 16;
  constexpr unsigned kQubits = 4;
  const std::string program = buildProgram(kIterations, kQubits);

  std::cout << "=== hybrid variational-loop QIR (" << kIterations
            << " iterations x " << kQubits << " qubits) ===\n";

  // Route 1: interpret the program as written (classical loop included).
  ir::Context ctxA;
  const auto rawModule = ir::parseModule(ctxA, program);
  const runtime::RunResult raw = runtime::runQIRModule(*rawModule, 1);
  std::cout << "raw:       " << raw.stats.gatesApplied << " gates, "
            << raw.interpStats.instructionsExecuted
            << " interpreted instructions, "
            << rawModule->instructionCount() << " program instructions\n";

  // Route 2: run the classical pipeline first (§III.B direct
  // transformation), then interpret.
  ir::Context ctxB;
  auto optModule = ir::parseModule(ctxB, program);
  const std::size_t sweeps = qir::transformDirect(*optModule);
  const runtime::RunResult optimized = runtime::runQIRModule(*optModule, 1);
  std::cout << "optimized: " << optimized.stats.gatesApplied << " gates, "
            << optimized.interpStats.instructionsExecuted
            << " interpreted instructions, " << optModule->instructionCount()
            << " program instructions (after " << sweeps << " pipeline sweeps)\n";

  if (raw.stats.gatesApplied != optimized.stats.gatesApplied) {
    std::cerr << "ERROR: optimization changed the quantum program!\n";
    return 1;
  }
  std::cout << "\nquantum behaviour identical; classical interpretation work "
            << "reduced by "
            << (raw.interpStats.instructionsExecuted -
                optimized.interpStats.instructionsExecuted)
            << " instructions ("
            << 100.0 *
                   static_cast<double>(raw.interpStats.instructionsExecuted -
                                       optimized.interpStats.instructionsExecuted) /
                   static_cast<double>(raw.interpStats.instructionsExecuted)
            << "%)\n\n";

  std::cout << "=== first lines of the optimized module ===\n";
  const std::string printed = ir::printModule(*optModule);
  std::cout << printed.substr(0, 1200) << "...\n";
  return 0;
}
