/// Service-mode throughput: `qirkit serve` answering cached submits over
/// its Unix-domain socket vs the one-CLI-process-per-request baseline the
/// daemon replaces. The baseline spawns the real `qirkit run` binary per
/// iteration (fork/exec + dynamic loading + cold parse/compile), which is
/// exactly the workflow `serve` exists to amortize; a second in-process
/// reference isolates just the parse+compile cost with no process spawn.
/// The served path pays the socket round-trip and the admission queue but
/// reuses the shared parsed-program registry and compile cache, which is
/// where the (expected >= 5x) win comes from on a cached workload.
#include "ir/context.hpp"
#include "ir/parser.hpp"
#include "qasm/parser.hpp"
#include "qir/exporter.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/telemetry/telemetry.hpp"
#include "vm/cache.hpp"
#include "vm/executor.hpp"

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"

extern char** environ;

namespace {

using namespace qirkit;

/// A deep-but-narrow workload (4 qubits, 300 gates): the per-request cost
/// a cold process pays is dominated by spawn + parse + export + bytecode
/// compilation, which is exactly what the daemon's program registry and
/// compile cache amortize. Simulation itself is cheap (16 amplitudes) and
/// paid by both sides, so the ratio isolates the caching win.
std::string workloadText() {
  std::string s = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                  "qreg q[4];\ncreg c[4];\n";
  for (int i = 0; i < 150; ++i) {
    const std::string a = std::to_string(i % 4);
    const std::string b = std::to_string((i + 1) % 4);
    s += "h q[" + a + "];\ncx q[" + a + "], q[" + b + "];\n";
  }
  s += "measure q -> c;\n";
  return s;
}

const std::string& workloadQasm() {
  static const std::string text = workloadText();
  return text;
}

constexpr std::uint64_t kShots = 100;

/// Per-iteration latency distribution for one benchmark, kept out of the
/// global telemetry registry (each repetition constructs its own). The
/// power-of-two buckets cost one increment per iteration and give the
/// report the tail the mean hides.
using LatencyTally = telemetry::LatencyHistogram;

/// Run \p body once and record its wall time.
template <typename Body>
void timeInto(LatencyTally& tally, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  tally.recordUnchecked(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

/// Attach p50/p95/p99 iteration-latency counters to the row. kAvgThreads
/// keeps threaded benchmarks reporting a per-thread percentile instead of
/// a meaningless sum.
void reportPercentiles(benchmark::State& state, const LatencyTally& tally) {
  const auto q = [&](double p) {
    return benchmark::Counter(static_cast<double>(tally.quantileNs(p)),
                              benchmark::Counter::kAvgThreads);
  };
  state.counters["p50_ns"] = q(0.50);
  state.counters["p95_ns"] = q(0.95);
  state.counters["p99_ns"] = q(0.99);
}

/// One daemon shared by every serve benchmark in this process, started on
/// first use and torn down at exit through the Server destructor.
service::Server& daemon() {
  static std::unique_ptr<service::Server> server = [] {
    service::ServerOptions options;
    options.socketPath =
        "/tmp/qirkit_bench_serve_" + std::to_string(::getpid()) + ".sock";
    options.runners = 2;
    options.poolThreads = 2;
    auto s = std::make_unique<service::Server>(options);
    s->start();
    return s;
  }();
  return *server;
}

std::string submitLine(const std::string& tenant, const std::string& ref) {
  service::SubmitRequest request;
  request.tenant = tenant;
  request.programRef = ref;
  request.shots = kShots;
  request.seed = 7;
  return service::submitRequestJson(request);
}

/// Register the workload once and return its content id.
std::string registerProgram(service::Client& client) {
  service::SubmitRequest request;
  request.tenant = "bench";
  request.program = workloadQasm();
  request.shots = kShots;
  request.seed = 7;
  const service::json::Value response =
      service::json::parse(client.call(service::submitRequestJson(request)));
  return response.find("program_id")->string;
}

double cacheHitRate() {
  const vm::CompileCache::Stats stats = daemon().cache().stats();
  const std::uint64_t lookups = stats.hits + stats.coalesced + stats.misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(stats.hits + stats.coalesced) /
                            static_cast<double>(lookups);
}

/// Locate the qirkit CLI next to this benchmark binary (build/bench/
/// bench_serve -> build/tools/qirkit); QIRKIT_BIN overrides.
std::string qirkitBinaryPath() {
  if (const char* env = ::getenv("QIRKIT_BIN"); env != nullptr && *env != '\0')
    return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0)
    return {};
  std::string self(buf, static_cast<std::size_t>(n));
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos)
    return {};
  const std::string candidate =
      self.substr(0, slash) + "/../tools/qirkit";
  return ::access(candidate.c_str(), X_OK) == 0 ? candidate : std::string();
}

/// The workload written to disk once for the per-process baseline, removed
/// at exit.
const std::string& workloadFile() {
  static const std::string path = [] {
    std::string p =
        "/tmp/qirkit_bench_serve_" + std::to_string(::getpid()) + ".qasm";
    std::ofstream out(p);
    out << workloadQasm();
    return p;
  }();
  static const struct Cleanup {
    const std::string& path;
    ~Cleanup() { ::unlink(path.c_str()); }
  } cleanup{path};
  return path;
}

/// Run one `qirkit run` child to completion with output discarded.
/// Returns false if spawning or the child failed.
bool runCliOnce(const std::string& bin) {
  std::vector<std::string> args = {bin,  "run",     workloadFile(),
                                   "--shots", "100", "--seed", "7"};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args)
    argv.push_back(a.data());
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, "/dev/null",
                                   O_WRONLY, 0);
  posix_spawn_file_actions_addopen(&actions, STDERR_FILENO, "/dev/null",
                                   O_WRONLY, 0);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, bin.c_str(), &actions, nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  if (rc != 0)
    return false;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid)
    return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// The served hot path: persistent connection, program resubmitted by
/// content id, every request a compile-cache + program-registry hit.
void BM_ServeSubmitCached(benchmark::State& state) {
  service::Client client(daemon().options().socketPath);
  const std::string ref = registerProgram(client);
  const std::string line = submitLine("bench", ref);
  LatencyTally tally{"bench.serve.cached", telemetry::Unregistered{}};
  for (auto _ : state) {
    timeInto(tally, [&] { benchmark::DoNotOptimize(client.call(line)); });
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] = cacheHitRate();
  state.counters["shots_per_request"] = static_cast<double>(kShots);
  reportPercentiles(state, tally);
}
BENCHMARK(BM_ServeSubmitCached)->UseRealTime()->Unit(benchmark::kMicrosecond);

/// Several tenants hammering the daemon at once over their own
/// connections: measures multiplexing of the queue, runners, and the
/// shared pool rather than single-connection latency.
void BM_ServeConcurrentTenants(benchmark::State& state) {
  service::Client client(daemon().options().socketPath);
  const std::string ref = registerProgram(client);
  const std::string line =
      submitLine("tenant" + std::to_string(state.thread_index()), ref);
  LatencyTally tally{"bench.serve.concurrent", telemetry::Unregistered{}};
  for (auto _ : state) {
    timeInto(tally, [&] { benchmark::DoNotOptimize(client.call(line)); });
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      benchmark::Counter(cacheHitRate(), benchmark::Counter::kAvgThreads);
  reportPercentiles(state, tally);
}
BENCHMARK(BM_ServeConcurrentTenants)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// The baseline the daemon replaces: one `qirkit run` process per request,
/// each paying fork/exec + dynamic loading + cold parse + compile before a
/// single shot executes.
void BM_ServePerProcessBaseline(benchmark::State& state) {
  const std::string bin = qirkitBinaryPath();
  if (bin.empty()) {
    state.SkipWithError("qirkit CLI not found next to bench_serve "
                        "(set QIRKIT_BIN to override)");
    return;
  }
  LatencyTally tally{"bench.serve.baseline", telemetry::Unregistered{}};
  for (auto _ : state) {
    bool ok = true;
    timeInto(tally, [&] { ok = runCliOnce(bin); });
    if (!ok) {
      state.SkipWithError("qirkit run child failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["shots_per_request"] = static_cast<double>(kShots);
  reportPercentiles(state, tally);
}
BENCHMARK(BM_ServePerProcessBaseline)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// In-process reference: the same cold parse + uncached compile + execute
/// a fresh CLI process performs, minus the spawn. Isolates how much of the
/// per-process cost is compilation (amortized by the daemon's caches)
/// versus process startup.
void BM_ServeColdCompileInProcess(benchmark::State& state) {
  LatencyTally tally{"bench.serve.cold", telemetry::Unregistered{}};
  for (auto _ : state) {
    timeInto(tally, [&] {
      ir::Context ctx;
      const circuit::Circuit c = qasm::parse(workloadQasm());
      qir::ExportOptions exportOptions;
      exportOptions.addressing = qir::Addressing::Static;
      const auto module = qir::exportCircuit(ctx, c, exportOptions);
      vm::ShotOptions options;
      options.shots = kShots;
      options.seed = 7;
      options.useCompileCache = false; // a fresh process has an empty cache
      benchmark::DoNotOptimize(vm::runShots(*module, options));
    });
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["shots_per_request"] = static_cast<double>(kShots);
  reportPercentiles(state, tally);
}
BENCHMARK(BM_ServeColdCompileInProcess)->Unit(benchmark::kMicrosecond);

// --- Overload protection under hostile load --------------------------------

/// A 30-qubit program whose predicted statevector (2^30 amplitudes at 16
/// bytes each = 16 GiB) dwarfs the overload daemon's memory budget: the
/// admission guard must reject it upfront, before any allocation.
const std::string& oversizedQasm() {
  static const std::string text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                                  "qreg q[30];\ncreg c[30];\nh q[0];\n"
                                  "measure q -> c;\n";
  return text;
}

/// A daemon with deliberately tight limits for the overload scenario: a
/// small memory budget (any job >= 22 qubits is over) and a per-tenant
/// pending quota the hostile tenants will sustain 4x over.
service::Server& overloadDaemon() {
  static std::unique_ptr<service::Server> server = [] {
    service::ServerOptions options;
    options.socketPath =
        "/tmp/qirkit_bench_overload_" + std::to_string(::getpid()) + ".sock";
    // One runner so the in-budget tenant's jobs never share the simulation
    // pool with hostile work: protection has to come from admission (quota
    // and memory rejects) and queue TTL, which is exactly what the
    // throughput ratio measures.
    options.runners = 1;
    options.poolThreads = 2;
    options.memoryBudgetBytes = 64ULL << 20U;
    options.queue.tenantMaxPending = 1;
    options.queue.maxShotsPerJob = 100'000'000;
    auto s = std::make_unique<service::Server>(options);
    s->start();
    return s;
  }();
  return *server;
}

std::string overloadSubmitLine(const std::string& tenant,
                               const std::string& ref, std::uint64_t shots,
                               std::uint64_t deadlineMs) {
  service::SubmitRequest request;
  request.tenant = tenant;
  request.programRef = ref;
  request.shots = shots;
  request.seed = 11;
  // Resim defeats the terminal-measurement sampling fast path, so shot
  // count translates into real runner occupancy.
  request.execMode = vm::ExecMode::Resim;
  request.deadlineMs = deadlineMs;
  return service::submitRequestJson(request);
}

struct OverloadTally {
  std::atomic<std::uint64_t> deadlineRejects{0};
  std::atomic<std::uint64_t> resourceRejects{0};
  std::atomic<std::uint64_t> retryHints{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> unexpected{0};
};

/// Bucket one hostile response: a deadline cut, a structured overload
/// rejection (counting retry_after_ms hints), a completion, or — the
/// failure mode this benchmark exists to catch — anything else.
void classifyHostileResponse(const std::string& line, OverloadTally& tally) {
  const service::json::Value response = service::json::parse(line);
  if (const service::json::Value* ok = response.find("ok");
      ok != nullptr && ok->boolean) {
    tally.completed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (response.find("retry_after_ms") != nullptr) {
    tally.retryHints.fetch_add(1, std::memory_order_relaxed);
  }
  const service::json::Value* error = response.find("error");
  const service::json::Value* code =
      error == nullptr ? nullptr : error->find("code");
  if (code != nullptr && code->string == "deadline") {
    tally.deadlineRejects.fetch_add(1, std::memory_order_relaxed);
  } else if (code != nullptr && code->string == "resource-limit") {
    tally.resourceRejects.fetch_add(1, std::memory_order_relaxed);
  } else {
    tally.unexpected.fetch_add(1, std::memory_order_relaxed);
  }
}

/// The pause the steady tenant leaves between requests (applied to the
/// baseline and the contended phase alike, so the ratio stays fair): it
/// keeps the serial client from racing the runner's pending-slot release
/// at tenantMaxPending == 1, and is negligible against the ~300 ms jobs.
constexpr std::chrono::milliseconds kSteadyGap{1};

double measureRps(service::Client& client, const std::string& line,
                  int calls) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < calls; ++i) {
    benchmark::DoNotOptimize(client.call(line));
    std::this_thread::sleep_for(kSteadyGap);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return secs <= 0.0 ? 0.0 : static_cast<double>(calls) / secs;
}

/// The overload scenario from the robustness work: an in-budget tenant's
/// throughput is measured uncontended, then again while 4 hostile tenants
/// sustain 4x their pending quota (4 connections each against a quota of
/// 1), alternating 2M-shot jobs with a 1 ms deadline and 30-qubit programs
/// the memory guard must turn away. The daemon must never crash, every
/// hostile rejection must be structured (error[deadline] /
/// error[resource-limit], retry_after_ms on the retryable ones), and the
/// in-budget tenant should keep >= 80% of its uncontended throughput —
/// reported as `throughput_ratio`.
void BM_ServeOverload(benchmark::State& state) {
  service::Server& server = overloadDaemon();
  service::ClientOptions retrying;
  retrying.connectRetries = 5;
  service::Client steady(server.options().socketPath, retrying);
  const std::string ref = registerProgram(steady);
  // Heavy enough (~tens of ms of resim) that per-request queueing noise
  // does not swamp the signal; no deadline, so every request completes.
  const std::string steadyLine = overloadSubmitLine("steady", ref, 10'000, 0);

  for (int i = 0; i < 3; ++i) {
    benchmark::DoNotOptimize(steady.call(steadyLine)); // warm the caches
  }
  const double baselineRps = measureRps(steady, steadyLine, 10);

  OverloadTally overloadTally;
  std::atomic<bool> stop{false};
  std::vector<std::thread> hostiles;
  for (int tenant = 0; tenant < 4; ++tenant) {
    for (int conn = 0; conn < 4; ++conn) {
      hostiles.emplace_back([&server, &retrying, &ref, &overloadTally, &stop,
                             tenant, conn] {
        const std::string name = "hostile" + std::to_string(tenant);
        try {
          service::Client client(server.options().socketPath, retrying);
          const std::string deadlineLine =
              overloadSubmitLine(name, ref, 2'000'000, 1);
          const std::string oversizeLine = [&] {
            service::SubmitRequest request;
            request.tenant = name;
            request.program = oversizedQasm();
            request.shots = 100;
            request.seed = 11;
            return service::submitRequestJson(request);
          }();
          bool big = (conn % 2) == 0;
          while (!stop.load(std::memory_order_relaxed)) {
            classifyHostileResponse(
                client.call(big ? deadlineLine : oversizeLine), overloadTally);
            big = !big;
            // Sustained pressure, not a pure reject spin: ~40 attempts/s
            // per connection keeps every hostile tenant far over quota
            // without the rejection path itself monopolizing the CPU.
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
          }
        } catch (const std::exception&) {
          overloadTally.unexpected.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }

  // Let the hostile load ramp before measuring the in-budget tenant.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  LatencyTally tally{"bench.serve.overload", telemetry::Unregistered{}};
  std::uint64_t contendedCalls = 0;
  const auto contendedStart = std::chrono::steady_clock::now();
  for (auto _ : state) {
    timeInto(tally, [&] { benchmark::DoNotOptimize(steady.call(steadyLine)); });
    std::this_thread::sleep_for(kSteadyGap);
    ++contendedCalls;
  }
  const double contendedSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    contendedStart)
          .count();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : hostiles) {
    t.join();
  }

  // The daemon must still be alive and serving in-budget work. Retry a
  // few times: the last hostile pending slots may still be draining.
  bool aliveAfterLoad = false;
  for (int attempt = 0; attempt < 5 && !aliveAfterLoad; ++attempt) {
    const service::json::Value after =
        service::json::parse(steady.call(steadyLine));
    const service::json::Value* ok = after.find("ok");
    aliveAfterLoad = ok != nullptr && ok->boolean;
    if (!aliveAfterLoad) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (!aliveAfterLoad) {
    state.SkipWithError("daemon stopped serving in-budget work after load");
    return;
  }
  if (overloadTally.unexpected.load() != 0) {
    state.SkipWithError("hostile load drew an unstructured response");
    return;
  }

  const double contendedRps =
      contendedSecs <= 0.0
          ? 0.0
          : static_cast<double>(contendedCalls) / contendedSecs;
  state.SetItemsProcessed(static_cast<std::int64_t>(contendedCalls));
  state.counters["baseline_rps"] = baselineRps;
  state.counters["contended_rps"] = contendedRps;
  state.counters["throughput_ratio"] =
      baselineRps <= 0.0 ? 0.0 : contendedRps / baselineRps;
  state.counters["hostile_deadline_rejects"] =
      static_cast<double>(overloadTally.deadlineRejects.load());
  state.counters["hostile_resource_rejects"] =
      static_cast<double>(overloadTally.resourceRejects.load());
  state.counters["hostile_retry_hints"] =
      static_cast<double>(overloadTally.retryHints.load());
  state.counters["hostile_completed"] =
      static_cast<double>(overloadTally.completed.load());
  reportPercentiles(state, tally);
}
BENCHMARK(BM_ServeOverload)
    ->Iterations(20)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  return qirkit::bench::runAndReport(&argc, argv, "bench_serve");
}
