/// Service-mode throughput: `qirkit serve` answering cached submits over
/// its Unix-domain socket vs the one-CLI-process-per-request baseline the
/// daemon replaces. The baseline spawns the real `qirkit run` binary per
/// iteration (fork/exec + dynamic loading + cold parse/compile), which is
/// exactly the workflow `serve` exists to amortize; a second in-process
/// reference isolates just the parse+compile cost with no process spawn.
/// The served path pays the socket round-trip and the admission queue but
/// reuses the shared parsed-program registry and compile cache, which is
/// where the (expected >= 5x) win comes from on a cached workload.
#include "ir/context.hpp"
#include "ir/parser.hpp"
#include "qasm/parser.hpp"
#include "qir/exporter.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "vm/cache.hpp"
#include "vm/executor.hpp"

#include <benchmark/benchmark.h>

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"

extern char** environ;

namespace {

using namespace qirkit;

/// A deep-but-narrow workload (4 qubits, 300 gates): the per-request cost
/// a cold process pays is dominated by spawn + parse + export + bytecode
/// compilation, which is exactly what the daemon's program registry and
/// compile cache amortize. Simulation itself is cheap (16 amplitudes) and
/// paid by both sides, so the ratio isolates the caching win.
std::string workloadText() {
  std::string s = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                  "qreg q[4];\ncreg c[4];\n";
  for (int i = 0; i < 150; ++i) {
    const std::string a = std::to_string(i % 4);
    const std::string b = std::to_string((i + 1) % 4);
    s += "h q[" + a + "];\ncx q[" + a + "], q[" + b + "];\n";
  }
  s += "measure q -> c;\n";
  return s;
}

const std::string& workloadQasm() {
  static const std::string text = workloadText();
  return text;
}

constexpr std::uint64_t kShots = 100;

/// One daemon shared by every serve benchmark in this process, started on
/// first use and torn down at exit through the Server destructor.
service::Server& daemon() {
  static std::unique_ptr<service::Server> server = [] {
    service::ServerOptions options;
    options.socketPath =
        "/tmp/qirkit_bench_serve_" + std::to_string(::getpid()) + ".sock";
    options.runners = 2;
    options.poolThreads = 2;
    auto s = std::make_unique<service::Server>(options);
    s->start();
    return s;
  }();
  return *server;
}

std::string submitLine(const std::string& tenant, const std::string& ref) {
  service::SubmitRequest request;
  request.tenant = tenant;
  request.programRef = ref;
  request.shots = kShots;
  request.seed = 7;
  return service::submitRequestJson(request);
}

/// Register the workload once and return its content id.
std::string registerProgram(service::Client& client) {
  service::SubmitRequest request;
  request.tenant = "bench";
  request.program = workloadQasm();
  request.shots = kShots;
  request.seed = 7;
  const service::json::Value response =
      service::json::parse(client.call(service::submitRequestJson(request)));
  return response.find("program_id")->string;
}

double cacheHitRate() {
  const vm::CompileCache::Stats stats = daemon().cache().stats();
  const std::uint64_t lookups = stats.hits + stats.coalesced + stats.misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(stats.hits + stats.coalesced) /
                            static_cast<double>(lookups);
}

/// Locate the qirkit CLI next to this benchmark binary (build/bench/
/// bench_serve -> build/tools/qirkit); QIRKIT_BIN overrides.
std::string qirkitBinaryPath() {
  if (const char* env = ::getenv("QIRKIT_BIN"); env != nullptr && *env != '\0')
    return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0)
    return {};
  std::string self(buf, static_cast<std::size_t>(n));
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos)
    return {};
  const std::string candidate =
      self.substr(0, slash) + "/../tools/qirkit";
  return ::access(candidate.c_str(), X_OK) == 0 ? candidate : std::string();
}

/// The workload written to disk once for the per-process baseline, removed
/// at exit.
const std::string& workloadFile() {
  static const std::string path = [] {
    std::string p =
        "/tmp/qirkit_bench_serve_" + std::to_string(::getpid()) + ".qasm";
    std::ofstream out(p);
    out << workloadQasm();
    return p;
  }();
  static const struct Cleanup {
    const std::string& path;
    ~Cleanup() { ::unlink(path.c_str()); }
  } cleanup{path};
  return path;
}

/// Run one `qirkit run` child to completion with output discarded.
/// Returns false if spawning or the child failed.
bool runCliOnce(const std::string& bin) {
  std::vector<std::string> args = {bin,  "run",     workloadFile(),
                                   "--shots", "100", "--seed", "7"};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args)
    argv.push_back(a.data());
  argv.push_back(nullptr);

  posix_spawn_file_actions_t actions;
  posix_spawn_file_actions_init(&actions);
  posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, "/dev/null",
                                   O_WRONLY, 0);
  posix_spawn_file_actions_addopen(&actions, STDERR_FILENO, "/dev/null",
                                   O_WRONLY, 0);
  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, bin.c_str(), &actions, nullptr, argv.data(), environ);
  posix_spawn_file_actions_destroy(&actions);
  if (rc != 0)
    return false;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid)
    return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

/// The served hot path: persistent connection, program resubmitted by
/// content id, every request a compile-cache + program-registry hit.
void BM_ServeSubmitCached(benchmark::State& state) {
  service::Client client(daemon().options().socketPath);
  const std::string ref = registerProgram(client);
  const std::string line = submitLine("bench", ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(line));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] = cacheHitRate();
  state.counters["shots_per_request"] = static_cast<double>(kShots);
}
BENCHMARK(BM_ServeSubmitCached)->UseRealTime()->Unit(benchmark::kMicrosecond);

/// Several tenants hammering the daemon at once over their own
/// connections: measures multiplexing of the queue, runners, and the
/// shared pool rather than single-connection latency.
void BM_ServeConcurrentTenants(benchmark::State& state) {
  service::Client client(daemon().options().socketPath);
  const std::string ref = registerProgram(client);
  const std::string line =
      submitLine("tenant" + std::to_string(state.thread_index()), ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call(line));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      benchmark::Counter(cacheHitRate(), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ServeConcurrentTenants)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// The baseline the daemon replaces: one `qirkit run` process per request,
/// each paying fork/exec + dynamic loading + cold parse + compile before a
/// single shot executes.
void BM_ServePerProcessBaseline(benchmark::State& state) {
  const std::string bin = qirkitBinaryPath();
  if (bin.empty()) {
    state.SkipWithError("qirkit CLI not found next to bench_serve "
                        "(set QIRKIT_BIN to override)");
    return;
  }
  for (auto _ : state) {
    if (!runCliOnce(bin)) {
      state.SkipWithError("qirkit run child failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["shots_per_request"] = static_cast<double>(kShots);
}
BENCHMARK(BM_ServePerProcessBaseline)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// In-process reference: the same cold parse + uncached compile + execute
/// a fresh CLI process performs, minus the spawn. Isolates how much of the
/// per-process cost is compilation (amortized by the daemon's caches)
/// versus process startup.
void BM_ServeColdCompileInProcess(benchmark::State& state) {
  for (auto _ : state) {
    ir::Context ctx;
    const circuit::Circuit c = qasm::parse(workloadQasm());
    qir::ExportOptions exportOptions;
    exportOptions.addressing = qir::Addressing::Static;
    const auto module = qir::exportCircuit(ctx, c, exportOptions);
    vm::ShotOptions options;
    options.shots = kShots;
    options.seed = 7;
    options.useCompileCache = false; // a fresh process has an empty cache
    benchmark::DoNotOptimize(vm::runShots(*module, options));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["requests_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["shots_per_request"] = static_cast<double>(kShots);
}
BENCHMARK(BM_ServeColdCompileInProcess)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  return qirkit::bench::runAndReport(&argc, argv, "bench_serve");
}
