/// E1 — §III.A, Ex. 3: parsing routes. The custom base-profile pattern
/// parser (no LLVM/AST dependency) vs the full IR parse + AST import.
/// Expectation (paper): the pattern route is much cheaper but covers only
/// the base profile; the AST route costs more but handles everything the
/// IR can express.
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "qir/importer.hpp"
#include "support/source_location.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

circuit::Circuit workload(int kind, unsigned n) {
  switch (kind) {
  case 0: return circuit::ghz(n, true);
  case 1: return circuit::qft(n, true);
  default: return circuit::randomCircuit(n, 4, 99, true);
  }
}

const char* workloadName(int kind) {
  return kind == 0 ? "ghz" : kind == 1 ? "qft" : "random";
}

/// Cache of generated QIR texts keyed by (kind, n).
const std::string& textFor(int kind, unsigned n) {
  static std::map<std::pair<int, unsigned>, std::string> cache;
  auto& slot = cache[{kind, n}];
  if (slot.empty()) {
    slot = bench::qirTextFor(workload(kind, n), qir::Addressing::Dynamic);
  }
  return slot;
}

void BM_PatternRoute(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const std::string& text = textFor(kind, n);
  std::size_t gates = 0;
  for (auto _ : state) {
    const circuit::Circuit c = qir::importBaseProfileText(text);
    gates = c.gateCount();
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(gates);
  state.counters["chars"] = static_cast<double>(text.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_PatternRoute)
    ->ArgsProduct({{0, 1, 2}, {4, 16, 64, 256}})
    ->Unit(benchmark::kMicrosecond);

void BM_FullAstRoute(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const std::string& text = textFor(kind, n);
  for (auto _ : state) {
    ir::Context ctx;
    const auto module = ir::parseModule(ctx, text);
    benchmark::DoNotOptimize(qir::importFromModule(*module));
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["chars"] = static_cast<double>(text.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_FullAstRoute)
    ->ArgsProduct({{0, 1, 2}, {4, 16, 64, 256}})
    ->Unit(benchmark::kMicrosecond);

/// The parse-only part of the AST route (what plain LLVM would do).
void BM_FullParseOnly(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::string& text = textFor(0, n);
  for (auto _ : state) {
    ir::Context ctx;
    benchmark::DoNotOptimize(ir::parseModule(ctx, text));
  }
  state.counters["qubits"] = n;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_FullParseOnly)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E1 (paper III.A / Ex. 3): custom pattern parser vs full AST route\n";
  // Coverage check: the pattern route must reject adaptive-profile input
  // (the limitation the paper attributes to custom parsers).
  const std::string adaptive =
      bench::qirTextFor(qirkit::circuit::repetitionCodeCycle(0.5, 0),
                        qirkit::qir::Addressing::Static);
  bool rejected = false;
  try {
    (void)qirkit::qir::importBaseProfileText(adaptive);
  } catch (const qirkit::ParseError&) {
    rejected = true;
  }
  std::cout << "pattern route on adaptive-profile input: "
            << (rejected ? "rejected (as the paper predicts)" : "ACCEPTED — BUG")
            << "\n";
  {
    qirkit::ir::Context ctx;
    const auto module = qirkit::ir::parseModule(ctx, adaptive);
    const auto c = qirkit::qir::importFromModule(*module);
    std::cout << "full AST route on the same input: imported " << c.size()
              << " operations\n\n";
  }
  return qirkit::bench::runAndReport(&argc, argv, "bench_parse_routes");
}
