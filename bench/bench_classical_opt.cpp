/// E8 — §II.C: QIR inherits classical optimizations "for free". Compares
/// interpreting a hybrid variational-loop QIR program with and without the
/// classical pipeline (inline/mem2reg/SCCP/fold/unroll/simplify/DCE).
/// Expectation: identical quantum behaviour, far fewer interpreted
/// classical instructions after optimization.
#include "ir/parser.hpp"
#include "qir/compile.hpp"
#include "runtime/runtime.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

void BM_InterpretUnoptimized(benchmark::State& state) {
  const auto iterations = static_cast<unsigned>(state.range(0));
  ir::Context ctx;
  const auto module =
      ir::parseModule(ctx, bench::variationalLoopProgram(iterations, 4));
  std::uint64_t interpInstructions = 0;
  for (auto _ : state) {
    const runtime::RunResult result = runtime::runQIRModule(*module, 1);
    interpInstructions = result.interpStats.instructionsExecuted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["loop_iters"] = iterations;
  state.counters["interp_insts"] = static_cast<double>(interpInstructions);
}
BENCHMARK(BM_InterpretUnoptimized)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_InterpretOptimized(benchmark::State& state) {
  const auto iterations = static_cast<unsigned>(state.range(0));
  ir::Context ctx;
  auto module = ir::parseModule(ctx, bench::variationalLoopProgram(iterations, 4));
  qir::transformDirect(*module);
  std::uint64_t interpInstructions = 0;
  for (auto _ : state) {
    const runtime::RunResult result = runtime::runQIRModule(*module, 1);
    interpInstructions = result.interpStats.instructionsExecuted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["loop_iters"] = iterations;
  state.counters["interp_insts"] = static_cast<double>(interpInstructions);
}
BENCHMARK(BM_InterpretOptimized)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_PipelineCost(benchmark::State& state) {
  const auto iterations = static_cast<unsigned>(state.range(0));
  const std::string text = bench::variationalLoopProgram(iterations, 4);
  for (auto _ : state) {
    ir::Context ctx;
    auto module = ir::parseModule(ctx, text);
    benchmark::DoNotOptimize(qir::transformDirect(*module));
  }
  state.counters["loop_iters"] = iterations;
}
BENCHMARK(BM_PipelineCost)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E8 (paper II.C): classical optimizations inherited 'for free'\n";
  {
    qirkit::ir::Context ctxA;
    const auto unopt = qirkit::ir::parseModule(
        ctxA, qirkit::bench::variationalLoopProgram(32, 4));
    qirkit::ir::Context ctxB;
    auto opt = qirkit::ir::parseModule(
        ctxB, qirkit::bench::variationalLoopProgram(32, 4));
    qirkit::qir::transformDirect(*opt);
    const auto before = qirkit::runtime::runQIRModule(*unopt, 1);
    const auto after = qirkit::runtime::runQIRModule(*opt, 1);
    std::cout << "32-iteration variational loop: gates " << before.stats.gatesApplied
              << " -> " << after.stats.gatesApplied << " (must match), interpreted "
              << before.interpStats.instructionsExecuted << " -> "
              << after.interpStats.instructionsExecuted << " instructions\n\n";
  }
  return qirkit::bench::runAndReport(&argc, argv, "bench_classical_opt");
}
