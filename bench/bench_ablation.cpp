/// E10 (ablation) — the design choices DESIGN.md calls out, isolated:
///   * CSE on/off in the classical pipeline (instruction count on the
///     Ex. 2 dynamic-addressing pattern, which is full of repeated
///     load/element-ptr computations),
///   * circuit-level optimization on/off in the transpile route,
///   * qubit reuse on/off (required_num_qubits for sequential workloads),
///   * mapper topology (SWAP overhead line vs grid vs full).
#include "circuit/generators.hpp"
#include "circuit/mapping.hpp"
#include "circuit/optimizer.hpp"
#include "circuit/reuse.hpp"
#include "ir/parser.hpp"
#include "passes/pass.hpp"
#include "qir/compile.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

void runPipeline(ir::Module& module, bool withCSE) {
  passes::PassManager pm;
  pm.add(passes::createInlinerPass());
  pm.add(passes::createMem2RegPass());
  pm.add(passes::createSCCPPass());
  pm.add(passes::createConstantFoldPass());
  if (withCSE) {
    pm.add(passes::createCSEPass());
  }
  pm.add(passes::createSimplifyCFGPass());
  pm.add(passes::createLoopUnrollPass());
  pm.add(passes::createDCEPass());
  pm.runToFixpoint(module);
}

/// A classical helper with heavy expression redundancy over its arguments
/// (cannot constant-fold; only CSE can reduce it).
std::string redundantClassicalProgram(unsigned repetitions) {
  std::string s = "define i64 @f(i64 %a, i64 %b) {\n";
  std::string acc = "%b";
  for (unsigned i = 0; i < repetitions; ++i) {
    s += "  %m" + std::to_string(i) + " = mul i64 %a, %b\n";
    s += "  %p" + std::to_string(i) + " = add i64 %m" + std::to_string(i) +
         ", %a\n";
    s += "  %x" + std::to_string(i) + " = xor i64 " + acc + ", %p" +
         std::to_string(i) + "\n";
    acc = "%x" + std::to_string(i);
  }
  s += "  ret i64 " + acc + "\n}\n";
  return s;
}

void BM_PipelineCSE(benchmark::State& state) {
  const bool withCSE = state.range(0) != 0;
  const std::string text = redundantClassicalProgram(64);
  std::size_t instructions = 0;
  for (auto _ : state) {
    ir::Context ctx;
    auto module = ir::parseModule(ctx, text);
    runPipeline(*module, withCSE);
    instructions = module->instructionCount();
    benchmark::DoNotOptimize(instructions);
  }
  state.SetLabel(withCSE ? "with-cse" : "no-cse");
  state.counters["instructions_after"] = static_cast<double>(instructions);
}
BENCHMARK(BM_PipelineCSE)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CircuitOptimization(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  // A workload with redundancy: QFT followed by its own gates inverted
  // pairwise (H H etc.) plus zero rotations.
  circuit::Circuit c = circuit::qft(6, false);
  for (unsigned q = 0; q < 6; ++q) {
    c.h(q);
    c.h(q);
    c.rz(0.0, q);
  }
  std::size_t gates = 0;
  for (auto _ : state) {
    circuit::Circuit working = c;
    if (optimize) {
      circuit::optimizeCircuit(working);
    }
    gates = working.gateCount();
    benchmark::DoNotOptimize(working);
  }
  state.SetLabel(optimize ? "optimized" : "raw");
  state.counters["gates"] = static_cast<double>(gates);
}
BENCHMARK(BM_CircuitOptimization)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_QubitReuse(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  const auto experiments = static_cast<unsigned>(state.range(1));
  // Sequential prepare-measure experiments: the reuse pass should collapse
  // them onto a single hardware qubit.
  circuit::Circuit c(experiments, experiments);
  for (unsigned e = 0; e < experiments; ++e) {
    c.h(e);
    c.t(e);
    c.measure(e, e);
  }
  unsigned qubits = 0;
  for (auto _ : state) {
    if (reuse) {
      const circuit::ReuseResult result = circuit::reuseQubits(c);
      qubits = result.qubitsAfter;
      benchmark::DoNotOptimize(result);
    } else {
      qubits = c.numQubits();
      benchmark::DoNotOptimize(c);
    }
  }
  state.SetLabel(reuse ? "with-reuse" : "no-reuse");
  state.counters["required_qubits"] = qubits;
}
BENCHMARK(BM_QubitReuse)->ArgsProduct({{0, 1}, {4, 16, 64}})->Unit(benchmark::kMicrosecond);

void BM_MapperTopology(benchmark::State& state) {
  const auto n = 8U;
  const circuit::Circuit c =
      circuit::decomposeToCXBasis(circuit::randomCircuit(n, 6, 7, true));
  circuit::Target target = circuit::Target::line(n);
  switch (state.range(0)) {
  case 0: target = circuit::Target::line(n); break;
  case 1: target = circuit::Target::ring(n); break;
  case 2: target = circuit::Target::grid(2, 4); break;
  default: target = circuit::Target::fullyConnected(n); break;
  }
  std::size_t swaps = 0;
  for (auto _ : state) {
    const circuit::MappingResult result = circuit::mapCircuit(c, target);
    swaps = result.swapsInserted;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(target.name);
  state.counters["swaps"] = static_cast<double>(swaps);
}
BENCHMARK(BM_MapperTopology)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E10: ablations of qirkit design choices\n\n";
  return qirkit::bench::runAndReport(&argc, argv, "bench_ablation");
}
