/// E2 — §III.B, Ex. 4: loop unrolling with statically known bounds.
/// "Since QIR builds on the LLVM infrastructure, it is straight forward to
/// unroll any loops with statically known bounds … an optimization pass
/// does not have to handle the FOR-loop, but sees only the [N] individual
/// Hadamard gates." Measures pipeline cost vs N and asserts the resulting
/// gate count equals N.
#include "ir/parser.hpp"
#include "qir/compile.hpp"
#include "qir/importer.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

void BM_UnrollPipeline(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::string text = bench::ex4LoopProgram(n);
  std::size_t gates = 0;
  std::size_t instructionsAfter = 0;
  for (auto _ : state) {
    ir::Context ctx;
    auto module = ir::parseModule(ctx, text);
    qir::transformDirect(*module);
    instructionsAfter = module->instructionCount();
    gates = qir::importFromModule(*module).gateCount();
    benchmark::DoNotOptimize(gates);
  }
  if (gates != n) {
    state.SkipWithError("unrolled gate count does not match the loop bound");
  }
  state.counters["N"] = n;
  state.counters["gates"] = static_cast<double>(gates);
  state.counters["instructions_after"] = static_cast<double>(instructionsAfter);
}
BENCHMARK(BM_UnrollPipeline)
    ->Arg(10)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// The unroll pass alone (loop already in SSA form via mem2reg + SCCP).
void BM_UnrollPassOnly(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::string text = bench::ex4LoopProgram(n);
  for (auto _ : state) {
    state.PauseTiming();
    ir::Context ctx;
    auto module = ir::parseModule(ctx, text);
    passes::PassManager prep;
    prep.add(passes::createMem2RegPass());
    prep.run(*module);
    state.ResumeTiming();
    passes::PassManager pm;
    pm.add(passes::createLoopUnrollPass());
    pm.run(*module);
    benchmark::DoNotOptimize(module->instructionCount());
  }
  state.counters["N"] = n;
}
BENCHMARK(BM_UnrollPassOnly)
    ->Arg(10)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E2 (paper III.B / Ex. 4): FOR-loop unrolling, N = 10..4096\n";
  {
    ir::Context ctx;
    auto module = ir::parseModule(ctx, bench::ex4LoopProgram(10));
    const std::size_t before = module->instructionCount();
    qir::transformDirect(*module);
    const auto c = qir::importFromModule(*module);
    std::cout << "N=10: " << before << " instructions (4 blocks) -> "
              << module->instructionCount()
              << " instructions (1 block), circuit sees " << c.gateCount()
              << " H gates on " << c.numQubits() << " qubits\n\n";
  }
  return qirkit::bench::runAndReport(&argc, argv, "bench_loop_unroll");
}
