/// E4 — §III.C, Ex. 5: executing QIR programs. Interpreted QIR dispatching
/// into the simulator-backed runtime vs direct circuit simulation.
/// Expectation: the runtime route pays an interpretation overhead per gate
/// that shrinks (relatively) as qubit count grows and kernels dominate.
#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "runtime/runtime.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

namespace {

using namespace qirkit;

circuit::Circuit workload(int kind, unsigned n) {
  return kind == 0 ? circuit::ghz(n, true) : circuit::qft(n, true);
}

const char* workloadName(int kind) { return kind == 0 ? "ghz" : "qft"; }

void BM_DirectSimulation(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const circuit::Circuit c = workload(kind, n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::execute(c, seed++));
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(c.gateCount());
}
BENCHMARK(BM_DirectSimulation)
    ->ArgsProduct({{0, 1}, {4, 8, 12, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_InterpretedQIR(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  static std::map<std::pair<int, unsigned>, std::string> cache;
  auto& text = cache[{kind, n}];
  if (text.empty()) {
    text = bench::qirTextFor(workload(kind, n), qir::Addressing::Static, true);
  }
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  std::uint64_t seed = 1;
  std::uint64_t interpInstructions = 0;
  std::uint64_t gates = 0;
  for (auto _ : state) {
    const runtime::RunResult result = runtime::runQIRModule(*module, seed++);
    interpInstructions = result.interpStats.instructionsExecuted;
    gates = result.stats.gatesApplied;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["interp_insts_per_gate"] =
      gates > 0 ? static_cast<double>(interpInstructions) / static_cast<double>(gates)
                : 0.0;
}
BENCHMARK(BM_InterpretedQIR)
    ->ArgsProduct({{0, 1}, {4, 8, 12, 16}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E4 (paper III.C / Ex. 5): interpreted QIR + runtime vs "
               "direct circuit simulation\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
