/// E4 — §III.C, Ex. 5: executing QIR programs. Interpreted QIR dispatching
/// into the simulator-backed runtime vs direct circuit simulation vs the
/// bytecode VM (compile once via the content-addressed cache, execute
/// many). Expectation: the runtime route pays an interpretation overhead
/// per gate that shrinks (relatively) as qubit count grows and kernels
/// dominate; the VM removes most of the per-shot dispatch overhead, so
/// multi-shot batches (the realistic sampling workload) run well ahead of
/// the tree-walker.
#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "runtime/runtime.hpp"
#include "vm/cache.hpp"
#include "vm/executor.hpp"
#include "vm/vm.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

circuit::Circuit workload(int kind, unsigned n) {
  return kind == 0 ? circuit::ghz(n, true) : circuit::qft(n, true);
}

const char* workloadName(int kind) { return kind == 0 ? "ghz" : "qft"; }

void BM_DirectSimulation(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const circuit::Circuit c = workload(kind, n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::execute(c, seed++));
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(c.gateCount());
}
BENCHMARK(BM_DirectSimulation)
    ->ArgsProduct({{0, 1}, {4, 8, 12, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_InterpretedQIR(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  static std::map<std::pair<int, unsigned>, std::string> cache;
  auto& text = cache[{kind, n}];
  if (text.empty()) {
    text = bench::qirTextFor(workload(kind, n), qir::Addressing::Static, true);
  }
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  std::uint64_t seed = 1;
  std::uint64_t interpInstructions = 0;
  std::uint64_t gates = 0;
  for (auto _ : state) {
    const runtime::RunResult result = runtime::runQIRModule(*module, seed++);
    interpInstructions = result.interpStats.instructionsExecuted;
    gates = result.stats.gatesApplied;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["interp_insts_per_gate"] =
      gates > 0 ? static_cast<double>(interpInstructions) / static_cast<double>(gates)
                : 0.0;
}
BENCHMARK(BM_InterpretedQIR)
    ->ArgsProduct({{0, 1}, {4, 8, 12, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_BytecodeVM(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const std::string text =
      bench::qirTextFor(workload(kind, n), qir::Addressing::Static, true);
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  // Compile once (through the cache, as the CLI does); per "shot" only
  // the runtime and the VM's memory are reset.
  vm::Vm machine(vm::CompileCache::global().getOrCompile(*module));
  runtime::QuantumRuntime rt(0, nullptr);
  rt.bind(machine);
  std::uint64_t seed = 1;
  std::uint64_t gates = 0;
  for (auto _ : state) {
    rt.reset(seed++);
    machine.reset();
    machine.runEntryPoint();
    gates = rt.stats().gatesApplied;
    benchmark::DoNotOptimize(rt.outputBitString());
  }
  state.SetLabel(workloadName(kind));
  state.counters["qubits"] = n;
  state.counters["gates"] = static_cast<double>(gates);
}
BENCHMARK(BM_BytecodeVM)
    ->ArgsProduct({{0, 1}, {4, 8, 12, 16}})
    ->Unit(benchmark::kMicrosecond);

/// The acceptance workload: a 100-shot batch, one histogram — VM vs
/// interpreter through the same executor entry point.
void BM_ShotBatch(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const auto engine =
      state.range(2) == 0 ? vm::Engine::Interp : vm::Engine::Vm;
  const std::string text =
      bench::qirTextFor(workload(kind, n), qir::Addressing::Static, true);
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  vm::ShotOptions options;
  options.shots = 100;
  options.engine = engine;
  // This benchmark measures the per-shot engines, so it pins resim; the
  // auto default would route these terminal workloads to the sampling
  // fast path (measured separately by BM_ExecMode below).
  options.execMode = vm::ExecMode::Resim;
  for (auto _ : state) {
    options.seed += options.shots; // fresh shots each iteration
    benchmark::DoNotOptimize(vm::runShots(*module, options));
  }
  state.SetLabel(std::string(workloadName(kind)) + "/" +
                 vm::engineName(engine));
  state.counters["qubits"] = n;
  state.counters["shots"] = static_cast<double>(options.shots);
}
BENCHMARK(BM_ShotBatch)
    ->ArgsProduct({{0, 1}, {4, 8}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// The execution-mode acceptance workload: 1024 shots of a 20-qubit GHZ
/// state through the same executor entry point, per-shot resimulation vs
/// the terminal-measurement sampling fast path (simulate once, sample N).
/// Resim costs O(shots * gates * 2^n), sampling O(gates * 2^n + shots * n):
/// the shots_per_second counters are the headline comparison.
void BM_ExecMode(benchmark::State& state) {
  const vm::ExecMode mode =
      state.range(0) == 0 ? vm::ExecMode::Resim : vm::ExecMode::Sample;
  constexpr unsigned kQubits = 20;
  constexpr std::uint64_t kShots = 1024;
  static std::string text; // built once: the 20-qubit export is not free
  if (text.empty()) {
    text = bench::qirTextFor(circuit::ghz(kQubits, true),
                             qir::Addressing::Static, true);
  }
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  vm::ShotOptions options;
  options.shots = kShots;
  options.execMode = mode;
  std::uint64_t shotsCompleted = 0;
  for (auto _ : state) {
    options.seed += kShots;
    const vm::ShotBatchResult result = vm::runShots(*module, options);
    shotsCompleted += result.completedShots;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::string("ghz/") + vm::execModeName(mode));
  state.counters["qubits"] = kQubits;
  state.counters["shots"] = static_cast<double>(kShots);
  state.counters["shots_per_second"] = benchmark::Counter(
      static_cast<double>(shotsCompleted), benchmark::Counter::kIsRate);
}
// Resim re-simulates the 20-qubit state 1024 times — one iteration is
// plenty (and keeps the smoke run inside CI budgets).
BENCHMARK(BM_ExecMode)
    ->Arg(0)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecMode)->Arg(1)->Unit(benchmark::kMillisecond);

/// The gate-fusion acceptance workload: per-shot resimulation of a
/// rotation-dense 16-qubit circuit (four constant-angle rotations per
/// qubit per layer — a generic Euler unitary plus one — then a CX
/// ladder), fused vs --fusion=off. The static export turns every operand
/// into a compile-time constant, so the fusion pass folds each rotation
/// chain into a single 2x2 sweep (rule 1: 4 sweeps -> 1); the
/// shots_per_second ratio between the two rows is the headline number
/// (expected >= 2x).
circuit::Circuit rotationDense(unsigned n, unsigned layers) {
  circuit::Circuit c(n, n);
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < n; ++q) {
      c.rz(0.1 + 0.01 * q, q);
      c.rx(0.7 + 0.02 * layer, q);
      c.ry(0.4 + 0.03 * q, q);
      c.rz(0.3, q);
    }
    for (unsigned q = 0; q + 1 < n; ++q) {
      c.cx(q, q + 1);
    }
  }
  for (unsigned q = 0; q < n; ++q) {
    c.measure(q, q);
  }
  return c;
}

void BM_FusionResim(benchmark::State& state) {
  const bool fusion = state.range(0) != 0;
  constexpr unsigned kQubits = 16;
  constexpr unsigned kLayers = 8;
  constexpr std::uint64_t kShots = 32;
  static std::string text;
  if (text.empty()) {
    text = bench::qirTextFor(rotationDense(kQubits, kLayers),
                             qir::Addressing::Static, true);
  }
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  vm::ShotOptions options;
  options.shots = kShots;
  options.execMode = vm::ExecMode::Resim;
  options.fusion = fusion;
  std::uint64_t shotsCompleted = 0;
  for (auto _ : state) {
    options.seed += kShots;
    const vm::ShotBatchResult result = vm::runShots(*module, options);
    shotsCompleted += result.completedShots;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(fusion ? "rotdense/fused" : "rotdense/unfused");
  state.counters["qubits"] = kQubits;
  state.counters["shots"] = static_cast<double>(kShots);
  state.counters["shots_per_second"] = benchmark::Counter(
      static_cast<double>(shotsCompleted), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusionResim)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/// The dispatch-loop acceptance workload: instruction throughput of the
/// bytecode VM under the three dispatch configurations — the baseline
/// switch loop, the token-threaded (computed-goto) loop, and the threaded
/// loop with the superinstruction peephole on. Four programs: a
/// pure-classical spin loop (dispatch-dominated, but a short repeating
/// opcode cycle today's indirect-branch predictors memorize), a
/// dispatch-stress loop whose LCG-driven branching makes the opcode
/// stream unpredictable (the headline row: the instr_per_sec ratio
/// threaded+super vs switch is the acceptance number), the paper's
/// Ex. 4 FOR loop (classical loop skeleton around 1-arg gate calls),
/// and the §IV.B feedback program (straight-line classical chain).
/// Superinstructions keep exact step
/// accounting, so instructionsExecuted is identical across configs and
/// instr_per_sec differences are pure dispatch-overhead differences.
/// On toolchains without computed goto the threaded rows fall back to the
/// switch loop and the three rows converge.
void BM_Dispatch(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));
  const int config = static_cast<int>(state.range(1));
  static std::map<int, std::string> texts;
  auto& text = texts[kind];
  if (text.empty()) {
    text = kind == 0   ? bench::classicalSpinProgram(4096)
           : kind == 1 ? bench::dispatchStressProgram(4096)
           : kind == 2 ? bench::ex4LoopProgram(8)
                       : bench::feedbackProgram(512);
  }
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  vm::CompileOptions options;
  options.dispatch =
      config == 0 ? vm::DispatchMode::Switch : vm::DispatchMode::Threaded;
  options.superinstructions = config == 2;
  vm::Vm machine(vm::compileModule(*module, options));
  runtime::QuantumRuntime rt(0, nullptr);
  rt.bind(machine);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    rt.reset(seed++);
    machine.reset();
    benchmark::DoNotOptimize(machine.runEntryPoint());
  }
  const char* workload = kind == 0   ? "spin"
                         : kind == 1 ? "stress"
                         : kind == 2 ? "ex4loop"
                                     : "feedback";
  const char* loop = config == 0   ? "switch"
                     : config == 1 ? "threaded"
                                   : "threaded+super";
  state.SetLabel(std::string(workload) + "/" + loop);
  // Vm stats accumulate across runs: this is the batch total.
  state.counters["instr_per_sec"] = benchmark::Counter(
      static_cast<double>(machine.stats().instructionsExecuted),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dispatch)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E4 (paper III.C / Ex. 5): interpreted QIR + runtime vs "
               "direct circuit simulation vs bytecode VM\n\n";
  return qirkit::bench::runAndReport(&argc, argv, "bench_execute");
}
