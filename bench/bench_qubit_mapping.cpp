/// E6 — §IV.A: qubit mapping as "register allocation" for qubits. Measures
/// mapping time and SWAP overhead for different coupling topologies, and
/// demonstrates the rejection obligation for programs exceeding the
/// hardware qubit count.
#include "circuit/generators.hpp"
#include "circuit/mapping.hpp"
#include "circuit/optimizer.hpp"
#include "support/source_location.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;
using circuit::Target;

Target targetFor(int kind, unsigned n) {
  switch (kind) {
  case 0: return Target::line(n);
  case 1: return Target::grid((n + 3) / 4, 4);
  default: return Target::fullyConnected(n);
  }
}

void BM_MapCircuit(benchmark::State& state) {
  const int topology = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  const circuit::Circuit c =
      circuit::decomposeToCXBasis(circuit::qft(n, true));
  const Target target = targetFor(topology, n);
  std::size_t swaps = 0;
  for (auto _ : state) {
    const circuit::MappingResult result = circuit::mapCircuit(c, target);
    swaps = result.swapsInserted;
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(target.name);
  state.counters["qubits"] = n;
  state.counters["gates_in"] = static_cast<double>(c.gateCount());
  state.counters["swaps"] = static_cast<double>(swaps);
  state.counters["swap_overhead_pct"] =
      100.0 * static_cast<double>(swaps) /
      static_cast<double>(std::max<std::size_t>(1, c.twoQubitGateCount()));
}
BENCHMARK(BM_MapCircuit)
    ->ArgsProduct({{0, 1, 2}, {4, 8, 12, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_MapRandomCircuit(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const circuit::Circuit c =
      circuit::decomposeToCXBasis(circuit::randomCircuit(n, 8, 5, true));
  const Target target = Target::line(n);
  std::size_t swaps = 0;
  for (auto _ : state) {
    const circuit::MappingResult result = circuit::mapCircuit(c, target);
    swaps = result.swapsInserted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["qubits"] = n;
  state.counters["swaps"] = static_cast<double>(swaps);
}
BENCHMARK(BM_MapRandomCircuit)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E6 (paper IV.A): qubit mapping = register allocation for "
               "qubits\n";
  // Rejection check.
  bool rejected = false;
  try {
    (void)circuit::mapCircuit(qirkit::circuit::ghz(9, true),
                              Target::grid(2, 4));
  } catch (const qirkit::SemanticError& e) {
    rejected = true;
    std::cout << "9-qubit program on a 2x4 grid: rejected — " << e.what() << "\n";
  }
  if (!rejected) {
    std::cout << "9-qubit program on a 2x4 grid: ACCEPTED — BUG\n";
  }
  std::cout << "\n";
  return qirkit::bench::runAndReport(&argc, argv, "bench_qubit_mapping");
}
