/// E9 — Ex. 5 substrate: the statevector simulator behind the runtime
/// (the Lightning analog). Exponential scaling in qubit count and
/// thread-pool speedup of the gate kernels.
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

#include <benchmark/benchmark.h>

#include <iostream>
#include <thread>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

/// One brick layer: H on every qubit, then a CX ladder.
void applyLayer(sim::StateVector& state) {
  for (unsigned q = 0; q < state.numQubits(); ++q) {
    state.apply1(sim::gateH(), q);
  }
  for (unsigned q = 0; q + 1 < state.numQubits(); ++q) {
    state.applyControlled1(sim::gateX(), q, q + 1);
  }
}

void BM_LayerSequential(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  sim::StateVector sv(n);
  for (auto _ : state) {
    applyLayer(sv);
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.counters["qubits"] = n;
  state.counters["amplitudes"] = static_cast<double>(sv.dimension());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * (2U * n - 1U)));
}
BENCHMARK(BM_LayerSequential)
    ->Arg(10)
    ->Arg(14)
    ->Arg(18)
    ->Arg(20)
    ->Arg(22)
    ->Unit(benchmark::kMillisecond);

void BM_LayerThreaded(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ThreadPool pool(threads);
  sim::StateVector sv(n, &pool);
  for (auto _ : state) {
    applyLayer(sv);
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.counters["qubits"] = n;
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_LayerThreaded)
    ->ArgsProduct({{18, 20, 22},
                   {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

/// The same H+CX layer on the stabilizer simulator: polynomial scaling
/// lets it run hundreds of qubits where the dense simulator stops at 30 —
/// the "classical simulation techniques" swap of Ex. 5.
void BM_StabilizerLayer(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  sim::StabilizerSimulator sv(n);
  for (auto _ : state) {
    for (unsigned q = 0; q < n; ++q) {
      sv.h(q);
    }
    for (unsigned q = 0; q + 1 < n; ++q) {
      sv.cx(q, q + 1);
    }
    benchmark::DoNotOptimize(sv.gateCount());
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_StabilizerLayer)
    ->Arg(22)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_Measurement(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  SplitMix64 rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    sim::StateVector sv(n);
    applyLayer(sv);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sv.measure(0, rng));
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_Measurement)->Arg(10)->Arg(16)->Arg(20)->Unit(benchmark::kMicrosecond);

/// The gate-fusion kernels vs the gate-by-gate sweeps they replace. Each
/// mode applies the same unitary (a 3-rotation chain per qubit):
///   0: three apply1 sweeps per qubit (what unfused execution does),
///   1: one precomposed apply1 per qubit (fusion rule 1),
///   2: one precomposed apply2 per qubit pair folding all six gates
///      (fusion rule 2 — 6 sweeps become 1),
///   3: one applyDiagonal per 6-qubit group vs six RZ sweeps (rule 3;
///      timed side is the fused one, mode 4 is its unfused reference).
void BM_Fusion(benchmark::State& state) {
  const auto mode = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  sim::StateVector sv(n);
  applyLayer(sv); // spread population so kernels see a dense state
  const sim::GateMatrix2 chain = sim::matmul(
      sim::gateRZ(0.3), sim::matmul(sim::gateRX(0.7), sim::gateRZ(0.1)));
  sim::GateMatrix4 window = sim::matmul(
      sim::embed2(chain, 1), sim::embed2(chain, 0));
  std::vector<sim::Complex> diag(1U << 6, 1.0);
  for (unsigned bit = 0; bit < 6; ++bit) {
    const sim::GateMatrix2 rz = sim::gateRZ(0.2 + 0.1 * bit);
    for (std::size_t i = 0; i < diag.size(); ++i) {
      diag[i] *= ((i >> bit) & 1) != 0 ? rz.m11 : rz.m00;
    }
  }
  for (auto _ : state) {
    switch (mode) {
    case 0:
      for (unsigned q = 0; q < n; ++q) {
        sv.apply1(sim::gateRZ(0.1), q);
        sv.apply1(sim::gateRX(0.7), q);
        sv.apply1(sim::gateRZ(0.3), q);
      }
      break;
    case 1:
      for (unsigned q = 0; q < n; ++q) {
        sv.apply1(chain, q);
      }
      break;
    case 2:
      for (unsigned q = 0; q + 1 < n; q += 2) {
        sv.apply2(window, q, q + 1);
      }
      break;
    case 3:
      for (unsigned q = 0; q + 6 <= n; q += 6) {
        const unsigned qubits[] = {q, q + 1, q + 2, q + 3, q + 4, q + 5};
        sv.applyDiagonal(diag, qubits);
      }
      break;
    default:
      for (unsigned q = 0; q + 6 <= n; q += 6) {
        for (unsigned bit = 0; bit < 6; ++bit) {
          sv.apply1(sim::gateRZ(0.2 + 0.1 * bit), q + bit);
        }
      }
      break;
    }
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  static const char* const kModeNames[] = {"unfused_1q", "fused_1q", "fused_2q",
                                           "fused_diag", "unfused_diag"};
  state.SetLabel(kModeNames[mode]);
  state.counters["qubits"] = n;
}
BENCHMARK(BM_Fusion)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {18, 22}})
    ->Unit(benchmark::kMillisecond);

/// The cache-blocked kernels (DESIGN 7g) on a rotation-dense gate mix:
/// one low-qubit 2x2 chain, one high-qubit 2x2 chain, one 4x4 window,
/// one 6-qubit diagonal per iteration. amps_per_sec is amplitudes
/// touched per wall second (gates x 2^n / time) — the bandwidth-style
/// figure the blocking and vectorization exist to raise. Args are
/// (qubits, precision): precision 0 = f64, 1 = f32 (half the memory
/// traffic per amplitude).
void BM_Kernel(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const sim::Precision precision =
      state.range(1) == 0 ? sim::Precision::F64 : sim::Precision::F32;
  sim::StateVector sv(n, nullptr, precision);
  for (unsigned q = 0; q < n; ++q) {
    sv.apply1(sim::gateH(), q); // spread population
  }
  const sim::GateMatrix2 chain = sim::matmul(
      sim::gateRZ(0.3), sim::matmul(sim::gateRX(0.7), sim::gateRZ(0.1)));
  const sim::GateMatrix4 window =
      sim::matmul(sim::embed2(chain, 1), sim::embed2(chain, 0));
  std::vector<sim::Complex> diag(1U << 6, 1.0);
  for (unsigned bit = 0; bit < 6; ++bit) {
    const sim::GateMatrix2 rz = sim::gateRZ(0.2 + 0.1 * bit);
    for (std::size_t i = 0; i < diag.size(); ++i) {
      diag[i] *= ((i >> bit) & 1) != 0 ? rz.m11 : rz.m00;
    }
  }
  constexpr std::uint64_t kGatesPerIter = 4;
  for (auto _ : state) {
    sv.apply1(chain, 0);
    sv.apply1(chain, n - 1);
    sv.apply2(window, 1, 2);
    const unsigned dq[] = {0, 1, 2, 3, 4, 5};
    sv.applyDiagonal(diag, dq);
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetLabel(precision == sim::Precision::F32 ? "f32" : "f64");
  state.counters["qubits"] = n;
  state.counters["amps_per_sec"] = benchmark::Counter(
      static_cast<double>(kGatesPerIter) * static_cast<double>(sv.dimension()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Kernel)
    ->ArgsProduct({{16, 20, 24, 28}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// applyFusedSweep (one chunk walk for the whole run) vs the same blocks
/// applied as separate full-state passes. Mode 0 = per-gate passes,
/// mode 1 = sweep; the gap is pure memory traffic saved.
void BM_KernelSweep(benchmark::State& state) {
  const auto mode = static_cast<int>(state.range(0));
  const auto n = static_cast<unsigned>(state.range(1));
  sim::StateVector sv(n);
  for (unsigned q = 0; q < n; ++q) {
    sv.apply1(sim::gateH(), q);
  }
  const sim::GateMatrix2 chain = sim::matmul(
      sim::gateRZ(0.3), sim::matmul(sim::gateRX(0.7), sim::gateRZ(0.1)));
  std::vector<sim::SweepGate> gates;
  for (unsigned q = 0; q < 8; ++q) {
    sim::SweepGate gate;
    gate.kind = sim::SweepGate::Kind::Unitary1;
    gate.q0 = q;
    gate.m2 = chain;
    gates.push_back(gate);
  }
  for (auto _ : state) {
    if (mode == 0) {
      for (const sim::SweepGate& gate : gates) {
        sv.apply1(gate.m2, gate.q0);
      }
    } else {
      sv.applyFusedSweep(gates);
    }
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetLabel(mode == 0 ? "per_gate" : "sweep");
  state.counters["qubits"] = n;
  state.counters["sweep_gates"] = static_cast<double>(gates.size());
}
BENCHMARK(BM_KernelSweep)
    ->ArgsProduct({{0, 1}, {18, 22}})
    ->Unit(benchmark::kMillisecond);

void BM_SampleShots(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  sim::StateVector sv(n);
  applyLayer(sv);
  SplitMix64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.sample(rng));
  }
  state.counters["qubits"] = n;
}
BENCHMARK(BM_SampleShots)->Arg(10)->Arg(16)->Arg(20)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E9: statevector simulator scaling (hardware threads: "
            << std::thread::hardware_concurrency() << ")\n\n";
  return qirkit::bench::runAndReport(&argc, argv, "bench_simulator");
}
