/// \file workloads.hpp
/// Shared workload builders for the benchmark harness (see DESIGN.md §4
/// for the experiment index each bench implements).
#pragma once

#include "circuit/generators.hpp"
#include "ir/module.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "qir/exporter.hpp"

#include <string>

namespace qirkit::bench {

/// QIR text for a generated circuit in the given addressing mode.
inline std::string qirTextFor(const circuit::Circuit& circuit,
                              qir::Addressing addressing,
                              bool recordOutput = false) {
  ir::Context ctx;
  qir::ExportOptions options;
  options.addressing = addressing;
  options.recordOutput = recordOutput;
  const auto module = qir::exportCircuit(ctx, circuit, options);
  return ir::printModule(*module);
}

/// The paper's Ex. 4 FOR-loop program with a parameterized bound: applies
/// one H to qubits 0..n-1 through a classical loop (alloca/load/store
/// form, exactly as a front end would emit it).
inline std::string ex4LoopProgram(unsigned n) {
  return R"(
declare void @__quantum__qis__h__body(ptr)

define void @main() #0 {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header
for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, )" +
         std::to_string(n) + R"(
  br i1 %cond, label %body, label %exit
body:
  %2 = load i32, ptr %i, align 4
  %q64 = sext i32 %2 to i64
  %q = inttoptr i64 %q64 to ptr
  call void @__quantum__qis__h__body(ptr %q)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
}

/// A pure-classical spin loop (no quantum calls): alloca/load/store form
/// with a compare-and-branch head and a multiply-store body, so every
/// iteration is dense in the opcode pairs the superinstruction peephole
/// mines (icmp+br, load+add, mul/add+store). This is the
/// dispatch-dominated workload for BM_Dispatch: wall time is almost
/// entirely the VM's fetch/decode/dispatch overhead.
inline std::string classicalSpinProgram(unsigned iterations) {
  return R"(
define void @main() #0 {
entry:
  %iv = alloca i64, align 8
  %acc = alloca i64, align 8
  %tmp = alloca i64, align 8
  store i64 0, ptr %iv, align 8
  store i64 0, ptr %acc, align 8
  br label %head
head:
  %i = load i64, ptr %iv, align 8
  %c = icmp slt i64 %i, )" +
         std::to_string(iterations) + R"(
  br i1 %c, label %body, label %exit
body:
  %a = load i64, ptr %acc, align 8
  %s = add i64 %a, %i
  store i64 %s, ptr %acc, align 8
  %t = mul i64 %i, 3
  store i64 %t, ptr %tmp, align 8
  %n = add i64 %i, 1
  store i64 %n, ptr %iv, align 8
  br label %head
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
}

/// A pure-classical dispatch-stress loop: every iteration advances a
/// 64-bit LCG and branches three levels deep on the (high, effectively
/// random) state bits into one of eight bodies with deliberately
/// different opcode mixes. The opcode stream seen by the dispatcher is
/// therefore data-dependent and unpredictable — the regime where a
/// switch loop's single indirect branch mispredicts on nearly every
/// instruction and token-threaded dispatch (one predictor slot per
/// handler) pulls ahead. This is the realistic interpreter case: real
/// programs run varied code, not an 11-instruction cycle the predictor
/// memorizes.
inline std::string dispatchStressProgram(unsigned iterations) {
  std::string s = R"(
define void @main() #0 {
entry:
  %iv = alloca i64, align 8
  %st = alloca i64, align 8
  %acc = alloca i64, align 8
  store i64 0, ptr %iv, align 8
  store i64 88172645463325252, ptr %st, align 8
  store i64 0, ptr %acc, align 8
  br label %head
head:
  %i = load i64, ptr %iv, align 8
  %c = icmp slt i64 %i, )" + std::to_string(iterations) + R"(
  br i1 %c, label %body, label %exit
body:
  %s0 = load i64, ptr %st, align 8
  %m = mul i64 %s0, 6364136223846793005
  %s1 = add i64 %m, 1442695040888963407
  store i64 %s1, ptr %st, align 8
  %sel = lshr i64 %s1, 61
  %hi = icmp ult i64 %sel, 4
  br i1 %hi, label %lo4, label %hi4
lo4:
  %l2 = icmp ult i64 %sel, 2
  br i1 %l2, label %lo2, label %mid2
hi4:
  %h6 = icmp ult i64 %sel, 6
  br i1 %h6, label %mid6, label %hi2
lo2:
  %e0 = icmp eq i64 %sel, 0
  br i1 %e0, label %c0, label %c1
mid2:
  %e2 = icmp eq i64 %sel, 2
  br i1 %e2, label %c2, label %c3
mid6:
  %e4 = icmp eq i64 %sel, 4
  br i1 %e4, label %c4, label %c5
hi2:
  %e6 = icmp eq i64 %sel, 6
  br i1 %e6, label %c6, label %c7
c0:
  %a0 = load i64, ptr %acc, align 8
  %x0 = xor i64 %a0, %s1
  %y0 = add i64 %x0, 17
  store i64 %y0, ptr %acc, align 8
  br label %join
c1:
  %a1 = load i64, ptr %acc, align 8
  %x1 = sub i64 %a1, 3
  %y1 = sub i64 %x1, %sel
  %z1 = add i64 %y1, %a1
  store i64 %z1, ptr %acc, align 8
  br label %join
c2:
  %a2 = load i64, ptr %acc, align 8
  %x2 = mul i64 %a2, 31
  %y2 = lshr i64 %x2, 3
  store i64 %y2, ptr %acc, align 8
  br label %join
c3:
  %a3 = load i64, ptr %acc, align 8
  %x3 = and i64 %a3, 262143
  %y3 = or i64 %x3, 4097
  %z3 = xor i64 %y3, %s1
  store i64 %z3, ptr %acc, align 8
  br label %join
c4:
  %a4 = load i64, ptr %acc, align 8
  %p4 = icmp sgt i64 %a4, 0
  %w4 = zext i1 %p4 to i64
  %y4 = add i64 %a4, %w4
  store i64 %y4, ptr %acc, align 8
  br label %join
c5:
  %a5 = load i64, ptr %acc, align 8
  %f5 = sitofp i64 %a5 to double
  %g5 = fmul double %f5, 0x3FE5555555555555
  %h5 = fptosi double %g5 to i64
  store i64 %h5, ptr %acc, align 8
  br label %join
c6:
  %a6 = load i64, ptr %acc, align 8
  %x6 = shl i64 %a6, 1
  %p6 = icmp slt i64 %x6, %s1
  %q6 = select i1 %p6, i64 %x6, i64 %a6
  store i64 %q6, ptr %acc, align 8
  br label %join
c7:
  %a7 = load i64, ptr %acc, align 8
  %x7 = ashr i64 %a7, 2
  %y7 = add i64 %x7, %sel
  %z7 = mul i64 %y7, 5
  store i64 %z7, ptr %acc, align 8
  br label %join
join:
  %n = add i64 %i, 1
  store i64 %n, ptr %iv, align 8
  br label %head
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
  return s;
}

/// A hybrid feedback program: measure, run `classicalOps` integer ops on
/// the result, then conditionally apply X (the §IV.B feedback shape).
inline std::string feedbackProgram(unsigned classicalOps) {
  std::string s = R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  %v0 = zext i1 %r to i64
)";
  for (unsigned i = 1; i <= classicalOps; ++i) {
    s += "  %v" + std::to_string(i) + " = add i64 %v" + std::to_string(i - 1) +
         ", 1\n";
  }
  s += "  %c = icmp sgt i64 %v" + std::to_string(classicalOps) + R"(, 0
  br i1 %c, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)";
  return s;
}

/// A VQE-style hybrid program: a classical parameter loop around a small
/// parameterized quantum kernel, all in one QIR function. The rotation
/// angle is iteration-dependent (i * step), so unrolling materializes
/// distinct constants.
inline std::string variationalLoopProgram(unsigned iterations, unsigned qubits) {
  std::string s = R"(
declare void @__quantum__qis__ry__body(double, ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() #0 {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %cond = icmp slt i64 %i, )" + std::to_string(iterations) + R"(
  br i1 %cond, label %kernel, label %exit
kernel:
  %fi = sitofp i64 %i to double
  %theta = fmul double %fi, 0.1
)";
  for (unsigned q = 0; q < qubits; ++q) {
    s += "  call void @__quantum__qis__ry__body(double %theta, ptr inttoptr (i64 " +
         std::to_string(q) + " to ptr))\n";
  }
  for (unsigned q = 0; q + 1 < qubits; ++q) {
    s += "  call void @__quantum__qis__cnot__body(ptr inttoptr (i64 " +
         std::to_string(q) + " to ptr), ptr inttoptr (i64 " + std::to_string(q + 1) +
         " to ptr))\n";
  }
  s += R"(  br label %latch
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
  return s;
}

} // namespace qirkit::bench
