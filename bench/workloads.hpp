/// \file workloads.hpp
/// Shared workload builders for the benchmark harness (see DESIGN.md §4
/// for the experiment index each bench implements).
#pragma once

#include "circuit/generators.hpp"
#include "ir/module.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "qir/exporter.hpp"

#include <string>

namespace qirkit::bench {

/// QIR text for a generated circuit in the given addressing mode.
inline std::string qirTextFor(const circuit::Circuit& circuit,
                              qir::Addressing addressing,
                              bool recordOutput = false) {
  ir::Context ctx;
  qir::ExportOptions options;
  options.addressing = addressing;
  options.recordOutput = recordOutput;
  const auto module = qir::exportCircuit(ctx, circuit, options);
  return ir::printModule(*module);
}

/// The paper's Ex. 4 FOR-loop program with a parameterized bound: applies
/// one H to qubits 0..n-1 through a classical loop (alloca/load/store
/// form, exactly as a front end would emit it).
inline std::string ex4LoopProgram(unsigned n) {
  return R"(
declare void @__quantum__qis__h__body(ptr)

define void @main() #0 {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header
for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, )" +
         std::to_string(n) + R"(
  br i1 %cond, label %body, label %exit
body:
  %2 = load i32, ptr %i, align 4
  %q64 = sext i32 %2 to i64
  %q = inttoptr i64 %q64 to ptr
  call void @__quantum__qis__h__body(ptr %q)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
}

/// A hybrid feedback program: measure, run `classicalOps` integer ops on
/// the result, then conditionally apply X (the §IV.B feedback shape).
inline std::string feedbackProgram(unsigned classicalOps) {
  std::string s = R"(
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  %v0 = zext i1 %r to i64
)";
  for (unsigned i = 1; i <= classicalOps; ++i) {
    s += "  %v" + std::to_string(i) + " = add i64 %v" + std::to_string(i - 1) +
         ", 1\n";
  }
  s += "  %c = icmp sgt i64 %v" + std::to_string(classicalOps) + R"(, 0
  br i1 %c, label %then, label %continue
then:
  call void @__quantum__qis__x__body(ptr null)
  br label %continue
continue:
  ret void
}
attributes #0 = { "entry_point" }
)";
  return s;
}

/// A VQE-style hybrid program: a classical parameter loop around a small
/// parameterized quantum kernel, all in one QIR function. The rotation
/// angle is iteration-dependent (i * step), so unrolling materializes
/// distinct constants.
inline std::string variationalLoopProgram(unsigned iterations, unsigned qubits) {
  std::string s = R"(
declare void @__quantum__qis__ry__body(double, ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() #0 {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %cond = icmp slt i64 %i, )" + std::to_string(iterations) + R"(
  br i1 %cond, label %kernel, label %exit
kernel:
  %fi = sitofp i64 %i to double
  %theta = fmul double %fi, 0.1
)";
  for (unsigned q = 0; q < qubits; ++q) {
    s += "  call void @__quantum__qis__ry__body(double %theta, ptr inttoptr (i64 " +
         std::to_string(q) + " to ptr))\n";
  }
  for (unsigned q = 0; q + 1 < qubits; ++q) {
    s += "  call void @__quantum__qis__cnot__body(ptr inttoptr (i64 " +
         std::to_string(q) + " to ptr), ptr inttoptr (i64 " + std::to_string(q + 1) +
         " to ptr))\n";
  }
  s += R"(  br label %latch
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
  return s;
}

} // namespace qirkit::bench
