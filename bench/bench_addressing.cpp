/// E5 — §IV.A, Ex. 6: static vs dynamic qubit addresses. Static addressing
/// removes the allocation/array traffic ("the lines for allocating the
/// qubits disappear"), shrinking the program and speeding interpretation;
/// the runtime supports static addresses by allocating simulator qubits on
/// the fly.
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "runtime/runtime.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

void benchAddressing(benchmark::State& state, qir::Addressing addressing) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::string text =
      bench::qirTextFor(circuit::ghz(n, true), addressing, true);
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, text);
  std::uint64_t seed = 1;
  runtime::RuntimeStats stats;
  std::uint64_t interpInstructions = 0;
  for (auto _ : state) {
    const runtime::RunResult result = runtime::runQIRModule(*module, seed++);
    stats = result.stats;
    interpInstructions = result.interpStats.instructionsExecuted;
    benchmark::DoNotOptimize(result);
  }
  state.counters["qubits"] = n;
  state.counters["program_insts"] =
      static_cast<double>(module->instructionCount());
  state.counters["interp_insts"] = static_cast<double>(interpInstructions);
  state.counters["dyn_alloc"] = static_cast<double>(stats.dynamicQubitsAllocated);
  state.counters["onthefly_alloc"] =
      static_cast<double>(stats.staticQubitsAllocated);
}

void BM_StaticAddressing(benchmark::State& state) {
  benchAddressing(state, qir::Addressing::Static);
}
BENCHMARK(BM_StaticAddressing)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

void BM_DynamicAddressing(benchmark::State& state) {
  benchAddressing(state, qir::Addressing::Dynamic);
}
BENCHMARK(BM_DynamicAddressing)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E5 (paper IV.A / Ex. 2 vs Ex. 6): static vs dynamic qubit "
               "addressing\n";
  for (const unsigned n : {2U, 8U, 32U}) {
    const std::string s =
        qirkit::bench::qirTextFor(qirkit::circuit::ghz(n, true),
                                  qirkit::qir::Addressing::Static, true);
    const std::string d =
        qirkit::bench::qirTextFor(qirkit::circuit::ghz(n, true),
                                  qirkit::qir::Addressing::Dynamic, true);
    qirkit::ir::Context ctx;
    const auto sm = qirkit::ir::parseModule(ctx, s);
    const auto dm = qirkit::ir::parseModule(ctx, d, "d");
    std::cout << "ghz-" << n << ": static " << sm->instructionCount()
              << " instructions / " << s.size() << " chars; dynamic "
              << dm->instructionCount() << " instructions / " << d.size()
              << " chars\n";
  }
  std::cout << "\n";
  return qirkit::bench::runAndReport(&argc, argv, "bench_addressing");
}
