/// E7 — §IV.B: hybrid feasibility. "It must be ensured that the classical
/// code offloaded to the quantum hardware can be executed in the required
/// time frame to uphold the coherence of the qubits … there will always be
/// programs that describe an infeasible execution and must be rejected."
/// Measures analysis cost vs classical-work size and prints the
/// accept/reject frontier for two hardware latency models.
#include "hybrid/hybrid.hpp"
#include "ir/parser.hpp"
#include "qir/compile.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

void BM_CheckFeasibility(benchmark::State& state) {
  const auto classicalOps = static_cast<unsigned>(state.range(0));
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, bench::feedbackProgram(classicalOps));
  const hybrid::LatencyModel model = hybrid::LatencyModel::superconductingFPGA();
  double worst = 0;
  for (auto _ : state) {
    const hybrid::FeasibilityReport report =
        hybrid::checkFeasibility(*module, model, 1e9);
    worst = report.worstPathNs;
    benchmark::DoNotOptimize(report);
  }
  state.counters["classical_ops"] = classicalOps;
  state.counters["path_ns"] = worst;
}
BENCHMARK(BM_CheckFeasibility)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_PartitionHybrid(benchmark::State& state) {
  const auto classicalOps = static_cast<unsigned>(state.range(0));
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, bench::feedbackProgram(classicalOps));
  for (auto _ : state) {
    const hybrid::PartitionReport report = hybrid::partitionHybrid(*module);
    benchmark::DoNotOptimize(report);
  }
  state.counters["classical_ops"] = classicalOps;
}
BENCHMARK(BM_PartitionHybrid)->Arg(1)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  using qirkit::hybrid::LatencyModel;
  std::cout << "# E7 (paper IV.B): classical feedback vs coherence budget\n";
  std::cout << "accept/reject frontier (budget = 1000 ns):\n";
  std::cout << "classical_ops | FPGA path_ns feasible | ion-CPU path_ns feasible\n";
  for (const unsigned ops : {1U, 8U, 32U, 64U, 128U, 256U, 512U}) {
    qirkit::ir::Context ctx;
    const auto module =
        qirkit::ir::parseModule(ctx, qirkit::bench::feedbackProgram(ops));
    const auto fpga = qirkit::hybrid::checkFeasibility(
        *module, LatencyModel::superconductingFPGA(), 1000.0);
    const auto ion = qirkit::hybrid::checkFeasibility(
        *module, LatencyModel::ionTrapCPU(), 1000.0);
    std::cout << ops << " | " << fpga.worstPathNs << " "
              << (fpga.feasible ? "yes" : "REJECT") << " | " << ion.worstPathNs
              << " " << (ion.feasible ? "yes" : "REJECT") << "\n";
  }
  std::cout << "\npartition of the 64-op program:\n";
  {
    qirkit::ir::Context ctx;
    const auto module =
        qirkit::ir::parseModule(ctx, qirkit::bench::feedbackProgram(64));
    const auto partition = qirkit::hybrid::partitionHybrid(*module);
    for (const auto& [placement, count] : partition.counts) {
      std::cout << "  " << qirkit::hybrid::placementName(placement) << ": " << count
                << " instructions\n";
    }
  }
  std::cout << "\n";
  return qirkit::bench::runAndReport(&argc, argv, "bench_hybrid_feasibility");
}
