// Shared bench harness: runs Google Benchmark with the normal console
// output and additionally writes a machine-readable BENCH_<name>.json
// artifact next to the binary (or into $QIRKIT_BENCH_DIR when set), so CI
// can collect and diff benchmark results across runs.
//
// The artifact schema is versioned independently of the --stats schema:
//   { "schema_version": 1, "tool": "qirkit-bench", "bench": "<name>",
//     "benchmarks": [ { "name", "iterations", "real_time_ns",
//                       "cpu_time_ns", "counters": {...} }, ... ],
//     "telemetry": {...} }            // only with QIRKIT_BENCH_TELEMETRY=1
//
// Telemetry stays at its default (disabled) unless QIRKIT_BENCH_TELEMETRY=1,
// so measured numbers reflect the production probe cost.
#pragma once

#include "support/telemetry/telemetry.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace qirkit::bench {

inline constexpr int kBenchSchemaVersion = 1;

namespace detail {

struct RunRecord {
  std::string name;
  std::int64_t iterations = 0;
  double realTimeNs = 0;
  double cpuTimeNs = 0;
  std::vector<std::pair<std::string, double>> counters;
};

/// Console reporter that also collects per-iteration run records.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      RunRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      rec.realTimeNs = run.real_accumulated_time * 1e9 / iters;
      rec.cpuTimeNs = run.cpu_accumulated_time * 1e9 / iters;
      for (const auto& [counterName, counter] : run.counters) {
        rec.counters.emplace_back(counterName, counter.value);
      }
      records.push_back(std::move(rec));
    }
  }

  std::vector<RunRecord> records;
};

inline std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

inline std::string recordsJson(const char* benchName,
                               const std::vector<RunRecord>& records,
                               bool withTelemetry) {
  std::string out = "{\"schema_version\":" + std::to_string(kBenchSchemaVersion) +
                    ",\"tool\":\"qirkit-bench\",\"bench\":\"" +
                    telemetry::jsonEscape(benchName) + "\",\"benchmarks\":[";
  bool first = true;
  for (const RunRecord& rec : records) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"" + telemetry::jsonEscape(rec.name) +
           "\",\"iterations\":" + std::to_string(rec.iterations) +
           ",\"real_time_ns\":" + formatDouble(rec.realTimeNs) +
           ",\"cpu_time_ns\":" + formatDouble(rec.cpuTimeNs) + ",\"counters\":{";
    bool firstCounter = true;
    for (const auto& [name, value] : rec.counters) {
      if (!firstCounter) {
        out += ",";
      }
      firstCounter = false;
      out += "\"" + telemetry::jsonEscape(name) + "\":" + formatDouble(value);
    }
    out += "}}";
  }
  out += "]";
  if (withTelemetry) {
    out += ",\"telemetry\":" + telemetry::statsJson("bench");
  }
  out += "}\n";
  return out;
}

} // namespace detail

/// Drop-in replacement for the Initialize/RunSpecifiedBenchmarks tail of a
/// bench main(): runs the registered benchmarks and writes
/// BENCH_<benchName>.json. Returns the process exit code.
inline int runAndReport(int* argc, char** argv, const char* benchName) {
  const char* telemetryEnv = std::getenv("QIRKIT_BENCH_TELEMETRY");
  const bool withTelemetry =
      telemetryEnv != nullptr && telemetryEnv[0] != '\0' &&
      std::string(telemetryEnv) != "0";
  if (withTelemetry) {
    telemetry::setEnabled(true);
  }

  benchmark::Initialize(argc, argv);
  if (benchmark::ReportUnrecognizedArguments(*argc, argv)) {
    return 1;
  }
  detail::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::string dir = ".";
  if (const char* env = std::getenv("QIRKIT_BENCH_DIR");
      env != nullptr && env[0] != '\0') {
    dir = env;
  }
  const std::string path = dir + "/BENCH_" + benchName + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << detail::recordsJson(benchName, reporter.records, withTelemetry);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "warning: could not write bench artifact %s\n",
                 path.c_str());
    return 0; // artifact failure must not fail the bench itself
  }
  std::fprintf(stderr, "bench artifact: %s\n", path.c_str());
  return 0;
}

} // namespace qirkit::bench
