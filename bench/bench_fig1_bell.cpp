/// F1 — Fig. 1 / Ex. 1 / Ex. 2: the Bell-state "Hello World" in OpenQASM
/// 2.0 and QIR. Regenerates both textual forms, checks all import routes
/// agree, and times each representation's parse and execution.
#include "circuit/executor.hpp"
#include "circuit/generators.hpp"
#include "ir/parser.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "qir/importer.hpp"
#include "runtime/runtime.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

const circuit::Circuit& bell() {
  static const circuit::Circuit c = circuit::bellPair(true);
  return c;
}

const std::string& qasmText() {
  static const std::string text = qasm::print(bell());
  return text;
}

const std::string& qirTextDynamic() {
  static const std::string text =
      bench::qirTextFor(bell(), qir::Addressing::Dynamic, true);
  return text;
}

const std::string& qirTextStatic() {
  static const std::string text =
      bench::qirTextFor(bell(), qir::Addressing::Static, true);
  return text;
}

void BM_ParseOpenQASM(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(qasm::parse(qasmText()));
  }
  state.counters["chars"] = static_cast<double>(qasmText().size());
}
BENCHMARK(BM_ParseOpenQASM);

void BM_ParseQIRPattern(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(qir::importBaseProfileText(qirTextDynamic()));
  }
  state.counters["chars"] = static_cast<double>(qirTextDynamic().size());
}
BENCHMARK(BM_ParseQIRPattern);

void BM_ParseQIRFullAst(benchmark::State& state) {
  for (auto _ : state) {
    ir::Context ctx;
    const auto module = ir::parseModule(ctx, qirTextDynamic());
    benchmark::DoNotOptimize(qir::importFromModule(*module));
  }
}
BENCHMARK(BM_ParseQIRFullAst);

void BM_ExecuteDirectCircuit(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::execute(bell(), seed++));
  }
}
BENCHMARK(BM_ExecuteDirectCircuit);

void BM_ExecuteInterpretedQIR(benchmark::State& state) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, qirTextDynamic());
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::runQIRModule(*module, seed++));
  }
}
BENCHMARK(BM_ExecuteInterpretedQIR);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# F1 (paper Fig. 1): Bell state in OpenQASM 2.0 vs QIR\n";
  std::cout << "## OpenQASM 2.0 (" << qasmText().size() << " chars)\n"
            << qasmText() << "\n";
  std::cout << "## QIR, dynamic addressing, Ex. 2 style ("
            << qirTextDynamic().size() << " chars)\n";
  std::cout << "## QIR, static addressing, Ex. 6 style (" << qirTextStatic().size()
            << " chars)\n\n";

  const auto fromQasm = qirkit::qasm::parse(qasmText());
  const auto fromPattern = qirkit::qir::importBaseProfileText(qirTextDynamic());
  qirkit::ir::Context ctx;
  const auto module = qirkit::ir::parseModule(ctx, qirTextStatic());
  const auto fromAst = qirkit::qir::importFromModule(*module);
  std::cout << "all import routes agree: "
            << ((fromQasm == bell() && fromPattern == bell() && fromAst == bell())
                    ? "yes"
                    : "NO — BUG")
            << "\n";
  std::map<std::string, unsigned> histogram;
  for (unsigned shot = 0; shot < 1000; ++shot) {
    const auto result = qirkit::circuit::execute(bell(), shot);
    ++histogram[qirkit::circuit::bitsToString(result.bits)];
  }
  std::cout << "1000-shot histogram:";
  for (const auto& [bits, count] : histogram) {
    std::cout << " " << bits << "=" << count;
  }
  std::cout << "\n\n";

  return qirkit::bench::runAndReport(&argc, argv, "bench_fig1_bell");
}
