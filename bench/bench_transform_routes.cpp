/// E3 — §III.B: transforming QIR directly (route b1: classical passes on
/// the QIR AST) vs the transpile round trip (route b2: QIR -> custom
/// circuit IR -> optimize -> QIR). Expectation (paper): the round trip is
/// quick to adopt but "carries the same deficits as parsing the text-based
/// QIR file into a custom IR" — it loses classical structure the custom IR
/// cannot express; the direct route keeps the program in QIR throughout.
#include "ir/parser.hpp"
#include "qir/compile.hpp"
#include "qir/importer.hpp"
#include "support/source_location.hpp"

#include "workloads.hpp"

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_report.hpp"

namespace {

using namespace qirkit;

void BM_DirectTransform(benchmark::State& state) {
  const auto iterations = static_cast<unsigned>(state.range(0));
  const std::string text = bench::variationalLoopProgram(iterations, 4);
  std::size_t instructions = 0;
  for (auto _ : state) {
    ir::Context ctx;
    auto module = ir::parseModule(ctx, text);
    qir::transformDirect(*module);
    instructions = module->instructionCount();
    benchmark::DoNotOptimize(instructions);
  }
  state.counters["loop_iters"] = iterations;
  state.counters["instructions_after"] = static_cast<double>(instructions);
}
BENCHMARK(BM_DirectTransform)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_TranspileRoundTrip(benchmark::State& state) {
  const auto iterations = static_cast<unsigned>(state.range(0));
  const std::string text = bench::variationalLoopProgram(iterations, 4);
  std::size_t instructions = 0;
  for (auto _ : state) {
    ir::Context ctx;
    auto module = ir::parseModule(ctx, text);
    const qir::CompileResult result = qir::compileToTarget(ctx, *module, {});
    instructions = result.module->instructionCount();
    benchmark::DoNotOptimize(instructions);
  }
  state.counters["loop_iters"] = iterations;
  state.counters["instructions_after"] = static_cast<double>(instructions);
}
BENCHMARK(BM_TranspileRoundTrip)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  std::cout << "# E3 (paper III.B): direct AST transformation vs transpile "
               "round trip\n";
  // Structure-preservation check: a loop with a *dynamic* bound cannot be
  // unrolled; the direct route keeps it (as a loop in QIR), the round trip
  // through the loop-free circuit IR must give up.
  const char* dynamicLoop = R"(
declare void @__quantum__qis__h__body(ptr)
define void @main(i64 %n) #0 {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %p = inttoptr i64 %i to ptr
  call void @__quantum__qis__h__body(ptr %p)
  %next = add i64 %i, 1
  br label %header
exit:
  ret void
}
attributes #0 = { "entry_point" }
)";
  {
    qirkit::ir::Context ctx;
    auto module = qirkit::ir::parseModule(ctx, dynamicLoop);
    qirkit::qir::transformDirect(*module);
    std::cout << "direct route on a dynamic-bound loop: kept "
              << module->entryPoint()->blocks().size()
              << " blocks (loop preserved in QIR)\n";
    bool roundTripFailed = false;
    try {
      (void)qirkit::qir::importFromModule(*module);
    } catch (const qirkit::ParseError&) {
      roundTripFailed = true;
    }
    std::cout << "round-trip route on the same program: "
              << (roundTripFailed
                      ? "rejected (the custom IR cannot express the loop — "
                        "the deficit the paper describes)"
                      : "ACCEPTED — BUG")
              << "\n\n";
  }
  return qirkit::bench::runAndReport(&argc, argv, "bench_transform_routes");
}
