/// \file qirkit.cpp
/// The qirkit command-line driver: every adoption route of the paper as a
/// subcommand.
///
///   qirkit parse <file.ll>                      parse + verify + stats
///   qirkit validate <file.ll> [--profile P]     QIR profile validation
///   qirkit opt <file.ll> [-o out.ll]            classical pipeline (§III.B b1)
///   qirkit compile <file.ll> [--target T]
///                  [--addressing static|dynamic]
///                  [--reuse] [--defer-mz]
///                  [-o out.ll]                  full compile (§III.B b2 + §IV.A)
///   qirkit run <file.ll|file.qasm> [--shots N]
///                  [--seed S] [--engine vm|interp]
///                  [--jobs N]
///                  [--exec-mode auto|resim|sample]
///                  [--fusion on|off]
///                  [--precision f64|f32] [--force-f32]
///                  [--max-failed-shots N]
///                  [--retries N]
///                  [--no-fallback]              execute + runtime (§III.C);
///                                               vm = bytecode engine with
///                                               compile cache, interp =
///                                               reference tree-walker;
///                                               failed shots are classified
///                                               and isolated (tolerating up
///                                               to --max-failed-shots, with
///                                               --retries attempts for
///                                               transient faults)
///   qirkit translate <in> --to qir|qasm
///                  [--addressing A] [-o out]    format conversion (§III.A)
///   qirkit partition <file.ll>                  hybrid placement (§IV.B)
///   qirkit feasibility <file.ll> [--budget NS]
///                  [--model fpga|cpu]           coherence-budget check (§IV.B)
///
/// Targets: line:N, ring:N, grid:RxC, full:N.
///
/// Observability: `--stats[=text|json]` (run|compile|opt) arms the
/// process-wide telemetry registry and prints the report on stderr after
/// the command; json is the versioned schema documented in README
/// "Observability". QIRKIT_TRACE=<file> writes Chrome trace-event JSON
/// (Perfetto / chrome://tracing) spanning parse → opt → compile → execute.
///
/// Exit-code contract: 0 success; 1 diagnostics (parse/verify/semantic
/// errors, runtime traps, nonconforming input); 2 usage errors; 3 internal
/// faults. Classified errors print to stderr as
/// `qirkit: error[<code>]: <message> at <loc>`.
/// QIRKIT_FAULT_INJECT arms the deterministic fault injector (see
/// support/faultinject.hpp) for drilling the recovery paths.
#include "circuit/executor.hpp"
#include "circuit/mapping.hpp"
#include "circuit/reuse.hpp"
#include "hybrid/hybrid.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "qasm/parser.hpp"
#include "qasm/printer.hpp"
#include "qasm/qasm3.hpp"
#include "qir/compile.hpp"
#include "qir/exporter.hpp"
#include "qir/importer.hpp"
#include "qir/profiles.hpp"
#include "runtime/runtime.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"
#include "support/parallel.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"
#include "vm/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <csignal>

#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace qirkit;
namespace json = qirkit::service::json;

/// Bad invocation: reported as error[usage], exit 2 per the contract.
[[noreturn]] void fail(const std::string& message) {
  throw qirkit::Error(ErrorCode::Usage, message);
}

/// Parse a numeric option value; garbage — including negative values,
/// which std::stoull would silently wrap — is a usage error, not an abort.
std::uint64_t parseUint(const std::string& value, const std::string& name) {
  const bool digitsOnly =
      !value.empty() && std::all_of(value.begin(), value.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  if (!digitsOnly) {
    fail("--" + name + " expects a non-negative integer, got '" + value + "'");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    fail("--" + name + " value '" + value + "' is out of range");
  }
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw qirkit::Error(ErrorCode::Io, "cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void writeOutput(const std::optional<std::string>& path, const std::string& text) {
  if (!path) {
    std::cout << text;
    return;
  }
  std::ofstream out(*path, std::ios::binary);
  if (!out) {
    throw qirkit::Error(ErrorCode::Io, "cannot write '" + *path + "'");
  }
  out << text;
}

/// Minimal flag parser: positional args + --key value / --flag.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::map<std::string, bool> flags;

  [[nodiscard]] std::string option(const std::string& key,
                                   const std::string& fallback = {}) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return flags.count(key) != 0;
  }
};

Args parseArgs(int argc, char** argv, int start,
               const std::vector<std::string>& valueOptions) {
  Args args;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      std::optional<std::string> inlineValue; // --key=value form
      if (const auto eq = key.find('='); eq != std::string::npos) {
        inlineValue = key.substr(eq + 1);
        key = key.substr(0, eq);
      }
      const bool takesValue =
          std::find(valueOptions.begin(), valueOptions.end(), key) !=
          valueOptions.end();
      // --stats takes an *optional* format: bare --stats means text.
      const bool optionalValue = key == "stats";
      if (inlineValue) {
        if (!takesValue && !optionalValue) {
          fail("option --" + key + " does not take a value");
        }
        args.options[key] = *inlineValue;
      } else if (takesValue) {
        if (i + 1 >= argc) {
          fail("option --" + key + " expects a value");
        }
        args.options[key] = argv[++i];
      } else if (optionalValue) {
        const std::string next = i + 1 < argc ? argv[i + 1] : "";
        if (next == "text" || next == "json") {
          args.options[key] = argv[++i];
        } else {
          args.options[key] = "text";
        }
      } else {
        args.flags[key] = true;
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        fail("-o expects a path");
      }
      args.options["output"] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

circuit::Target parseTarget(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    fail("target must be line:N, ring:N, grid:RxC, or full:N");
  }
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  if (kind == "grid") {
    const auto x = rest.find('x');
    if (x == std::string::npos) {
      fail("grid target must be grid:RxC");
    }
    return circuit::Target::grid(
        static_cast<unsigned>(parseUint(rest.substr(0, x), "target")),
        static_cast<unsigned>(parseUint(rest.substr(x + 1), "target")));
  }
  const auto n = static_cast<unsigned>(parseUint(rest, "target"));
  if (kind == "line") {
    return circuit::Target::line(n);
  }
  if (kind == "ring") {
    return circuit::Target::ring(n);
  }
  if (kind == "full") {
    return circuit::Target::fullyConnected(n);
  }
  fail("unknown target kind '" + kind + "'");
}

bool looksLikeQasm(const std::string& path, const std::string& text) {
  return path.ends_with(".qasm") || text.find("OPENQASM") != std::string::npos;
}

bool isQasm3(const std::string& text) {
  const auto pos = text.find("OPENQASM");
  return pos != std::string::npos && text.find("OPENQASM 3", pos) == pos;
}

/// Load a program from QIR (.ll), OpenQASM 2, or OpenQASM 3 into a module.
std::unique_ptr<ir::Module> loadModule(ir::Context& ctx, const std::string& path,
                                       qir::Addressing addressing) {
  const std::string text = readFile(path);
  if (looksLikeQasm(path, text)) {
    if (isQasm3(text)) {
      return qasm::compileQasm3(ctx, text);
    }
    const circuit::Circuit c = qasm::parse(text);
    qir::ExportOptions options;
    options.addressing = addressing;
    return qir::exportCircuit(ctx, c, options);
  }
  return ir::parseModule(ctx, text, path);
}

int cmdParse(const Args& args) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, readFile(args.positional[0]));
  const auto errors = ir::verifyModule(*module);
  std::cout << "functions: " << module->functions().size() << "\n";
  std::cout << "globals: " << module->globals().size() << "\n";
  std::cout << "instructions: " << module->instructionCount() << "\n";
  const ir::Function* entry = module->entryPoint();
  if (entry != nullptr) {
    std::cout << "entry point: @" << entry->name() << " ("
              << entry->blocks().size() << " blocks)\n";
  }
  std::cout << "profile: " << qir::profileName(qir::detectProfile(*module)) << "\n";
  if (errors.empty()) {
    std::cout << "verifier: clean\n";
    return 0;
  }
  for (const std::string& error : errors) {
    std::cout << "verifier: " << error << "\n";
  }
  return 1;
}

int cmdValidate(const Args& args) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, readFile(args.positional[0]));
  const std::string profileName = args.option("profile", "base");
  const qir::Profile profile = profileName == "base"       ? qir::Profile::Base
                               : profileName == "adaptive" ? qir::Profile::Adaptive
                               : profileName == "full"
                                   ? qir::Profile::Full
                                   : (fail("unknown profile '" + profileName + "'"),
                                      qir::Profile::Full);
  const qir::ProfileReport report = qir::validateProfile(*module, profile);
  if (report.conforms) {
    std::cout << "conforms to " << qir::profileName(profile) << "\n";
    return 0;
  }
  std::cout << "does NOT conform to " << qir::profileName(profile) << ":\n";
  for (const std::string& violation : report.violations) {
    std::cout << "  " << violation << "\n";
  }
  return 1;
}

int cmdOpt(const Args& args) {
  ir::Context ctx;
  auto module = ir::parseModule(ctx, readFile(args.positional[0]));
  const std::size_t before = module->instructionCount();
  const std::size_t sweeps = qir::transformDirect(*module);
  ir::verifyModuleOrThrow(*module);
  std::cerr << "optimized: " << before << " -> " << module->instructionCount()
            << " instructions in " << sweeps << " sweeps\n";
  writeOutput(args.options.count("output") != 0U
                  ? std::optional<std::string>(args.option("output"))
                  : std::nullopt,
              ir::printModule(*module));
  return 0;
}

int cmdCompile(const Args& args) {
  ir::Context ctx;
  auto module = loadModule(ctx, args.positional[0], qir::Addressing::Dynamic);
  qir::CompileOptions options;
  if (!args.option("target").empty()) {
    options.target = parseTarget(args.option("target"));
  }
  options.outputAddressing = args.option("addressing", "static") == "dynamic"
                                 ? qir::Addressing::Dynamic
                                 : qir::Addressing::Static;
  options.deferMeasurements = args.flag("defer-mz");
  qir::CompileResult result = qir::compileToTarget(ctx, *module, options);
  if (args.flag("reuse")) {
    const circuit::ReuseResult reuse = circuit::reuseQubits(result.circuit);
    std::cerr << "qubit reuse: " << reuse.qubitsBefore << " -> "
              << reuse.qubitsAfter << " qubits (" << reuse.resetsInserted
              << " resets)\n";
    qir::ExportOptions exportOptions;
    exportOptions.addressing = options.outputAddressing;
    result.module = qir::exportCircuit(ctx, reuse.circuit, exportOptions);
    result.circuit = reuse.circuit;
  }
  std::cerr << "compiled: " << result.circuit.summary() << "\n";
  std::cerr << "profile: " << qir::profileName(result.profile)
            << ", swaps: " << result.swapsInserted << "\n";
  writeOutput(args.options.count("output") != 0U
                  ? std::optional<std::string>(args.option("output"))
                  : std::nullopt,
              ir::printModule(*result.module));
  return 0;
}

int cmdRun(const Args& args) {
  ir::Context ctx;
  const auto module = loadModule(ctx, args.positional[0], qir::Addressing::Static);
  vm::ShotOptions options;
  options.shots = parseUint(args.option("shots", "100"), "shots");
  options.seed = parseUint(args.option("seed", "1"), "seed");
  options.maxFailedShots =
      parseUint(args.option("max-failed-shots", "0"), "max-failed-shots");
  options.retries = parseUint(args.option("retries", "0"), "retries");
  options.interpFallback = !args.flag("no-fallback");
  const std::string engine = args.option("engine", "vm");
  if (engine == "vm") {
    options.engine = vm::Engine::Vm;
  } else if (engine == "interp") {
    options.engine = vm::Engine::Interp;
  } else {
    fail("--engine must be vm or interp");
  }
  const std::string execMode = args.option("exec-mode", "auto");
  if (execMode == "auto") {
    options.execMode = vm::ExecMode::Auto;
  } else if (execMode == "resim") {
    options.execMode = vm::ExecMode::Resim;
  } else if (execMode == "sample") {
    options.execMode = vm::ExecMode::Sample;
  } else {
    fail("--exec-mode must be auto, resim, or sample");
  }
  const std::string fusion = args.option("fusion", "on");
  if (fusion == "on") {
    options.fusion = true;
  } else if (fusion == "off") {
    options.fusion = false;
  } else {
    fail("--fusion must be on or off");
  }
  const std::string dispatch =
      args.option("dispatch", vm::dispatchModeName(options.dispatch));
  if (dispatch == "switch") {
    options.dispatch = vm::DispatchMode::Switch;
  } else if (dispatch == "threaded") {
    options.dispatch = vm::DispatchMode::Threaded;
  } else {
    fail("--dispatch must be switch or threaded");
  }
  if (!sim::parsePrecision(args.option("precision", "f64"),
                           options.precision)) {
    fail("--precision must be f64 or f32");
  }
  options.forceF32 = args.flag("force-f32");
  const auto jobs =
      static_cast<std::size_t>(parseUint(args.option("jobs", "1"), "jobs"));
  if (jobs > 1) {
    // The process-wide shared pool, not a private one: the CLI goes
    // through the same injection seam the service uses, so every --jobs
    // run exercises batch execution on a shared pool.
    ThreadPool::configureGlobal(jobs);
    options.pool = &ThreadPool::global();
  }
  const std::uint64_t timeoutMs =
      parseUint(args.option("timeout-ms", "0"), "timeout-ms");
  qirkit::CancelToken cancel;
  if (timeoutMs != 0) {
    cancel.setTimeoutNs(timeoutMs * 1'000'000ULL);
    options.cancel = &cancel;
  }
  const vm::ShotBatchResult result = vm::runShots(*module, options);
  std::cerr << "engine: " << vm::engineName(result.engineUsed);
  if (result.engineUsed == vm::Engine::Vm) {
    std::cerr << " (compile cache "
              << (result.cacheHits != 0 ? "hit" : "miss") << ")";
  }
  std::cerr << "\n";
  if (result.sampled) {
    std::cerr << "exec mode: sample (simulated once, sampled "
              << result.completedShots << " shots)\n";
  }
  if (result.sampleFallback) {
    std::cerr << "warning: sampling path degraded to per-shot resimulation: "
              << result.sampleFallbackReason << "\n";
  }
  if (result.degradedToInterp) {
    std::cerr << "warning: degraded to the reference interpreter: "
              << result.degradeReason << "\n";
  }
  if (result.interpFallbackShots != 0) {
    std::cerr << "warning: " << result.interpFallbackShots
              << " shot(s) trapped on the vm and were rerun on the "
                 "interpreter\n";
  }
  if (result.retryAttempts != 0) {
    std::cerr << "warning: " << result.retryAttempts
              << " transient-fault retry attempt(s)\n";
  }
  if (result.failedShots != 0) {
    std::cerr << "warning: " << result.failedShots << " of " << options.shots
              << " shot(s) failed:";
    for (const auto& [code, count] : result.failureCounts) {
      std::cerr << " " << qirkit::errorCodeName(code) << " x" << count;
    }
    std::cerr << "\n";
  }
  // stdout carries only the program's answer, so a degraded batch prints
  // byte-identical output to a native interpreter run.
  std::cout << "shots: " << options.shots
            << ", gates/shot: " << result.lastShotStats.gatesApplied
            << ", measurements/shot: " << result.lastShotStats.measurements
            << "\n";
  for (const auto& [bits, count] : result.histogram) {
    std::cout << (bits.empty() ? "(no recorded output)" : bits) << ": " << count
              << "\n";
  }
  if (result.deadlineExceeded) {
    // Partial-results contract: the truncated histogram above covers
    // exactly the completed shots; the batch as a whole still failed its
    // deadline, so the exit code says so.
    std::cerr << "qirkit: error[deadline]: --timeout-ms " << timeoutMs
              << " expired after " << result.completedShots << " of "
              << options.shots << " shot(s); histogram covers completed "
              << "shots only (" << result.unstartedShots << " never ran)\n";
    return 1;
  }
  return 0;
}

int cmdTranslate(const Args& args) {
  const std::string inputPath = args.positional[0];
  const std::string text = readFile(inputPath);
  const std::string to = args.option("to");
  if (to != "qir" && to != "qasm") {
    fail("--to must be qir or qasm");
  }
  // Load into the circuit IR through whichever frontend matches.
  circuit::Circuit c;
  if (looksLikeQasm(inputPath, text) && !isQasm3(text)) {
    c = qasm::parse(text);
  } else {
    ir::Context ctx;
    auto module = isQasm3(text) ? qasm::compileQasm3(ctx, text)
                                : ir::parseModule(ctx, text);
    qir::transformDirect(*module);
    c = qir::importFromModule(*module);
  }
  std::string out;
  if (to == "qasm") {
    out = qasm::print(c);
  } else {
    ir::Context ctx;
    qir::ExportOptions options;
    options.addressing = args.option("addressing", "static") == "dynamic"
                             ? qir::Addressing::Dynamic
                             : qir::Addressing::Static;
    out = ir::printModule(*qir::exportCircuit(ctx, c, options));
  }
  writeOutput(args.options.count("output") != 0U
                  ? std::optional<std::string>(args.option("output"))
                  : std::nullopt,
              out);
  return 0;
}

int cmdPartition(const Args& args) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, readFile(args.positional[0]));
  const hybrid::PartitionReport report = hybrid::partitionHybrid(*module);
  for (const auto& [placement, count] : report.counts) {
    std::cout << hybrid::placementName(placement) << ": " << count
              << " instructions\n";
  }
  return 0;
}

int cmdFeasibility(const Args& args) {
  ir::Context ctx;
  const auto module = ir::parseModule(ctx, readFile(args.positional[0]));
  double budget = 0.0;
  try {
    budget = std::stod(args.option("budget", "1000"));
  } catch (const std::exception&) {
    fail("--budget expects a number, got '" + args.option("budget") + "'");
  }
  const hybrid::LatencyModel model =
      args.option("model", "fpga") == "cpu" ? hybrid::LatencyModel::ionTrapCPU()
                                            : hybrid::LatencyModel::superconductingFPGA();
  const hybrid::FeasibilityReport report =
      hybrid::checkFeasibility(*module, model, budget);
  std::cout << "feedback paths: " << report.paths.size() << "\n";
  std::cout << "worst path: " << report.worstPathNs << " ns (budget " << budget
            << " ns)\n";
  std::cout << "feasible: " << (report.feasible ? "yes" : "NO") << "\n";
  for (const std::string& reason : report.reasons) {
    std::cout << "  " << reason << "\n";
  }
  return report.feasible ? 0 : 1;
}

/// The daemon instance the signal handler asks to stop. requestShutdown()
/// only stores a relaxed atomic flag, which is async-signal-safe.
std::atomic<service::Server*> g_server{nullptr};

extern "C" void handleServeSignal(int /*signum*/) {
  if (service::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->requestShutdown();
  }
}

int cmdServe(const Args& args) {
  service::ServerOptions options;
  options.socketPath = args.positional[0];
  options.runners = std::max<std::size_t>(
      1, parseUint(args.option("runners", "2"), "runners"));
  options.poolThreads =
      static_cast<std::size_t>(parseUint(args.option("jobs", "0"), "jobs"));
  if (!args.option("cache-capacity").empty()) {
    options.cacheCapacity = std::max<std::size_t>(
        1, parseUint(args.option("cache-capacity"), "cache-capacity"));
  }
  if (!args.option("program-capacity").empty()) {
    options.programCapacity = std::max<std::size_t>(
        1, parseUint(args.option("program-capacity"), "program-capacity"));
  }
  if (!args.option("max-frame-bytes").empty()) {
    options.maxFrameBytes = std::max<std::size_t>(
        1, parseUint(args.option("max-frame-bytes"), "max-frame-bytes"));
  }
  if (!args.option("queue-capacity").empty()) {
    options.queue.capacity = std::max<std::size_t>(
        1, parseUint(args.option("queue-capacity"), "queue-capacity"));
  }
  if (!args.option("tenant-pending").empty()) {
    options.queue.tenantMaxPending = std::max<std::size_t>(
        1, parseUint(args.option("tenant-pending"), "tenant-pending"));
  }
  if (!args.option("max-shots").empty()) {
    options.queue.maxShotsPerJob =
        std::max<std::uint64_t>(1, parseUint(args.option("max-shots"), "max-shots"));
  }
  if (!args.option("rate-limit").empty()) {
    try {
      options.queue.ratePerSec = std::stod(args.option("rate-limit"));
    } catch (const std::exception&) {
      options.queue.ratePerSec = -1;
    }
    if (options.queue.ratePerSec < 0) {
      fail("--rate-limit expects a non-negative number, got '" +
           args.option("rate-limit") + "'");
    }
  }
  if (!args.option("rate-burst").empty()) {
    try {
      options.queue.rateBurst = std::stod(args.option("rate-burst"));
    } catch (const std::exception&) {
      options.queue.rateBurst = 0;
    }
    if (options.queue.rateBurst < 1) {
      fail("--rate-burst expects a number >= 1, got '" +
           args.option("rate-burst") + "'");
    }
  }
  if (!args.option("memory-budget-mb").empty()) {
    options.memoryBudgetBytes =
        parseUint(args.option("memory-budget-mb"), "memory-budget-mb") <<
        20U; // 0 disables the admission guard
  }
  if (!args.option("watchdog-factor").empty()) {
    options.watchdogFactor = static_cast<unsigned>(
        parseUint(args.option("watchdog-factor"), "watchdog-factor"));
  }
  if (!args.option("flight-capacity").empty()) {
    options.flightCapacity = std::max<std::size_t>(
        1, parseUint(args.option("flight-capacity"), "flight-capacity"));
  }
  if (!args.option("slow-threshold-ms").empty()) {
    options.slowThresholdMs =
        parseUint(args.option("slow-threshold-ms"), "slow-threshold-ms");
  }
  // The daemon's observability surface (per-tenant metrics, latency
  // percentiles, the flight recorder's stage traces) feeds from the
  // telemetry registry, so serve arms it by default — the opposite of
  // the one-shot CLI, where --stats opts in per run.
  options.enableTelemetry = !args.flag("no-telemetry");

  service::Server server(std::move(options));
  server.start();
  g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGINT, handleServeSignal);
  std::signal(SIGTERM, handleServeSignal);
  std::cerr << "qirkit serve: listening on " << server.options().socketPath
            << " (" << server.options().runners << " runners)\n";
  server.run();
  g_server.store(nullptr, std::memory_order_relaxed);
  std::cerr << "qirkit serve: shut down\n";
  return 0;
}

int exitCodeFor(qirkit::ErrorCode code) noexcept;

/// Numeric member of a response object; 0 when absent.
std::uint64_t fieldU64(const json::Value& root, std::string_view key) {
  const json::Value* v = root.find(key);
  return v == nullptr ? 0 : v->asU64(key);
}

/// Unpack an {"ok":false,...} response: print the daemon's classified
/// error in the CLI's own error format and return the contract exit code.
int reportServiceError(const json::Value& root) {
  const json::Value* error = root.find("error");
  const json::Value* code = error ? error->find("code") : nullptr;
  const json::Value* message = error ? error->find("message") : nullptr;
  const std::string codeName =
      code != nullptr && code->isString() ? code->string : "internal";
  std::cerr << "qirkit: error[" << codeName << "]: "
            << (message != nullptr && message->isString() ? message->string
                                                          : "malformed error response")
            << "\n";
  return exitCodeFor(service::errorCodeFromName(codeName));
}

int cmdSubmit(const Args& args) {
  const std::string socket = args.option("socket");
  if (socket.empty()) {
    fail("submit requires --socket <path>");
  }
  service::ClientOptions clientOptions;
  clientOptions.connectRetries = static_cast<unsigned>(
      parseUint(args.option("connect-retries", "0"), "connect-retries"));
  service::Client client(socket, clientOptions);

  const std::string& target = args.positional[0];
  if (target == "cancel") {
    service::CancelRequest cancel;
    cancel.tenant = args.option("tenant", "cli");
    cancel.requestId = args.option("request-id");
    if (cancel.requestId.empty()) {
      fail("submit cancel requires --request-id <id>");
    }
    const std::string response =
        client.call(service::cancelRequestJson(cancel));
    std::cout << response << "\n";
    const json::Value root = json::parse(response);
    const json::Value* ok = root.find("ok");
    return ok != nullptr && ok->isBool() && ok->boolean
               ? 0
               : reportServiceError(root);
  }
  if (target == "metrics") {
    const std::string format = args.option("format", "json");
    if (format != "json" && format != "prometheus") {
      fail("--format expects json or prometheus, got '" + format + "'");
    }
    service::MetricsRequest metrics;
    metrics.prometheus = format == "prometheus";
    const std::string response =
        client.call(service::metricsRequestJson(metrics));
    const json::Value root = json::parse(response);
    const json::Value* ok = root.find("ok");
    if (ok == nullptr || !ok->isBool() || !ok->boolean) {
      std::cout << response << "\n";
      return reportServiceError(root);
    }
    if (metrics.prometheus) {
      // Unwrap the escaped exposition text: stdout carries exactly what a
      // Prometheus textfile collector expects, not the JSON envelope.
      const json::Value* body = root.find("body");
      std::cout << (body != nullptr && body->isString() ? body->string : "");
      return 0;
    }
    std::cout << response << "\n";
    return 0;
  }
  if (target == "events") {
    service::EventsRequest events;
    events.tenant = args.option("tenant"); // empty = every tenant
    events.limit = parseUint(args.option("limit", "0"), "limit");
    const std::string response =
        client.call(service::eventsRequestJson(events));
    std::cout << response << "\n";
    const json::Value root = json::parse(response);
    const json::Value* ok = root.find("ok");
    return ok != nullptr && ok->isBool() && ok->boolean
               ? 0
               : reportServiceError(root);
  }
  if (target == "ping" || target == "shutdown") {
    const service::RequestType type = target == "ping"
                                          ? service::RequestType::Ping
                                          : service::RequestType::Shutdown;
    const std::string response = client.call(service::simpleRequestJson(type));
    std::cout << response << "\n";
    const json::Value root = json::parse(response);
    const json::Value* ok = root.find("ok");
    return ok != nullptr && ok->isBool() && ok->boolean
               ? 0
               : reportServiceError(root);
  }

  service::SubmitRequest request;
  request.tenant = args.option("tenant", "cli");
  if (target.rfind('@', 0) == 0) {
    request.programRef = target.substr(1); // resubmit by content id
  } else {
    request.program = readFile(target);
  }
  request.shots = parseUint(args.option("shots", "100"), "shots");
  if (!args.option("seed").empty()) {
    request.seed = parseUint(args.option("seed"), "seed");
  }
  const std::string engine = args.option("engine", "vm");
  if (engine == "vm") {
    request.engine = vm::Engine::Vm;
  } else if (engine == "interp") {
    request.engine = vm::Engine::Interp;
  } else {
    fail("--engine must be vm or interp");
  }
  const std::string execMode = args.option("exec-mode", "auto");
  if (execMode == "auto") {
    request.execMode = vm::ExecMode::Auto;
  } else if (execMode == "resim") {
    request.execMode = vm::ExecMode::Resim;
  } else if (execMode == "sample") {
    request.execMode = vm::ExecMode::Sample;
  } else {
    fail("--exec-mode must be auto, resim, or sample");
  }
  const std::string fusion = args.option("fusion", "on");
  if (fusion == "on") {
    request.fusion = true;
  } else if (fusion == "off") {
    request.fusion = false;
  } else {
    fail("--fusion must be on or off");
  }
  const std::string dispatch =
      args.option("dispatch", vm::dispatchModeName(request.dispatch));
  if (dispatch == "switch") {
    request.dispatch = vm::DispatchMode::Switch;
  } else if (dispatch == "threaded") {
    request.dispatch = vm::DispatchMode::Threaded;
  } else {
    fail("--dispatch must be switch or threaded");
  }
  if (!sim::parsePrecision(args.option("precision", "f64"),
                           request.precision)) {
    fail("--precision must be f64 or f32");
  }
  request.forceF32 = args.flag("force-f32");
  if (!args.option("priority").empty()) {
    try {
      request.priority = std::stoll(args.option("priority"));
    } catch (const std::exception&) {
      fail("--priority expects an integer, got '" + args.option("priority") +
           "'");
    }
  }
  request.deadlineMs =
      parseUint(args.option("deadline-ms", "0"), "deadline-ms");
  request.requestId = args.option("request-id");

  const std::string response =
      client.call(service::submitRequestJson(request));
  if (args.flag("json")) {
    std::cout << response << "\n";
    const json::Value root = json::parse(response);
    const json::Value* ok = root.find("ok");
    return ok != nullptr && ok->isBool() && ok->boolean ? 0 : 1;
  }
  const json::Value root = json::parse(response);
  const json::Value* ok = root.find("ok");
  if (ok == nullptr || !ok->isBool() || !ok->boolean) {
    return reportServiceError(root);
  }
  // stderr: the serve-side attribution `qirkit run` has no equivalent for.
  const json::Value* programId = root.find("program_id");
  std::cerr << "job " << fieldU64(root, "job_id") << ": program @"
            << (programId != nullptr ? programId->string : "?") << ", seed "
            << fieldU64(root, "seed") << ", queue "
            << fieldU64(root, "queue_wait_ns") / 1000 << " us, exec "
            << fieldU64(root, "exec_ns") / 1000 << " us\n";
  if (args.flag("verbose-timing")) {
    // Per-stage breakdown from the response's trace context, on stderr so
    // stdout stays byte-identical to `qirkit run`.
    if (const json::Value* stages = root.find("stages")) {
      for (const json::Value& stage : stages->array) {
        const json::Value* name = stage.find("stage");
        const json::Value* note = stage.find("note");
        std::cerr << "  stage "
                  << (name != nullptr && name->isString() ? name->string : "?");
        if (note != nullptr && note->isString()) {
          std::cerr << " [" << note->string << "]";
        }
        std::cerr << ": start +" << fieldU64(stage, "start_ns") / 1000
                  << " us, took " << fieldU64(stage, "dur_ns") / 1000
                  << " us\n";
      }
    }
  }
  // stdout: byte-identical to `qirkit run` so histograms diff with cmp.
  std::cout << "shots: " << fieldU64(root, "shots")
            << ", gates/shot: " << fieldU64(root, "gates_per_shot")
            << ", measurements/shot: "
            << fieldU64(root, "measurements_per_shot") << "\n";
  if (const json::Value* histogram = root.find("histogram")) {
    for (const auto& [bits, count] : histogram->object) {
      std::cout << (bits.empty() ? "(no recorded output)" : bits) << ": "
                << static_cast<std::uint64_t>(count.number) << "\n";
    }
  }
  return 0;
}

void usage() {
  std::cerr
      << "usage: qirkit <parse|validate|opt|compile|run|translate|"
         "partition|feasibility|serve|submit> <file> [options]\n"
         "common options:\n"
         "  --stats[=text|json]   print telemetry (parse/pass/vm/cache/shot\n"
         "                        metrics) on stderr after the command\n"
         "  -o <path>             write primary output to a file\n"
         "run options: --shots N --seed S --engine vm|interp --jobs N\n"
         "             --exec-mode auto|resim|sample --fusion on|off\n"
         "             --dispatch switch|threaded (VM dispatch loop;\n"
         "             default: the build's best available)\n"
         "             --precision f64|f32 (f32: half the state memory;\n"
         "             terminal-measurement programs only unless --force-f32)\n"
         "             --retries N --max-failed-shots N --no-fallback\n"
         "             --timeout-ms N (partial histogram + error[deadline])\n"
         "compile options: --target line:N|ring:N|grid:RxC|full:N\n"
         "             --addressing static|dynamic --reuse --defer-mz\n"
         "serve: qirkit serve <socket> [--runners N] [--jobs N]\n"
         "             [--cache-capacity N] [--program-capacity N]\n"
         "             [--queue-capacity N] [--tenant-pending N]\n"
         "             [--max-shots N] [--max-frame-bytes N]\n"
         "             [--rate-limit R/s] [--rate-burst B]\n"
         "             [--memory-budget-mb N] [--watchdog-factor N]\n"
         "             [--flight-capacity N] [--slow-threshold-ms N]\n"
         "             [--no-telemetry]\n"
         "submit: qirkit submit <file|@program-id|metrics|events|ping|"
         "shutdown|cancel>\n"
         "             --socket <path> [--tenant T] [--shots N] [--seed S]\n"
         "             [--engine vm|interp] [--exec-mode M] [--fusion on|off]\n"
         "             [--dispatch switch|threaded]\n"
         "             [--precision f64|f32] [--force-f32]\n"
         "             [--priority P] [--deadline-ms N] [--request-id ID]\n"
         "             [--connect-retries N] [--json] [--verbose-timing]\n"
         "             metrics: [--format json|prometheus] (prometheus text\n"
         "             exposition on stdout); events: [--tenant T] [--limit N]\n"
         "             (flight-recorder replay of recent requests)\n"
         "environment:\n"
         "  QIRKIT_TRACE=<file>       write Chrome trace-event JSON "
         "(Perfetto)\n"
         "  QIRKIT_FAULT_INJECT=...   arm the deterministic fault injector\n"
         "see the header of tools/qirkit.cpp or README.md for details\n";
}

/// The documented exit-code contract: 0 success, 1 diagnostics/trap,
/// 2 usage, 3 internal.
int exitCodeFor(qirkit::ErrorCode code) noexcept {
  switch (code) {
  case ErrorCode::Usage:
    return 2;
  case ErrorCode::Internal:
    return 3;
  default:
    return 1;
  }
}

} // namespace

int main(int argc, char** argv) {
  // Flush any armed trace on every exit path (including thrown
  // diagnostics) so a failed run still yields a loadable trace.
  struct TraceFlusher {
    ~TraceFlusher() {
      if (!qirkit::telemetry::trace::flush()) {
        std::cerr << "qirkit: warning: could not write QIRKIT_TRACE file\n";
      }
    }
  } traceFlusher;
  try {
    qirkit::fault::FaultInjector::instance().configureFromEnv();
    qirkit::telemetry::trace::initFromEnv();
    if (argc < 3) {
      usage();
      return 2;
    }
    const std::string command = argv[1];
    const Args args = parseArgs(
        argc, argv, 2,
        {"profile", "target", "addressing", "shots", "seed", "engine", "jobs",
         "exec-mode", "fusion", "dispatch", "precision", "max-failed-shots",
         "retries",
         "to", "budget",
         "model", "output", "socket", "tenant", "priority", "runners",
         "cache-capacity", "program-capacity", "queue-capacity",
         "tenant-pending", "max-shots", "max-frame-bytes", "timeout-ms",
         "deadline-ms", "request-id", "connect-retries", "rate-limit",
         "rate-burst", "memory-budget-mb", "watchdog-factor", "format",
         "limit", "flight-capacity", "slow-threshold-ms"});
    if (args.positional.empty()) {
      usage();
      return 2;
    }
    const bool statsRequested = args.options.count("stats") != 0U;
    const std::string statsFormat = args.option("stats", "text");
    if (statsRequested) {
      if (statsFormat != "text" && statsFormat != "json") {
        fail("--stats expects text or json, got '" + statsFormat + "'");
      }
      qirkit::telemetry::setEnabled(true);
    }
    int rc = -1;
    if (command == "parse") rc = cmdParse(args);
    else if (command == "validate") rc = cmdValidate(args);
    else if (command == "opt") rc = cmdOpt(args);
    else if (command == "compile") rc = cmdCompile(args);
    else if (command == "run") rc = cmdRun(args);
    else if (command == "translate") rc = cmdTranslate(args);
    else if (command == "partition") rc = cmdPartition(args);
    else if (command == "feasibility") rc = cmdFeasibility(args);
    else if (command == "serve") rc = cmdServe(args);
    else if (command == "submit") rc = cmdSubmit(args);
    else {
      usage();
      return 2;
    }
    if (statsRequested) {
      // stderr keeps stdout byte-identical with and without --stats.
      if (statsFormat == "json") {
        std::cerr << qirkit::telemetry::statsJson(command) << "\n";
      } else {
        std::cerr << qirkit::telemetry::statsText();
      }
    }
    return rc;
  } catch (const qirkit::Error& e) {
    std::cerr << "qirkit: " << e.formatted() << "\n";
    return exitCodeFor(e.code());
  } catch (const std::exception& e) {
    std::cerr << "qirkit: error[internal]: " << e.what() << "\n";
    return 3;
  }
}
