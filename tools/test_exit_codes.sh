#!/bin/sh
# Exit-code contract + fault-injection e2e test of the qirkit CLI.
# Run by ctest with the build dir as $1.
#
# Contract (see tools/qirkit.cpp): 0 success; 1 diagnostics (parse/verify
# errors, runtime traps, nonconforming input); 2 usage errors; 3 internal
# errors. All failure detail goes to stderr as
# `qirkit: error[<code>]: <message> [at <line>:<col>]`.
set -u
QIRKIT="$1/tools/qirkit"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "EXIT CODE TEST FAILED: $1" >&2; exit 1; }

# expect <wanted-exit> <label> -- cmd args...
expect() {
  wanted="$1"; label="$2"; shift 3
  "$@" >"$WORK/out" 2>"$WORK/err"
  got=$?
  [ "$got" -eq "$wanted" ] || {
    cat "$WORK/err" >&2
    fail "$label: exit $got, want $wanted"
  }
}

cat > "$WORK/bell.ll" <<'EOF'
@lbl.array = internal constant [6 x i8] c"array\00"
@lbl.r0 = internal constant [3 x i8] c"r0\00"
@lbl.r1 = internal constant [3 x i8] c"r1\00"
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare void @__quantum__rt__array_record_output(i64, ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  call void @__quantum__rt__array_record_output(i64 2, ptr @lbl.array)
  call void @__quantum__rt__result_record_output(ptr null, ptr @lbl.r0)
  call void @__quantum__rt__result_record_output(ptr inttoptr (i64 1 to ptr), ptr @lbl.r1)
  ret void
}
attributes #0 = { "entry_point" "qir_profiles"="base_profile" "required_num_qubits"="2" "required_num_results"="2" }
EOF

cat > "$WORK/trap.ll" <<'EOF'
define i64 @main() #0 {
entry:
  %x = sdiv i64 1, 0
  ret i64 %x
}
attributes #0 = { "entry_point" }
EOF

cat > "$WORK/broken.ll" <<'EOF'
define void @main() {
entry:
  br label %missing
}
EOF

# --- 0: success -----------------------------------------------------------
expect 0 "successful run" -- "$QIRKIT" run "$WORK/bell.ll" --shots 10 --seed 3

# --- 1: diagnostics -------------------------------------------------------
expect 1 "parse error" -- "$QIRKIT" parse "$WORK/broken.ll"
grep -q "qirkit: error\[parse\]: " "$WORK/err" || fail "parse error format"
grep -q " at 3:" "$WORK/err" || fail "parse error carries the source location"

expect 1 "runtime trap" -- "$QIRKIT" run "$WORK/trap.ll" --shots 2
grep -q "qirkit: error\[trap-arithmetic\]: " "$WORK/err" || fail "trap code"

expect 1 "missing input file" -- "$QIRKIT" parse "$WORK/nonexistent.ll"
grep -q "qirkit: error\[io\]: " "$WORK/err" || fail "io error format"

# --- 2: usage -------------------------------------------------------------
expect 2 "no arguments" -- "$QIRKIT"
expect 2 "unknown command" -- "$QIRKIT" frobnicate "$WORK/bell.ll"
expect 2 "bad numeric option" -- "$QIRKIT" run "$WORK/bell.ll" --shots banana
grep -q "error\[usage\]" "$WORK/err" || fail "bad option reported as usage"
expect 2 "bad engine" -- "$QIRKIT" run "$WORK/bell.ll" --engine turbo
expect 2 "malformed fault spec" -- \
  env QIRKIT_FAULT_INJECT="nonsense" "$QIRKIT" run "$WORK/bell.ll"
grep -q "error\[usage\]: QIRKIT_FAULT_INJECT" "$WORK/err" || fail "fault spec usage error"

# --- fault injection: per-shot isolation ----------------------------------
# These drills target the per-shot resim machinery, so they pin
# --exec-mode resim: under the default auto mode this terminal program
# would be served by the single-simulation sampling path, which consumes
# fault-injector probes on a different schedule.
# One injected permanent fault lands in shot 0; the other 49 complete.
expect 0 "isolated failed shot" -- \
  env QIRKIT_FAULT_INJECT="site=runtime-call,at=1,transient=0" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 50 --seed 7 --engine interp \
  --exec-mode resim --max-failed-shots 1
grep -q "warning: 1 of 50 shot(s) failed: injected-fault x1" "$WORK/err" \
  || fail "failure histogram on stderr"
TOTAL=$(awk -F': ' '/^[01]+: /{n+=$2} END{print n+0}' "$WORK/out")
[ "$TOTAL" -eq 49 ] || fail "histogram should hold the 49 surviving shots, got $TOTAL"

# The same fault without the threshold aborts the batch (historical contract).
expect 1 "threshold zero aborts" -- \
  env QIRKIT_FAULT_INJECT="site=runtime-call,at=1,transient=0" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 50 --seed 7 --engine interp \
  --exec-mode resim
grep -q "error\[injected-fault\]" "$WORK/err" || fail "injected fault code"

# A transient fault is retried away: batch succeeds, retry reported.
expect 0 "transient retry" -- \
  env QIRKIT_FAULT_INJECT="site=runtime-call,at=1,transient=1" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 20 --seed 7 --engine interp \
  --exec-mode resim --retries 2
grep -q "warning: 1 transient-fault retry attempt(s)" "$WORK/err" || fail "retry warning"

# A VM-only trap is rescued per shot on the reference interpreter.
expect 0 "vm shot rescued" -- \
  env QIRKIT_FAULT_INJECT="site=vm-dispatch,at=1" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 10 --seed 7 --engine vm \
  --exec-mode resim
grep -q "trapped on the vm and were rerun" "$WORK/err" || fail "rescue warning"

# A fault inside the sampling path degrades to per-shot resim: the batch
# still completes every shot and reports the fallback on stderr.
expect 0 "sampling fault degrades" -- \
  env QIRKIT_FAULT_INJECT="site=runtime-call,at=1,transient=0" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 10 --seed 7 --engine interp
grep -q "warning: sampling path degraded to per-shot resimulation" "$WORK/err" \
  || fail "sampling fallback warning"
TOTAL=$(awk -F': ' '/^[01]+: /{n+=$2} END{print n+0}' "$WORK/out")
[ "$TOTAL" -eq 10 ] || fail "degraded sampling batch should keep all 10 shots, got $TOTAL"

# --- graceful degradation: VM -> interpreter ------------------------------
env QIRKIT_FAULT_INJECT="site=bytecode-compile,at=1" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 40 --seed 11 --engine vm \
  >"$WORK/degraded.out" 2>"$WORK/degraded.err" \
  || fail "degraded run should still succeed"
grep -q "engine: interp" "$WORK/degraded.err" || fail "degraded engine report"
grep -q "warning: degraded to the reference interpreter" "$WORK/degraded.err" \
  || fail "degradation warning"
"$QIRKIT" run "$WORK/bell.ll" --shots 40 --seed 11 --engine interp \
  >"$WORK/native.out" 2>/dev/null || fail "native interp run"
cmp -s "$WORK/degraded.out" "$WORK/native.out" \
  || fail "degraded stdout must be byte-identical to a native interpreter run"

# Degradation can be refused: --no-fallback propagates the compile failure.
expect 1 "no-fallback propagates" -- \
  env QIRKIT_FAULT_INJECT="site=bytecode-compile,at=1" \
  "$QIRKIT" run "$WORK/bell.ll" --shots 4 --engine vm --no-fallback
grep -q "error\[injected-fault\]" "$WORK/err" || fail "compile failure code"

echo "EXIT CODE TEST PASSED"
