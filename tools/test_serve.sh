#!/bin/sh
# End-to-end test of `qirkit serve` / `qirkit submit`. Run by ctest with
# the build dir as $1. Exercises: daemon startup, two tenants submitting
# concurrently, histograms byte-identical to single-process `qirkit run`,
# a cross-request compile-cache hit visible in the metrics document,
# program_ref resubmission, the exit-code contract for structured errors,
# and a clean drain-and-exit shutdown.
set -e
QIRKIT="$1/tools/qirkit"
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "SERVE TEST FAILED: $1" >&2; exit 1; }

cat > "$WORK/bell.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q -> c;
EOF

cat > "$WORK/ghz.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
measure q -> c;
EOF

# -- startup ---------------------------------------------------------------
"$QIRKIT" serve "$SOCK" --runners 2 --jobs 2 2> "$WORK/serve.log" &
SERVE_PID=$!
for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon did not create the socket"
"$QIRKIT" submit ping --socket "$SOCK" | grep -q '"type":"pong"' \
  || fail "ping"

# -- two tenants, concurrently; histograms must match `qirkit run` ---------
"$QIRKIT" run "$WORK/bell.qasm" --shots 60 --seed 7 2>/dev/null \
  > "$WORK/bell.expected"
"$QIRKIT" run "$WORK/ghz.qasm" --shots 40 --seed 3 2>/dev/null \
  > "$WORK/ghz.expected"

"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant alice \
  --shots 60 --seed 7 2>/dev/null > "$WORK/bell.alice" &
A=$!
"$QIRKIT" submit "$WORK/ghz.qasm" --socket "$SOCK" --tenant bob \
  --shots 40 --seed 3 2>/dev/null > "$WORK/ghz.bob" &
B=$!
wait $A || fail "alice submit"
wait $B || fail "bob submit"
cmp -s "$WORK/bell.alice" "$WORK/bell.expected" \
  || fail "served bell histogram differs from qirkit run"
cmp -s "$WORK/ghz.bob" "$WORK/ghz.expected" \
  || fail "served ghz histogram differs from qirkit run"

# -- cross-request cache reuse: same program again, different tenant -------
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant bob \
  --shots 60 --seed 7 2>/dev/null > "$WORK/bell.bob" || fail "bob resubmit"
cmp -s "$WORK/bell.bob" "$WORK/bell.expected" || fail "bob histogram differs"

METRICS="$("$QIRKIT" submit metrics --socket "$SOCK")"
echo "$METRICS" | grep -q '"hits":0,' && fail "no cross-request cache hit"
echo "$METRICS" | grep -q '"tenants":{"alice"' || fail "tenant gauges missing"
echo "$METRICS" | grep -q '"completed":3' || fail "job counter"

# -- program_ref resubmission ----------------------------------------------
REF="$("$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant alice \
  --shots 60 --seed 7 --json | sed 's/.*"program_id":"\([0-9a-f]*\)".*/\1/')"
[ -n "$REF" ] || fail "no program_id in response"
"$QIRKIT" submit "@$REF" --socket "$SOCK" --tenant alice --shots 60 --seed 7 \
  2>/dev/null > "$WORK/bell.ref" || fail "submit by ref"
cmp -s "$WORK/bell.ref" "$WORK/bell.expected" || fail "ref histogram differs"

# -- exit-code contract over the wire --------------------------------------
echo "garbage" > "$WORK/broken.ll"
set +e
"$QIRKIT" submit "$WORK/broken.ll" --socket "$SOCK" 2> "$WORK/err1"
[ $? -eq 1 ] || fail "diagnostic error should exit 1"
grep -q "error\[parse\]" "$WORK/err1" || fail "parse error format"

"$QIRKIT" submit "@nosuchprogram" --socket "$SOCK" 2> "$WORK/err2"
[ $? -eq 2 ] || fail "unknown ref should exit 2 (usage)"

"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --shots 99999999 \
  2> "$WORK/err3"
[ $? -eq 1 ] || fail "quota reject should exit 1"
grep -q "error\[resource-limit\]" "$WORK/err3" || fail "quota error format"

"$QIRKIT" submit ping --socket "$WORK/absent.sock" 2> "$WORK/err4"
[ $? -eq 1 ] || fail "unreachable daemon should exit 1 (io)"
set -e

# -- clean shutdown --------------------------------------------------------
"$QIRKIT" submit shutdown --socket "$SOCK" > /dev/null || fail "shutdown verb"
for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  fail "daemon still running after shutdown"
fi
wait "$SERVE_PID"
[ $? -eq 0 ] || fail "daemon exited nonzero"
SERVE_PID=""
[ -S "$SOCK" ] && fail "socket not unlinked on shutdown"
grep -q "shut down" "$WORK/serve.log" || fail "shutdown not logged"

echo "SERVE TESTS PASSED"
