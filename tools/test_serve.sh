#!/bin/sh
# End-to-end test of `qirkit serve` / `qirkit submit`. Run by ctest with
# the build dir as $1. Exercises: daemon startup, two tenants submitting
# concurrently, histograms byte-identical to single-process `qirkit run`,
# a cross-request compile-cache hit visible in the metrics document,
# program_ref resubmission, the exit-code contract for structured errors,
# and a clean drain-and-exit shutdown.
set -e
QIRKIT="$1/tools/qirkit"
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "SERVE TEST FAILED: $1" >&2; exit 1; }

cat > "$WORK/bell.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q -> c;
EOF

cat > "$WORK/ghz.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
measure q -> c;
EOF

# -- startup ---------------------------------------------------------------
"$QIRKIT" serve "$SOCK" --runners 2 --jobs 2 2> "$WORK/serve.log" &
SERVE_PID=$!
for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon did not create the socket"
"$QIRKIT" submit ping --socket "$SOCK" | grep -q '"type":"pong"' \
  || fail "ping"

# -- two tenants, concurrently; histograms must match `qirkit run` ---------
"$QIRKIT" run "$WORK/bell.qasm" --shots 60 --seed 7 2>/dev/null \
  > "$WORK/bell.expected"
"$QIRKIT" run "$WORK/ghz.qasm" --shots 40 --seed 3 2>/dev/null \
  > "$WORK/ghz.expected"

"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant alice \
  --shots 60 --seed 7 2>/dev/null > "$WORK/bell.alice" &
A=$!
"$QIRKIT" submit "$WORK/ghz.qasm" --socket "$SOCK" --tenant bob \
  --shots 40 --seed 3 2>/dev/null > "$WORK/ghz.bob" &
B=$!
wait $A || fail "alice submit"
wait $B || fail "bob submit"
cmp -s "$WORK/bell.alice" "$WORK/bell.expected" \
  || fail "served bell histogram differs from qirkit run"
cmp -s "$WORK/ghz.bob" "$WORK/ghz.expected" \
  || fail "served ghz histogram differs from qirkit run"

# -- cross-request cache reuse: same program again, different tenant -------
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant bob \
  --shots 60 --seed 7 2>/dev/null > "$WORK/bell.bob" || fail "bob resubmit"
cmp -s "$WORK/bell.bob" "$WORK/bell.expected" || fail "bob histogram differs"

METRICS="$("$QIRKIT" submit metrics --socket "$SOCK")"
echo "$METRICS" | grep -q '"hits":0,' && fail "no cross-request cache hit"
echo "$METRICS" | grep -q '"tenants":{"alice"' || fail "tenant gauges missing"
echo "$METRICS" | grep -q '"completed":3' || fail "job counter"
echo "$METRICS" | grep -q '"latency":{"job":{"count":' \
  || fail "latency percentiles missing from metrics"
echo "$METRICS" | grep -q '"p99_ns":' || fail "p99 missing from metrics"

# -- Prometheus exposition: must parse as format 0.0.4 ---------------------
# A stdlib-only validator: every non-comment line is `name{labels} value`,
# every series is preceded by a matching # TYPE, labels are well-formed.
"$QIRKIT" submit metrics --socket "$SOCK" --format prometheus \
  > "$WORK/metrics.prom" || fail "prometheus metrics verb"
python3 - "$WORK/metrics.prom" <<'PYEOF' || fail "prometheus exposition invalid"
import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
SAMPLE = re.compile(rf"^({NAME})(\{{[^}}]*\}})? (-?[0-9eE+.]+|\+Inf|NaN)$")
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')

types = {}
samples = 0
for line in open(sys.argv[1], encoding="utf-8"):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split(" ")
        if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"):
            sys.exit(f"bad TYPE line: {line}")
        types[parts[2]] = parts[3]
        continue
    if line.startswith("#"):
        continue
    m = SAMPLE.match(line)
    if not m:
        sys.exit(f"bad sample line: {line}")
    if m.group(2):
        for pair in m.group(2)[1:-1].split(","):
            if not LABEL.match(pair):
                sys.exit(f"bad label '{pair}' in: {line}")
    base = re.sub(r"_(bucket|sum|count)$", "", m.group(1))
    if m.group(1) not in types and base not in types:
        sys.exit(f"series without a TYPE declaration: {line}")
    samples += 1
if samples == 0:
    sys.exit("no samples in exposition body")
PYEOF
grep -q 'qirkit_serve_tenant_completed{tenant="alice"} ' "$WORK/metrics.prom" \
  || fail "per-tenant labeled series missing from prometheus body"

# -- --verbose-timing: stage breakdown on stderr, stdout untouched ---------
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant alice \
  --shots 60 --seed 7 --verbose-timing 2> "$WORK/timing.err" \
  > "$WORK/bell.timed" || fail "verbose-timing submit"
cmp -s "$WORK/bell.timed" "$WORK/bell.expected" \
  || fail "verbose-timing changed stdout"
grep -q "stage execute" "$WORK/timing.err" \
  || fail "verbose-timing missing execute stage"
grep -q "stage queue" "$WORK/timing.err" \
  || fail "verbose-timing missing queue stage"

# -- program_ref resubmission ----------------------------------------------
REF="$("$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --tenant alice \
  --shots 60 --seed 7 --json | sed 's/.*"program_id":"\([0-9a-f]*\)".*/\1/')"
[ -n "$REF" ] || fail "no program_id in response"
"$QIRKIT" submit "@$REF" --socket "$SOCK" --tenant alice --shots 60 --seed 7 \
  2>/dev/null > "$WORK/bell.ref" || fail "submit by ref"
cmp -s "$WORK/bell.ref" "$WORK/bell.expected" || fail "ref histogram differs"

# -- exit-code contract over the wire --------------------------------------
echo "garbage" > "$WORK/broken.ll"
set +e
"$QIRKIT" submit "$WORK/broken.ll" --socket "$SOCK" 2> "$WORK/err1"
[ $? -eq 1 ] || fail "diagnostic error should exit 1"
grep -q "error\[parse\]" "$WORK/err1" || fail "parse error format"

"$QIRKIT" submit "@nosuchprogram" --socket "$SOCK" 2> "$WORK/err2"
[ $? -eq 2 ] || fail "unknown ref should exit 2 (usage)"

"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK" --shots 99999999 \
  2> "$WORK/err3"
[ $? -eq 1 ] || fail "quota reject should exit 1"
grep -q "error\[resource-limit\]" "$WORK/err3" || fail "quota error format"

"$QIRKIT" submit ping --socket "$WORK/absent.sock" 2> "$WORK/err4"
[ $? -eq 1 ] || fail "unreachable daemon should exit 1 (io)"
set -e

# -- clean shutdown --------------------------------------------------------
"$QIRKIT" submit shutdown --socket "$SOCK" > /dev/null || fail "shutdown verb"
for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  fail "daemon still running after shutdown"
fi
wait "$SERVE_PID"
[ $? -eq 0 ] || fail "daemon exited nonzero"
SERVE_PID=""
[ -S "$SOCK" ] && fail "socket not unlinked on shutdown"
grep -q "shut down" "$WORK/serve.log" || fail "shutdown not logged"

# -- chaos drill: fault injection + deadline cut against a live daemon -----
# A fresh daemon with the deterministic fault injector armed: the first
# runtime-call probe of the first executed job throws a permanent injected
# fault. The daemon must answer with the structured error, stay up, and
# serve every subsequent request untouched.
SOCK2="$WORK/chaos.sock"
env QIRKIT_FAULT_INJECT="site=runtime-call,at=1,transient=0" \
  "$QIRKIT" serve "$SOCK2" --runners 1 --jobs 2 --max-shots 100000000 \
  2> "$WORK/chaos.log" &
SERVE_PID=$!
for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  [ -S "$SOCK2" ] && break
  sleep 0.1
done
[ -S "$SOCK2" ] || fail "chaos daemon did not create the socket"

set +e
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK2" --tenant chaos \
  --shots 50 --seed 7 --engine interp --exec-mode resim 2> "$WORK/err5"
[ $? -eq 1 ] || fail "injected fault should exit 1"
set -e
grep -q "error\[injected-fault\]" "$WORK/err5" || fail "injected fault format"
kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died on injected fault"

# A deadline-exceeded request: far more resim work than its 25 ms budget
# allows. The cut must come back as error[deadline] (exit 1) with the
# daemon unharmed.
set +e
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK2" --tenant chaos \
  --shots 2000000 --seed 7 --exec-mode resim --deadline-ms 25 \
  2> "$WORK/err6" > /dev/null
[ $? -eq 1 ] || fail "deadline cut should exit 1"
set -e
grep -q "error\[deadline\]" "$WORK/err6" || fail "deadline error format"
kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died on deadline cut"

# The flight recorder must have archived the deadline cut with its cause
# and the captured per-stage trace (errored requests keep their stages).
EVENTS="$("$QIRKIT" submit events --socket "$SOCK2" --tenant chaos)" \
  || fail "events verb"
echo "$EVENTS" | grep -q '"type":"events"' || fail "events response type"
echo "$EVENTS" | grep -q '"error":"deadline"' \
  || fail "deadline cut missing from events"
echo "$EVENTS" | grep -q '"cause":"deadline"' \
  || fail "deadline cause missing from events"
echo "$EVENTS" | grep -q '"stage":"execute"' \
  || fail "per-stage timings missing from events"

# After both injected failures, a clean request must still produce the
# exact single-process histogram.
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK2" --tenant chaos \
  --shots 60 --seed 7 2>/dev/null > "$WORK/bell.chaos" \
  || fail "submit after chaos"
cmp -s "$WORK/bell.chaos" "$WORK/bell.expected" \
  || fail "post-chaos histogram differs"

# -- SIGTERM graceful drain ------------------------------------------------
# A long-running job plus a queued one (single runner), then SIGTERM: the
# running job must flush to completion, the queued one must be cancelled
# with an explicit disposition, and the daemon must exit 0.
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK2" --tenant drain \
  --shots 3000000 --seed 7 --exec-mode resim 2>/dev/null \
  > "$WORK/drain.running" &
A=$!
sleep 0.3
"$QIRKIT" submit "$WORK/bell.qasm" --socket "$SOCK2" --tenant drain2 \
  --shots 50 --seed 7 2> "$WORK/drain.queued.err" > /dev/null &
B=$!
sleep 0.3
kill -TERM "$SERVE_PID"

wait $A || fail "running job should flush to completion across the drain"
grep -q "^[01][01]: " "$WORK/drain.running" \
  || fail "flushed job should deliver its histogram"
set +e
wait $B
[ $? -eq 1 ] || fail "queued job should be drain-cancelled with exit 1"
set -e
grep -q "error\[deadline\].*draining" "$WORK/drain.queued.err" \
  || fail "drain disposition missing from queued job's error"

for i in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  fail "daemon still running after SIGTERM drain"
fi
set +e
wait "$SERVE_PID"
[ $? -eq 0 ] || fail "daemon should exit 0 after a graceful drain"
set -e
SERVE_PID=""
grep -q "drain: job" "$WORK/chaos.log" \
  || fail "per-job drain disposition not logged"
grep -q "shut down" "$WORK/chaos.log" || fail "drain shutdown not logged"

echo "SERVE TESTS PASSED"
