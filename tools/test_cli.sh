#!/bin/sh
# End-to-end test of the qirkit CLI. Run by ctest with the build dir as $1.
set -e
QIRKIT="$1/tools/qirkit"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "CLI TEST FAILED: $1" >&2; exit 1; }

cat > "$WORK/bell.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q -> c;
EOF

cat > "$WORK/rus.qasm3" <<'EOF'
OPENQASM 3;
qubit[3] q;
bit[3] c;
h q[0];
for int i in [0:1] {
  cx q[i], q[i+1];
}
for int i in [0:2] {
  c[i] = measure q[i];
}
EOF

# translate: QASM2 -> QIR (both addressings) -> back to QASM2
"$QIRKIT" translate "$WORK/bell.qasm" --to qir -o "$WORK/bell.ll" || fail "translate to qir"
grep -q "__quantum__qis__cnot__body" "$WORK/bell.ll" || fail "qir content"
"$QIRKIT" translate "$WORK/bell.ll" --to qasm -o "$WORK/bell2.qasm" || fail "translate back"
grep -q "cx q\[0\], q\[1\];" "$WORK/bell2.qasm" || fail "qasm round trip"

# parse + validate
"$QIRKIT" parse "$WORK/bell.ll" | grep -q "verifier: clean" || fail "parse"
"$QIRKIT" validate "$WORK/bell.ll" --profile base | grep -q "conforms" || fail "validate"

# run: correlated GHZ-style outputs only
OUT="$("$QIRKIT" run "$WORK/bell.ll" --shots 50 --seed 9)"
echo "$OUT" | grep -qE "^(00|11): " || fail "run histogram"
echo "$OUT" | grep -qE "^01: |^10: " && fail "uncorrelated output"

# both execution engines must produce the identical histogram for a seed
OUT_VM="$("$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --engine vm 2>/dev/null)"
OUT_INTERP="$("$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --engine interp 2>/dev/null)"
[ "$OUT_VM" = "$OUT_INTERP" ] || fail "vm and interp engines disagree"

# execution modes: the default auto routes this terminal program to the
# sampling fast path (reported on stderr); forcing resim and sample both
# keep the Bell correlations; every mode is deterministic per seed.
"$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 2>"$WORK/mode.err" \
  >"$WORK/mode.auto" || fail "auto exec mode run"
grep -q "exec mode: sample" "$WORK/mode.err" || fail "auto did not sample"
"$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --exec-mode sample \
  2>/dev/null >"$WORK/mode.sample" || fail "sample exec mode run"
cmp -s "$WORK/mode.auto" "$WORK/mode.sample" || fail "auto and sample disagree"
"$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --exec-mode resim \
  2>"$WORK/mode.err" >"$WORK/mode.resim" || fail "resim exec mode run"
grep -q "exec mode: sample" "$WORK/mode.err" && fail "resim must not sample"
grep -qE "^(00|11): " "$WORK/mode.resim" || fail "resim histogram"
rc=0; "$QIRKIT" run "$WORK/bell.ll" --exec-mode turbo >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "--exec-mode turbo must exit 2 (got $rc)"

# gate fusion is transparent: fused (default) and unfused runs produce
# identical histograms per seed, and bad values are usage errors
"$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --fusion off \
  2>/dev/null >"$WORK/nofuse" || fail "--fusion off run"
cmp -s "$WORK/mode.auto" "$WORK/nofuse" || fail "--fusion on/off disagree"
rc=0; "$QIRKIT" run "$WORK/bell.ll" --fusion maybe >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "--fusion maybe must exit 2 (got $rc)"

# the VM dispatch loop is transparent: both loops produce identical
# histograms per seed (threaded falls back to switch on builds without
# computed goto), and bad values are usage errors
"$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --dispatch switch \
  2>/dev/null >"$WORK/disp.switch" || fail "--dispatch switch run"
"$QIRKIT" run "$WORK/bell.ll" --shots 30 --seed 5 --dispatch threaded \
  2>/dev/null >"$WORK/disp.threaded" || fail "--dispatch threaded run"
cmp -s "$WORK/disp.switch" "$WORK/disp.threaded" || fail "dispatch loops disagree"
cmp -s "$WORK/mode.auto" "$WORK/disp.switch" || fail "--dispatch changed results"
rc=0; "$QIRKIT" run "$WORK/bell.ll" --dispatch jit >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "--dispatch jit must exit 2 (got $rc)"

# forcing sample on a feedback-dependent program is a usage error
cat > "$WORK/feedback.ll" <<'EOF'
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %flip, label %done
flip:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  br label %done
done:
  ret void
}
attributes #0 = { "entry_point" }
EOF
rc=0; "$QIRKIT" run "$WORK/feedback.ll" --exec-mode sample \
  >/dev/null 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || fail "sample on feedback program must exit 2 (got $rc)"
grep -q "error\[usage\]" "$WORK/err" || fail "feedback sample usage diagnostic"
"$QIRKIT" run "$WORK/feedback.ll" --shots 10 >/dev/null 2>"$WORK/err" \
  || fail "feedback program under auto"
grep -q "exec mode: sample" "$WORK/err" && fail "auto sampled a feedback program"

# run an OpenQASM 3 program directly
"$QIRKIT" run "$WORK/rus.qasm3" --shots 20 | grep -qE "^(000|111): " || fail "qasm3 run"

# compile with mapping + reuse + deferral
"$QIRKIT" compile "$WORK/bell.ll" --target line:4 --defer-mz -o "$WORK/compiled.ll" \
  || fail "compile"
"$QIRKIT" validate "$WORK/compiled.ll" --profile base | grep -q "conforms" \
  || fail "compiled profile"

# opt reduces a loop program
cat > "$WORK/loop.ll" <<'EOF'
declare void @__quantum__qis__h__body(ptr)
define void @main() #0 {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %n, %b ]
  %c = icmp slt i64 %i, 4
  br i1 %c, label %b, label %e
b:
  %p = inttoptr i64 %i to ptr
  call void @__quantum__qis__h__body(ptr %p)
  %n = add i64 %i, 1
  br label %h
e:
  ret void
}
attributes #0 = { "entry_point" }
EOF
"$QIRKIT" opt "$WORK/loop.ll" -o "$WORK/loop.opt.ll" || fail "opt"
COUNT=$(grep -c "__quantum__qis__h__body(ptr" "$WORK/loop.opt.ll" || true)
[ "$COUNT" -eq 5 ] || fail "opt did not unroll (found $COUNT h lines, want 4 calls + 1 declare)"

# hybrid analyses
"$QIRKIT" partition "$WORK/bell.ll" | grep -q "quantum: " || fail "partition"
"$QIRKIT" feasibility "$WORK/bell.ll" --budget 100 | grep -q "feasible: yes" || fail "feasibility"

# usage text stays in sync with the documented flags: every flag/env var
# the README documents must appear when qirkit is invoked without args.
"$QIRKIT" 2>"$WORK/usage" || true
for doc in --stats QIRKIT_TRACE QIRKIT_FAULT_INJECT --shots --engine \
    --exec-mode --fusion --dispatch --precision --force-f32 --target; do
  grep -q -- "$doc" "$WORK/usage" || fail "usage text does not mention $doc"
done

# numeric options reject negative values as usage errors (exit 2)
for opt in shots jobs retries max-failed-shots; do
  rc=0; "$QIRKIT" run "$WORK/bell.ll" --$opt -3 >/dev/null 2>"$WORK/err" || rc=$?
  [ "$rc" -eq 2 ] || fail "--$opt -3 must exit 2 (got $rc)"
  grep -q "qirkit: error\[usage\]: " "$WORK/err" || fail "--$opt -3 diagnostic format"
done

# --stats json: stdout stays byte-identical, stderr's last line is the
# versioned JSON report with the documented sections
"$QIRKIT" run "$WORK/bell.ll" --shots 40 --seed 3 >"$WORK/out.plain" 2>/dev/null \
  || fail "run without stats"
"$QIRKIT" run "$WORK/bell.ll" --shots 40 --seed 3 --stats json \
  >"$WORK/out.stats" 2>"$WORK/stats.err" || fail "run with stats"
cmp -s "$WORK/out.plain" "$WORK/out.stats" || fail "--stats changed stdout"
tail -n 1 "$WORK/stats.err" > "$WORK/stats.json"
for section in schema_version \"parse\" \"passes\" \"vm\" \"cache\" \"shots\" latency_ns; do
  grep -q "$section" "$WORK/stats.json" || fail "stats json missing $section"
done
"$QIRKIT" run "$WORK/bell.ll" --shots 5 --stats >/dev/null 2>"$WORK/stats.txt" \
  || fail "run with text stats"
grep -q "qirkit telemetry" "$WORK/stats.txt" || fail "text stats header"
rc=0; "$QIRKIT" run "$WORK/bell.ll" --stats=bogus >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "--stats=bogus must exit 2 (got $rc)"

# QIRKIT_TRACE writes Chrome trace-event JSON
rc=0; QIRKIT_TRACE="$WORK/trace.json" "$QIRKIT" run "$WORK/bell.ll" --shots 5 \
  >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 0 ] || fail "run with QIRKIT_TRACE (got $rc)"
grep -q "traceEvents" "$WORK/trace.json" || fail "trace file missing traceEvents"
grep -q "execute.batch" "$WORK/trace.json" || fail "trace file missing spans"

# error paths honor the exit-code contract (0 ok, 1 diagnostics, 2 usage,
# 3 internal) and report `error[<code>]` on stderr; test_exit_codes.sh
# covers the full matrix.
rc=0; "$QIRKIT" validate "$WORK/loop.ll" --profile base >/dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "nonconforming input must exit 1 (got $rc)"
rc=0; "$QIRKIT" parse "$WORK/nonexistent.ll" >/dev/null 2>"$WORK/err" || rc=$?
[ "$rc" -eq 1 ] || fail "missing file must exit 1 (got $rc)"
grep -q "qirkit: error\[io\]: " "$WORK/err" || fail "missing file diagnostic format"
rc=0; "$QIRKIT" run "$WORK/bell.ll" --shots notanumber >/dev/null 2>"$WORK/err" || rc=$?
[ "$rc" -eq 2 ] || fail "bad option value must exit 2 (got $rc)"
grep -q "qirkit: error\[usage\]: " "$WORK/err" || fail "usage diagnostic format"
rc=0; "$QIRKIT" bogus-command x y >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || fail "unknown command must exit 2 (got $rc)"

echo "CLI TEST PASSED"
