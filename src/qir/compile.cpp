#include "qir/compile.hpp"

#include "circuit/optimizer.hpp"
#include "qir/importer.hpp"
#include "support/telemetry/trace.hpp"

namespace qirkit::qir {

std::size_t transformDirect(ir::Module& module, std::size_t maxUnrollTripCount) {
  const telemetry::trace::Span span("opt.pipeline");
  passes::PassManager pm;
  passes::addFullPipeline(pm, maxUnrollTripCount);
  return pm.runToFixpoint(module);
}

CompileResult compileToTarget(ir::Context& context, ir::Module& module,
                              const CompileOptions& options) {
  const telemetry::trace::Span span("compile.to_target");
  CompileResult result;
  if (options.runClassicalPipeline) {
    result.passSweeps = transformDirect(module, options.maxUnrollTripCount);
  }
  result.circuit = importFromModule(module);
  if (options.optimizeCircuit) {
    result.circuitStats = circuit::optimizeCircuit(result.circuit);
  }
  if (options.deferMeasurements) {
    (void)circuit::deferMeasurements(result.circuit);
  }
  if (options.target) {
    result.circuit = circuit::decomposeToCXBasis(result.circuit);
    circuit::MappingResult mapping = circuit::mapCircuit(result.circuit, *options.target);
    result.swapsInserted = mapping.swapsInserted;
    result.circuit = std::move(mapping.mapped);
    if (options.optimizeCircuit) {
      circuit::optimizeCircuit(result.circuit);
    }
  }
  ExportOptions exportOptions;
  exportOptions.addressing = options.outputAddressing;
  exportOptions.recordOutput = options.recordOutput;
  result.module = exportCircuit(context, result.circuit, exportOptions);
  result.profile = detectProfile(*result.module);
  return result;
}

} // namespace qirkit::qir
