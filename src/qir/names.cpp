#include "qir/names.hpp"

#include "support/source_location.hpp"

#include <map>

namespace qirkit::qir {

using circuit::OpKind;
using ir::Context;
using ir::Type;

bool isQisFunction(std::string_view name) noexcept {
  return name.starts_with("__quantum__qis__");
}

bool isRtFunction(std::string_view name) noexcept {
  return name.starts_with("__quantum__rt__");
}

bool isQuantumFunction(std::string_view name) noexcept {
  return name.starts_with("__quantum__");
}

const Type* qirFunctionType(Context& ctx, std::string_view name) {
  const Type* voidTy = ctx.voidTy();
  const Type* ptr = ctx.ptrTy();
  const Type* i64 = ctx.i64();
  const Type* i32 = ctx.i32();
  const Type* i1 = ctx.i1();
  const Type* dbl = ctx.doubleTy();

  // 1-qubit gates.
  if (name == kQisH || name == kQisX || name == kQisY || name == kQisZ ||
      name == kQisS || name == kQisSAdj || name == kQisT || name == kQisTAdj ||
      name == kQisReset) {
    return ctx.functionTy(voidTy, {ptr});
  }
  if (name == kQisRX || name == kQisRY || name == kQisRZ) {
    return ctx.functionTy(voidTy, {dbl, ptr});
  }
  if (name == kQisCNOT || name == kQisCZ || name == kQisSwap || name == kQisMz) {
    return ctx.functionTy(voidTy, {ptr, ptr});
  }
  if (name == kQisCCX) {
    return ctx.functionTy(voidTy, {ptr, ptr, ptr});
  }
  if (name == kQisReadResult) {
    return ctx.functionTy(i1, {ptr});
  }
  if (name == kRtInitialize) {
    return ctx.functionTy(voidTy, {ptr});
  }
  if (name == kRtQubitAllocate || name == kRtResultGetOne || name == kRtResultGetZero) {
    return ctx.functionTy(ptr, {});
  }
  if (name == kRtQubitRelease || name == kRtQubitReleaseArray) {
    return ctx.functionTy(voidTy, {ptr});
  }
  if (name == kRtQubitAllocateArray) {
    return ctx.functionTy(ptr, {i64});
  }
  if (name == kRtArrayCreate1d) {
    return ctx.functionTy(ptr, {i32, i64});
  }
  if (name == kRtArrayGetElementPtr1d) {
    return ctx.functionTy(ptr, {ptr, i64});
  }
  if (name == kRtArrayGetSize1d) {
    return ctx.functionTy(i64, {ptr});
  }
  if (name == kRtArrayUpdateRefCount) {
    return ctx.functionTy(voidTy, {ptr, i32});
  }
  if (name == kRtResultRecordOutput) {
    return ctx.functionTy(voidTy, {ptr, ptr});
  }
  if (name == kRtArrayRecordOutput) {
    return ctx.functionTy(voidTy, {i64, ptr});
  }
  if (name == kRtResultEqual) {
    return ctx.functionTy(i1, {ptr, ptr});
  }
  return nullptr;
}

ir::Function* declareQIRFunction(ir::Module& module, std::string_view name) {
  const Type* type = qirFunctionType(module.context(), name);
  if (type == nullptr) {
    throw SemanticError("unknown QIR function '" + std::string(name) + "'");
  }
  return module.getOrInsertFunction(name, type);
}

std::optional<std::string_view> qisNameFor(OpKind kind) noexcept {
  switch (kind) {
  case OpKind::H: return kQisH;
  case OpKind::X: return kQisX;
  case OpKind::Y: return kQisY;
  case OpKind::Z: return kQisZ;
  case OpKind::S: return kQisS;
  case OpKind::Sdg: return kQisSAdj;
  case OpKind::T: return kQisT;
  case OpKind::Tdg: return kQisTAdj;
  case OpKind::RX: return kQisRX;
  case OpKind::RY: return kQisRY;
  case OpKind::RZ: return kQisRZ;
  case OpKind::CX: return kQisCNOT;
  case OpKind::CZ: return kQisCZ;
  case OpKind::Swap: return kQisSwap;
  case OpKind::CCX: return kQisCCX;
  case OpKind::Reset: return kQisReset;
  default: return std::nullopt;
  }
}

std::optional<OpKind> opKindForQis(std::string_view name) noexcept {
  static const std::map<std::string_view, OpKind> table = {
      {kQisH, OpKind::H},       {kQisX, OpKind::X},
      {kQisY, OpKind::Y},       {kQisZ, OpKind::Z},
      {kQisS, OpKind::S},       {kQisSAdj, OpKind::Sdg},
      {kQisT, OpKind::T},       {kQisTAdj, OpKind::Tdg},
      {kQisRX, OpKind::RX},     {kQisRY, OpKind::RY},
      {kQisRZ, OpKind::RZ},     {kQisCNOT, OpKind::CX},
      {kQisCZ, OpKind::CZ},     {kQisSwap, OpKind::Swap},
      {kQisCCX, OpKind::CCX},   {kQisMz, OpKind::Measure},
      {kQisReset, OpKind::Reset}};
  const auto it = table.find(name);
  return it == table.end() ? std::nullopt : std::optional<OpKind>(it->second);
}

} // namespace qirkit::qir
