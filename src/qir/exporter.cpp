#include "qir/exporter.hpp"

#include "ir/builder.hpp"
#include "qir/names.hpp"
#include "support/source_location.hpp"

#include <vector>

namespace qirkit::qir {

using namespace qirkit::ir;
using circuit::Circuit;
using circuit::OpKind;
using circuit::Operation;

namespace {

class Exporter {
public:
  Exporter(Context& ctx, const Circuit& circuit, const ExportOptions& options)
      : ctx_(ctx), circuit_(circuit), options_(options),
        module_(std::make_unique<Module>(ctx, options.entryName + ".qir")) {}

  std::unique_ptr<Module> run() {
    Function* entry = module_->createFunction(
        options_.entryName, ctx_.functionTy(ctx_.voidTy(), {}));
    entry->setAttribute("entry_point");
    entry->setAttribute("qir_profiles", circuit_.hasConditions()
                                            ? "adaptive_profile"
                                            : "base_profile");
    entry->setAttribute("required_num_qubits",
                        std::to_string(circuit_.numQubits()));
    entry->setAttribute("required_num_results", std::to_string(circuit_.numBits()));

    block_ = entry->createBlock("entry");
    builder_.setInsertPoint(block_);

    if (options_.emitInitialize) {
      builder_.createCall(declareQIRFunction(*module_, kRtInitialize),
                          {ctx_.getNullPtr()});
    }
    if (options_.addressing == Addressing::Dynamic) {
      emitDynamicPrologue();
    }
    for (const Operation& op : circuit_.ops()) {
      emitOperation(op);
    }
    if (options_.recordOutput) {
      emitRecordOutput();
    }
    if (options_.addressing == Addressing::Dynamic && circuit_.numQubits() > 0) {
      builder_.createCall(declareQIRFunction(*module_, kRtQubitReleaseArray),
                          {loadQubitArray()});
    }
    builder_.createRetVoid();
    return std::move(module_);
  }

private:
  // -- address construction ---------------------------------------------------
  Value* staticPtr(std::uint64_t id) {
    // Ex. 6: qubit 0 is `ptr null`, higher ids are inttoptr constants.
    return id == 0 ? static_cast<Value*>(ctx_.getNullPtr())
                   : static_cast<Value*>(ctx_.getIntToPtr(id));
  }

  void emitDynamicPrologue() {
    // Fig. 1 (right): stack slots holding the array pointers.
    if (circuit_.numQubits() > 0) {
      qubitSlot_ = builder_.createAlloca(ctx_.ptrTy(), "q");
      Instruction* array = builder_.createCall(
          declareQIRFunction(*module_, kRtQubitAllocateArray),
          {ctx_.getI64(static_cast<std::int64_t>(circuit_.numQubits()))});
      builder_.createStore(array, qubitSlot_);
    }
    if (circuit_.numBits() > 0) {
      resultSlot_ = builder_.createAlloca(ctx_.ptrTy(), "c");
      Instruction* array = builder_.createCall(
          declareQIRFunction(*module_, kRtArrayCreate1d),
          {ctx_.getI32(1), ctx_.getI64(static_cast<std::int64_t>(circuit_.numBits()))});
      builder_.createStore(array, resultSlot_);
    }
  }

  Value* loadQubitArray() {
    return builder_.createLoad(ctx_.ptrTy(), qubitSlot_);
  }

  Value* qubitPtr(std::uint32_t q) {
    if (options_.addressing == Addressing::Static) {
      return staticPtr(q);
    }
    Value* array = loadQubitArray();
    return builder_.createCall(
        declareQIRFunction(*module_, kRtArrayGetElementPtr1d),
        {array, ctx_.getI64(q)});
  }

  Value* resultPtr(std::uint32_t bit) {
    if (options_.addressing == Addressing::Static) {
      return staticPtr(bit);
    }
    Value* array = builder_.createLoad(ctx_.ptrTy(), resultSlot_);
    return builder_.createCall(
        declareQIRFunction(*module_, kRtArrayGetElementPtr1d),
        {array, ctx_.getI64(bit)});
  }

  // -- operations --------------------------------------------------------
  void emitOperation(const Operation& op) {
    if (op.kind == OpKind::Barrier) {
      return; // no QIR representation; a fence only for circuit passes
    }
    if (op.condition) {
      emitConditioned(op);
      return;
    }
    emitBody(op);
  }

  void emitBody(const Operation& op) {
    if (op.kind == OpKind::Measure) {
      builder_.createCall(declareQIRFunction(*module_, kQisMz),
                          {qubitPtr(op.qubits[0]), resultPtr(op.bit)});
      return;
    }
    if (op.kind == OpKind::U3) {
      // The qis set has no u3; lower to RZ(lambda) RY(theta) RZ(phi).
      Value* q0 = qubitPtr(op.qubits[0]);
      builder_.createCall(declareQIRFunction(*module_, kQisRZ),
                          {ctx_.getDouble(op.params[2]), q0});
      Value* q1 = qubitPtr(op.qubits[0]);
      builder_.createCall(declareQIRFunction(*module_, kQisRY),
                          {ctx_.getDouble(op.params[0]), q1});
      Value* q2 = qubitPtr(op.qubits[0]);
      builder_.createCall(declareQIRFunction(*module_, kQisRZ),
                          {ctx_.getDouble(op.params[1]), q2});
      return;
    }
    const auto qisName = qisNameFor(op.kind);
    if (!qisName) {
      throw SemanticError(std::string("operation ") + opKindName(op.kind) +
                          " has no QIR representation");
    }
    Function* callee = declareQIRFunction(*module_, *qisName);
    std::vector<Value*> args;
    for (const double param : op.params) {
      args.push_back(ctx_.getDouble(param));
    }
    for (const std::uint32_t q : op.qubits) {
      args.push_back(qubitPtr(q));
    }
    builder_.createCall(callee, std::span<Value* const>(args.data(), args.size()));
  }

  void emitConditioned(const Operation& op) {
    const circuit::Condition& cond = *op.condition;
    // Build the match predicate: AND over per-bit tests.
    Function* readResult = declareQIRFunction(*module_, kQisReadResult);
    Value* acc = nullptr;
    for (std::uint32_t i = 0; i < cond.numBits; ++i) {
      Value* bit = builder_.createCall(readResult, {resultPtr(cond.firstBit + i)});
      const bool expectOne = ((cond.value >> i) & 1) != 0;
      Value* term = expectOne
                        ? bit
                        : builder_.createBinOp(Opcode::Xor, bit, ctx_.getI1(true));
      acc = acc == nullptr ? term : builder_.createBinOp(Opcode::And, acc, term);
    }
    Function* fn = block_->parent();
    BasicBlock* thenBlock = fn->createBlock("then");
    BasicBlock* contBlock = fn->createBlock("continue");
    builder_.createCondBr(acc, thenBlock, contBlock);
    block_ = thenBlock;
    builder_.setInsertPoint(block_);
    Operation body = op;
    body.condition.reset();
    emitBody(body);
    builder_.createBr(contBlock);
    block_ = contBlock;
    builder_.setInsertPoint(block_);
  }

  void emitRecordOutput() {
    if (circuit_.numBits() == 0) {
      return;
    }
    Function* arrayRecord = declareQIRFunction(*module_, kRtArrayRecordOutput);
    Function* record = declareQIRFunction(*module_, kRtResultRecordOutput);
    GlobalVariable* arrayLabel = getLabel("array");
    builder_.createCall(arrayRecord,
                        {ctx_.getI64(circuit_.numBits()), arrayLabel});
    for (std::uint32_t bit = 0; bit < circuit_.numBits(); ++bit) {
      builder_.createCall(record,
                          {resultPtr(bit), getLabel("r" + std::to_string(bit))});
    }
  }

  GlobalVariable* getLabel(const std::string& label) {
    const std::string globalName = "lbl." + label;
    if (GlobalVariable* existing = module_->getGlobal(globalName)) {
      return existing;
    }
    return module_->createGlobalString(globalName, label + '\0');
  }

  Context& ctx_;
  const Circuit& circuit_;
  ExportOptions options_;
  std::unique_ptr<Module> module_;
  IRBuilder builder_{ctx_};
  BasicBlock* block_ = nullptr;
  Instruction* qubitSlot_ = nullptr;
  Instruction* resultSlot_ = nullptr;
};

} // namespace

std::unique_ptr<Module> exportCircuit(Context& context, const Circuit& circuit,
                                      const ExportOptions& options) {
  return Exporter(context, circuit, options).run();
}

} // namespace qirkit::qir
