/// \file compile.hpp
/// End-to-end QIR compilation pipelines — the paper's §III.B routes:
///
///  * transformDirect — route (b1): run the classical pass pipeline
///    directly on the QIR AST (mem2reg, SCCP, folding, CFG simplification,
///    loop unrolling, inlining). The program stays QIR throughout.
///
///  * compileToTarget — route (b2) plus §IV.A: transpile into the custom
///    circuit IR, optimize there, optionally map onto a hardware target
///    ("register allocation for qubits"), and emit base/adaptive-profile
///    QIR with static addresses.
#pragma once

#include "circuit/mapping.hpp"
#include "circuit/optimizer.hpp"
#include "ir/module.hpp"
#include "passes/pass.hpp"
#include "qir/exporter.hpp"
#include "qir/profiles.hpp"

#include <memory>
#include <optional>

namespace qirkit::qir {

/// Route (b1): transform the QIR AST in place with the classical pipeline.
/// Returns the number of pipeline sweeps executed.
std::size_t transformDirect(ir::Module& module,
                            std::size_t maxUnrollTripCount = 1 << 16);

struct CompileOptions {
  /// Run transformDirect before transpiling (needed when the input has
  /// loops or classical computation around the quantum instructions).
  bool runClassicalPipeline = true;
  std::size_t maxUnrollTripCount = 1 << 16;
  /// Circuit-level optimization (cancellation, rotation merging).
  bool optimizeCircuit = true;
  /// Defer feedback-free measurements to the end of the circuit so that
  /// interleaved-measurement programs become base-profile exportable.
  bool deferMeasurements = false;
  /// Hardware target for qubit mapping; no mapping when unset.
  std::optional<circuit::Target> target;
  /// Addressing mode of the emitted QIR.
  Addressing outputAddressing = Addressing::Static;
  bool recordOutput = true;
};

struct CompileResult {
  std::unique_ptr<ir::Module> module; // the compiled QIR
  circuit::Circuit circuit;           // the (optimized, mapped) circuit
  Profile profile = Profile::Base;    // detected profile of the output
  std::size_t passSweeps = 0;
  std::size_t swapsInserted = 0;
  circuit::OptimizeStats circuitStats;
};

/// Route (b2)/§IV.A: full compilation of \p module (consumed/mutated) to a
/// target-conforming QIR module.
[[nodiscard]] CompileResult compileToTarget(ir::Context& context, ir::Module& module,
                                            const CompileOptions& options = {});

} // namespace qirkit::qir
