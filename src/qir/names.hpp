/// \file names.hpp
/// The QIR vocabulary: the `__quantum__qis__*` (quantum instruction set)
/// and `__quantum__rt__*` (runtime) functions with their signatures, as
/// used by the paper (Ex. 2, Ex. 5, Ex. 6) and the QIR specification.
#pragma once

#include "circuit/circuit.hpp"
#include "ir/module.hpp"

#include <optional>
#include <string>
#include <string_view>

namespace qirkit::qir {

// -- quantum instruction set (gates) ----------------------------------------
inline constexpr std::string_view kQisH = "__quantum__qis__h__body";
inline constexpr std::string_view kQisX = "__quantum__qis__x__body";
inline constexpr std::string_view kQisY = "__quantum__qis__y__body";
inline constexpr std::string_view kQisZ = "__quantum__qis__z__body";
inline constexpr std::string_view kQisS = "__quantum__qis__s__body";
inline constexpr std::string_view kQisSAdj = "__quantum__qis__s__adj";
inline constexpr std::string_view kQisT = "__quantum__qis__t__body";
inline constexpr std::string_view kQisTAdj = "__quantum__qis__t__adj";
inline constexpr std::string_view kQisRX = "__quantum__qis__rx__body";
inline constexpr std::string_view kQisRY = "__quantum__qis__ry__body";
inline constexpr std::string_view kQisRZ = "__quantum__qis__rz__body";
inline constexpr std::string_view kQisCNOT = "__quantum__qis__cnot__body";
inline constexpr std::string_view kQisCZ = "__quantum__qis__cz__body";
inline constexpr std::string_view kQisSwap = "__quantum__qis__swap__body";
inline constexpr std::string_view kQisCCX = "__quantum__qis__ccx__body";
inline constexpr std::string_view kQisMz = "__quantum__qis__mz__body";
inline constexpr std::string_view kQisReset = "__quantum__qis__reset__body";
inline constexpr std::string_view kQisReadResult = "__quantum__qis__read_result__body";

// -- runtime ------------------------------------------------------------------
inline constexpr std::string_view kRtInitialize = "__quantum__rt__initialize";
inline constexpr std::string_view kRtQubitAllocate = "__quantum__rt__qubit_allocate";
inline constexpr std::string_view kRtQubitRelease = "__quantum__rt__qubit_release";
inline constexpr std::string_view kRtQubitAllocateArray =
    "__quantum__rt__qubit_allocate_array";
inline constexpr std::string_view kRtQubitReleaseArray =
    "__quantum__rt__qubit_release_array";
inline constexpr std::string_view kRtArrayCreate1d = "__quantum__rt__array_create_1d";
inline constexpr std::string_view kRtArrayGetElementPtr1d =
    "__quantum__rt__array_get_element_ptr_1d";
inline constexpr std::string_view kRtArrayGetSize1d =
    "__quantum__rt__array_get_size_1d";
inline constexpr std::string_view kRtArrayUpdateRefCount =
    "__quantum__rt__array_update_reference_count";
inline constexpr std::string_view kRtResultRecordOutput =
    "__quantum__rt__result_record_output";
inline constexpr std::string_view kRtArrayRecordOutput =
    "__quantum__rt__array_record_output";
inline constexpr std::string_view kRtResultGetOne = "__quantum__rt__result_get_one";
inline constexpr std::string_view kRtResultGetZero = "__quantum__rt__result_get_zero";
inline constexpr std::string_view kRtResultEqual = "__quantum__rt__result_equal";

/// True for any `__quantum__qis__*` name.
[[nodiscard]] bool isQisFunction(std::string_view name) noexcept;
/// True for any `__quantum__rt__*` name.
[[nodiscard]] bool isRtFunction(std::string_view name) noexcept;
/// True for any `__quantum__*` name.
[[nodiscard]] bool isQuantumFunction(std::string_view name) noexcept;

/// Signature of a known QIR function in \p context, or nullptr for unknown
/// names.
[[nodiscard]] const ir::Type* qirFunctionType(ir::Context& context,
                                              std::string_view name);

/// Get-or-declare a known QIR function in \p module.
ir::Function* declareQIRFunction(ir::Module& module, std::string_view name);

/// The qis function implementing a circuit gate kind, if it is a plain
/// (non-measurement) gate.
[[nodiscard]] std::optional<std::string_view> qisNameFor(circuit::OpKind kind) noexcept;

/// Inverse of qisNameFor plus measurement/reset: circuit OpKind for a qis
/// function name.
[[nodiscard]] std::optional<circuit::OpKind> opKindForQis(std::string_view name) noexcept;

} // namespace qirkit::qir
