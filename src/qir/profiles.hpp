/// \file profiles.hpp
/// QIR profiles (paper §II.C): "multiple restrictions to QIR, so-called
/// profiles, have been defined that limit the expressiveness of QIR. In
/// its most restrictive form, the base profile only allows a sequence of
/// quantum instructions that ends with the measurement of all qubits …
/// The more permissive adaptive profiles allow the successive transition
/// to fully support all features contained in LLVM IR."
#pragma once

#include "ir/module.hpp"

#include <string>
#include <vector>

namespace qirkit::qir {

enum class Profile : std::uint8_t {
  /// Straight-line static-address programs: quantum instructions, final
  /// measurements, output recording. Effectively OpenQASM-2-equivalent.
  Base,
  /// Adds measurement feedback: read_result, branching, and bounded
  /// integer computation. Still no dynamic qubit management.
  Adaptive,
  /// Unrestricted: QIR as a proper superset of LLVM IR.
  Full,
};

[[nodiscard]] const char* profileName(Profile profile) noexcept;

struct ProfileReport {
  bool conforms = false;
  std::vector<std::string> violations;
};

/// Check whether \p module's entry point conforms to \p profile.
[[nodiscard]] ProfileReport validateProfile(const ir::Module& module, Profile profile);

/// The most restrictive profile the module conforms to.
[[nodiscard]] Profile detectProfile(const ir::Module& module);

} // namespace qirkit::qir
