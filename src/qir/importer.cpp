#include "qir/importer.hpp"

#include "qir/names.hpp"
#include "support/source_location.hpp"
#include "support/string_utils.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

namespace qirkit::qir {

using circuit::Circuit;
using circuit::Condition;
using circuit::OpKind;
using circuit::Operation;

namespace {

// ---------------------------------------------------------------------------
// Shared abstract evaluation machinery
// ---------------------------------------------------------------------------

/// Abstract value tracked during import. `Slot` refers into the machine's
/// slot table (stack locations holding pointers); `MeasBit` is the i1
/// produced by read_result.
struct AbsVal {
  enum class Kind : std::uint8_t {
    None,
    Int,
    Double,
    StaticPtr,   // inttoptr constant / null: qubit-or-result id, use-site typed
    QubitPtr,    // resolved qubit index
    ResultPtr,   // resolved classical bit index
    QubitArray,  // base index + count
    ResultArray, // base index + count
    Slot,        // stack slot id
    MeasBit,     // measurement outcome: conjunction of (bit, expected) tests
    Label,       // pointer to a label global (output recording)
  };
  Kind kind = Kind::None;
  std::int64_t i = 0;
  double d = 0.0;
  std::uint32_t base = 0;
  std::uint32_t count = 0;
  std::vector<std::pair<std::uint32_t, bool>> tests; // MeasBit

  static AbsVal makeInt(std::int64_t v) {
    AbsVal a;
    a.kind = Kind::Int;
    a.i = v;
    return a;
  }
  static AbsVal makeDouble(double v) {
    AbsVal a;
    a.kind = Kind::Double;
    a.d = v;
    return a;
  }
  static AbsVal make(Kind kind, std::uint32_t base, std::uint32_t count = 0) {
    AbsVal a;
    a.kind = kind;
    a.base = base;
    a.count = count;
    return a;
  }
};

/// The import machine: interprets the QIR runtime/qis calls abstractly and
/// grows a circuit. Shared by the text pattern parser and the AST walker.
class ImportMachine {
public:
  [[nodiscard]] Circuit finish() { return std::move(circuit_); }

  [[noreturn]] void fail(const std::string& message) const {
    throw qirkit::ParseError(loc_, "QIR import: " + message);
  }

  /// Callers with source knowledge (the line-oriented pattern parser) pin
  /// the location subsequent import failures are reported at; the AST
  /// walker has no line info and leaves it unset.
  void setLoc(SourceLoc loc) noexcept { loc_ = loc; }

  std::uint32_t resolveQubit(const AbsVal& v) {
    switch (v.kind) {
    case AbsVal::Kind::StaticPtr: {
      // Static addressing (Ex. 6): the address is the qubit id.
      const auto id = static_cast<std::uint32_t>(v.base);
      ensureQubits(id + 1);
      return id;
    }
    case AbsVal::Kind::QubitPtr:
      return v.base;
    default:
      fail("expected a qubit pointer operand");
    }
  }

  std::uint32_t resolveResult(const AbsVal& v) {
    switch (v.kind) {
    case AbsVal::Kind::StaticPtr: {
      const auto id = static_cast<std::uint32_t>(v.base);
      ensureBits(id + 1);
      return id;
    }
    case AbsVal::Kind::ResultPtr:
      return v.base;
    default:
      fail("expected a result pointer operand");
    }
  }

  void ensureQubits(std::uint32_t n) {
    if (circuit_.numQubits() < n) {
      circuit_.setNumQubits(n);
    }
  }
  void ensureBits(std::uint32_t n) {
    if (circuit_.numBits() < n) {
      circuit_.setNumBits(n);
    }
  }

  /// Handle a `__quantum__rt__*` call; returns the call's abstract result.
  AbsVal callRt(std::string_view name, const std::vector<AbsVal>& args) {
    if (name == kRtQubitAllocate) {
      const std::uint32_t base = circuit_.numQubits();
      ensureQubits(base + 1);
      return AbsVal::make(AbsVal::Kind::QubitPtr, base);
    }
    if (name == kRtQubitAllocateArray) {
      requireArgs(name, args, 1);
      if (args[0].kind != AbsVal::Kind::Int || args[0].i < 0) {
        fail("qubit_allocate_array requires a constant count");
      }
      const std::uint32_t base = circuit_.numQubits();
      ensureQubits(base + static_cast<std::uint32_t>(args[0].i));
      return AbsVal::make(AbsVal::Kind::QubitArray, base,
                          static_cast<std::uint32_t>(args[0].i));
    }
    if (name == kRtArrayCreate1d) {
      requireArgs(name, args, 2);
      if (args[1].kind != AbsVal::Kind::Int || args[1].i < 0) {
        fail("array_create_1d requires a constant count");
      }
      const std::uint32_t base = circuit_.numBits();
      ensureBits(base + static_cast<std::uint32_t>(args[1].i));
      return AbsVal::make(AbsVal::Kind::ResultArray, base,
                          static_cast<std::uint32_t>(args[1].i));
    }
    if (name == kRtArrayGetElementPtr1d) {
      requireArgs(name, args, 2);
      if (args[1].kind != AbsVal::Kind::Int) {
        fail("array_get_element_ptr_1d requires a constant index");
      }
      const auto index = static_cast<std::uint32_t>(args[1].i);
      if (args[0].kind == AbsVal::Kind::QubitArray) {
        if (index >= args[0].count) {
          fail("qubit array index out of range");
        }
        return AbsVal::make(AbsVal::Kind::QubitPtr, args[0].base + index);
      }
      if (args[0].kind == AbsVal::Kind::ResultArray) {
        if (index >= args[0].count) {
          fail("result array index out of range");
        }
        return AbsVal::make(AbsVal::Kind::ResultPtr, args[0].base + index);
      }
      fail("array_get_element_ptr_1d on a non-array value");
    }
    if (name == kRtArrayGetSize1d) {
      requireArgs(name, args, 1);
      if (args[0].kind == AbsVal::Kind::QubitArray ||
          args[0].kind == AbsVal::Kind::ResultArray) {
        return AbsVal::makeInt(args[0].count);
      }
      fail("array_get_size_1d on a non-array value");
    }
    if (name == kRtQubitRelease || name == kRtQubitReleaseArray ||
        name == kRtArrayUpdateRefCount || name == kRtInitialize ||
        name == kRtResultRecordOutput || name == kRtArrayRecordOutput) {
      return {};
    }
    fail("unsupported runtime function '" + std::string(name) + "'");
  }

  /// Handle a `__quantum__qis__*` call. read_result returns a MeasBit.
  AbsVal callQis(std::string_view name, const std::vector<AbsVal>& args,
                 const std::optional<Condition>& condition) {
    if (name == kQisReadResult) {
      requireArgs(name, args, 1);
      AbsVal out;
      out.kind = AbsVal::Kind::MeasBit;
      out.tests = {{resolveResult(args[0]), true}};
      return out;
    }
    const auto kind = opKindForQis(name);
    if (!kind) {
      fail("unknown quantum instruction '" + std::string(name) + "'");
    }
    Operation op;
    op.kind = *kind;
    op.condition = condition;
    if (*kind == OpKind::Measure) {
      requireArgs(name, args, 2);
      op.qubits = {resolveQubit(args[0])};
      op.bit = resolveResult(args[1]);
    } else {
      const unsigned params = circuit::opKindParams(*kind);
      requireArgs(name, args, params + circuit::opKindArity(*kind));
      for (unsigned p = 0; p < params; ++p) {
        if (args[p].kind != AbsVal::Kind::Double) {
          fail("rotation angle must be a double constant");
        }
        op.params.push_back(args[p].d);
      }
      for (std::size_t q = params; q < args.size(); ++q) {
        op.qubits.push_back(resolveQubit(args[q]));
      }
    }
    circuit_.add(std::move(op));
    return {};
  }

  /// Build a circuit Condition from a MeasBit conjunction (used for
  /// branches on measurement results).
  Condition conditionFrom(const AbsVal& v, bool branchTaken) const {
    if (v.kind != AbsVal::Kind::MeasBit || v.tests.empty()) {
      throw qirkit::ParseError(loc_,
                               "QIR import: branch condition does not derive "
                               "from measurement results");
    }
    std::vector<std::pair<std::uint32_t, bool>> tests = v.tests;
    std::sort(tests.begin(), tests.end());
    if (!branchTaken && tests.size() > 1) {
      throw qirkit::ParseError(
          loc_, "QIR import: negated multi-bit conditions are not representable");
    }
    const std::uint32_t first = tests.front().first;
    for (std::size_t i = 0; i < tests.size(); ++i) {
      if (tests[i].first != first + i) {
        throw qirkit::ParseError(
            loc_, "QIR import: condition bits are not contiguous");
      }
    }
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < tests.size(); ++i) {
      const bool expected = branchTaken ? tests[i].second : !tests[i].second;
      if (expected) {
        value |= std::uint64_t{1} << i;
      }
    }
    return Condition{first, static_cast<std::uint32_t>(tests.size()), value};
  }

private:
  void requireArgs(std::string_view name, const std::vector<AbsVal>& args,
                   std::size_t n) const {
    if (args.size() != n) {
      fail("wrong argument count for '" + std::string(name) + "'");
    }
  }

  SourceLoc loc_{};
  Circuit circuit_;
};

// ---------------------------------------------------------------------------
// Route (a1): the Ex. 3 pattern parser (no AST)
// ---------------------------------------------------------------------------

class PatternParser {
public:
  explicit PatternParser(std::string_view text) : text_(text) {}

  Circuit run() {
    bool inEntry = false;
    bool sawDefine = false;
    std::uint32_t lineNo = 0;
    for (const std::string_view rawLine : splitLines(text_)) {
      ++lineNo;
      lineNo_ = lineNo;
      machine_.setLoc({lineNo_, 1});
      std::string_view line = trim(rawLine);
      // Strip trailing comment.
      if (const std::size_t comment = line.find(';');
          comment != std::string_view::npos) {
        line = trim(line.substr(0, comment));
      }
      if (line.empty()) {
        continue;
      }
      if (line.starts_with("define ")) {
        if (sawDefine) {
          fail(line, "multiple function definitions; base profile expects one");
        }
        sawDefine = true;
        inEntry = true;
        continue;
      }
      if (!inEntry) {
        // Globals, declares, attributes, metadata: irrelevant to the
        // pattern parser.
        continue;
      }
      if (line == "}") {
        inEntry = false;
        continue;
      }
      parseBodyLine(line);
    }
    if (!sawDefine) {
      fail("", "no function definition found");
    }
    return machine_.finish();
  }

private:
  [[noreturn]] void fail(std::string_view line, const std::string& message) const {
    throw qirkit::ParseError({lineNo_, 1},
                             "base-profile pattern parser: " + message +
                                 (line.empty() ? std::string{}
                                               : " in '" + std::string(line) + "'"));
  }

  void parseBodyLine(std::string_view line) {
    // Alignment suffixes carry no information for the pattern matcher.
    if (const std::size_t align = line.rfind(", align ");
        align != std::string_view::npos) {
      line = trim(line.substr(0, align));
    }
    if (line == "ret void") {
      return;
    }
    if (line.ends_with(":") && !line.starts_with("%")) {
      // The single entry label is fine; any further label means branching.
      if (++labelCount_ > 1) {
        fail(line, "control flow requires the adaptive profile; use the full "
                   "IR parser route");
      }
      return;
    }
    if (line.starts_with("br ") || line.starts_with("switch ")) {
      // This is the limitation the paper describes: the simple line
      // iterator covers the base profile only.
      fail(line, "control flow requires the adaptive profile; use the full "
                 "IR parser route");
    }
    // Optional "%name = " prefix.
    std::string resultName;
    std::string_view rest = line;
    if (line.starts_with("%")) {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        fail(line, "unrecognized statement");
      }
      resultName = std::string(trim(line.substr(0, eq)));
      rest = trim(line.substr(eq + 1));
    }
    if (rest.starts_with("alloca ")) {
      env_[resultName] = AbsVal::make(AbsVal::Kind::Slot, nextSlot_++);
      return;
    }
    if (rest.starts_with("load ")) {
      // %x = load ptr, ptr %slot, align 8
      const std::size_t comma = rest.find(',');
      if (comma == std::string_view::npos) {
        fail(line, "malformed load");
      }
      const AbsVal pointer = parseOperandToken(trim(rest.substr(comma + 1)), line);
      if (pointer.kind == AbsVal::Kind::Slot) {
        env_[resultName] = slots_[pointer.base];
      } else if (pointer.kind == AbsVal::Kind::QubitPtr ||
                 pointer.kind == AbsVal::Kind::StaticPtr) {
        // Spec-style load of the qubit handle from the array element.
        env_[resultName] = pointer;
      } else {
        fail(line, "load from unsupported location");
      }
      return;
    }
    if (rest.starts_with("store ")) {
      // store ptr %v, ptr %slot, align 8
      auto args = splitArgs(rest.substr(6));
      if (args.size() != 2) {
        fail(line, "malformed store");
      }
      const AbsVal value = parseOperandToken(args[0], line);
      const AbsVal pointer = parseOperandToken(args[1], line);
      if (pointer.kind != AbsVal::Kind::Slot) {
        fail(line, "store to a non-stack location");
      }
      slots_[pointer.base] = value;
      return;
    }
    if (rest.starts_with("tail call ")) {
      rest = rest.substr(5);
    }
    if (rest.starts_with("call ")) {
      parseCall(rest.substr(5), resultName, line);
      return;
    }
    fail(line, "unsupported instruction (classical computation needs the full "
               "IR route)");
  }

  void parseCall(std::string_view call, const std::string& resultName,
                 std::string_view line) {
    // <retty> @callee(<args>)
    const std::size_t at = call.find('@');
    const std::size_t open = call.find('(', at);
    if (at == std::string_view::npos || open == std::string_view::npos ||
        !call.ends_with(")")) {
      fail(line, "malformed call");
    }
    const std::string_view callee = trim(call.substr(at + 1, open - at - 1));
    const std::string_view argList = call.substr(open + 1, call.size() - open - 2);
    std::vector<AbsVal> args;
    if (!trim(argList).empty()) {
      for (const std::string_view argToken : splitArgs(argList)) {
        args.push_back(parseOperandToken(argToken, line));
      }
    }
    AbsVal result;
    if (isRtFunction(callee)) {
      result = machine_.callRt(callee, args);
    } else if (isQisFunction(callee)) {
      if (callee == kQisReadResult) {
        fail(line, "read_result implies classical feedback (adaptive "
                   "profile); use the full IR parser route");
      }
      result = machine_.callQis(callee, args, std::nullopt);
    } else {
      fail(line, "call to non-quantum function");
    }
    if (!resultName.empty()) {
      env_[resultName] = result;
    }
  }

  /// Split "ptr %a, i64 3, ptr inttoptr (i64 1 to ptr)" at depth-0 commas.
  static std::vector<std::string_view> splitArgs(std::string_view s) {
    std::vector<std::string_view> out;
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '(') {
        ++depth;
      } else if (s[i] == ')') {
        --depth;
      } else if (s[i] == ',' && depth == 0) {
        out.push_back(trim(s.substr(start, i - start)));
        start = i + 1;
      }
    }
    out.push_back(trim(s.substr(start)));
    return out;
  }

  /// Parse one "<type> [attrs] <value>" operand token.
  AbsVal parseOperandToken(std::string_view token, std::string_view line) {
    // Drop the type and any attribute words; the value is the last
    // whitespace-separated element unless it is an inttoptr expression.
    token = trim(token);
    if (const std::size_t pos = token.find("inttoptr");
        pos != std::string_view::npos) {
      // inttoptr (i64 N to ptr)
      const std::size_t open = token.find('(', pos);
      const std::size_t close = token.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos) {
        fail(line, "malformed inttoptr expression");
      }
      const auto inner = trim(token.substr(open + 1, close - open - 1));
      // "i64 N to ptr"
      const std::size_t space = inner.find(' ');
      const std::size_t to = inner.rfind(" to ");
      if (space == std::string_view::npos || to == std::string_view::npos) {
        fail(line, "malformed inttoptr expression");
      }
      const auto number = parseInt(trim(inner.substr(space + 1, to - space - 1)));
      if (!number) {
        fail(line, "non-constant inttoptr operand");
      }
      return AbsVal::make(AbsVal::Kind::StaticPtr,
                          static_cast<std::uint32_t>(*number));
    }
    const std::size_t lastSpace = token.rfind(' ');
    const std::string_view value =
        lastSpace == std::string_view::npos ? token : token.substr(lastSpace + 1);
    const std::string_view type =
        lastSpace == std::string_view::npos
            ? std::string_view{}
            : trim(token.substr(0, token.find(' ')));
    if (value == "null") {
      return AbsVal::make(AbsVal::Kind::StaticPtr, 0);
    }
    if (value.starts_with("%")) {
      const auto it = env_.find(std::string(value));
      if (it == env_.end()) {
        fail(line, "use of undefined value '" + std::string(value) + "'");
      }
      return it->second;
    }
    if (value.starts_with("@")) {
      return AbsVal::make(AbsVal::Kind::Label, 0);
    }
    if (type == "double") {
      const auto d = parseDouble(value);
      if (!d) {
        fail(line, "malformed double literal");
      }
      return AbsVal::makeDouble(*d);
    }
    const auto i = parseInt(value);
    if (!i) {
      fail(line, "malformed operand '" + std::string(value) + "'");
    }
    return AbsVal::makeInt(*i);
  }

  std::string_view text_;
  ImportMachine machine_;
  std::map<std::string, AbsVal> env_;
  std::map<std::uint32_t, AbsVal> slots_;
  std::uint32_t nextSlot_ = 0;
  std::uint32_t lineNo_ = 0;
  std::uint32_t labelCount_ = 0;
};

// ---------------------------------------------------------------------------
// Route (a2): full-AST import by abstract evaluation
// ---------------------------------------------------------------------------

class ModuleImporter {
public:
  explicit ModuleImporter(const ir::Module& module) : module_(module) {}

  Circuit run() {
    const ir::Function* entry = module_.entryPoint();
    if (entry == nullptr) {
      entry = module_.getFunction("main");
    }
    if (entry == nullptr || entry->isDeclaration()) {
      machine_.fail("module has no entry-point definition");
    }
    const ir::BasicBlock* block = entry->entry();
    while (block != nullptr) {
      block = evalBlock(block, std::nullopt);
    }
    return machine_.finish();
  }

private:
  /// Evaluate one block; returns the next block to continue with (nullptr
  /// after ret). When \p condition is set we are inside a then-arm and the
  /// block must end with an unconditional branch.
  const ir::BasicBlock* evalBlock(const ir::BasicBlock* block,
                                  const std::optional<Condition>& condition) {
    using ir::Opcode;
    for (const auto& inst : block->instructions()) {
      switch (inst->op()) {
      case Opcode::Phi:
        machine_.fail("phi nodes are not importable (run SimplifyCFG / "
                      "unrolling first)");
      case Opcode::Alloca: {
        AbsVal slot = AbsVal::make(AbsVal::Kind::Slot, nextSlot_++);
        env_[inst.get()] = slot;
        continue;
      }
      case Opcode::Load: {
        const AbsVal pointer = eval(inst->operand(0));
        if (pointer.kind == AbsVal::Kind::Slot) {
          env_[inst.get()] = slots_[pointer.base];
        } else if (pointer.kind == AbsVal::Kind::QubitPtr ||
                   pointer.kind == AbsVal::Kind::StaticPtr) {
          env_[inst.get()] = pointer; // spec-style handle load
        } else {
          machine_.fail("load from unsupported location");
        }
        continue;
      }
      case Opcode::Store: {
        const AbsVal value = eval(inst->operand(0));
        const AbsVal pointer = eval(inst->operand(1));
        if (pointer.kind != AbsVal::Kind::Slot) {
          machine_.fail("store to a non-stack location");
        }
        slots_[pointer.base] = value;
        continue;
      }
      case Opcode::Call: {
        const std::string& callee = inst->callee()->name();
        std::vector<AbsVal> args;
        args.reserve(inst->numOperands());
        for (unsigned a = 0; a < inst->numOperands(); ++a) {
          args.push_back(eval(inst->operand(a)));
        }
        AbsVal result;
        if (isRtFunction(callee)) {
          result = machine_.callRt(callee, args);
        } else if (isQisFunction(callee)) {
          result = machine_.callQis(callee, args, condition);
        } else {
          machine_.fail("call to non-quantum function '" + callee +
                        "' (inline or fold it first)");
        }
        env_[inst.get()] = result;
        continue;
      }
      case Opcode::IntToPtr: {
        const AbsVal v = eval(inst->operand(0));
        if (v.kind != AbsVal::Kind::Int) {
          machine_.fail("dynamic inttoptr is not importable");
        }
        env_[inst.get()] =
            AbsVal::make(AbsVal::Kind::StaticPtr, static_cast<std::uint32_t>(v.i));
        continue;
      }
      case Opcode::Xor: {
        // `xor %measbit, true` — negation in condition chains.
        const AbsVal lhs = eval(inst->operand(0));
        const AbsVal rhs = eval(inst->operand(1));
        if (lhs.kind == AbsVal::Kind::MeasBit && rhs.kind == AbsVal::Kind::Int &&
            rhs.i != 0 && lhs.tests.size() == 1) {
          AbsVal out = lhs;
          out.tests[0].second = !out.tests[0].second;
          env_[inst.get()] = out;
          continue;
        }
        if (lhs.kind == AbsVal::Kind::Int && rhs.kind == AbsVal::Kind::Int) {
          env_[inst.get()] = AbsVal::makeInt(lhs.i ^ rhs.i);
          continue;
        }
        machine_.fail("unsupported xor in imported program");
      }
      case Opcode::And: {
        const AbsVal lhs = eval(inst->operand(0));
        const AbsVal rhs = eval(inst->operand(1));
        if (lhs.kind == AbsVal::Kind::MeasBit && rhs.kind == AbsVal::Kind::MeasBit) {
          AbsVal out = lhs;
          out.tests.insert(out.tests.end(), rhs.tests.begin(), rhs.tests.end());
          env_[inst.get()] = out;
          continue;
        }
        if (lhs.kind == AbsVal::Kind::Int && rhs.kind == AbsVal::Kind::Int) {
          env_[inst.get()] = AbsVal::makeInt(lhs.i & rhs.i);
          continue;
        }
        machine_.fail("unsupported and in imported program");
      }
      case Opcode::ICmp: {
        const AbsVal lhs = eval(inst->operand(0));
        const AbsVal rhs = eval(inst->operand(1));
        // icmp eq/ne %measbit, true|false
        if (lhs.kind == AbsVal::Kind::MeasBit && rhs.kind == AbsVal::Kind::Int &&
            lhs.tests.size() == 1 &&
            (inst->icmpPred() == ir::ICmpPred::EQ ||
             inst->icmpPred() == ir::ICmpPred::NE)) {
          const bool expectTrue = (rhs.i != 0) == (inst->icmpPred() == ir::ICmpPred::EQ);
          AbsVal out = lhs;
          out.tests[0].second = expectTrue == lhs.tests[0].second;
          env_[inst.get()] = out;
          continue;
        }
        machine_.fail("unsupported comparison in imported program (fold "
                      "classical code first)");
      }
      case Opcode::Ret:
        return nullptr;
      case Opcode::Br: {
        if (!inst->isConditionalBr()) {
          const ir::BasicBlock* next = inst->successor(0);
          return next;
        }
        if (condition.has_value()) {
          machine_.fail("nested measurement conditions are not importable");
        }
        const AbsVal cond = eval(inst->brCondition());
        const ir::BasicBlock* takenArm = inst->successor(0);
        const ir::BasicBlock* otherArm = inst->successor(1);
        // Recognize the diamond: one arm is straight-line and branches to
        // the other successor (the join).
        if (armJoins(takenArm, otherArm)) {
          const Condition c = machine_.conditionFrom(cond, true);
          evalBlock(takenArm, c);
          return otherArm;
        }
        if (armJoins(otherArm, takenArm)) {
          const Condition c = machine_.conditionFrom(cond, false);
          evalBlock(otherArm, c);
          return takenArm;
        }
        machine_.fail("general control flow is not importable into the "
                      "circuit IR (only measurement-conditioned diamonds)");
      }
      default:
        machine_.fail(std::string("unsupported instruction '") +
                      ir::opcodeName(inst->op()) +
                      "' (run the classical pipeline first)");
      }
    }
    machine_.fail("block without terminator");
  }

  /// True if \p arm ends with `br join` (then-arm of a diamond).
  static bool armJoins(const ir::BasicBlock* arm, const ir::BasicBlock* join) {
    const ir::Instruction* term = arm->terminator();
    return term != nullptr && term->op() == ir::Opcode::Br &&
           !term->isConditionalBr() && term->successor(0) == join;
  }

  AbsVal eval(const ir::Value* v) {
    using K = ir::Value::Kind;
    switch (v->kind()) {
    case K::ConstantInt:
      return AbsVal::makeInt(static_cast<const ir::ConstantInt*>(v)->value());
    case K::ConstantFP:
      return AbsVal::makeDouble(static_cast<const ir::ConstantFP*>(v)->value());
    case K::ConstantPointerNull:
      return AbsVal::make(AbsVal::Kind::StaticPtr, 0);
    case K::ConstantIntToPtr:
      return AbsVal::make(
          AbsVal::Kind::StaticPtr,
          static_cast<std::uint32_t>(
              static_cast<const ir::ConstantIntToPtr*>(v)->address()));
    case K::GlobalVariable:
      return AbsVal::make(AbsVal::Kind::Label, 0);
    case K::Instruction: {
      const auto it = env_.find(static_cast<const ir::Instruction*>(v));
      if (it == env_.end()) {
        machine_.fail("use of a value outside the abstract domain");
      }
      return it->second;
    }
    default:
      machine_.fail("unsupported operand kind during import");
    }
  }

  const ir::Module& module_;
  ImportMachine machine_;
  std::map<const ir::Instruction*, AbsVal> env_;
  std::map<std::uint32_t, AbsVal> slots_;
  std::uint32_t nextSlot_ = 0;
};

} // namespace

namespace {
// The "custom parser" adoption route (paper §III.A, route a1 / Ex. 3).
telemetry::Counter g_parseCustomCalls{"parse.custom.calls"};
telemetry::Counter g_parseCustomNs{"parse.custom.ns"};
telemetry::Counter g_parseCustomLines{"parse.custom.lines"};
telemetry::Counter g_parseCustomGates{"parse.custom.gates"};
} // namespace

Circuit importBaseProfileText(std::string_view qirText) {
  const telemetry::trace::Span span("parse.custom");
  const telemetry::ScopedTimer timer(g_parseCustomNs, &g_parseCustomCalls);
  Circuit c = PatternParser(qirText).run();
  if (telemetry::enabled()) {
    g_parseCustomLines.addUnchecked(static_cast<std::uint64_t>(
        std::count(qirText.begin(), qirText.end(), '\n') + 1));
    g_parseCustomGates.addUnchecked(c.gateCount());
  }
  return c;
}

Circuit importFromModule(const ir::Module& module) {
  const telemetry::trace::Span span("qir.import");
  return ModuleImporter(module).run();
}

} // namespace qirkit::qir
