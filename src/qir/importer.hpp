/// \file importer.hpp
/// QIR -> circuit importers implementing both options of the paper's
/// §III.A ("Parsing QIR Programs"):
///
///  * importBaseProfileText — the Ex. 3 route: a *custom parser* that
///    avoids the LLVM dependency entirely. It iterates over the lines,
///    tracks the assignment of variables (%9, %0, %1, ...) to their
///    values to infer the qubit passed to each instruction, and matches
///    the instructions with simple patterns. It supports the base profile
///    (straight-line programs, static or dynamic addressing) and rejects
///    anything needing control flow — exactly the limitation the paper
///    attributes to this approach.
///
///  * importFromModule — the full-AST route: walks a parsed ir::Module
///    (use ir::parseModule + the §III.B passes first, e.g. to unroll
///    loops), abstractly evaluating the runtime calls. Additionally
///    understands the `read_result` + branch diamonds our adaptive-profile
///    exporter emits, importing them as conditioned operations.
#pragma once

#include "circuit/circuit.hpp"
#include "ir/module.hpp"

#include <string_view>

namespace qirkit::qir {

/// Route (a1): pattern-parse base-profile QIR text without building an
/// AST. Throws ParseError on unsupported constructs (control flow,
/// classical computation) — those need the full parser.
[[nodiscard]] circuit::Circuit importBaseProfileText(std::string_view qirText);

/// Route (a2)/§III.B: import the entry point of a parsed module by
/// abstract evaluation. Run optimization passes first if the program
/// contains loops or folded-away classical computation.
[[nodiscard]] circuit::Circuit importFromModule(const ir::Module& module);

} // namespace qirkit::qir
