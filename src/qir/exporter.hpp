/// \file exporter.hpp
/// Circuit -> QIR exporter. Emits either of the two addressing styles the
/// paper contrasts in §IV.A:
///  * Dynamic (Ex. 2): qubits live in runtime arrays; every use allocates,
///    loads, and takes element pointers — faithful to Fig. 1's right side.
///  * Static (Ex. 6): qubits are `inttoptr (i64 N to ptr)` constants and
///    the allocation lines disappear.
/// Classically conditioned operations (adaptive profile) are lowered to
/// `read_result` + branch diamonds.
#pragma once

#include "circuit/circuit.hpp"
#include "ir/module.hpp"

#include <memory>
#include <string>

namespace qirkit::qir {

/// Qubit/result addressing style (paper §IV.A).
enum class Addressing { Static, Dynamic };

struct ExportOptions {
  Addressing addressing = Addressing::Static;
  /// Emit `__quantum__rt__result_record_output` calls (with label globals)
  /// for every classical bit at the end of the program.
  bool recordOutput = true;
  /// Emit an `__quantum__rt__initialize` prologue call.
  bool emitInitialize = false;
  std::string entryName = "main";
};

/// Export \p circuit as a QIR module with an entry-point function carrying
/// the standard attributes (entry_point, qir_profiles,
/// required_num_qubits, required_num_results).
[[nodiscard]] std::unique_ptr<ir::Module>
exportCircuit(ir::Context& context, const circuit::Circuit& circuit,
              const ExportOptions& options = {});

} // namespace qirkit::qir
