#include "qir/profiles.hpp"

#include "qir/names.hpp"

namespace qirkit::qir {

using namespace qirkit::ir;

const char* profileName(Profile profile) noexcept {
  switch (profile) {
  case Profile::Base: return "base_profile";
  case Profile::Adaptive: return "adaptive_profile";
  case Profile::Full: return "full";
  }
  return "<bad profile>";
}

namespace {

bool isConstantLike(const Value* v) {
  return v->isConstant() || v->kind() == Value::Kind::GlobalVariable;
}

bool isOutputRecording(std::string_view name) {
  return name == kRtResultRecordOutput || name == kRtArrayRecordOutput;
}

class Validator {
public:
  Validator(const Module& module, Profile profile)
      : module_(module), profile_(profile) {}

  ProfileReport run() {
    const Function* entry = module_.entryPoint();
    if (entry == nullptr) {
      entry = module_.getFunction("main");
    }
    if (entry == nullptr || entry->isDeclaration()) {
      report_.violations.push_back("module has no entry-point definition");
      return report_;
    }
    // Both restricted profiles forbid calling other defined functions from
    // the entry point (everything must be flattened).
    for (const auto& block : entry->blocks()) {
      if (profile_ == Profile::Base && entry->blocks().size() > 1) {
        violation("base profile requires a single straight-line block");
        break;
      }
      for (const auto& inst : block->instructions()) {
        checkInstruction(*inst);
      }
    }
    report_.conforms = report_.violations.empty();
    return report_;
  }

private:
  void violation(std::string message) {
    if (report_.violations.size() < 32) {
      report_.violations.push_back(std::move(message));
    }
  }

  void checkInstruction(const Instruction& inst) {
    const Opcode op = inst.op();
    switch (op) {
    case Opcode::Ret:
      return;
    case Opcode::Call:
      checkCall(inst);
      return;
    case Opcode::Br:
    case Opcode::Switch:
      if (profile_ == Profile::Base) {
        violation("base profile forbids control flow (br/switch)");
      }
      return;
    case Opcode::Alloca:
    case Opcode::Load:
    case Opcode::Store:
      violation(std::string(profileName(profile_)) +
                " forbids stack/heap memory operations (" + opcodeName(op) + ")");
      return;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FRem:
    case Opcode::FCmp:
      violation(std::string(profileName(profile_)) +
                " forbids floating-point computation");
      return;
    case Opcode::Unreachable:
      return;
    default:
      // Integer computation, comparisons, casts, selects, phis.
      if (profile_ == Profile::Base) {
        violation(std::string("base profile forbids classical computation (") +
                  opcodeName(op) + ")");
      }
      return;
    }
  }

  void checkCall(const Instruction& inst) {
    const std::string& callee = inst.callee()->name();
    if (isQisFunction(callee)) {
      if (callee == kQisReadResult && profile_ == Profile::Base) {
        violation("base profile forbids read_result (measurement feedback)");
      }
      if (callee == kQisMz) {
        sawMeasurement_ = true;
      } else if (callee != kQisReadResult && sawMeasurement_ &&
                 profile_ == Profile::Base) {
        violation("base profile forbids quantum instructions after "
                  "measurement (irreversible section)");
      }
      if (profile_ == Profile::Base) {
        for (unsigned i = 0; i < inst.numOperands(); ++i) {
          if (!isConstantLike(inst.operand(i))) {
            violation("base profile requires constant (static-address) "
                      "arguments to " + callee);
            break;
          }
        }
      }
      return;
    }
    if (isRtFunction(callee)) {
      if (isOutputRecording(callee) || callee == kRtInitialize) {
        return;
      }
      // Everything else is dynamic management: qubit/array allocation,
      // reference counting, result constants.
      violation(std::string(profileName(profile_)) +
                " forbids dynamic runtime management (" + callee + ")");
      return;
    }
    violation(std::string(profileName(profile_)) + " forbids calls to '" + callee +
              "'");
  }

  const Module& module_;
  Profile profile_;
  ProfileReport report_;
  bool sawMeasurement_ = false;
};

} // namespace

ProfileReport validateProfile(const Module& module, Profile profile) {
  if (profile == Profile::Full) {
    return {true, {}};
  }
  return Validator(module, profile).run();
}

Profile detectProfile(const Module& module) {
  if (validateProfile(module, Profile::Base).conforms) {
    return Profile::Base;
  }
  if (validateProfile(module, Profile::Adaptive).conforms) {
    return Profile::Adaptive;
  }
  return Profile::Full;
}

} // namespace qirkit::qir
