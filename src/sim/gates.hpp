/// \file gates.hpp
/// Single-qubit gate matrices of the QIR quantum instruction set (qis).
#pragma once

#include <complex>

namespace qirkit::sim {

using Complex = std::complex<double>;

/// A dense 2x2 unitary.
struct GateMatrix2 {
  Complex m00, m01, m10, m11;
};

[[nodiscard]] GateMatrix2 gateH() noexcept;
[[nodiscard]] GateMatrix2 gateX() noexcept;
[[nodiscard]] GateMatrix2 gateY() noexcept;
[[nodiscard]] GateMatrix2 gateZ() noexcept;
[[nodiscard]] GateMatrix2 gateS() noexcept;
[[nodiscard]] GateMatrix2 gateSdg() noexcept;
[[nodiscard]] GateMatrix2 gateT() noexcept;
[[nodiscard]] GateMatrix2 gateTdg() noexcept;
[[nodiscard]] GateMatrix2 gateRX(double theta) noexcept;
[[nodiscard]] GateMatrix2 gateRY(double theta) noexcept;
[[nodiscard]] GateMatrix2 gateRZ(double theta) noexcept;
/// General single-qubit rotation U3(theta, phi, lambda) (OpenQASM `U`).
[[nodiscard]] GateMatrix2 gateU3(double theta, double phi, double lambda) noexcept;

/// Matrix product a*b (apply b first).
[[nodiscard]] GateMatrix2 matmul(const GateMatrix2& a, const GateMatrix2& b) noexcept;

/// Adjoint (conjugate transpose).
[[nodiscard]] GateMatrix2 adjoint(const GateMatrix2& g) noexcept;

/// Frobenius distance ||a-b|| up to global phase — used by tests.
[[nodiscard]] double distanceUpToPhase(const GateMatrix2& a, const GateMatrix2& b) noexcept;

/// A dense 4x4 unitary over a two-qubit window. Row/column index bit 0 is
/// window slot 0, bit 1 is window slot 1 — the convention shared by the
/// gate-fusion pass and StateVector::apply2.
struct GateMatrix4 {
  Complex m[4][4];
};

[[nodiscard]] GateMatrix4 identity4() noexcept;

/// Matrix product a*b (apply b first).
[[nodiscard]] GateMatrix4 matmul(const GateMatrix4& a, const GateMatrix4& b) noexcept;

/// Lift a single-qubit gate onto window slot \p slot (0 or 1): identity on
/// the other slot.
[[nodiscard]] GateMatrix4 embed2(const GateMatrix2& g, unsigned slot) noexcept;

/// Controlled single-qubit gate within the window: \p g acts on slot
/// \p target when slot \p control is 1 (CNOT = controlled X, CZ = Z).
[[nodiscard]] GateMatrix4 controlled4(const GateMatrix2& g, unsigned control,
                                      unsigned target) noexcept;

/// The two-qubit SWAP (slot-symmetric).
[[nodiscard]] GateMatrix4 swap4() noexcept;

/// Frobenius distance ||a-b|| up to global phase — used by tests.
[[nodiscard]] double distanceUpToPhase(const GateMatrix4& a, const GateMatrix4& b) noexcept;

} // namespace qirkit::sim
