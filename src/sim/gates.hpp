/// \file gates.hpp
/// Single-qubit gate matrices of the QIR quantum instruction set (qis).
#pragma once

#include <complex>

namespace qirkit::sim {

using Complex = std::complex<double>;

/// A dense 2x2 unitary.
struct GateMatrix2 {
  Complex m00, m01, m10, m11;
};

[[nodiscard]] GateMatrix2 gateH() noexcept;
[[nodiscard]] GateMatrix2 gateX() noexcept;
[[nodiscard]] GateMatrix2 gateY() noexcept;
[[nodiscard]] GateMatrix2 gateZ() noexcept;
[[nodiscard]] GateMatrix2 gateS() noexcept;
[[nodiscard]] GateMatrix2 gateSdg() noexcept;
[[nodiscard]] GateMatrix2 gateT() noexcept;
[[nodiscard]] GateMatrix2 gateTdg() noexcept;
[[nodiscard]] GateMatrix2 gateRX(double theta) noexcept;
[[nodiscard]] GateMatrix2 gateRY(double theta) noexcept;
[[nodiscard]] GateMatrix2 gateRZ(double theta) noexcept;
/// General single-qubit rotation U3(theta, phi, lambda) (OpenQASM `U`).
[[nodiscard]] GateMatrix2 gateU3(double theta, double phi, double lambda) noexcept;

/// Matrix product a*b (apply b first).
[[nodiscard]] GateMatrix2 matmul(const GateMatrix2& a, const GateMatrix2& b) noexcept;

/// Adjoint (conjugate transpose).
[[nodiscard]] GateMatrix2 adjoint(const GateMatrix2& g) noexcept;

/// Frobenius distance ||a-b|| up to global phase — used by tests.
[[nodiscard]] double distanceUpToPhase(const GateMatrix2& a, const GateMatrix2& b) noexcept;

} // namespace qirkit::sim
