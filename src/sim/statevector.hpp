/// \file statevector.hpp
/// A dense statevector simulator — the classical simulation substrate the
/// paper's Ex. 5 integrates behind the QIR runtime (its Catalyst/Lightning
/// analog). Gate kernels optionally run multi-threaded over amplitude
/// chunks.
///
/// Qubits are indexed 0..n-1; basis state b has qubit q in state (b>>q)&1.
/// The simulator supports growing the register on the fly, which is how
/// the runtime supports *static* qubit addresses whose count is not
/// declared up front (paper §IV.A: "allocate qubits on the fly when it
/// encounters a new qubit address that is not yet part of the simulated
/// quantum state").
///
/// Kernel layout (DESIGN 7g): every gate kernel decomposes its pair-index
/// range into contiguous runs bounded by the lowest target-bit boundary,
/// so the inner loops stream over adjacent amplitudes (vectorizable, one
/// cache-line fetch per four f64 amplitudes) instead of striding. Runs of
/// fused blocks can additionally be applied chunk-at-a-time via
/// applyFusedSweep, which walks each cache-sized chunk once for the whole
/// run instead of once per block.
#pragma once

#include "sim/gates.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

#include <complex>
#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <vector>

namespace qirkit {
class CancelToken;
} // namespace qirkit

namespace qirkit::sim {

/// Amplitude storage width. F64 (the default) is the reference precision;
/// F32 halves memory traffic for throughput-bound sampling workloads at
/// ~1e-7 relative error per gate (accumulating with circuit depth — the
/// executor therefore rejects it for feedback-dependent programs unless
/// forced). Measurement probabilities, norms, and sampling CDFs are always
/// accumulated in double regardless of the storage width.
enum class Precision : std::uint8_t { F64, F32 };

[[nodiscard]] const char* precisionName(Precision precision) noexcept;

/// Parse "f64"/"f32" into \p out; returns false on any other spelling.
[[nodiscard]] bool parsePrecision(std::string_view text, Precision& out) noexcept;

/// Telemetry hook for the shot executor: count one f32 shot batch against
/// sim.kernel.f32_batches.
void noteF32Batch() noexcept;

/// One gate of a fused sweep (applyFusedSweep), with qubit operands
/// already resolved to simulator indices. Matrices and phase tables stay
/// in double precision; kernels convert once per chunk. The diag/
/// diagQubits spans must outlive the applyFusedSweep call.
struct SweepGate {
  enum class Kind : std::uint8_t { Unitary1, Unitary2, Diagonal };

  Kind kind = Kind::Unitary1;
  unsigned q0 = 0;
  unsigned q1 = 0; // Unitary2 only
  GateMatrix2 m2{};
  GateMatrix4 m4{};
  std::span<const Complex> diag{};
  std::span<const unsigned> diagQubits{};
};

class StateVector {
public:
  /// Hard width cap: 2^30 amplitudes (16 GiB) is the largest state a
  /// single dense register may occupy.
  static constexpr unsigned kMaxQubits = 30;

  /// Predicted memory footprint of an n-qubit dense state, the quantity
  /// the service's admission guard budgets before letting a request run.
  /// \p numQubits is clamped to kMaxQubits (anything wider is rejected
  /// outright before the prediction matters).
  [[nodiscard]] static constexpr std::uint64_t
  predictedBytes(unsigned numQubits,
                 Precision precision = Precision::F64) noexcept {
    const unsigned n = numQubits > kMaxQubits ? kMaxQubits : numQubits;
    const std::uint64_t perAmp = precision == Precision::F32
                                     ? sizeof(std::complex<float>)
                                     : sizeof(Complex);
    return (std::uint64_t{1} << n) * perAmp;
  }

  /// Create an n-qubit register in |0...0>. If \p pool is non-null, gate
  /// kernels are parallelized across its workers once the state is large
  /// enough to amortize the fork/join.
  explicit StateVector(unsigned numQubits = 0, qirkit::ThreadPool* pool = nullptr,
                       Precision precision = Precision::F64);

  [[nodiscard]] unsigned numQubits() const noexcept { return numQubits_; }
  [[nodiscard]] std::uint64_t dimension() const noexcept {
    return std::uint64_t{1} << numQubits_;
  }
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  /// Reset to |0...0> keeping the current width.
  void resetAll();

  /// Append a fresh qubit in |0>; returns its index.
  unsigned addQubit();

  /// Collapse qubit \p q (measuring it), force it to |0>, and remove it
  /// from the register. Indices above \p q shift down by one.
  void removeQubit(unsigned q, SplitMix64& rng);

  // -- gates -------------------------------------------------------------
  void apply1(const GateMatrix2& gate, unsigned target);
  /// Generic two-qubit gate: one sweep over the dim/4 index pairs of the
  /// (q0, q1) window. Local basis index bit 0 is q0, bit 1 is q1 (the
  /// GateMatrix4 convention) — the target kernel of the fusion pass's
  /// two-qubit-window rule.
  void apply2(const GateMatrix4& gate, unsigned q0, unsigned q1);
  /// Diagonal gate over \p qubits: one multiply per amplitude, no pair
  /// indexing. diag holds the 2^k phases, indexed by bit j = qubits[j] —
  /// the target kernel of the fusion pass's diagonal-run rule.
  void applyDiagonal(std::span<const Complex> diag, std::span<const unsigned> qubits);
  /// Controlled single-qubit gate (CNOT = controlled X, CZ = controlled Z).
  void applyControlled1(const GateMatrix2& gate, unsigned control, unsigned target);
  /// Doubly-controlled X (Toffoli).
  void applyCCX(unsigned control1, unsigned control2, unsigned target);
  void applySwap(unsigned a, unsigned b);

  /// Apply a run of fused blocks in one pass per cache-sized chunk: when
  /// every touched qubit lies below the chunk width, each gate's
  /// amplitude pairs are chunk-local, so applying all gates (in order) to
  /// chunk 0, then all to chunk 1, ... is exactly the sequential
  /// composition — but each chunk is loaded from memory once for the
  /// whole run instead of once per gate. Gates whose support exceeds the
  /// default chunk width widen the chunk (correctness never depends on
  /// the split); a run spanning the whole register degenerates to
  /// per-gate passes.
  void applyFusedSweep(std::span<const SweepGate> gates);

  // -- measurement ---------------------------------------------------------
  /// Probability that measuring \p q yields 1.
  [[nodiscard]] double probabilityOfOne(unsigned q) const;
  /// Projective measurement of \p q; collapses and renormalizes.
  bool measure(unsigned q, SplitMix64& rng);
  /// Measure-and-correct to |0>.
  void resetQubit(unsigned q, SplitMix64& rng);
  /// Sample a full basis state without collapsing (for repeated shots).
  [[nodiscard]] std::uint64_t sample(SplitMix64& rng) const;
  /// Counts of \p shots independent samples, keyed by basis state. Routed
  /// through the sampleShots CDF path: one O(2^n) prefix sum for the whole
  /// batch instead of an O(2^n) linear scan per shot, and the two samplers
  /// cannot diverge (identical draws from \p rng, identical search).
  [[nodiscard]] std::map<std::uint64_t, std::uint64_t> sampleCounts(std::uint64_t shots,
                                                                    SplitMix64& rng) const;
  /// Batched sampling kernel for the shot executor's terminal-measurement
  /// fast path: builds the cumulative probability distribution once
  /// (O(2^n)), then draws \p shots basis states by binary search
  /// (O(shots log 2^n) = O(shots · n)), parallelized over the thread pool
  /// when the batch is large. All uniforms are pre-drawn sequentially from
  /// \p rng, so the result is independent of pool size and identical to a
  /// sequential run. The CDF is accumulated in double for both precisions.
  [[nodiscard]] std::map<std::uint64_t, std::uint64_t> sampleShots(std::uint64_t shots,
                                                                   SplitMix64& rng) const;

  // -- inspection --------------------------------------------------------
  /// Amplitude of \p basis, widened to double for f32 states.
  [[nodiscard]] Complex amplitude(std::uint64_t basis) const {
    if (precision_ == Precision::F32) {
      const std::complex<float> a = amplitudesF_[basis];
      return Complex{a.real(), a.imag()};
    }
    return amplitudes_[basis];
  }
  /// Raw f64 storage; only meaningful for Precision::F64 states (empty
  /// span otherwise).
  [[nodiscard]] std::span<const Complex> amplitudes() const noexcept {
    return amplitudes_;
  }
  /// Squared 2-norm (1 for a valid state, up to rounding).
  [[nodiscard]] double normSquared() const;
  /// Expectation value of Pauli Z on \p q.
  [[nodiscard]] double expectationZ(unsigned q) const {
    return 1.0 - 2.0 * probabilityOfOne(q);
  }
  /// Fidelity |<this|other>|^2 between equal-width states (any precision
  /// mix; the overlap accumulates in double).
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// Number of gate applications performed (for benchmarks).
  [[nodiscard]] std::uint64_t gateCount() const noexcept { return gateCount_; }

  /// Install (or clear, with nullptr) a cooperative cancellation token.
  /// Kernel sweeps probe it at entry and at chunk boundaries; an expired
  /// token makes the next sweep throw Error(ErrorCode::Deadline) from the
  /// calling thread, leaving the state unusable for the aborted shot. The
  /// token must outlive the simulator or be cleared first.
  void setCancelToken(const qirkit::CancelToken* token) noexcept {
    cancel_ = token;
  }

private:
  void forRange(std::uint64_t n,
                const std::function<void(std::uint64_t, std::uint64_t)>& body) const;
  /// Deterministic parallel sum reduction: [0, n) is split into fixed
  /// 4096-element blocks whose partial sums (computed by \p partial,
  /// possibly in parallel) are combined sequentially in block order. The
  /// summation tree depends only on n — never on the pool — so the result
  /// is bit-identical across pool sizes and sequential runs.
  double blockSum(std::uint64_t n,
                  const std::function<double(std::uint64_t, std::uint64_t)>& partial) const;
  void allocate(std::uint64_t dim);

  unsigned numQubits_;
  Precision precision_;
  std::vector<Complex> amplitudes_;               // F64 storage
  std::vector<std::complex<float>> amplitudesF_;  // F32 storage
  qirkit::ThreadPool* pool_;
  const qirkit::CancelToken* cancel_ = nullptr;
  std::uint64_t gateCount_ = 0;
};

} // namespace qirkit::sim
