#include "sim/statevector.hpp"

#include "support/cancel.hpp"
#include "support/source_location.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <type_traits>

namespace qirkit::sim {

namespace {
telemetry::Counter g_svGates{"sim.statevector.gate_applications"};
telemetry::Counter g_svMeasurements{"sim.statevector.measurements"};
telemetry::MaxGauge g_svPeakBytes{"sim.statevector.peak_bytes"};
/// Fused sweeps that actually took the multi-chunk blocked path (one pass
/// over each cache-sized chunk for the whole gate run).
telemetry::Counter g_svBlockedSweeps{"sim.kernel.blocked_sweeps"};
/// Accumulated SIMD lane width of the vector-friendly kernel sweeps: one
/// 256-bit vector holds 4 f64 or 8 f32 complex components, so each sweep
/// adds 4 or 8. Stays 0 in scalar (QIRKIT_SIMD=OFF) builds.
telemetry::Counter g_svSimdLanes{"sim.kernel.simd_lanes"};
/// Shot batches executed against an f32 state (counted by the executor).
telemetry::Counter g_svF32Batches{"sim.kernel.f32_batches"};

constexpr unsigned kMaxQubits = StateVector::kMaxQubits;

/// Default chunk width of the fused-sweep path: 2^12 amplitudes is 64 KiB
/// of f64 (32 KiB of f32) state — small enough to stay cache-resident
/// across the whole gate run, large enough that the per-chunk dispatch
/// overhead vanishes.
constexpr unsigned kSweepChunkBits = 12;

#if defined(QIRKIT_SIMD)
inline void noteKernelSweeps(Precision precision, std::uint64_t sweeps) noexcept {
  g_svSimdLanes.add((precision == Precision::F32 ? 8 : 4) * sweeps);
}
#else
inline void noteKernelSweeps(Precision, std::uint64_t) noexcept {}
#endif

/// Insert a 0 bit at position \p pos of \p i (spreading higher bits up).
inline std::uint64_t insertZeroBit(std::uint64_t i, unsigned pos) noexcept {
  const std::uint64_t low = i & ((std::uint64_t{1} << pos) - 1);
  const std::uint64_t high = (i >> pos) << (pos + 1);
  return high | low;
}

template <typename Real>
inline std::complex<Real> toC(const Complex& z) noexcept {
  return {static_cast<Real>(z.real()), static_cast<Real>(z.imag())};
}

/// a*b by the textbook formula, without the nan/inf recovery branch the
/// library operator* carries (a call to __muldc3 on a nan product, which
/// blocks vectorization of every kernel loop). Gate matrices and state
/// amplitudes are finite, so the recovery path is dead here anyway.
template <typename Real>
inline std::complex<Real> cmul(const std::complex<Real>& a,
                               const std::complex<Real>& b) noexcept {
  return {a.real() * b.real() - a.imag() * b.imag(),
          a.real() * b.imag() + a.imag() * b.real()};
}

// -- cache-blocked range kernels -----------------------------------------
//
// Each kernel covers a [begin, end) slice of the *compressed* index space
// (pair-subspace indices, as produced by insertZeroBit enumeration) and
// decomposes it into contiguous runs: consecutive compressed indices that
// differ only below the lowest target bit map to adjacent amplitudes, so
// the inner loops walk 2/4 contiguous streams — unit-stride loads the
// compiler can vectorize, one cache-line fetch per 4 f64 amplitudes —
// instead of striding pair by pair. Correctness never depends on where
// [begin, end) is cut: every compressed index is visited exactly once.

template <typename Real>
void apply1Range(std::complex<Real>* const amps, const GateMatrix2& gate,
                 unsigned target, std::uint64_t begin,
                 std::uint64_t end) noexcept {
  using C = std::complex<Real>;
  const C m00 = toC<Real>(gate.m00), m01 = toC<Real>(gate.m01),
          m10 = toC<Real>(gate.m10), m11 = toC<Real>(gate.m11);
  if (target == 0) {
    // Adjacent pairs (2i, 2i+1): a single contiguous stream.
    for (std::uint64_t i = begin; i < end; ++i) {
      const C a0 = amps[2 * i];
      const C a1 = amps[2 * i + 1];
      amps[2 * i] = cmul(m00, a0) + cmul(m01, a1);
      amps[2 * i + 1] = cmul(m10, a0) + cmul(m11, a1);
    }
    return;
  }
  const std::uint64_t bit = std::uint64_t{1} << target;
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t off = i & (bit - 1);
    const std::uint64_t run = std::min(end - i, bit - off);
    C* const p0 = amps + (((i >> target) << (target + 1)) | off);
    C* const p1 = p0 + bit;
    for (std::uint64_t k = 0; k < run; ++k) {
      const C a0 = p0[k];
      const C a1 = p1[k];
      p0[k] = cmul(m00, a0) + cmul(m01, a1);
      p1[k] = cmul(m10, a0) + cmul(m11, a1);
    }
    i += run;
  }
}

template <typename Real>
void apply2Range(std::complex<Real>* const amps, const GateMatrix4& gate,
                 unsigned q0, unsigned q1, std::uint64_t begin,
                 std::uint64_t end) noexcept {
  using C = std::complex<Real>;
  C m[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      m[r][c] = toC<Real>(gate.m[r][c]);
    }
  }
  const std::uint64_t b0 = std::uint64_t{1} << q0;
  const std::uint64_t b1 = std::uint64_t{1} << q1;
  const unsigned lo = q0 < q1 ? q0 : q1;
  const unsigned hi = q0 < q1 ? q1 : q0;
  const std::uint64_t blo = std::uint64_t{1} << lo;
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t off = i & (blo - 1);
    const std::uint64_t run = std::min(end - i, blo - off);
    const std::uint64_t i00 = insertZeroBit(insertZeroBit(i, lo), hi);
    C* const p00 = amps + i00;
    C* const p01 = amps + (i00 | b0);
    C* const p10 = amps + (i00 | b1);
    C* const p11 = amps + (i00 | b0 | b1);
    for (std::uint64_t k = 0; k < run; ++k) {
      const C a00 = p00[k];
      const C a01 = p01[k];
      const C a10 = p10[k];
      const C a11 = p11[k];
      p00[k] = cmul(m[0][0], a00) + cmul(m[0][1], a01) + cmul(m[0][2], a10) +
               cmul(m[0][3], a11);
      p01[k] = cmul(m[1][0], a00) + cmul(m[1][1], a01) + cmul(m[1][2], a10) +
               cmul(m[1][3], a11);
      p10[k] = cmul(m[2][0], a00) + cmul(m[2][1], a01) + cmul(m[2][2], a10) +
               cmul(m[2][3], a11);
      p11[k] = cmul(m[3][0], a00) + cmul(m[3][1], a01) + cmul(m[3][2], a10) +
               cmul(m[3][3], a11);
    }
    i += run;
  }
}

template <typename Real>
void applyControlled1Range(std::complex<Real>* const amps,
                           const GateMatrix2& gate, unsigned control,
                           unsigned target, std::uint64_t begin,
                           std::uint64_t end) noexcept {
  using C = std::complex<Real>;
  const C m00 = toC<Real>(gate.m00), m01 = toC<Real>(gate.m01),
          m10 = toC<Real>(gate.m10), m11 = toC<Real>(gate.m11);
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  const unsigned lo = control < target ? control : target;
  const unsigned hi = control < target ? target : control;
  const std::uint64_t blo = std::uint64_t{1} << lo;
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t off = i & (blo - 1);
    const std::uint64_t run = std::min(end - i, blo - off);
    const std::uint64_t i0 =
        insertZeroBit(insertZeroBit(i, lo), hi) | cbit;
    C* const p0 = amps + i0;
    C* const p1 = p0 + tbit;
    for (std::uint64_t k = 0; k < run; ++k) {
      const C a0 = p0[k];
      const C a1 = p1[k];
      p0[k] = cmul(m00, a0) + cmul(m01, a1);
      p1[k] = cmul(m10, a0) + cmul(m11, a1);
    }
    i += run;
  }
}

template <typename Real>
void applySwapRange(std::complex<Real>* const amps, unsigned a, unsigned b,
                    std::uint64_t begin, std::uint64_t end) noexcept {
  using C = std::complex<Real>;
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  const unsigned lo = a < b ? a : b;
  const unsigned hi = a < b ? b : a;
  const std::uint64_t blo = std::uint64_t{1} << lo;
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t off = i & (blo - 1);
    const std::uint64_t run = std::min(end - i, blo - off);
    const std::uint64_t i10 = insertZeroBit(insertZeroBit(i, lo), hi) | abit;
    C* const p = amps + i10;
    C* const q = amps + ((i10 ^ abit) | bbit);
    for (std::uint64_t k = 0; k < run; ++k) {
      std::swap(p[k], q[k]);
    }
    i += run;
  }
}

template <typename Real>
void applyCCXRange(std::complex<Real>* const amps, const unsigned (&pos)[3],
                   std::uint64_t c1, std::uint64_t c2, std::uint64_t tbit,
                   std::uint64_t begin, std::uint64_t end) noexcept {
  using C = std::complex<Real>;
  const std::uint64_t blo = std::uint64_t{1} << pos[0];
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t off = i & (blo - 1);
    const std::uint64_t run = std::min(end - i, blo - off);
    const std::uint64_t i0 =
        (insertZeroBit(insertZeroBit(insertZeroBit(i, pos[0]), pos[1]),
                       pos[2]) |
         c1) |
        c2;
    C* const p = amps + i0;
    C* const q = amps + (i0 | tbit);
    for (std::uint64_t k = 0; k < run; ++k) {
      std::swap(p[k], q[k]);
    }
    i += run;
  }
}

template <typename Real>
void applyDiagonalRange(std::complex<Real>* const amps,
                        const Complex* const table,
                        const unsigned* const shifts, std::size_t numBits,
                        std::uint64_t begin, std::uint64_t end) noexcept {
  using C = std::complex<Real>;
  // Within an aligned run of 2^qmin amplitudes only bits below qmin vary,
  // so every table-index bit (all at positions >= qmin) is constant: one
  // gather per run, then a pure stream of multiplies.
  unsigned qmin = shifts[0];
  for (std::size_t j = 1; j < numBits; ++j) {
    qmin = std::min(qmin, shifts[j]);
  }
  const std::uint64_t runLen = std::uint64_t{1} << qmin;
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t run = std::min(end - i, runLen - (i & (runLen - 1)));
    std::size_t idx = 0;
    for (std::size_t j = 0; j < numBits; ++j) {
      idx |= ((i >> shifts[j]) & 1) << j;
    }
    const C phase = toC<Real>(table[idx]);
    C* const p = amps + i;
    for (std::uint64_t k = 0; k < run; ++k) {
      p[k] = cmul(p[k], phase);
    }
    i += run;
  }
}

/// The fused-sweep inner driver: chunk-major, gate-minor. Every gate's
/// qubits lie below chunkBits, so each gate only mixes amplitudes within
/// one chunk — applying the whole run to chunk c before touching chunk
/// c+1 is exactly the sequential composition, with each chunk fetched
/// from memory once per run instead of once per gate.
template <typename Real>
void sweepChunkRange(std::complex<Real>* const amps,
                     std::span<const SweepGate> gates, unsigned chunkBits,
                     std::uint64_t beginChunk, std::uint64_t endChunk) {
  for (std::uint64_t c = beginChunk; c < endChunk; ++c) {
    for (const SweepGate& g : gates) {
      switch (g.kind) {
      case SweepGate::Kind::Unitary1: {
        const std::uint64_t half = std::uint64_t{1} << (chunkBits - 1);
        apply1Range(amps, g.m2, g.q0, c * half, (c + 1) * half);
        break;
      }
      case SweepGate::Kind::Unitary2: {
        const std::uint64_t quarter = std::uint64_t{1} << (chunkBits - 2);
        apply2Range(amps, g.m4, g.q0, g.q1, c * quarter, (c + 1) * quarter);
        break;
      }
      case SweepGate::Kind::Diagonal: {
        const std::uint64_t full = std::uint64_t{1} << chunkBits;
        unsigned shifts[64];
        for (std::size_t j = 0; j < g.diagQubits.size(); ++j) {
          shifts[j] = g.diagQubits[j];
        }
        applyDiagonalRange(amps, g.diag.data(), shifts, g.diagQubits.size(),
                           c * full, (c + 1) * full);
        break;
      }
      }
    }
  }
}

} // namespace

const char* precisionName(Precision precision) noexcept {
  return precision == Precision::F32 ? "f32" : "f64";
}

bool parsePrecision(std::string_view text, Precision& out) noexcept {
  if (text == "f64") {
    out = Precision::F64;
    return true;
  }
  if (text == "f32") {
    out = Precision::F32;
    return true;
  }
  return false;
}

void noteF32Batch() noexcept { g_svF32Batches.add(); }

StateVector::StateVector(unsigned numQubits, qirkit::ThreadPool* pool,
                         Precision precision)
    : numQubits_(numQubits), precision_(precision), pool_(pool) {
  if (numQubits > kMaxQubits) {
    throw qirkit::SemanticError("statevector limited to " +
                                std::to_string(kMaxQubits) + " qubits");
  }
  try {
    if (precision_ == Precision::F32) {
      amplitudesF_.assign(dimension(), std::complex<float>{});
      amplitudesF_[0] = 1.0F;
    } else {
      amplitudes_.assign(dimension(), Complex{});
      amplitudes_[0] = 1.0;
    }
  } catch (const std::bad_alloc&) {
    throw qirkit::Error(qirkit::ErrorCode::ResourceLimit,
                        "cannot allocate " +
                            std::to_string(predictedBytes(numQubits, precision_)) +
                            " bytes for a " + std::to_string(numQubits) +
                            "-qubit statevector");
  }
  g_svPeakBytes.updateMax(predictedBytes(numQubits_, precision_));
}

void StateVector::resetAll() {
  if (precision_ == Precision::F32) {
    std::fill(amplitudesF_.begin(), amplitudesF_.end(), std::complex<float>{});
    amplitudesF_[0] = 1.0F;
  } else {
    std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{});
    amplitudes_[0] = 1.0;
  }
}

unsigned StateVector::addQubit() {
  if (numQubits_ >= kMaxQubits) {
    throw qirkit::SemanticError("statevector limited to " +
                                std::to_string(kMaxQubits) + " qubits");
  }
  ++numQubits_;
  try {
    if (precision_ == Precision::F32) {
      amplitudesF_.resize(dimension(), std::complex<float>{});
    } else {
      amplitudes_.resize(dimension(), Complex{}); // appended qubit is |0>
    }
  } catch (const std::bad_alloc&) {
    --numQubits_;
    throw qirkit::Error(qirkit::ErrorCode::ResourceLimit,
                        "cannot allocate " +
                            std::to_string(predictedBytes(numQubits_ + 1, precision_)) +
                            " bytes growing the statevector to " +
                            std::to_string(numQubits_ + 1) + " qubits");
  }
  g_svPeakBytes.updateMax(predictedBytes(numQubits_, precision_));
  return numQubits_ - 1;
}

void StateVector::removeQubit(unsigned q, SplitMix64& rng) {
  assert(q < numQubits_);
  if (measure(q, rng)) {
    apply1(gateX(), q); // force |0>
  }
  // Compact out bit q (all amplitudes with the bit set are now zero).
  const std::uint64_t half = dimension() >> 1;
  const auto compact = [&](auto& storage) {
    using C = typename std::decay_t<decltype(storage)>::value_type;
    std::vector<C> next(half);
    for (std::uint64_t i = 0; i < half; ++i) {
      next[i] = storage[insertZeroBit(i, q)];
    }
    storage = std::move(next);
  };
  if (precision_ == Precision::F32) {
    compact(amplitudesF_);
  } else {
    compact(amplitudes_);
  }
  --numQubits_;
}

void StateVector::forRange(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) const {
  // Cancellation checkpoint once per sweep, on the calling thread — pool
  // tasks must not throw. Armed-and-expired tokens additionally make the
  // parallel path skip remaining chunks (the state is abandoned anyway
  // once the next checkpoint throws).
  if (cancel_ != nullptr) {
    cancel_->checkpoint("statevector kernel");
  }
  if (pool_ != nullptr && n >= (std::uint64_t{1} << 14)) {
    const qirkit::CancelToken* const cancel = cancel_;
    qirkit::parallelForChunked(
        *pool_, n,
        [&body, cancel](std::uint64_t begin, std::uint64_t end) {
          if (cancel != nullptr && cancel->expired()) {
            return; // chunk-boundary bail-out; caller throws on next probe
          }
          body(begin, end);
        },
        std::uint64_t{1} << 12);
  } else {
    body(0, n);
  }
}

void StateVector::apply1(const GateMatrix2& gate, unsigned target) {
  assert(target < numQubits_);
  ++gateCount_;
  g_svGates.add();
  noteKernelSweeps(precision_, 1);
  const auto dispatch = [&](auto* const amps) {
    forRange(dimension() >> 1, [&](std::uint64_t begin, std::uint64_t end) {
      apply1Range(amps, gate, target, begin, end);
    });
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

void StateVector::apply2(const GateMatrix4& gate, unsigned q0, unsigned q1) {
  assert(q0 < numQubits_ && q1 < numQubits_ && q0 != q1);
  ++gateCount_;
  g_svGates.add();
  noteKernelSweeps(precision_, 1);
  const auto dispatch = [&](auto* const amps) {
    forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
      apply2Range(amps, gate, q0, q1, begin, end);
    });
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

void StateVector::applyDiagonal(std::span<const Complex> diag,
                                std::span<const unsigned> qubits) {
  assert(!qubits.empty() &&
         diag.size() == (std::size_t{1} << qubits.size()));
#ifndef NDEBUG
  for (const unsigned q : qubits) {
    assert(q < numQubits_);
  }
#endif
  ++gateCount_;
  g_svGates.add();
  noteKernelSweeps(precision_, 1);
  // Hoist the qubit list out of the span (one indirect load per qubit per
  // amplitude otherwise) and keep the phase table behind a raw pointer so
  // the stores to the amplitudes cannot force reloads of either.
  unsigned shifts[64];
  const std::size_t numBits = qubits.size();
  for (std::size_t j = 0; j < numBits; ++j) {
    shifts[j] = qubits[j];
  }
  const Complex* const table = diag.data();
  const auto dispatch = [&](auto* const amps) {
    forRange(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
      applyDiagonalRange(amps, table, shifts, numBits, begin, end);
    });
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

void StateVector::applyControlled1(const GateMatrix2& gate, unsigned control,
                                   unsigned target) {
  assert(control < numQubits_ && target < numQubits_ && control != target);
  ++gateCount_;
  g_svGates.add();
  noteKernelSweeps(precision_, 1);
  const auto dispatch = [&](auto* const amps) {
    forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
      applyControlled1Range(amps, gate, control, target, begin, end);
    });
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

void StateVector::applyCCX(unsigned control1, unsigned control2, unsigned target) {
  assert(control1 != control2 && control1 != target && control2 != target);
  ++gateCount_;
  g_svGates.add();
  noteKernelSweeps(precision_, 1);
  const std::uint64_t c1 = std::uint64_t{1} << control1;
  const std::uint64_t c2 = std::uint64_t{1} << control2;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  // Enumerate only the control1=1, control2=1, target=0 subspace.
  unsigned pos[3] = {control1, control2, target};
  if (pos[0] > pos[1]) {
    std::swap(pos[0], pos[1]);
  }
  if (pos[1] > pos[2]) {
    std::swap(pos[1], pos[2]);
  }
  if (pos[0] > pos[1]) {
    std::swap(pos[0], pos[1]);
  }
  const auto dispatch = [&](auto* const amps) {
    forRange(dimension() >> 3, [&](std::uint64_t begin, std::uint64_t end) {
      applyCCXRange(amps, pos, c1, c2, tbit, begin, end);
    });
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

void StateVector::applySwap(unsigned a, unsigned b) {
  assert(a < numQubits_ && b < numQubits_);
  if (a == b) {
    return;
  }
  ++gateCount_;
  g_svGates.add();
  noteKernelSweeps(precision_, 1);
  // Enumerate only the a=1, b=0 subspace (dim/4), like the other
  // controlled kernels: each such index pairs with its a=0, b=1 partner.
  const auto dispatch = [&](auto* const amps) {
    forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
      applySwapRange(amps, a, b, begin, end);
    });
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

void StateVector::applyFusedSweep(std::span<const SweepGate> gates) {
  if (gates.empty()) {
    return;
  }
  if (cancel_ != nullptr) {
    cancel_->checkpoint("statevector sweep");
  }
  gateCount_ += gates.size();
  g_svGates.add(gates.size());
  noteKernelSweeps(precision_, gates.size());
  unsigned maxQ = 0;
  for (const SweepGate& g : gates) {
    switch (g.kind) {
    case SweepGate::Kind::Unitary1:
      maxQ = std::max(maxQ, g.q0);
      break;
    case SweepGate::Kind::Unitary2:
      maxQ = std::max(maxQ, std::max(g.q0, g.q1));
      break;
    case SweepGate::Kind::Diagonal:
      for (const unsigned q : g.diagQubits) {
        maxQ = std::max(maxQ, q);
      }
      break;
    }
  }
  assert(maxQ < numQubits_);
  // Chunks must contain every touched qubit; a high-qubit gate widens the
  // chunk (fewer, larger chunks — still correct, less cache benefit), and
  // a register no wider than one chunk degenerates to per-gate passes.
  const unsigned chunkBits =
      std::min(std::max(kSweepChunkBits, maxQ + 1), numQubits_);
  const std::uint64_t numChunks = dimension() >> chunkBits;
  if (numChunks > 1) {
    g_svBlockedSweeps.add();
  }
  const auto dispatch = [&](auto* const amps) {
    const auto body = [&](std::uint64_t beginChunk, std::uint64_t endChunk) {
      sweepChunkRange(amps, gates, chunkBits, beginChunk, endChunk);
    };
    if (pool_ != nullptr && numChunks > 1 &&
        dimension() >= (std::uint64_t{1} << 14)) {
      const qirkit::CancelToken* const cancel = cancel_;
      qirkit::parallelForChunked(
          *pool_, numChunks,
          [&body, cancel](std::uint64_t begin, std::uint64_t end) {
            if (cancel != nullptr && cancel->expired()) {
              return;
            }
            body(begin, end);
          },
          1);
    } else {
      body(0, numChunks);
    }
  };
  if (precision_ == Precision::F32) {
    dispatch(amplitudesF_.data());
  } else {
    dispatch(amplitudes_.data());
  }
}

double StateVector::blockSum(
    std::uint64_t n,
    const std::function<double(std::uint64_t, std::uint64_t)>& partial) const {
  constexpr std::uint64_t kBlock = std::uint64_t{1} << 12;
  if (n <= kBlock) {
    return partial(0, n);
  }
  const std::uint64_t numBlocks = (n + kBlock - 1) / kBlock;
  std::vector<double> partials(numBlocks);
  const auto runBlocks = [&](std::uint64_t beginBlock, std::uint64_t endBlock) {
    for (std::uint64_t b = beginBlock; b < endBlock; ++b) {
      partials[b] = partial(b * kBlock, std::min(n, (b + 1) * kBlock));
    }
  };
  if (pool_ != nullptr && n >= (std::uint64_t{1} << 14)) {
    qirkit::parallelForChunked(*pool_, numBlocks, runBlocks, 1);
  } else {
    runBlocks(0, numBlocks);
  }
  double total = 0;
  for (const double p : partials) {
    total += p;
  }
  return total;
}

double StateVector::probabilityOfOne(unsigned q) const {
  assert(q < numQubits_);
  const std::uint64_t bit = std::uint64_t{1} << q;
  // Enumerate only the q=1 half (ascending, so the term order matches a
  // full-dimension scan); partial sums reduce deterministically and always
  // accumulate in double, whatever the storage precision.
  const auto compute = [&](const auto* const amps) {
    return blockSum(dimension() >> 1, [&](std::uint64_t begin, std::uint64_t end) {
      double p = 0;
      for (std::uint64_t i = begin; i < end; ++i) {
        const auto a = amps[insertZeroBit(i, q) | bit];
        const double re = a.real();
        const double im = a.imag();
        p += re * re + im * im;
      }
      return p;
    });
  };
  return precision_ == Precision::F32 ? compute(amplitudesF_.data())
                                      : compute(amplitudes_.data());
}

bool StateVector::measure(unsigned q, SplitMix64& rng) {
  g_svMeasurements.add();
  const double p1 = probabilityOfOne(q);
  const bool outcome = rng.uniform() < p1;
  const double keep = outcome ? p1 : 1.0 - p1;
  const double scale = keep > 0 ? 1.0 / std::sqrt(keep) : 0.0;
  const std::uint64_t bit = std::uint64_t{1} << q;
  const auto collapse = [&](auto* const amps) {
    using C = std::decay_t<decltype(*amps)>;
    const auto s = static_cast<typename C::value_type>(scale);
    forRange(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
      for (std::uint64_t i = begin; i < end; ++i) {
        const bool isOne = (i & bit) != 0;
        if (isOne == outcome) {
          amps[i] *= s;
        } else {
          amps[i] = C{};
        }
      }
    });
  };
  if (precision_ == Precision::F32) {
    collapse(amplitudesF_.data());
  } else {
    collapse(amplitudes_.data());
  }
  return outcome;
}

void StateVector::resetQubit(unsigned q, SplitMix64& rng) {
  if (measure(q, rng)) {
    apply1(gateX(), q);
  }
}

std::uint64_t StateVector::sample(SplitMix64& rng) const {
  const auto draw = [&](const auto* const amps) {
    double r = rng.uniform();
    for (std::uint64_t i = 0; i < dimension(); ++i) {
      const double re = amps[i].real();
      const double im = amps[i].imag();
      r -= re * re + im * im;
      if (r <= 0) {
        return i;
      }
    }
    return dimension() - 1;
  };
  return precision_ == Precision::F32 ? draw(amplitudesF_.data())
                                      : draw(amplitudes_.data());
}

std::map<std::uint64_t, std::uint64_t> StateVector::sampleCounts(std::uint64_t shots,
                                                                 SplitMix64& rng) const {
  return sampleShots(shots, rng);
}

std::map<std::uint64_t, std::uint64_t> StateVector::sampleShots(
    std::uint64_t shots, SplitMix64& rng) const {
  std::map<std::uint64_t, std::uint64_t> counts;
  if (shots == 0) {
    return counts;
  }
  // Cumulative probabilities, accumulated in double for both precisions.
  // The sum is sequential so the distribution is bit-identical regardless
  // of pool size; the per-shot searches below are the parallel part.
  std::vector<double> cdf(dimension());
  double total = 0;
  const auto buildCdf = [&](const auto* const amps) {
    for (std::uint64_t i = 0; i < dimension(); ++i) {
      const double re = amps[i].real();
      const double im = amps[i].imag();
      total += re * re + im * im;
      cdf[i] = total;
    }
  };
  if (precision_ == Precision::F32) {
    buildCdf(amplitudesF_.data());
  } else {
    buildCdf(amplitudes_.data());
  }
  // Pre-draw every uniform from the caller's stream (scaled by the actual
  // total to absorb rounding), then binary-search each shot independently.
  std::vector<double> draws(shots);
  for (std::uint64_t s = 0; s < shots; ++s) {
    draws[s] = rng.uniform() * total;
  }
  std::vector<std::uint64_t> basis(shots);
  forRange(shots, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t s = begin; s < end; ++s) {
      const auto it = std::upper_bound(cdf.begin(), cdf.end(), draws[s]);
      basis[s] = it == cdf.end() ? dimension() - 1
                                 : static_cast<std::uint64_t>(it - cdf.begin());
    }
  });
  for (std::uint64_t s = 0; s < shots; ++s) {
    ++counts[basis[s]];
  }
  return counts;
}

double StateVector::normSquared() const {
  const auto compute = [&](const auto* const amps) {
    return blockSum(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
      double n = 0;
      for (std::uint64_t i = begin; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        n += re * re + im * im;
      }
      return n;
    });
  };
  return precision_ == Precision::F32 ? compute(amplitudesF_.data())
                                      : compute(amplitudes_.data());
}

double StateVector::fidelity(const StateVector& other) const {
  assert(numQubits_ == other.numQubits_);
  Complex overlap = 0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    overlap += std::conj(amplitude(i)) * other.amplitude(i);
  }
  return std::norm(overlap);
}

} // namespace qirkit::sim
