#include "sim/statevector.hpp"

#include "support/cancel.hpp"
#include "support/source_location.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qirkit::sim {

namespace {
telemetry::Counter g_svGates{"sim.statevector.gate_applications"};
telemetry::Counter g_svMeasurements{"sim.statevector.measurements"};
telemetry::MaxGauge g_svPeakBytes{"sim.statevector.peak_bytes"};

constexpr unsigned kMaxQubits = StateVector::kMaxQubits;

/// Insert a 0 bit at position \p pos of \p i (spreading higher bits up).
inline std::uint64_t insertZeroBit(std::uint64_t i, unsigned pos) noexcept {
  const std::uint64_t low = i & ((std::uint64_t{1} << pos) - 1);
  const std::uint64_t high = (i >> pos) << (pos + 1);
  return high | low;
}
} // namespace

StateVector::StateVector(unsigned numQubits, qirkit::ThreadPool* pool)
    : numQubits_(numQubits), pool_(pool) {
  if (numQubits > kMaxQubits) {
    throw qirkit::SemanticError("statevector limited to " +
                                std::to_string(kMaxQubits) + " qubits");
  }
  try {
    amplitudes_.assign(dimension(), Complex{});
  } catch (const std::bad_alloc&) {
    throw qirkit::Error(qirkit::ErrorCode::ResourceLimit,
                        "cannot allocate " +
                            std::to_string(predictedBytes(numQubits)) +
                            " bytes for a " + std::to_string(numQubits) +
                            "-qubit statevector");
  }
  amplitudes_[0] = 1.0;
  g_svPeakBytes.updateMax(dimension() * sizeof(Complex));
}

void StateVector::resetAll() {
  std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{});
  amplitudes_[0] = 1.0;
}

unsigned StateVector::addQubit() {
  if (numQubits_ >= kMaxQubits) {
    throw qirkit::SemanticError("statevector limited to " +
                                std::to_string(kMaxQubits) + " qubits");
  }
  ++numQubits_;
  try {
    amplitudes_.resize(dimension(), Complex{}); // appended qubit is |0>
  } catch (const std::bad_alloc&) {
    --numQubits_;
    throw qirkit::Error(qirkit::ErrorCode::ResourceLimit,
                        "cannot allocate " +
                            std::to_string(predictedBytes(numQubits_ + 1)) +
                            " bytes growing the statevector to " +
                            std::to_string(numQubits_ + 1) + " qubits");
  }
  g_svPeakBytes.updateMax(dimension() * sizeof(Complex));
  return numQubits_ - 1;
}

void StateVector::removeQubit(unsigned q, SplitMix64& rng) {
  assert(q < numQubits_);
  if (measure(q, rng)) {
    apply1(gateX(), q); // force |0>
  }
  // Compact out bit q (all amplitudes with the bit set are now zero).
  const std::uint64_t half = dimension() >> 1;
  std::vector<Complex> next(half);
  for (std::uint64_t i = 0; i < half; ++i) {
    next[i] = amplitudes_[insertZeroBit(i, q)];
  }
  amplitudes_ = std::move(next);
  --numQubits_;
}

void StateVector::forRange(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) const {
  // Cancellation checkpoint once per sweep, on the calling thread — pool
  // tasks must not throw. Armed-and-expired tokens additionally make the
  // parallel path skip remaining chunks (the state is abandoned anyway
  // once the next checkpoint throws).
  if (cancel_ != nullptr) {
    cancel_->checkpoint("statevector kernel");
  }
  if (pool_ != nullptr && n >= (std::uint64_t{1} << 14)) {
    const qirkit::CancelToken* const cancel = cancel_;
    qirkit::parallelForChunked(
        *pool_, n,
        [&body, cancel](std::uint64_t begin, std::uint64_t end) {
          if (cancel != nullptr && cancel->expired()) {
            return; // chunk-boundary bail-out; caller throws on next probe
          }
          body(begin, end);
        },
        std::uint64_t{1} << 12);
  } else {
    body(0, n);
  }
}

void StateVector::apply1(const GateMatrix2& gate, unsigned target) {
  assert(target < numQubits_);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t bit = std::uint64_t{1} << target;
  // Copy the matrix into locals so amplitude stores cannot force reloads
  // through the const reference (see the comment in apply2).
  const Complex m00 = gate.m00, m01 = gate.m01, m10 = gate.m10,
                m11 = gate.m11;
  forRange(dimension() >> 1, [&](std::uint64_t begin, std::uint64_t end) {
    Complex* const amps = amplitudes_.data();
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i0 = insertZeroBit(i, target);
      const std::uint64_t i1 = i0 | bit;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = m00 * a0 + m01 * a1;
      amps[i1] = m10 * a0 + m11 * a1;
    }
  });
}

void StateVector::apply2(const GateMatrix4& gate, unsigned q0, unsigned q1) {
  assert(q0 < numQubits_ && q1 < numQubits_ && q0 != q1);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t b0 = std::uint64_t{1} << q0;
  const std::uint64_t b1 = std::uint64_t{1} << q1;
  const unsigned lo = q0 < q1 ? q0 : q1;
  const unsigned hi = q0 < q1 ? q1 : q0;
  // Hoist the matrix into locals: indexing gate.m[r][c] inside the loop
  // forces a reload of all 16 entries after every amplitude store (the
  // compiler cannot prove the reference does not alias the state), which
  // triples the per-iteration cost of this kernel.
  const Complex m00 = gate.m[0][0], m01 = gate.m[0][1], m02 = gate.m[0][2],
                m03 = gate.m[0][3];
  const Complex m10 = gate.m[1][0], m11 = gate.m[1][1], m12 = gate.m[1][2],
                m13 = gate.m[1][3];
  const Complex m20 = gate.m[2][0], m21 = gate.m[2][1], m22 = gate.m[2][2],
                m23 = gate.m[2][3];
  const Complex m30 = gate.m[3][0], m31 = gate.m[3][1], m32 = gate.m[3][2],
                m33 = gate.m[3][3];
  forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
    Complex* const amps = amplitudes_.data();
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i00 = insertZeroBit(insertZeroBit(i, lo), hi);
      const std::uint64_t i01 = i00 | b0;
      const std::uint64_t i10 = i00 | b1;
      const std::uint64_t i11 = i01 | b1;
      const Complex a00 = amps[i00];
      const Complex a01 = amps[i01];
      const Complex a10 = amps[i10];
      const Complex a11 = amps[i11];
      amps[i00] = m00 * a00 + m01 * a01 + m02 * a10 + m03 * a11;
      amps[i01] = m10 * a00 + m11 * a01 + m12 * a10 + m13 * a11;
      amps[i10] = m20 * a00 + m21 * a01 + m22 * a10 + m23 * a11;
      amps[i11] = m30 * a00 + m31 * a01 + m32 * a10 + m33 * a11;
    }
  });
}

void StateVector::applyDiagonal(std::span<const Complex> diag,
                                std::span<const unsigned> qubits) {
  assert(!qubits.empty() &&
         diag.size() == (std::size_t{1} << qubits.size()));
#ifndef NDEBUG
  for (const unsigned q : qubits) {
    assert(q < numQubits_);
  }
#endif
  ++gateCount_;
  g_svGates.add();
  // Hoist the qubit list out of the span (one indirect load per qubit per
  // amplitude otherwise) and keep the phase table behind a raw pointer so
  // the stores to amplitudes_ cannot force reloads of either.
  unsigned shifts[64];
  const std::size_t numBits = qubits.size();
  for (std::size_t j = 0; j < numBits; ++j) {
    shifts[j] = qubits[j];
  }
  const Complex* const table = diag.data();
  forRange(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
    Complex* const amps = amplitudes_.data();
    for (std::uint64_t i = begin; i < end; ++i) {
      std::size_t idx = 0;
      for (std::size_t j = 0; j < numBits; ++j) {
        idx |= ((i >> shifts[j]) & 1) << j;
      }
      amps[i] *= table[idx];
    }
  });
}

void StateVector::applyControlled1(const GateMatrix2& gate, unsigned control,
                                   unsigned target) {
  assert(control < numQubits_ && target < numQubits_ && control != target);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  // Enumerate only the control=1, target=0 subspace: insert zero bits at
  // both positions (ascending, so the second insertion sees final
  // coordinates), then force the control bit on.
  const unsigned lo = control < target ? control : target;
  const unsigned hi = control < target ? target : control;
  const Complex m00 = gate.m00, m01 = gate.m01, m10 = gate.m10,
                m11 = gate.m11;
  forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
    Complex* const amps = amplitudes_.data();
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i0 = insertZeroBit(insertZeroBit(i, lo), hi) | cbit;
      const std::uint64_t i1 = i0 | tbit;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = m00 * a0 + m01 * a1;
      amps[i1] = m10 * a0 + m11 * a1;
    }
  });
}

void StateVector::applyCCX(unsigned control1, unsigned control2, unsigned target) {
  assert(control1 != control2 && control1 != target && control2 != target);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t c1 = std::uint64_t{1} << control1;
  const std::uint64_t c2 = std::uint64_t{1} << control2;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  // Enumerate only the control1=1, control2=1, target=0 subspace.
  unsigned pos[3] = {control1, control2, target};
  if (pos[0] > pos[1]) {
    std::swap(pos[0], pos[1]);
  }
  if (pos[1] > pos[2]) {
    std::swap(pos[1], pos[2]);
  }
  if (pos[0] > pos[1]) {
    std::swap(pos[0], pos[1]);
  }
  forRange(dimension() >> 3, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i0 =
          (insertZeroBit(insertZeroBit(insertZeroBit(i, pos[0]), pos[1]), pos[2]) |
           c1) |
          c2;
      std::swap(amplitudes_[i0],
                amplitudes_[i0 | tbit]);
    }
  });
}

void StateVector::applySwap(unsigned a, unsigned b) {
  assert(a < numQubits_ && b < numQubits_);
  if (a == b) {
    return;
  }
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  // Enumerate only the a=1, b=0 subspace (dim/4), like the other
  // controlled kernels: each such index pairs with its a=0, b=1 partner.
  const unsigned lo = a < b ? a : b;
  const unsigned hi = a < b ? b : a;
  forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i10 = insertZeroBit(insertZeroBit(i, lo), hi) | abit;
      std::swap(amplitudes_[i10], amplitudes_[(i10 ^ abit) | bbit]);
    }
  });
}

double StateVector::blockSum(
    std::uint64_t n,
    const std::function<double(std::uint64_t, std::uint64_t)>& partial) const {
  constexpr std::uint64_t kBlock = std::uint64_t{1} << 12;
  if (n <= kBlock) {
    return partial(0, n);
  }
  const std::uint64_t numBlocks = (n + kBlock - 1) / kBlock;
  std::vector<double> partials(numBlocks);
  const auto runBlocks = [&](std::uint64_t beginBlock, std::uint64_t endBlock) {
    for (std::uint64_t b = beginBlock; b < endBlock; ++b) {
      partials[b] = partial(b * kBlock, std::min(n, (b + 1) * kBlock));
    }
  };
  if (pool_ != nullptr && n >= (std::uint64_t{1} << 14)) {
    qirkit::parallelForChunked(*pool_, numBlocks, runBlocks, 1);
  } else {
    runBlocks(0, numBlocks);
  }
  double total = 0;
  for (const double p : partials) {
    total += p;
  }
  return total;
}

double StateVector::probabilityOfOne(unsigned q) const {
  assert(q < numQubits_);
  const std::uint64_t bit = std::uint64_t{1} << q;
  // Enumerate only the q=1 half (ascending, so the term order matches a
  // full-dimension scan); partial sums reduce deterministically.
  return blockSum(dimension() >> 1, [&](std::uint64_t begin, std::uint64_t end) {
    double p = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      p += std::norm(amplitudes_[insertZeroBit(i, q) | bit]);
    }
    return p;
  });
}

bool StateVector::measure(unsigned q, SplitMix64& rng) {
  g_svMeasurements.add();
  const double p1 = probabilityOfOne(q);
  const bool outcome = rng.uniform() < p1;
  const double keep = outcome ? p1 : 1.0 - p1;
  const double scale = keep > 0 ? 1.0 / std::sqrt(keep) : 0.0;
  const std::uint64_t bit = std::uint64_t{1} << q;
  forRange(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const bool isOne = (i & bit) != 0;
      if (isOne == outcome) {
        amplitudes_[i] *= scale;
      } else {
        amplitudes_[i] = 0;
      }
    }
  });
  return outcome;
}

void StateVector::resetQubit(unsigned q, SplitMix64& rng) {
  if (measure(q, rng)) {
    apply1(gateX(), q);
  }
}

std::uint64_t StateVector::sample(SplitMix64& rng) const {
  double r = rng.uniform();
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    r -= std::norm(amplitudes_[i]);
    if (r <= 0) {
      return i;
    }
  }
  return dimension() - 1;
}

std::map<std::uint64_t, std::uint64_t> StateVector::sampleCounts(std::uint64_t shots,
                                                                 SplitMix64& rng) const {
  return sampleShots(shots, rng);
}

std::map<std::uint64_t, std::uint64_t> StateVector::sampleShots(
    std::uint64_t shots, SplitMix64& rng) const {
  std::map<std::uint64_t, std::uint64_t> counts;
  if (shots == 0) {
    return counts;
  }
  // Cumulative probabilities. The sum is sequential so the distribution is
  // bit-identical regardless of pool size; the per-shot searches below are
  // the parallel part.
  std::vector<double> cdf(dimension());
  double total = 0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    total += std::norm(amplitudes_[i]);
    cdf[i] = total;
  }
  // Pre-draw every uniform from the caller's stream (scaled by the actual
  // total to absorb rounding), then binary-search each shot independently.
  std::vector<double> draws(shots);
  for (std::uint64_t s = 0; s < shots; ++s) {
    draws[s] = rng.uniform() * total;
  }
  std::vector<std::uint64_t> basis(shots);
  forRange(shots, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t s = begin; s < end; ++s) {
      const auto it = std::upper_bound(cdf.begin(), cdf.end(), draws[s]);
      basis[s] = it == cdf.end() ? dimension() - 1
                                 : static_cast<std::uint64_t>(it - cdf.begin());
    }
  });
  for (std::uint64_t s = 0; s < shots; ++s) {
    ++counts[basis[s]];
  }
  return counts;
}

double StateVector::normSquared() const {
  return blockSum(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
    double n = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      n += std::norm(amplitudes_[i]);
    }
    return n;
  });
}

double StateVector::fidelity(const StateVector& other) const {
  assert(numQubits_ == other.numQubits_);
  Complex overlap = 0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    overlap += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::norm(overlap);
}

} // namespace qirkit::sim
