#include "sim/statevector.hpp"

#include "support/source_location.hpp"
#include "support/telemetry/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qirkit::sim {

namespace {
telemetry::Counter g_svGates{"sim.statevector.gate_applications"};
telemetry::Counter g_svMeasurements{"sim.statevector.measurements"};
telemetry::MaxGauge g_svPeakBytes{"sim.statevector.peak_bytes"};

constexpr unsigned kMaxQubits = 30;

/// Insert a 0 bit at position \p pos of \p i (spreading higher bits up).
inline std::uint64_t insertZeroBit(std::uint64_t i, unsigned pos) noexcept {
  const std::uint64_t low = i & ((std::uint64_t{1} << pos) - 1);
  const std::uint64_t high = (i >> pos) << (pos + 1);
  return high | low;
}
} // namespace

StateVector::StateVector(unsigned numQubits, qirkit::ThreadPool* pool)
    : numQubits_(numQubits), pool_(pool) {
  if (numQubits > kMaxQubits) {
    throw qirkit::SemanticError("statevector limited to " +
                                std::to_string(kMaxQubits) + " qubits");
  }
  amplitudes_.assign(dimension(), Complex{});
  amplitudes_[0] = 1.0;
  g_svPeakBytes.updateMax(dimension() * sizeof(Complex));
}

void StateVector::resetAll() {
  std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{});
  amplitudes_[0] = 1.0;
}

unsigned StateVector::addQubit() {
  if (numQubits_ >= kMaxQubits) {
    throw qirkit::SemanticError("statevector limited to " +
                                std::to_string(kMaxQubits) + " qubits");
  }
  ++numQubits_;
  amplitudes_.resize(dimension(), Complex{}); // appended qubit is |0>
  g_svPeakBytes.updateMax(dimension() * sizeof(Complex));
  return numQubits_ - 1;
}

void StateVector::removeQubit(unsigned q, SplitMix64& rng) {
  assert(q < numQubits_);
  if (measure(q, rng)) {
    apply1(gateX(), q); // force |0>
  }
  // Compact out bit q (all amplitudes with the bit set are now zero).
  const std::uint64_t half = dimension() >> 1;
  std::vector<Complex> next(half);
  for (std::uint64_t i = 0; i < half; ++i) {
    next[i] = amplitudes_[insertZeroBit(i, q)];
  }
  amplitudes_ = std::move(next);
  --numQubits_;
}

void StateVector::forRange(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) const {
  if (pool_ != nullptr && n >= (std::uint64_t{1} << 14)) {
    qirkit::parallelForChunked(*pool_, n, body, std::uint64_t{1} << 12);
  } else {
    body(0, n);
  }
}

void StateVector::apply1(const GateMatrix2& gate, unsigned target) {
  assert(target < numQubits_);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t bit = std::uint64_t{1} << target;
  forRange(dimension() >> 1, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i0 = insertZeroBit(i, target);
      const std::uint64_t i1 = i0 | bit;
      const Complex a0 = amplitudes_[i0];
      const Complex a1 = amplitudes_[i1];
      amplitudes_[i0] = gate.m00 * a0 + gate.m01 * a1;
      amplitudes_[i1] = gate.m10 * a0 + gate.m11 * a1;
    }
  });
}

void StateVector::applyControlled1(const GateMatrix2& gate, unsigned control,
                                   unsigned target) {
  assert(control < numQubits_ && target < numQubits_ && control != target);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t cbit = std::uint64_t{1} << control;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  // Enumerate only the control=1, target=0 subspace: insert zero bits at
  // both positions (ascending, so the second insertion sees final
  // coordinates), then force the control bit on.
  const unsigned lo = control < target ? control : target;
  const unsigned hi = control < target ? target : control;
  forRange(dimension() >> 2, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i0 = insertZeroBit(insertZeroBit(i, lo), hi) | cbit;
      const std::uint64_t i1 = i0 | tbit;
      const Complex a0 = amplitudes_[i0];
      const Complex a1 = amplitudes_[i1];
      amplitudes_[i0] = gate.m00 * a0 + gate.m01 * a1;
      amplitudes_[i1] = gate.m10 * a0 + gate.m11 * a1;
    }
  });
}

void StateVector::applyCCX(unsigned control1, unsigned control2, unsigned target) {
  assert(control1 != control2 && control1 != target && control2 != target);
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t c1 = std::uint64_t{1} << control1;
  const std::uint64_t c2 = std::uint64_t{1} << control2;
  const std::uint64_t tbit = std::uint64_t{1} << target;
  // Enumerate only the control1=1, control2=1, target=0 subspace.
  unsigned pos[3] = {control1, control2, target};
  if (pos[0] > pos[1]) {
    std::swap(pos[0], pos[1]);
  }
  if (pos[1] > pos[2]) {
    std::swap(pos[1], pos[2]);
  }
  if (pos[0] > pos[1]) {
    std::swap(pos[0], pos[1]);
  }
  forRange(dimension() >> 3, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t i0 =
          (insertZeroBit(insertZeroBit(insertZeroBit(i, pos[0]), pos[1]), pos[2]) |
           c1) |
          c2;
      std::swap(amplitudes_[i0],
                amplitudes_[i0 | tbit]);
    }
  });
}

void StateVector::applySwap(unsigned a, unsigned b) {
  assert(a < numQubits_ && b < numQubits_);
  if (a == b) {
    return;
  }
  ++gateCount_;
  g_svGates.add();
  const std::uint64_t abit = std::uint64_t{1} << a;
  const std::uint64_t bbit = std::uint64_t{1} << b;
  forRange(dimension(), [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) {
      const bool hasA = (i & abit) != 0;
      const bool hasB = (i & bbit) != 0;
      if (hasA && !hasB) {
        const std::uint64_t j = (i & ~abit) | bbit;
        std::swap(amplitudes_[i],
                  amplitudes_[j]);
      }
    }
  });
}

double StateVector::probabilityOfOne(unsigned q) const {
  assert(q < numQubits_);
  const std::uint64_t bit = std::uint64_t{1} << q;
  double p = 0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    if ((i & bit) != 0) {
      p += std::norm(amplitudes_[i]);
    }
  }
  return p;
}

bool StateVector::measure(unsigned q, SplitMix64& rng) {
  g_svMeasurements.add();
  const double p1 = probabilityOfOne(q);
  const bool outcome = rng.uniform() < p1;
  const double keep = outcome ? p1 : 1.0 - p1;
  const double scale = keep > 0 ? 1.0 / std::sqrt(keep) : 0.0;
  const std::uint64_t bit = std::uint64_t{1} << q;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    const bool isOne = (i & bit) != 0;
    if (isOne == outcome) {
      amplitudes_[i] *= scale;
    } else {
      amplitudes_[i] = 0;
    }
  }
  return outcome;
}

void StateVector::resetQubit(unsigned q, SplitMix64& rng) {
  if (measure(q, rng)) {
    apply1(gateX(), q);
  }
}

std::uint64_t StateVector::sample(SplitMix64& rng) const {
  double r = rng.uniform();
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    r -= std::norm(amplitudes_[i]);
    if (r <= 0) {
      return i;
    }
  }
  return dimension() - 1;
}

std::map<std::uint64_t, std::uint64_t> StateVector::sampleCounts(std::uint64_t shots,
                                                                 SplitMix64& rng) const {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (std::uint64_t s = 0; s < shots; ++s) {
    ++counts[sample(rng)];
  }
  return counts;
}

std::map<std::uint64_t, std::uint64_t> StateVector::sampleShots(
    std::uint64_t shots, SplitMix64& rng) const {
  std::map<std::uint64_t, std::uint64_t> counts;
  if (shots == 0) {
    return counts;
  }
  // Cumulative probabilities. The sum is sequential so the distribution is
  // bit-identical regardless of pool size; the per-shot searches below are
  // the parallel part.
  std::vector<double> cdf(dimension());
  double total = 0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    total += std::norm(amplitudes_[i]);
    cdf[i] = total;
  }
  // Pre-draw every uniform from the caller's stream (scaled by the actual
  // total to absorb rounding), then binary-search each shot independently.
  std::vector<double> draws(shots);
  for (std::uint64_t s = 0; s < shots; ++s) {
    draws[s] = rng.uniform() * total;
  }
  std::vector<std::uint64_t> basis(shots);
  forRange(shots, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t s = begin; s < end; ++s) {
      const auto it = std::upper_bound(cdf.begin(), cdf.end(), draws[s]);
      basis[s] = it == cdf.end() ? dimension() - 1
                                 : static_cast<std::uint64_t>(it - cdf.begin());
    }
  });
  for (std::uint64_t s = 0; s < shots; ++s) {
    ++counts[basis[s]];
  }
  return counts;
}

double StateVector::normSquared() const {
  double n = 0;
  for (const Complex& a : amplitudes_) {
    n += std::norm(a);
  }
  return n;
}

double StateVector::fidelity(const StateVector& other) const {
  assert(numQubits_ == other.numQubits_);
  Complex overlap = 0;
  for (std::uint64_t i = 0; i < dimension(); ++i) {
    overlap += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::norm(overlap);
}

} // namespace qirkit::sim
