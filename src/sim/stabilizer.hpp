/// \file stabilizer.hpp
/// A stabilizer (Clifford) simulator using the Aaronson–Gottesman CHP
/// tableau. The paper's Ex. 5 notes the runtime route "is perfectly
/// suited for integrating classical simulation techniques with QIR" —
/// this is a second such technique behind the same interface family as
/// the statevector simulator: polynomial scaling for Clifford circuits
/// (H, S, Sdg, X, Y, Z, CX, CZ, Swap, measure, reset), hundreds of qubits
/// where the dense simulator stops at 30.
#pragma once

#include "support/rng.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace qirkit::sim {

class StabilizerSimulator {
public:
  explicit StabilizerSimulator(unsigned numQubits);
  /// Flushes the lifetime gate count into the telemetry counter
  /// sim.stabilizer.gate_applications (composite gates count once, so the
  /// per-call running tally cannot be published incrementally).
  ~StabilizerSimulator();
  StabilizerSimulator(const StabilizerSimulator&) = default;
  StabilizerSimulator& operator=(const StabilizerSimulator&) = default;

  [[nodiscard]] unsigned numQubits() const noexcept { return n_; }

  // -- Clifford gates -------------------------------------------------------
  void h(unsigned q);
  void s(unsigned q);
  void sdg(unsigned q);
  void x(unsigned q);
  void y(unsigned q);
  void z(unsigned q);
  void cx(unsigned control, unsigned target);
  void cz(unsigned a, unsigned b);
  void swap(unsigned a, unsigned b);

  // -- measurement ---------------------------------------------------------
  /// Projective Z measurement; collapses the tableau.
  bool measure(unsigned q, SplitMix64& rng);
  /// Measure-and-correct to |0>.
  void reset(unsigned q, SplitMix64& rng);
  /// True if measuring \p q would give a deterministic outcome.
  [[nodiscard]] bool isDeterministic(unsigned q) const;
  /// Terminal-measurement sampling: for each of \p shots, measure the
  /// listed qubits in order on a scratch copy of the tableau (the original
  /// is untouched) and pack the outcomes into a bit mask, bit j holding
  /// qubits[j]'s outcome. The stabilizer analog of
  /// StateVector::sampleShots.
  [[nodiscard]] std::vector<std::uint64_t> sampleShots(std::span<const unsigned> qubits,
                                                       std::uint64_t shots,
                                                       SplitMix64& rng) const;

  /// Number of gate applications performed.
  [[nodiscard]] std::uint64_t gateCount() const noexcept { return gateCount_; }

private:
  // Tableau rows: 0..n-1 destabilizers, n..2n-1 stabilizers.
  // x_/z_ are bit matrices stored row-major as byte vectors (simple and
  // fast enough; a packed-word version is a straightforward upgrade).
  [[nodiscard]] std::uint8_t& x(unsigned row, unsigned col) {
    return x_[static_cast<std::size_t>(row) * n_ + col];
  }
  [[nodiscard]] std::uint8_t& z(unsigned row, unsigned col) {
    return z_[static_cast<std::size_t>(row) * n_ + col];
  }
  [[nodiscard]] std::uint8_t xAt(unsigned row, unsigned col) const {
    return x_[static_cast<std::size_t>(row) * n_ + col];
  }
  [[nodiscard]] std::uint8_t zAt(unsigned row, unsigned col) const {
    return z_[static_cast<std::size_t>(row) * n_ + col];
  }

  /// CHP rowsum: row h *= row i (Pauli product with phase tracking).
  void rowsum(unsigned target, unsigned source);

  unsigned n_;
  std::vector<std::uint8_t> x_;
  std::vector<std::uint8_t> z_;
  std::vector<std::uint8_t> r_; // phase bits per row
  std::uint64_t gateCount_ = 0;
};

} // namespace qirkit::sim
