#include "sim/stabilizer.hpp"

#include "support/source_location.hpp"
#include "support/telemetry/telemetry.hpp"

#include <cassert>

namespace qirkit::sim {

namespace {
telemetry::Counter g_stabGates{"sim.stabilizer.gate_applications"};
telemetry::Counter g_stabMeasurements{"sim.stabilizer.measurements"};
} // namespace

StabilizerSimulator::~StabilizerSimulator() { g_stabGates.add(gateCount_); }

StabilizerSimulator::StabilizerSimulator(unsigned numQubits) : n_(numQubits) {
  if (numQubits == 0) {
    throw qirkit::SemanticError("stabilizer simulator needs at least one qubit");
  }
  const std::size_t cells = static_cast<std::size_t>(2) * n_ * n_;
  x_.assign(cells, 0);
  z_.assign(cells, 0);
  r_.assign(static_cast<std::size_t>(2) * n_, 0);
  // Initial state |0...0>: destabilizer i = X_i, stabilizer n+i = Z_i.
  for (unsigned i = 0; i < n_; ++i) {
    x(i, i) = 1;
    z(n_ + i, i) = 1;
  }
}

void StabilizerSimulator::h(unsigned q) {
  assert(q < n_);
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    r_[row] ^= xAt(row, q) & zAt(row, q);
    std::swap(x(row, q), z(row, q));
  }
}

void StabilizerSimulator::s(unsigned q) {
  assert(q < n_);
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    r_[row] ^= xAt(row, q) & zAt(row, q);
    z(row, q) ^= xAt(row, q);
  }
}

void StabilizerSimulator::sdg(unsigned q) {
  // Sdg = S Z = S . S . S
  s(q);
  z(q);
  gateCount_ -= 1; // count the composite as one gate
}

void StabilizerSimulator::x(unsigned q) {
  assert(q < n_);
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    r_[row] ^= zAt(row, q);
  }
}

void StabilizerSimulator::z(unsigned q) {
  assert(q < n_);
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    r_[row] ^= xAt(row, q);
  }
}

void StabilizerSimulator::y(unsigned q) {
  assert(q < n_);
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    r_[row] ^= xAt(row, q) ^ zAt(row, q);
  }
}

void StabilizerSimulator::cx(unsigned control, unsigned target) {
  assert(control < n_ && target < n_ && control != target);
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    r_[row] ^= xAt(row, control) & zAt(row, target) &
               (xAt(row, target) ^ zAt(row, control) ^ 1U);
    x(row, target) ^= xAt(row, control);
    z(row, control) ^= zAt(row, target);
  }
}

void StabilizerSimulator::cz(unsigned a, unsigned b) {
  // CZ = H(b) CX(a,b) H(b)
  h(b);
  cx(a, b);
  h(b);
  gateCount_ -= 2;
}

void StabilizerSimulator::swap(unsigned a, unsigned b) {
  assert(a < n_ && b < n_);
  if (a == b) {
    return;
  }
  ++gateCount_;
  for (unsigned row = 0; row < 2 * n_; ++row) {
    std::swap(x(row, a), x(row, b));
    std::swap(z(row, a), z(row, b));
  }
}

void StabilizerSimulator::rowsum(unsigned target, unsigned source) {
  // Phase exponent accumulation (Aaronson–Gottesman g function), tracking
  // i-powers mod 4 in `phase`.
  int phase = 2 * (r_[target] + r_[source]);
  for (unsigned col = 0; col < n_; ++col) {
    const int x1 = xAt(source, col);
    const int z1 = zAt(source, col);
    const int x2 = xAt(target, col);
    const int z2 = zAt(target, col);
    if (x1 == 1 && z1 == 0) {
      phase += z2 * (2 * x2 - 1);
    } else if (x1 == 0 && z1 == 1) {
      phase += x2 * (1 - 2 * z2);
    } else if (x1 == 1 && z1 == 1) {
      phase += z2 - x2;
    }
  }
  phase = ((phase % 4) + 4) % 4;
  assert(phase % 2 == 0 && "rowsum of commuting Paulis has real phase");
  r_[target] = static_cast<std::uint8_t>(phase == 2 ? 1 : 0);
  for (unsigned col = 0; col < n_; ++col) {
    x(target, col) ^= xAt(source, col);
    z(target, col) ^= zAt(source, col);
  }
}

bool StabilizerSimulator::isDeterministic(unsigned q) const {
  for (unsigned p = n_; p < 2 * n_; ++p) {
    if (xAt(p, q) != 0) {
      return false;
    }
  }
  return true;
}

bool StabilizerSimulator::measure(unsigned q, SplitMix64& rng) {
  g_stabMeasurements.add();
  assert(q < n_);
  // Find a stabilizer row with an X component on q (anticommutes with Z_q).
  unsigned p = 2 * n_;
  for (unsigned row = n_; row < 2 * n_; ++row) {
    if (xAt(row, q) != 0) {
      p = row;
      break;
    }
  }
  if (p < 2 * n_) {
    // Random outcome.
    for (unsigned row = 0; row < 2 * n_; ++row) {
      if (row != p && xAt(row, q) != 0) {
        rowsum(row, p);
      }
    }
    // Destabilizer p-n := old stabilizer p; stabilizer p := +-Z_q.
    for (unsigned col = 0; col < n_; ++col) {
      x(p - n_, col) = xAt(p, col);
      z(p - n_, col) = zAt(p, col);
      x(p, col) = 0;
      z(p, col) = 0;
    }
    r_[p - n_] = r_[p];
    const bool outcome = rng.below(2) != 0;
    r_[p] = outcome ? 1 : 0;
    z(p, q) = 1;
    return outcome;
  }
  // Deterministic outcome: accumulate the stabilizer product selected by
  // the destabilizers with X on q into a scratch row.
  const unsigned scratch = 2 * n_; // virtual extra row
  // Emulate the scratch row with local vectors.
  std::vector<std::uint8_t> sx(n_, 0);
  std::vector<std::uint8_t> sz(n_, 0);
  std::uint8_t sr = 0;
  const auto scratchRowsum = [&](unsigned source) {
    int phase = 2 * (sr + r_[source]);
    for (unsigned col = 0; col < n_; ++col) {
      const int x1 = xAt(source, col);
      const int z1 = zAt(source, col);
      const int x2 = sx[col];
      const int z2 = sz[col];
      if (x1 == 1 && z1 == 0) {
        phase += z2 * (2 * x2 - 1);
      } else if (x1 == 0 && z1 == 1) {
        phase += x2 * (1 - 2 * z2);
      } else if (x1 == 1 && z1 == 1) {
        phase += z2 - x2;
      }
    }
    phase = ((phase % 4) + 4) % 4;
    sr = static_cast<std::uint8_t>(phase == 2 ? 1 : 0);
    for (unsigned col = 0; col < n_; ++col) {
      sx[col] ^= xAt(source, col);
      sz[col] ^= zAt(source, col);
    }
  };
  (void)scratch;
  for (unsigned i = 0; i < n_; ++i) {
    if (xAt(i, q) != 0) {
      scratchRowsum(n_ + i);
    }
  }
  return sr != 0;
}

void StabilizerSimulator::reset(unsigned q, SplitMix64& rng) {
  if (measure(q, rng)) {
    x(q); // NOLINT: member gate, not the accessor
  }
}

std::vector<std::uint64_t> StabilizerSimulator::sampleShots(
    std::span<const unsigned> qubits, std::uint64_t shots, SplitMix64& rng) const {
  std::vector<std::uint64_t> out;
  out.reserve(shots);
  for (std::uint64_t s = 0; s < shots; ++s) {
    StabilizerSimulator scratch(*this);
    // The copy inherits the source's gate tally; zero it so the scratch
    // destructor does not flush those gates into telemetry again.
    scratch.gateCount_ = 0;
    std::uint64_t bits = 0;
    for (std::size_t j = 0; j < qubits.size(); ++j) {
      if (scratch.measure(qubits[j], rng)) {
        bits |= std::uint64_t{1} << j;
      }
    }
    out.push_back(bits);
  }
  return out;
}

} // namespace qirkit::sim
