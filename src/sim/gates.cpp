#include "sim/gates.hpp"

#include <cmath>

namespace qirkit::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

GateMatrix2 gateH() noexcept {
  return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
}
GateMatrix2 gateX() noexcept { return {0, 1, 1, 0}; }
GateMatrix2 gateY() noexcept {
  return {0, Complex(0, -1), Complex(0, 1), 0};
}
GateMatrix2 gateZ() noexcept { return {1, 0, 0, -1}; }
GateMatrix2 gateS() noexcept { return {1, 0, 0, Complex(0, 1)}; }
GateMatrix2 gateSdg() noexcept { return {1, 0, 0, Complex(0, -1)}; }
GateMatrix2 gateT() noexcept {
  return {1, 0, 0, Complex(kInvSqrt2, kInvSqrt2)};
}
GateMatrix2 gateTdg() noexcept {
  return {1, 0, 0, Complex(kInvSqrt2, -kInvSqrt2)};
}

GateMatrix2 gateRX(double theta) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {c, Complex(0, -s), Complex(0, -s), c};
}

GateMatrix2 gateRY(double theta) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {c, -s, s, c};
}

GateMatrix2 gateRZ(double theta) noexcept {
  return {std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2)};
}

GateMatrix2 gateU3(double theta, double phi, double lambda) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {c, -std::polar(s, lambda), std::polar(s, phi),
          std::polar(c, phi + lambda)};
}

GateMatrix2 matmul(const GateMatrix2& a, const GateMatrix2& b) noexcept {
  return {a.m00 * b.m00 + a.m01 * b.m10, a.m00 * b.m01 + a.m01 * b.m11,
          a.m10 * b.m00 + a.m11 * b.m10, a.m10 * b.m01 + a.m11 * b.m11};
}

GateMatrix2 adjoint(const GateMatrix2& g) noexcept {
  return {std::conj(g.m00), std::conj(g.m10), std::conj(g.m01), std::conj(g.m11)};
}

GateMatrix4 identity4() noexcept {
  GateMatrix4 out{};
  for (unsigned i = 0; i < 4; ++i) {
    out.m[i][i] = 1;
  }
  return out;
}

GateMatrix4 matmul(const GateMatrix4& a, const GateMatrix4& b) noexcept {
  GateMatrix4 out{};
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      Complex sum = 0;
      for (unsigned k = 0; k < 4; ++k) {
        sum += a.m[r][k] * b.m[k][c];
      }
      out.m[r][c] = sum;
    }
  }
  return out;
}

GateMatrix4 embed2(const GateMatrix2& g, unsigned slot) noexcept {
  const Complex gm[2][2] = {{g.m00, g.m01}, {g.m10, g.m11}};
  GateMatrix4 out{};
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      const unsigned otherR = (r >> (1 - slot)) & 1;
      const unsigned otherC = (c >> (1 - slot)) & 1;
      if (otherR == otherC) {
        out.m[r][c] = gm[(r >> slot) & 1][(c >> slot) & 1];
      }
    }
  }
  return out;
}

GateMatrix4 controlled4(const GateMatrix2& g, unsigned control,
                        unsigned target) noexcept {
  const Complex gm[2][2] = {{g.m00, g.m01}, {g.m10, g.m11}};
  GateMatrix4 out{};
  for (unsigned r = 0; r < 4; ++r) {
    for (unsigned c = 0; c < 4; ++c) {
      if (((r >> control) & 1) != ((c >> control) & 1)) {
        continue; // the control bit is preserved
      }
      if (((r >> control) & 1) == 0) {
        out.m[r][c] = r == c ? 1 : 0;
      } else {
        out.m[r][c] = gm[(r >> target) & 1][(c >> target) & 1];
      }
    }
  }
  return out;
}

GateMatrix4 swap4() noexcept {
  GateMatrix4 out{};
  out.m[0][0] = 1;
  out.m[1][2] = 1;
  out.m[2][1] = 1;
  out.m[3][3] = 1;
  return out;
}

double distanceUpToPhase(const GateMatrix4& a, const GateMatrix4& b) noexcept {
  const Complex* entriesA = &a.m[0][0];
  const Complex* entriesB = &b.m[0][0];
  int pivot = 0;
  double best = 0;
  for (int i = 0; i < 16; ++i) {
    if (std::abs(entriesB[i]) > best) {
      best = std::abs(entriesB[i]);
      pivot = i;
    }
  }
  if (best == 0) {
    double sum = 0;
    for (int i = 0; i < 16; ++i) {
      sum += std::abs(entriesA[i]);
    }
    return sum;
  }
  const Complex phase = entriesA[pivot] / entriesB[pivot];
  double dist = 0;
  for (int i = 0; i < 16; ++i) {
    dist += std::norm(entriesA[i] - phase * entriesB[i]);
  }
  return std::sqrt(dist);
}

double distanceUpToPhase(const GateMatrix2& a, const GateMatrix2& b) noexcept {
  // Find the phase that aligns the largest entry of b with a.
  const Complex entriesA[4] = {a.m00, a.m01, a.m10, a.m11};
  const Complex entriesB[4] = {b.m00, b.m01, b.m10, b.m11};
  int pivot = 0;
  double best = 0;
  for (int i = 0; i < 4; ++i) {
    if (std::abs(entriesB[i]) > best) {
      best = std::abs(entriesB[i]);
      pivot = i;
    }
  }
  if (best == 0) {
    return std::abs(entriesA[0]) + std::abs(entriesA[1]) + std::abs(entriesA[2]) +
           std::abs(entriesA[3]);
  }
  const Complex phase = entriesA[pivot] / entriesB[pivot];
  double dist = 0;
  for (int i = 0; i < 4; ++i) {
    dist += std::norm(entriesA[i] - phase * entriesB[i]);
  }
  return std::sqrt(dist);
}

} // namespace qirkit::sim
