#include "sim/gates.hpp"

#include <cmath>

namespace qirkit::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
}

GateMatrix2 gateH() noexcept {
  return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
}
GateMatrix2 gateX() noexcept { return {0, 1, 1, 0}; }
GateMatrix2 gateY() noexcept {
  return {0, Complex(0, -1), Complex(0, 1), 0};
}
GateMatrix2 gateZ() noexcept { return {1, 0, 0, -1}; }
GateMatrix2 gateS() noexcept { return {1, 0, 0, Complex(0, 1)}; }
GateMatrix2 gateSdg() noexcept { return {1, 0, 0, Complex(0, -1)}; }
GateMatrix2 gateT() noexcept {
  return {1, 0, 0, Complex(kInvSqrt2, kInvSqrt2)};
}
GateMatrix2 gateTdg() noexcept {
  return {1, 0, 0, Complex(kInvSqrt2, -kInvSqrt2)};
}

GateMatrix2 gateRX(double theta) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {c, Complex(0, -s), Complex(0, -s), c};
}

GateMatrix2 gateRY(double theta) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {c, -s, s, c};
}

GateMatrix2 gateRZ(double theta) noexcept {
  return {std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2)};
}

GateMatrix2 gateU3(double theta, double phi, double lambda) noexcept {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {c, -std::polar(s, lambda), std::polar(s, phi),
          std::polar(c, phi + lambda)};
}

GateMatrix2 matmul(const GateMatrix2& a, const GateMatrix2& b) noexcept {
  return {a.m00 * b.m00 + a.m01 * b.m10, a.m00 * b.m01 + a.m01 * b.m11,
          a.m10 * b.m00 + a.m11 * b.m10, a.m10 * b.m01 + a.m11 * b.m11};
}

GateMatrix2 adjoint(const GateMatrix2& g) noexcept {
  return {std::conj(g.m00), std::conj(g.m10), std::conj(g.m01), std::conj(g.m11)};
}

double distanceUpToPhase(const GateMatrix2& a, const GateMatrix2& b) noexcept {
  // Find the phase that aligns the largest entry of b with a.
  const Complex entriesA[4] = {a.m00, a.m01, a.m10, a.m11};
  const Complex entriesB[4] = {b.m00, b.m01, b.m10, b.m11};
  int pivot = 0;
  double best = 0;
  for (int i = 0; i < 4; ++i) {
    if (std::abs(entriesB[i]) > best) {
      best = std::abs(entriesB[i]);
      pivot = i;
    }
  }
  if (best == 0) {
    return std::abs(entriesA[0]) + std::abs(entriesA[1]) + std::abs(entriesA[2]) +
           std::abs(entriesA[3]);
  }
  const Complex phase = entriesA[pivot] / entriesB[pivot];
  double dist = 0;
  for (int i = 0; i < 4; ++i) {
    dist += std::norm(entriesA[i] - phase * entriesB[i]);
  }
  return std::sqrt(dist);
}

} // namespace qirkit::sim
