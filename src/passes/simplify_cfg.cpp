/// CFG simplification:
///   * folds conditional branches / switches with constant conditions
///     (fixing up phis on removed edges),
///   * deletes unreachable blocks,
///   * replaces trivial phis (single or identical incoming),
///   * merges straight-line block pairs (unique successor with unique
///     predecessor).
#include "passes/folding.hpp"
#include "passes/pass.hpp"

#include "ir/builder.hpp"

#include <algorithm>
#include <set>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

class SimplifyCFGPass final : public FunctionPass {
public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "simplify-cfg";
  }

  bool run(Function& fn) override {
    bool changedAny = false;
    bool changed = true;
    while (changed) {
      changed = false;
      changed |= foldConstantBranches(fn);
      changed |= removeUnreachableBlocks(fn);
      changed |= simplifyPhis(fn);
      changed |= mergeBlocks(fn);
      changedAny |= changed;
    }
    return changedAny;
  }

private:
  /// Remove the phi entries in \p target for edge(s) from \p pred, if the
  /// edge no longer exists.
  static void removePhiEdge(BasicBlock* target, BasicBlock* pred) {
    if (target->hasPredecessor(pred)) {
      return; // another edge from pred still reaches target
    }
    for (Instruction* phi : target->phis()) {
      if (phi->incomingValueFor(pred) != nullptr) {
        phi->removeIncoming(pred);
      }
    }
  }

  static bool foldConstantBranches(Function& fn) {
    bool changed = false;
    for (const auto& block : fn.blocks()) {
      Instruction* term = block->terminator();
      if (term == nullptr) {
        continue;
      }
      if (term->op() == Opcode::Br && term->isConditionalBr()) {
        BasicBlock* ifTrue = term->successor(0);
        BasicBlock* ifFalse = term->successor(1);
        const auto* cond = dynamic_cast<ConstantInt*>(term->brCondition());
        if (cond == nullptr && ifTrue != ifFalse) {
          continue;
        }
        BasicBlock* taken =
            cond != nullptr ? (cond->isZero() ? ifFalse : ifTrue) : ifTrue;
        BasicBlock* notTaken = taken == ifTrue ? ifFalse : ifTrue;
        term->dropAllOperands();
        term->addOperand(taken);
        if (notTaken != taken) {
          removePhiEdge(notTaken, block.get());
        }
        changed = true;
      } else if (term->op() == Opcode::Switch) {
        const auto* cond = dynamic_cast<ConstantInt*>(term->operand(0));
        if (cond == nullptr) {
          continue;
        }
        BasicBlock* taken = term->successor(0); // default
        for (unsigned i = 0; i < term->numSwitchCases(); ++i) {
          if (term->switchCaseValue(i)->value() == cond->value()) {
            taken = term->switchCaseDest(i);
            break;
          }
        }
        std::set<BasicBlock*> losers;
        for (unsigned i = 0; i < term->numSuccessors(); ++i) {
          if (term->successor(i) != taken) {
            losers.insert(term->successor(i));
          }
        }
        // Rewrite the switch into an unconditional branch in place.
        term->dropAllOperands();
        // Note: opcode stays Switch structurally; replace with a fresh Br.
        BasicBlock* parent = term->parent();
        term->eraseFromParent();
        IRBuilder builder(parent);
        builder.createBr(taken);
        for (BasicBlock* loser : losers) {
          removePhiEdge(loser, parent);
        }
        changed = true;
      }
    }
    return changed;
  }

  static bool removeUnreachableBlocks(Function& fn) {
    // Reachability from entry.
    std::set<const BasicBlock*> reachable;
    std::vector<BasicBlock*> worklist;
    if (fn.entry() == nullptr) {
      return false;
    }
    worklist.push_back(fn.entry());
    reachable.insert(fn.entry());
    while (!worklist.empty()) {
      BasicBlock* block = worklist.back();
      worklist.pop_back();
      for (BasicBlock* succ : block->successors()) {
        if (reachable.insert(succ).second) {
          worklist.push_back(succ);
        }
      }
    }
    std::vector<BasicBlock*> dead;
    for (const auto& block : fn.blocks()) {
      if (reachable.count(block.get()) == 0) {
        dead.push_back(block.get());
      }
    }
    if (dead.empty()) {
      return false;
    }
    // Detach phi edges from dead predecessors, drop dead instructions,
    // then erase the blocks.
    for (BasicBlock* block : dead) {
      for (BasicBlock* succ : block->successors()) {
        if (reachable.count(succ) != 0) {
          for (Instruction* phi : succ->phis()) {
            if (phi->incomingValueFor(block) != nullptr) {
              phi->removeIncoming(block);
            }
          }
        }
      }
    }
    // Drop operands across all dead blocks before destroying instructions:
    // dead blocks may reference each other's values.
    for (BasicBlock* block : dead) {
      for (const auto& inst : block->instructions()) {
        inst->dropAllOperands();
      }
    }
    for (BasicBlock* block : dead) {
      block->eraseIf([](Instruction*) { return true; });
    }
    for (BasicBlock* block : dead) {
      fn.eraseBlock(block);
    }
    return true;
  }

  static bool simplifyPhis(Function& fn) {
    Context& ctx = fn.parent()->context();
    bool changed = false;
    for (const auto& block : fn.blocks()) {
      for (Instruction* phi : block->phis()) {
        Value* replacement = nullptr;
        if (phi->numIncoming() == 1) {
          replacement = phi->incomingValue(0);
        } else {
          replacement = foldInstruction(ctx, *phi);
        }
        if (replacement != nullptr && replacement != phi) {
          phi->replaceAllUsesWith(replacement);
          changed = true;
        }
      }
      block->eraseIf([](Instruction* inst) {
        return inst->op() == Opcode::Phi && !inst->hasUses();
      });
    }
    return changed;
  }

  static bool mergeBlocks(Function& fn) {
    bool changed = false;
    bool merged = true;
    while (merged) {
      merged = false;
      for (const auto& blockOwner : fn.blocks()) {
        BasicBlock* block = blockOwner.get();
        Instruction* term = block->terminator();
        if (term == nullptr || term->op() != Opcode::Br || term->isConditionalBr()) {
          continue;
        }
        BasicBlock* succ = term->successor(0);
        if (succ == block || succ == fn.entry()) {
          continue;
        }
        const std::vector<BasicBlock*> preds = succ->predecessors();
        if (preds.size() != 1 || preds[0] != block) {
          continue;
        }
        if (!succ->phis().empty()) {
          continue; // simplifyPhis will reduce these first
        }
        // Splice succ's instructions into block.
        term->eraseFromParent();
        while (!succ->empty()) {
          block->append(succ->detach(succ->front()));
        }
        succ->replaceAllUsesWith(block); // phis in succ's successors
        fn.eraseBlock(succ);
        merged = true;
        changed = true;
        break; // container mutated; restart scan
      }
    }
    return changed;
  }
};

} // namespace

std::unique_ptr<FunctionPass> createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFGPass>();
}

} // namespace qirkit::passes
