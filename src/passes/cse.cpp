/// Common subexpression elimination: replaces a pure instruction with an
/// earlier identical instruction that dominates it. This is exactly the
/// kind of classical optimization the paper's §II.C argues QIR inherits
/// from the LLVM infrastructure — e.g. the repeated
/// `load ptr, ptr %q` / `array_get_element_ptr_1d(%q, 0)` pairs of Ex. 2
/// collapse after mem2reg + CSE.
#include "ir/dominance.hpp"
#include "passes/pass.hpp"

#include <map>
#include <tuple>
#include <vector>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

/// Structural key of a pure instruction: opcode, predicates, type, callee,
/// and operand identities.
struct ExprKey {
  Opcode op;
  ICmpPred icmp;
  FCmpPred fcmp;
  const Type* type;
  const Function* callee;
  std::vector<const Value*> operands;

  bool operator<(const ExprKey& other) const {
    return std::tie(op, icmp, fcmp, type, callee, operands) <
           std::tie(other.op, other.icmp, other.fcmp, other.type, other.callee,
                    other.operands);
  }
};

/// Pure, speculatable instructions eligible for CSE. Calls are excluded
/// (conservative: any call may have effects); loads are excluded (no alias
/// analysis in the subset); phis/allocas/terminators are not expressions.
bool isCSECandidate(const Instruction& inst) {
  if (isBinaryOp(inst.op()) || isCastOp(inst.op())) {
    // Division/remainder can trap; hoisting across paths is still fine for
    // dominance-based CSE (the earlier instance already executed).
    return true;
  }
  switch (inst.op()) {
  case Opcode::ICmp:
  case Opcode::FCmp:
  case Opcode::Select:
    return true;
  default:
    return false;
  }
}

ExprKey keyFor(const Instruction& inst) {
  ExprKey key{inst.op(), ICmpPred::EQ, FCmpPred::OEQ, inst.type(), nullptr, {}};
  if (inst.op() == Opcode::ICmp) {
    key.icmp = inst.icmpPred();
  }
  if (inst.op() == Opcode::FCmp) {
    key.fcmp = inst.fcmpPred();
  }
  key.operands.reserve(inst.numOperands());
  for (unsigned i = 0; i < inst.numOperands(); ++i) {
    key.operands.push_back(inst.operand(i));
  }
  // Commutative normalization: order operands by pointer for symmetric ops.
  switch (inst.op()) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::FAdd:
  case Opcode::FMul:
    if (key.operands[1] < key.operands[0]) {
      std::swap(key.operands[0], key.operands[1]);
    }
    break;
  default:
    break;
  }
  return key;
}

class CSEPass final : public FunctionPass {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "cse"; }

  bool run(Function& fn) override {
    if (fn.entry() == nullptr) {
      return false;
    }
    const DomTree dom(fn);
    // Scoped hash table via dominator-tree DFS: available expressions are
    // those defined in dominating blocks (or earlier in the same block).
    std::map<const BasicBlock*, std::vector<const BasicBlock*>> children;
    for (const BasicBlock* block : dom.reversePostOrder()) {
      if (const BasicBlock* parent = dom.idom(block)) {
        children[parent].push_back(block);
      }
    }
    bool changed = false;
    std::map<ExprKey, Instruction*> available;
    changed |= walk(fn.entry(), children, available);
    return changed;
  }

private:
  /// Scoped-hash-table walk. `available` is shared across the recursion;
  /// entries added in this subtree are undone on exit (an undo log instead
  /// of copying the map per child, which is quadratic on deep dominator
  /// chains).
  bool walk(const BasicBlock* block,
            const std::map<const BasicBlock*, std::vector<const BasicBlock*>>& children,
            std::map<ExprKey, Instruction*>& available) {
    bool changed = false;
    auto* mutableBlock = const_cast<BasicBlock*>(block);
    std::vector<Instruction*> dead;
    std::vector<std::map<ExprKey, Instruction*>::iterator> added;
    for (const auto& inst : mutableBlock->instructions()) {
      if (!isCSECandidate(*inst)) {
        continue;
      }
      const ExprKey key = keyFor(*inst);
      const auto [it, inserted] = available.emplace(key, inst.get());
      if (inserted) {
        added.push_back(it);
      } else {
        inst->replaceAllUsesWith(it->second);
        dead.push_back(inst.get());
        changed = true;
      }
    }
    for (Instruction* inst : dead) {
      inst->eraseFromParent();
    }
    const auto kids = children.find(block);
    if (kids != children.end()) {
      for (const BasicBlock* child : kids->second) {
        changed |= walk(child, children, available);
      }
    }
    for (const auto& it : added) {
      available.erase(it);
    }
    return changed;
  }
};

} // namespace

std::unique_ptr<FunctionPass> createCSEPass() { return std::make_unique<CSEPass>(); }

} // namespace qirkit::passes
