/// \file folding.hpp
/// Constant folding and algebraic simplification of single instructions.
/// Shared by the constant-fold pass, SCCP, and the interpreter tests.
#pragma once

#include "ir/instruction.hpp"
#include "ir/module.hpp"

#include <cmath>
#include <cstdint>
#include <span>

namespace qirkit::passes {

// The eval* helpers are inline: beyond the folding passes they sit on
// the per-instruction path of both execution engines (the interpreter
// and the VM dispatch loops), where an out-of-line call per arithmetic
// opcode is measurable interpretation overhead.

namespace detail {

/// Mask a 64-bit value down to iN and sign-extend back (canonical iN rep).
inline std::int64_t toWidth(std::int64_t value, unsigned bits) noexcept {
  if (bits >= 64) {
    return value;
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(value) & mask;
  if (bits > 0 && ((u >> (bits - 1)) & 1) != 0) {
    u |= ~mask;
  }
  return static_cast<std::int64_t>(u);
}

inline std::uint64_t zext(std::int64_t value, unsigned bits) noexcept {
  if (bits >= 64) {
    return static_cast<std::uint64_t>(value);
  }
  return static_cast<std::uint64_t>(value) & ((std::uint64_t{1} << bits) - 1);
}

} // namespace detail

/// Evaluate an integer binary op with the semantics of iN two's-complement
/// arithmetic. Returns false for division/remainder by zero (UB avoided).
[[nodiscard]] inline bool evalIntBinOp(ir::Opcode op, unsigned bits,
                                       std::int64_t lhs, std::int64_t rhs,
                                       std::int64_t& result) noexcept {
  using detail::toWidth;
  using detail::zext;
  const std::uint64_t ul = zext(lhs, bits);
  const std::uint64_t ur = zext(rhs, bits);
  switch (op) {
  case ir::Opcode::Add:
    result = toWidth(static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) +
                                               static_cast<std::uint64_t>(rhs)),
                     bits);
    return true;
  case ir::Opcode::Sub:
    result = toWidth(static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) -
                                               static_cast<std::uint64_t>(rhs)),
                     bits);
    return true;
  case ir::Opcode::Mul:
    result = toWidth(static_cast<std::int64_t>(static_cast<std::uint64_t>(lhs) *
                                               static_cast<std::uint64_t>(rhs)),
                     bits);
    return true;
  case ir::Opcode::SDiv:
    if (rhs == 0 ||
        (lhs == toWidth(std::int64_t{1} << (bits - 1), bits) && rhs == -1)) {
      return false;
    }
    result = toWidth(lhs / rhs, bits);
    return true;
  case ir::Opcode::UDiv:
    if (ur == 0) {
      return false;
    }
    result = toWidth(static_cast<std::int64_t>(ul / ur), bits);
    return true;
  case ir::Opcode::SRem:
    if (rhs == 0 ||
        (lhs == toWidth(std::int64_t{1} << (bits - 1), bits) && rhs == -1)) {
      return false;
    }
    result = toWidth(lhs % rhs, bits);
    return true;
  case ir::Opcode::URem:
    if (ur == 0) {
      return false;
    }
    result = toWidth(static_cast<std::int64_t>(ul % ur), bits);
    return true;
  case ir::Opcode::And:
    result = toWidth(lhs & rhs, bits);
    return true;
  case ir::Opcode::Or:
    result = toWidth(lhs | rhs, bits);
    return true;
  case ir::Opcode::Xor:
    result = toWidth(lhs ^ rhs, bits);
    return true;
  case ir::Opcode::Shl:
    if (ur >= bits) {
      return false; // poison in LLVM; refuse to fold
    }
    result = toWidth(static_cast<std::int64_t>(ul << ur), bits);
    return true;
  case ir::Opcode::LShr:
    if (ur >= bits) {
      return false;
    }
    result = toWidth(static_cast<std::int64_t>(ul >> ur), bits);
    return true;
  case ir::Opcode::AShr:
    if (ur >= bits) {
      return false;
    }
    result = toWidth(toWidth(lhs, bits) >> static_cast<std::int64_t>(ur), bits);
    return true;
  default:
    return false;
  }
}

/// Evaluate a floating binary op.
[[nodiscard]] inline double evalFloatBinOp(ir::Opcode op, double lhs,
                                           double rhs) noexcept {
  switch (op) {
  case ir::Opcode::FAdd: return lhs + rhs;
  case ir::Opcode::FSub: return lhs - rhs;
  case ir::Opcode::FMul: return lhs * rhs;
  case ir::Opcode::FDiv: return lhs / rhs;
  case ir::Opcode::FRem: return std::fmod(lhs, rhs);
  default: return 0.0;
  }
}

/// Evaluate an integer comparison under iN semantics.
[[nodiscard]] inline bool evalICmp(ir::ICmpPred pred, unsigned bits,
                                   std::int64_t lhs, std::int64_t rhs) noexcept {
  const std::int64_t sl = detail::toWidth(lhs, bits);
  const std::int64_t sr = detail::toWidth(rhs, bits);
  const std::uint64_t ul = detail::zext(lhs, bits);
  const std::uint64_t ur = detail::zext(rhs, bits);
  switch (pred) {
  case ir::ICmpPred::EQ: return ul == ur;
  case ir::ICmpPred::NE: return ul != ur;
  case ir::ICmpPred::SLT: return sl < sr;
  case ir::ICmpPred::SLE: return sl <= sr;
  case ir::ICmpPred::SGT: return sl > sr;
  case ir::ICmpPred::SGE: return sl >= sr;
  case ir::ICmpPred::ULT: return ul < ur;
  case ir::ICmpPred::ULE: return ul <= ur;
  case ir::ICmpPred::UGT: return ul > ur;
  case ir::ICmpPred::UGE: return ul >= ur;
  }
  return false;
}

/// Evaluate a floating comparison.
[[nodiscard]] inline bool evalFCmp(ir::FCmpPred pred, double lhs,
                                   double rhs) noexcept {
  switch (pred) {
  case ir::FCmpPred::OEQ: return lhs == rhs;
  case ir::FCmpPred::ONE:
    return lhs != rhs && !std::isnan(lhs) && !std::isnan(rhs);
  case ir::FCmpPred::OLT: return lhs < rhs;
  case ir::FCmpPred::OLE: return lhs <= rhs;
  case ir::FCmpPred::OGT: return lhs > rhs;
  case ir::FCmpPred::OGE: return lhs >= rhs;
  case ir::FCmpPred::UNE: return !(lhs == rhs);
  }
  return false;
}

/// Try to fold \p inst given its current operands.
/// Returns the replacement value — an existing constant or operand — or
/// nullptr if the instruction cannot be simplified. Does not mutate IR.
///
/// Covers: all-constant arithmetic/comparisons/casts/selects, and algebraic
/// identities (x+0, x-0, x*1, x*0, x&0, x&x, x|0, x|x, x^x, x^0, x-x,
/// x/1, select with equal arms, icmp x==x, phi with identical incoming).
[[nodiscard]] ir::Value* foldInstruction(ir::Context& context,
                                         const ir::Instruction& inst);

} // namespace qirkit::passes
