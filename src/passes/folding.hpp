/// \file folding.hpp
/// Constant folding and algebraic simplification of single instructions.
/// Shared by the constant-fold pass, SCCP, and the interpreter tests.
#pragma once

#include "ir/instruction.hpp"
#include "ir/module.hpp"

#include <cstdint>
#include <span>

namespace qirkit::passes {

/// Evaluate an integer binary op with the semantics of iN two's-complement
/// arithmetic. Returns false for division/remainder by zero (UB avoided).
[[nodiscard]] bool evalIntBinOp(ir::Opcode op, unsigned bits, std::int64_t lhs,
                                std::int64_t rhs, std::int64_t& result) noexcept;

/// Evaluate a floating binary op.
[[nodiscard]] double evalFloatBinOp(ir::Opcode op, double lhs, double rhs) noexcept;

/// Evaluate an integer comparison under iN semantics.
[[nodiscard]] bool evalICmp(ir::ICmpPred pred, unsigned bits, std::int64_t lhs,
                            std::int64_t rhs) noexcept;

/// Evaluate a floating comparison.
[[nodiscard]] bool evalFCmp(ir::FCmpPred pred, double lhs, double rhs) noexcept;

/// Try to fold \p inst given its current operands.
/// Returns the replacement value — an existing constant or operand — or
/// nullptr if the instruction cannot be simplified. Does not mutate IR.
///
/// Covers: all-constant arithmetic/comparisons/casts/selects, and algebraic
/// identities (x+0, x-0, x*1, x*0, x&0, x&x, x|0, x|x, x^x, x^0, x-x,
/// x/1, select with equal arms, icmp x==x, phi with identical incoming).
[[nodiscard]] ir::Value* foldInstruction(ir::Context& context,
                                         const ir::Instruction& inst);

} // namespace qirkit::passes
