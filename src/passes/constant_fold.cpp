/// Constant folding and peephole simplification: replaces instructions
/// whose result is statically known (or reducible to an existing value)
/// and erases the folded instructions. Purely local; CFG untouched.
#include "passes/folding.hpp"
#include "passes/pass.hpp"

namespace qirkit::passes {
namespace {

class ConstantFoldPass final : public FunctionPass {
public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "constant-fold";
  }

  bool run(ir::Function& fn) override {
    ir::Context& ctx = fn.parent()->context();
    bool changedAny = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& block : fn.blocks()) {
        for (const auto& inst : block->instructions()) {
          if (inst->type()->isVoid() || inst->op() == ir::Opcode::Phi) {
            continue; // phi folding is SimplifyCFG's job (needs pred info)
          }
          if (ir::Value* replacement = foldInstruction(ctx, *inst)) {
            inst->replaceAllUsesWith(replacement);
            changed = true;
            changedAny = true;
          }
        }
        block->eraseIf([](ir::Instruction* inst) {
          return !inst->hasSideEffects() && !inst->hasUses() &&
                 !inst->type()->isVoid();
        });
      }
    }
    return changedAny;
  }
};

} // namespace

std::unique_ptr<FunctionPass> createConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}

} // namespace qirkit::passes
