/// \file loop_info.hpp
/// Natural-loop detection on the CFG (back edges found via dominance).
#pragma once

#include "ir/dominance.hpp"
#include "ir/module.hpp"

#include <set>
#include <vector>

namespace qirkit::passes {

/// A natural loop: header plus the set of blocks that can reach a latch
/// without passing through the header.
struct Loop {
  ir::BasicBlock* header = nullptr;
  std::set<ir::BasicBlock*> blocks;        // includes header
  std::vector<ir::BasicBlock*> latches;    // in-loop predecessors of header

  [[nodiscard]] bool contains(const ir::BasicBlock* block) const {
    return blocks.count(const_cast<ir::BasicBlock*>(block)) != 0;
  }

  /// The unique out-of-loop predecessor of the header, or nullptr if there
  /// are several (no canonical preheader).
  [[nodiscard]] ir::BasicBlock* preheader() const;

  /// Every (from, to) edge leaving the loop.
  [[nodiscard]] std::vector<std::pair<ir::BasicBlock*, ir::BasicBlock*>>
  exitEdges() const;

  /// True if some other loop's header lies inside this loop (i.e. this is
  /// not an innermost loop).
  [[nodiscard]] bool containsLoop(const std::vector<Loop>& all) const;
};

/// Find all natural loops of \p fn. Loops sharing a header are merged.
/// Returned in ascending size order (innermost first for nests).
[[nodiscard]] std::vector<Loop> findNaturalLoops(ir::Function& fn);

} // namespace qirkit::passes
