/// \file pass.hpp
/// The pass framework: FunctionPass / ModulePass interfaces and a
/// PassManager that runs a pipeline and records per-pass statistics.
/// This is the machinery the paper's §III.B calls "the core motivation of
/// an IR in a compiler": transformations compose over a shared AST.
#pragma once

#include "ir/module.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit::passes {

/// A transformation over a single function definition.
class FunctionPass {
public:
  virtual ~FunctionPass() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Transform \p fn; return true if anything changed.
  virtual bool run(ir::Function& fn) = 0;
};

/// A transformation over a whole module.
class ModulePass {
public:
  virtual ~ModulePass() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual bool run(ir::Module& module) = 0;
};

/// Wall-clock and change statistics for one pipeline entry.
struct PassStatistics {
  std::string name;
  std::size_t invocations = 0;
  std::size_t changes = 0;
  std::chrono::nanoseconds elapsed{0};
};

/// Runs a sequence of passes over a module. Function passes are applied to
/// every function definition. `runToFixpoint` repeats the whole pipeline
/// until no pass reports a change (bounded by maxIterations).
class PassManager {
public:
  void add(std::unique_ptr<FunctionPass> pass);
  void add(std::unique_ptr<ModulePass> pass);

  /// Run the pipeline once. Returns true if anything changed.
  bool run(ir::Module& module);

  /// Repeat the pipeline until a full sweep changes nothing.
  /// Returns the number of sweeps executed.
  std::size_t runToFixpoint(ir::Module& module, std::size_t maxIterations = 16);

  /// If set, verify the module after every pass and throw on breakage.
  void setVerifyEach(bool verify) noexcept { verifyEach_ = verify; }

  [[nodiscard]] const std::vector<PassStatistics>& statistics() const noexcept {
    return stats_;
  }
  /// Human-readable statistics table.
  [[nodiscard]] std::string statisticsReport() const;

private:
  struct Entry {
    std::unique_ptr<FunctionPass> functionPass;
    std::unique_ptr<ModulePass> modulePass;
  };
  std::vector<Entry> entries_;
  std::vector<PassStatistics> stats_;
  bool verifyEach_ = false;
};

/// The standard classical-optimization pipeline (the paper's "inherited for
/// free" optimizations): mem2reg, SCCP, constant folding & peepholes, DCE,
/// CFG simplification — iterated to fixpoint by the caller as needed.
void addStandardPipeline(PassManager& pm);

/// Standard pipeline plus full loop unrolling (Ex. 4) and inlining.
void addFullPipeline(PassManager& pm, std::size_t maxUnrollTripCount = 1 << 16);

// -- pass factories -----------------------------------------------------------
std::unique_ptr<FunctionPass> createMem2RegPass();
std::unique_ptr<FunctionPass> createConstantFoldPass();
std::unique_ptr<FunctionPass> createSCCPPass();
std::unique_ptr<FunctionPass> createDCEPass();
std::unique_ptr<FunctionPass> createSimplifyCFGPass();
std::unique_ptr<FunctionPass> createCSEPass();
std::unique_ptr<FunctionPass> createLoopUnrollPass(std::size_t maxTripCount = 1 << 16);
std::unique_ptr<ModulePass> createInlinerPass(std::size_t sizeThreshold = 64);
std::unique_ptr<ModulePass> createStripDeadFunctionsPass();

} // namespace qirkit::passes
