/// Function inlining: replaces calls to small (or always_inline) defined
/// functions with a clone of their body. Part of the classical pipeline
/// that QIR inherits from the LLVM-style infrastructure — gate subroutines
/// written as functions flatten into their callers, exposing the quantum
/// instruction sequence to the other passes.
#include "passes/pass.hpp"

#include "ir/builder.hpp"

#include <map>
#include <vector>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

class InlinerPass final : public ModulePass {
public:
  explicit InlinerPass(std::size_t sizeThreshold) : sizeThreshold_(sizeThreshold) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "inline"; }

  bool run(Module& module) override {
    bool changedAny = false;
    for (int sweep = 0; sweep < 8; ++sweep) {
      bool changed = false;
      for (const auto& fn : module.functions()) {
        if (fn->isDeclaration()) {
          continue;
        }
        changed |= inlineCallsIn(*fn);
      }
      changedAny |= changed;
      if (!changed) {
        break;
      }
    }
    return changedAny;
  }

private:
  std::size_t sizeThreshold_;

  [[nodiscard]] bool shouldInline(const Function& caller, const Function& callee) const {
    if (callee.isDeclaration() || &callee == &caller) {
      return false;
    }
    if (callee.hasAttribute("noinline")) {
      return false;
    }
    if (callee.hasAttribute("alwaysinline")) {
      return true;
    }
    return callee.instructionCount() <= sizeThreshold_;
  }

  bool inlineCallsIn(Function& caller) {
    // Find one inlinable call, inline it, and restart: inlining mutates the
    // block list under our feet.
    for (int guard = 0; guard < 1024; ++guard) {
      Instruction* site = nullptr;
      for (const auto& block : caller.blocks()) {
        for (const auto& inst : block->instructions()) {
          if (inst->op() == Opcode::Call && inst->callee() != nullptr &&
              shouldInline(caller, *inst->callee())) {
            site = inst.get();
            break;
          }
        }
        if (site != nullptr) {
          break;
        }
      }
      if (site == nullptr) {
        return guard > 0;
      }
      inlineCall(caller, site);
    }
    return true;
  }

  using ValueMap = std::map<const Value*, Value*>;

  static Value* mapValue(const ValueMap& vmap, Value* v) {
    const auto it = vmap.find(v);
    return it == vmap.end() ? v : it->second;
  }

  void inlineCall(Function& caller, Instruction* call) {
    Function& callee = *call->callee();
    BasicBlock* before = call->parent();
    const std::size_t callIndex = before->indexOf(call);

    // Split: everything after the call (including the terminator) moves to
    // the continuation block.
    BasicBlock* cont = caller.createBlockAfter(before, before->hasName()
                                                           ? before->name() + ".cont"
                                                           : std::string{});
    while (before->size() > callIndex + 1) {
      cont->append(before->detach(before->instructions()[callIndex + 1].get()));
    }
    // Phis in the original successors must now name `cont` as the incoming
    // block.
    for (BasicBlock* succ : cont->successors()) {
      for (Instruction* phi : succ->phis()) {
        for (unsigned i = 0; i < phi->numIncoming(); ++i) {
          if (phi->incomingBlock(i) == before) {
            phi->setOperand(2 * i + 1, cont);
          }
        }
      }
    }

    // Clone the callee body.
    ValueMap vmap;
    for (unsigned i = 0; i < callee.numArgs(); ++i) {
      vmap[callee.arg(i)] = call->operand(i);
    }
    std::map<const BasicBlock*, BasicBlock*> blockMap;
    for (const auto& block : callee.blocks()) {
      blockMap[block.get()] = caller.createBlockAfter(
          cont, callee.name() + (block->hasName() ? "." + block->name() : ".bb"));
    }
    // Pass 1: clone every instruction with its *original* operands so the
    // value map is complete regardless of block layout order; returns are
    // rewritten to branches into the continuation.
    std::vector<Instruction*> clones;
    std::vector<std::pair<BasicBlock*, Value*>> returns; // cloned ret block, orig value
    for (const auto& block : callee.blocks()) {
      BasicBlock* clone = blockMap.at(block.get());
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Ret) {
          Value* retValue = inst->numOperands() == 1 ? inst->operand(0) : nullptr;
          IRBuilder builder(clone);
          builder.createBr(cont);
          returns.emplace_back(clone, retValue);
          continue;
        }
        Instruction* placed = clone->append(inst->clone());
        vmap[inst.get()] = placed;
        clones.push_back(placed);
      }
    }
    // Pass 2: remap all operands (values through vmap, blocks through
    // blockMap).
    for (Instruction* placed : clones) {
      for (unsigned op = 0; op < placed->numOperands(); ++op) {
        Value* operand = placed->operand(op);
        if (operand->kind() == Value::Kind::BasicBlock) {
          placed->setOperand(op, blockMap.at(static_cast<BasicBlock*>(operand)));
        } else {
          placed->setOperand(op, mapValue(vmap, operand));
        }
      }
    }

    // Join the return values.
    if (!call->type()->isVoid()) {
      Value* replacement = nullptr;
      if (returns.empty()) {
        replacement = caller.parent()->context().getUndef(call->type());
      } else if (returns.size() == 1) {
        replacement = mapValue(vmap, returns.front().second);
      } else {
        IRBuilder builder(caller.parent()->context());
        builder.setInsertPoint(cont, 0);
        Instruction* phi = builder.createPhi(call->type());
        for (const auto& [retBlock, value] : returns) {
          phi->addIncoming(mapValue(vmap, value), retBlock);
        }
        replacement = phi;
      }
      call->replaceAllUsesWith(replacement);
    }

    // Enter the inlined body, remove the call.
    {
      IRBuilder builder(before);
      builder.createBr(blockMap.at(callee.entry()));
    }
    call->eraseFromParent();
  }
};

} // namespace

std::unique_ptr<ModulePass> createInlinerPass(std::size_t sizeThreshold) {
  return std::make_unique<InlinerPass>(sizeThreshold);
}

} // namespace qirkit::passes
