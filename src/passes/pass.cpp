#include "passes/pass.hpp"

#include "ir/verifier.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"

#include <sstream>

namespace qirkit::passes {

void PassManager::add(std::unique_ptr<FunctionPass> pass) {
  stats_.push_back({std::string(pass->name()), 0, 0, {}});
  entries_.push_back({std::move(pass), nullptr});
}

void PassManager::add(std::unique_ptr<ModulePass> pass) {
  stats_.push_back({std::string(pass->name()), 0, 0, {}});
  entries_.push_back({nullptr, std::move(pass)});
}

bool PassManager::run(ir::Module& module) {
  // IR sizing (an O(module) walk) happens only with telemetry armed; the
  // disabled path keeps the historical cost.
  const bool telemetryOn = telemetry::enabled();
  bool changed = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& entry = entries_[i];
    PassStatistics& stat = stats_[i];
    const telemetry::trace::Span span(stat.name);
    const std::uint64_t irBefore = telemetryOn ? module.instructionCount() : 0;
    const auto start = std::chrono::steady_clock::now();
    bool passChanged = false;
    if (entry.modulePass != nullptr) {
      passChanged = entry.modulePass->run(module);
      ++stat.invocations;
    } else {
      for (const auto& fn : module.functions()) {
        if (!fn->isDeclaration()) {
          passChanged |= entry.functionPass->run(*fn);
          ++stat.invocations;
        }
      }
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    stat.elapsed += elapsed;
    if (passChanged) {
      ++stat.changes;
    }
    changed |= passChanged;
    if (telemetryOn) {
      telemetry::recordPassRun(
          stat.name,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()),
          passChanged, irBefore, module.instructionCount());
    }
    if (verifyEach_) {
      ir::verifyModuleOrThrow(module);
    }
  }
  return changed;
}

std::size_t PassManager::runToFixpoint(ir::Module& module, std::size_t maxIterations) {
  for (std::size_t sweep = 1; sweep <= maxIterations; ++sweep) {
    if (!run(module)) {
      return sweep;
    }
  }
  return maxIterations;
}

std::string PassManager::statisticsReport() const {
  std::ostringstream out;
  for (const PassStatistics& stat : stats_) {
    out << stat.name << ": " << stat.invocations << " invocations, " << stat.changes
        << " changing sweeps, "
        << std::chrono::duration_cast<std::chrono::microseconds>(stat.elapsed).count()
        << " us\n";
  }
  return out.str();
}

void addStandardPipeline(PassManager& pm) {
  pm.add(createMem2RegPass());
  pm.add(createSCCPPass());
  pm.add(createConstantFoldPass());
  pm.add(createCSEPass());
  pm.add(createSimplifyCFGPass());
  pm.add(createDCEPass());
}

void addFullPipeline(PassManager& pm, std::size_t maxUnrollTripCount) {
  pm.add(createInlinerPass());
  pm.add(createMem2RegPass());
  pm.add(createSCCPPass());
  pm.add(createConstantFoldPass());
  pm.add(createSimplifyCFGPass());
  pm.add(createLoopUnrollPass(maxUnrollTripCount));
  pm.add(createSCCPPass());
  pm.add(createConstantFoldPass());
  pm.add(createCSEPass());
  pm.add(createSimplifyCFGPass());
  pm.add(createDCEPass());
  pm.add(createStripDeadFunctionsPass());
}

} // namespace qirkit::passes
