/// Sparse conditional constant propagation (Wegman–Zadeck): propagates
/// constants along only the CFG edges that can execute, then rewrites
/// constant values and folds branches whose condition became known.
/// Together with mem2reg this gives QIR the classical "for free"
/// optimizations the paper credits to the LLVM infrastructure (§II.C).
#include "passes/folding.hpp"
#include "passes/pass.hpp"

#include <cassert>
#include <map>
#include <set>
#include <vector>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

/// Lattice: Unknown (top) -> Constant -> Overdefined (bottom).
struct LatticeValue {
  enum class State : std::uint8_t { Unknown, Constant, Overdefined };
  State state = State::Unknown;
  Value* constant = nullptr; // ConstantInt/FP/Null/IntToPtr when Constant
};

class SCCPSolver {
public:
  explicit SCCPSolver(Function& fn)
      : fn_(fn), ctx_(fn.parent()->context()) {}

  void solve() {
    markEdgeExecutable(nullptr, fn_.entry());
    while (!blockWorklist_.empty() || !valueWorklist_.empty()) {
      while (!valueWorklist_.empty()) {
        Instruction* inst = valueWorklist_.back();
        valueWorklist_.pop_back();
        for (const Use* use : inst->uses()) {
          if (auto* user = dynamic_cast<Instruction*>(use->user)) {
            if (executableBlocks_.count(user->parent()) != 0) {
              visitInstruction(user);
            }
          }
        }
      }
      while (!blockWorklist_.empty()) {
        BasicBlock* block = blockWorklist_.back();
        blockWorklist_.pop_back();
        for (const auto& inst : block->instructions()) {
          visitInstruction(inst.get());
        }
      }
    }
  }

  /// Apply the solution: RAUW constants, fold branches, erase dead code.
  bool rewrite() {
    bool changed = false;
    for (const auto& block : fn_.blocks()) {
      if (executableBlocks_.count(block.get()) == 0) {
        continue; // SimplifyCFG removes these once branches are folded
      }
      for (const auto& inst : block->instructions()) {
        const auto it = values_.find(inst.get());
        if (it == values_.end() || it->second.state != LatticeValue::State::Constant) {
          continue;
        }
        if (inst->hasUses()) {
          inst->replaceAllUsesWith(it->second.constant);
          changed = true;
        }
      }
      // Fold branches with known conditions so SimplifyCFG can delete the
      // non-executable blocks.
      Instruction* term = block->terminator();
      if (term != nullptr && term->op() == Opcode::Br && term->isConditionalBr()) {
        if (dynamic_cast<ConstantInt*>(term->brCondition()) != nullptr) {
          changed = true; // SimplifyCFG will rewrite; nothing to do here
        }
      }
      block->eraseIf([](Instruction* i) {
        return !i->hasSideEffects() && !i->hasUses() && !i->type()->isVoid();
      });
    }
    return changed;
  }

private:
  LatticeValue getLattice(Value* v) const {
    if (v->isConstant()) {
      if (v->kind() == Value::Kind::Undef) {
        return {LatticeValue::State::Unknown, nullptr};
      }
      return {LatticeValue::State::Constant, v};
    }
    if (auto* inst = dynamic_cast<Instruction*>(v)) {
      const auto it = values_.find(inst);
      return it == values_.end() ? LatticeValue{} : it->second;
    }
    // Arguments, globals, functions: not tracked.
    return {LatticeValue::State::Overdefined, nullptr};
  }

  void markOverdefined(Instruction* inst) {
    LatticeValue& lv = values_[inst];
    if (lv.state != LatticeValue::State::Overdefined) {
      lv.state = LatticeValue::State::Overdefined;
      lv.constant = nullptr;
      valueWorklist_.push_back(inst);
    }
  }

  void markConstant(Instruction* inst, Value* constant) {
    LatticeValue& lv = values_[inst];
    if (lv.state == LatticeValue::State::Overdefined) {
      return;
    }
    if (lv.state == LatticeValue::State::Constant) {
      if (lv.constant != constant) {
        markOverdefined(inst);
      }
      return;
    }
    lv.state = LatticeValue::State::Constant;
    lv.constant = constant;
    valueWorklist_.push_back(inst);
  }

  void markEdgeExecutable(BasicBlock* from, BasicBlock* to) {
    if (from != nullptr && !executableEdges_.insert({from, to}).second) {
      return;
    }
    if (executableBlocks_.insert(to).second) {
      blockWorklist_.push_back(to);
    } else {
      // Block already live; re-visit its phis, which may see the new edge.
      for (Instruction* phi : to->phis()) {
        visitInstruction(phi);
      }
    }
  }

  void visitInstruction(Instruction* inst) {
    const Opcode op = inst->op();
    if (op == Opcode::Phi) {
      visitPhi(inst);
      return;
    }
    if (inst->isTerminator()) {
      visitTerminator(inst);
      return;
    }
    if (inst->type()->isVoid()) {
      return;
    }
    if (op == Opcode::Call || op == Opcode::Load || op == Opcode::Alloca) {
      markOverdefined(inst);
      return;
    }
    // Pure computation: if any operand is Unknown, wait; if foldable with
    // constant substitution, constant; else overdefined.
    std::vector<Value*> resolved(inst->numOperands());
    for (unsigned i = 0; i < inst->numOperands(); ++i) {
      const LatticeValue lv = getLattice(inst->operand(i));
      if (lv.state == LatticeValue::State::Unknown) {
        return; // optimistic: wait for more information
      }
      resolved[i] = lv.state == LatticeValue::State::Constant ? lv.constant
                                                              : inst->operand(i);
    }
    // Fold on a throwaway clone with resolved operands.
    Value* folded = foldWithOperands(inst, resolved);
    if (folded != nullptr && folded->isConstant() &&
        folded->kind() != Value::Kind::Undef) {
      markConstant(inst, folded);
    } else {
      markOverdefined(inst);
    }
  }

  Value* foldWithOperands(Instruction* inst, const std::vector<Value*>& resolved) {
    // Temporarily substituting operands would disturb use lists; instead
    // evaluate the common cases directly.
    const Opcode op = inst->op();
    if (isIntBinaryOp(op)) {
      const auto* l = dynamic_cast<ConstantInt*>(resolved[0]);
      const auto* r = dynamic_cast<ConstantInt*>(resolved[1]);
      if (l != nullptr && r != nullptr) {
        std::int64_t result = 0;
        if (evalIntBinOp(op, inst->type()->bits(), l->value(), r->value(), result)) {
          return ctx_.getInt(inst->type()->bits(), result);
        }
      }
      return nullptr;
    }
    if (isFloatBinaryOp(op)) {
      const auto* l = dynamic_cast<ConstantFP*>(resolved[0]);
      const auto* r = dynamic_cast<ConstantFP*>(resolved[1]);
      if (l != nullptr && r != nullptr) {
        return ctx_.getDouble(evalFloatBinOp(op, l->value(), r->value()));
      }
      return nullptr;
    }
    switch (op) {
    case Opcode::ICmp: {
      const auto* l = dynamic_cast<ConstantInt*>(resolved[0]);
      const auto* r = dynamic_cast<ConstantInt*>(resolved[1]);
      if (l != nullptr && r != nullptr) {
        return ctx_.getI1(
            evalICmp(inst->icmpPred(), l->type()->bits(), l->value(), r->value()));
      }
      std::uint64_t la = 0;
      std::uint64_t ra = 0;
      if (resolved[0]->type()->isPointer() &&
          getStaticPointerAddress(resolved[0], la) &&
          getStaticPointerAddress(resolved[1], ra)) {
        return ctx_.getI1(evalICmp(inst->icmpPred(), 64,
                                   static_cast<std::int64_t>(la),
                                   static_cast<std::int64_t>(ra)));
      }
      return nullptr;
    }
    case Opcode::FCmp: {
      const auto* l = dynamic_cast<ConstantFP*>(resolved[0]);
      const auto* r = dynamic_cast<ConstantFP*>(resolved[1]);
      if (l != nullptr && r != nullptr) {
        return ctx_.getI1(evalFCmp(inst->fcmpPred(), l->value(), r->value()));
      }
      return nullptr;
    }
    case Opcode::Select: {
      const auto* cond = dynamic_cast<ConstantInt*>(resolved[0]);
      if (cond != nullptr) {
        return resolved[cond->isZero() ? 2 : 1];
      }
      return nullptr;
    }
    case Opcode::ZExt: {
      const auto* c = dynamic_cast<ConstantInt*>(resolved[0]);
      return c != nullptr ? ctx_.getInt(inst->type()->bits(),
                                        static_cast<std::int64_t>(c->zextValue()))
                          : nullptr;
    }
    case Opcode::SExt:
    case Opcode::Trunc: {
      const auto* c = dynamic_cast<ConstantInt*>(resolved[0]);
      return c != nullptr ? ctx_.getInt(inst->type()->bits(), c->value()) : nullptr;
    }
    case Opcode::IntToPtr: {
      const auto* c = dynamic_cast<ConstantInt*>(resolved[0]);
      return c != nullptr ? static_cast<Value*>(ctx_.getIntToPtr(c->zextValue()))
                          : nullptr;
    }
    case Opcode::PtrToInt: {
      std::uint64_t address = 0;
      if (getStaticPointerAddress(resolved[0], address)) {
        return ctx_.getInt(inst->type()->bits(), static_cast<std::int64_t>(address));
      }
      return nullptr;
    }
    case Opcode::SIToFP: {
      const auto* c = dynamic_cast<ConstantInt*>(resolved[0]);
      return c != nullptr ? ctx_.getDouble(static_cast<double>(c->value())) : nullptr;
    }
    case Opcode::UIToFP: {
      const auto* c = dynamic_cast<ConstantInt*>(resolved[0]);
      return c != nullptr ? ctx_.getDouble(static_cast<double>(c->zextValue()))
                          : nullptr;
    }
    default:
      return nullptr;
    }
  }

  void visitPhi(Instruction* phi) {
    LatticeValue merged;
    for (unsigned i = 0; i < phi->numIncoming(); ++i) {
      BasicBlock* incoming = phi->incomingBlock(i);
      if (executableEdges_.count({incoming, phi->parent()}) == 0) {
        continue;
      }
      const LatticeValue in = getLattice(phi->incomingValue(i));
      if (in.state == LatticeValue::State::Overdefined) {
        markOverdefined(phi);
        return;
      }
      if (in.state == LatticeValue::State::Unknown) {
        continue;
      }
      if (merged.state == LatticeValue::State::Unknown) {
        merged = in;
      } else if (merged.constant != in.constant) {
        markOverdefined(phi);
        return;
      }
    }
    if (merged.state == LatticeValue::State::Constant) {
      markConstant(phi, merged.constant);
    }
  }

  void visitTerminator(Instruction* term) {
    switch (term->op()) {
    case Opcode::Br:
      if (!term->isConditionalBr()) {
        markEdgeExecutable(term->parent(), term->successor(0));
        return;
      }
      {
        const LatticeValue cond = getLattice(term->brCondition());
        if (cond.state == LatticeValue::State::Constant) {
          const auto* c = static_cast<ConstantInt*>(cond.constant);
          markEdgeExecutable(term->parent(), term->successor(c->isZero() ? 1 : 0));
        } else if (cond.state == LatticeValue::State::Overdefined) {
          markEdgeExecutable(term->parent(), term->successor(0));
          markEdgeExecutable(term->parent(), term->successor(1));
        }
        // Unknown: no edge executable yet.
      }
      return;
    case Opcode::Switch: {
      const LatticeValue cond = getLattice(term->operand(0));
      if (cond.state == LatticeValue::State::Constant) {
        const auto* c = static_cast<ConstantInt*>(cond.constant);
        BasicBlock* taken = term->successor(0);
        for (unsigned i = 0; i < term->numSwitchCases(); ++i) {
          if (term->switchCaseValue(i)->value() == c->value()) {
            taken = term->switchCaseDest(i);
            break;
          }
        }
        markEdgeExecutable(term->parent(), taken);
      } else if (cond.state == LatticeValue::State::Overdefined) {
        for (unsigned i = 0; i < term->numSuccessors(); ++i) {
          markEdgeExecutable(term->parent(), term->successor(i));
        }
      }
      return;
    }
    default:
      return; // ret / unreachable: no successors
    }
  }

  Function& fn_;
  Context& ctx_;
  std::map<Instruction*, LatticeValue> values_;
  std::set<std::pair<BasicBlock*, BasicBlock*>> executableEdges_;
  std::set<const BasicBlock*> executableBlocks_;
  std::vector<BasicBlock*> blockWorklist_;
  std::vector<Instruction*> valueWorklist_;
};

class SCCPPass final : public FunctionPass {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "sccp"; }

  bool run(Function& fn) override {
    if (fn.entry() == nullptr) {
      return false;
    }
    SCCPSolver solver(fn);
    solver.solve();
    return solver.rewrite();
  }
};

} // namespace

std::unique_ptr<FunctionPass> createSCCPPass() { return std::make_unique<SCCPPass>(); }

} // namespace qirkit::passes
