/// Strip dead functions: after inlining, helper definitions that are no
/// longer called (and are not the entry point) are deleted, leaving the
/// flattened QIR program the paper's restricted profiles expect.
#include "passes/pass.hpp"

#include <set>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

class StripDeadFunctionsPass final : public ModulePass {
public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "strip-dead-functions";
  }

  bool run(Module& module) override {
    if (module.entryPoint() == nullptr && module.getFunction("main") == nullptr) {
      return false; // library module: every definition is a root
    }
    bool changedAny = false;
    bool changed = true;
    while (changed) {
      changed = false;
      // Collect callees referenced from any remaining definition.
      std::set<const Function*> called;
      for (const auto& fn : module.functions()) {
        for (const auto& block : fn->blocks()) {
          for (const auto& inst : block->instructions()) {
            if (inst->op() == Opcode::Call) {
              called.insert(inst->callee());
            }
          }
        }
      }
      Function* dead = nullptr;
      for (const auto& fn : module.functions()) {
        if (fn->isDeclaration() || fn->hasAttribute("entry_point") ||
            fn->name() == "main") {
          continue;
        }
        if (called.count(fn.get()) == 0 && !fn->hasUses()) {
          dead = fn.get();
          break;
        }
      }
      if (dead != nullptr) {
        module.eraseFunction(dead);
        changed = true;
        changedAny = true;
      }
    }
    return changedAny;
  }
};

} // namespace

std::unique_ptr<ModulePass> createStripDeadFunctionsPass() {
  return std::make_unique<StripDeadFunctionsPass>();
}

} // namespace qirkit::passes
