/// mem2reg: promotes stack slots (alloca) whose address never escapes into
/// SSA values, inserting pruned phis at iterated dominance frontiers and
/// renaming along the dominator tree. This is the pass that turns the
/// paper's Ex. 2/Ex. 4 load/store style QIR into analyzable SSA — the
/// precondition for SCCP and loop unrolling to "see" the qubit indices.
#include "passes/pass.hpp"

#include "ir/builder.hpp"
#include "ir/dominance.hpp"

#include <map>
#include <set>
#include <vector>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

class Mem2RegPass final : public FunctionPass {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "mem2reg"; }

  bool run(Function& fn) override {
    std::vector<Instruction*> allocas = collectPromotable(fn);
    if (allocas.empty()) {
      return false;
    }
    const DomTree dom(fn);
    promote(fn, allocas, dom);
    return true;
  }

private:
  /// An alloca is promotable when every use is a load from it or a store
  /// *to* it (never storing the address itself), with matching types.
  static std::vector<Instruction*> collectPromotable(Function& fn) {
    std::vector<Instruction*> result;
    for (const auto& block : fn.blocks()) {
      for (const auto& inst : block->instructions()) {
        if (inst->op() != Opcode::Alloca) {
          continue;
        }
        const Type* slotType = inst->allocatedType();
        if (slotType->isArray()) {
          continue; // aggregate slots are not promoted in the subset
        }
        bool promotable = true;
        for (const Use* use : inst->uses()) {
          const auto* user = dynamic_cast<const Instruction*>(use->user);
          if (user == nullptr) {
            promotable = false;
            break;
          }
          if (user->op() == Opcode::Load && user->type() == slotType) {
            continue;
          }
          if (user->op() == Opcode::Store && use->index == 1 &&
              user->operand(0)->type() == slotType) {
            continue;
          }
          promotable = false;
          break;
        }
        if (promotable) {
          result.push_back(inst.get());
        }
      }
    }
    return result;
  }

  static void promote(Function& fn, const std::vector<Instruction*>& allocas,
                      const DomTree& dom) {
    Context& ctx = fn.parent()->context();
    std::map<const Instruction*, std::size_t> allocaIndex;
    for (std::size_t i = 0; i < allocas.size(); ++i) {
      allocaIndex[allocas[i]] = i;
    }

    // Neutralize accesses in unreachable blocks so the allocas become
    // fully dead afterwards.
    for (const auto& block : fn.blocks()) {
      if (dom.isReachable(block.get())) {
        continue;
      }
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Load &&
            allocaIndex.count(dynamic_cast<Instruction*>(inst->operand(0))) != 0) {
          inst->replaceAllUsesWith(ctx.getUndef(inst->type()));
        }
      }
      // Collect doomed accesses first: eraseIf's predicate must not depend
      // on operands, which are dropped before erasure.
      std::set<const Instruction*> doomed;
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Store &&
            allocaIndex.count(dynamic_cast<Instruction*>(inst->operand(1))) != 0) {
          doomed.insert(inst.get());
        } else if (inst->op() == Opcode::Load && !inst->hasUses() &&
                   allocaIndex.count(dynamic_cast<Instruction*>(inst->operand(0))) !=
                       0) {
          doomed.insert(inst.get());
        }
      }
      block->eraseIf([&doomed](Instruction* inst) { return doomed.count(inst) != 0; });
    }

    // Pruned phi insertion: for each alloca, place phis on the iterated
    // dominance frontier of its defining (storing) blocks.
    // phiFor[block][allocaIdx] -> phi instruction
    std::map<const BasicBlock*, std::map<std::size_t, Instruction*>> phiFor;
    for (std::size_t a = 0; a < allocas.size(); ++a) {
      std::set<const BasicBlock*> defBlocks;
      for (const Use* use : allocas[a]->uses()) {
        const auto* user = static_cast<const Instruction*>(use->user);
        if (user->op() == Opcode::Store && dom.isReachable(user->parent())) {
          defBlocks.insert(user->parent());
        }
      }
      std::vector<const BasicBlock*> worklist(defBlocks.begin(), defBlocks.end());
      std::set<const BasicBlock*> hasPhi;
      while (!worklist.empty()) {
        const BasicBlock* block = worklist.back();
        worklist.pop_back();
        for (const BasicBlock* frontier : dom.frontier(block)) {
          if (!hasPhi.insert(frontier).second) {
            continue;
          }
          auto* mutableBlock = const_cast<BasicBlock*>(frontier);
          IRBuilder builder(ctx);
          builder.setInsertPoint(mutableBlock, 0);
          Instruction* phi = builder.createPhi(allocas[a]->allocatedType());
          phiFor[frontier][a] = phi;
          if (defBlocks.insert(frontier).second) {
            worklist.push_back(frontier);
          }
        }
      }
    }

    // Dominator-tree children for the renaming walk.
    std::map<const BasicBlock*, std::vector<const BasicBlock*>> children;
    for (const BasicBlock* block : dom.reversePostOrder()) {
      if (const BasicBlock* parent = dom.idom(block)) {
        children[parent].push_back(block);
      }
    }

    // Renaming walk.
    struct Frame {
      const BasicBlock* block;
      std::vector<Value*> incoming; // per-alloca current value
    };
    std::vector<Value*> initial(allocas.size(), nullptr);
    for (std::size_t a = 0; a < allocas.size(); ++a) {
      initial[a] = ctx.getUndef(allocas[a]->allocatedType());
    }
    std::vector<Frame> stack;
    stack.push_back({fn.entry(), std::move(initial)});
    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      auto* block = const_cast<BasicBlock*>(frame.block);
      std::vector<Value*>& current = frame.incoming;

      // Phis for promoted slots at the head of this block become the
      // current values.
      const auto phiIt = phiFor.find(block);
      if (phiIt != phiFor.end()) {
        for (const auto& [allocaIdx, phi] : phiIt->second) {
          current[allocaIdx] = phi;
        }
      }

      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Load) {
          const auto it = allocaIndex.find(dynamic_cast<Instruction*>(inst->operand(0)));
          if (it != allocaIndex.end()) {
            inst->replaceAllUsesWith(current[it->second]);
          }
        } else if (inst->op() == Opcode::Store) {
          const auto it = allocaIndex.find(dynamic_cast<Instruction*>(inst->operand(1)));
          if (it != allocaIndex.end()) {
            current[it->second] = inst->operand(0);
          }
        }
      }

      // Fill phi incomings in CFG successors.
      for (BasicBlock* succ : block->successors()) {
        const auto succPhis = phiFor.find(succ);
        if (succPhis == phiFor.end()) {
          continue;
        }
        for (const auto& [allocaIdx, phi] : succPhis->second) {
          // A block can reach the same successor through both branch arms;
          // add one incoming per predecessor relationship, as the verifier
          // models predecessors as a set.
          if (phi->incomingValueFor(block) == nullptr) {
            phi->addIncoming(current[allocaIdx], block);
          }
        }
      }

      // Recurse into dominator-tree children.
      const auto kids = children.find(block);
      if (kids != children.end()) {
        for (const BasicBlock* child : kids->second) {
          stack.push_back({child, current});
        }
      }
    }

    // Drop the now-dead loads/stores and the allocas themselves. The doomed
    // set is computed up front (see above re: eraseIf predicates).
    for (const auto& block : fn.blocks()) {
      std::set<const Instruction*> doomed;
      for (const auto& inst : block->instructions()) {
        if (inst->op() == Opcode::Store &&
            allocaIndex.count(dynamic_cast<Instruction*>(inst->operand(1))) != 0) {
          doomed.insert(inst.get());
        } else if (inst->op() == Opcode::Load && !inst->hasUses() &&
                   allocaIndex.count(dynamic_cast<Instruction*>(inst->operand(0))) !=
                       0) {
          doomed.insert(inst.get());
        }
      }
      block->eraseIf([&doomed](Instruction* inst) { return doomed.count(inst) != 0; });
    }
    for (const auto& block : fn.blocks()) {
      block->eraseIf([&](Instruction* inst) {
        return inst->op() == Opcode::Alloca && allocaIndex.count(inst) != 0 &&
               !inst->hasUses();
      });
    }
  }
};

} // namespace

std::unique_ptr<FunctionPass> createMem2RegPass() {
  return std::make_unique<Mem2RegPass>();
}

} // namespace qirkit::passes
