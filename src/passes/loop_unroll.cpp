/// Full loop unrolling for counted loops with statically known bounds —
/// the paper's Ex. 4: "it is straight forward to unroll any loops with
/// statically known bounds in the QIR program. Hence, an optimization pass
/// does not have to handle the FOR-loop, but sees only the ten individual
/// Hadamard gates."
///
/// Supported shape (what mem2reg produces from front-end FOR loops):
///   * single latch, header is the unique exiting block,
///   * the exit condition is `icmp (phi|swapped) , constant` on a header
///     phi whose latch increment is `add/sub phi, constant` and whose
///     preheader value is constant,
///   * no loop-defined value is used outside the loop except through exit
///     phis fed by the header.
/// The trip count is obtained by simulating the induction with the same
/// iN arithmetic the folder uses, so the cloned comparisons are guaranteed
/// to fold to the simulated direction afterwards.
#include "passes/folding.hpp"
#include "passes/loop_info.hpp"
#include "passes/pass.hpp"

#include "ir/builder.hpp"

#include <map>
#include <optional>
#include <vector>

namespace qirkit::passes {
namespace {

using namespace qirkit::ir;

struct InductionInfo {
  Instruction* phi = nullptr;       // header induction phi
  std::int64_t init = 0;            // preheader incoming (constant)
  std::int64_t step = 0;            // signed increment per iteration
  Instruction* stepInst = nullptr;  // the add/sub feeding the latch edge
  std::uint64_t tripCount = 0;      // number of body executions
};

class LoopUnrollPass final : public FunctionPass {
public:
  explicit LoopUnrollPass(std::size_t maxTripCount) : maxTripCount_(maxTripCount) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "loop-unroll";
  }

  bool run(Function& fn) override {
    bool changed = false;
    // Unrolling invalidates the loop forest; recompute after each success.
    for (int guard = 0; guard < 64; ++guard) {
      if (!unrollOne(fn)) {
        break;
      }
      changed = true;
    }
    return changed;
  }

private:
  std::size_t maxTripCount_;

  bool unrollOne(Function& fn) {
    const std::vector<Loop> loops = findNaturalLoops(fn);
    for (const Loop& loop : loops) {
      if (loop.containsLoop(loops)) {
        continue; // unroll innermost first; outer handled next sweep
      }
      if (tryUnroll(fn, loop)) {
        return true;
      }
    }
    return false;
  }

  static const ConstantInt* asConstInt(const Value* v) {
    return v->kind() == Value::Kind::ConstantInt
               ? static_cast<const ConstantInt*>(v)
               : nullptr;
  }

  bool tryUnroll(Function& fn, const Loop& loop) {
    if (loop.latches.size() != 1) {
      return false;
    }
    BasicBlock* header = loop.header;
    BasicBlock* latch = loop.latches.front();
    BasicBlock* preheader = loop.preheader();
    if (preheader == nullptr) {
      return false;
    }

    // Header must be the unique exiting block, via a conditional branch.
    Instruction* headerTerm = header->terminator();
    if (headerTerm == nullptr || headerTerm->op() != Opcode::Br ||
        !headerTerm->isConditionalBr()) {
      return false;
    }
    BasicBlock* succ0 = headerTerm->successor(0);
    BasicBlock* succ1 = headerTerm->successor(1);
    const bool exitIs0 = !loop.contains(succ0);
    const bool exitIs1 = !loop.contains(succ1);
    if (exitIs0 == exitIs1) {
      return false; // both or neither leave the loop
    }
    BasicBlock* exitBlock = exitIs0 ? succ0 : succ1;
    for (const auto& [from, to] : loop.exitEdges()) {
      if (from != header || to != exitBlock) {
        return false; // early exits / breaks are unsupported
      }
    }
    if (loop.contains(exitBlock)) {
      return false;
    }

    const auto induction = analyzeInduction(loop, header, latch, preheader,
                                            headerTerm, exitIs0);
    if (!induction) {
      return false;
    }

    // Loop-defined values may escape only through exit-block phis (LCSSA
    // form). Direct escapes are legal when the exit block's sole
    // predecessor is the header: wrap them in fresh single-incoming exit
    // phis first. Otherwise bail.
    const std::vector<BasicBlock*> exitPreds = exitBlock->predecessors();
    const bool canInsertExitPhis = exitPreds.size() == 1 && exitPreds[0] == header;
    std::map<Instruction*, Instruction*> lcssaPhis; // loop value -> exit phi
    for (BasicBlock* block : loop.blocks) {
      for (const auto& inst : block->instructions()) {
        // Snapshot: inserting phis mutates the use list.
        const std::vector<Use*> uses = inst->uses();
        for (const Use* use : uses) {
          auto* user = dynamic_cast<Instruction*>(use->user);
          if (user == nullptr) {
            return false;
          }
          if (loop.contains(user->parent())) {
            continue;
          }
          if (user->op() == Opcode::Phi && user->parent() == exitBlock) {
            continue;
          }
          if (!canInsertExitPhis) {
            return false;
          }
          auto& phi = lcssaPhis[inst.get()];
          if (phi == nullptr) {
            IRBuilder builder(fn.parent()->context());
            builder.setInsertPoint(exitBlock, 0);
            phi = builder.createPhi(inst->type(), inst->hasName()
                                                      ? inst->name() + ".lcssa"
                                                      : std::string{});
            phi->addIncoming(inst.get(), header);
          }
          user->setOperand(use->index, phi);
        }
      }
    }

    expand(fn, loop, *induction, header, latch, preheader, exitBlock);
    return true;
  }

  std::optional<InductionInfo> analyzeInduction(const Loop& loop, BasicBlock* header,
                                                BasicBlock* latch,
                                                BasicBlock* preheader,
                                                Instruction* headerTerm,
                                                bool exitIs0) const {
    auto* cmp = dynamic_cast<Instruction*>(headerTerm->brCondition());
    if (cmp == nullptr || cmp->op() != Opcode::ICmp ||
        !loop.contains(cmp->parent())) {
      return std::nullopt;
    }
    // Identify phi-vs-constant, either operand order.
    Instruction* phi = nullptr;
    const ConstantInt* bound = nullptr;
    bool swapped = false;
    if ((phi = dynamic_cast<Instruction*>(cmp->operand(0))) != nullptr &&
        phi->op() == Opcode::Phi && phi->parent() == header &&
        (bound = asConstInt(cmp->operand(1))) != nullptr) {
      swapped = false;
    } else if ((phi = dynamic_cast<Instruction*>(cmp->operand(1))) != nullptr &&
               phi->op() == Opcode::Phi && phi->parent() == header &&
               (bound = asConstInt(cmp->operand(0))) != nullptr) {
      swapped = true;
    } else {
      return std::nullopt;
    }
    if (!phi->type()->isInteger()) {
      return std::nullopt;
    }
    const ConstantInt* init = asConstInt(phi->incomingValueFor(preheader));
    Value* latchValue = phi->incomingValueFor(latch);
    if (init == nullptr || latchValue == nullptr) {
      return std::nullopt;
    }
    auto* stepInst = dynamic_cast<Instruction*>(latchValue);
    if (stepInst == nullptr ||
        (stepInst->op() != Opcode::Add && stepInst->op() != Opcode::Sub) ||
        stepInst->operand(0) != phi) {
      return std::nullopt;
    }
    const ConstantInt* stepC = asConstInt(stepInst->operand(1));
    if (stepC == nullptr || stepC->isZero()) {
      return std::nullopt;
    }
    const std::int64_t step =
        stepInst->op() == Opcode::Add ? stepC->value() : -stepC->value();

    // Simulate: body runs while the comparison keeps selecting the in-loop
    // successor. The in-loop successor is taken when cond == (exit != s0).
    const bool continueWhenTrue = exitIs0 ? false : true;
    const unsigned bits = phi->type()->bits();
    std::int64_t v = init->value();
    std::uint64_t trips = 0;
    while (true) {
      const std::int64_t lhs = swapped ? bound->value() : v;
      const std::int64_t rhs = swapped ? v : bound->value();
      if (evalICmp(cmp->icmpPred(), bits, lhs, rhs) != continueWhenTrue) {
        break;
      }
      ++trips;
      if (trips > maxTripCount_) {
        return std::nullopt; // too large (or effectively infinite)
      }
      std::int64_t next = 0;
      if (!evalIntBinOp(Opcode::Add, bits, v, step, next)) {
        return std::nullopt;
      }
      v = next;
    }
    InductionInfo info;
    info.phi = phi;
    info.init = init->value();
    info.step = step;
    info.stepInst = stepInst;
    info.tripCount = trips;
    return info;
  }

  using ValueMap = std::map<const Value*, Value*>;

  static Value* mapValue(const ValueMap& vmap, Value* v) {
    const auto it = vmap.find(v);
    return it == vmap.end() ? v : it->second;
  }

  void expand(Function& fn, const Loop& loop, const InductionInfo& induction,
              BasicBlock* header, BasicBlock* latch, BasicBlock* preheader,
              BasicBlock* exitBlock) const {
    // Loop blocks in a deterministic order with header first.
    std::vector<BasicBlock*> loopBlocks;
    loopBlocks.push_back(header);
    for (const auto& block : fn.blocks()) {
      if (block.get() != header && loop.contains(block.get())) {
        loopBlocks.push_back(block.get());
      }
    }
    // Collect header phis and their seed values.
    std::vector<Instruction*> headerPhis = header->phis();
    ValueMap current; // header phi -> value for the iteration being built
    for (Instruction* phi : headerPhis) {
      current[phi] = phi->incomingValueFor(preheader);
    }

    const std::uint64_t n = induction.tripCount;
    std::vector<std::map<BasicBlock*, BasicBlock*>> blockMaps(n + 1);
    // Create all blocks up front so terminators can target the next
    // iteration's header.
    for (std::uint64_t i = 0; i < n; ++i) {
      for (BasicBlock* block : loopBlocks) {
        blockMaps[i][block] = fn.createBlock(
            block->hasName() ? block->name() + ".it" + std::to_string(i)
                             : std::string{});
      }
    }
    blockMaps[n][header] = fn.createBlock(
        header->hasName() ? header->name() + ".exit" : std::string{});

    ValueMap vmap;

    for (std::uint64_t i = 0; i < n; ++i) {
      vmap.clear();
      for (Instruction* phi : headerPhis) {
        vmap[phi] = current.at(phi);
      }
      // Pass 1: clone every instruction with its original operands so the
      // value map is complete regardless of block layout order. Header
      // phis are folded into vmap instead of being cloned.
      std::vector<Instruction*> clones;
      for (BasicBlock* block : loopBlocks) {
        BasicBlock* clone = blockMaps[i].at(block);
        for (const auto& inst : block->instructions()) {
          if (block == header && inst->op() == Opcode::Phi) {
            continue;
          }
          Instruction* placed = clone->append(inst->clone());
          vmap[inst.get()] = placed;
          clones.push_back(placed);
        }
      }
      // Pass 2: remap operands. Block operands: the back edge targets the
      // next iteration's header, in-loop targets this iteration's clones,
      // exit edges are kept.
      for (Instruction* placed : clones) {
        for (unsigned op = 0; op < placed->numOperands(); ++op) {
          Value* operand = placed->operand(op);
          if (operand->kind() == Value::Kind::BasicBlock) {
            auto* target = static_cast<BasicBlock*>(operand);
            if (!loop.contains(target)) {
              continue; // exit edge target stays
            }
            // In a phi, a block operand names a *predecessor*: always this
            // iteration. In a terminator, targeting the header is the back
            // edge: next iteration.
            if (placed->op() != Opcode::Phi && target == header) {
              placed->setOperand(op, blockMaps[i + 1].at(header));
            } else {
              placed->setOperand(op, blockMaps[i].at(target));
            }
            continue;
          }
          placed->setOperand(op, mapValue(vmap, operand));
        }
      }
      // Exit-block phis: this iteration's header clone has a (not yet
      // folded) edge to the exit block.
      BasicBlock* headerClone = blockMaps[i].at(header);
      for (Instruction* phi : exitBlock->phis()) {
        if (Value* v = phi->incomingValueFor(header)) {
          phi->addIncoming(mapValue(vmap, v), headerClone);
        }
      }
      // Seed the next iteration's phi values from this iteration's latch.
      ValueMap next;
      for (Instruction* phi : headerPhis) {
        next[phi] = mapValue(vmap, phi->incomingValueFor(latch));
      }
      current = std::move(next);
    }

    // Final header clone: evaluates the exit comparison once more and
    // leaves the loop unconditionally.
    {
      vmap.clear();
      for (Instruction* phi : headerPhis) {
        vmap[phi] = current.at(phi);
      }
      BasicBlock* finalHeader = blockMaps[n].at(header);
      for (const auto& inst : header->instructions()) {
        if (inst->op() == Opcode::Phi) {
          continue;
        }
        if (inst->isTerminator()) {
          IRBuilder builder(finalHeader);
          builder.createBr(exitBlock);
          break;
        }
        std::unique_ptr<Instruction> copy = inst->clone();
        for (unsigned op = 0; op < copy->numOperands(); ++op) {
          copy->setOperand(op, mapValue(vmap, copy->operand(op)));
        }
        Instruction* placed = finalHeader->append(std::move(copy));
        vmap[inst.get()] = placed;
      }
      for (Instruction* phi : exitBlock->phis()) {
        if (Value* v = phi->incomingValueFor(header)) {
          phi->addIncoming(mapValue(vmap, v), finalHeader);
        }
      }
    }

    // Retarget the preheader into iteration 0 (or the final header when the
    // body never runs).
    BasicBlock* firstHeader =
        n > 0 ? blockMaps[0].at(header) : blockMaps[n].at(header);
    Instruction* preTerm = preheader->terminator();
    for (unsigned s = 0; s < preTerm->numSuccessors(); ++s) {
      if (preTerm->successor(s) == header) {
        preTerm->setSuccessor(s, firstHeader);
      }
    }

    // Remove the original incoming edges and delete the original loop.
    for (Instruction* phi : exitBlock->phis()) {
      if (phi->incomingValueFor(header) != nullptr) {
        phi->removeIncoming(header);
      }
    }
    // Drop every operand across *all* doomed blocks before destroying any
    // instruction — the blocks reference each other's values.
    for (BasicBlock* block : loopBlocks) {
      for (const auto& inst : block->instructions()) {
        inst->dropAllOperands();
      }
    }
    for (BasicBlock* block : loopBlocks) {
      block->eraseIf([](Instruction*) { return true; });
    }
    for (BasicBlock* block : loopBlocks) {
      fn.eraseBlock(block);
    }
  }
};

} // namespace

std::unique_ptr<FunctionPass> createLoopUnrollPass(std::size_t maxTripCount) {
  return std::make_unique<LoopUnrollPass>(maxTripCount);
}

} // namespace qirkit::passes
