/// Dead code elimination: removes side-effect-free instructions with no
/// uses, iterating until stable (removal can make operands dead).
#include "passes/pass.hpp"

namespace qirkit::passes {
namespace {

class DCEPass final : public FunctionPass {
public:
  [[nodiscard]] std::string_view name() const noexcept override { return "dce"; }

  bool run(ir::Function& fn) override {
    bool changedAny = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& block : fn.blocks()) {
        const std::size_t erased = block->eraseIf([](ir::Instruction* inst) {
          return !inst->hasSideEffects() && !inst->hasUses() &&
                 !inst->type()->isVoid();
        });
        if (erased > 0) {
          changed = true;
          changedAny = true;
        }
      }
    }
    return changedAny;
  }
};

} // namespace

std::unique_ptr<FunctionPass> createDCEPass() { return std::make_unique<DCEPass>(); }

} // namespace qirkit::passes
