#include "passes/folding.hpp"

#include "ir/context.hpp"

#include <cmath>

namespace qirkit::passes {

using namespace qirkit::ir;

namespace {

/// Mask a 64-bit value down to iN and sign-extend back (canonical iN rep).
std::int64_t toWidth(std::int64_t value, unsigned bits) noexcept {
  if (bits >= 64) {
    return value;
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(value) & mask;
  if (bits > 0 && ((u >> (bits - 1)) & 1) != 0) {
    u |= ~mask;
  }
  return static_cast<std::int64_t>(u);
}

std::uint64_t zext(std::int64_t value, unsigned bits) noexcept {
  if (bits >= 64) {
    return static_cast<std::uint64_t>(value);
  }
  return static_cast<std::uint64_t>(value) & ((std::uint64_t{1} << bits) - 1);
}

const ConstantInt* asConstInt(const Value* v) noexcept {
  return v->kind() == Value::Kind::ConstantInt ? static_cast<const ConstantInt*>(v)
                                               : nullptr;
}

const ConstantFP* asConstFP(const Value* v) noexcept {
  return v->kind() == Value::Kind::ConstantFP ? static_cast<const ConstantFP*>(v)
                                              : nullptr;
}

} // namespace

bool evalIntBinOp(Opcode op, unsigned bits, std::int64_t lhs, std::int64_t rhs,
                  std::int64_t& result) noexcept {
  const std::uint64_t ul = zext(lhs, bits);
  const std::uint64_t ur = zext(rhs, bits);
  switch (op) {
  case Opcode::Add:
    result = toWidth(static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(lhs) + static_cast<std::uint64_t>(rhs)),
                     bits);
    return true;
  case Opcode::Sub:
    result = toWidth(static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(lhs) - static_cast<std::uint64_t>(rhs)),
                     bits);
    return true;
  case Opcode::Mul:
    result = toWidth(static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(lhs) * static_cast<std::uint64_t>(rhs)),
                     bits);
    return true;
  case Opcode::SDiv:
    if (rhs == 0 || (lhs == toWidth(std::int64_t{1} << (bits - 1), bits) && rhs == -1)) {
      return false;
    }
    result = toWidth(lhs / rhs, bits);
    return true;
  case Opcode::UDiv:
    if (ur == 0) {
      return false;
    }
    result = toWidth(static_cast<std::int64_t>(ul / ur), bits);
    return true;
  case Opcode::SRem:
    if (rhs == 0 || (lhs == toWidth(std::int64_t{1} << (bits - 1), bits) && rhs == -1)) {
      return false;
    }
    result = toWidth(lhs % rhs, bits);
    return true;
  case Opcode::URem:
    if (ur == 0) {
      return false;
    }
    result = toWidth(static_cast<std::int64_t>(ul % ur), bits);
    return true;
  case Opcode::And:
    result = toWidth(lhs & rhs, bits);
    return true;
  case Opcode::Or:
    result = toWidth(lhs | rhs, bits);
    return true;
  case Opcode::Xor:
    result = toWidth(lhs ^ rhs, bits);
    return true;
  case Opcode::Shl:
    if (ur >= bits) {
      return false; // poison in LLVM; refuse to fold
    }
    result = toWidth(static_cast<std::int64_t>(ul << ur), bits);
    return true;
  case Opcode::LShr:
    if (ur >= bits) {
      return false;
    }
    result = toWidth(static_cast<std::int64_t>(ul >> ur), bits);
    return true;
  case Opcode::AShr:
    if (ur >= bits) {
      return false;
    }
    result = toWidth(toWidth(lhs, bits) >> static_cast<std::int64_t>(ur), bits);
    return true;
  default:
    return false;
  }
}

double evalFloatBinOp(Opcode op, double lhs, double rhs) noexcept {
  switch (op) {
  case Opcode::FAdd: return lhs + rhs;
  case Opcode::FSub: return lhs - rhs;
  case Opcode::FMul: return lhs * rhs;
  case Opcode::FDiv: return lhs / rhs;
  case Opcode::FRem: return std::fmod(lhs, rhs);
  default: return 0.0;
  }
}

bool evalICmp(ICmpPred pred, unsigned bits, std::int64_t lhs, std::int64_t rhs) noexcept {
  const std::int64_t sl = toWidth(lhs, bits);
  const std::int64_t sr = toWidth(rhs, bits);
  const std::uint64_t ul = zext(lhs, bits);
  const std::uint64_t ur = zext(rhs, bits);
  switch (pred) {
  case ICmpPred::EQ: return ul == ur;
  case ICmpPred::NE: return ul != ur;
  case ICmpPred::SLT: return sl < sr;
  case ICmpPred::SLE: return sl <= sr;
  case ICmpPred::SGT: return sl > sr;
  case ICmpPred::SGE: return sl >= sr;
  case ICmpPred::ULT: return ul < ur;
  case ICmpPred::ULE: return ul <= ur;
  case ICmpPred::UGT: return ul > ur;
  case ICmpPred::UGE: return ul >= ur;
  }
  return false;
}

bool evalFCmp(FCmpPred pred, double lhs, double rhs) noexcept {
  switch (pred) {
  case FCmpPred::OEQ: return lhs == rhs;
  case FCmpPred::ONE: return lhs != rhs && !std::isnan(lhs) && !std::isnan(rhs);
  case FCmpPred::OLT: return lhs < rhs;
  case FCmpPred::OLE: return lhs <= rhs;
  case FCmpPred::OGT: return lhs > rhs;
  case FCmpPred::OGE: return lhs >= rhs;
  case FCmpPred::UNE: return !(lhs == rhs);
  }
  return false;
}

Value* foldInstruction(Context& ctx, const Instruction& inst) {
  const Opcode op = inst.op();

  if (isIntBinaryOp(op)) {
    Value* lhs = inst.operand(0);
    Value* rhs = inst.operand(1);
    const ConstantInt* cl = asConstInt(lhs);
    const ConstantInt* cr = asConstInt(rhs);
    const unsigned bits = inst.type()->bits();
    if (cl != nullptr && cr != nullptr) {
      std::int64_t result = 0;
      if (evalIntBinOp(op, bits, cl->value(), cr->value(), result)) {
        return ctx.getInt(bits, result);
      }
      return nullptr;
    }
    // Algebraic identities.
    switch (op) {
    case Opcode::Add:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Sub:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (lhs == rhs) return ctx.getInt(bits, 0);
      break;
    case Opcode::Mul:
      if (cr != nullptr && cr->isOne()) return lhs;
      if (cl != nullptr && cl->isOne()) return rhs;
      if (cr != nullptr && cr->isZero()) return ctx.getInt(bits, 0);
      if (cl != nullptr && cl->isZero()) return ctx.getInt(bits, 0);
      break;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (cr != nullptr && cr->isOne()) return lhs;
      break;
    case Opcode::And:
      if (lhs == rhs) return lhs;
      if (cr != nullptr && cr->isZero()) return ctx.getInt(bits, 0);
      if (cl != nullptr && cl->isZero()) return ctx.getInt(bits, 0);
      if (cr != nullptr && cr->value() == -1) return lhs;
      break;
    case Opcode::Or:
      if (lhs == rhs) return lhs;
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Xor:
      if (lhs == rhs) return ctx.getInt(bits, 0);
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (cr != nullptr && cr->isZero()) return lhs;
      break;
    default:
      break;
    }
    return nullptr;
  }

  if (isFloatBinaryOp(op)) {
    const ConstantFP* cl = asConstFP(inst.operand(0));
    const ConstantFP* cr = asConstFP(inst.operand(1));
    if (cl != nullptr && cr != nullptr) {
      return ctx.getDouble(evalFloatBinOp(op, cl->value(), cr->value()));
    }
    return nullptr;
  }

  switch (op) {
  case Opcode::ICmp: {
    Value* lhs = inst.operand(0);
    Value* rhs = inst.operand(1);
    if (const ConstantInt* cl = asConstInt(lhs)) {
      if (const ConstantInt* cr = asConstInt(rhs)) {
        return ctx.getI1(
            evalICmp(inst.icmpPred(), lhs->type()->bits(), cl->value(), cr->value()));
      }
    }
    // Pointer comparisons of static addresses (QIR static qubit ids).
    std::uint64_t la = 0;
    std::uint64_t ra = 0;
    if (lhs->type()->isPointer() && getStaticPointerAddress(lhs, la) &&
        getStaticPointerAddress(rhs, ra)) {
      return ctx.getI1(evalICmp(inst.icmpPred(), 64, static_cast<std::int64_t>(la),
                                static_cast<std::int64_t>(ra)));
    }
    if (lhs == rhs) {
      const ICmpPred pred = inst.icmpPred();
      if (pred == ICmpPred::EQ || pred == ICmpPred::SLE || pred == ICmpPred::SGE ||
          pred == ICmpPred::ULE || pred == ICmpPred::UGE) {
        return ctx.getI1(true);
      }
      return ctx.getI1(false);
    }
    return nullptr;
  }
  case Opcode::FCmp: {
    const ConstantFP* cl = asConstFP(inst.operand(0));
    const ConstantFP* cr = asConstFP(inst.operand(1));
    if (cl != nullptr && cr != nullptr) {
      return ctx.getI1(evalFCmp(inst.fcmpPred(), cl->value(), cr->value()));
    }
    return nullptr;
  }
  case Opcode::Select: {
    if (const ConstantInt* cond = asConstInt(inst.operand(0))) {
      return cond->isZero() ? inst.operand(2) : inst.operand(1);
    }
    if (inst.operand(1) == inst.operand(2)) {
      return inst.operand(1);
    }
    return nullptr;
  }
  case Opcode::ZExt: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getInt(inst.type()->bits(),
                        static_cast<std::int64_t>(c->zextValue()));
    }
    return nullptr;
  }
  case Opcode::SExt: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getInt(inst.type()->bits(), c->value());
    }
    return nullptr;
  }
  case Opcode::Trunc: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getInt(inst.type()->bits(), c->value());
    }
    return nullptr;
  }
  case Opcode::IntToPtr: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getIntToPtr(c->zextValue());
    }
    return nullptr;
  }
  case Opcode::PtrToInt: {
    std::uint64_t address = 0;
    if (getStaticPointerAddress(inst.operand(0), address)) {
      return ctx.getInt(inst.type()->bits(), static_cast<std::int64_t>(address));
    }
    return nullptr;
  }
  case Opcode::SIToFP: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getDouble(static_cast<double>(c->value()));
    }
    return nullptr;
  }
  case Opcode::UIToFP: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getDouble(static_cast<double>(c->zextValue()));
    }
    return nullptr;
  }
  case Opcode::FPToSI: {
    if (const ConstantFP* c = asConstFP(inst.operand(0))) {
      if (std::isnan(c->value())) {
        return nullptr;
      }
      return ctx.getInt(inst.type()->bits(), static_cast<std::int64_t>(c->value()));
    }
    return nullptr;
  }
  case Opcode::FPToUI: {
    if (const ConstantFP* c = asConstFP(inst.operand(0))) {
      if (std::isnan(c->value()) || c->value() < 0) {
        return nullptr;
      }
      return ctx.getInt(inst.type()->bits(),
                        static_cast<std::int64_t>(static_cast<std::uint64_t>(c->value())));
    }
    return nullptr;
  }
  case Opcode::Bitcast:
    // With opaque pointers the only bitcasts left are no-ops.
    if (inst.type() == inst.operand(0)->type()) {
      return inst.operand(0);
    }
    return nullptr;
  case Opcode::Phi: {
    // Phi with all-identical incoming values (ignoring self-references).
    Value* unique = nullptr;
    for (unsigned i = 0; i < inst.numIncoming(); ++i) {
      Value* in = inst.incomingValue(i);
      if (in == &inst) {
        continue;
      }
      if (unique == nullptr) {
        unique = in;
      } else if (unique != in) {
        return nullptr;
      }
    }
    return unique;
  }
  default:
    return nullptr;
  }
}

} // namespace qirkit::passes
