#include "passes/folding.hpp"

#include "ir/context.hpp"

#include <cmath>

namespace qirkit::passes {

using namespace qirkit::ir;

namespace {

const ConstantInt* asConstInt(const Value* v) noexcept {
  return v->kind() == Value::Kind::ConstantInt ? static_cast<const ConstantInt*>(v)
                                               : nullptr;
}

const ConstantFP* asConstFP(const Value* v) noexcept {
  return v->kind() == Value::Kind::ConstantFP ? static_cast<const ConstantFP*>(v)
                                              : nullptr;
}

} // namespace

Value* foldInstruction(Context& ctx, const Instruction& inst) {
  const Opcode op = inst.op();

  if (isIntBinaryOp(op)) {
    Value* lhs = inst.operand(0);
    Value* rhs = inst.operand(1);
    const ConstantInt* cl = asConstInt(lhs);
    const ConstantInt* cr = asConstInt(rhs);
    const unsigned bits = inst.type()->bits();
    if (cl != nullptr && cr != nullptr) {
      std::int64_t result = 0;
      if (evalIntBinOp(op, bits, cl->value(), cr->value(), result)) {
        return ctx.getInt(bits, result);
      }
      return nullptr;
    }
    // Algebraic identities.
    switch (op) {
    case Opcode::Add:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Sub:
      if (cr != nullptr && cr->isZero()) return lhs;
      if (lhs == rhs) return ctx.getInt(bits, 0);
      break;
    case Opcode::Mul:
      if (cr != nullptr && cr->isOne()) return lhs;
      if (cl != nullptr && cl->isOne()) return rhs;
      if (cr != nullptr && cr->isZero()) return ctx.getInt(bits, 0);
      if (cl != nullptr && cl->isZero()) return ctx.getInt(bits, 0);
      break;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (cr != nullptr && cr->isOne()) return lhs;
      break;
    case Opcode::And:
      if (lhs == rhs) return lhs;
      if (cr != nullptr && cr->isZero()) return ctx.getInt(bits, 0);
      if (cl != nullptr && cl->isZero()) return ctx.getInt(bits, 0);
      if (cr != nullptr && cr->value() == -1) return lhs;
      break;
    case Opcode::Or:
      if (lhs == rhs) return lhs;
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Xor:
      if (lhs == rhs) return ctx.getInt(bits, 0);
      if (cr != nullptr && cr->isZero()) return lhs;
      if (cl != nullptr && cl->isZero()) return rhs;
      break;
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
      if (cr != nullptr && cr->isZero()) return lhs;
      break;
    default:
      break;
    }
    return nullptr;
  }

  if (isFloatBinaryOp(op)) {
    const ConstantFP* cl = asConstFP(inst.operand(0));
    const ConstantFP* cr = asConstFP(inst.operand(1));
    if (cl != nullptr && cr != nullptr) {
      return ctx.getDouble(evalFloatBinOp(op, cl->value(), cr->value()));
    }
    return nullptr;
  }

  switch (op) {
  case Opcode::ICmp: {
    Value* lhs = inst.operand(0);
    Value* rhs = inst.operand(1);
    if (const ConstantInt* cl = asConstInt(lhs)) {
      if (const ConstantInt* cr = asConstInt(rhs)) {
        return ctx.getI1(
            evalICmp(inst.icmpPred(), lhs->type()->bits(), cl->value(), cr->value()));
      }
    }
    // Pointer comparisons of static addresses (QIR static qubit ids).
    std::uint64_t la = 0;
    std::uint64_t ra = 0;
    if (lhs->type()->isPointer() && getStaticPointerAddress(lhs, la) &&
        getStaticPointerAddress(rhs, ra)) {
      return ctx.getI1(evalICmp(inst.icmpPred(), 64, static_cast<std::int64_t>(la),
                                static_cast<std::int64_t>(ra)));
    }
    if (lhs == rhs) {
      const ICmpPred pred = inst.icmpPred();
      if (pred == ICmpPred::EQ || pred == ICmpPred::SLE || pred == ICmpPred::SGE ||
          pred == ICmpPred::ULE || pred == ICmpPred::UGE) {
        return ctx.getI1(true);
      }
      return ctx.getI1(false);
    }
    return nullptr;
  }
  case Opcode::FCmp: {
    const ConstantFP* cl = asConstFP(inst.operand(0));
    const ConstantFP* cr = asConstFP(inst.operand(1));
    if (cl != nullptr && cr != nullptr) {
      return ctx.getI1(evalFCmp(inst.fcmpPred(), cl->value(), cr->value()));
    }
    return nullptr;
  }
  case Opcode::Select: {
    if (const ConstantInt* cond = asConstInt(inst.operand(0))) {
      return cond->isZero() ? inst.operand(2) : inst.operand(1);
    }
    if (inst.operand(1) == inst.operand(2)) {
      return inst.operand(1);
    }
    return nullptr;
  }
  case Opcode::ZExt: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getInt(inst.type()->bits(),
                        static_cast<std::int64_t>(c->zextValue()));
    }
    return nullptr;
  }
  case Opcode::SExt: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getInt(inst.type()->bits(), c->value());
    }
    return nullptr;
  }
  case Opcode::Trunc: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getInt(inst.type()->bits(), c->value());
    }
    return nullptr;
  }
  case Opcode::IntToPtr: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getIntToPtr(c->zextValue());
    }
    return nullptr;
  }
  case Opcode::PtrToInt: {
    std::uint64_t address = 0;
    if (getStaticPointerAddress(inst.operand(0), address)) {
      return ctx.getInt(inst.type()->bits(), static_cast<std::int64_t>(address));
    }
    return nullptr;
  }
  case Opcode::SIToFP: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getDouble(static_cast<double>(c->value()));
    }
    return nullptr;
  }
  case Opcode::UIToFP: {
    if (const ConstantInt* c = asConstInt(inst.operand(0))) {
      return ctx.getDouble(static_cast<double>(c->zextValue()));
    }
    return nullptr;
  }
  case Opcode::FPToSI: {
    if (const ConstantFP* c = asConstFP(inst.operand(0))) {
      if (std::isnan(c->value())) {
        return nullptr;
      }
      return ctx.getInt(inst.type()->bits(), static_cast<std::int64_t>(c->value()));
    }
    return nullptr;
  }
  case Opcode::FPToUI: {
    if (const ConstantFP* c = asConstFP(inst.operand(0))) {
      if (std::isnan(c->value()) || c->value() < 0) {
        return nullptr;
      }
      return ctx.getInt(inst.type()->bits(),
                        static_cast<std::int64_t>(static_cast<std::uint64_t>(c->value())));
    }
    return nullptr;
  }
  case Opcode::Bitcast:
    // With opaque pointers the only bitcasts left are no-ops.
    if (inst.type() == inst.operand(0)->type()) {
      return inst.operand(0);
    }
    return nullptr;
  case Opcode::Phi: {
    // Phi with all-identical incoming values (ignoring self-references).
    Value* unique = nullptr;
    for (unsigned i = 0; i < inst.numIncoming(); ++i) {
      Value* in = inst.incomingValue(i);
      if (in == &inst) {
        continue;
      }
      if (unique == nullptr) {
        unique = in;
      } else if (unique != in) {
        return nullptr;
      }
    }
    return unique;
  }
  default:
    return nullptr;
  }
}

} // namespace qirkit::passes
