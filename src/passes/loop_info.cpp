#include "passes/loop_info.hpp"

#include <algorithm>

namespace qirkit::passes {

using namespace qirkit::ir;

BasicBlock* Loop::preheader() const {
  BasicBlock* candidate = nullptr;
  for (BasicBlock* pred : header->predecessors()) {
    if (contains(pred)) {
      continue;
    }
    if (candidate != nullptr && candidate != pred) {
      return nullptr;
    }
    candidate = pred;
  }
  return candidate;
}

std::vector<std::pair<BasicBlock*, BasicBlock*>> Loop::exitEdges() const {
  std::vector<std::pair<BasicBlock*, BasicBlock*>> result;
  for (BasicBlock* block : blocks) {
    for (BasicBlock* succ : block->successors()) {
      if (!contains(succ)) {
        result.emplace_back(block, succ);
      }
    }
  }
  return result;
}

bool Loop::containsLoop(const std::vector<Loop>& all) const {
  for (const Loop& other : all) {
    if (other.header != header && contains(other.header)) {
      return true;
    }
  }
  return false;
}

std::vector<Loop> findNaturalLoops(Function& fn) {
  if (fn.entry() == nullptr) {
    return {};
  }
  const DomTree dom(fn);
  std::vector<Loop> loops;
  const auto loopForHeader = [&loops](BasicBlock* header) -> Loop& {
    for (Loop& loop : loops) {
      if (loop.header == header) {
        return loop;
      }
    }
    loops.push_back({header, {header}, {}});
    return loops.back();
  };

  for (const BasicBlock* blockC : dom.reversePostOrder()) {
    auto* block = const_cast<BasicBlock*>(blockC);
    for (BasicBlock* succ : block->successors()) {
      if (!dom.dominates(succ, block)) {
        continue; // not a back edge
      }
      Loop& loop = loopForHeader(succ);
      loop.latches.push_back(block);
      // Flood backwards from the latch, stopping at the header.
      std::vector<BasicBlock*> worklist{block};
      while (!worklist.empty()) {
        BasicBlock* current = worklist.back();
        worklist.pop_back();
        if (!loop.blocks.insert(current).second) {
          continue;
        }
        for (BasicBlock* pred : current->predecessors()) {
          if (pred != loop.header && dom.isReachable(pred)) {
            worklist.push_back(pred);
          }
        }
      }
    }
  }
  std::sort(loops.begin(), loops.end(), [](const Loop& a, const Loop& b) {
    return a.blocks.size() < b.blocks.size();
  });
  return loops;
}

} // namespace qirkit::passes
