/// \file parser.hpp
/// Parser for the textual LLVM-IR subset (modern opaque-pointer syntax).
/// This is the "full AST" route of the paper's §III.A: it builds a real
/// in-memory IR with use-def chains, on which the §III.B passes operate.
///
/// Accepted beyond the printed subset, for compatibility with QIR emitted
/// by other tools: `%Name = type opaque` aliases (legacy `%Qubit*` spelling
/// maps to `ptr`), parameter attributes (`writeonly`, `nocapture`, ...),
/// `tail` call markers, alignment annotations, and trailing metadata.
#pragma once

#include "ir/module.hpp"

#include <memory>
#include <string_view>

namespace qirkit::ir {

/// Parse \p text into a fresh module owned by \p context.
/// Throws qirkit::ParseError (with location) on malformed input.
[[nodiscard]] std::unique_ptr<Module> parseModule(Context& context,
                                                  std::string_view text,
                                                  std::string moduleName = "module");

} // namespace qirkit::ir
