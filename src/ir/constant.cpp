#include "ir/constant.hpp"

namespace qirkit::ir {

std::uint64_t ConstantInt::zextValue() const noexcept {
  const unsigned bits = type()->bits();
  if (bits >= 64) {
    return static_cast<std::uint64_t>(value_);
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  return static_cast<std::uint64_t>(value_) & mask;
}

bool getStaticPointerAddress(const Value* v, std::uint64_t& address) noexcept {
  if (v->kind() == Value::Kind::ConstantPointerNull) {
    address = 0;
    return true;
  }
  if (const auto* itp = dynamic_cast<const ConstantIntToPtr*>(v)) {
    address = itp->address();
    return true;
  }
  return false;
}

} // namespace qirkit::ir
