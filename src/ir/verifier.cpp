#include "ir/verifier.hpp"

#include "ir/dominance.hpp"
#include "support/source_location.hpp"

#include <algorithm>
#include <sstream>

namespace qirkit::ir {
namespace {

class Verifier {
public:
  explicit Verifier(const Module& module) : module_(module) {}

  std::vector<std::string> run() {
    for (const auto& fn : module_.functions()) {
      if (!fn->isDeclaration()) {
        verifyFunction(*fn);
      }
    }
    return std::move(errors_);
  }

private:
  template <typename... Args> void error(const Function& fn, Args&&... parts) {
    std::ostringstream out;
    out << "in @" << fn.name() << ": ";
    (out << ... << parts);
    errors_.push_back(out.str());
  }

  static std::string describe(const Instruction& inst) {
    std::string out = opcodeName(inst.op());
    if (inst.op() == Opcode::Call && inst.callee() != nullptr) {
      out += " @" + inst.callee()->name();
    }
    if (inst.hasName()) {
      out += " (%" + inst.name() + ")";
    }
    return out;
  }

  void verifyFunction(const Function& fn) {
    if (fn.entry() == nullptr) {
      error(fn, "function definition has no blocks");
      return;
    }
    if (!fn.entry()->predecessors().empty()) {
      error(fn, "entry block has predecessors");
    }
    for (const auto& block : fn.blocks()) {
      verifyBlock(fn, *block);
    }
    verifyDominance(fn);
  }

  void verifyBlock(const Function& fn, const BasicBlock& block) {
    if (block.empty() || !block.back()->isTerminator()) {
      error(fn, "block ", block.hasName() ? "%" + block.name() : "<unnamed>",
            " is not terminated");
      return;
    }
    bool seenNonPhi = false;
    for (const auto& inst : block.instructions()) {
      if (inst->isTerminator() && inst.get() != block.back()) {
        error(fn, "terminator in the middle of a block");
      }
      if (inst->op() == Opcode::Phi) {
        if (seenNonPhi) {
          error(fn, "phi after non-phi instruction");
        }
      } else {
        seenNonPhi = true;
      }
      verifyInstruction(fn, *inst);
    }
    // Phi incoming sets must match the predecessor set exactly.
    const std::vector<BasicBlock*> preds = block.predecessors();
    for (const Instruction* phi : block.phis()) {
      if (phi->numIncoming() != preds.size()) {
        error(fn, "phi has ", phi->numIncoming(), " incoming values but block has ",
              preds.size(), " predecessors");
        continue;
      }
      for (unsigned i = 0; i < phi->numIncoming(); ++i) {
        const BasicBlock* incoming = phi->incomingBlock(i);
        if (std::find(preds.begin(), preds.end(), incoming) == preds.end()) {
          error(fn, "phi incoming block is not a predecessor");
        }
        if (phi->incomingValue(i)->type() != phi->type() &&
            phi->incomingValue(i)->kind() != Value::Kind::Undef) {
          error(fn, "phi incoming value type mismatch");
        }
      }
    }
  }

  void verifyInstruction(const Function& fn, const Instruction& inst) {
    for (unsigned i = 0; i < inst.numOperands(); ++i) {
      if (inst.operand(i) == nullptr) {
        error(fn, describe(inst), ": null operand");
        return;
      }
      if (inst.operand(i)->kind() == Value::Kind::ForwardRef) {
        error(fn, describe(inst), ": unresolved forward reference operand");
        return;
      }
    }
    const Opcode op = inst.op();
    if (isBinaryOp(op)) {
      const Type* lhs = inst.operand(0)->type();
      const Type* rhs = inst.operand(1)->type();
      if (lhs != rhs || inst.type() != lhs) {
        error(fn, describe(inst), ": operand/result type mismatch");
      }
      if (isIntBinaryOp(op) && !lhs->isInteger()) {
        error(fn, describe(inst), ": integer op on non-integer type");
      }
      if (isFloatBinaryOp(op) && !lhs->isDouble()) {
        error(fn, describe(inst), ": float op on non-double type");
      }
      return;
    }
    switch (op) {
    case Opcode::Ret: {
      const Type* expected = fn.returnType();
      if (expected->isVoid()) {
        if (inst.numOperands() != 0) {
          error(fn, "ret with value in void function");
        }
      } else if (inst.numOperands() != 1 || inst.operand(0)->type() != expected) {
        error(fn, "ret value type does not match function return type");
      }
      break;
    }
    case Opcode::Br:
      if (inst.isConditionalBr() && !inst.brCondition()->type()->isInteger(1)) {
        error(fn, "br condition is not i1");
      }
      break;
    case Opcode::Switch:
      if (!inst.operand(0)->type()->isInteger()) {
        error(fn, "switch condition is not an integer");
      }
      for (unsigned i = 0; i < inst.numSwitchCases(); ++i) {
        if (inst.operand(2 + 2 * i)->type() != inst.operand(0)->type()) {
          error(fn, "switch case type mismatch");
        }
      }
      break;
    case Opcode::Load:
      if (!inst.operand(0)->type()->isPointer()) {
        error(fn, "load from non-pointer");
      }
      break;
    case Opcode::Store:
      if (!inst.operand(1)->type()->isPointer()) {
        error(fn, "store to non-pointer");
      }
      break;
    case Opcode::ICmp:
      if (inst.operand(0)->type() != inst.operand(1)->type()) {
        error(fn, "icmp operand type mismatch");
      } else if (!inst.operand(0)->type()->isInteger() &&
                 !inst.operand(0)->type()->isPointer()) {
        error(fn, "icmp on non-integer, non-pointer type");
      }
      break;
    case Opcode::FCmp:
      if (!inst.operand(0)->type()->isDouble() || !inst.operand(1)->type()->isDouble()) {
        error(fn, "fcmp on non-double type");
      }
      break;
    case Opcode::ZExt:
    case Opcode::SExt:
      if (!inst.operand(0)->type()->isInteger() || !inst.type()->isInteger() ||
          inst.operand(0)->type()->bits() >= inst.type()->bits()) {
        error(fn, describe(inst), ": invalid extension");
      }
      break;
    case Opcode::Trunc:
      if (!inst.operand(0)->type()->isInteger() || !inst.type()->isInteger() ||
          inst.operand(0)->type()->bits() <= inst.type()->bits()) {
        error(fn, "invalid trunc");
      }
      break;
    case Opcode::PtrToInt:
      if (!inst.operand(0)->type()->isPointer() || !inst.type()->isInteger()) {
        error(fn, "invalid ptrtoint");
      }
      break;
    case Opcode::IntToPtr:
      if (!inst.operand(0)->type()->isInteger() || !inst.type()->isPointer()) {
        error(fn, "invalid inttoptr");
      }
      break;
    case Opcode::SIToFP:
    case Opcode::UIToFP:
      if (!inst.operand(0)->type()->isInteger() || !inst.type()->isDouble()) {
        error(fn, "invalid int-to-fp cast");
      }
      break;
    case Opcode::FPToSI:
    case Opcode::FPToUI:
      if (!inst.operand(0)->type()->isDouble() || !inst.type()->isInteger()) {
        error(fn, "invalid fp-to-int cast");
      }
      break;
    case Opcode::Select:
      if (!inst.operand(0)->type()->isInteger(1)) {
        error(fn, "select condition is not i1");
      }
      if (inst.operand(1)->type() != inst.operand(2)->type() ||
          inst.type() != inst.operand(1)->type()) {
        error(fn, "select arm type mismatch");
      }
      break;
    case Opcode::Call: {
      const Function* callee = inst.callee();
      if (callee == nullptr) {
        error(fn, "call without callee");
        break;
      }
      const auto params = callee->functionType()->paramTypes();
      if (inst.numOperands() != params.size()) {
        error(fn, "call to @", callee->name(), " has wrong arity");
        break;
      }
      for (unsigned i = 0; i < params.size(); ++i) {
        if (inst.operand(i)->type() != params[i] &&
            inst.operand(i)->kind() != Value::Kind::Undef) {
          error(fn, "call to @", callee->name(), ": argument ", i, " type mismatch");
        }
      }
      if (inst.type() != callee->returnType()) {
        error(fn, "call to @", callee->name(), ": return type mismatch");
      }
      break;
    }
    default:
      break;
    }
  }

  void verifyDominance(const Function& fn) {
    const DomTree dom(fn);
    for (const auto& block : fn.blocks()) {
      if (!dom.isReachable(block.get())) {
        continue; // uses in unreachable code are not constrained
      }
      for (const auto& inst : block->instructions()) {
        for (unsigned i = 0; i < inst->numOperands(); ++i) {
          const auto* defInst = dynamic_cast<const Instruction*>(inst->operand(i));
          if (defInst == nullptr) {
            continue;
          }
          if (inst->op() == Opcode::Phi) {
            if (i % 2 != 0) {
              continue; // incoming block operand
            }
            const BasicBlock* incoming = inst->incomingBlock(i / 2);
            if (dom.isReachable(incoming) &&
                !dom.dominates(defInst->parent(), incoming)) {
              error(fn, describe(*inst), ": incoming value does not dominate edge");
            }
            continue;
          }
          if (!dom.dominatesUse(defInst, inst.get())) {
            error(fn, describe(*inst), ": operand %",
                  defInst->hasName() ? defInst->name() : std::string("<tmp>"),
                  " does not dominate use");
          }
        }
      }
    }
  }

  const Module& module_;
  std::vector<std::string> errors_;
};

} // namespace

std::vector<std::string> verifyModule(const Module& module) {
  return Verifier(module).run();
}

void verifyModuleOrThrow(const Module& module) {
  const std::vector<std::string> errors = verifyModule(module);
  if (errors.empty()) {
    return;
  }
  std::string message = "module verification failed:";
  for (const std::string& e : errors) {
    message += "\n  " + e;
  }
  throw qirkit::SemanticError(message, qirkit::ErrorCode::Verify);
}

} // namespace qirkit::ir
