/// \file value.hpp
/// Value / Use / User: the SSA value graph with full use-def chains,
/// supporting replaceAllUsesWith — the primitive every transformation
/// pass is built on.
#pragma once

#include "ir/type.hpp"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qirkit::ir {

class User;
class Value;

/// One edge in the use-def graph: \p user's operand number \p index is
/// \p value. Uses are heap-allocated and owned by the User so their
/// addresses are stable in the value's use list.
struct Use {
  Value* value = nullptr;
  User* user = nullptr;
  unsigned index = 0;
  /// Position of this Use inside value->uses_ (maintained by Value so that
  /// removal is O(1); constants can accumulate thousands of uses).
  std::size_t slot = 0;
};

/// Base of everything that can be an operand: arguments, constants,
/// globals, functions, basic blocks, and instructions.
class Value {
public:
  enum class Kind : std::uint8_t {
    Argument,
    BasicBlock,
    Function,
    GlobalVariable,
    ConstantInt,
    ConstantFP,
    ConstantPointerNull,
    ConstantIntToPtr,
    Undef,
    Instruction,
    ForwardRef, // parser-internal placeholder, resolved before parse returns
  };

  virtual ~Value();
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const Type* type() const noexcept { return type_; }

  /// Optional name (without the %/@ sigil). Unnamed values are printed with
  /// sequential numbers.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }
  [[nodiscard]] bool hasName() const noexcept { return !name_.empty(); }

  /// All uses of this value. Order is unspecified.
  [[nodiscard]] const std::vector<Use*>& uses() const noexcept { return uses_; }
  [[nodiscard]] bool hasUses() const noexcept { return !uses_.empty(); }
  [[nodiscard]] std::size_t numUses() const noexcept { return uses_.size(); }

  /// Rewrite every use of this value to use \p replacement instead.
  void replaceAllUsesWith(Value* replacement);

  [[nodiscard]] bool isConstant() const noexcept {
    return kind_ == Kind::ConstantInt || kind_ == Kind::ConstantFP ||
           kind_ == Kind::ConstantPointerNull || kind_ == Kind::ConstantIntToPtr ||
           kind_ == Kind::Undef;
  }

protected:
  Value(Kind kind, const Type* type) : kind_(kind), type_(type) {}
  void setType(const Type* type) noexcept { type_ = type; }

private:
  friend class User;
  void addUse(Use* use) {
    use->slot = uses_.size();
    uses_.push_back(use);
  }
  void removeUse(Use* use);

  Kind kind_;
  const Type* type_;
  std::string name_;
  std::vector<Use*> uses_;
};

/// A Value that has operands (instructions and, by extension, anything that
/// references other values).
class User : public Value {
public:
  [[nodiscard]] unsigned numOperands() const noexcept {
    return static_cast<unsigned>(operands_.size());
  }
  [[nodiscard]] Value* operand(unsigned index) const {
    assert(index < operands_.size());
    return operands_[index]->value;
  }
  /// Replace operand \p index, maintaining use lists.
  void setOperand(unsigned index, Value* value);
  /// Append an operand (used by call/phi construction).
  void addOperand(Value* value);
  /// Remove operand \p index, shifting later operands down.
  void removeOperand(unsigned index);
  /// Detach from all operands' use lists and clear the operand vector.
  void dropAllOperands();

  ~User() override { dropAllOperands(); }

protected:
  using Value::Value;

private:
  std::vector<std::unique_ptr<Use>> operands_;
};

} // namespace qirkit::ir
