#include "ir/instruction.hpp"

#include "ir/module.hpp"

#include <algorithm>
#include <cassert>

namespace qirkit::ir {

const char* opcodeName(Opcode op) noexcept {
  switch (op) {
  case Opcode::Ret: return "ret";
  case Opcode::Br: return "br";
  case Opcode::Switch: return "switch";
  case Opcode::Unreachable: return "unreachable";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::SDiv: return "sdiv";
  case Opcode::UDiv: return "udiv";
  case Opcode::SRem: return "srem";
  case Opcode::URem: return "urem";
  case Opcode::And: return "and";
  case Opcode::Or: return "or";
  case Opcode::Xor: return "xor";
  case Opcode::Shl: return "shl";
  case Opcode::LShr: return "lshr";
  case Opcode::AShr: return "ashr";
  case Opcode::FAdd: return "fadd";
  case Opcode::FSub: return "fsub";
  case Opcode::FMul: return "fmul";
  case Opcode::FDiv: return "fdiv";
  case Opcode::FRem: return "frem";
  case Opcode::Alloca: return "alloca";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::ICmp: return "icmp";
  case Opcode::FCmp: return "fcmp";
  case Opcode::ZExt: return "zext";
  case Opcode::SExt: return "sext";
  case Opcode::Trunc: return "trunc";
  case Opcode::PtrToInt: return "ptrtoint";
  case Opcode::IntToPtr: return "inttoptr";
  case Opcode::SIToFP: return "sitofp";
  case Opcode::FPToSI: return "fptosi";
  case Opcode::UIToFP: return "uitofp";
  case Opcode::FPToUI: return "fptoui";
  case Opcode::Bitcast: return "bitcast";
  case Opcode::Phi: return "phi";
  case Opcode::Select: return "select";
  case Opcode::Call: return "call";
  }
  return "<bad opcode>";
}

const char* icmpPredName(ICmpPred p) noexcept {
  switch (p) {
  case ICmpPred::EQ: return "eq";
  case ICmpPred::NE: return "ne";
  case ICmpPred::SLT: return "slt";
  case ICmpPred::SLE: return "sle";
  case ICmpPred::SGT: return "sgt";
  case ICmpPred::SGE: return "sge";
  case ICmpPred::ULT: return "ult";
  case ICmpPred::ULE: return "ule";
  case ICmpPred::UGT: return "ugt";
  case ICmpPred::UGE: return "uge";
  }
  return "<bad pred>";
}

const char* fcmpPredName(FCmpPred p) noexcept {
  switch (p) {
  case FCmpPred::OEQ: return "oeq";
  case FCmpPred::ONE: return "one";
  case FCmpPred::OLT: return "olt";
  case FCmpPred::OLE: return "ole";
  case FCmpPred::OGT: return "ogt";
  case FCmpPred::OGE: return "oge";
  case FCmpPred::UNE: return "une";
  }
  return "<bad pred>";
}

bool isIntBinaryOp(Opcode op) noexcept {
  switch (op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    return true;
  default:
    return false;
  }
}

bool isFloatBinaryOp(Opcode op) noexcept {
  switch (op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FRem:
    return true;
  default:
    return false;
  }
}

bool isBinaryOp(Opcode op) noexcept { return isIntBinaryOp(op) || isFloatBinaryOp(op); }

bool isCastOp(Opcode op) noexcept {
  switch (op) {
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::PtrToInt:
  case Opcode::IntToPtr:
  case Opcode::SIToFP:
  case Opcode::FPToSI:
  case Opcode::UIToFP:
  case Opcode::FPToUI:
  case Opcode::Bitcast:
    return true;
  default:
    return false;
  }
}

bool isTerminatorOp(Opcode op) noexcept {
  return op == Opcode::Ret || op == Opcode::Br || op == Opcode::Switch ||
         op == Opcode::Unreachable;
}

Function* Instruction::function() const noexcept {
  return parent_ != nullptr ? parent_->parent() : nullptr;
}

bool Instruction::hasSideEffects() const noexcept {
  switch (op_) {
  case Opcode::Store:
  case Opcode::Call: // conservatively: every call may have effects
  case Opcode::Ret:
  case Opcode::Br:
  case Opcode::Switch:
  case Opcode::Unreachable:
    return true;
  default:
    return false;
  }
}

ConstantInt* Instruction::switchCaseValue(unsigned i) const {
  assert(op_ == Opcode::Switch);
  auto* c = dynamic_cast<ConstantInt*>(operand(2 + 2 * i));
  assert(c != nullptr && "switch case value must be a constant int");
  return c;
}

BasicBlock* Instruction::switchCaseDest(unsigned i) const {
  assert(op_ == Opcode::Switch);
  auto* bb = dynamic_cast<BasicBlock*>(operand(3 + 2 * i));
  assert(bb != nullptr);
  return bb;
}

BasicBlock* Instruction::incomingBlock(unsigned i) const {
  assert(op_ == Opcode::Phi);
  auto* bb = dynamic_cast<BasicBlock*>(operand(2 * i + 1));
  assert(bb != nullptr);
  return bb;
}

void Instruction::addIncoming(Value* value, BasicBlock* block) {
  assert(op_ == Opcode::Phi);
  addOperand(value);
  addOperand(block);
}

void Instruction::removeIncoming(const BasicBlock* block) {
  assert(op_ == Opcode::Phi);
  for (unsigned i = 0; i < numIncoming(); ++i) {
    if (incomingBlock(i) == block) {
      removeOperand(2 * i + 1);
      removeOperand(2 * i);
      return;
    }
  }
  assert(false && "block is not incoming to this phi");
}

Value* Instruction::incomingValueFor(const BasicBlock* block) const {
  assert(op_ == Opcode::Phi);
  for (unsigned i = 0; i < numIncoming(); ++i) {
    if (incomingBlock(i) == block) {
      return incomingValue(i);
    }
  }
  return nullptr;
}

unsigned Instruction::numSuccessors() const noexcept {
  switch (op_) {
  case Opcode::Br:
    return isConditionalBr() ? 2 : 1;
  case Opcode::Switch:
    return 1 + numSwitchCases();
  default:
    return 0;
  }
}

BasicBlock* Instruction::successor(unsigned i) const {
  assert(i < numSuccessors());
  unsigned operandIndex = 0;
  if (op_ == Opcode::Br) {
    operandIndex = isConditionalBr() ? 1 + i : 0;
  } else { // Switch: successor 0 is the default, successor i>0 is case i-1
    operandIndex = i == 0 ? 1 : 3 + 2 * (i - 1);
  }
  auto* bb = dynamic_cast<BasicBlock*>(operand(operandIndex));
  assert(bb != nullptr);
  return bb;
}

void Instruction::setSuccessor(unsigned i, BasicBlock* block) {
  assert(i < numSuccessors());
  unsigned operandIndex = 0;
  if (op_ == Opcode::Br) {
    operandIndex = isConditionalBr() ? 1 + i : 0;
  } else {
    operandIndex = i == 0 ? 1 : 3 + 2 * (i - 1);
  }
  setOperand(operandIndex, block);
}

void Instruction::eraseFromParent() {
  assert(!hasUses() && "erasing an instruction that still has uses");
  assert(parent_ != nullptr);
  BasicBlock* bb = parent_;
  bb->detach(this); // returned unique_ptr destroys *this
}

std::unique_ptr<Instruction> Instruction::clone() const {
  auto copy = std::unique_ptr<Instruction>(new Instruction(op_, type()));
  copy->icmpPred_ = icmpPred_;
  copy->fcmpPred_ = fcmpPred_;
  copy->allocatedType_ = allocatedType_;
  copy->callee_ = callee_;
  copy->setName(name());
  for (unsigned i = 0; i < numOperands(); ++i) {
    copy->addOperand(operand(i));
  }
  return copy;
}

Instruction* BasicBlock::terminator() const noexcept {
  if (instructions_.empty()) {
    return nullptr;
  }
  Instruction* last = instructions_.back().get();
  return last->isTerminator() ? last : nullptr;
}

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  inst->parent_ = this;
  instructions_.push_back(std::move(inst));
  return instructions_.back().get();
}

Instruction* BasicBlock::insert(std::size_t index, std::unique_ptr<Instruction> inst) {
  assert(index <= instructions_.size());
  inst->parent_ = this;
  const auto it = instructions_.insert(instructions_.begin() + static_cast<std::ptrdiff_t>(index),
                                       std::move(inst));
  return it->get();
}

std::size_t BasicBlock::indexOf(const Instruction* inst) const {
  for (std::size_t i = 0; i < instructions_.size(); ++i) {
    if (instructions_[i].get() == inst) {
      return i;
    }
  }
  assert(false && "instruction not in block");
  return instructions_.size();
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction* inst) {
  const std::size_t index = indexOf(inst);
  std::unique_ptr<Instruction> owned = std::move(instructions_[index]);
  instructions_.erase(instructions_.begin() + static_cast<std::ptrdiff_t>(index));
  owned->parent_ = nullptr;
  return owned;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> result;
  if (const Instruction* term = terminator()) {
    result.reserve(term->numSuccessors());
    for (unsigned i = 0; i < term->numSuccessors(); ++i) {
      result.push_back(term->successor(i));
    }
  }
  return result;
}

std::vector<BasicBlock*> BasicBlock::predecessors() const {
  std::vector<BasicBlock*> result;
  for (const Use* use : uses()) {
    auto* inst = dynamic_cast<Instruction*>(use->user);
    if (inst == nullptr || !inst->isTerminator()) {
      continue;
    }
    BasicBlock* pred = inst->parent();
    if (pred != nullptr && std::find(result.begin(), result.end(), pred) == result.end()) {
      result.push_back(pred);
    }
  }
  return result;
}

bool BasicBlock::hasPredecessor(const BasicBlock* pred) const {
  for (const Use* use : uses()) {
    auto* inst = dynamic_cast<Instruction*>(use->user);
    if (inst != nullptr && inst->isTerminator() && inst->parent() == pred) {
      return true;
    }
  }
  return false;
}

std::vector<Instruction*> BasicBlock::phis() const {
  std::vector<Instruction*> result;
  for (const auto& inst : instructions_) {
    if (inst->op() != Opcode::Phi) {
      break;
    }
    result.push_back(inst.get());
  }
  return result;
}

} // namespace qirkit::ir
