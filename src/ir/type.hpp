/// \file type.hpp
/// The type system of the LLVM-IR subset. Types are immutable and interned
/// in a Context: pointer equality is type equality.
///
/// Modeled types: void, iN (arbitrary width, i1/i8/i32/i64 in practice),
/// double, opaque ptr (modern LLVM syntax, as used by the paper), label,
/// [N x T] arrays (for global string constants), and function types.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qirkit::ir {

class Context;

/// An interned, immutable IR type.
class Type {
public:
  enum class Kind : std::uint8_t { Void, Integer, Double, Pointer, Label, Array, Function };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  [[nodiscard]] bool isVoid() const noexcept { return kind_ == Kind::Void; }
  [[nodiscard]] bool isInteger() const noexcept { return kind_ == Kind::Integer; }
  [[nodiscard]] bool isInteger(unsigned bits) const noexcept {
    return kind_ == Kind::Integer && bits_ == bits;
  }
  [[nodiscard]] bool isDouble() const noexcept { return kind_ == Kind::Double; }
  [[nodiscard]] bool isPointer() const noexcept { return kind_ == Kind::Pointer; }
  [[nodiscard]] bool isLabel() const noexcept { return kind_ == Kind::Label; }
  [[nodiscard]] bool isArray() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool isFunction() const noexcept { return kind_ == Kind::Function; }

  /// Bit width; only valid for integer types.
  [[nodiscard]] unsigned bits() const noexcept { return bits_; }

  /// Element type; only valid for array types.
  [[nodiscard]] const Type* elementType() const noexcept { return element_; }

  /// Element count; only valid for array types.
  [[nodiscard]] std::uint64_t arrayCount() const noexcept { return count_; }

  /// Return type; only valid for function types.
  [[nodiscard]] const Type* returnType() const noexcept { return element_; }

  /// Parameter types; only valid for function types.
  [[nodiscard]] std::span<const Type* const> paramTypes() const noexcept {
    return params_;
  }

  /// Size in bytes when stored in interpreter memory. Integers round up to
  /// whole bytes; pointers are 8 bytes.
  [[nodiscard]] std::uint64_t storeSize() const;

  /// Textual form, e.g. "i64", "ptr", "[3 x i8]".
  [[nodiscard]] std::string str() const;

private:
  friend class Context;
  Type(Kind kind, unsigned bits, const Type* element, std::uint64_t count,
       std::vector<const Type*> params)
      : kind_(kind), bits_(bits), count_(count), element_(element),
        params_(std::move(params)) {}

  Kind kind_;
  unsigned bits_ = 0;
  std::uint64_t count_ = 0;
  const Type* element_ = nullptr;         // array element / function return
  std::vector<const Type*> params_;       // function parameters
};

} // namespace qirkit::ir
