/// \file verifier.hpp
/// The module verifier: structural and SSA well-formedness checks. Passes
/// are expected to leave modules verifier-clean; tests assert this after
/// every transformation.
#pragma once

#include "ir/module.hpp"

#include <string>
#include <vector>

namespace qirkit::ir {

/// Verify \p module. Returns the list of violations (empty when clean).
[[nodiscard]] std::vector<std::string> verifyModule(const Module& module);

/// Verify and throw qirkit::SemanticError listing every violation.
void verifyModuleOrThrow(const Module& module);

} // namespace qirkit::ir
