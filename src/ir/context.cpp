#include "ir/context.hpp"

#include "ir/constant.hpp"

#include <map>
#include <memory>
#include <tuple>
#include <vector>

namespace qirkit::ir {

struct Context::TypeStore {
  std::vector<std::unique_ptr<Type>> all;
  std::map<unsigned, const Type*> ints;
  std::map<std::pair<const Type*, std::uint64_t>, const Type*> arrays;
  std::map<std::pair<const Type*, std::vector<const Type*>>, const Type*> functions;

  Type* add(std::unique_ptr<Type> t) {
    all.push_back(std::move(t));
    return all.back().get();
  }
};

struct Context::ConstantStore {
  std::map<std::pair<unsigned, std::int64_t>, std::unique_ptr<ConstantInt>> ints;
  std::map<double, std::unique_ptr<ConstantFP>> doubles;
  std::unique_ptr<ConstantPointerNull> nullPtr;
  std::map<std::uint64_t, std::unique_ptr<ConstantIntToPtr>> intToPtrs;
  std::map<const Type*, std::unique_ptr<UndefValue>> undefs;
};

Context::Context()
    : types_(std::make_unique<TypeStore>()),
      constants_(std::make_unique<ConstantStore>()) {
  voidTy_ = types_->add(std::unique_ptr<Type>(
      new Type(Type::Kind::Void, 0, nullptr, 0, {})));
  labelTy_ = types_->add(std::unique_ptr<Type>(
      new Type(Type::Kind::Label, 0, nullptr, 0, {})));
  doubleTy_ = types_->add(std::unique_ptr<Type>(
      new Type(Type::Kind::Double, 0, nullptr, 0, {})));
  ptrTy_ = types_->add(std::unique_ptr<Type>(
      new Type(Type::Kind::Pointer, 0, nullptr, 0, {})));
}

Context::~Context() = default;

const Type* Context::intTy(unsigned bits) {
  auto& slot = types_->ints[bits];
  if (slot == nullptr) {
    slot = types_->add(std::unique_ptr<Type>(
        new Type(Type::Kind::Integer, bits, nullptr, 0, {})));
  }
  return slot;
}

const Type* Context::arrayTy(const Type* element, std::uint64_t count) {
  auto& slot = types_->arrays[{element, count}];
  if (slot == nullptr) {
    slot = types_->add(std::unique_ptr<Type>(
        new Type(Type::Kind::Array, 0, element, count, {})));
  }
  return slot;
}

const Type* Context::functionTy(const Type* ret, std::vector<const Type*> params) {
  auto& slot = types_->functions[{ret, params}];
  if (slot == nullptr) {
    slot = types_->add(std::unique_ptr<Type>(
        new Type(Type::Kind::Function, 0, ret, 0, std::move(params))));
  }
  return slot;
}

ConstantInt* Context::getInt(unsigned bits, std::int64_t value) {
  // Canonicalize to the sign-extended representative of value mod 2^bits.
  if (bits < 64) {
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(value) & mask;
    // Sign-extend.
    if (bits > 0 && ((u >> (bits - 1)) & 1) != 0) {
      u |= ~mask;
    }
    value = static_cast<std::int64_t>(u);
  }
  auto& slot = constants_->ints[{bits, value}];
  if (slot == nullptr) {
    slot.reset(new ConstantInt(intTy(bits), value));
  }
  return slot.get();
}

ConstantFP* Context::getDouble(double value) {
  auto& slot = constants_->doubles[value];
  if (slot == nullptr) {
    slot.reset(new ConstantFP(doubleTy_, value));
  }
  return slot.get();
}

ConstantPointerNull* Context::getNullPtr() {
  if (constants_->nullPtr == nullptr) {
    constants_->nullPtr.reset(new ConstantPointerNull(ptrTy_));
  }
  return constants_->nullPtr.get();
}

ConstantIntToPtr* Context::getIntToPtr(std::uint64_t value) {
  auto& slot = constants_->intToPtrs[value];
  if (slot == nullptr) {
    slot.reset(new ConstantIntToPtr(ptrTy_, value));
  }
  return slot.get();
}

UndefValue* Context::getUndef(const Type* type) {
  auto& slot = constants_->undefs[type];
  if (slot == nullptr) {
    slot.reset(new UndefValue(type));
  }
  return slot.get();
}

} // namespace qirkit::ir
