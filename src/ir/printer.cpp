#include "ir/printer.hpp"

#include "support/string_utils.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace qirkit::ir {
namespace {

/// True if \p name can be printed without quotes.
bool isPlainName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  if (!isIdentStart(name.front()) && name.front() != '-' &&
      (name.front() < '0' || name.front() > '9')) {
    return false;
  }
  for (const char c : name) {
    if (!isIdentChar(c)) {
      return false;
    }
  }
  return true;
}

std::string sigilName(char sigil, const std::string& name) {
  if (isPlainName(name)) {
    return std::string(1, sigil) + name;
  }
  return std::string(1, sigil) + quoteString(name);
}

/// Assigns printable local names: unnamed values get LLVM-style sequential
/// numbers; named values keep their name unless it collides with an
/// earlier one (clones), in which case a ".N" suffix is appended.
class Numbering {
public:
  explicit Numbering(const Function& fn) {
    unsigned next = 0;
    const auto assign = [this, &next](const Value* v) {
      if (!v->hasName()) {
        std::string numeric;
        do {
          numeric = std::to_string(next++);
        } while (!taken_.insert(numeric).second);
        names_[v] = std::move(numeric);
        return;
      }
      std::string name = v->name();
      unsigned suffix = 0;
      while (!taken_.insert(name).second) {
        name = v->name() + "." + std::to_string(++suffix);
      }
      names_[v] = std::move(name);
    };
    for (unsigned i = 0; i < fn.numArgs(); ++i) {
      assign(fn.arg(i));
    }
    for (const auto& block : fn.blocks()) {
      assign(block.get());
      for (const auto& inst : block->instructions()) {
        if (!inst->type()->isVoid()) {
          assign(inst.get());
        }
      }
    }
  }

  [[nodiscard]] std::string nameOf(const Value* v) const {
    const auto it = names_.find(v);
    assert(it != names_.end() && "value was not assigned a printable name");
    return sigilName('%', it->second);
  }

  /// The bare (unsigiled) printable name, for block labels.
  [[nodiscard]] const std::string& bareNameOf(const Value* v) const {
    const auto it = names_.find(v);
    assert(it != names_.end());
    return it->second;
  }

private:
  std::map<const Value*, std::string> names_;
  std::set<std::string> taken_;
};

class FunctionPrinter {
public:
  FunctionPrinter(const Function& fn, std::ostringstream& out)
      : fn_(fn), numbering_(fn), out_(out) {}

  void print() {
    out_ << (fn_.isDeclaration() ? "declare " : "define ")
         << fn_.returnType()->str() << " " << sigilName('@', fn_.name()) << "(";
    const auto params = fn_.functionType()->paramTypes();
    for (unsigned i = 0; i < params.size(); ++i) {
      if (i != 0) {
        out_ << ", ";
      }
      out_ << params[i]->str();
      if (!fn_.isDeclaration()) {
        out_ << " " << numbering_.nameOf(fn_.arg(i));
      }
    }
    out_ << ")";
    if (attrGroup_ >= 0) {
      out_ << " #" << attrGroup_;
    }
    if (fn_.isDeclaration()) {
      out_ << "\n";
      return;
    }
    out_ << " {\n";
    for (std::size_t b = 0; b < fn_.blocks().size(); ++b) {
      const BasicBlock& block = *fn_.blocks()[b];
      if (b != 0) {
        out_ << "\n";
      }
      printBlockLabel(block);
      for (const auto& inst : block.instructions()) {
        out_ << "  ";
        printInstruction(*inst);
        out_ << "\n";
      }
    }
    out_ << "}\n";
  }

  void setAttrGroup(int group) noexcept { attrGroup_ = group; }

private:
  void printBlockLabel(const BasicBlock& block) {
    // Labels are printed without the % sigil (numeric labels are printed
    // literally so our own parser can reparse them).
    const std::string& name = numbering_.bareNameOf(&block);
    if (isPlainName(name)) {
      out_ << name << ":\n";
    } else {
      out_ << quoteString(name) << ":\n";
    }
  }

  /// Render a value reference (without its type).
  std::string ref(const Value* v) {
    switch (v->kind()) {
    case Value::Kind::ConstantInt: {
      const auto* c = static_cast<const ConstantInt*>(v);
      if (c->type()->isInteger(1)) {
        return c->isZero() ? "false" : "true";
      }
      return std::to_string(c->value());
    }
    case Value::Kind::ConstantFP:
      return formatDouble(static_cast<const ConstantFP*>(v)->value());
    case Value::Kind::ConstantPointerNull:
      return "null";
    case Value::Kind::ConstantIntToPtr:
      return "inttoptr (i64 " +
             std::to_string(static_cast<const ConstantIntToPtr*>(v)->address()) +
             " to ptr)";
    case Value::Kind::Undef:
      return "undef";
    case Value::Kind::Function:
    case Value::Kind::GlobalVariable:
      return sigilName('@', v->name());
    case Value::Kind::BasicBlock:
      return numbering_.nameOf(v);
    case Value::Kind::Argument:
    case Value::Kind::Instruction:
      return numbering_.nameOf(v);
    case Value::Kind::ForwardRef:
      return "<forward-ref>";
    }
    return "<bad value>";
  }

  /// Render "type ref" for an operand.
  std::string typedRef(const Value* v) { return v->type()->str() + " " + ref(v); }

  void printInstruction(const Instruction& inst) {
    if (!inst.type()->isVoid()) {
      out_ << numbering_.nameOf(&inst) << " = ";
    }
    const Opcode op = inst.op();
    switch (op) {
    case Opcode::Ret:
      if (inst.numOperands() == 0) {
        out_ << "ret void";
      } else {
        out_ << "ret " << typedRef(inst.operand(0));
      }
      return;
    case Opcode::Br:
      if (inst.isConditionalBr()) {
        out_ << "br i1 " << ref(inst.brCondition()) << ", label "
             << ref(inst.operand(1)) << ", label " << ref(inst.operand(2));
      } else {
        out_ << "br label " << ref(inst.operand(0));
      }
      return;
    case Opcode::Switch: {
      out_ << "switch " << typedRef(inst.operand(0)) << ", label "
           << ref(inst.operand(1)) << " [";
      for (unsigned i = 0; i < inst.numSwitchCases(); ++i) {
        out_ << "\n    " << typedRef(inst.switchCaseValue(i)) << ", label "
             << ref(inst.switchCaseDest(i));
      }
      out_ << "\n  ]";
      return;
    }
    case Opcode::Unreachable:
      out_ << "unreachable";
      return;
    case Opcode::Alloca:
      out_ << "alloca " << inst.allocatedType()->str() << ", align 8";
      return;
    case Opcode::Load:
      out_ << "load " << inst.type()->str() << ", " << typedRef(inst.operand(0))
           << ", align " << std::max<std::uint64_t>(1, inst.type()->storeSize());
      return;
    case Opcode::Store:
      out_ << "store " << typedRef(inst.operand(0)) << ", "
           << typedRef(inst.operand(1)) << ", align "
           << std::max<std::uint64_t>(1, inst.operand(0)->type()->storeSize());
      return;
    case Opcode::ICmp:
      out_ << "icmp " << icmpPredName(inst.icmpPred()) << " "
           << typedRef(inst.operand(0)) << ", " << ref(inst.operand(1));
      return;
    case Opcode::FCmp:
      out_ << "fcmp " << fcmpPredName(inst.fcmpPred()) << " "
           << typedRef(inst.operand(0)) << ", " << ref(inst.operand(1));
      return;
    case Opcode::Phi: {
      out_ << "phi " << inst.type()->str() << " ";
      for (unsigned i = 0; i < inst.numIncoming(); ++i) {
        if (i != 0) {
          out_ << ", ";
        }
        out_ << "[ " << ref(inst.incomingValue(i)) << ", "
             << ref(inst.incomingBlock(i)) << " ]";
      }
      return;
    }
    case Opcode::Select:
      out_ << "select " << typedRef(inst.operand(0)) << ", "
           << typedRef(inst.operand(1)) << ", " << typedRef(inst.operand(2));
      return;
    case Opcode::Call: {
      out_ << "call " << inst.callee()->returnType()->str() << " "
           << sigilName('@', inst.callee()->name()) << "(";
      for (unsigned i = 0; i < inst.numOperands(); ++i) {
        if (i != 0) {
          out_ << ", ";
        }
        out_ << typedRef(inst.operand(i));
      }
      out_ << ")";
      return;
    }
    default:
      break;
    }
    if (isBinaryOp(op)) {
      out_ << opcodeName(op) << " " << typedRef(inst.operand(0)) << ", "
           << ref(inst.operand(1));
      return;
    }
    if (isCastOp(op)) {
      out_ << opcodeName(op) << " " << typedRef(inst.operand(0)) << " to "
           << inst.type()->str();
      return;
    }
    assert(false && "unhandled opcode in printer");
  }

  const Function& fn_;
  Numbering numbering_;
  std::ostringstream& out_;
  int attrGroup_ = -1;
};

} // namespace

std::string printFunction(const Function& fn) {
  std::ostringstream out;
  FunctionPrinter(fn, out).print();
  return out.str();
}

std::string printModule(const Module& module) {
  std::ostringstream out;
  out << "; ModuleID = '" << module.name() << "'\n";

  if (!module.globals().empty()) {
    out << "\n";
    for (const auto& global : module.globals()) {
      out << sigilName('@', global->name()) << " = internal"
          << (global->isConstant() ? " constant " : " global ")
          << global->valueType()->str() << " c"
          << quoteString(global->initializer()) << "\n";
    }
  }

  // Assign attribute groups: one per distinct non-empty attribute map.
  std::map<std::map<std::string, std::string>, int> attrGroups;
  for (const auto& fn : module.functions()) {
    if (!fn->attributes().empty()) {
      attrGroups.emplace(fn->attributes(), 0);
    }
  }
  int next = 0;
  for (auto& [attrs, id] : attrGroups) {
    id = next++;
  }

  for (const auto& fn : module.functions()) {
    out << "\n";
    FunctionPrinter printer(*fn, out);
    if (!fn->attributes().empty()) {
      printer.setAttrGroup(attrGroups.at(fn->attributes()));
    }
    printer.print();
  }

  if (!attrGroups.empty()) {
    out << "\n";
    for (const auto& [attrs, id] : attrGroups) {
      out << "attributes #" << id << " = {";
      for (const auto& [key, value] : attrs) {
        out << " " << quoteString(key);
        if (!value.empty()) {
          out << "=" << quoteString(value);
        }
      }
      out << " }\n";
    }
  }
  return out.str();
}

} // namespace qirkit::ir
