/// \file dominance.hpp
/// Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy), used by
/// the verifier (SSA dominance checking) and by mem2reg (phi placement).
#pragma once

#include "ir/module.hpp"

#include <map>
#include <vector>

namespace qirkit::ir {

/// Dominator tree of a function. Unreachable blocks have no entry and are
/// reported by unreachableBlocks().
class DomTree {
public:
  explicit DomTree(const Function& fn);

  /// Immediate dominator; nullptr for the entry block and unreachable blocks.
  [[nodiscard]] const BasicBlock* idom(const BasicBlock* block) const;

  /// True if \p a dominates \p b (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by everything (vacuous; callers should skip
  /// unreachable code).
  [[nodiscard]] bool dominates(const BasicBlock* a, const BasicBlock* b) const;

  /// True if instruction \p def dominates the use of it at \p user. Handles
  /// same-block ordering; for phi users, the use must dominate the end of
  /// the corresponding incoming block, which callers check separately via
  /// dominatesEdge().
  [[nodiscard]] bool dominatesUse(const Instruction* def, const Instruction* user) const;

  [[nodiscard]] bool isReachable(const BasicBlock* block) const;
  [[nodiscard]] std::vector<const BasicBlock*> unreachableBlocks() const;

  /// Blocks in reverse post order (entry first); unreachable blocks omitted.
  [[nodiscard]] const std::vector<const BasicBlock*>& reversePostOrder() const noexcept {
    return rpo_;
  }

  /// Dominance frontier of each reachable block. Computed lazily on first
  /// use (it costs O(preds * tree depth) — only mem2reg needs it).
  [[nodiscard]] const std::vector<const BasicBlock*>&
  frontier(const BasicBlock* block) const;

private:
  void computeIntervals();
  void computeFrontiers() const;

  const Function& fn_;
  std::vector<const BasicBlock*> rpo_;
  std::map<const BasicBlock*, std::size_t> rpoIndex_;
  std::map<const BasicBlock*, const BasicBlock*> idom_;
  mutable bool frontiersComputed_ = false;
  mutable std::map<const BasicBlock*, std::vector<const BasicBlock*>> frontiers_;
  // Dominator-tree DFS intervals: a dominates b iff in[a] <= in[b] and
  // out[b] <= out[a]. Makes dominates() O(log n) instead of an idom-chain
  // walk (which is O(depth) — quadratic on the long chains unrolling
  // produces).
  std::map<const BasicBlock*, std::pair<std::uint32_t, std::uint32_t>> intervals_;
  std::vector<const BasicBlock*> emptyFrontier_;
};

} // namespace qirkit::ir
