/// \file module.hpp
/// Functions, globals, and the Module that owns them.
#pragma once

#include "ir/context.hpp"
#include "ir/instruction.hpp"

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace qirkit::ir {

class Module;

/// A formal parameter of a Function.
class Argument final : public Value {
public:
  [[nodiscard]] unsigned index() const noexcept { return index_; }
  [[nodiscard]] Function* parent() const noexcept { return parent_; }

  static bool classof(const Value* v) noexcept { return v->kind() == Kind::Argument; }

private:
  friend class Function;
  Argument(const Type* type, unsigned index, Function* parent)
      : Value(Kind::Argument, type), index_(index), parent_(parent) {}
  unsigned index_;
  Function* parent_;
};

/// A global variable. The subset models what QIR output recording needs:
/// internal constant byte arrays (string labels). The Value's type is ptr.
class GlobalVariable final : public Value {
public:
  [[nodiscard]] const Type* valueType() const noexcept { return valueType_; }
  /// Raw initializer bytes (the c"..." payload, including any trailing NUL).
  [[nodiscard]] const std::string& initializer() const noexcept { return init_; }
  [[nodiscard]] bool isConstant() const noexcept { return isConstant_; }

  static bool classof(const Value* v) noexcept {
    return v->kind() == Kind::GlobalVariable;
  }

private:
  friend class Module;
  GlobalVariable(const Type* ptrType, const Type* valueType, std::string init,
                 bool isConstant)
      : Value(Kind::GlobalVariable, ptrType), valueType_(valueType),
        init_(std::move(init)), isConstant_(isConstant) {}
  const Type* valueType_;
  std::string init_;
  bool isConstant_;
};

/// A function: declaration (no body) or definition (entry block first).
/// Attributes are an open string map; QIR entry points carry
/// "entry_point", "qir_profiles", "required_num_qubits",
/// "required_num_results", etc.
class Function final : public Value {
public:
  /// Detaches every instruction from its operands before the blocks are
  /// destroyed — back edges (and phis) reference earlier blocks, which
  /// would otherwise be freed while still in use lists.
  ~Function() override;

  [[nodiscard]] Module* parent() const noexcept { return parent_; }
  [[nodiscard]] const Type* functionType() const noexcept { return functionType_; }
  [[nodiscard]] const Type* returnType() const noexcept {
    return functionType_->returnType();
  }

  [[nodiscard]] bool isDeclaration() const noexcept { return blocks_.empty(); }

  // -- Arguments --------------------------------------------------------
  [[nodiscard]] unsigned numArgs() const noexcept {
    return static_cast<unsigned>(args_.size());
  }
  [[nodiscard]] Argument* arg(unsigned i) const { return args_.at(i).get(); }

  // -- Blocks ------------------------------------------------------------
  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>>& blocks()
      const noexcept {
    return blocks_;
  }
  [[nodiscard]] BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  /// Create a new block appended at the end. \p name may be empty.
  BasicBlock* createBlock(std::string name = {});
  /// Create a new block inserted after \p after.
  BasicBlock* createBlockAfter(BasicBlock* after, std::string name = {});
  /// Destroy \p block; it must have no uses and hold no used instructions.
  void eraseBlock(BasicBlock* block);
  /// Move \p block to just after \p after in the layout order.
  void moveBlockAfter(BasicBlock* block, BasicBlock* after);
  [[nodiscard]] std::size_t blockIndexOf(const BasicBlock* block) const;

  // -- Attributes --------------------------------------------------------
  [[nodiscard]] const std::map<std::string, std::string>& attributes() const noexcept {
    return attrs_;
  }
  void setAttribute(std::string key, std::string value = {}) {
    attrs_[std::move(key)] = std::move(value);
  }
  [[nodiscard]] bool hasAttribute(std::string_view key) const {
    return attrs_.find(std::string(key)) != attrs_.end();
  }
  [[nodiscard]] std::string getAttribute(std::string_view key) const {
    const auto it = attrs_.find(std::string(key));
    return it == attrs_.end() ? std::string{} : it->second;
  }

  /// Total instruction count across all blocks.
  [[nodiscard]] std::size_t instructionCount() const noexcept;

  static bool classof(const Value* v) noexcept { return v->kind() == Kind::Function; }

private:
  friend class Module;
  Function(Module* parent, const Type* functionType, const Type* ptrType,
           std::string name);

  Module* parent_;
  const Type* functionType_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::map<std::string, std::string> attrs_;
};

/// A translation unit: globals plus functions, owned, with name lookup.
class Module {
public:
  explicit Module(Context& context, std::string name = "module")
      : context_(&context), name_(std::move(name)) {}

  [[nodiscard]] Context& context() const noexcept { return *context_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // -- Functions --------------------------------------------------------
  /// Create a function (declaration until blocks are added). Fails if the
  /// name is taken.
  Function* createFunction(std::string name, const Type* functionType);
  /// Find a function by name, or nullptr.
  [[nodiscard]] Function* getFunction(std::string_view name) const;
  /// Find a function by name or create a declaration with \p functionType.
  Function* getOrInsertFunction(std::string_view name, const Type* functionType);
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions()
      const noexcept {
    return functions_;
  }
  /// Remove \p fn from the module; it must have no uses (no remaining calls).
  void eraseFunction(Function* fn);

  /// First function carrying the "entry_point" attribute, or nullptr.
  [[nodiscard]] Function* entryPoint() const;

  // -- Globals ------------------------------------------------------------
  /// Create a constant byte-array global (e.g. an output label).
  GlobalVariable* createGlobalString(std::string name, std::string bytes);
  [[nodiscard]] GlobalVariable* getGlobal(std::string_view name) const;
  [[nodiscard]] const std::vector<std::unique_ptr<GlobalVariable>>& globals()
      const noexcept {
    return globals_;
  }

  /// Total instruction count across all functions.
  [[nodiscard]] std::size_t instructionCount() const noexcept;

private:
  Context* context_;
  std::string name_;
  // Note: globals_ is declared before functions_ so that it is destroyed
  // *after* them — instructions hold use-list edges into globals, which
  // must stay alive while the instructions detach.
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::vector<std::unique_ptr<Function>> functions_;
};

} // namespace qirkit::ir
