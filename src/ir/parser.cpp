#include "ir/parser.hpp"

#include "ir/builder.hpp"
#include "support/source_location.hpp"
#include "support/string_utils.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace qirkit::ir {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  Eof,
  Ident,     // bare word: define, i64, add, entry, ...
  LocalVar,  // %name / %42 / %"quoted"
  GlobalVar, // @name / @"quoted"
  AttrRef,   // #42
  Int,       // 123, -7
  Float,     // 1.0, 2.5e-3, 0x3FF0000000000000
  CString,   // c"..."
  String,    // "..."
  Metadata,  // !anything
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Equal,
  Colon,
  Star,
  Ellipsis,
};

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;    // decoded payload (without sigils/quotes)
  std::int64_t intVal = 0;
  double floatVal = 0.0;
  SourceLoc loc;
};

class Lexer {
public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> lexAll() {
    std::vector<Token> tokens;
    while (true) {
      Token tok = next();
      const bool done = tok.kind == TokKind::Eof;
      tokens.push_back(std::move(tok));
      if (done) {
        return tokens;
      }
    }
  }

private:
  [[nodiscard]] SourceLoc loc() const noexcept { return {line_, col_}; }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skipTrivia() {
    while (!atEnd()) {
      const char c = peek();
      if (c == ';') { // comment to end of line
        while (!atEnd() && peek() != '\n') {
          advance();
        }
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else {
        return;
      }
    }
  }

  Token make(TokKind kind, std::string text = {}) {
    Token tok;
    tok.kind = kind;
    tok.text = std::move(text);
    tok.loc = startLoc_;
    return tok;
  }

  [[noreturn]] void fail(const std::string& message) {
    throw qirkit::ParseError(loc(), message);
  }

  std::string lexQuoted() {
    assert(peek() == '"');
    advance();
    std::string out;
    while (true) {
      if (atEnd()) {
        fail("unterminated string");
      }
      const char c = advance();
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (peek() == '\\') {
          advance();
          out.push_back('\\');
          continue;
        }
        // \xx hex escape
        const auto hex = [this](char h) -> int {
          if (h >= '0' && h <= '9') {
            return h - '0';
          }
          if (h >= 'a' && h <= 'f') {
            return h - 'a' + 10;
          }
          if (h >= 'A' && h <= 'F') {
            return h - 'A' + 10;
          }
          fail("invalid hex escape in string");
        };
        const int hi = hex(advance());
        const int lo = hex(advance());
        out.push_back(static_cast<char>(hi * 16 + lo));
      } else {
        out.push_back(c);
      }
    }
  }

  std::string lexName() {
    // name after a sigil: bare ident, number, or quoted.
    if (peek() == '"') {
      return lexQuoted();
    }
    std::string out;
    while (!atEnd() && isIdentChar(peek())) {
      out.push_back(advance());
    }
    if (out.empty()) {
      fail("expected name after sigil");
    }
    return out;
  }

  Token lexNumber() {
    std::string text;
    if (peek() == '-' || peek() == '+') {
      text.push_back(advance());
    }
    // Hex float: 0x<16 hex digits> encodes a double's bit pattern.
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      std::uint64_t bits = 0;
      int digits = 0;
      while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())) != 0) {
        const char h = advance();
        bits = bits * 16 +
               static_cast<std::uint64_t>(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
        ++digits;
      }
      if (digits == 0) {
        fail("malformed hex constant");
      }
      double value = 0.0;
      std::memcpy(&value, &bits, sizeof value);
      if (!text.empty() && text[0] == '-') {
        value = -value;
      }
      Token tok = make(TokKind::Float);
      tok.floatVal = value;
      return tok;
    }
    bool isFloat = false;
    while (!atEnd()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        text.push_back(advance());
      } else if (c == '.' || c == 'e' || c == 'E') {
        isFloat = true;
        text.push_back(advance());
        if ((c == 'e' || c == 'E') && (peek() == '+' || peek() == '-')) {
          text.push_back(advance());
        }
      } else {
        break;
      }
    }
    if (isFloat) {
      const auto value = parseDouble(text);
      if (!value) {
        fail("malformed float literal '" + text + "'");
      }
      Token tok = make(TokKind::Float);
      tok.floatVal = *value;
      return tok;
    }
    const auto value = parseInt(text);
    if (!value) {
      fail("malformed integer literal '" + text + "'");
    }
    Token tok = make(TokKind::Int);
    tok.intVal = *value;
    return tok;
  }

  Token next() {
    skipTrivia();
    startLoc_ = loc();
    if (atEnd()) {
      return make(TokKind::Eof);
    }
    const char c = peek();
    switch (c) {
    case '(': advance(); return make(TokKind::LParen);
    case ')': advance(); return make(TokKind::RParen);
    case '{': advance(); return make(TokKind::LBrace);
    case '}': advance(); return make(TokKind::RBrace);
    case '[': advance(); return make(TokKind::LBracket);
    case ']': advance(); return make(TokKind::RBracket);
    case ',': advance(); return make(TokKind::Comma);
    case '=': advance(); return make(TokKind::Equal);
    case ':': advance(); return make(TokKind::Colon);
    case '*': advance(); return make(TokKind::Star);
    case '%': advance(); return make(TokKind::LocalVar, lexName());
    case '@': advance(); return make(TokKind::GlobalVar, lexName());
    case '"': return make(TokKind::String, lexQuoted());
    case '#': {
      advance();
      Token tok = lexNumber();
      if (tok.kind != TokKind::Int) {
        fail("expected number after '#'");
      }
      tok.kind = TokKind::AttrRef;
      return tok;
    }
    case '!': {
      advance();
      // Consume the metadata payload: an ident, number, or quoted string.
      std::string text;
      if (peek() == '"') {
        text = lexQuoted();
      } else if (peek() == '{') {
        // metadata node !{...}: consume balanced braces
        int depth = 0;
        do {
          const char m = advance();
          if (m == '{') {
            ++depth;
          } else if (m == '}') {
            --depth;
          }
        } while (!atEnd() && depth > 0);
      } else {
        while (!atEnd() && isIdentChar(peek())) {
          text.push_back(advance());
        }
      }
      return make(TokKind::Metadata, std::move(text));
    }
    default:
      break;
    }
    if (c == '.' && peek(1) == '.' && peek(2) == '.') {
      advance();
      advance();
      advance();
      return make(TokKind::Ellipsis);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      return lexNumber();
    }
    if (c == 'c' && peek(1) == '"') {
      advance();
      return make(TokKind::CString, lexQuoted());
    }
    if (isIdentStart(c)) {
      std::string text;
      while (!atEnd() && isIdentChar(peek())) {
        text.push_back(advance());
      }
      return make(TokKind::Ident, std::move(text));
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
  SourceLoc startLoc_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Placeholder for a local value referenced before its definition.
class ForwardRefValue final : public Value {
public:
  explicit ForwardRefValue(const Type* type) : Value(Kind::ForwardRef, type) {}
};

/// Keywords that may decorate parameters/operands and carry no meaning in
/// the subset.
const std::set<std::string_view> kParamAttrs = {
    "writeonly", "readonly",  "readnone",   "nocapture",       "noundef",
    "nonnull",   "signext",   "zeroext",    "returned",        "noalias",
    "nofree",    "immarg",    "byval",      "sret",            "inreg",
    "captures",  "dead_on_return"};

/// Linkage/visibility/etc. keywords to skip in global & function headers.
const std::set<std::string_view> kHeaderSkip = {
    "private",   "internal",    "external", "linkonce", "linkonce_odr",
    "weak",      "weak_odr",    "common",   "appending", "extern_weak",
    "dso_local", "dso_preemptable", "hidden", "protected", "default",
    "unnamed_addr", "local_unnamed_addr", "global", "constant",
    "tail", "musttail", "notail", "fastcc", "ccc", "coldcc"};

class Parser {
public:
  Parser(Context& context, std::vector<Token> tokens, std::string moduleName)
      : ctx_(context), tokens_(std::move(tokens)),
        module_(std::make_unique<Module>(context, std::move(moduleName))) {}

  std::unique_ptr<Module> run() {
    registerSignatures();
    while (!at(TokKind::Eof)) {
      parseTopLevel();
    }
    applyPendingAttributes();
    return std::move(module_);
  }

private:
  // -- token cursor ---------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] const Token& peek(std::size_t ahead = 1) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokKind kind) const { return cur().kind == kind; }
  [[nodiscard]] bool atIdent(std::string_view text) const {
    return cur().kind == TokKind::Ident && cur().text == text;
  }
  Token take() { return tokens_[pos_++]; }
  void expect(TokKind kind, const char* what) {
    if (!at(kind)) {
      fail(std::string("expected ") + what);
    }
    ++pos_;
  }
  bool accept(TokKind kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool acceptIdent(std::string_view text) {
    if (atIdent(text)) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw qirkit::ParseError(cur().loc, message + " (got '" +
                                            (cur().kind == TokKind::Eof ? "<eof>"
                                                                        : cur().text) +
                                            "')");
  }

  // -- pre-pass: register type aliases and all function signatures ------------
  void registerSignatures() {
    const std::size_t saved = pos_;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::LocalVar) && peek().kind == TokKind::Equal &&
          peek(2).kind == TokKind::Ident && peek(2).text == "type") {
        opaqueAliases_.insert(cur().text);
        pos_ += 3;
      } else if (atIdent("declare") || atIdent("define")) {
        ++pos_;
        skipHeaderKeywords();
        const Type* retType = parseType();
        skipParamAttrs();
        if (!at(TokKind::GlobalVar)) {
          fail("expected function name");
        }
        const std::string name = take().text;
        expect(TokKind::LParen, "'('");
        std::vector<const Type*> params;
        if (!at(TokKind::RParen)) {
          do {
            if (at(TokKind::Ellipsis)) {
              fail("varargs functions are outside the supported QIR subset");
            }
            params.push_back(parseType());
            skipParamAttrs();
            if (at(TokKind::LocalVar)) {
              ++pos_; // parameter name; re-read in pass 2
            }
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "')'");
        module_->getOrInsertFunction(name, ctx_.functionTy(retType, std::move(params)));
      } else {
        ++pos_;
      }
    }
    pos_ = saved;
  }

  // -- top level ---------------------------------------------------------
  void parseTopLevel() {
    if (acceptIdent("source_filename")) {
      expect(TokKind::Equal, "'='");
      ++pos_; // the filename string
      return;
    }
    if (acceptIdent("target")) {
      ++pos_; // 'datalayout' / 'triple'
      expect(TokKind::Equal, "'='");
      ++pos_; // the value string
      return;
    }
    if (at(TokKind::Metadata)) {
      // module-level metadata: `!name = !{...}` — payload already consumed
      ++pos_;
      if (accept(TokKind::Equal)) {
        while (at(TokKind::Metadata)) {
          ++pos_;
        }
      }
      return;
    }
    if (atIdent("attributes")) {
      parseAttributeGroup();
      return;
    }
    if (atIdent("declare")) {
      parseFunctionHeader(/*isDefine=*/false);
      return;
    }
    if (atIdent("define")) {
      parseFunctionHeader(/*isDefine=*/true);
      return;
    }
    if (at(TokKind::GlobalVar)) {
      parseGlobal();
      return;
    }
    if (at(TokKind::LocalVar)) {
      parseTypeAlias();
      return;
    }
    fail("unexpected top-level construct");
  }

  void parseTypeAlias() {
    // %Name = type opaque   (legacy QIR spelling for %Qubit / %Result)
    const std::string name = take().text;
    expect(TokKind::Equal, "'='");
    if (!acceptIdent("type")) {
      fail("expected 'type' in type alias");
    }
    if (acceptIdent("opaque")) {
      opaqueAliases_.insert(name);
      return;
    }
    fail("only opaque type aliases are supported");
  }

  void parseGlobal() {
    const std::string name = take().text;
    expect(TokKind::Equal, "'='");
    skipHeaderKeywords();
    const Type* valueType = parseType();
    if (at(TokKind::CString)) {
      const std::string bytes = take().text;
      if (!valueType->isArray() || !valueType->elementType()->isInteger(8) ||
          valueType->arrayCount() != bytes.size()) {
        fail("global initializer size does not match its type");
      }
      module_->createGlobalString(name, bytes);
    } else if (acceptIdent("zeroinitializer")) {
      if (!valueType->isArray() || !valueType->elementType()->isInteger(8)) {
        fail("only byte-array globals are supported");
      }
      module_->createGlobalString(name, std::string(valueType->arrayCount(), '\0'));
    } else {
      fail("unsupported global initializer (subset supports c\"...\" byte arrays)");
    }
    skipInstructionSuffix();
  }

  void parseAttributeGroup() {
    acceptIdent("attributes");
    if (!at(TokKind::AttrRef)) {
      fail("expected '#N' after 'attributes'");
    }
    const int id = static_cast<int>(take().intVal);
    expect(TokKind::Equal, "'='");
    expect(TokKind::LBrace, "'{'");
    std::map<std::string, std::string>& attrs = attrGroups_[id];
    while (!accept(TokKind::RBrace)) {
      std::string key;
      if (at(TokKind::String)) {
        key = take().text;
      } else if (at(TokKind::Ident)) {
        key = take().text;
      } else {
        fail("expected attribute");
      }
      std::string value;
      if (accept(TokKind::Equal)) {
        if (at(TokKind::String)) {
          value = take().text;
        } else if (at(TokKind::Int)) {
          value = std::to_string(take().intVal);
        } else {
          fail("expected attribute value");
        }
      } else if (accept(TokKind::LParen)) { // e.g. allockind("...")
        while (!accept(TokKind::RParen)) {
          ++pos_;
        }
      }
      attrs.emplace(std::move(key), std::move(value));
    }
  }

  void skipHeaderKeywords() {
    while (at(TokKind::Ident) && kHeaderSkip.count(cur().text) != 0) {
      ++pos_;
    }
  }

  void skipParamAttrs() {
    while (true) {
      if (at(TokKind::Ident) && kParamAttrs.count(cur().text) != 0) {
        ++pos_;
        if (accept(TokKind::LParen)) { // e.g. captures(none), byval(ty)
          int depth = 1;
          while (depth > 0) {
            if (at(TokKind::LParen)) {
              ++depth;
            } else if (at(TokKind::RParen)) {
              --depth;
            } else if (at(TokKind::Eof)) {
              fail("unterminated attribute argument list");
            }
            ++pos_;
          }
        }
        continue;
      }
      if (atIdent("align") &&
          (peek().kind == TokKind::Int)) {
        pos_ += 2;
        continue;
      }
      if (atIdent("dereferenceable") && peek().kind == TokKind::LParen) {
        pos_ += 3; // dereferenceable ( N
        expect(TokKind::RParen, "')'");
        continue;
      }
      return;
    }
  }

  // -- types ------------------------------------------------------------
  const Type* parseType() {
    if (at(TokKind::Ident)) {
      const std::string& text = cur().text;
      if (text == "void") {
        ++pos_;
        return ctx_.voidTy();
      }
      if (text == "double") {
        ++pos_;
        return maybePointer(ctx_.doubleTy());
      }
      if (text == "float") {
        fail("float is outside the supported subset (use double)");
      }
      if (text == "ptr") {
        ++pos_;
        return ctx_.ptrTy();
      }
      if (text == "label") {
        ++pos_;
        return ctx_.labelTy();
      }
      if (text.size() > 1 && text[0] == 'i') {
        const auto bits = parseInt(std::string_view(text).substr(1));
        if (bits && *bits > 0 && *bits <= 64) {
          ++pos_;
          return maybePointer(ctx_.intTy(static_cast<unsigned>(*bits)));
        }
      }
      fail("unknown type '" + text + "'");
    }
    if (at(TokKind::LBracket)) {
      ++pos_;
      if (!at(TokKind::Int)) {
        fail("expected array length");
      }
      const std::uint64_t count = static_cast<std::uint64_t>(take().intVal);
      if (!acceptIdent("x")) {
        fail("expected 'x' in array type");
      }
      const Type* element = parseType();
      expect(TokKind::RBracket, "']'");
      return maybePointer(ctx_.arrayTy(element, count));
    }
    if (at(TokKind::LocalVar)) {
      // Legacy named opaque type, e.g. %Qubit; must be used as a pointer.
      const std::string name = take().text;
      if (opaqueAliases_.count(name) == 0) {
        fail("unknown named type %" + name);
      }
      if (!accept(TokKind::Star)) {
        fail("opaque named types may only appear as pointers (%" + name + "*)");
      }
      return ctx_.ptrTy();
    }
    fail("expected type");
  }

  /// Accept trailing '*' (legacy typed-pointer syntax) mapping to ptr.
  const Type* maybePointer(const Type* type) {
    if (accept(TokKind::Star)) {
      while (accept(TokKind::Star)) {
      }
      return ctx_.ptrTy();
    }
    return type;
  }

  // -- function bodies --------------------------------------------------------
  void parseFunctionHeader(bool isDefine) {
    ++pos_; // 'declare' / 'define'
    skipHeaderKeywords();
    const Type* retType = parseType();
    skipParamAttrs();
    if (!at(TokKind::GlobalVar)) {
      fail("expected function name");
    }
    const std::string name = take().text;
    Function* fn = module_->getFunction(name);
    assert(fn != nullptr && "pre-pass registered every signature");
    (void)retType;
    expect(TokKind::LParen, "'('");
    std::vector<std::string> paramNames;
    if (!at(TokKind::RParen)) {
      do {
        (void)parseType();
        skipParamAttrs();
        std::string paramName;
        if (at(TokKind::LocalVar)) {
          paramName = take().text;
        }
        paramNames.push_back(std::move(paramName));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "')'");
    // Trailing function attributes: #N refs and inline keywords.
    while (true) {
      if (at(TokKind::AttrRef)) {
        const Token ref = take();
        pendingAttrRefs_.push_back(
            {fn, static_cast<int>(ref.intVal), ref.loc});
        continue;
      }
      if (at(TokKind::Ident) && cur().text != "define" && cur().text != "declare" &&
          cur().text != "attributes" && !at(TokKind::LBrace)) {
        // e.g. nounwind; also "section" "..." pairs
        const std::string kw = take().text;
        if (kw == "section" || kw == "comdat" || kw == "gc") {
          if (at(TokKind::String)) {
            ++pos_;
          }
        } else {
          fn->setAttribute(kw);
        }
        continue;
      }
      break;
    }
    if (!isDefine) {
      return;
    }
    for (unsigned i = 0; i < fn->numArgs() && i < paramNames.size(); ++i) {
      if (!paramNames[i].empty()) {
        fn->arg(i)->setName(paramNames[i]);
      }
    }
    parseBody(fn, paramNames);
  }

  void parseBody(Function* fn, const std::vector<std::string>& paramNames) {
    expect(TokKind::LBrace, "'{'");
    locals_.clear();
    forwardRefs_.clear();
    blocksByName_.clear();
    valueRefLocs_.clear();
    blockRefLocs_.clear();
    definedBlocks_.clear();
    fn_ = fn;
    for (unsigned i = 0; i < fn->numArgs(); ++i) {
      if (i < paramNames.size() && !paramNames[i].empty()) {
        locals_[paramNames[i]] = fn->arg(i);
      }
    }

    BasicBlock* current = nullptr;
    while (!accept(TokKind::RBrace)) {
      if (at(TokKind::Eof)) {
        fail("unterminated function body");
      }
      // Block label?
      if ((at(TokKind::Ident) || at(TokKind::Int) || at(TokKind::String)) &&
          peek().kind == TokKind::Colon) {
        std::string label = at(TokKind::Int) ? std::to_string(cur().intVal) : cur().text;
        ++pos_;
        expect(TokKind::Colon, "':'");
        current = defineBlock(label);
        continue;
      }
      if (current == nullptr) {
        // Implicit entry block without a label.
        current = fn->createBlock();
        definedBlocks_.push_back(current);
      }
      parseInstruction(current);
    }

    finalizeBlocks();
    resolveForwardRefs();
    fn_ = nullptr;
  }

  BasicBlock* getOrCreateBlock(const std::string& name, SourceLoc loc = {}) {
    auto& slot = blocksByName_[name];
    if (slot == nullptr) {
      slot = fn_->createBlock(name);
      blockRefLocs_[name] = loc;
    }
    return slot;
  }

  BasicBlock* defineBlock(const std::string& name) {
    BasicBlock* block = getOrCreateBlock(name);
    for (BasicBlock* defined : definedBlocks_) {
      if (defined == block) {
        fail("redefinition of label '" + name + "'");
      }
    }
    definedBlocks_.push_back(block);
    return block;
  }

  void finalizeBlocks() {
    // Every referenced block must have been defined; reorder the function's
    // blocks into source order.
    for (const auto& [name, block] : blocksByName_) {
      bool defined = false;
      for (const BasicBlock* d : definedBlocks_) {
        if (d == block) {
          defined = true;
          break;
        }
      }
      if (!defined) {
        throw qirkit::ParseError(blockRefLocs_[name],
                                 "use of undefined label '%" + name + "'");
      }
    }
    // Reorder: walk definedBlocks_ and bubble each into place.
    BasicBlock* previous = nullptr;
    for (BasicBlock* block : definedBlocks_) {
      if (previous != nullptr) {
        fn_->moveBlockAfter(block, previous);
      } else if (fn_->entry() != block) {
        // Move to front: move everything else after it.
        std::vector<BasicBlock*> rest;
        for (const auto& b : fn_->blocks()) {
          if (b.get() != block) {
            rest.push_back(b.get());
          }
        }
        BasicBlock* anchor = block;
        for (BasicBlock* b : rest) {
          fn_->moveBlockAfter(b, anchor);
          anchor = b;
        }
      }
      previous = block;
    }
  }

  void resolveForwardRefs() {
    for (auto& [name, placeholder] : forwardRefs_) {
      if (placeholder == nullptr) {
        continue; // already resolved
      }
      throw qirkit::ParseError(valueRefLocs_[name],
                               "use of undefined value '%" + name + "'");
    }
    forwardRefOwner_.clear();
  }

  Value* defineLocal(const std::string& name, Value* value) {
    value->setName(name);
    auto [it, inserted] = locals_.emplace(name, value);
    if (!inserted) {
      fail("redefinition of '%" + name + "'");
    }
    const auto fwd = forwardRefs_.find(name);
    if (fwd != forwardRefs_.end() && fwd->second != nullptr) {
      fwd->second->replaceAllUsesWith(value);
      fwd->second = nullptr;
    }
    return value;
  }

  Value* lookupLocal(const std::string& name, const Type* type,
                     SourceLoc loc = {}) {
    const auto it = locals_.find(name);
    if (it != locals_.end()) {
      return it->second;
    }
    auto& slot = forwardRefs_[name];
    if (slot == nullptr) {
      auto owned = std::make_unique<ForwardRefValue>(type);
      slot = owned.get();
      forwardRefOwner_.push_back(std::move(owned));
      valueRefLocs_[name] = loc;
    }
    return slot;
  }

  // -- operands ----------------------------------------------------------
  Value* parseValueRef(const Type* type) {
    skipParamAttrs();
    if (at(TokKind::LocalVar)) {
      const Token ref = take();
      return lookupLocal(ref.text, type, ref.loc);
    }
    if (at(TokKind::GlobalVar)) {
      const std::string name = take().text;
      if (Function* fn = module_->getFunction(name)) {
        return fn;
      }
      if (GlobalVariable* g = module_->getGlobal(name)) {
        return g;
      }
      fail("use of undefined global '@" + name + "'");
    }
    if (at(TokKind::Int)) {
      if (type->isDouble()) {
        const double v = static_cast<double>(take().intVal);
        return ctx_.getDouble(v);
      }
      if (!type->isInteger()) {
        fail("integer literal for non-integer type " + type->str());
      }
      return ctx_.getInt(type->bits(), take().intVal);
    }
    if (at(TokKind::Float)) {
      if (!type->isDouble()) {
        fail("float literal for non-double type " + type->str());
      }
      return ctx_.getDouble(take().floatVal);
    }
    if (atIdent("true") || atIdent("false")) {
      if (!type->isInteger(1)) {
        fail("boolean literal for non-i1 type");
      }
      return ctx_.getI1(take().text == "true");
    }
    if (acceptIdent("null")) {
      if (!type->isPointer()) {
        fail("'null' literal for non-pointer type");
      }
      return ctx_.getNullPtr();
    }
    if (acceptIdent("undef") || acceptIdent("poison")) {
      return ctx_.getUndef(type);
    }
    if (atIdent("inttoptr")) {
      // inttoptr (i64 N to ptr)
      ++pos_;
      expect(TokKind::LParen, "'('");
      const Type* srcType = parseType();
      if (!srcType->isInteger()) {
        fail("expected integer type in inttoptr expression");
      }
      std::int64_t raw = 0;
      if (at(TokKind::Int)) {
        raw = take().intVal;
      } else if (at(TokKind::LocalVar)) {
        // The paper's Ex. 4 writes `inttoptr (i64 %2 to ptr)` informally;
        // a non-constant operand is not a constant expression.
        fail("inttoptr constant expression requires a constant operand; use "
             "an inttoptr instruction for dynamic values");
      } else {
        fail("expected integer constant in inttoptr expression");
      }
      if (!acceptIdent("to")) {
        fail("expected 'to' in inttoptr expression");
      }
      const Type* dstType = parseType();
      if (!dstType->isPointer()) {
        fail("inttoptr must produce ptr");
      }
      expect(TokKind::RParen, "')'");
      return ctx_.getIntToPtr(static_cast<std::uint64_t>(raw));
    }
    fail("expected value");
  }

  BasicBlock* parseBlockRef() {
    if (!acceptIdent("label")) {
      fail("expected 'label'");
    }
    if (!at(TokKind::LocalVar)) {
      fail("expected label name");
    }
    const Token label = take();
    return getOrCreateBlock(label.text, label.loc);
  }

  void skipInstructionSuffix() {
    // `, align N`, `, !dbg !7`, ... until something that is not a known
    // suffix.
    while (at(TokKind::Comma)) {
      if (peek().kind == TokKind::Metadata) {
        ++pos_; // comma
        ++pos_; // !name
        if (at(TokKind::Metadata)) {
          ++pos_; // !N
        }
        continue;
      }
      if (peek().kind == TokKind::Ident && peek().text == "align") {
        pos_ += 2; // , align
        expect(TokKind::Int, "alignment");
        continue;
      }
      break;
    }
    while (at(TokKind::Metadata)) {
      ++pos_;
    }
  }

  // -- instructions --------------------------------------------------------
  void parseInstruction(BasicBlock* block) {
    IRBuilder builder(block);
    std::string resultName;
    bool hasResult = false;
    if (at(TokKind::LocalVar) && peek().kind == TokKind::Equal) {
      resultName = take().text;
      ++pos_; // '='
      hasResult = true;
    }

    // Optional call markers.
    while (atIdent("tail") || atIdent("musttail") || atIdent("notail")) {
      ++pos_;
    }

    if (!at(TokKind::Ident)) {
      fail("expected instruction");
    }
    const std::string op = take().text;
    Instruction* inst = nullptr;

    const auto binOp = binOpFromName(op);
    const auto castOp = castOpFromName(op);

    if (op == "ret") {
      if (acceptIdent("void")) {
        inst = builder.createRetVoid();
      } else {
        const Type* type = parseType();
        inst = builder.createRet(parseValueRef(type));
      }
    } else if (op == "br") {
      if (atIdent("label")) {
        inst = builder.createBr(parseBlockRef());
      } else {
        const Type* type = parseType();
        if (!type->isInteger(1)) {
          fail("br condition must be i1");
        }
        Value* cond = parseValueRef(type);
        expect(TokKind::Comma, "','");
        BasicBlock* ifTrue = parseBlockRef();
        expect(TokKind::Comma, "','");
        BasicBlock* ifFalse = parseBlockRef();
        inst = builder.createCondBr(cond, ifTrue, ifFalse);
      }
    } else if (op == "switch") {
      const Type* type = parseType();
      Value* cond = parseValueRef(type);
      expect(TokKind::Comma, "','");
      BasicBlock* defaultDest = parseBlockRef();
      Instruction* sw = builder.createSwitch(cond, defaultDest);
      expect(TokKind::LBracket, "'['");
      while (!accept(TokKind::RBracket)) {
        const Type* caseType = parseType();
        Value* caseValue = parseValueRef(caseType);
        if (caseValue->kind() != Value::Kind::ConstantInt) {
          fail("switch case value must be an integer constant");
        }
        expect(TokKind::Comma, "','");
        BasicBlock* dest = parseBlockRef();
        sw->addOperand(caseValue);
        sw->addOperand(dest);
      }
      inst = sw;
    } else if (op == "unreachable") {
      inst = builder.createUnreachable();
    } else if (binOp) {
      // Skip wrap/exactness flags.
      while (atIdent("nuw") || atIdent("nsw") || atIdent("exact") ||
             atIdent("disjoint") || atIdent("fast") || atIdent("reassoc") ||
             atIdent("nnan") || atIdent("ninf") || atIdent("nsz") ||
             atIdent("arcp") || atIdent("contract") || atIdent("afn")) {
        ++pos_;
      }
      const Type* type = parseType();
      Value* lhs = parseValueRef(type);
      expect(TokKind::Comma, "','");
      Value* rhs = parseValueRef(type);
      inst = builder.createBinOp(*binOp, lhs, rhs);
    } else if (op == "alloca") {
      const Type* allocated = parseType();
      inst = builder.createAlloca(allocated);
    } else if (op == "load") {
      const Type* type = parseType();
      expect(TokKind::Comma, "','");
      const Type* ptrType = parseType();
      if (!ptrType->isPointer()) {
        fail("load pointer operand must be ptr");
      }
      inst = builder.createLoad(type, parseValueRef(ptrType));
    } else if (op == "store") {
      const Type* valueType = parseType();
      Value* value = parseValueRef(valueType);
      expect(TokKind::Comma, "','");
      const Type* ptrType = parseType();
      if (!ptrType->isPointer()) {
        fail("store pointer operand must be ptr");
      }
      inst = builder.createStore(value, parseValueRef(ptrType));
    } else if (op == "icmp") {
      const ICmpPred pred = parseICmpPred();
      const Type* type = parseType();
      Value* lhs = parseValueRef(type);
      expect(TokKind::Comma, "','");
      inst = builder.createICmp(pred, lhs, parseValueRef(type));
    } else if (op == "fcmp") {
      const FCmpPred pred = parseFCmpPred();
      const Type* type = parseType();
      Value* lhs = parseValueRef(type);
      expect(TokKind::Comma, "','");
      inst = builder.createFCmp(pred, lhs, parseValueRef(type));
    } else if (castOp) {
      const Type* srcType = parseType();
      Value* value = parseValueRef(srcType);
      if (!acceptIdent("to")) {
        fail("expected 'to' in cast");
      }
      const Type* dstType = parseType();
      inst = builder.createCast(*castOp, value, dstType);
    } else if (op == "phi") {
      const Type* type = parseType();
      Instruction* phi = builder.createPhi(type);
      do {
        expect(TokKind::LBracket, "'['");
        Value* value = parseValueRef(type);
        expect(TokKind::Comma, "','");
        if (!at(TokKind::LocalVar)) {
          fail("expected incoming block label");
        }
        const Token incomingLabel = take();
        BasicBlock* incoming =
            getOrCreateBlock(incomingLabel.text, incomingLabel.loc);
        expect(TokKind::RBracket, "']'");
        phi->addIncoming(value, incoming);
      } while (accept(TokKind::Comma) && at(TokKind::LBracket));
      inst = phi;
    } else if (op == "select") {
      const Type* condType = parseType();
      Value* cond = parseValueRef(condType);
      expect(TokKind::Comma, "','");
      const Type* valueType = parseType();
      Value* ifTrue = parseValueRef(valueType);
      expect(TokKind::Comma, "','");
      (void)parseType();
      Value* ifFalse = parseValueRef(valueType);
      inst = builder.createSelect(cond, ifTrue, ifFalse);
    } else if (op == "call") {
      inst = parseCall(builder);
    } else if (op == "getelementptr") {
      fail("getelementptr is outside the supported QIR subset (QIR arrays "
           "use __quantum__rt__array_get_element_ptr_1d)");
    } else {
      fail("unknown instruction '" + op + "'");
    }

    skipInstructionSuffix();

    if (hasResult) {
      if (inst->type()->isVoid()) {
        fail("instruction does not produce a value");
      }
      defineLocal(resultName, inst);
    }
  }

  Instruction* parseCall(IRBuilder& builder) {
    skipHeaderKeywords(); // calling conventions
    skipParamAttrs();     // return attrs
    const Type* retType = parseType();
    // Function-type form `call void (i64, ...) @f(...)` is rejected with
    // the varargs error inside parseType when it appears.
    if (at(TokKind::LParen)) {
      fail("indirect or varargs calls are outside the supported QIR subset");
    }
    if (!at(TokKind::GlobalVar)) {
      fail("expected callee");
    }
    const std::string calleeName = take().text;
    Function* callee = module_->getFunction(calleeName);
    if (callee == nullptr) {
      fail("call to undeclared function '@" + calleeName + "'");
    }
    if (callee->returnType() != retType) {
      fail("call return type mismatch for '@" + calleeName + "'");
    }
    expect(TokKind::LParen, "'('");
    std::vector<Value*> args;
    if (!at(TokKind::RParen)) {
      do {
        const Type* argType = parseType();
        skipParamAttrs();
        args.push_back(parseValueRef(argType));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "')'");
    if (args.size() != callee->functionType()->paramTypes().size()) {
      fail("call arity mismatch for '@" + calleeName + "'");
    }
    return builder.createCall(callee, std::span<Value* const>(args.data(), args.size()));
  }

  ICmpPred parseICmpPred() {
    static const std::map<std::string_view, ICmpPred> preds = {
        {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},   {"slt", ICmpPred::SLT},
        {"sle", ICmpPred::SLE}, {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
        {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE}, {"ugt", ICmpPred::UGT},
        {"uge", ICmpPred::UGE}};
    if (!at(TokKind::Ident)) {
      fail("expected icmp predicate");
    }
    const auto it = preds.find(cur().text);
    if (it == preds.end()) {
      fail("unknown icmp predicate '" + cur().text + "'");
    }
    ++pos_;
    return it->second;
  }

  FCmpPred parseFCmpPred() {
    static const std::map<std::string_view, FCmpPred> preds = {
        {"oeq", FCmpPred::OEQ}, {"one", FCmpPred::ONE}, {"olt", FCmpPred::OLT},
        {"ole", FCmpPred::OLE}, {"ogt", FCmpPred::OGT}, {"oge", FCmpPred::OGE},
        {"une", FCmpPred::UNE}};
    if (!at(TokKind::Ident)) {
      fail("expected fcmp predicate");
    }
    const auto it = preds.find(cur().text);
    if (it == preds.end()) {
      fail("unsupported fcmp predicate '" + cur().text + "'");
    }
    ++pos_;
    return it->second;
  }

  static std::optional<Opcode> binOpFromName(std::string_view name) {
    static const std::map<std::string_view, Opcode> ops = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
        {"sdiv", Opcode::SDiv}, {"udiv", Opcode::UDiv}, {"srem", Opcode::SRem},
        {"urem", Opcode::URem}, {"and", Opcode::And},   {"or", Opcode::Or},
        {"xor", Opcode::Xor},   {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr}, {"fadd", Opcode::FAdd}, {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul}, {"fdiv", Opcode::FDiv}, {"frem", Opcode::FRem}};
    const auto it = ops.find(name);
    return it == ops.end() ? std::nullopt : std::optional<Opcode>(it->second);
  }

  static std::optional<Opcode> castOpFromName(std::string_view name) {
    static const std::map<std::string_view, Opcode> ops = {
        {"zext", Opcode::ZExt},         {"sext", Opcode::SExt},
        {"trunc", Opcode::Trunc},       {"ptrtoint", Opcode::PtrToInt},
        {"inttoptr", Opcode::IntToPtr}, {"sitofp", Opcode::SIToFP},
        {"fptosi", Opcode::FPToSI},     {"uitofp", Opcode::UIToFP},
        {"fptoui", Opcode::FPToUI},     {"bitcast", Opcode::Bitcast}};
    const auto it = ops.find(name);
    return it == ops.end() ? std::nullopt : std::optional<Opcode>(it->second);
  }

  void applyPendingAttributes() {
    for (const auto& [fn, groupId, refLoc] : pendingAttrRefs_) {
      const auto it = attrGroups_.find(groupId);
      if (it == attrGroups_.end()) {
        throw qirkit::ParseError(refLoc,
                                 "reference to undefined attribute group #" +
                                     std::to_string(groupId));
      }
      for (const auto& [key, value] : it->second) {
        fn->setAttribute(key, value);
      }
    }
  }

  Context& ctx_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  // Declared before module_ so that on error-path unwinding the
  // placeholders outlive the instructions that still reference them.
  std::vector<std::unique_ptr<ForwardRefValue>> forwardRefOwner_;
  std::unique_ptr<Module> module_;

  std::set<std::string> opaqueAliases_;
  std::map<int, std::map<std::string, std::string>> attrGroups_;
  struct PendingAttrRef {
    Function* fn;
    int groupId;
    SourceLoc loc;
  };
  std::vector<PendingAttrRef> pendingAttrRefs_;

  // per-function state
  Function* fn_ = nullptr;
  std::map<std::string, Value*> locals_;
  std::map<std::string, ForwardRefValue*> forwardRefs_;
  std::map<std::string, BasicBlock*> blocksByName_;
  /// Where each forward-referenced value / label was first mentioned, so
  /// undefined-reference errors point at the use site.
  std::map<std::string, SourceLoc> valueRefLocs_;
  std::map<std::string, SourceLoc> blockRefLocs_;
  std::vector<BasicBlock*> definedBlocks_;
};

} // namespace

namespace {
// The "full IR parser" adoption route (paper §III.A, route a2).
telemetry::Counter g_parseFullCalls{"parse.full.calls"};
telemetry::Counter g_parseFullNs{"parse.full.ns"};
telemetry::Counter g_parseFullLines{"parse.full.lines"};
telemetry::Counter g_parseFullInstructions{"parse.full.instructions"};
} // namespace

std::unique_ptr<Module> parseModule(Context& context, std::string_view text,
                                    std::string moduleName) {
  const telemetry::trace::Span span("parse.full");
  const telemetry::ScopedTimer timer(g_parseFullNs, &g_parseFullCalls);
  Lexer lexer(text);
  Parser parser(context, lexer.lexAll(), std::move(moduleName));
  std::unique_ptr<Module> module = parser.run();
  if (telemetry::enabled()) {
    g_parseFullLines.addUnchecked(static_cast<std::uint64_t>(
        std::count(text.begin(), text.end(), '\n') + 1));
    g_parseFullInstructions.addUnchecked(module->instructionCount());
  }
  return module;
}

} // namespace qirkit::ir
