/// \file builder.hpp
/// IRBuilder: the convenience API for constructing instructions, mirroring
/// llvm::IRBuilder. All create* functions append at the current insertion
/// point and return the new instruction.
#pragma once

#include "ir/module.hpp"

#include <initializer_list>
#include <span>
#include <string>

namespace qirkit::ir {

/// Builds instructions at an insertion point inside a basic block.
class IRBuilder {
public:
  explicit IRBuilder(Context& context) : context_(&context) {}
  explicit IRBuilder(BasicBlock* block) : context_(nullptr) { setInsertPoint(block); }

  /// Append new instructions at the end of \p block.
  void setInsertPoint(BasicBlock* block);
  /// Insert new instructions before instruction index \p index of \p block.
  void setInsertPoint(BasicBlock* block, std::size_t index);

  [[nodiscard]] BasicBlock* insertBlock() const noexcept { return block_; }
  [[nodiscard]] Context& context() const noexcept { return *context_; }

  // -- Arithmetic ----------------------------------------------------------
  Instruction* createBinOp(Opcode op, Value* lhs, Value* rhs, std::string name = {});
  Instruction* createAdd(Value* l, Value* r, std::string name = {}) {
    return createBinOp(Opcode::Add, l, r, std::move(name));
  }
  Instruction* createSub(Value* l, Value* r, std::string name = {}) {
    return createBinOp(Opcode::Sub, l, r, std::move(name));
  }
  Instruction* createMul(Value* l, Value* r, std::string name = {}) {
    return createBinOp(Opcode::Mul, l, r, std::move(name));
  }
  Instruction* createICmp(ICmpPred pred, Value* lhs, Value* rhs, std::string name = {});
  Instruction* createFCmp(FCmpPred pred, Value* lhs, Value* rhs, std::string name = {});
  Instruction* createSelect(Value* cond, Value* ifTrue, Value* ifFalse,
                            std::string name = {});

  // -- Casts ------------------------------------------------------------
  Instruction* createCast(Opcode op, Value* value, const Type* destType,
                          std::string name = {});

  // -- Memory ------------------------------------------------------------
  Instruction* createAlloca(const Type* allocatedType, std::string name = {});
  Instruction* createLoad(const Type* type, Value* pointer, std::string name = {});
  Instruction* createStore(Value* value, Value* pointer);

  // -- Control flow --------------------------------------------------------
  Instruction* createBr(BasicBlock* dest);
  Instruction* createCondBr(Value* cond, BasicBlock* ifTrue, BasicBlock* ifFalse);
  Instruction* createSwitch(Value* cond, BasicBlock* defaultDest);
  Instruction* createRet(Value* value);
  Instruction* createRetVoid();
  Instruction* createUnreachable();

  // -- Other ------------------------------------------------------------
  Instruction* createPhi(const Type* type, std::string name = {});
  Instruction* createCall(Function* callee, std::span<Value* const> args,
                          std::string name = {});
  Instruction* createCall(Function* callee, std::initializer_list<Value*> args,
                          std::string name = {}) {
    return createCall(callee, std::span<Value* const>(args.begin(), args.size()),
                      std::move(name));
  }

private:
  Instruction* insert(std::unique_ptr<Instruction> inst, std::string name);

  Context* context_;
  BasicBlock* block_ = nullptr;
  std::size_t index_ = 0;   // insertion index within block_
  bool atEnd_ = true;       // append mode vs. positional mode
};

} // namespace qirkit::ir
