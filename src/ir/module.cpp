#include "ir/module.hpp"

#include "support/source_location.hpp"

#include <algorithm>
#include <cassert>

namespace qirkit::ir {

Function::Function(Module* parent, const Type* functionType, const Type* ptrType,
                   std::string name)
    : Value(Kind::Function, ptrType), parent_(parent), functionType_(functionType) {
  setName(std::move(name));
  const auto params = functionType->paramTypes();
  args_.reserve(params.size());
  for (unsigned i = 0; i < params.size(); ++i) {
    args_.push_back(std::unique_ptr<Argument>(new Argument(params[i], i, this)));
  }
}

Function::~Function() {
  for (const auto& block : blocks_) {
    for (const auto& inst : block->instructions()) {
      inst->dropAllOperands();
    }
  }
}

BasicBlock* Function::createBlock(std::string name) {
  auto block = std::unique_ptr<BasicBlock>(
      new BasicBlock(parent_->context().labelTy()));
  block->setName(std::move(name));
  block->parent_ = this;
  blocks_.push_back(std::move(block));
  return blocks_.back().get();
}

BasicBlock* Function::createBlockAfter(BasicBlock* after, std::string name) {
  auto block = std::unique_ptr<BasicBlock>(
      new BasicBlock(parent_->context().labelTy()));
  block->setName(std::move(name));
  block->parent_ = this;
  const std::size_t index = blockIndexOf(after);
  const auto it = blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                                 std::move(block));
  return it->get();
}

void Function::eraseBlock(BasicBlock* block) {
  assert(!block->hasUses() && "erasing a block that is still branched to");
  // Drop instruction operands first so intra-block uses don't trip asserts.
  block->eraseIf([](Instruction*) { return true; });
  const std::size_t index = blockIndexOf(block);
  blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Function::moveBlockAfter(BasicBlock* block, BasicBlock* after) {
  const std::size_t from = blockIndexOf(block);
  std::unique_ptr<BasicBlock> owned = std::move(blocks_[from]);
  blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(from));
  const std::size_t to = blockIndexOf(after);
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(to) + 1, std::move(owned));
}

std::size_t Function::blockIndexOf(const BasicBlock* block) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == block) {
      return i;
    }
  }
  assert(false && "block not in function");
  return blocks_.size();
}

std::size_t Function::instructionCount() const noexcept {
  std::size_t count = 0;
  for (const auto& block : blocks_) {
    count += block->size();
  }
  return count;
}

Function* Module::createFunction(std::string name, const Type* functionType) {
  if (getFunction(name) != nullptr) {
    throw SemanticError("duplicate function @" + name);
  }
  functions_.push_back(std::unique_ptr<Function>(
      new Function(this, functionType, context_->ptrTy(), std::move(name))));
  return functions_.back().get();
}

Function* Module::getFunction(std::string_view name) const {
  for (const auto& fn : functions_) {
    if (fn->name() == name) {
      return fn.get();
    }
  }
  return nullptr;
}

Function* Module::getOrInsertFunction(std::string_view name, const Type* functionType) {
  if (Function* existing = getFunction(name)) {
    if (existing->functionType() != functionType) {
      throw SemanticError("conflicting types for function @" + std::string(name));
    }
    return existing;
  }
  return createFunction(std::string(name), functionType);
}

void Module::eraseFunction(Function* fn) {
  // Release block contents first (calls inside fn may reference other
  // functions' use lists); drop operands across all blocks before
  // destroying anything, since blocks reference each other's values.
  for (const auto& bb : fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      inst->dropAllOperands();
    }
  }
  while (!fn->blocks().empty()) {
    BasicBlock* bb = fn->blocks().back().get();
    bb->eraseIf([](Instruction*) { return true; });
    assert(!bb->hasUses());
    fn->eraseBlock(bb);
  }
  const auto it = std::find_if(functions_.begin(), functions_.end(),
                               [fn](const auto& f) { return f.get() == fn; });
  assert(it != functions_.end());
  assert(!fn->hasUses() && "erasing a function that is still called");
  functions_.erase(it);
}

Function* Module::entryPoint() const {
  for (const auto& fn : functions_) {
    if (fn->hasAttribute("entry_point")) {
      return fn.get();
    }
  }
  return nullptr;
}

GlobalVariable* Module::createGlobalString(std::string name, std::string bytes) {
  if (getGlobal(name) != nullptr) {
    throw SemanticError("duplicate global @" + name);
  }
  const Type* arrayType = context_->arrayTy(context_->i8(), bytes.size());
  globals_.push_back(std::unique_ptr<GlobalVariable>(
      new GlobalVariable(context_->ptrTy(), arrayType, std::move(bytes), true)));
  globals_.back()->setName(std::move(name));
  return globals_.back().get();
}

GlobalVariable* Module::getGlobal(std::string_view name) const {
  for (const auto& g : globals_) {
    if (g->name() == name) {
      return g.get();
    }
  }
  return nullptr;
}

std::size_t Module::instructionCount() const noexcept {
  std::size_t count = 0;
  for (const auto& fn : functions_) {
    count += fn->instructionCount();
  }
  return count;
}

} // namespace qirkit::ir
