/// \file constant.hpp
/// Constant values: integers, doubles, null pointers, the QIR-style
/// `inttoptr (i64 N to ptr)` static-address expression, and undef.
/// Constants are uniqued by the Context and have no parent.
#pragma once

#include "ir/value.hpp"

#include <cstdint>

namespace qirkit::ir {

/// An iN integer constant. The value is stored sign-extended to 64 bits;
/// callers needing the unsigned interpretation use zextValue().
class ConstantInt final : public Value {
public:
  /// Signed interpretation (sign-extended from the type's bit width).
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  /// Unsigned interpretation (zero-extended from the type's bit width).
  [[nodiscard]] std::uint64_t zextValue() const noexcept;
  [[nodiscard]] bool isZero() const noexcept { return value_ == 0; }
  [[nodiscard]] bool isOne() const noexcept { return value_ == 1; }

  static bool classof(const Value* v) noexcept {
    return v->kind() == Kind::ConstantInt;
  }

private:
  friend class Context;
  ConstantInt(const Type* type, std::int64_t value)
      : Value(Kind::ConstantInt, type), value_(value) {}
  std::int64_t value_;
};

/// A double constant.
class ConstantFP final : public Value {
public:
  [[nodiscard]] double value() const noexcept { return value_; }

  static bool classof(const Value* v) noexcept {
    return v->kind() == Kind::ConstantFP;
  }

private:
  friend class Context;
  ConstantFP(const Type* type, double value)
      : Value(Kind::ConstantFP, type), value_(value) {}
  double value_;
};

/// The `ptr null` constant. QIR static addressing uses it for qubit 0.
class ConstantPointerNull final : public Value {
public:
  static bool classof(const Value* v) noexcept {
    return v->kind() == Kind::ConstantPointerNull;
  }

private:
  friend class Context;
  explicit ConstantPointerNull(const Type* type)
      : Value(Kind::ConstantPointerNull, type) {}
};

/// The constant expression `inttoptr (i64 N to ptr)`. This is how QIR
/// programs address qubits and results statically (paper, Ex. 6).
class ConstantIntToPtr final : public Value {
public:
  [[nodiscard]] std::uint64_t address() const noexcept { return address_; }

  static bool classof(const Value* v) noexcept {
    return v->kind() == Kind::ConstantIntToPtr;
  }

private:
  friend class Context;
  ConstantIntToPtr(const Type* type, std::uint64_t address)
      : Value(Kind::ConstantIntToPtr, type), address_(address) {}
  std::uint64_t address_;
};

/// `undef` of any first-class type.
class UndefValue final : public Value {
public:
  static bool classof(const Value* v) noexcept { return v->kind() == Kind::Undef; }

private:
  friend class Context;
  explicit UndefValue(const Type* type) : Value(Kind::Undef, type) {}
};

/// Static pointer address of a constant operand, if it is one. Returns
/// true and sets \p address for `ptr null` (0) and `inttoptr (i64 N to
/// ptr)` (N); false otherwise.
[[nodiscard]] bool getStaticPointerAddress(const Value* v, std::uint64_t& address) noexcept;

} // namespace qirkit::ir
