#include "ir/dominance.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace qirkit::ir {

DomTree::DomTree(const Function& fn) : fn_(fn) {
  const BasicBlock* entry = fn.entry();
  if (entry == nullptr) {
    return;
  }

  // Depth-first post order, then reverse.
  std::set<const BasicBlock*> visited;
  std::vector<const BasicBlock*> postOrder;
  std::vector<std::pair<const BasicBlock*, std::size_t>> stack;
  stack.emplace_back(entry, 0);
  visited.insert(entry);
  while (!stack.empty()) {
    auto& [block, next] = stack.back();
    const std::vector<BasicBlock*> succs = block->successors();
    if (next < succs.size()) {
      const BasicBlock* succ = succs[next++];
      if (visited.insert(succ).second) {
        stack.emplace_back(succ, 0);
      }
    } else {
      postOrder.push_back(block);
      stack.pop_back();
    }
  }
  rpo_.assign(postOrder.rbegin(), postOrder.rend());
  for (std::size_t i = 0; i < rpo_.size(); ++i) {
    rpoIndex_[rpo_[i]] = i;
  }

  // Cooper–Harvey–Kennedy iterative idom computation on integer indices
  // (pointer-chasing through maps makes the intersect walks quadratic-with-
  // large-constants on the long chains unrolling produces).
  const std::size_t n = rpo_.size();
  constexpr std::uint32_t kUndef = ~0U;
  std::vector<std::vector<std::uint32_t>> predIdx(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const BasicBlock* pred : rpo_[i]->predecessors()) {
      const auto it = rpoIndex_.find(pred);
      if (it != rpoIndex_.end()) {
        predIdx[i].push_back(static_cast<std::uint32_t>(it->second));
      }
    }
  }
  std::vector<std::uint32_t> idom(n, kUndef);
  idom[0] = 0;
  const auto intersect = [&idom](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (a > b) {
        a = idom[a];
      }
      while (b > a) {
        b = idom[b];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t i = 1; i < n; ++i) {
      std::uint32_t newIdom = kUndef;
      for (const std::uint32_t pred : predIdx[i]) {
        if (idom[pred] == kUndef) {
          continue; // not yet processed
        }
        newIdom = newIdom == kUndef ? pred : intersect(newIdom, pred);
      }
      assert(newIdom != kUndef && "reachable block without processed pred");
      if (idom[i] != newIdom) {
        idom[i] = newIdom;
        changed = true;
      }
    }
  }
  for (std::uint32_t i = 1; i < n; ++i) {
    idom_[rpo_[i]] = rpo_[idom[i]];
  }
  idom_[entry] = nullptr; // canonical: entry has no idom

  computeIntervals();
}

void DomTree::computeFrontiers() const {
  frontiersComputed_ = true;
  for (const BasicBlock* block : rpo_) {
    const std::vector<BasicBlock*> preds = block->predecessors();
    std::size_t numReachablePreds = 0;
    for (const BasicBlock* pred : preds) {
      if (isReachable(pred)) {
        ++numReachablePreds;
      }
    }
    if (numReachablePreds < 2) {
      continue;
    }
    for (const BasicBlock* pred : preds) {
      if (!isReachable(pred)) {
        continue;
      }
      const BasicBlock* runner = pred;
      while (runner != idom_.at(block) && runner != nullptr) {
        auto& frontier = frontiers_[runner];
        if (std::find(frontier.begin(), frontier.end(), block) == frontier.end()) {
          frontier.push_back(block);
        }
        runner = idom_.at(runner);
      }
    }
  }
}

const BasicBlock* DomTree::idom(const BasicBlock* block) const {
  const auto it = idom_.find(block);
  return it == idom_.end() ? nullptr : it->second;
}

void DomTree::computeIntervals() {
  // Build dominator-tree children, then DFS to assign (in, out) intervals.
  std::map<const BasicBlock*, std::vector<const BasicBlock*>> children;
  for (const BasicBlock* block : rpo_) {
    if (const BasicBlock* parent = idom(block)) {
      children[parent].push_back(block);
    }
  }
  std::uint32_t clock = 0;
  std::vector<std::pair<const BasicBlock*, bool>> stack; // (node, exiting)
  if (!rpo_.empty()) {
    stack.emplace_back(rpo_.front(), false);
  }
  while (!stack.empty()) {
    auto [node, exiting] = stack.back();
    stack.pop_back();
    if (exiting) {
      intervals_[node].second = clock++;
      continue;
    }
    intervals_[node].first = clock++;
    stack.emplace_back(node, true);
    const auto kids = children.find(node);
    if (kids != children.end()) {
      for (const BasicBlock* child : kids->second) {
        stack.emplace_back(child, false);
      }
    }
  }
}

bool DomTree::dominates(const BasicBlock* a, const BasicBlock* b) const {
  if (a == b) {
    return true;
  }
  if (!isReachable(b)) {
    return true; // vacuous: no execution reaches b
  }
  if (!isReachable(a)) {
    return false;
  }
  const auto& ia = intervals_.at(a);
  const auto& ib = intervals_.at(b);
  return ia.first <= ib.first && ib.second <= ia.second;
}

bool DomTree::dominatesUse(const Instruction* def, const Instruction* user) const {
  const BasicBlock* defBlock = def->parent();
  const BasicBlock* useBlock = user->parent();
  if (defBlock == useBlock) {
    return defBlock->indexOf(def) < useBlock->indexOf(user);
  }
  return dominates(defBlock, useBlock);
}

bool DomTree::isReachable(const BasicBlock* block) const {
  return rpoIndex_.find(block) != rpoIndex_.end();
}

std::vector<const BasicBlock*> DomTree::unreachableBlocks() const {
  std::vector<const BasicBlock*> result;
  for (const auto& block : fn_.blocks()) {
    if (!isReachable(block.get())) {
      result.push_back(block.get());
    }
  }
  return result;
}

const std::vector<const BasicBlock*>& DomTree::frontier(const BasicBlock* block) const {
  if (!frontiersComputed_) {
    computeFrontiers();
  }
  const auto it = frontiers_.find(block);
  return it == frontiers_.end() ? emptyFrontier_ : it->second;
}

} // namespace qirkit::ir
