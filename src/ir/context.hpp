/// \file context.hpp
/// Context owns and interns all types and uniqued constants. A Module is
/// always created against a Context; Values in different Contexts must not
/// be mixed.
#pragma once

#include "ir/type.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace qirkit::ir {

class ConstantInt;
class ConstantFP;
class ConstantPointerNull;
class ConstantIntToPtr;
class UndefValue;

/// Owner and interner of types and constants.
class Context {
public:
  Context();
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // -- Types (interned; pointer equality is type equality) ------------------
  [[nodiscard]] const Type* voidTy() noexcept { return voidTy_; }
  [[nodiscard]] const Type* labelTy() noexcept { return labelTy_; }
  [[nodiscard]] const Type* doubleTy() noexcept { return doubleTy_; }
  [[nodiscard]] const Type* ptrTy() noexcept { return ptrTy_; }
  [[nodiscard]] const Type* intTy(unsigned bits);
  [[nodiscard]] const Type* i1() { return intTy(1); }
  [[nodiscard]] const Type* i8() { return intTy(8); }
  [[nodiscard]] const Type* i32() { return intTy(32); }
  [[nodiscard]] const Type* i64() { return intTy(64); }
  [[nodiscard]] const Type* arrayTy(const Type* element, std::uint64_t count);
  [[nodiscard]] const Type* functionTy(const Type* ret,
                                       std::vector<const Type*> params);

  // -- Constants (uniqued) ---------------------------------------------------
  /// iN constant; \p value is interpreted modulo 2^bits.
  [[nodiscard]] ConstantInt* getInt(unsigned bits, std::int64_t value);
  [[nodiscard]] ConstantInt* getI1(bool value) { return getInt(1, value ? 1 : 0); }
  [[nodiscard]] ConstantInt* getI32(std::int32_t v) { return getInt(32, v); }
  [[nodiscard]] ConstantInt* getI64(std::int64_t v) { return getInt(64, v); }
  [[nodiscard]] ConstantFP* getDouble(double value);
  [[nodiscard]] ConstantPointerNull* getNullPtr();
  /// The constant expression `inttoptr (i64 value to ptr)` used by QIR for
  /// static qubit and result addresses.
  [[nodiscard]] ConstantIntToPtr* getIntToPtr(std::uint64_t value);
  [[nodiscard]] UndefValue* getUndef(const Type* type);

private:
  struct TypeStore;
  struct ConstantStore;
  std::unique_ptr<TypeStore> types_;
  std::unique_ptr<ConstantStore> constants_;

  const Type* voidTy_;
  const Type* labelTy_;
  const Type* doubleTy_;
  const Type* ptrTy_;
};

} // namespace qirkit::ir
