#include "ir/type.hpp"

#include <cassert>

namespace qirkit::ir {

std::uint64_t Type::storeSize() const {
  switch (kind_) {
  case Kind::Integer:
    return (bits_ + 7) / 8;
  case Kind::Double:
    return 8;
  case Kind::Pointer:
    return 8;
  case Kind::Array:
    return element_->storeSize() * count_;
  case Kind::Void:
  case Kind::Label:
  case Kind::Function:
    assert(false && "type has no store size");
    return 0;
  }
  return 0;
}

std::string Type::str() const {
  switch (kind_) {
  case Kind::Void:
    return "void";
  case Kind::Integer:
    return "i" + std::to_string(bits_);
  case Kind::Double:
    return "double";
  case Kind::Pointer:
    return "ptr";
  case Kind::Label:
    return "label";
  case Kind::Array:
    return "[" + std::to_string(count_) + " x " + element_->str() + "]";
  case Kind::Function: {
    std::string out = element_->str() + " (";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += params_[i]->str();
    }
    out += ")";
    return out;
  }
  }
  return "<bad type>";
}

} // namespace qirkit::ir
