#include "ir/builder.hpp"

#include <cassert>

namespace qirkit::ir {

void IRBuilder::setInsertPoint(BasicBlock* block) {
  block_ = block;
  atEnd_ = true;
  if (context_ == nullptr) {
    context_ = &block->parent()->parent()->context();
  }
}

void IRBuilder::setInsertPoint(BasicBlock* block, std::size_t index) {
  block_ = block;
  index_ = index;
  atEnd_ = false;
  if (context_ == nullptr) {
    context_ = &block->parent()->parent()->context();
  }
}

Instruction* IRBuilder::insert(std::unique_ptr<Instruction> inst, std::string name) {
  assert(block_ != nullptr && "no insertion point");
  if (!name.empty()) {
    inst->setName(std::move(name));
  }
  if (atEnd_) {
    return block_->append(std::move(inst));
  }
  Instruction* placed = block_->insert(index_, std::move(inst));
  ++index_;
  return placed;
}

Instruction* IRBuilder::createBinOp(Opcode op, Value* lhs, Value* rhs,
                                    std::string name) {
  assert(isBinaryOp(op));
  assert(lhs->type() == rhs->type() && "binary operand type mismatch");
  auto inst = std::unique_ptr<Instruction>(new Instruction(op, lhs->type()));
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createICmp(ICmpPred pred, Value* lhs, Value* rhs,
                                   std::string name) {
  assert(lhs->type() == rhs->type());
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::ICmp, context_->i1()));
  inst->setICmpPred(pred);
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createFCmp(FCmpPred pred, Value* lhs, Value* rhs,
                                   std::string name) {
  assert(lhs->type()->isDouble() && rhs->type()->isDouble());
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::FCmp, context_->i1()));
  inst->setFCmpPred(pred);
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createSelect(Value* cond, Value* ifTrue, Value* ifFalse,
                                     std::string name) {
  assert(cond->type()->isInteger(1));
  assert(ifTrue->type() == ifFalse->type());
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Select, ifTrue->type()));
  inst->addOperand(cond);
  inst->addOperand(ifTrue);
  inst->addOperand(ifFalse);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createCast(Opcode op, Value* value, const Type* destType,
                                   std::string name) {
  assert(isCastOp(op));
  auto inst = std::unique_ptr<Instruction>(new Instruction(op, destType));
  inst->addOperand(value);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createAlloca(const Type* allocatedType, std::string name) {
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Alloca, context_->ptrTy()));
  inst->setAllocatedType(allocatedType);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createLoad(const Type* type, Value* pointer,
                                   std::string name) {
  assert(pointer->type()->isPointer());
  auto inst = std::unique_ptr<Instruction>(new Instruction(Opcode::Load, type));
  inst->addOperand(pointer);
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createStore(Value* value, Value* pointer) {
  assert(pointer->type()->isPointer());
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Store, context_->voidTy()));
  inst->addOperand(value);
  inst->addOperand(pointer);
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createBr(BasicBlock* dest) {
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Br, context_->voidTy()));
  inst->addOperand(dest);
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createCondBr(Value* cond, BasicBlock* ifTrue,
                                     BasicBlock* ifFalse) {
  assert(cond->type()->isInteger(1));
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Br, context_->voidTy()));
  inst->addOperand(cond);
  inst->addOperand(ifTrue);
  inst->addOperand(ifFalse);
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createSwitch(Value* cond, BasicBlock* defaultDest) {
  assert(cond->type()->isInteger());
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Switch, context_->voidTy()));
  inst->addOperand(cond);
  inst->addOperand(defaultDest);
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createRet(Value* value) {
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Ret, context_->voidTy()));
  inst->addOperand(value);
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createRetVoid() {
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Ret, context_->voidTy()));
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createUnreachable() {
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Unreachable, context_->voidTy()));
  return insert(std::move(inst), {});
}

Instruction* IRBuilder::createPhi(const Type* type, std::string name) {
  auto inst = std::unique_ptr<Instruction>(new Instruction(Opcode::Phi, type));
  return insert(std::move(inst), std::move(name));
}

Instruction* IRBuilder::createCall(Function* callee, std::span<Value* const> args,
                                   std::string name) {
  const Type* fnType = callee->functionType();
  assert(args.size() == fnType->paramTypes().size() && "call arity mismatch");
  auto inst = std::unique_ptr<Instruction>(
      new Instruction(Opcode::Call, fnType->returnType()));
  inst->setCallee(callee);
  for (Value* arg : args) {
    inst->addOperand(arg);
  }
  return insert(std::move(inst), std::move(name));
}

} // namespace qirkit::ir
