#include "ir/value.hpp"

#include <algorithm>

namespace qirkit::ir {

Value::~Value() = default;

void Value::removeUse(Use* use) {
  assert(use->slot < uses_.size() && uses_[use->slot] == use && "use not registered");
  // Order is unspecified: swap-and-pop, keeping slots consistent.
  Use* moved = uses_.back();
  uses_[use->slot] = moved;
  moved->slot = use->slot;
  uses_.pop_back();
}

void Value::replaceAllUsesWith(Value* replacement) {
  assert(replacement != this && "cannot replace value with itself");
  // Moving uses mutates uses_; iterate over a snapshot.
  const std::vector<Use*> snapshot = uses_;
  for (Use* use : snapshot) {
    use->user->setOperand(use->index, replacement);
  }
}

void User::setOperand(unsigned index, Value* value) {
  assert(index < operands_.size());
  Use& use = *operands_[index];
  if (use.value == value) {
    return;
  }
  if (use.value != nullptr) {
    use.value->removeUse(&use);
  }
  use.value = value;
  if (value != nullptr) {
    value->addUse(&use);
  }
}

void User::addOperand(Value* value) {
  auto use = std::make_unique<Use>();
  use->user = this;
  use->index = static_cast<unsigned>(operands_.size());
  use->value = value;
  if (value != nullptr) {
    value->addUse(use.get());
  }
  operands_.push_back(std::move(use));
}

void User::removeOperand(unsigned index) {
  assert(index < operands_.size());
  if (operands_[index]->value != nullptr) {
    operands_[index]->value->removeUse(operands_[index].get());
  }
  operands_.erase(operands_.begin() + index);
  for (unsigned i = index; i < operands_.size(); ++i) {
    operands_[i]->index = i;
  }
}

void User::dropAllOperands() {
  for (auto& use : operands_) {
    if (use->value != nullptr) {
      use->value->removeUse(use.get());
      use->value = nullptr;
    }
  }
  operands_.clear();
}

} // namespace qirkit::ir
