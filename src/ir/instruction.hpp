/// \file instruction.hpp
/// Instructions and basic blocks of the LLVM-IR subset.
///
/// Design notes:
///  * One concrete Instruction class carrying an Opcode, rather than a
///    class per opcode; per-opcode payload (icmp predicate, alloca type,
///    callee) lives in dedicated fields. This keeps the pass code compact
///    while preserving LLVM's operand/use-list semantics.
///  * Basic blocks are Values and appear as *operands* of terminators and
///    phis (exactly as in LLVM), so predecessor lists fall out of the
///    use-def graph and replaceAllUsesWith retargets control flow.
#pragma once

#include "ir/constant.hpp"
#include "ir/value.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qirkit::ir {

class BasicBlock;
class Function;
class Instruction;

/// Instruction opcodes of the modeled subset.
enum class Opcode : std::uint8_t {
  // Terminators
  Ret,
  Br,
  Switch,
  Unreachable,
  // Integer binary
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating binary
  FAdd,
  FSub,
  FMul,
  FDiv,
  FRem,
  // Memory
  Alloca,
  Load,
  Store,
  // Comparisons
  ICmp,
  FCmp,
  // Casts
  ZExt,
  SExt,
  Trunc,
  PtrToInt,
  IntToPtr,
  SIToFP,
  FPToSI,
  UIToFP,
  FPToUI,
  Bitcast,
  // Other
  Phi,
  Select,
  Call,
};

/// Integer comparison predicates.
enum class ICmpPred : std::uint8_t { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };

/// Floating comparison predicates (ordered subset plus UNE).
enum class FCmpPred : std::uint8_t { OEQ, ONE, OLT, OLE, OGT, OGE, UNE };

[[nodiscard]] const char* opcodeName(Opcode op) noexcept;
[[nodiscard]] const char* icmpPredName(ICmpPred p) noexcept;
[[nodiscard]] const char* fcmpPredName(FCmpPred p) noexcept;
[[nodiscard]] bool isBinaryOp(Opcode op) noexcept;
[[nodiscard]] bool isIntBinaryOp(Opcode op) noexcept;
[[nodiscard]] bool isFloatBinaryOp(Opcode op) noexcept;
[[nodiscard]] bool isCastOp(Opcode op) noexcept;
[[nodiscard]] bool isTerminatorOp(Opcode op) noexcept;

/// A single IR instruction. Operand layout per opcode:
///   Ret:      [] or [value]
///   Br:       [dest] (unconditional) or [cond, trueDest, falseDest]
///   Switch:   [cond, defaultDest, caseVal0, caseDest0, caseVal1, ...]
///   Binary:   [lhs, rhs]
///   Alloca:   []                       (allocatedType() holds the type)
///   Load:     [ptr]                    (result type is the loaded type)
///   Store:    [value, ptr]
///   ICmp/FCmp:[lhs, rhs]               (predicate in icmpPred()/fcmpPred())
///   Casts:    [value]
///   Phi:      [inVal0, inBlock0, inVal1, inBlock1, ...]
///   Select:   [cond, trueValue, falseValue]
///   Call:     [arg0, arg1, ...]        (callee() holds the target)
class Instruction final : public User {
public:
  [[nodiscard]] Opcode op() const noexcept { return op_; }
  [[nodiscard]] BasicBlock* parent() const noexcept { return parent_; }
  [[nodiscard]] Function* function() const noexcept;

  [[nodiscard]] bool isTerminator() const noexcept { return isTerminatorOp(op_); }

  /// True if removing this instruction (when unused) changes observable
  /// behaviour: stores, calls, and terminators do; pure computations and
  /// allocas do not.
  [[nodiscard]] bool hasSideEffects() const noexcept;

  // -- ICmp / FCmp -----------------------------------------------------------
  [[nodiscard]] ICmpPred icmpPred() const noexcept { return icmpPred_; }
  [[nodiscard]] FCmpPred fcmpPred() const noexcept { return fcmpPred_; }
  void setICmpPred(ICmpPred p) noexcept { icmpPred_ = p; }
  void setFCmpPred(FCmpPred p) noexcept { fcmpPred_ = p; }

  // -- Alloca ------------------------------------------------------------
  [[nodiscard]] const Type* allocatedType() const noexcept { return allocatedType_; }
  void setAllocatedType(const Type* t) noexcept { allocatedType_ = t; }

  // -- Call --------------------------------------------------------------
  [[nodiscard]] Function* callee() const noexcept { return callee_; }
  void setCallee(Function* f) noexcept { callee_ = f; }

  // -- Br ------------------------------------------------------------------
  [[nodiscard]] bool isConditionalBr() const noexcept {
    return op_ == Opcode::Br && numOperands() == 3;
  }
  [[nodiscard]] Value* brCondition() const { return operand(0); }

  // -- Switch ----------------------------------------------------------------
  [[nodiscard]] unsigned numSwitchCases() const noexcept {
    return (numOperands() - 2) / 2;
  }
  [[nodiscard]] ConstantInt* switchCaseValue(unsigned i) const;
  [[nodiscard]] BasicBlock* switchCaseDest(unsigned i) const;

  // -- Phi --------------------------------------------------------------
  [[nodiscard]] unsigned numIncoming() const noexcept { return numOperands() / 2; }
  [[nodiscard]] Value* incomingValue(unsigned i) const { return operand(2 * i); }
  [[nodiscard]] BasicBlock* incomingBlock(unsigned i) const;
  void addIncoming(Value* value, BasicBlock* block);
  /// Remove the incoming pair for \p block (must be present exactly once).
  void removeIncoming(const BasicBlock* block);
  /// Incoming value for \p block, or nullptr if \p block is not incoming.
  [[nodiscard]] Value* incomingValueFor(const BasicBlock* block) const;

  // -- Terminator successors ------------------------------------------------
  [[nodiscard]] unsigned numSuccessors() const noexcept;
  [[nodiscard]] BasicBlock* successor(unsigned i) const;
  void setSuccessor(unsigned i, BasicBlock* block);

  /// Detach and destroy this instruction. Asserts that it has no uses.
  void eraseFromParent();

  /// Create an unparented copy of this instruction referencing the same
  /// operands. Callers remap operands afterwards (loop unrolling, inlining).
  [[nodiscard]] std::unique_ptr<Instruction> clone() const;

private:
  friend class BasicBlock;
  friend class IRBuilder;
  Instruction(Opcode op, const Type* type) : User(Kind::Instruction, type), op_(op) {}

  Opcode op_;
  BasicBlock* parent_ = nullptr;
  ICmpPred icmpPred_ = ICmpPred::EQ;
  FCmpPred fcmpPred_ = FCmpPred::OEQ;
  const Type* allocatedType_ = nullptr;
  Function* callee_ = nullptr;
};

/// A basic block: a label plus a straight-line instruction sequence ending
/// in exactly one terminator (enforced by the verifier).
class BasicBlock final : public Value {
public:
  [[nodiscard]] Function* parent() const noexcept { return parent_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Instruction>>& instructions()
      const noexcept {
    return instructions_;
  }
  [[nodiscard]] bool empty() const noexcept { return instructions_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return instructions_.size(); }
  [[nodiscard]] Instruction* front() const { return instructions_.front().get(); }
  [[nodiscard]] Instruction* back() const { return instructions_.back().get(); }

  /// The block terminator, or nullptr if the block is not yet terminated.
  [[nodiscard]] Instruction* terminator() const noexcept;

  /// Append an instruction (takes ownership).
  Instruction* append(std::unique_ptr<Instruction> inst);
  /// Insert before position \p index.
  Instruction* insert(std::size_t index, std::unique_ptr<Instruction> inst);
  /// Index of \p inst within this block (linear scan).
  [[nodiscard]] std::size_t indexOf(const Instruction* inst) const;
  /// Detach \p inst without destroying it.
  std::unique_ptr<Instruction> detach(Instruction* inst);
  /// Destroy every instruction for which \p pred returns true. Instructions
  /// are dropped in reverse order after their operands are released, so
  /// mutually-referencing dead instructions are handled.
  template <typename Pred> std::size_t eraseIf(Pred pred) {
    std::size_t erased = 0;
    // First drop operands of all doomed instructions so use counts between
    // them reach zero, then remove.
    for (auto& inst : instructions_) {
      if (pred(inst.get())) {
        inst->dropAllOperands();
      }
    }
    auto it = instructions_.begin();
    while (it != instructions_.end()) {
      if (pred(it->get())) {
        it = instructions_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  /// Successor blocks of the terminator (empty if unterminated).
  [[nodiscard]] std::vector<BasicBlock*> successors() const;
  /// Predecessor blocks: every block whose terminator targets this one.
  /// Derived from the use list; deduplicated, order unspecified.
  [[nodiscard]] std::vector<BasicBlock*> predecessors() const;
  /// True if \p pred's terminator targets this block.
  [[nodiscard]] bool hasPredecessor(const BasicBlock* pred) const;

  /// Phi nodes at the head of this block.
  [[nodiscard]] std::vector<Instruction*> phis() const;

  static bool classof(const Value* v) noexcept {
    return v->kind() == Kind::BasicBlock;
  }

private:
  friend class Function;
  explicit BasicBlock(const Type* labelType) : Value(Kind::BasicBlock, labelType) {}

  Function* parent_ = nullptr;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

} // namespace qirkit::ir
