/// \file printer.hpp
/// Textual IR emission in modern (opaque-pointer) LLVM syntax — the syntax
/// the paper deliberately uses (its footnote 1). print(parse(text)) is a
/// fixpoint, which the round-trip property tests rely on.
#pragma once

#include "ir/module.hpp"

#include <string>

namespace qirkit::ir {

/// Print a whole module: globals, declarations, definitions, attribute
/// groups.
[[nodiscard]] std::string printModule(const Module& module);

/// Print a single function (definition or declaration).
[[nodiscard]] std::string printFunction(const Function& fn);

} // namespace qirkit::ir
