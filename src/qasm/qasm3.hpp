/// \file qasm3.hpp
/// An OpenQASM 3 subset front end that lowers directly to QIR.
///
/// The paper's §II.B observes that OpenQASM 3 "integrates classical logic
/// and control flow into the IR", which "requires the reimplementation of
/// concepts that are already well-established … in classical compilers".
/// This front end demonstrates QIR's counter-proposal: the classical
/// constructs (FOR loops, measurement conditionals, integer index
/// arithmetic) are lowered onto plain LLVM-style IR, and the *existing*
/// classical passes (mem2reg, SCCP, unrolling — §II.C) do the rest.
///
/// Supported subset:
///   OPENQASM 3; / OPENQASM 3.0;
///   include "stdgates.inc";                    (gates are builtin)
///   qubit[N] name;  bit[N] name;
///   gate applications: h x y z s sdg t tdg rx ry rz cx cz swap ccx U
///     with angle expressions over literals, pi, + - * / and loop variables
///   name[expr] indexing (expr over integer literals and loop variables)
///   bit[i] = measure qubit[j];
///   reset q[i];
///   for int i in [a:b] { ... }                 (inclusive range, step 1)
///   if (bit[i] == 0|1) { ... }  /  if (bit[i]) { ... }
#pragma once

#include "ir/module.hpp"

#include <memory>
#include <string_view>

namespace qirkit::qasm {

/// Compile OpenQASM 3 source to a QIR module (entry point @main with the
/// standard attributes). Classical constructs become IR control flow; run
/// qir::transformDirect to resolve them to plain gate sequences.
[[nodiscard]] std::unique_ptr<ir::Module> compileQasm3(ir::Context& context,
                                                       std::string_view source);

} // namespace qirkit::qasm
