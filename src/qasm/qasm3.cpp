#include "qasm/qasm3.hpp"

#include "ir/builder.hpp"
#include "passes/folding.hpp"
#include "qir/names.hpp"
#include "support/source_location.hpp"
#include "support/string_utils.hpp"

#include <cctype>
#include <map>
#include <numbers>
#include <optional>
#include <vector>

namespace qirkit::qasm {
namespace {

using namespace qirkit::ir;

// ---------------------------------------------------------------------------
// Lexer (QASM3 dialect: adds ':' ranges and '=' assignment)
// ---------------------------------------------------------------------------

enum class Tok : std::uint8_t {
  Eof,
  Ident,
  Int,
  Real,
  String,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Semi,
  Comma,
  Colon,
  Equal,
  EqEq,
  Plus,
  Minus,
  Star,
  Slash,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;
  double real = 0;
  long long integer = 0;
  SourceLoc loc;
};

class Lexer {
public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> lexAll() {
    std::vector<Token> out;
    while (true) {
      Token t = next();
      const bool end = t.kind == Tok::Eof;
      out.push_back(std::move(t));
      if (end) {
        return out;
      }
    }
  }

private:
  [[nodiscard]] char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
  [[noreturn]] void fail(const std::string& m) { throw ParseError({line_, col_}, m); }

  Token next() {
    while (!atEnd()) {
      if (std::isspace(static_cast<unsigned char>(peek())) != 0) {
        advance();
      } else if (peek() == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n') {
          advance();
        }
      } else if (peek() == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/')) {
          advance();
        }
        if (!atEnd()) {
          advance();
          advance();
        }
      } else {
        break;
      }
    }
    Token t;
    t.loc = {line_, col_};
    if (atEnd()) {
      return t;
    }
    const char c = peek();
    switch (c) {
    case '(': advance(); t.kind = Tok::LParen; return t;
    case ')': advance(); t.kind = Tok::RParen; return t;
    case '[': advance(); t.kind = Tok::LBracket; return t;
    case ']': advance(); t.kind = Tok::RBracket; return t;
    case '{': advance(); t.kind = Tok::LBrace; return t;
    case '}': advance(); t.kind = Tok::RBrace; return t;
    case ';': advance(); t.kind = Tok::Semi; return t;
    case ',': advance(); t.kind = Tok::Comma; return t;
    case ':': advance(); t.kind = Tok::Colon; return t;
    case '+': advance(); t.kind = Tok::Plus; return t;
    case '-': advance(); t.kind = Tok::Minus; return t;
    case '*': advance(); t.kind = Tok::Star; return t;
    case '/': advance(); t.kind = Tok::Slash; return t;
    case '=':
      advance();
      if (peek() == '=') {
        advance();
        t.kind = Tok::EqEq;
      } else {
        t.kind = Tok::Equal;
      }
      return t;
    case '"': {
      advance();
      while (!atEnd() && peek() != '"') {
        t.text.push_back(advance());
      }
      if (atEnd()) {
        fail("unterminated string");
      }
      advance();
      t.kind = Tok::String;
      return t;
    }
    default:
      break;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::string text;
      bool isReal = false;
      while (!atEnd()) {
        const char d = peek();
        if (std::isdigit(static_cast<unsigned char>(d)) != 0) {
          text.push_back(advance());
        } else if (d == '.' || d == 'e' || d == 'E') {
          isReal = true;
          text.push_back(advance());
          if ((d == 'e' || d == 'E') && (peek() == '+' || peek() == '-')) {
            text.push_back(advance());
          }
        } else {
          break;
        }
      }
      if (isReal) {
        const auto v = parseDouble(text);
        if (!v) {
          fail("malformed real literal");
        }
        t.kind = Tok::Real;
        t.real = *v;
      } else {
        const auto v = parseInt(text);
        if (!v) {
          fail("malformed integer literal");
        }
        t.kind = Tok::Int;
        t.integer = *v;
      }
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      while (!atEnd() &&
             (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_')) {
        t.text.push_back(advance());
      }
      t.kind = Tok::Ident;
      return t;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct Register {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  bool quantum = true;
};

class Compiler {
public:
  Compiler(Context& ctx, std::vector<Token> tokens)
      : ctx_(ctx), tokens_(std::move(tokens)),
        module_(std::make_unique<Module>(ctx, "qasm3")) {}

  std::unique_ptr<Module> run() {
    expectIdent("OPENQASM");
    if (at(Tok::Real) || at(Tok::Int)) {
      ++pos_;
    } else {
      fail("expected version");
    }
    expect(Tok::Semi, "';'");

    entry_ = module_->createFunction("main", ctx_.functionTy(ctx_.voidTy(), {}));
    entry_->setAttribute("entry_point");
    block_ = entry_->createBlock("entry");
    builder_.setInsertPoint(block_);

    while (!at(Tok::Eof)) {
      parseStatement();
    }
    emitRecordOutput();
    builder_.createRetVoid();
    entry_->setAttribute("required_num_qubits", std::to_string(numQubits_));
    entry_->setAttribute("required_num_results", std::to_string(numBits_));
    return std::move(module_);
  }

private:
  // -- cursor ------------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
  [[nodiscard]] bool atIdent(std::string_view s) const {
    return at(Tok::Ident) && cur().text == s;
  }
  Token take() { return tokens_[pos_++]; }
  void expect(Tok k, const char* what) {
    if (!at(k)) {
      fail(std::string("expected ") + what);
    }
    ++pos_;
  }
  void expectIdent(std::string_view s) {
    if (!atIdent(s)) {
      fail("expected '" + std::string(s) + "'");
    }
    ++pos_;
  }
  bool acceptIdent(std::string_view s) {
    if (atIdent(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[noreturn]] void fail(const std::string& m) const {
    throw ParseError(cur().loc, m + " (got '" + cur().text + "')");
  }

  /// Emit an integer binary op, folding constant operands immediately so
  /// literal arithmetic (`[0:n-1]`, `pi/2`) never reaches the IR.
  Value* ibin(Opcode op, Value* lhs, Value* rhs) {
    const auto* cl = dynamic_cast<ConstantInt*>(lhs);
    const auto* cr = dynamic_cast<ConstantInt*>(rhs);
    if (cl != nullptr && cr != nullptr) {
      std::int64_t result = 0;
      if (passes::evalIntBinOp(op, 64, cl->value(), cr->value(), result)) {
        return ctx_.getI64(result);
      }
    }
    return builder_.createBinOp(op, lhs, rhs);
  }

  Value* fbin(Opcode op, Value* lhs, Value* rhs) {
    const auto* cl = dynamic_cast<ConstantFP*>(lhs);
    const auto* cr = dynamic_cast<ConstantFP*>(rhs);
    if (cl != nullptr && cr != nullptr) {
      return ctx_.getDouble(passes::evalFloatBinOp(op, cl->value(), cr->value()));
    }
    return builder_.createBinOp(op, lhs, rhs);
  }

  // -- integer expressions (indices, loop bounds): lowered to i64 values ---
  Value* parseIntExpr() { return parseIntAdditive(); }

  Value* parseIntAdditive() {
    Value* lhs = parseIntMultiplicative();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const Opcode op = at(Tok::Plus) ? Opcode::Add : Opcode::Sub;
      ++pos_;
      lhs = ibin(op, lhs, parseIntMultiplicative());
    }
    return lhs;
  }

  Value* parseIntMultiplicative() {
    Value* lhs = parseIntPrimary();
    while (at(Tok::Star) || at(Tok::Slash)) {
      const Opcode op = at(Tok::Star) ? Opcode::Mul : Opcode::SDiv;
      ++pos_;
      lhs = ibin(op, lhs, parseIntPrimary());
    }
    return lhs;
  }

  Value* parseIntPrimary() {
    if (at(Tok::Minus)) {
      ++pos_;
      return ibin(Opcode::Sub, ctx_.getI64(0), parseIntPrimary());
    }
    if (at(Tok::Int)) {
      return ctx_.getI64(take().integer);
    }
    if (at(Tok::LParen)) {
      ++pos_;
      Value* inner = parseIntExpr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    if (at(Tok::Ident)) {
      const auto it = intVars_.find(cur().text);
      if (it == intVars_.end()) {
        fail("unknown integer variable '" + cur().text + "'");
      }
      ++pos_;
      return builder_.createLoad(ctx_.i64(), it->second);
    }
    fail("expected integer expression");
  }

  // -- angle expressions: lowered to double values -------------------------
  Value* parseAngleExpr() { return parseAngleAdditive(); }

  Value* parseAngleAdditive() {
    Value* lhs = parseAngleMultiplicative();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const Opcode op = at(Tok::Plus) ? Opcode::FAdd : Opcode::FSub;
      ++pos_;
      lhs = fbin(op, lhs, parseAngleMultiplicative());
    }
    return lhs;
  }

  Value* parseAngleMultiplicative() {
    Value* lhs = parseAnglePrimary();
    while (at(Tok::Star) || at(Tok::Slash)) {
      const Opcode op = at(Tok::Star) ? Opcode::FMul : Opcode::FDiv;
      ++pos_;
      lhs = fbin(op, lhs, parseAnglePrimary());
    }
    return lhs;
  }

  Value* parseAnglePrimary() {
    if (at(Tok::Minus)) {
      ++pos_;
      return fbin(Opcode::FSub, ctx_.getDouble(0.0), parseAnglePrimary());
    }
    if (at(Tok::Real)) {
      return ctx_.getDouble(take().real);
    }
    if (at(Tok::Int)) {
      return ctx_.getDouble(static_cast<double>(take().integer));
    }
    if (atIdent("pi")) {
      ++pos_;
      return ctx_.getDouble(std::numbers::pi);
    }
    if (at(Tok::LParen)) {
      ++pos_;
      Value* inner = parseAngleExpr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    if (at(Tok::Ident)) {
      const auto it = intVars_.find(cur().text);
      if (it == intVars_.end()) {
        fail("unknown variable '" + cur().text + "' in angle expression");
      }
      ++pos_;
      Value* loaded = builder_.createLoad(ctx_.i64(), it->second);
      return builder_.createCast(Opcode::SIToFP, loaded, ctx_.doubleTy());
    }
    fail("expected angle expression");
  }

  // -- register references ---------------------------------------------------
  /// `name[expr]` -> (register, index value).
  std::pair<const Register*, Value*> parseIndexedRef(bool quantum) {
    if (!at(Tok::Ident)) {
      fail("expected register name");
    }
    const std::string name = take().text;
    const auto it = registers_.find(name);
    if (it == registers_.end()) {
      fail("unknown register '" + name + "'");
    }
    if (it->second.quantum != quantum) {
      fail(std::string("register '") + name + "' is not a " +
           (quantum ? "qubit" : "bit") + " register");
    }
    expect(Tok::LBracket, "'['");
    Value* index = parseIntExpr();
    expect(Tok::RBracket, "']'");
    return {&it->second, index};
  }

  /// Static-or-computed address for register element (offset + index).
  Value* address(const Register& reg, Value* index) {
    if (const auto* c = dynamic_cast<ConstantInt*>(index)) {
      const std::uint64_t id = reg.offset + static_cast<std::uint64_t>(c->value());
      return id == 0 ? static_cast<Value*>(ctx_.getNullPtr())
                     : static_cast<Value*>(ctx_.getIntToPtr(id));
    }
    Value* shifted =
        reg.offset == 0
            ? index
            : builder_.createAdd(index, ctx_.getI64(reg.offset));
    return builder_.createCast(Opcode::IntToPtr, shifted, ctx_.ptrTy());
  }

  Value* qubitAddress() {
    const auto [reg, index] = parseIndexedRef(/*quantum=*/true);
    return address(*reg, index);
  }

  // -- statements --------------------------------------------------------
  void parseStatement() {
    if (acceptIdent("include")) {
      if (!at(Tok::String)) {
        fail("expected include path");
      }
      const std::string file = take().text;
      if (file != "stdgates.inc") {
        fail("only stdgates.inc is available");
      }
      expect(Tok::Semi, "';'");
      return;
    }
    if (atIdent("qubit") || atIdent("bit")) {
      const bool quantum = cur().text == "qubit";
      ++pos_;
      expect(Tok::LBracket, "'['");
      if (!at(Tok::Int)) {
        fail("expected register size");
      }
      const auto size = static_cast<std::uint32_t>(take().integer);
      expect(Tok::RBracket, "']'");
      if (!at(Tok::Ident)) {
        fail("expected register name");
      }
      const std::string name = take().text;
      expect(Tok::Semi, "';'");
      if (registers_.count(name) != 0) {
        fail("redeclaration of '" + name + "'");
      }
      if (quantum) {
        registers_[name] = {numQubits_, size, true};
        numQubits_ += size;
      } else {
        registers_[name] = {numBits_, size, false};
        numBits_ += size;
      }
      return;
    }
    if (atIdent("for")) {
      parseFor();
      return;
    }
    if (atIdent("while")) {
      parseWhile();
      return;
    }
    if (atIdent("if")) {
      parseIf();
      return;
    }
    if (atIdent("reset")) {
      ++pos_;
      Value* q = qubitAddress();
      expect(Tok::Semi, "';'");
      builder_.createCall(qir::declareQIRFunction(*module_, qir::kQisReset), {q});
      return;
    }
    // `bit[i] = measure qubit[j];`
    if (at(Tok::Ident) && registers_.count(cur().text) != 0 &&
        !registers_.at(cur().text).quantum) {
      const auto [reg, index] = parseIndexedRef(/*quantum=*/false);
      expect(Tok::Equal, "'='");
      expectIdent("measure");
      Value* q = qubitAddress();
      expect(Tok::Semi, "';'");
      builder_.createCall(qir::declareQIRFunction(*module_, qir::kQisMz),
                          {q, address(*reg, index)});
      return;
    }
    parseGateApplication();
  }

  void parseGateApplication() {
    if (!at(Tok::Ident)) {
      fail("expected statement");
    }
    const std::string name = take().text;
    static const std::map<std::string_view, std::string_view> gates = {
        {"h", qir::kQisH},     {"x", qir::kQisX},       {"y", qir::kQisY},
        {"z", qir::kQisZ},     {"s", qir::kQisS},       {"sdg", qir::kQisSAdj},
        {"t", qir::kQisT},     {"tdg", qir::kQisTAdj},  {"rx", qir::kQisRX},
        {"ry", qir::kQisRY},   {"rz", qir::kQisRZ},     {"cx", qir::kQisCNOT},
        {"CX", qir::kQisCNOT}, {"cz", qir::kQisCZ},     {"swap", qir::kQisSwap},
        {"ccx", qir::kQisCCX}};
    std::vector<Value*> args;
    if (name == "U") {
      // U(theta, phi, lambda) q  ->  rz(lambda); ry(theta); rz(phi)
      expect(Tok::LParen, "'('");
      Value* theta = parseAngleExpr();
      expect(Tok::Comma, "','");
      Value* phi = parseAngleExpr();
      expect(Tok::Comma, "','");
      Value* lambda = parseAngleExpr();
      expect(Tok::RParen, "')'");
      Value* q = qubitAddress();
      expect(Tok::Semi, "';'");
      Function* rz = qir::declareQIRFunction(*module_, qir::kQisRZ);
      Function* ry = qir::declareQIRFunction(*module_, qir::kQisRY);
      builder_.createCall(rz, {lambda, q});
      builder_.createCall(ry, {theta, q});
      builder_.createCall(rz, {phi, q});
      return;
    }
    const auto gate = gates.find(name);
    if (gate == gates.end()) {
      fail("unknown gate '" + name + "'");
    }
    if (at(Tok::LParen)) {
      ++pos_;
      do {
        args.push_back(parseAngleExpr());
      } while (at(Tok::Comma) && (++pos_, true));
      expect(Tok::RParen, "')'");
    }
    do {
      args.push_back(qubitAddress());
    } while (at(Tok::Comma) && (++pos_, true));
    expect(Tok::Semi, "';'");
    Function* callee = qir::declareQIRFunction(*module_, gate->second);
    if (args.size() != callee->functionType()->paramTypes().size()) {
      fail("wrong arity for gate '" + name + "'");
    }
    builder_.createCall(callee, std::span<Value* const>(args.data(), args.size()));
  }

  void parseFor() {
    expectIdent("for");
    expectIdent("int");
    if (!at(Tok::Ident)) {
      fail("expected loop variable");
    }
    const std::string var = take().text;
    expectIdent("in");
    expect(Tok::LBracket, "'['");
    Value* begin = parseIntExpr();
    expect(Tok::Colon, "':'");
    Value* end = parseIntExpr();
    expect(Tok::RBracket, "']'");

    // Lower to the Ex. 4 shape: counter slot, header with inclusive bound,
    // body, latch increment.
    Instruction* slot = builder_.createAlloca(ctx_.i64(), var);
    builder_.createStore(begin, slot);
    if (intVars_.count(var) != 0) {
      fail("shadowing loop variable '" + var + "' is not supported");
    }
    intVars_[var] = slot;

    Function* fn = entry_;
    BasicBlock* header = fn->createBlock(var + ".header");
    BasicBlock* body = fn->createBlock(var + ".body");
    BasicBlock* exit = fn->createBlock(var + ".exit");
    builder_.createBr(header);

    builder_.setInsertPoint(header);
    Value* current = builder_.createLoad(ctx_.i64(), slot);
    Value* cond = builder_.createICmp(ICmpPred::SLE, current, end);
    builder_.createCondBr(cond, body, exit);

    builder_.setInsertPoint(body);
    block_ = body;
    expect(Tok::LBrace, "'{'");
    while (!at(Tok::RBrace)) {
      parseStatement();
    }
    expect(Tok::RBrace, "'}'");
    // Latch: i = i + 1; back to header. (block_ may have changed if the
    // body contained nested control flow.)
    Value* latchValue = builder_.createLoad(ctx_.i64(), slot);
    Value* next = builder_.createAdd(latchValue, ctx_.getI64(1));
    builder_.createStore(next, slot);
    builder_.createBr(header);

    block_ = exit;
    builder_.setInsertPoint(exit);
    intVars_.erase(var);
  }

  /// `while (bit[i] == 0|1) { ... }` — a measurement-driven loop
  /// (repeat-until-success). Unbounded by construction: it cannot be
  /// expressed in the flat circuit IR, but the QIR runtime executes it —
  /// the expressiveness gap of §III.A in one construct.
  void parseWhile() {
    expectIdent("while");
    expect(Tok::LParen, "'('");
    const auto [reg, index] = parseIndexedRef(/*quantum=*/false);
    bool expectOne = true;
    if (at(Tok::EqEq)) {
      ++pos_;
      if (!at(Tok::Int)) {
        fail("expected 0 or 1 in bit comparison");
      }
      expectOne = take().integer != 0;
    }
    expect(Tok::RParen, "')'");
    Value* resultPtr = address(*reg, index);

    Function* fn = entry_;
    BasicBlock* header = fn->createBlock("while.header");
    BasicBlock* body = fn->createBlock("while.body");
    BasicBlock* exit = fn->createBlock("while.exit");
    builder_.createBr(header);

    builder_.setInsertPoint(header);
    Function* readResult = qir::declareQIRFunction(*module_, qir::kQisReadResult);
    Value* bit = builder_.createCall(readResult, {resultPtr});
    Value* cond = expectOne
                      ? bit
                      : builder_.createBinOp(Opcode::Xor, bit, ctx_.getI1(true));
    builder_.createCondBr(cond, body, exit);

    builder_.setInsertPoint(body);
    block_ = body;
    expect(Tok::LBrace, "'{'");
    while (!at(Tok::RBrace)) {
      parseStatement();
    }
    expect(Tok::RBrace, "'}'");
    builder_.createBr(header);

    block_ = exit;
    builder_.setInsertPoint(exit);
  }

  void parseIf() {
    expectIdent("if");
    expect(Tok::LParen, "'('");
    const auto [reg, index] = parseIndexedRef(/*quantum=*/false);
    bool expectOne = true;
    if (at(Tok::EqEq)) {
      ++pos_;
      if (!at(Tok::Int)) {
        fail("expected 0 or 1 in bit comparison");
      }
      expectOne = take().integer != 0;
    }
    expect(Tok::RParen, "')'");

    Function* readResult = qir::declareQIRFunction(*module_, qir::kQisReadResult);
    Value* bit = builder_.createCall(readResult, {address(*reg, index)});
    Value* cond = expectOne
                      ? bit
                      : builder_.createBinOp(Opcode::Xor, bit, ctx_.getI1(true));

    Function* fn = entry_;
    BasicBlock* then = fn->createBlock("if.then");
    BasicBlock* cont = fn->createBlock("if.end");
    builder_.createCondBr(cond, then, cont);

    builder_.setInsertPoint(then);
    block_ = then;
    if (at(Tok::LBrace)) {
      ++pos_;
      while (!at(Tok::RBrace)) {
        parseStatement();
      }
      expect(Tok::RBrace, "'}'");
    } else {
      parseStatement();
    }
    builder_.createBr(cont);
    block_ = cont;
    builder_.setInsertPoint(cont);
  }

  void emitRecordOutput() {
    if (numBits_ == 0) {
      return;
    }
    Function* record =
        qir::declareQIRFunction(*module_, qir::kRtResultRecordOutput);
    Function* arrayRecord =
        qir::declareQIRFunction(*module_, qir::kRtArrayRecordOutput);
    GlobalVariable* arrayLabel =
        module_->createGlobalString("lbl.array", std::string("array\0", 6));
    builder_.createCall(arrayRecord, {ctx_.getI64(numBits_), arrayLabel});
    for (std::uint32_t bit = 0; bit < numBits_; ++bit) {
      const std::string label = "r" + std::to_string(bit);
      GlobalVariable* labelGlobal =
          module_->createGlobalString("lbl." + label, label + '\0');
      Value* result = bit == 0 ? static_cast<Value*>(ctx_.getNullPtr())
                               : static_cast<Value*>(ctx_.getIntToPtr(bit));
      builder_.createCall(record, {result, labelGlobal});
    }
  }

  Context& ctx_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<Module> module_;
  Function* entry_ = nullptr;
  BasicBlock* block_ = nullptr;
  IRBuilder builder_{ctx_};
  std::map<std::string, Register> registers_;
  std::map<std::string, Instruction*> intVars_; // name -> alloca slot
  std::uint32_t numQubits_ = 0;
  std::uint32_t numBits_ = 0;
};

} // namespace

std::unique_ptr<Module> compileQasm3(Context& context, std::string_view source) {
  Lexer lexer(source);
  Compiler compiler(context, lexer.lexAll());
  return compiler.run();
}

} // namespace qirkit::qasm
