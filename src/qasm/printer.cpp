#include "qasm/printer.hpp"

#include "support/source_location.hpp"
#include "support/string_utils.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace qirkit::qasm {

using circuit::Circuit;
using circuit::Condition;
using circuit::OpKind;
using circuit::Operation;

namespace {

/// Partition [0, numBits) into register segments such that every condition
/// range is exactly one segment.
std::vector<std::pair<std::uint32_t, std::uint32_t>> // (first, size)
partitionBits(const Circuit& circuit) {
  std::set<std::uint32_t> cuts{0, circuit.numBits()};
  std::vector<Condition> conditions;
  for (const Operation& op : circuit.ops()) {
    if (op.condition) {
      conditions.push_back(*op.condition);
      cuts.insert(op.condition->firstBit);
      cuts.insert(op.condition->firstBit + op.condition->numBits);
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> segments;
  for (auto it = cuts.begin(); std::next(it) != cuts.end(); ++it) {
    segments.emplace_back(*it, *std::next(it) - *it);
  }
  // Every condition must align with exactly one segment.
  for (const Condition& cond : conditions) {
    const bool aligned =
        std::any_of(segments.begin(), segments.end(), [&](const auto& seg) {
          return seg.first == cond.firstBit && seg.second == cond.numBits;
        });
    if (!aligned) {
      throw SemanticError(
          "conditions overlap in a way OpenQASM 2 registers cannot express");
    }
  }
  return segments;
}

std::string formatAngle(double value) { return formatDouble(value); }

} // namespace

std::string print(const Circuit& circuit) {
  const auto segments = partitionBits(circuit);
  // bit index -> (register id, offset)
  std::vector<std::pair<std::size_t, std::uint32_t>> bitRef(circuit.numBits());
  for (std::size_t r = 0; r < segments.size(); ++r) {
    for (std::uint32_t i = 0; i < segments[r].second; ++i) {
      bitRef[segments[r].first + i] = {r, i};
    }
  }
  const auto regName = [&](std::size_t r) {
    return segments.size() == 1 ? std::string("c") : "c" + std::to_string(r);
  };

  std::ostringstream out;
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  if (circuit.numQubits() > 0) {
    out << "qreg q[" << circuit.numQubits() << "];\n";
  }
  for (std::size_t r = 0; r < segments.size(); ++r) {
    if (segments[r].second > 0) {
      out << "creg " << regName(r) << "[" << segments[r].second << "];\n";
    }
  }

  for (const Operation& op : circuit.ops()) {
    if (op.condition) {
      const std::size_t r = bitRef[op.condition->firstBit].first;
      out << "if (" << regName(r) << " == " << op.condition->value << ") ";
    }
    switch (op.kind) {
    case OpKind::Measure:
      out << "measure q[" << op.qubits[0] << "] -> "
          << regName(bitRef[op.bit].first) << "[" << bitRef[op.bit].second << "];\n";
      continue;
    case OpKind::Reset:
      out << "reset q[" << op.qubits[0] << "];\n";
      continue;
    case OpKind::Barrier:
      out << "barrier";
      if (op.qubits.empty()) {
        out << " q";
      } else {
        for (std::size_t i = 0; i < op.qubits.size(); ++i) {
          out << (i == 0 ? " " : ", ") << "q[" << op.qubits[i] << "]";
        }
      }
      out << ";\n";
      continue;
    default:
      break;
    }
    out << opKindName(op.kind);
    if (!op.params.empty()) {
      out << "(";
      for (std::size_t i = 0; i < op.params.size(); ++i) {
        if (i != 0) {
          out << ", ";
        }
        out << formatAngle(op.params[i]);
      }
      out << ")";
    }
    for (std::size_t i = 0; i < op.qubits.size(); ++i) {
      out << (i == 0 ? " " : ", ") << "q[" << op.qubits[i] << "]";
    }
    out << ";\n";
  }
  return out.str();
}

} // namespace qirkit::qasm
